// Spaceweather: the paper's motivating workflow end to end — simulate an
// ionospheric TEC map, threshold it into a 2-D point database, and sweep a
// grid of DBSCAN variants to find Traveling Ionospheric Disturbance (TID)
// candidates at multiple density scales.
//
// TIDs appear as elongated high-TEC filaments; no single (ε, minpts) pair
// captures every disturbance scale, which is exactly why domain scientists
// run variant sets. The example reports, per variant, the cluster count and
// the most elongated large clusters (TID candidates).
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"vdbscan"
	"vdbscan/internal/render"
	"vdbscan/internal/tec"
)

func main() {
	// A ~40k-point thresholded TEC snapshot (a scaled-down SW1).
	ds, err := tec.Simulate(tec.Config{N: 40_000, Seed: 42, Name: "TEC snapshot"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d thresholded TEC points\n\n", ds.Name, ds.Len())
	if err := render.Density(os.Stdout, ds.Points, render.Options{Width: 90, Height: 22}); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	idx := vdbscan.NewIndex(ds.Points, vdbscan.WithR(70))

	// Variant grid spanning disturbance scales: small ε finds compact
	// intense structures, large ε connects extended wave trains.
	params := vdbscan.CartesianVariants(
		[]float64{1.0, 1.5, 2.0, 3.0},
		[]int{4, 8, 16},
	)
	start := time.Now()
	run, err := idx.ClusterVariants(params, vdbscan.WithThreads(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %9s %8s %8s  %s\n",
		"variant", "clusters", "noise", "reused", "top TID candidates (size, aspect)")
	for _, vr := range run.Results {
		fmt.Printf("%-12s %9d %8d %7.1f%%  %s\n",
			vr.Params.String(), vr.Clustering.NumClusters, vr.Clustering.NumNoise(),
			vr.FractionReused*100, tidCandidates(ds.Points, vr.Clustering, 3))
	}
	fmt.Printf("\nswept %d variants over %d points in %s (mean reuse %.0f%%)\n",
		len(params), ds.Len(), time.Since(start).Round(time.Millisecond),
		run.MeanFractionReused()*100)
}

// tidCandidates ranks clusters by size and reports the aspect ratio of
// their bounding boxes — elongated (aspect >> 1) large clusters are the
// wave-train candidates.
func tidCandidates(pts []vdbscan.Point, res *vdbscan.Clustering, k int) string {
	type cand struct {
		size   int
		aspect float64
	}
	var cands []cand
	for id := int32(1); id <= int32(res.NumClusters); id++ {
		members := res.ClusterPoints(id)
		if len(members) < 50 {
			continue // too small to be a wave train
		}
		minX, minY := pts[members[0]].X, pts[members[0]].Y
		maxX, maxY := minX, minY
		for _, i := range members {
			p := pts[i]
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
		w, h := maxX-minX, maxY-minY
		if w < h {
			w, h = h, w
		}
		if h == 0 {
			h = 1e-9
		}
		cands = append(cands, cand{size: len(members), aspect: w / h})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].size > cands[b].size })
	if len(cands) > k {
		cands = cands[:k]
	}
	out := ""
	for i, c := range cands {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("(%d, %.1f)", c.size, c.aspect)
	}
	if out == "" {
		out = "none"
	}
	return out
}
