// Paramsweep: parameter-space exploration with a correctness audit.
//
// Domain scientists choose (ε, minpts) by sweeping a grid and inspecting
// how the cluster structure responds (paper §II-A: good values balance too
// much noise against too few clusters). This example sweeps a 5×5 grid with
// VariantDBSCAN, prints the resulting cluster/noise landscape, and audits
// every reused result against plain DBSCAN with the paper's per-point
// Jaccard quality metric (§V-D) — demonstrating that reuse does not change
// the science.
package main

import (
	"fmt"
	"log"
	"time"

	"vdbscan"
	"vdbscan/internal/data"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/kdist"
)

func main() {
	ds, err := data.Generate(data.SynthConfig{
		Class: data.ClassCV, N: 30_000, NoiseFrac: 0.15, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d points, %d synthetic clusters\n\n", ds.Name, ds.Len(), ds.SynthClusters)

	idx := vdbscan.NewIndex(ds.Points)

	// Anchor the grid on the sorted 4-dist heuristic (the ε-selection rule
	// the original DBSCAN paper proposes and this paper adopts in §V-B).
	base, err := kdist.SuggestEps(dbscan.BuildIndex(ds.Points, dbscan.IndexOptions{}), kdist.DefaultMinPts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-dist heuristic: eps* = %.2f (est. noise %.0f%%)\n\n",
		base.Params.Eps, base.NoiseEstimate*100)
	var epsGrid []float64
	for _, f := range []float64{0.75, 1.0, 1.25, 1.5, 2.0} {
		epsGrid = append(epsGrid, base.Params.Eps*f)
	}
	minptsGrid := []int{4, 8, 16, 32, 64}
	params := vdbscan.CartesianVariants(epsGrid, minptsGrid)

	start := time.Now()
	run, err := idx.ClusterVariants(params, vdbscan.WithThreads(4))
	if err != nil {
		log.Fatal(err)
	}
	sweepTime := time.Since(start)

	// Cluster-count landscape: rows = eps, cols = minpts.
	fmt.Print("clusters found (rows: eps, cols: minpts)\n\n        ")
	for _, mp := range minptsGrid {
		fmt.Printf("%8d", mp)
	}
	fmt.Println()
	for i, eps := range epsGrid {
		fmt.Printf("%7.2f ", eps)
		for j := range minptsGrid {
			fmt.Printf("%8d", run.Results[i*len(minptsGrid)+j].Clustering.NumClusters)
		}
		fmt.Println()
	}

	// Noise landscape.
	fmt.Print("\nnoise fraction (rows: eps, cols: minpts)\n\n        ")
	for _, mp := range minptsGrid {
		fmt.Printf("%8d", mp)
	}
	fmt.Println()
	n := float64(ds.Len())
	for i, eps := range epsGrid {
		fmt.Printf("%7.2f ", eps)
		for j := range minptsGrid {
			noise := float64(run.Results[i*len(minptsGrid)+j].Clustering.NumNoise())
			fmt.Printf("%7.1f%%", noise/n*100)
		}
		fmt.Println()
	}

	// Quality audit: re-run each reused variant with plain DBSCAN.
	fmt.Println("\nauditing reused variants against plain DBSCAN...")
	auditStart := time.Now()
	worst := 1.0
	audited := 0
	for _, vr := range run.Results {
		if vr.FromScratch {
			continue
		}
		ref, err := idx.Cluster(vr.Params)
		if err != nil {
			log.Fatal(err)
		}
		q, err := vdbscan.Quality(ref, vr.Clustering)
		if err != nil {
			log.Fatal(err)
		}
		if q < worst {
			worst = q
		}
		audited++
	}
	fmt.Printf("audited %d reused variants: minimum quality %.6f (paper: >= 0.998)\n",
		audited, worst)
	fmt.Printf("\nsweep %s (mean reuse %.0f%%), audit %s\n",
		sweepTime.Round(time.Millisecond), run.MeanFractionReused()*100,
		time.Since(auditStart).Round(time.Millisecond))
}
