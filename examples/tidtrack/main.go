// Tidtrack: follow Traveling Ionospheric Disturbances across TEC frames.
//
// Each frame is a thresholded TEC snapshot clustered with a variant sweep
// (VariantDBSCAN); the mid-scale variant's clusters become features that a
// greedy tracker links across frames, yielding TID propagation velocities —
// the physical quantity space-weather analysts extract from such maps.
// A spatiotemporal ST-DBSCAN pass over the stacked frames cross-checks the
// per-frame + tracking pipeline.
package main

import (
	"fmt"
	"log"
	"time"

	"vdbscan"
	"vdbscan/internal/stdbscan"
	"vdbscan/internal/tec"
	"vdbscan/internal/track"
)

const (
	frames    = 8
	perFrame  = 15_000
	cadenceHr = 0.25
)

func main() {
	params := vdbscan.CartesianVariants([]float64{1.5, 2.0, 2.5}, []int{8})
	tracker := track.NewTracker(8 /* max centroid jump, degrees */, cadenceHr*2)

	var stacked []stdbscan.Point
	start := time.Now()
	for f := 0; f < frames; f++ {
		epoch := float64(f) * cadenceHr
		ds, err := tec.Simulate(tec.Config{
			N: perFrame, Seed: 7, Time: epoch, Name: fmt.Sprintf("frame%d", f),
		})
		if err != nil {
			log.Fatal(err)
		}
		run, err := vdbscan.ClusterVariants(ds.Points, params, vdbscan.WithThreads(3))
		if err != nil {
			log.Fatal(err)
		}
		mid := run.Results[1] // the 2.0-degree variant drives tracking
		features := track.Extract(ds.Points, mid.Clustering, epoch, 200)
		tracker.Advance(features)
		fmt.Printf("frame %d (t=%.2fh): %d clusters, %d trackable features, %d active tracks\n",
			f, epoch, mid.Clustering.NumClusters, len(features), len(tracker.Active()))

		for _, p := range ds.Points {
			stacked = append(stacked, stdbscan.Point{X: p.X, Y: p.Y, T: epoch})
		}
	}

	fmt.Printf("\nTID tracks (>= 3 frames), %s total:\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("%7s %7s %7s %12s %10s %9s\n", "track", "frames", "size", "v (deg/h)", "speed", "growth/h")
	for _, trk := range tracker.All() {
		if trk.Len() < 3 {
			continue
		}
		vx, vy := trk.Velocity()
		fmt.Printf("%7d %7d %7d (%4.1f, %4.1f) %10.2f %9.2f\n",
			trk.ID, trk.Len(), trk.Last().Size, vx, vy, trk.Speed(), trk.GrowthRate())
	}

	// Cross-check: one spatiotemporal clustering over all frames. Tracks
	// spanning many frames should correspond to large ST clusters.
	stIx := stdbscan.BuildIndex(stacked, 70)
	stRes, err := stdbscan.Run(stIx, stdbscan.Params{Eps1: 2.0, Eps2: cadenceHr * 1.5, MinPts: 8}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nST-DBSCAN cross-check over %d stacked points: %d spatiotemporal clusters, largest %v\n",
		len(stacked), stRes.NumClusters, stRes.TopClusterSizes(3))
}
