// Earlywarning: a natural-hazard monitoring loop, the application the
// paper's abstract motivates ("our optimizations ... could enable the short
// run times required for early warning systems for natural hazards").
//
// A TEC field evolves over simulated epochs; each epoch the monitor
// thresholds a fresh snapshot and sweeps a variant set to detect large
// disturbance structures. The loop reports per-frame latency and flags
// frames whose strongest cluster grows abruptly — the "warning".
package main

import (
	"fmt"
	"log"
	"time"

	"vdbscan"
	"vdbscan/internal/tec"
)

const (
	frames        = 6
	pointsPerSnap = 20_000
	growthAlarm   = 1.4 // alarm when the dominant structure grows 40%
)

func main() {
	params := vdbscan.CartesianVariants([]float64{1.5, 2.5}, []int{4, 8, 16})
	fmt.Printf("monitoring %d frames, %d variants per frame, %d points each\n\n",
		frames, len(params), pointsPerSnap)
	fmt.Printf("%5s %10s %9s %9s %10s %8s  %s\n",
		"frame", "epoch", "clusters", "dominant", "latency", "reuse", "status")

	prevDominant := 0
	for frame := 0; frame < frames; frame++ {
		epoch := float64(frame) * 0.5 // half-hour cadence
		ds, err := tec.Simulate(tec.Config{
			N:    pointsPerSnap,
			Seed: 42, // fixed receiver geometry and field; only Time moves
			Time: epoch,
			Name: fmt.Sprintf("frame%d", frame),
		})
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		// Each frame gets its own index (the points moved), but all
		// variants inside the frame share it and reuse each other.
		run, err := vdbscan.ClusterVariants(ds.Points, params, vdbscan.WithThreads(4))
		if err != nil {
			log.Fatal(err)
		}
		latency := time.Since(start)

		// The monitoring signal: the dominant structure under the
		// mid-scale variant.
		mid := run.Results[len(run.Results)/2]
		dominant := 0
		if sizes := mid.Clustering.TopClusterSizes(1); len(sizes) > 0 {
			dominant = sizes[0]
		}
		status := "nominal"
		if prevDominant > 0 && float64(dominant) > growthAlarm*float64(prevDominant) {
			status = "ALERT: dominant structure growing rapidly"
		}
		fmt.Printf("%5d %9.1fh %9d %9d %10s %7.0f%%  %s\n",
			frame, epoch, mid.Clustering.NumClusters, dominant,
			latency.Round(time.Millisecond), run.MeanFractionReused()*100, status)
		prevDominant = dominant
	}
	fmt.Println("\nthe per-frame latency is the early-warning budget: variant reuse")
	fmt.Println("lets one frame carry a whole parameter sweep instead of one guess.")
}
