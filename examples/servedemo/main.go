// Servedemo drives vdbscand through the public client package: it spins up
// the clustering service in-process, uploads a dataset, submits a variant
// job over the v2 API, watches the job live over the Server-Sent Events
// stream (falling back to long-polling when streaming is unavailable), and
// fetches the execution trace and the tenant's work ledger — the full
// submit → watch → results → trace loop a real client would run against a
// deployed daemon.
//
// Run `go run ./examples/servedemo`, or point it at an already-running
// daemon with -addr (e.g. `vdbscand -addr :8714 &` then
// `go run ./examples/servedemo -addr http://localhost:8714`); pass -key
// when the daemon has API keys configured.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"vdbscan/client"
	"vdbscan/internal/server"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running vdbscand (empty: start one in-process)")
	key := flag.String("key", "", "tenant API key (when the daemon has -keys-file configured)")
	flag.Parse()

	base := *addr
	if base == "" {
		// No daemon given: host the service in-process, same handler the
		// vdbscand binary serves.
		srv := server.New(server.Config{Threads: 2, BatchWindow: 100 * time.Millisecond})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Printf("started in-process vdbscand at %s\n", base)
	}
	var opts []client.Option
	if *key != "" {
		opts = append(opts, client.WithAPIKey(*key))
	}
	c := client.New(base, opts...)
	ctx := context.Background()

	// 1. Upload: three Gaussian blobs plus background noise, as CSV.
	rnd := rand.New(rand.NewSource(7))
	var csv bytes.Buffer
	csv.WriteString("# name: servedemo\n")
	for _, ctr := range [][2]float64{{10, 10}, {30, 25}, {50, 10}} {
		for i := 0; i < 500; i++ {
			fmt.Fprintf(&csv, "%g,%g\n", ctr[0]+rnd.NormFloat64()*1.2, ctr[1]+rnd.NormFloat64()*1.2)
		}
	}
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&csv, "%g,%g\n", rnd.Float64()*60, rnd.Float64()*35)
	}
	ds, err := c.UploadCSV(ctx, &csv, "", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded dataset %s: %v points (index version %v)\n",
		ds.ID, ds.Points, ds.Version)

	// 2. Submit a three-variant job; the response carries the job ID to poll.
	job, err := c.Submit(ctx, ds.ID, client.SubmitRequest{Variants: []client.Variant{
		{Eps: 0.8, MinPts: 8}, {Eps: 1.0, MinPts: 4}, {Eps: 1.5, MinPts: 4},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted job %s (state %v, batch %v)\n", job.ID, job.State, job.Batch)

	// 3. Watch live: the SSE stream pushes queued → batched → running →
	// per-variant progress → done without any polling. If the stream can't
	// be opened (old daemon, proxy stripping streaming), fall back to
	// long-polling the job document.
	final := watchSSE(ctx, c, job.ID)
	if final == "" {
		fmt.Println("SSE unavailable; falling back to long-poll")
		job, err = c.Wait(ctx, job.ID, 10*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		final = job.State
	}
	job, err = c.Job(ctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	if final != "done" {
		log.Fatalf("job %s ended %v: %v", job.ID, final, job.Error)
	}

	fmt.Printf("\n%-16s %9s %7s %8s %8s\n", "variant", "clusters", "noise", "reused", "scratch")
	for _, v := range job.Results {
		fmt.Printf("eps=%-4v mp=%-4v %9v %7v %7.1f%% %8v\n",
			v.Eps, v.MinPts, v.Clusters, v.Noise,
			v.FractionReused*100, v.FromScratch)
	}
	if job.Work != nil {
		fmt.Printf("\nwork charged: %d units (%d eps-searches + %d candidates)\n",
			job.Work.Charge, job.Work.EpsSearches, job.Work.CandidatesExamined)
	}

	// 4. The trace shows the one batch run that served the job.
	text, err := c.TraceText(ctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrace:\n")
	for i, line := range strings.SplitN(string(text), "\n", 8) {
		if i == 7 || line == "" {
			break
		}
		fmt.Printf("  %s\n", line)
	}

	// 5. The tenant ledger shows what the run cost against any quota.
	tn, err := c.TenantSelf(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant %s: %d work units charged over %d jobs\n",
		tn.ID, tn.Usage.WorkCharged, tn.Usage.JobsCharged)

	metrics := get(base + "/metrics")
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "vdbscand_jobs_completed_total") ||
			strings.HasPrefix(line, "vdbscan_points_reused_total") {
			fmt.Printf("metric: %s\n", line)
		}
	}
}

// watchSSE consumes the job's event stream, printing a live line per
// lifecycle change and per completed variant. Returns the terminal state,
// or "" if streaming was unavailable (the caller then long-polls).
func watchSSE(ctx context.Context, c *client.Client, jobID string) string {
	final := ""
	err := c.Events(ctx, jobID, func(ev client.Event) error {
		var f map[string]any
		if err := json.Unmarshal(ev.Data, &f); err != nil {
			f = map[string]any{}
		}
		switch ev.Name {
		case "queued", "batched", "running":
			fmt.Printf("  job %s: %s\n", jobID, ev.Name)
		case "progress":
			src := "from scratch"
			if f["from_scratch"] != true {
				src = fmt.Sprintf("reused %.1f%% of variant %v",
					asFloat(f["fraction_reused"])*100, f["source"])
			}
			fmt.Printf("  [%v/%v] variant %v done in %.1fms (%s)\n",
				f["done"], f["total"], f["variant"], asFloat(f["duration_ms"]), src)
		case "phase":
			fmt.Printf("  variant %v: %v %v\n", f["variant"], f["phase"], f["state"])
		case "done", "failed", "canceled":
			fmt.Printf("  job %s: %s (%.1fms end to end)\n",
				jobID, ev.Name, asFloat(f["duration_ms"]))
			final = ev.Name
		}
		return nil
	})
	if err != nil {
		return "" // stream unavailable or broke before the terminal frame
	}
	return final
}

func asFloat(v any) float64 {
	f, _ := v.(float64)
	return f
}

func get(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	return out.Bytes()
}
