// Servedemo is a vdbscand client: it spins up the clustering service
// in-process, uploads a dataset, submits a variant job over HTTP, watches
// the job live over the Server-Sent Events stream (falling back to
// long-polling when streaming is unavailable), and fetches the execution
// trace — the full submit → watch → results → trace loop a real client
// would run against a deployed daemon.
//
// Run `go run ./examples/servedemo`, or point it at an already-running
// daemon with -addr (e.g. `vdbscand -addr :8714 &` then
// `go run ./examples/servedemo -addr http://localhost:8714`).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"vdbscan/internal/server"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running vdbscand (empty: start one in-process)")
	flag.Parse()

	base := *addr
	if base == "" {
		// No daemon given: host the service in-process, same handler the
		// vdbscand binary serves.
		srv := server.New(server.Config{Threads: 2, BatchWindow: 100 * time.Millisecond})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Printf("started in-process vdbscand at %s\n", base)
	}

	// 1. Upload: three Gaussian blobs plus background noise, as CSV.
	rnd := rand.New(rand.NewSource(7))
	var csv bytes.Buffer
	csv.WriteString("# name: servedemo\n")
	for _, c := range [][2]float64{{10, 10}, {30, 25}, {50, 10}} {
		for i := 0; i < 500; i++ {
			fmt.Fprintf(&csv, "%g,%g\n", c[0]+rnd.NormFloat64()*1.2, c[1]+rnd.NormFloat64()*1.2)
		}
	}
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&csv, "%g,%g\n", rnd.Float64()*60, rnd.Float64()*35)
	}
	ds := postDoc(base+"/v1/datasets", csv.Bytes())
	fmt.Printf("uploaded dataset %s: %v points (index version %v)\n",
		ds["id"], ds["points"], ds["version"])

	// 2. Submit a three-variant job; the response carries the job ID to poll.
	job := postDoc(base+"/v1/datasets/"+ds["id"].(string)+"/jobs",
		[]byte(`{"variants":[{"eps":0.8,"minpts":8},{"eps":1.0,"minpts":4},{"eps":1.5,"minpts":4}]}`))
	jobID := job["id"].(string)
	fmt.Printf("submitted job %s (state %v, batch %v)\n", jobID, job["state"], job["batch"])

	// 3. Watch live: the SSE stream pushes queued → batched → running →
	// per-variant progress → done without any polling. If the stream can't
	// be opened (old daemon, proxy stripping streaming), fall back to
	// long-polling the job document.
	final := watchSSE(base, jobID)
	if final == "" {
		fmt.Println("SSE unavailable; falling back to long-poll")
		for job["state"] == "queued" || job["state"] == "running" {
			job = getDoc(base + "/v1/jobs/" + jobID + "?wait=10s")
		}
		final = job["state"].(string)
	}
	job = getDoc(base + "/v1/jobs/" + jobID)
	if final != "done" {
		log.Fatalf("job %s ended %v: %v", jobID, final, job["error"])
	}

	fmt.Printf("\n%-16s %9s %7s %8s %8s\n", "variant", "clusters", "noise", "reused", "scratch")
	for _, r := range job["results"].([]any) {
		v := r.(map[string]any)
		fmt.Printf("eps=%-4v mp=%-4v %9v %7v %7.1f%% %8v\n",
			v["eps"], v["minpts"], v["clusters"], v["noise"],
			v["fraction_reused"].(float64)*100, v["from_scratch"])
	}

	// 4. The trace shows the one batch run that served the job.
	text := get(base + "/v1/jobs/" + jobID + "/trace?format=text")
	fmt.Printf("\ntrace:\n")
	for i, line := range strings.SplitN(string(text), "\n", 8) {
		if i == 7 || line == "" {
			break
		}
		fmt.Printf("  %s\n", line)
	}

	metrics := get(base + "/metrics")
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "vdbscand_jobs_completed_total") ||
			strings.HasPrefix(line, "vdbscan_points_reused_total") {
			fmt.Printf("metric: %s\n", line)
		}
	}
}

// watchSSE consumes the job's event stream, printing a live line per
// lifecycle change and per completed variant. Returns the terminal state,
// or "" if streaming was unavailable (the caller then long-polls).
func watchSSE(base, jobID string) string {
	resp, err := http.Get(base + "/v1/jobs/" + jobID + "/events")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK ||
		!strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		return ""
	}
	sc := bufio.NewScanner(resp.Body)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			var f map[string]any
			if err := json.Unmarshal([]byte(data), &f); err != nil {
				f = map[string]any{}
			}
			switch event {
			case "queued", "batched", "running":
				fmt.Printf("  job %s: %s\n", jobID, event)
			case "progress":
				src := "from scratch"
				if f["from_scratch"] != true {
					src = fmt.Sprintf("reused %.1f%% of variant %v",
						asFloat(f["fraction_reused"])*100, f["source"])
				}
				fmt.Printf("  [%v/%v] variant %v done in %.1fms (%s)\n",
					f["done"], f["total"], f["variant"], asFloat(f["duration_ms"]), src)
			case "phase":
				fmt.Printf("  variant %v: %v %v\n", f["variant"], f["phase"], f["state"])
			case "done", "failed", "canceled":
				fmt.Printf("  job %s: %s (%.1fms end to end)\n",
					jobID, event, asFloat(f["duration_ms"]))
				return event
			}
			event, data = "", ""
		}
	}
	return "" // stream broke before the terminal frame
}

func asFloat(v any) float64 {
	f, _ := v.(float64)
	return f
}

func postDoc(url string, body []byte) map[string]any {
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	return decode(resp)
}

func getDoc(url string) map[string]any {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	return decode(resp)
}

func get(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func decode(resp *http.Response) map[string]any {
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		log.Fatal(err)
	}
	if e, ok := doc["error"]; ok {
		log.Fatalf("server error (%d): %v", resp.StatusCode, e)
	}
	return doc
}
