// Quickstart: cluster a small synthetic point set with one DBSCAN variant,
// then run a whole variant grid with VariantDBSCAN and compare.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"vdbscan"
)

func main() {
	// Three Gaussian blobs plus uniform background noise.
	rnd := rand.New(rand.NewSource(1))
	var points []vdbscan.Point
	for _, c := range []vdbscan.Point{{X: 10, Y: 10}, {X: 30, Y: 25}, {X: 50, Y: 10}} {
		for i := 0; i < 400; i++ {
			points = append(points, vdbscan.Point{
				X: c.X + rnd.NormFloat64()*1.2,
				Y: c.Y + rnd.NormFloat64()*1.2,
			})
		}
	}
	for i := 0; i < 300; i++ {
		points = append(points, vdbscan.Point{X: rnd.Float64() * 60, Y: rnd.Float64() * 35})
	}

	// One-shot clustering.
	res, err := vdbscan.Cluster(points, vdbscan.Params{Eps: 1.0, MinPts: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single run: %d clusters, %d noise points (of %d)\n",
		res.NumClusters, res.NumNoise(), res.Len())
	fmt.Printf("largest clusters: %v\n\n", res.TopClusterSizes(3))

	// Variant grid: build the index once, cluster 12 parameterizations.
	idx := vdbscan.NewIndex(points)
	params := vdbscan.CartesianVariants(
		[]float64{0.8, 1.0, 1.5},
		[]int{4, 8, 16, 32},
	)
	start := time.Now()
	run, err := idx.ClusterVariants(params, vdbscan.WithThreads(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %9s %7s %8s %7s\n", "variant", "clusters", "noise", "reused", "scratch")
	for _, vr := range run.Results {
		fmt.Printf("%-12s %9d %7d %7.1f%% %7v\n",
			vr.Params.String(), vr.Clustering.NumClusters,
			vr.Clustering.NumNoise(), vr.FractionReused*100, vr.FromScratch)
	}
	fmt.Printf("\n%d variants in %s (mean reuse %.0f%%)\n",
		len(params), time.Since(start).Round(time.Millisecond),
		run.MeanFractionReused()*100)
}
