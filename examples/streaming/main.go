// Streaming: maintain a live clustering of TEC observations with the
// incremental API — insertions as new measurements arrive, deletions as
// old ones expire — instead of re-clustering every frame.
//
// A sliding window of observations streams through the clusterer; the
// monitor reports cluster structure and update latency after every batch,
// and periodically audits the incremental state against a batch run over
// the same live window.
//
// The clusterer keeps its ε-searches on the frozen flat index across the
// stream: mutations stage in a delta overlay, and once the overlay
// crosses WithRefreezeThreshold the index re-freezes in the background
// (epoch-based maintenance). The per-batch "rfz" column and the final
// stats line surface that machinery; "stale" must stay 0 — a nonzero
// count means a search found the snapshot unaccounted for and had to
// fall back to the slow pointer tree.
package main

import (
	"fmt"
	"log"
	"time"

	"vdbscan"
	"vdbscan/internal/tec"
)

const (
	batches    = 12
	perBatch   = 1500
	windowSize = 4 * perBatch // observations kept live
	auditEvery = 4
)

func main() {
	params := vdbscan.Params{Eps: 2.5, MinPts: 8}
	inc, err := vdbscan.NewIncremental(params, vdbscan.WithRefreezeThreshold(256))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sliding-window monitor: %d batches x %d obs, window %d, params %v\n\n",
		batches, perBatch, windowSize, params)
	fmt.Printf("%6s %7s %9s %8s %10s %9s %5s %7s  %s\n",
		"batch", "live", "clusters", "noise", "latency", "dominant", "rfz", "overlay", "audit")

	var history []vdbscan.Point // every inserted point, in insertion order
	oldest := 0                 // next insertion index to expire
	for batch := 0; batch < batches; batch++ {
		ds, err := tec.Simulate(tec.Config{
			N: perBatch, Seed: 99, Time: float64(batch) * 0.25,
			Name: fmt.Sprintf("batch%d", batch),
		})
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		inc.InsertBatch(ds.Points)
		history = append(history, ds.Points...)
		for inc.LiveLen() > windowSize {
			if err := inc.Delete(oldest); err != nil {
				log.Fatal(err)
			}
			oldest++
		}
		latency := time.Since(start)

		res := inc.Labels()
		liveNoise := 0
		for _, l := range res.Labels[oldest:] {
			if l == vdbscan.Noise {
				liveNoise++
			}
		}
		dominant := 0
		if sizes := res.TopClusterSizes(1); len(sizes) > 0 {
			dominant = sizes[0]
		}

		audit := "-"
		if (batch+1)%auditEvery == 0 {
			batchRes, err := vdbscan.Cluster(history[oldest:], params)
			if err != nil {
				log.Fatal(err)
			}
			incLive := &vdbscan.Clustering{
				Labels:      res.Labels[oldest:],
				NumClusters: res.NumClusters,
			}
			q, err := vdbscan.Quality(batchRes, incLive)
			if err != nil {
				log.Fatal(err)
			}
			audit = fmt.Sprintf("quality=%.4f", q)
		}
		st := inc.RefreezeStats()
		fmt.Printf("%6d %7d %9d %8d %10s %9d %5d %7d  %s\n",
			batch, inc.LiveLen(), res.NumClusters, liveNoise,
			latency.Round(time.Millisecond), dominant,
			st.Refreezes, st.OverlayAdded+st.OverlayDeleted, audit)
	}
	inc.FlushRefreeze()
	st := inc.RefreezeStats()
	fmt.Printf("\nrefreeze stats: refreezes=%d frozen=%d overlay=+%d/-%d stale=%d gen=%d\n",
		st.Refreezes, st.FrozenPoints, st.OverlayAdded, st.OverlayDeleted,
		st.StaleFallbacks, st.Generation)
	fmt.Println("\nthe audit compares the incremental state against a fresh batch run")
	fmt.Println("over the same live window (1.0 = identical partitions).")
}
