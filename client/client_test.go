package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vdbscan/internal/server"
)

const testCSV = "0,0\n0.1,0\n0,0.1\n0.1,0.1\n5,5\n5.1,5\n5,5.1\n5.1,5.1\n20,20\n"

func newTestDaemon(t *testing.T, cfg server.Config) (*Client, *httptest.Server) {
	t.Helper()
	if cfg.Threads == 0 {
		cfg.Threads = 2
	}
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return New(ts.URL), ts
}

func TestClientRoundTrip(t *testing.T) {
	c, _ := newTestDaemon(t, server.Config{})
	ctx := context.Background()

	ds, err := c.UploadCSV(ctx, strings.NewReader(testCSV), "trip", nil)
	if err != nil {
		t.Fatalf("UploadCSV: %v", err)
	}
	if ds.Points != 9 || ds.Name != "trip" {
		t.Fatalf("dataset = %+v, want 9 points named trip", ds)
	}
	if all, err := c.Datasets(ctx); err != nil || len(all) != 1 {
		t.Fatalf("Datasets = %v, %v; want 1 dataset", all, err)
	}

	j, err := c.Submit(ctx, ds.ID, SubmitRequest{Variants: []Variant{
		{Eps: 0.5, MinPts: 3}, {Eps: 0.6, MinPts: 3},
	}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.State != "queued" {
		t.Fatalf("state = %q, want queued", j.State)
	}

	j, err = c.Wait(ctx, j.ID, 2*time.Second)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if j.State != "done" || len(j.Results) != 2 {
		t.Fatalf("job = %+v, want done with 2 results", j)
	}
	if j.Results[0].Clusters != 2 {
		t.Errorf("clusters = %d, want 2", j.Results[0].Clusters)
	}
	if j.Work == nil || j.Work.Charge != j.Work.EpsSearches+j.Work.CandidatesExamined {
		t.Errorf("work = %+v, want charge = searches+candidates", j.Work)
	}

	labels, err := c.Labels(ctx, j.ID, 0)
	if err != nil {
		t.Fatalf("Labels: %v", err)
	}
	if lines := strings.Count(string(labels), "\n"); lines != 10 { // header + 9 rows
		t.Errorf("labels has %d lines, want 10", lines)
	}
	if txt, err := c.TraceText(ctx, j.ID); err != nil || !strings.Contains(string(txt), "trace:") {
		t.Errorf("TraceText = %q, %v", txt, err)
	}

	tn, err := c.TenantSelf(ctx)
	if err != nil {
		t.Fatalf("TenantSelf: %v", err)
	}
	if tn.ID != "anonymous" || tn.Usage.WorkCharged != j.Work.Charge {
		t.Errorf("tenant = %+v, want anonymous charged %d", tn, j.Work.Charge)
	}

	if err := c.DeleteDataset(ctx, ds.ID); err != nil {
		t.Fatalf("DeleteDataset: %v", err)
	}
}

func TestClientEvents(t *testing.T) {
	c, _ := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	ds, err := c.UploadCSV(ctx, strings.NewReader(testCSV), "", nil)
	if err != nil {
		t.Fatalf("UploadCSV: %v", err)
	}
	j, err := c.Submit(ctx, ds.ID, SubmitRequest{Variants: []Variant{{Eps: 0.5, MinPts: 3}}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	var names []string
	if err := c.Events(ctx, j.ID, func(ev Event) error {
		names = append(names, ev.Name)
		return nil
	}); err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(names) == 0 || names[len(names)-1] != "done" {
		t.Fatalf("events = %v, want terminal done", names)
	}
}

func TestClientEnvelopeError(t *testing.T) {
	c, _ := newTestDaemon(t, server.Config{})
	_, err := c.Job(context.Background(), "nope")
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("err = %T %v, want *APIError", err, err)
	}
	if apiErr.Status != http.StatusNotFound || apiErr.Code != "not_found" {
		t.Errorf("err = %+v, want 404 not_found", apiErr)
	}
	if !strings.Contains(apiErr.Message, `"nope"`) {
		t.Errorf("message %q should name the job", apiErr.Message)
	}
}

func TestClientLegacyV1Error(t *testing.T) {
	// A /v1-only daemon answers with the flat {"error":"..."} document; the
	// client must still surface the message (with an empty Code).
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"no job \"x\""}`)) //nolint:errcheck
	}))
	defer ts.Close()
	_, err := New(ts.URL).Job(context.Background(), "x")
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("err = %T, want *APIError", err)
	}
	if apiErr.Code != "" || apiErr.Message != `no job "x"` {
		t.Errorf("err = %+v, want legacy message with empty code", apiErr)
	}
}

func TestClientAuthAndRetryAfter(t *testing.T) {
	c, ts := newTestDaemon(t, server.Config{
		Tenants: []server.TenantConfig{{ID: "acme", Key: "sekrit"}},
	})
	ctx := context.Background()

	_, err := c.Datasets(ctx)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != http.StatusUnauthorized || apiErr.Code != "unauthorized" {
		t.Fatalf("unauthenticated err = %v, want 401 unauthorized", err)
	}

	authed := New(ts.URL, WithAPIKey("sekrit"))
	tn, err := authed.TenantSelf(ctx)
	if err != nil {
		t.Fatalf("TenantSelf with key: %v", err)
	}
	if tn.ID != "acme" {
		t.Errorf("tenant = %q, want acme", tn.ID)
	}
}
