// Package client is the typed Go client for vdbscand's v2 API.
//
// It wraps the full submit → watch → results loop — dataset upload, job
// submission, long-poll waiting, SSE event streaming, labels and trace
// retrieval — plus the multi-tenant surface (API-key auth headers,
// GET /v2/tenants/self). Every non-2xx response is decoded into *APIError
// carrying the server's stable machine-readable error code, so callers
// switch on err.Code ("rate_limited", "quota_exhausted", "gone", ...)
// instead of parsing message strings. The legacy /v1 flat error document is
// decoded too, so the client can also point at old daemons.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to one vdbscand base URL. It is safe for concurrent use.
type Client struct {
	base   string // e.g. "http://localhost:8714", no trailing slash
	apiKey string
	hc     *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithAPIKey attaches a tenant API key to every request (sent as
// Authorization: Bearer).
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default client has no timeout because
// long-polls and SSE streams are expected to outlive any sane default;
// bound calls with a context instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the daemon at base (scheme://host[:port]).
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ---- wire types ----------------------------------------------------------

// Variant is one (eps, minpts) pair of a job submission.
type Variant struct {
	Eps    float64 `json:"eps"`
	MinPts int     `json:"minpts"`
}

// SubmitRequest is a job submission body.
type SubmitRequest struct {
	Variants []Variant `json:"variants"`
	// TimeoutMS overrides the server's default job deadline (milliseconds).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Tiles overrides the server's tile-level parallelism for the run.
	Tiles int `json:"tiles,omitempty"`
	// AllowApprox opts this job into load shedding: under queue pressure it
	// may be answered by ρ-approximate DBSCAN (Job.Quality == "approx").
	AllowApprox bool `json:"allow_approx,omitempty"`
}

// Dataset mirrors the server's dataset document.
type Dataset struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Points     int    `json:"points"`
	Staged     int    `json:"staged"`
	Version    int    `json:"version"`
	Index      string `json:"index"`
	Refreezing bool   `json:"refreezing"`
	Created    string `json:"created"`
}

// VariantResult is one per-variant result in a finished job.
type VariantResult struct {
	Eps            float64 `json:"eps"`
	MinPts         int     `json:"minpts"`
	Clusters       int     `json:"clusters"`
	Noise          int     `json:"noise"`
	FractionReused float64 `json:"fraction_reused"`
	FromScratch    bool    `json:"from_scratch"`
	DurationMS     float64 `json:"duration_ms"`
}

// Work is a finished job's metered work, exactly what the tenant ledger was
// charged: Charge == EpsSearches + CandidatesExamined.
type Work struct {
	EpsSearches        int64 `json:"eps_searches"`
	CandidatesExamined int64 `json:"candidates_examined"`
	Charge             int64 `json:"charge"`
}

// Job mirrors the server's v2 job document.
type Job struct {
	ID            string          `json:"id"`
	Dataset       string          `json:"dataset"`
	State         string          `json:"state"`
	Error         string          `json:"error,omitempty"`
	Batch         string          `json:"batch"`
	BatchJobs     int             `json:"batch_jobs"`
	BatchVariants int             `json:"batch_variants"`
	Created       string          `json:"created"`
	Started       string          `json:"started,omitempty"`
	Finished      string          `json:"finished,omitempty"`
	Results       []VariantResult `json:"results,omitempty"`
	// Quality is "approx" when the job was load-shed onto the
	// ρ-approximate path, empty for exact answers.
	Quality string `json:"quality,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Work    *Work  `json:"work,omitempty"`
}

// Terminal reports whether the job has finished (done, failed, canceled).
func (j *Job) Terminal() bool {
	return j.State == "done" || j.State == "failed" || j.State == "canceled"
}

// Tenant is the GET /v2/tenants/self document: the calling tenant's
// identity, configured limits (0 = unlimited), and ledger usage.
type Tenant struct {
	ID     string `json:"id"`
	Limits struct {
		RateRPS           float64 `json:"rate_rps"`
		Burst             int     `json:"burst"`
		MaxConcurrentJobs int     `json:"max_concurrent_jobs"`
		WorkQuota         int64   `json:"work_quota"`
		AllowApprox       bool    `json:"allow_approx"`
	} `json:"limits"`
	Usage struct {
		WorkCharged    int64 `json:"work_charged"`
		WorkRemaining  int64 `json:"work_remaining"`
		EpsSearches    int64 `json:"eps_searches"`
		Candidates     int64 `json:"candidates_examined"`
		JobsCharged    int64 `json:"jobs_charged"`
		JobsShed       int64 `json:"jobs_shed"`
		JobsLive       int64 `json:"jobs_live"`
		QuotaExhausted bool  `json:"quota_exhausted"`
	} `json:"usage"`
}

// AppendResult is the response to a dataset points append.
type AppendResult struct {
	Dataset    string `json:"dataset"`
	Staged     int    `json:"staged"`
	Refreezing bool   `json:"refreezing"`
}

// Event is one frame of a job's SSE stream: the event name (queued,
// batched, running, progress, phase, done, failed, canceled) and its raw
// JSON payload.
type Event struct {
	Name string
	Data json.RawMessage
}

// APIError is any non-2xx response. Code carries the server's stable v2
// error code; responses from the legacy v1 surface (or proxies) that lack
// one leave it empty.
type APIError struct {
	Status     int    // HTTP status
	Code       string // machine-readable code, e.g. "quota_exhausted"
	Message    string
	RetryAfter int // seconds, from the envelope or Retry-After header; 0 = none
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("vdbscand: %s (%d %s)", e.Message, e.Status, e.Code)
	}
	return fmt.Sprintf("vdbscand: %s (%d)", e.Message, e.Status)
}

// ---- request plumbing ----------------------------------------------------

func (c *Client) newReq(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	return req, nil
}

// decodeErr turns a non-2xx response into *APIError, understanding both
// error formats: the v2 envelope {"error":{"code","message","retry_after_s"}}
// and the legacy v1 flat document {"error":"message"}.
func decodeErr(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	apiErr := &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		apiErr.RetryAfter = ra
	}
	var probe struct {
		Error json.RawMessage `json:"error"`
	}
	if json.Unmarshal(body, &probe) == nil && len(probe.Error) > 0 {
		switch probe.Error[0] {
		case '{': // v2 envelope
			var env struct {
				Code        string `json:"code"`
				Message     string `json:"message"`
				RetryAfterS int    `json:"retry_after_s"`
			}
			if json.Unmarshal(probe.Error, &env) == nil {
				apiErr.Code = env.Code
				apiErr.Message = env.Message
				if env.RetryAfterS > 0 {
					apiErr.RetryAfter = env.RetryAfterS
				}
			}
		case '"': // legacy flat document
			var msg string
			if json.Unmarshal(probe.Error, &msg) == nil {
				apiErr.Message = msg
			}
		}
	}
	return apiErr
}

// doJSON runs the request and decodes a 2xx JSON response into out (which
// may be nil for bodyless successes).
func (c *Client) doJSON(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeErr(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := c.newReq(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	return c.doJSON(req, out)
}

// ---- datasets ------------------------------------------------------------

// UploadCSV creates a dataset from CSV point data ("x,y" rows, optional
// "# key: value" header). name may be empty (the CSV header or server
// default applies); extra query parameters like r= or index= go in query.
func (c *Client) UploadCSV(ctx context.Context, csv io.Reader, name string, query url.Values) (*Dataset, error) {
	q := url.Values{}
	for k, vs := range query {
		q[k] = vs
	}
	if name != "" {
		q.Set("name", name)
	}
	path := "/v2/datasets"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	req, err := c.newReq(ctx, http.MethodPost, path, csv)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/csv")
	var d Dataset
	if err := c.doJSON(req, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// Datasets lists every registered dataset.
func (c *Client) Datasets(ctx context.Context) ([]Dataset, error) {
	var out struct {
		Datasets []Dataset `json:"datasets"`
	}
	if err := c.getJSON(ctx, "/v2/datasets", &out); err != nil {
		return nil, err
	}
	return out.Datasets, nil
}

// Dataset fetches one dataset document.
func (c *Client) Dataset(ctx context.Context, id string) (*Dataset, error) {
	var d Dataset
	if err := c.getJSON(ctx, "/v2/datasets/"+url.PathEscape(id), &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// DeleteDataset removes a dataset. A delete racing a background re-freeze
// returns *APIError with Code "conflict"; retry after RetryAfter seconds.
func (c *Client) DeleteDataset(ctx context.Context, id string) error {
	req, err := c.newReq(ctx, http.MethodDelete, "/v2/datasets/"+url.PathEscape(id), nil)
	if err != nil {
		return err
	}
	return c.doJSON(req, nil)
}

// AppendCSV stages more CSV points onto a dataset; they fold into the index
// at the next background re-freeze.
func (c *Client) AppendCSV(ctx context.Context, id string, csv io.Reader) (*AppendResult, error) {
	req, err := c.newReq(ctx, http.MethodPost, "/v2/datasets/"+url.PathEscape(id)+"/points", csv)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/csv")
	var out AppendResult
	if err := c.doJSON(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ---- jobs ----------------------------------------------------------------

// Submit posts a job against a dataset and returns its accepted document
// (state "queued"; poll with Job/Wait or stream with Events).
func (c *Client) Submit(ctx context.Context, datasetID string, sr SubmitRequest) (*Job, error) {
	body, err := json.Marshal(sr)
	if err != nil {
		return nil, err
	}
	req, err := c.newReq(ctx, http.MethodPost,
		"/v2/datasets/"+url.PathEscape(datasetID)+"/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var j Job
	if err := c.doJSON(req, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Job fetches one job document. An evicted job returns *APIError with Code
// "gone"; an unknown (or foreign-tenant) one, Code "not_found".
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.getJSON(ctx, "/v2/jobs/"+url.PathEscape(id), &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Jobs lists the calling tenant's jobs.
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var out struct {
		Jobs []Job `json:"jobs"`
	}
	if err := c.getJSON(ctx, "/v2/jobs", &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Cancel cancels a job and returns its document.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	req, err := c.newReq(ctx, http.MethodDelete, "/v2/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	var j Job
	if err := c.doJSON(req, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Wait long-polls until the job turns terminal or ctx expires. pollWait is
// the per-request ?wait= hint (the server caps it); zero uses 10s.
func (c *Client) Wait(ctx context.Context, id string, pollWait time.Duration) (*Job, error) {
	if pollWait <= 0 {
		pollWait = 10 * time.Second
	}
	for {
		var j Job
		err := c.getJSON(ctx,
			"/v2/jobs/"+url.PathEscape(id)+"?wait="+pollWait.String(), &j)
		if err != nil {
			return nil, err
		}
		if j.Terminal() {
			return &j, nil
		}
		if err := ctx.Err(); err != nil {
			return &j, err
		}
	}
}

// Labels fetches one variant's labels as "index,label" CSV.
func (c *Client) Labels(ctx context.Context, id string, variant int) ([]byte, error) {
	return c.raw(ctx, "/v2/jobs/"+url.PathEscape(id)+"/labels?variant="+strconv.Itoa(variant))
}

// TraceText fetches the plain-text timeline of the batch run that carried
// the job.
func (c *Client) TraceText(ctx context.Context, id string) ([]byte, error) {
	return c.raw(ctx, "/v2/jobs/"+url.PathEscape(id)+"/trace?format=text")
}

// TraceChrome fetches the Chrome trace-event JSON of the job's batch run.
func (c *Client) TraceChrome(ctx context.Context, id string) ([]byte, error) {
	return c.raw(ctx, "/v2/jobs/"+url.PathEscape(id)+"/trace")
}

func (c *Client) raw(ctx context.Context, path string) ([]byte, error) {
	req, err := c.newReq(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeErr(resp)
	}
	return io.ReadAll(resp.Body)
}

// Events subscribes to the job's SSE stream and calls fn for every frame
// until the stream ends (the server closes it after the terminal frame), fn
// returns a non-nil error (which Events returns), or ctx expires. It
// returns nil on a normally-ended stream.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	req, err := c.newReq(ctx, http.MethodGet, "/v2/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeErr(resp)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		return &APIError{Status: resp.StatusCode,
			Message: "not an event stream: " + resp.Header.Get("Content-Type")}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			if err := fn(Event{Name: event, Data: json.RawMessage(data)}); err != nil {
				return err
			}
			event, data = "", ""
		}
	}
	return sc.Err()
}

// ---- tenants -------------------------------------------------------------

// TenantSelf fetches the calling tenant's limits and ledger usage.
func (c *Client) TenantSelf(ctx context.Context) (*Tenant, error) {
	var t Tenant
	if err := c.getJSON(ctx, "/v2/tenants/self", &t); err != nil {
		return nil, err
	}
	return &t, nil
}
