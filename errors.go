package vdbscan

import (
	"fmt"
	"strings"

	"vdbscan/internal/dbscan"
	"vdbscan/internal/persist"
	"vdbscan/internal/rtree"
)

// The facade's error contract (see also the package comment):
//
//   - Every error returned by an exported function or method either is, or
//     wraps (in the errors.Is/errors.As sense), one of the sentinel values
//     below, a context error (context.Canceled, context.DeadlineExceeded),
//     or an ordinary descriptive error.
//   - Every error string is prefixed "vdbscan: " exactly once; internal
//     package prefixes ("sched:", "rtree:") may follow inside the chain.

// ErrFlatTooLarge reports that a point database exceeds the flat R-tree
// layout's int32 offset space (more than ~2.1 billion entries or points).
// It surfaces — wrapped with size detail — from index construction and from
// streaming re-freezes; match it with errors.Is. Indexes too large for the
// flat layout can still be built with WithFlatIndex(false).
var ErrFlatTooLarge = rtree.ErrFlatTooLarge

// ErrDeleteUnsupported reports a point deletion attempted on the immutable
// batch Index, whose construction-time layout cannot shrink. Match it with
// errors.Is. Deletion is supported by the streaming path: use
// NewIncremental and Incremental.Delete.
var ErrDeleteUnsupported = dbscan.ErrDeleteUnsupported

// ErrSnapshotCorrupt reports a snapshot or WAL file that failed integrity
// or structural validation on load: truncation, a checksum mismatch, bad
// magic, or any internal inconsistency that would make the mapped index
// unsafe to traverse. Match it with errors.Is. The correct response is to
// discard the file and rebuild the index from source data.
var ErrSnapshotCorrupt = persist.ErrSnapshotCorrupt

// ErrSnapshotVersion reports a well-formed snapshot this build cannot
// read: a future format version, or a file written on a platform with the
// opposite byte order. Match it with errors.Is.
var ErrSnapshotVersion = persist.ErrSnapshotVersion

// wrapErr brings an internal error onto the facade's contract: nil stays
// nil, and everything else gains the "vdbscan: " prefix exactly once while
// preserving the wrapped chain for errors.Is/errors.As.
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	if strings.HasPrefix(err.Error(), "vdbscan: ") {
		return err
	}
	return fmt.Errorf("vdbscan: %w", err)
}
