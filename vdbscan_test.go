package vdbscan

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"vdbscan/internal/data"
)

func testPoints(t *testing.T, n int) []Point {
	t.Helper()
	ds, err := data.Generate(data.SynthConfig{Class: data.ClassCF, N: n, NoiseFrac: 0.2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Points
}

func TestClusterOneShot(t *testing.T) {
	pts := testPoints(t, 10000) // one synthetic cluster + noise
	res, err := Cluster(pts, Params{Eps: 3, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != len(pts) {
		t.Fatalf("labels = %d", res.Len())
	}
	if res.NumClusters < 1 {
		t.Errorf("clusters = %d", res.NumClusters)
	}
	if res.NumNoise() == 0 {
		t.Error("expected noise at 20% uniform fraction")
	}
	for _, l := range res.Labels {
		if l == 0 {
			t.Fatal("unclassified label in output")
		}
	}
}

func TestClusterInvalidParams(t *testing.T) {
	if _, err := Cluster(testPoints(t, 100), Params{Eps: 0, MinPts: 4}); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestIndexReuseAcrossCalls(t *testing.T) {
	pts := testPoints(t, 5000)
	idx := NewIndex(pts, WithR(32))
	if idx.Len() != len(pts) || idx.R() != 32 {
		t.Fatalf("index: len=%d r=%d", idx.Len(), idx.R())
	}
	a, err := idx.Cluster(Params{Eps: 3, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := idx.Cluster(Params{Eps: 3, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same params on same index gave different labels")
		}
	}
}

func TestNewIndexDoesNotRetainInput(t *testing.T) {
	pts := testPoints(t, 1000)
	idx := NewIndex(pts)
	before, _ := idx.Cluster(Params{Eps: 3, MinPts: 4})
	// Mutating the caller's slice must not affect the index.
	for i := range pts {
		pts[i] = Point{X: -999, Y: -999}
	}
	after, _ := idx.Cluster(Params{Eps: 3, MinPts: 4})
	for i := range before.Labels {
		if before.Labels[i] != after.Labels[i] {
			t.Fatal("index aliased the caller's point slice")
		}
	}
}

func TestClusterVariantsBasics(t *testing.T) {
	pts := testPoints(t, 8000)
	params := CartesianVariants([]float64{2, 3}, []int{4, 8})
	run, err := ClusterVariants(pts, params, WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != 4 {
		t.Fatalf("results = %d", len(run.Results))
	}
	for i, r := range run.Results {
		if r.Params != params[i] {
			t.Errorf("result %d params %v != input %v", i, r.Params, params[i])
		}
		if r.Clustering == nil || r.Clustering.Len() != len(pts) {
			t.Fatalf("result %d missing clustering", i)
		}
		if r.SourceIndex >= 0 {
			src := params[r.SourceIndex]
			if !CanReuse(r.Params, src) {
				t.Errorf("result %d reused incompatible source %v", i, src)
			}
		}
	}
	if run.Makespan <= 0 || run.TotalWork <= 0 || run.Threads != 2 {
		t.Errorf("run bookkeeping: %+v", run)
	}
}

func TestClusterVariantsMatchesSingleCluster(t *testing.T) {
	pts := testPoints(t, 6000)
	params := CartesianVariants([]float64{2, 4}, []int{4, 12})
	idx := NewIndex(pts)
	run, err := idx.ClusterVariants(params)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range params {
		want, err := idx.Cluster(p)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Quality(want, run.Results[i].Clustering)
		if err != nil {
			t.Fatal(err)
		}
		if q < 0.99 {
			t.Errorf("variant %v quality = %g, want >= 0.99", p, q)
		}
	}
}

func TestClusterVariantsEmpty(t *testing.T) {
	if _, err := ClusterVariants(testPoints(t, 100), nil); err == nil {
		t.Error("empty variant list accepted")
	}
}

func TestClusterVariantsReuseObserved(t *testing.T) {
	pts := testPoints(t, 8000)
	params := CartesianVariants([]float64{2, 3, 4}, []int{4, 8, 16})
	run, err := ClusterVariants(pts, params) // T=1 default
	if err != nil {
		t.Fatal(err)
	}
	if run.MeanFractionReused() <= 0 {
		t.Error("no reuse observed on a chainable variant set")
	}
	scratch := 0
	for _, r := range run.Results {
		if r.FromScratch {
			scratch++
		}
	}
	if scratch == len(params) {
		t.Error("every variant ran from scratch")
	}
}

func TestWithoutReuse(t *testing.T) {
	pts := testPoints(t, 4000)
	params := CartesianVariants([]float64{2, 3}, []int{4, 8})
	run, err := ClusterVariants(pts, params, WithoutReuse())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range run.Results {
		if !r.FromScratch {
			t.Error("WithoutReuse still reused")
		}
	}
}

func TestWithWorkAccumulates(t *testing.T) {
	pts := testPoints(t, 3000)
	var w Work
	if _, err := Cluster(pts, Params{Eps: 3, MinPts: 4}, WithWork(&w)); err != nil {
		t.Fatal(err)
	}
	if w.NeighborSearches != int64(len(pts)) {
		t.Errorf("searches = %d, want %d", w.NeighborSearches, len(pts))
	}
	var w2 Work
	if _, err := ClusterVariants(pts, CartesianVariants([]float64{2, 3}, []int{4}), WithWork(&w2)); err != nil {
		t.Fatal(err)
	}
	if w2.NeighborSearches == 0 || w2.PointsReused == 0 {
		t.Errorf("variant work = %+v", w2)
	}
}

func TestQualityAPI(t *testing.T) {
	pts := testPoints(t, 2000)
	a, _ := Cluster(pts, Params{Eps: 3, MinPts: 4})
	q, err := Quality(a, a)
	if err != nil || q != 1 {
		t.Errorf("self quality = %g, %v", q, err)
	}
}

func TestCartesianVariants(t *testing.T) {
	vs := CartesianVariants([]float64{0.1, 0.2}, []int{1, 2})
	want := []Params{{Eps: 0.1, MinPts: 1}, {Eps: 0.1, MinPts: 2}, {Eps: 0.2, MinPts: 1}, {Eps: 0.2, MinPts: 2}}
	if len(vs) != 4 {
		t.Fatalf("len = %d", len(vs))
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Errorf("vs[%d] = %v, want %v", i, vs[i], want[i])
		}
	}
	if got := CartesianVariants(nil, []int{1}); len(got) != 0 {
		t.Error("empty eps should produce empty set")
	}
}

func TestCanReuseAPI(t *testing.T) {
	if !CanReuse(Params{Eps: 0.6, MinPts: 4}, Params{Eps: 0.2, MinPts: 32}) {
		t.Error("valid reuse rejected")
	}
	if CanReuse(Params{Eps: 0.2, MinPts: 32}, Params{Eps: 0.6, MinPts: 4}) {
		t.Error("invalid reuse accepted")
	}
}

func TestNoisePointsLabeled(t *testing.T) {
	// Far-apart points: everything noise.
	pts := []Point{{X: 0, Y: 0}, {X: 100, Y: 100}, {X: 200, Y: 50}}
	res, err := Cluster(pts, Params{Eps: 1, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Labels {
		if l != Noise {
			t.Errorf("point %d label = %d, want Noise", i, l)
		}
	}
}

func TestOptionCoverage(t *testing.T) {
	pts := testPoints(t, 2000)
	// WithBinWidth changes the pre-index sort granularity but never the
	// clustering result.
	a, err := Cluster(pts, Params{Eps: 3, MinPts: 4}, WithBinWidth(0.5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(pts, Params{Eps: 3, MinPts: 4}, WithBinWidth(4))
	if err != nil {
		t.Fatal(err)
	}
	q, _ := Quality(a, b)
	if q < 0.999 {
		t.Errorf("bin width changed clustering: quality %g", q)
	}
	// WithReuseScheme / WithStrategy / WithMinSeedSize select behaviors
	// validated in depth by the internal packages; the API must accept
	// them and produce equivalent results.
	params := CartesianVariants([]float64{2.5, 3.5}, []int{4, 8})
	for _, opts := range [][]Option{
		{WithReuseScheme(ClusDefault)},
		{WithReuseScheme(ClusPtsSquared), WithStrategy(SchedMinPts)},
		{WithStrategy(SchedTree), WithMinSeedSize(16)},
	} {
		run, err := ClusterVariants(pts, params, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for i, vr := range run.Results {
			ref, _ := Cluster(pts, params[i])
			q, _ := Quality(ref, vr.Clustering)
			if q < 0.99 {
				t.Errorf("opts %d variant %v: quality %g", i, vr.Params, q)
			}
		}
	}
}

func TestIndexPointsAccessor(t *testing.T) {
	pts := testPoints(t, 100)
	idx := NewIndex(pts)
	got := idx.Points()
	if len(got) != len(pts) {
		t.Fatalf("Points len = %d", len(got))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatal("Points order not preserved")
		}
	}
}

func TestVariantResultDuration(t *testing.T) {
	pts := testPoints(t, 1000)
	run, err := ClusterVariants(pts, CartesianVariants([]float64{3}, []int{4}))
	if err != nil {
		t.Fatal(err)
	}
	if run.Results[0].Duration() < 0 {
		t.Error("negative duration")
	}
	if run.Results[0].Duration() > run.Makespan {
		t.Error("variant duration exceeds makespan")
	}
}

func TestConcurrentRunsOnSharedIndex(t *testing.T) {
	// The immutability promise: many goroutines may cluster on one Index.
	pts := testPoints(t, 3000)
	idx := NewIndex(pts)
	ref, err := idx.Cluster(Params{Eps: 3, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := idx.Cluster(Params{Eps: 3, MinPts: 4})
			if err != nil {
				errs[g] = err
				return
			}
			if q, _ := Quality(ref, res); q != 1 {
				errs[g] = fmt.Errorf("goroutine %d got different labels (q=%g)", g, q)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestWithContextCancellation(t *testing.T) {
	pts := testPoints(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ClusterVariants(pts, CartesianVariants([]float64{3}, []int{4}), WithContext(ctx))
	if err == nil {
		t.Fatal("canceled context accepted")
	}
	// nil context falls back to Background.
	if _, err := ClusterVariants(pts, CartesianVariants([]float64{3}, []int{4}), WithContext(nil)); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalAPI(t *testing.T) {
	if _, err := NewIncremental(Params{Eps: 0, MinPts: 3}); err == nil {
		t.Error("bad params accepted")
	}
	var w Work
	inc, err := NewIncremental(Params{Eps: 1, MinPts: 3}, WithWork(&w))
	if err != nil {
		t.Fatal(err)
	}
	inc.InsertBatch([]Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.25, Y: 0.4}})
	res := inc.Labels()
	if res.NumClusters != 1 || inc.LiveLen() != 3 || inc.Len() != 3 {
		t.Fatalf("after inserts: %v live=%d", res, inc.LiveLen())
	}
	if w.NeighborSearches == 0 {
		t.Error("work not tracked")
	}
	if err := inc.Delete(1); err != nil {
		t.Fatal(err)
	}
	if inc.Labels().NumClusters != 0 {
		t.Error("minimal cluster should dissolve on delete")
	}
	// Streaming result must match a batch run over the live points.
	inc2, _ := NewIncremental(Params{Eps: 3, MinPts: 4})
	pts := testPoints(t, 2000)
	inc2.InsertBatch(pts)
	batch, _ := Cluster(pts, Params{Eps: 3, MinPts: 4})
	q, err := Quality(batch, inc2.Labels())
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.99 {
		t.Errorf("incremental vs batch quality = %g", q)
	}
}

func TestClusterIntraThreadsMatchesSequential(t *testing.T) {
	pts := testPoints(t, 8000)
	idx := NewIndex(pts)
	p := Params{Eps: 3, MinPts: 4}
	seq, err := idx.Cluster(p) // default: sequential
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		par, err := idx.Cluster(p, WithIntraThreads(n))
		if err != nil {
			t.Fatal(err)
		}
		if par.NumClusters != seq.NumClusters {
			t.Fatalf("intra=%d: clusters %d != %d", n, par.NumClusters, seq.NumClusters)
		}
		for i := range seq.Labels {
			if par.Labels[i] != seq.Labels[i] {
				t.Fatalf("intra=%d: label[%d] = %d, want %d", n, i, par.Labels[i], seq.Labels[i])
			}
		}
		q, err := Quality(seq, par)
		if err != nil {
			t.Fatal(err)
		}
		if q != 1.0 {
			t.Fatalf("intra=%d: quality = %g, want 1.0", n, q)
		}
	}
	// Auto mode: WithThreads widens single-variant Cluster too.
	auto, err := idx.Cluster(p, WithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	if q, _ := Quality(seq, auto); q != 1.0 {
		t.Fatalf("auto width: quality = %g, want 1.0", q)
	}
}

func TestClusterHonorsContextCancellation(t *testing.T) {
	pts := testPoints(t, 5000)
	idx := NewIndex(pts)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Params{Eps: 3, MinPts: 4}
	// The facade wraps internal errors ("vdbscan: ..."); the contract is
	// errors.Is matchability, not identity.
	if _, err := idx.Cluster(p, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential: err = %v, want context.Canceled", err)
	}
	if _, err := idx.Cluster(p, WithContext(ctx), WithIntraThreads(4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel: err = %v, want context.Canceled", err)
	}
}

func TestClusterVariantsTwoLevel(t *testing.T) {
	pts := testPoints(t, 5000)
	idx := NewIndex(pts)
	params := CartesianVariants([]float64{2, 3, 4}, []int{4, 8})
	base, err := idx.ClusterVariants(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]RunOption{
		{WithThreads(4)},                                      // donation-only two-level
		{WithThreads(2), WithIntraThreads(2)},                 // explicit width
		{WithThreads(4), WithIntraThreads(2), WithoutReuse()}, // all from scratch
	} {
		run, err := idx.ClusterVariants(params, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if len(run.Results) != len(params) {
			t.Fatalf("results = %d, want %d", len(run.Results), len(params))
		}
		for i, vr := range run.Results {
			q, err := Quality(base.Results[i].Clustering, vr.Clustering)
			if err != nil {
				t.Fatal(err)
			}
			if q < 0.998 {
				t.Fatalf("variant %d (%+v): quality = %g", i, vr.Params, q)
			}
		}
	}
}

// TestWithTracerChromeTrace drives the public tracing API end to end: run a
// variant set with a tracer attached, export Chrome trace JSON, and check
// the ISSUE acceptance shape — valid JSON with one lifecycle span per
// variant carrying seed-source and reuse-fraction annotations.
func TestWithTracerChromeTrace(t *testing.T) {
	pts := testPoints(t, 4000)
	params := CartesianVariants([]float64{2, 3, 4}, []int{4, 8})
	tr := NewTracer()
	run, err := ClusterVariants(pts, params, WithThreads(3), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := map[int]map[string]any{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Pid == 2 && e.Args["fraction_reused"] != nil {
			spans[e.Tid] = e.Args
		}
	}
	if len(spans) != len(params) {
		t.Fatalf("got %d variant lifecycle spans, want %d", len(spans), len(params))
	}
	for i, r := range run.Results {
		args := spans[i]
		if args == nil {
			t.Fatalf("variant %d has no lifecycle span", i)
		}
		if got := int(args["seed_source"].(float64)); got != r.SourceIndex {
			t.Errorf("variant %d: trace seed_source %d, result %d", i, got, r.SourceIndex)
		}
		if got := args["fraction_reused"].(float64); got != r.FractionReused {
			t.Errorf("variant %d: trace fraction_reused %v, result %v", i, got, r.FractionReused)
		}
	}
	buf.Reset()
	if err := tr.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "6 variants done") {
		t.Errorf("timeline header missing variant count:\n%s", buf.String())
	}
}

// TestTracedVariantsByteIdentical is the acceptance criterion that tracing
// changes nothing: pointer-tree and flat-tree runs with a tracer attached
// must match an untraced flat run label for label.
func TestTracedVariantsByteIdentical(t *testing.T) {
	pts := testPoints(t, 4000)
	params := CartesianVariants([]float64{2, 3.5}, []int{4, 8, 12})
	base, err := ClusterVariants(pts, params, WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string][]Option{
		"flat+tracer":    {WithThreads(2), WithTracer(NewTracer())},
		"pointer+tracer": {WithThreads(2), WithTracer(NewTracer()), WithFlatIndex(false)},
		"nil-tracer":     {WithThreads(2), WithTracer(nil)},
	} {
		run, err := ClusterVariants(pts, params, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range base.Results {
			a, b := base.Results[i].Clustering, run.Results[i].Clustering
			if a.NumClusters != b.NumClusters {
				t.Fatalf("%s variant %d: %d clusters, want %d", name, i, b.NumClusters, a.NumClusters)
			}
			for j := range a.Labels {
				if a.Labels[j] != b.Labels[j] {
					t.Fatalf("%s variant %d: label[%d] = %d, want %d", name, i, j, b.Labels[j], a.Labels[j])
				}
			}
		}
	}
}

// TestWithProgressDelivery: the public progress callback fires once per
// variant, serially, with Done counting 1..n.
func TestWithProgressDelivery(t *testing.T) {
	pts := testPoints(t, 3000)
	params := CartesianVariants([]float64{2, 3}, []int{4, 8})
	var events []ProgressEvent
	_, err := ClusterVariants(pts, params, WithThreads(2),
		WithProgress(func(e ProgressEvent) { events = append(events, e) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(params) {
		t.Fatalf("got %d progress events, want %d", len(events), len(params))
	}
	for i, e := range events {
		if e.Done != i+1 || e.Total != len(params) {
			t.Fatalf("event %d: Done=%d Total=%d, want %d/%d", i, e.Done, e.Total, i+1, len(params))
		}
		if e.Elapsed < 0 {
			t.Fatalf("event %d: negative Elapsed %v", i, e.Elapsed)
		}
	}
}

// TestClusterSingleVariantTraced: the single-variant Cluster path also
// produces a complete one-span trace, sequential or parallel.
func TestClusterSingleVariantTraced(t *testing.T) {
	pts := testPoints(t, 3000)
	for name, opts := range map[string][]Option{
		"sequential": nil,
		"parallel":   {WithIntraThreads(3)},
	} {
		tr := NewTracer()
		var got ProgressEvent
		all := append([]Option{WithTracer(tr), WithProgress(func(e ProgressEvent) { got = e })}, opts...)
		if _, err := Cluster(pts, Params{Eps: 3, MinPts: 4}, all...); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("%s: trace not valid JSON", name)
		}
		if !strings.Contains(buf.String(), "fraction_reused") {
			t.Errorf("%s: no lifecycle span in trace", name)
		}
		if got.Done != 1 || got.Total != 1 {
			t.Errorf("%s: progress %d/%d, want 1/1", name, got.Done, got.Total)
		}
	}
}
