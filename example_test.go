package vdbscan_test

import (
	"fmt"

	"vdbscan"
)

// grid5 builds a tiny deterministic dataset: two 3x3 grids of unit-spaced
// points far apart, plus one isolated outlier.
func grid5() []vdbscan.Point {
	var pts []vdbscan.Point
	for _, origin := range []vdbscan.Point{{X: 0, Y: 0}, {X: 100, Y: 100}} {
		for dx := 0; dx < 3; dx++ {
			for dy := 0; dy < 3; dy++ {
				pts = append(pts, vdbscan.Point{X: origin.X + float64(dx), Y: origin.Y + float64(dy)})
			}
		}
	}
	return append(pts, vdbscan.Point{X: 50, Y: 50})
}

func ExampleCluster() {
	res, err := vdbscan.Cluster(grid5(), vdbscan.Params{Eps: 1.5, MinPts: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", res.NumClusters)
	fmt.Println("noise:", res.NumNoise())
	// Output:
	// clusters: 2
	// noise: 1
}

func ExampleIndex_ClusterVariants() {
	idx := vdbscan.NewIndex(grid5())
	run, err := idx.ClusterVariants([]vdbscan.Params{
		{Eps: 1.5, MinPts: 8}, // strict: requires 8 neighbors
		{Eps: 1.5, MinPts: 4}, // relaxed: reuses the strict variant's clusters
	})
	if err != nil {
		panic(err)
	}
	for _, vr := range run.Results {
		fmt.Printf("%v -> %d clusters (from scratch: %v)\n",
			vr.Params, vr.Clustering.NumClusters, vr.FromScratch)
	}
	// Output:
	// (1.5, 8) -> 2 clusters (from scratch: true)
	// (1.5, 4) -> 2 clusters (from scratch: false)
}

func ExampleCanReuse() {
	strict := vdbscan.Params{Eps: 0.2, MinPts: 32}
	relaxed := vdbscan.Params{Eps: 0.6, MinPts: 4}
	fmt.Println(vdbscan.CanReuse(relaxed, strict))
	fmt.Println(vdbscan.CanReuse(strict, relaxed))
	// Output:
	// true
	// false
}

func ExampleQuality() {
	pts := grid5()
	idx := vdbscan.NewIndex(pts)
	a, _ := idx.Cluster(vdbscan.Params{Eps: 1.5, MinPts: 4})
	q, _ := vdbscan.Quality(a, a)
	fmt.Printf("%.3f\n", q)
	// Output:
	// 1.000
}

func ExampleCartesianVariants() {
	vs := vdbscan.CartesianVariants([]float64{0.1, 0.2}, []int{1, 2})
	fmt.Println(vs)
	// Output:
	// [(0.1, 1) (0.1, 2) (0.2, 1) (0.2, 2)]
}
