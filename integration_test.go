package vdbscan

import (
	"math"
	"testing"
	"testing/quick"

	"vdbscan/internal/cluster"
	"vdbscan/internal/data"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/tec"
)

// Integration tests exercise the full pipeline — generator → grid sort →
// R-trees → DBSCAN/VariantDBSCAN → quality — across every dataset class.

func TestIntegrationAllDatasetClasses(t *testing.T) {
	datasets := []*data.Dataset{}
	for _, cfg := range []data.SynthConfig{
		{Class: data.ClassCF, N: 4000, NoiseFrac: 0.05, Seed: 1},
		{Class: data.ClassCF, N: 4000, NoiseFrac: 0.30, Seed: 2},
		{Class: data.ClassCV, N: 4000, NoiseFrac: 0.15, Seed: 3},
	} {
		ds, err := data.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		datasets = append(datasets, ds)
	}
	sw, err := tec.Simulate(tec.Config{N: 4000, Seed: 4, Name: "SW-test"})
	if err != nil {
		t.Fatal(err)
	}
	datasets = append(datasets, sw)

	params := CartesianVariants([]float64{8, 12}, []int{4, 8})
	for _, ds := range datasets {
		t.Run(ds.Name, func(t *testing.T) {
			idx := NewIndex(ds.Points)
			run, err := idx.ClusterVariants(params, WithThreads(4))
			if err != nil {
				t.Fatal(err)
			}
			for i, vr := range run.Results {
				// Cross-validate against the brute-force O(n²) oracle.
				oracle, err := dbscan.RunBruteForce(ds.Points, params[i], nil)
				if err != nil {
					t.Fatal(err)
				}
				q, err := Quality(oracle, vr.Clustering)
				if err != nil {
					t.Fatal(err)
				}
				if q < 0.99 {
					t.Errorf("%s %v: quality vs brute force = %g", ds.Name, params[i], q)
				}
			}
		})
	}
}

func TestIntegrationVariantChainQuality(t *testing.T) {
	// A long chained sweep (every variant reusable from its predecessor)
	// must keep quality high at every link — accumulated drift would show
	// up at the end of the chain.
	ds, err := data.Generate(data.SynthConfig{Class: data.ClassCV, N: 8000, NoiseFrac: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	idx := NewIndex(ds.Points)
	var params []Params
	for i := 0; i < 10; i++ {
		params = append(params, Params{Eps: 4 + float64(i)*0.5, MinPts: 24 - 2*i})
	}
	run, err := idx.ClusterVariants(params)
	if err != nil {
		t.Fatal(err)
	}
	for i, vr := range run.Results {
		ref, err := idx.Cluster(params[i])
		if err != nil {
			t.Fatal(err)
		}
		q, err := Quality(ref, vr.Clustering)
		if err != nil {
			t.Fatal(err)
		}
		if q < 0.99 {
			t.Errorf("chain link %d (%v): quality %g", i, params[i], q)
		}
	}
}

func TestIntegrationThreadCountInvariance(t *testing.T) {
	// The clustering of each variant must be equivalent no matter how many
	// workers execute the set (scheduling changes reuse sources, not
	// correctness).
	ds, err := data.Generate(data.SynthConfig{Class: data.ClassCF, N: 6000, NoiseFrac: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	idx := NewIndex(ds.Points)
	params := CartesianVariants([]float64{5, 8}, []int{4, 16})
	base, err := idx.ClusterVariants(params, WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 8} {
		run, err := idx.ClusterVariants(params, WithThreads(threads))
		if err != nil {
			t.Fatal(err)
		}
		for i := range params {
			q, err := Quality(base.Results[i].Clustering, run.Results[i].Clustering)
			if err != nil {
				t.Fatal(err)
			}
			if q < 0.99 {
				t.Errorf("T=%d variant %v: quality vs T=1 = %g", threads, params[i], q)
			}
		}
	}
}

func TestIntegrationFailureInjection(t *testing.T) {
	// Degenerate inputs must not crash or mislabel.
	t.Run("empty", func(t *testing.T) {
		run, err := ClusterVariants(nil, CartesianVariants([]float64{1}, []int{4}))
		if err != nil {
			t.Fatal(err)
		}
		if run.Results[0].Clustering.Len() != 0 {
			t.Error("empty input should give empty labels")
		}
	})
	t.Run("single-point", func(t *testing.T) {
		res, err := Cluster([]Point{{X: 1, Y: 1}}, Params{Eps: 1, MinPts: 2})
		if err != nil || res.Labels[0] != Noise {
			t.Errorf("single point: %v %v", res, err)
		}
	})
	t.Run("all-duplicates", func(t *testing.T) {
		pts := make([]Point, 100)
		for i := range pts {
			pts[i] = Point{X: 7, Y: 7}
		}
		res, err := Cluster(pts, Params{Eps: 0.5, MinPts: 4})
		if err != nil || res.NumClusters != 1 || res.NumNoise() != 0 {
			t.Errorf("duplicates: %v %v", res, err)
		}
	})
	t.Run("collinear", func(t *testing.T) {
		pts := make([]Point, 50)
		for i := range pts {
			pts[i] = Point{X: float64(i), Y: 42}
		}
		res, err := Cluster(pts, Params{Eps: 1.5, MinPts: 3})
		if err != nil || res.NumClusters != 1 {
			t.Errorf("collinear: %v %v", res, err)
		}
	})
	t.Run("nan-coordinates", func(t *testing.T) {
		pts := []Point{{X: math.NaN(), Y: 1}, {X: 1, Y: 1}, {X: 1.1, Y: 1}, {X: 1.2, Y: 1}}
		res, err := Cluster(pts, Params{Eps: 0.5, MinPts: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Labels[0] != Noise {
			t.Error("NaN point should be noise")
		}
	})
	t.Run("huge-eps", func(t *testing.T) {
		pts := []Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}}
		res, err := Cluster(pts, Params{Eps: 1e9, MinPts: 3})
		if err != nil || res.NumClusters != 1 {
			t.Errorf("huge eps: %v %v", res, err)
		}
	})
	t.Run("fewer-variants-than-threads", func(t *testing.T) {
		pts := []Point{{X: 0, Y: 0}, {X: 0.1, Y: 0}, {X: 0.2, Y: 0}}
		run, err := ClusterVariants(pts, CartesianVariants([]float64{1}, []int{2}), WithThreads(64))
		if err != nil || len(run.Results) != 1 {
			t.Errorf("tiny V: %v %v", run, err)
		}
	})
}

// Property: for any random blob layout, reuse across a random compatible
// parameter pair preserves the noise count and cluster count.
func TestQuickReuseEquivalence(t *testing.T) {
	f := func(seed uint64, epsBump uint8, mpDrop uint8) bool {
		ds, err := data.Generate(data.SynthConfig{
			Class: data.ClassCV, N: 1500, NoiseFrac: 0.2, Seed: seed,
		})
		if err != nil {
			return false
		}
		idx := NewIndex(ds.Points)
		base := Params{Eps: 6, MinPts: 12}
		target := Params{
			Eps:    base.Eps + float64(epsBump%8),
			MinPts: base.MinPts - int(mpDrop%9),
		}
		if target.MinPts < 1 {
			target.MinPts = 1
		}
		run, err := idx.ClusterVariants([]Params{base, target})
		if err != nil {
			return false
		}
		ref, err := idx.Cluster(target)
		if err != nil {
			return false
		}
		got := run.Results[1].Clustering
		if got.NumClusters != ref.NumClusters {
			return false
		}
		// Border ties can shift a few points between clusters but noise
		// status is stable on these layouts.
		return got.NumNoise() == ref.NumNoise()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: quality of a result against itself is always exactly 1.
func TestQuickQualityReflexive(t *testing.T) {
	f := func(labels []int8) bool {
		r := cluster.NewResult(len(labels))
		max := int32(0)
		for i, l := range labels {
			v := int32(l % 5)
			if v <= 0 {
				v = cluster.Noise
			}
			r.Labels[i] = v
			if v > max {
				max = v
			}
		}
		r.NumClusters = int(max)
		q, err := Quality(r, r)
		return err == nil && q == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
