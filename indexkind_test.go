package vdbscan

import (
	"fmt"
	"testing"
)

// samePartition requires a and b to be the exact same clustering up to
// cluster renumbering: identical noise sets and a label bijection. This is
// the right cross-run comparison when execution order (threads > 1, reuse
// source selection) may renumber clusters without changing membership.
func samePartition(t *testing.T, got, want *Clustering, tag string) {
	t.Helper()
	if got.NumClusters != want.NumClusters {
		t.Fatalf("%s: clusters %d vs %d", tag, got.NumClusters, want.NumClusters)
	}
	if len(got.Labels) != len(want.Labels) {
		t.Fatalf("%s: lengths %d vs %d", tag, len(got.Labels), len(want.Labels))
	}
	fwd := map[int32]int32{}
	rev := map[int32]int32{}
	for i := range want.Labels {
		g, w := got.Labels[i], want.Labels[i]
		if (g <= 0) != (w <= 0) {
			t.Fatalf("%s: point %d noise mismatch: %d vs %d", tag, i, g, w)
		}
		if w <= 0 {
			continue
		}
		if m, ok := fwd[g]; ok && m != w {
			t.Fatalf("%s: cluster %d maps to both %d and %d", tag, g, m, w)
		}
		if m, ok := rev[w]; ok && m != g {
			t.Fatalf("%s: cluster %d mapped from both %d and %d", tag, w, m, g)
		}
		fwd[g], rev[w] = w, g
	}
}

// TestIndexKindLabelEquivalence is the end-to-end cross-kind property:
// ClusterVariants on an IndexGrid index must agree exactly with the
// IndexRTree index under the same settings, for every variant, at every
// worker width, with reuse on and off. Both substrates answer every
// ε-search exactly, so the clusterings must be the same partition; at
// threads=1 the schedule is deterministic too, so the raw label slices
// must be byte-identical.
func TestIndexKindLabelEquivalence(t *testing.T) {
	pts := testPoints(t, 8000)
	params := CartesianVariants([]float64{1.5, 2, 3}, []int{4, 8})

	rtreeIdx := NewIndex(pts, WithIndexKind(IndexRTree))
	gridIdx := NewIndex(pts, WithIndexKind(IndexGrid))

	for _, threads := range []int{1, 2, 4, 8} {
		for _, reuse := range []bool{true, false} {
			opts := []RunOption{WithThreads(threads)}
			if !reuse {
				opts = append(opts, WithoutReuse())
			}
			t.Run(fmt.Sprintf("threads=%d/reuse=%v", threads, reuse), func(t *testing.T) {
				want, err := rtreeIdx.ClusterVariants(params, opts...)
				if err != nil {
					t.Fatal(err)
				}
				got, err := gridIdx.ClusterVariants(params, opts...)
				if err != nil {
					t.Fatal(err)
				}
				for vi := range params {
					tag := params[vi].String()
					g, w := got.Results[vi].Clustering, want.Results[vi].Clustering
					samePartition(t, g, w, tag)
					if threads == 1 {
						for i := range w.Labels {
							if g.Labels[i] != w.Labels[i] {
								t.Fatalf("%s: label[%d] = %d, want %d (byte-identity at threads=1)",
									tag, i, g.Labels[i], w.Labels[i])
							}
						}
					}
				}
			})
		}
	}
}

// TestIndexKindSingleCluster pins the single-variant path (Index.Cluster)
// and the intra-variant parallel path across kinds: byte-identical labels
// at any width (intra-variant parallelism is deterministic by design).
func TestIndexKindSingleCluster(t *testing.T) {
	pts := testPoints(t, 6000)
	p := Params{Eps: 2.5, MinPts: 5}
	want, err := NewIndex(pts).Cluster(p)
	if err != nil {
		t.Fatal(err)
	}
	gridIdx := NewIndex(pts, WithIndexKind(IndexGrid))
	for _, intra := range []int{0, 1, 4} {
		var opts []RunOption
		if intra > 0 {
			opts = append(opts, WithIntraThreads(intra))
		}
		got, err := gridIdx.Cluster(p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumClusters != want.NumClusters {
			t.Fatalf("intra=%d: clusters %d vs %d", intra, got.NumClusters, want.NumClusters)
		}
		for i := range want.Labels {
			if got.Labels[i] != want.Labels[i] {
				t.Fatalf("intra=%d: label[%d] = %d, want %d", intra, i, got.Labels[i], want.Labels[i])
			}
		}
	}
}
