// Command vdbscan clusters a dataset file with one or many DBSCAN variants.
//
// Usage:
//
//	vdbscan -in data.csv -eps 0.5 -minpts 4                     # one variant
//	vdbscan -in data.gob -A 0.2,0.4,0.6 -B 4,8,16 -threads 8    # V = A x B
//	vdbscan -in data.csv -eps 0.5 -minpts 4 -labels out.csv     # save labels
//
// With -A/-B the full variant set is executed with VariantDBSCAN (shared
// index, cluster reuse, scheduling) and a per-variant summary is printed;
// -labels then writes one file per variant (out.v0.csv, out.v1.csv, ...)
// in CartesianVariants order.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vdbscan"
	"vdbscan/internal/cliutil"
	"vdbscan/internal/dataio"
	renderpkg "vdbscan/internal/render"
)

func main() {
	in := flag.String("in", "", "input dataset (.csv or gob)")
	eps := flag.Float64("eps", 0, "epsilon for a single run")
	minpts := flag.Int("minpts", 4, "minpts for a single run")
	aList := flag.String("A", "", "comma-separated eps values (variant set A)")
	bList := flag.String("B", "", "minpts values: comma list (4,8,16) or range lo:hi:step (10:100:5)")
	threads := flag.Int("threads", 1, "worker goroutines")
	r := flag.Int("r", 70, "points per leaf MBB in the eps-search tree")
	indexKind := flag.String("index", "rtree", "eps-search index structure: rtree or grid")
	scheme := flag.String("reuse", "density", "cluster reuse scheme: default, density, ptssquared")
	strategy := flag.String("sched", "greedy", "scheduling heuristic: greedy, minpts, tree")
	labelsOut := flag.String("labels", "", "write per-point labels CSV here (variant runs write one .vN file per variant)")
	top := flag.Int("top", 5, "show the k largest clusters")
	render := flag.Bool("render", false, "draw an ASCII map of the clustering (single run only)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	ds, err := dataio.LoadDataset(*in)
	if err != nil {
		fail(err)
	}
	fmt.Printf("loaded %s: %d points\n", ds.Name, ds.Len())

	schemeVal, err := cliutil.ParseScheme(*scheme)
	if err != nil {
		fail(err)
	}
	strategyVal, err := cliutil.ParseStrategy(*strategy)
	if err != nil {
		fail(err)
	}
	kindVal, err := cliutil.ParseIndexKind(*indexKind)
	if err != nil {
		fail(err)
	}

	idx := vdbscan.NewIndex(ds.Points, vdbscan.WithR(*r), vdbscan.WithIndexKind(kindVal))

	if *aList != "" || *bList != "" {
		A, err := cliutil.ParseFloats(*aList)
		if err != nil {
			fail(fmt.Errorf("bad -A: %w", err))
		}
		B, err := cliutil.ParseRange(*bList)
		if err != nil {
			fail(fmt.Errorf("bad -B: %w", err))
		}
		params := vdbscan.CartesianVariants(A, B)
		var work vdbscan.Work
		run, err := idx.ClusterVariants(params,
			vdbscan.WithThreads(*threads),
			vdbscan.WithReuseScheme(schemeVal),
			vdbscan.WithStrategy(strategyVal),
			vdbscan.WithWork(&work))
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-14s %9s %8s %8s %10s %8s\n",
			"variant", "clusters", "noise", "reused", "time", "scratch")
		for _, vr := range run.Results {
			fmt.Printf("%-14s %9d %8d %7.1f%% %10s %8v\n",
				vr.Params.String(), vr.Clustering.NumClusters, vr.Clustering.NumNoise(),
				vr.FractionReused*100, vr.Duration().Round(time.Microsecond), vr.FromScratch)
		}
		fmt.Printf("\nmakespan=%s threads=%d meanReuse=%.1f%%\n",
			run.Makespan.Round(time.Millisecond), run.Threads, run.MeanFractionReused()*100)
		fmt.Printf("work: %v\n", work)
		if *labelsOut != "" {
			for i, vr := range run.Results {
				path := variantLabelsPath(*labelsOut, i)
				if err := writeLabels(path, vr.Clustering); err != nil {
					fail(err)
				}
			}
			fmt.Printf("labels written to %s (%d variants)\n",
				variantLabelsPath(*labelsOut, 0)+" ...", len(run.Results))
		}
		return
	}

	if *eps <= 0 {
		fail(fmt.Errorf("need -eps (or -A/-B for a variant set)"))
	}
	start := time.Now()
	res, err := idx.Cluster(vdbscan.Params{Eps: *eps, MinPts: *minpts})
	if err != nil {
		fail(err)
	}
	fmt.Printf("eps=%g minpts=%d: %d clusters, %d noise points in %s\n",
		*eps, *minpts, res.NumClusters, res.NumNoise(), time.Since(start).Round(time.Microsecond))
	if res.NumClusters > 0 {
		fmt.Printf("largest clusters: %v\n", res.TopClusterSizes(*top))
	}
	if *render {
		fmt.Println()
		if err := renderpkg.Clusters(os.Stdout, ds.Points, res, renderpkg.Options{Width: 100, Height: 30}); err != nil {
			fail(err)
		}
	}
	if *labelsOut != "" {
		if err := writeLabels(*labelsOut, res); err != nil {
			fail(err)
		}
		fmt.Printf("labels written to %s\n", *labelsOut)
	}
}

func writeLabels(path string, res *vdbscan.Clustering) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dataio.WriteLabelsCSV(f, res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// variantLabelsPath derives the per-variant labels file for variant i:
// "out.csv" becomes "out.v0.csv", an extension-less base gets ".v0".
func variantLabelsPath(base string, i int) string {
	if ext := filepath.Ext(base); ext != "" {
		return fmt.Sprintf("%s.v%d%s", strings.TrimSuffix(base, ext), i, ext)
	}
	return fmt.Sprintf("%s.v%d", base, i)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vdbscan:", err)
	os.Exit(1)
}
