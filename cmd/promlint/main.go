// Command promlint validates a Prometheus text-format exposition with the
// in-tree parser (internal/obs/prom) — a promtool-style lint with no
// external dependency, used by CI against vdbscand's live /metrics output.
//
// Usage:
//
//	curl -s localhost:8714/metrics | promlint -min-histograms 5 -require-labels dataset,index,tiled
//	promlint metrics.txt
//
// Exit status is non-zero when the input is malformed or a requirement is
// unmet; on success it prints a one-line summary.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vdbscan/internal/obs/prom"
)

func main() {
	minHist := flag.Int("min-histograms", 0, "fail unless at least this many histogram families are present")
	requireLabels := flag.String("require-labels", "",
		"comma-separated label names every histogram family must carry on its samples")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	} else if flag.NArg() > 1 {
		fatal("usage: promlint [flags] [file]")
	}

	exp, err := prom.Parse(in)
	if err != nil {
		fatal("%s: %v", name, err)
	}
	if got := exp.Histograms(); got < *minHist {
		fatal("%s: %d histogram families, want >= %d", name, got, *minHist)
	}
	if *requireLabels != "" {
		want := strings.Split(*requireLabels, ",")
		for _, fam := range exp.Families {
			if fam.Type != "histogram" || len(fam.Samples) == 0 {
				continue
			}
			for _, l := range want {
				if _, ok := fam.Samples[0].Labels[strings.TrimSpace(l)]; !ok {
					fatal("%s: histogram %s missing required label %q", name, fam.Name, l)
				}
			}
		}
	}
	samples := 0
	for _, fam := range exp.Families {
		samples += len(fam.Samples)
	}
	fmt.Printf("promlint: %s ok — %d families (%d histograms), %d samples\n",
		name, len(exp.Families), exp.Histograms(), samples)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promlint: "+format+"\n", args...)
	os.Exit(1)
}
