// Command promlint validates a Prometheus text-format exposition with the
// in-tree parser (internal/obs/prom) — a promtool-style lint with no
// external dependency, used by CI against vdbscand's live /metrics output.
//
// Usage:
//
//	curl -s localhost:8714/metrics | promlint -min-histograms 5 -require-labels dataset,index,tiled
//	curl -s localhost:8714/metrics | promlint -require-family-labels vdbscand_tenant_:tenant
//	promlint metrics.txt
//
// -require-family-labels is repeatable and takes PREFIX:LABEL[,LABEL...]:
// at least one family (of any type) whose name starts with PREFIX must be
// present with samples, and every such family's samples must carry all the
// listed labels. Unlike -require-labels it covers counters and gauges, not
// just histograms — vdbscand's per-tenant accounting families are counters.
//
// Exit status is non-zero when the input is malformed or a requirement is
// unmet; on success it prints a one-line summary.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vdbscan/internal/obs/prom"
)

func main() {
	minHist := flag.Int("min-histograms", 0, "fail unless at least this many histogram families are present")
	requireLabels := flag.String("require-labels", "",
		"comma-separated label names every histogram family must carry on its samples")
	var familyReqs []familyReq
	flag.Func("require-family-labels",
		"PREFIX:LABEL[,LABEL...] — require >=1 family named PREFIX* with samples carrying the labels (repeatable)",
		func(v string) error {
			req, err := parseFamilyReq(v)
			if err != nil {
				return err
			}
			familyReqs = append(familyReqs, req)
			return nil
		})
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	} else if flag.NArg() > 1 {
		fatal("usage: promlint [flags] [file]")
	}

	exp, err := prom.Parse(in)
	if err != nil {
		fatal("%s: %v", name, err)
	}
	if got := exp.Histograms(); got < *minHist {
		fatal("%s: %d histogram families, want >= %d", name, got, *minHist)
	}
	if *requireLabels != "" {
		want := strings.Split(*requireLabels, ",")
		for _, fam := range exp.Families {
			if fam.Type != "histogram" || len(fam.Samples) == 0 {
				continue
			}
			for _, l := range want {
				if _, ok := fam.Samples[0].Labels[strings.TrimSpace(l)]; !ok {
					fatal("%s: histogram %s missing required label %q", name, fam.Name, l)
				}
			}
		}
	}
	for _, req := range familyReqs {
		matched := 0
		for _, fam := range exp.Families {
			if !strings.HasPrefix(fam.Name, req.prefix) || len(fam.Samples) == 0 {
				continue
			}
			matched++
			for _, l := range req.labels {
				if _, ok := fam.Samples[0].Labels[l]; !ok {
					fatal("%s: family %s missing required label %q", name, fam.Name, l)
				}
			}
		}
		if matched == 0 {
			fatal("%s: no family named %s* has samples (required labels %s)",
				name, req.prefix, strings.Join(req.labels, ","))
		}
	}
	samples := 0
	for _, fam := range exp.Families {
		samples += len(fam.Samples)
	}
	fmt.Printf("promlint: %s ok — %d families (%d histograms), %d samples\n",
		name, len(exp.Families), exp.Histograms(), samples)
}

// familyReq is one parsed -require-family-labels value.
type familyReq struct {
	prefix string
	labels []string
}

func parseFamilyReq(v string) (familyReq, error) {
	prefix, labelList, ok := strings.Cut(v, ":")
	if !ok || prefix == "" || labelList == "" {
		return familyReq{}, fmt.Errorf("want PREFIX:LABEL[,LABEL...], got %q", v)
	}
	var labels []string
	for _, l := range strings.Split(labelList, ",") {
		if l = strings.TrimSpace(l); l != "" {
			labels = append(labels, l)
		}
	}
	if len(labels) == 0 {
		return familyReq{}, fmt.Errorf("no labels in %q", v)
	}
	return familyReq{prefix: strings.TrimSpace(prefix), labels: labels}, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promlint: "+format+"\n", args...)
	os.Exit(1)
}
