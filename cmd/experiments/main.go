// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|table1|table2|table3|table4|fig4|fig5|fig6|fig7|fig8|fig9|indexkinds]
//	            [-scale 0.01] [-threads 16] [-r 70] [-index rtree|grid] [-seed N]
//	            [-trace out.json] [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -scale multiplies every dataset's |D| (1 reproduces the paper's sizes; the
// default 0.01 keeps a laptop run in minutes). ε values are automatically
// multiplied by 1/√scale to compensate for the density drop.
//
// -trace runs the traced demonstration workload (6 variants on SW1 with an
// execution tracer attached) after the selected experiments, printing a
// plain-text timeline and writing Chrome trace-event JSON to the given file
// — open it in chrome://tracing or https://ui.perfetto.dev. The same run is
// also available as `-exp trace` (timeline only unless -trace is set).
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments, so index-layout and allocation behavior can be inspected
// (`go tool pprof cpu.out`) without editing harness code.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"vdbscan/internal/bench"
	"vdbscan/internal/cliutil"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: all, "+strings.Join(bench.Experiments, ", "))
	scale := flag.Float64("scale", 0.01, "dataset size scale factor in (0,1]")
	threads := flag.Int("threads", 16, "worker pool size T for multithreaded scenarios")
	r := flag.Int("r", 70, "epsilon-search tree leaf occupancy (points per MBB)")
	indexKind := flag.String("index", "rtree", "eps-search index structure: rtree or grid")
	seed := flag.Uint64("seed", 0xDB5CA7, "dataset generation seed")
	trials := flag.Int("trials", 1, "repetitions averaged per timed measurement (paper: 3)")
	tracePath := flag.String("trace", "", "write a Chrome trace of the demonstration workload to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()

	if *scale <= 0 || *scale > 1 {
		fmt.Fprintln(os.Stderr, "experiments: -scale must be in (0,1]")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeHeapProfile(*memProfile)
	}
	kindVal, err := cliutil.ParseIndexKind(*indexKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	s := bench.NewSuite(*scale, os.Stdout)
	s.Threads = *threads
	s.R = *r
	s.IndexKind = kindVal
	s.Seed = *seed
	s.Trials = *trials
	s.TracePath = *tracePath

	fmt.Printf("VariantDBSCAN experiment harness\n")
	fmt.Printf("scale=%g (eps x%.2f), threads=%d, r=%d, index=%s, trials=%d, seed=%#x\n",
		*scale, s.EpsFactor(), s.Threads, s.R, s.IndexKind, s.Trials, s.Seed)

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		// Flush the profiles before exiting so a failed experiment still
		// leaves them inspectable (os.Exit skips deferred writers).
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			writeHeapProfile(*memProfile)
		}
		os.Exit(1)
	}
	start := time.Now()
	if err := s.Run(*exp); err != nil {
		fail(err)
	}
	if *tracePath != "" && *exp != "trace" {
		if err := s.Trace(); err != nil {
			fail(err)
		}
	}
	fmt.Printf("\ncompleted %q in %s\n", *exp, time.Since(start).Round(time.Millisecond))
}

// writeHeapProfile snapshots the live heap into path.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return
	}
	defer f.Close()
	runtime.GC() // settle live heap before the snapshot
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
}
