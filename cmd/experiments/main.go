// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|table1|table2|table3|table4|fig4|fig5|fig6|fig7|fig8|fig9]
//	            [-scale 0.01] [-threads 16] [-r 70] [-seed N]
//
// -scale multiplies every dataset's |D| (1 reproduces the paper's sizes; the
// default 0.01 keeps a laptop run in minutes). ε values are automatically
// multiplied by 1/√scale to compensate for the density drop.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vdbscan/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: all, "+strings.Join(bench.Experiments, ", "))
	scale := flag.Float64("scale", 0.01, "dataset size scale factor in (0,1]")
	threads := flag.Int("threads", 16, "worker pool size T for multithreaded scenarios")
	r := flag.Int("r", 70, "epsilon-search tree leaf occupancy (points per MBB)")
	seed := flag.Uint64("seed", 0xDB5CA7, "dataset generation seed")
	trials := flag.Int("trials", 1, "repetitions averaged per timed measurement (paper: 3)")
	flag.Parse()

	if *scale <= 0 || *scale > 1 {
		fmt.Fprintln(os.Stderr, "experiments: -scale must be in (0,1]")
		os.Exit(2)
	}
	s := bench.NewSuite(*scale, os.Stdout)
	s.Threads = *threads
	s.R = *r
	s.Seed = *seed
	s.Trials = *trials

	fmt.Printf("VariantDBSCAN experiment harness\n")
	fmt.Printf("scale=%g (eps x%.2f), threads=%d, r=%d, trials=%d, seed=%#x\n",
		*scale, s.EpsFactor(), s.Threads, s.R, s.Trials, s.Seed)

	start := time.Now()
	if err := s.Run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted %q in %s\n", *exp, time.Since(start).Round(time.Millisecond))
}
