// Command datagen generates the evaluation datasets of Table I (or any
// custom synthetic/TEC dataset) and writes them to disk.
//
// Usage:
//
//	datagen -table1 -scale 0.01 -out ./datasets            # all 16 datasets
//	datagen -class cF -n 100000 -noise 0.05 -out ds.csv    # one synthetic
//	datagen -sw 1 -scale 0.01 -out sw1.gob                 # one TEC dataset
//
// Files ending in .csv are written as CSV; anything else as gob binary.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vdbscan/internal/data"
	"vdbscan/internal/dataio"
	"vdbscan/internal/tec"
)

func main() {
	table1 := flag.Bool("table1", false, "generate all Table I datasets into -out directory")
	class := flag.String("class", "", "synthetic class: cF or cV")
	n := flag.Int("n", 0, "number of points for a single synthetic dataset")
	noise := flag.Float64("noise", 0.05, "noise fraction for a single synthetic dataset")
	sw := flag.Int("sw", 0, "generate simulated space-weather dataset SW<k> (1..4)")
	scale := flag.Float64("scale", 0.01, "size scale factor in (0,1] for -table1 and -sw")
	seed := flag.Uint64("seed", 0xDB5CA7, "generation seed")
	out := flag.String("out", "datasets", "output file (single dataset) or directory (-table1)")
	format := flag.String("format", "gob", "output format for -table1: csv or gob")
	flag.Parse()

	switch {
	case *table1:
		if err := writeTable1(*out, *scale, *seed, *format); err != nil {
			fail(err)
		}
	case *sw > 0:
		ds, err := tec.SW(*sw, *scale)
		if err != nil {
			fail(err)
		}
		if err := dataio.SaveDataset(*out, ds); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d points) to %s\n", ds.Name, ds.Len(), *out)
	case *class != "":
		var c data.SynthClass
		switch *class {
		case "cF":
			c = data.ClassCF
		case "cV":
			c = data.ClassCV
		default:
			fail(fmt.Errorf("unknown class %q (want cF or cV)", *class))
		}
		ds, err := data.Generate(data.SynthConfig{Class: c, N: *n, NoiseFrac: *noise, Seed: *seed})
		if err != nil {
			fail(err)
		}
		if err := dataio.SaveDataset(*out, ds); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d points) to %s\n", ds.Name, ds.Len(), *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func writeTable1(dir string, scale float64, seed uint64, format string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ext := ".gob"
	if format == "csv" {
		ext = ".csv"
	}
	synth, err := data.Table1Synthetic(scale, seed)
	if err != nil {
		return err
	}
	for _, ds := range synth {
		path := filepath.Join(dir, ds.Name+ext)
		if err := dataio.SaveDataset(path, ds); err != nil {
			return err
		}
		fmt.Printf("wrote %-14s %8d points -> %s\n", ds.Name, ds.Len(), path)
	}
	for k := 1; k <= 4; k++ {
		ds, err := tec.SW(k, scale)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, ds.Name+ext)
		if err := dataio.SaveDataset(path, ds); err != nil {
			return err
		}
		fmt.Printf("wrote %-14s %8d points -> %s\n", ds.Name, ds.Len(), path)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
