// Command vdbscand serves VariantDBSCAN clustering over HTTP/JSON.
//
// Datasets are uploaded once and indexed once; every job that targets a
// dataset shares its frozen index, and jobs arriving within the batching
// window are coalesced into a single ClusterVariants run over the union of
// their variant lists.
//
// Usage:
//
//	vdbscand -addr :8714 -threads 4 -batch-window 100ms
//
// Every flag also reads a VDBSCAND_* environment variable as its default
// (flag beats environment beats built-in), e.g.:
//
//	VDBSCAND_ADDR=:9000 VDBSCAND_BATCH_WINDOW=250ms vdbscand
//
// Endpoints (see internal/server for the full contract):
//
//	POST   /v1/datasets            upload a CSV dataset (?name=, ?r=, ?index=)
//	POST   /v1/datasets/{id}/jobs  submit a variant list, get a job ID
//	GET    /v1/jobs/{id}           poll (?wait=10s long-polls)
//	GET    /v1/jobs/{id}/labels    per-variant labels CSV (?variant=N)
//	GET    /v1/jobs/{id}/trace     execution trace (?format=chrome|text)
//	GET    /metrics                counters, plain text
//
// On SIGTERM/SIGINT the daemon drains: admission stops (new work gets 503),
// running and queued batches finish, staged dataset appends are folded into
// their indexes, and only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vdbscan/internal/cliutil"
	"vdbscan/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vdbscand:", err)
		os.Exit(1)
	}
}

// envDefaults resolves the VDBSCAND_* environment into flag defaults,
// erroring on set-but-unparsable values instead of silently ignoring them.
type envDefaults struct {
	addr         string
	threads      int
	queue        int
	runners      int
	refreeze     int
	tiles        int
	r            int
	index        string
	batchWindow  time.Duration
	jobTimeout   time.Duration
	drainTimeout time.Duration
}

func loadEnv() (envDefaults, error) {
	d := envDefaults{addr: cliutil.EnvOr("VDBSCAND_ADDR", ":8714")}
	var err error
	if d.threads, err = cliutil.EnvIntOr("VDBSCAND_THREADS", 1); err != nil {
		return d, err
	}
	if d.queue, err = cliutil.EnvIntOr("VDBSCAND_QUEUE", server.DefaultQueueDepth); err != nil {
		return d, err
	}
	if d.runners, err = cliutil.EnvIntOr("VDBSCAND_RUNNERS", server.DefaultRunners); err != nil {
		return d, err
	}
	if d.refreeze, err = cliutil.EnvIntOr("VDBSCAND_REFREEZE_POINTS", server.DefaultRefreezePoints); err != nil {
		return d, err
	}
	if d.tiles, err = cliutil.EnvIntOr("VDBSCAND_TILES", 0); err != nil {
		return d, err
	}
	if d.r, err = cliutil.EnvIntOr("VDBSCAND_R", 0); err != nil {
		return d, err
	}
	d.index = cliutil.EnvOr("VDBSCAND_INDEX", "rtree")
	if d.batchWindow, err = cliutil.EnvDurationOr("VDBSCAND_BATCH_WINDOW", 0); err != nil {
		return d, err
	}
	if d.jobTimeout, err = cliutil.EnvDurationOr("VDBSCAND_JOB_TIMEOUT", server.DefaultJobTimeout); err != nil {
		return d, err
	}
	if d.drainTimeout, err = cliutil.EnvDurationOr("VDBSCAND_DRAIN_TIMEOUT", 30*time.Second); err != nil {
		return d, err
	}
	return d, nil
}

func run() error {
	env, err := loadEnv()
	if err != nil {
		return err
	}
	addr := flag.String("addr", env.addr, "listen address")
	threads := flag.Int("threads", env.threads, "vdbscan worker goroutines per batch run")
	queue := flag.Int("queue", env.queue, "max queued jobs before 429 backpressure")
	runners := flag.Int("runners", env.runners, "concurrent batch runs")
	refreeze := flag.Int("refreeze", env.refreeze, "staged points that trigger a dataset re-freeze")
	tiles := flag.Int("tiles", env.tiles,
		"tile-level parallelism per run on grid indexes (0 = auto, 1 = untiled; per-job tiles overrides)")
	leafR := flag.Int("r", env.r, "eps-search tree leaf occupancy for uploads (0 = library default)")
	indexKind := flag.String("index", env.index, "eps-search index structure for uploads: rtree or grid")
	batchWindow := flag.Duration("batch-window", env.batchWindow,
		"coalesce same-dataset jobs arriving within this window (0 disables)")
	jobTimeout := flag.Duration("job-timeout", env.jobTimeout, "default per-job deadline")
	drainTimeout := flag.Duration("drain-timeout", env.drainTimeout, "max time to drain on SIGTERM")
	flag.Parse()

	kindVal, err := cliutil.ParseIndexKind(*indexKind)
	if err != nil {
		return err
	}
	srv := server.New(server.Config{
		Threads:        *threads,
		QueueDepth:     *queue,
		BatchWindow:    *batchWindow,
		JobTimeout:     *jobTimeout,
		Runners:        *runners,
		RefreezePoints: *refreeze,
		IndexR:         *leafR,
		Tiles:          *tiles,
		IndexKind:      kindVal,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() {
		log.Printf("vdbscand listening on %s (threads=%d queue=%d batch-window=%s runners=%d)",
			*addr, *threads, *queue, *batchWindow, *runners)
		serveErr <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (handlers now 503), finish running and
	// queued batches, flush staged re-freezes — then stop the listener.
	log.Printf("vdbscand draining (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("vdbscand drain incomplete: %v", err)
	} else {
		log.Printf("vdbscand drained")
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("vdbscand http shutdown: %v", err)
	}
	srv.Close()
	return nil
}
