// Command vdbscand serves VariantDBSCAN clustering over HTTP/JSON.
//
// Datasets are uploaded once and indexed once; every job that targets a
// dataset shares its frozen index, and jobs arriving within the batching
// window are coalesced into a single ClusterVariants run over the union of
// their variant lists.
//
// Usage:
//
//	vdbscand -addr :8714 -threads 4 -batch-window 100ms
//
// Every flag also reads a VDBSCAND_* environment variable as its default
// (flag beats environment beats built-in), e.g.:
//
//	VDBSCAND_ADDR=:9000 VDBSCAND_BATCH_WINDOW=250ms vdbscand
//
// Endpoints (see internal/server for the full contract; every /v1 route
// also exists under /v2 with the versioned error envelope, tenant-aware job
// documents, and GET /v2/tenants/self):
//
//	POST   /v1/datasets            upload a CSV dataset (?name=, ?r=, ?index=)
//	POST   /v1/datasets/{id}/jobs  submit a variant list, get a job ID
//	GET    /v1/jobs/{id}           poll (?wait=10s long-polls)
//	GET    /v1/jobs/{id}/labels    per-variant labels CSV (?variant=N)
//	GET    /v1/jobs/{id}/trace     execution trace (?format=chrome|text)
//	GET    /v1/jobs/{id}/events    live job progress as Server-Sent Events
//	GET    /v2/tenants/self        the calling tenant's limits and usage
//	GET    /metrics                Prometheus text exposition
//
// With -keys-file (or inline VDBSCAND_KEYS JSON) configured, the data plane
// requires an API key — Authorization: Bearer or X-Api-Key — and each key
// maps to a tenant with optional request-rate, concurrent-jobs, and
// work-quota limits plus the allow_approx load-shedding opt-in. Finished
// job results are evicted after -job-ttl (410 Gone afterwards); when the
// queue backlog reaches -shed-threshold, opted-in tenants receive
// ρ-approximate answers (slack -shed-rho) tagged "quality":"approx".
//
// With -admin-addr set, a second listener serves the operator plane:
// /debug/pprof/*, /admin/runtime, /admin/goroutines, plus /metrics and
// /healthz — kept off the service port so profiling endpoints are never
// exposed to clustering clients.
//
// Structured logs (log/slog) go to stderr; -log-format picks text or JSON
// and -log-level picks debug|info|warn|error. Every line carries the
// request/job/batch/dataset IDs involved, so one job's admission, batch
// seal, run, and completion grep together.
//
// With -data-dir set, datasets are durable: each upload and re-freeze
// writes a page-aligned snapshot of the frozen index, appended points go
// to a per-dataset write-ahead log, and a relaunch pointed at the same
// directory restores every dataset via mmap — no re-parse, no re-index —
// before the listener accepts its first request.
//
// On SIGTERM/SIGINT the daemon drains: admission stops (new work gets 503),
// running and queued batches finish, staged dataset appends are folded into
// their indexes, and only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vdbscan/internal/cliutil"
	"vdbscan/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vdbscand:", err)
		os.Exit(1)
	}
}

// envDefaults resolves the VDBSCAND_* environment into flag defaults,
// erroring on set-but-unparsable values instead of silently ignoring them.
type envDefaults struct {
	addr          string
	adminAddr     string
	logLevel      string
	logFormat     string
	threads       int
	queue         int
	runners       int
	refreeze      int
	tiles         int
	r             int
	index         string
	dataDir       string
	keysFile      string
	keysInline    string
	shedThreshold int
	shedRho       float64
	batchWindow   time.Duration
	jobTimeout    time.Duration
	jobTTL        time.Duration
	drainTimeout  time.Duration
}

func loadEnv() (envDefaults, error) {
	d := envDefaults{
		addr:      cliutil.EnvOr("VDBSCAND_ADDR", ":8714"),
		adminAddr: cliutil.EnvOr("VDBSCAND_ADMIN_ADDR", ""),
		logLevel:  cliutil.EnvOr("VDBSCAND_LOG_LEVEL", "info"),
		logFormat: cliutil.EnvOr("VDBSCAND_LOG_FORMAT", "text"),
	}
	var err error
	if d.threads, err = cliutil.EnvIntOr("VDBSCAND_THREADS", 1); err != nil {
		return d, err
	}
	if d.queue, err = cliutil.EnvIntOr("VDBSCAND_QUEUE", server.DefaultQueueDepth); err != nil {
		return d, err
	}
	if d.runners, err = cliutil.EnvIntOr("VDBSCAND_RUNNERS", server.DefaultRunners); err != nil {
		return d, err
	}
	if d.refreeze, err = cliutil.EnvIntOr("VDBSCAND_REFREEZE_POINTS", server.DefaultRefreezePoints); err != nil {
		return d, err
	}
	if d.tiles, err = cliutil.EnvIntOr("VDBSCAND_TILES", 0); err != nil {
		return d, err
	}
	if d.r, err = cliutil.EnvIntOr("VDBSCAND_R", 0); err != nil {
		return d, err
	}
	d.index = cliutil.EnvOr("VDBSCAND_INDEX", "rtree")
	d.dataDir = cliutil.EnvOr("VDBSCAND_DATA_DIR", "")
	d.keysFile = cliutil.EnvOr("VDBSCAND_KEYS_FILE", "")
	d.keysInline = cliutil.EnvOr("VDBSCAND_KEYS", "")
	if d.shedThreshold, err = cliutil.EnvIntOr("VDBSCAND_SHED_THRESHOLD", 0); err != nil {
		return d, err
	}
	if d.shedRho, err = cliutil.EnvFloatOr("VDBSCAND_SHED_RHO", server.DefaultShedRho); err != nil {
		return d, err
	}
	if d.batchWindow, err = cliutil.EnvDurationOr("VDBSCAND_BATCH_WINDOW", 0); err != nil {
		return d, err
	}
	if d.jobTimeout, err = cliutil.EnvDurationOr("VDBSCAND_JOB_TIMEOUT", server.DefaultJobTimeout); err != nil {
		return d, err
	}
	if d.jobTTL, err = cliutil.EnvDurationOr("VDBSCAND_JOB_TTL", server.DefaultJobTTL); err != nil {
		return d, err
	}
	if d.drainTimeout, err = cliutil.EnvDurationOr("VDBSCAND_DRAIN_TIMEOUT", 30*time.Second); err != nil {
		return d, err
	}
	return d, nil
}

// loadTenants resolves the tenant key set: -keys-file wins, then the inline
// VDBSCAND_KEYS JSON; both empty means the server runs open (anonymous
// tenant, no limits).
func loadTenants(keysFile, keysInline string) ([]server.TenantConfig, error) {
	switch {
	case keysFile != "":
		f, err := os.Open(keysFile)
		if err != nil {
			return nil, fmt.Errorf("keys-file: %w", err)
		}
		defer f.Close()
		tenants, err := server.ParseKeysJSON(f)
		if err != nil {
			return nil, fmt.Errorf("keys-file %s: %w", keysFile, err)
		}
		return tenants, nil
	case keysInline != "":
		tenants, err := server.ParseKeysJSON(strings.NewReader(keysInline))
		if err != nil {
			return nil, fmt.Errorf("VDBSCAND_KEYS: %w", err)
		}
		return tenants, nil
	}
	return nil, nil
}

func run() error {
	env, err := loadEnv()
	if err != nil {
		return err
	}
	addr := flag.String("addr", env.addr, "listen address")
	adminAddr := flag.String("admin-addr", env.adminAddr,
		"admin listen address for /debug/pprof and /admin/* (empty disables)")
	logLevel := flag.String("log-level", env.logLevel, "log level: debug, info, warn, or error")
	logFormat := flag.String("log-format", env.logFormat, "log format: text or json")
	threads := flag.Int("threads", env.threads, "vdbscan worker goroutines per batch run")
	queue := flag.Int("queue", env.queue, "max queued jobs before 429 backpressure")
	runners := flag.Int("runners", env.runners, "concurrent batch runs")
	refreeze := flag.Int("refreeze", env.refreeze, "staged points that trigger a dataset re-freeze")
	tiles := flag.Int("tiles", env.tiles,
		"tile-level parallelism per run on grid indexes (0 = auto, 1 = untiled; per-job tiles overrides)")
	leafR := flag.Int("r", env.r, "eps-search tree leaf occupancy for uploads (0 = library default)")
	indexKind := flag.String("index", env.index, "eps-search index structure for uploads: rtree or grid")
	dataDir := flag.String("data-dir", env.dataDir,
		"directory for durable dataset snapshots and WALs; restored on startup (empty = memory-only)")
	keysFile := flag.String("keys-file", env.keysFile,
		"JSON file of tenant API keys and limits (empty = open server, anonymous tenant)")
	shedThreshold := flag.Int("shed-threshold", env.shedThreshold,
		"queue depth that triggers approximate load shedding for opted-in tenants (0 disables)")
	shedRho := flag.Float64("shed-rho", env.shedRho,
		"rho slack of load-shed approximate runs, in (0,1]")
	batchWindow := flag.Duration("batch-window", env.batchWindow,
		"coalesce same-dataset jobs arriving within this window (0 disables)")
	jobTimeout := flag.Duration("job-timeout", env.jobTimeout, "default per-job deadline")
	jobTTL := flag.Duration("job-ttl", env.jobTTL,
		"how long finished job results stay retrievable before eviction (negative = forever)")
	drainTimeout := flag.Duration("drain-timeout", env.drainTimeout, "max time to drain on SIGTERM")
	flag.Parse()

	kindVal, err := cliutil.ParseIndexKind(*indexKind)
	if err != nil {
		return err
	}
	tenants, err := loadTenants(*keysFile, env.keysInline)
	if err != nil {
		return err
	}
	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	srv := server.New(server.Config{
		Threads:        *threads,
		QueueDepth:     *queue,
		BatchWindow:    *batchWindow,
		JobTimeout:     *jobTimeout,
		Runners:        *runners,
		RefreezePoints: *refreeze,
		IndexR:         *leafR,
		Tiles:          *tiles,
		IndexKind:      kindVal,
		Logger:         logger,
		DataDir:        *dataDir,
		Tenants:        tenants,
		JobTTL:         *jobTTL,
		ShedThreshold:  *shedThreshold,
		ShedRho:        *shedRho,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() {
		logger.Info("vdbscand listening",
			"addr", *addr, "threads", *threads, "queue", *queue,
			"batch_window", *batchWindow, "runners", *runners)
		serveErr <- httpSrv.ListenAndServe()
	}()

	var adminSrv *http.Server
	if *adminAddr != "" {
		adminSrv = &http.Server{Addr: *adminAddr, Handler: srv.AdminHandler()}
		go func() {
			logger.Info("vdbscand admin listening", "addr", *adminAddr)
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin listener failed", "err", err)
			}
		}()
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (handlers now 503), finish running and
	// queued batches, flush staged re-freezes — then stop the listeners.
	logger.Info("vdbscand draining", "timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("vdbscand drain incomplete", "err", err)
	} else {
		logger.Info("vdbscand drained")
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("vdbscand http shutdown", "err", err)
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("vdbscand admin shutdown", "err", err)
		}
	}
	srv.Close()
	return nil
}

// buildLogger assembles the slog stderr logger from the -log-level and
// -log-format flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}
