module vdbscan

go 1.22
