package vdbscan

import (
	"context"
	"errors"
	"strings"
	"testing"

	"vdbscan/internal/dbscan"
	"vdbscan/internal/rtree"
)

// Compile-time pinning of the two-tier option split: each constructor must
// stay at its tier (index-layout knobs are not run options and vice versa),
// shared observability options must satisfy both, and everything must
// remain assignable to the deprecated Option supertype so existing
// heterogeneous []Option slices keep compiling.
var (
	_ IndexOption = WithR(70)
	_ IndexOption = WithBinWidth(1)
	_ IndexOption = WithFlatIndex(true)
	_ IndexOption = WithIndexKind(IndexGrid)
	_ IndexOption = WithRefreezeThreshold(64)

	_ RunOption = WithThreads(2)
	_ RunOption = WithIntraThreads(2)
	_ RunOption = WithReuseScheme(ClusDensity)
	_ RunOption = WithStrategy(SchedGreedy)
	_ RunOption = WithMinSeedSize(8)
	_ RunOption = WithoutReuse()
	_ RunOption = WithContext(context.Background())
	_ RunOption = WithProgress(nil)

	_ SharedOption = WithWork(nil)
	_ SharedOption = WithTracer(nil)

	_ []Option = []Option{
		WithR(70), WithThreads(2), WithWork(nil), WithTracer(nil),
		WithRefreezeThreshold(64), WithProgress(nil),
	}
)

// TestOptionTierMisuseRejected pins the negative side of the split with the
// type system itself: an index option must not satisfy RunOption and a run
// option must not satisfy IndexOption. (A constructor changing tier flips
// one of these type assertions.)
func TestOptionTierMisuseRejected(t *testing.T) {
	if _, ok := any(WithRefreezeThreshold(64)).(RunOption); ok {
		t.Error("WithRefreezeThreshold satisfies RunOption; refreeze on a one-shot run must stay a compile-time error")
	}
	if _, ok := any(WithR(70)).(RunOption); ok {
		t.Error("WithR satisfies RunOption")
	}
	if _, ok := any(WithThreads(8)).(IndexOption); ok {
		t.Error("WithThreads satisfies IndexOption")
	}
	if _, ok := any(WithStrategy(SchedMinPts)).(IndexOption); ok {
		t.Error("WithStrategy satisfies IndexOption")
	}
}

// TestSplitOptionsRouting: the one-shot entry points must deliver every
// option in a mixed list to the tier(s) it belongs to.
func TestSplitOptionsRouting(t *testing.T) {
	var w Work
	opts := []Option{WithR(32), WithThreads(2), WithWork(&w)}
	ix, run := splitOptions(opts)
	if len(ix) != 2 { // WithR + shared WithWork
		t.Fatalf("index options = %d, want 2", len(ix))
	}
	if len(run) != 2 { // WithThreads + shared WithWork
		t.Fatalf("run options = %d, want 2", len(run))
	}
	pts := testPoints(t, 2000)
	res, err := Cluster(pts, Params{Eps: 3, MinPts: 4}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != len(pts) {
		t.Fatalf("labels = %d", res.Len())
	}
	if w.NeighborSearches == 0 {
		t.Error("WithWork not routed through the one-shot path")
	}
}

// TestSentinelReexports: the root sentinels must be the internal values
// themselves so errors.Is matches across the facade boundary.
func TestSentinelReexports(t *testing.T) {
	if !errors.Is(ErrFlatTooLarge, rtree.ErrFlatTooLarge) {
		t.Error("ErrFlatTooLarge does not match rtree sentinel")
	}
	if !errors.Is(ErrDeleteUnsupported, dbscan.ErrDeleteUnsupported) {
		t.Error("ErrDeleteUnsupported does not match dbscan sentinel")
	}
	// The internal Delete path must surface through errors.Is against the
	// re-exported sentinel.
	ix := dbscan.BuildIndex([]Point{{X: 0, Y: 0}}, dbscan.IndexOptions{})
	if err := ix.Delete(0); !errors.Is(err, ErrDeleteUnsupported) {
		t.Errorf("Delete error %v does not match ErrDeleteUnsupported", err)
	}
}

// TestFacadeErrorContract: every error crossing the facade carries the
// "vdbscan: " prefix exactly once and keeps its cause chain matchable.
func TestFacadeErrorContract(t *testing.T) {
	pts := testPoints(t, 2000)
	checkPrefix := func(name string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: expected an error", name)
		}
		if !strings.HasPrefix(err.Error(), "vdbscan: ") {
			t.Errorf("%s: error %q lacks the vdbscan: prefix", name, err)
		}
		if strings.Count(err.Error(), "vdbscan: ") != 1 {
			t.Errorf("%s: error %q stutters the prefix", name, err)
		}
	}
	_, err := Cluster(pts, Params{Eps: 0, MinPts: 4})
	checkPrefix("Cluster invalid params", err)

	_, err = ClusterVariants(pts, nil)
	checkPrefix("ClusterVariants empty", err)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = ClusterVariants(pts, CartesianVariants([]float64{2, 3}, []int{4}), WithContext(ctx))
	checkPrefix("ClusterVariants canceled", err)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled run error %v does not match context.Canceled", err)
	}

	inc, err := NewIncremental(Params{Eps: 2, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	inc.Insert(Point{X: 0, Y: 0})
	err = inc.Delete(99)
	checkPrefix("Incremental.Delete out of range", err)

	_, err = NewIncremental(Params{Eps: -1, MinPts: 4})
	checkPrefix("NewIncremental invalid params", err)

	_, err = Quality(&Clustering{Labels: []int32{1}}, &Clustering{Labels: []int32{1, 1}})
	checkPrefix("Quality length mismatch", err)
}

// wrapErr must be idempotent and nil-transparent.
func TestWrapErr(t *testing.T) {
	if wrapErr(nil) != nil {
		t.Error("wrapErr(nil) != nil")
	}
	base := errors.New("vdbscan: already prefixed")
	if wrapErr(base) != base {
		t.Error("wrapErr re-wrapped an already-prefixed error")
	}
	wrapped := wrapErr(context.DeadlineExceeded)
	if !errors.Is(wrapped, context.DeadlineExceeded) {
		t.Error("wrapErr broke the cause chain")
	}
}
