// Package vdbscan is a Go implementation of VariantDBSCAN — variant-based
// parallel density clustering as described in "Exploiting Variant-Based
// Parallelism for Data Mining of Space Weather Phenomena" (Gowanlock, Blair,
// Pankratius; IPPS 2016).
//
// The library clusters a 2-D point database with many DBSCAN parameter
// variants (ε, minpts) at once, maximizing throughput by
//
//   - sharing one immutable pair of R-tree indexes across all variants
//     (a low-resolution tree with r points per leaf MBB for ε-searches and
//     a high-resolution tree for cluster sweeps);
//   - reusing the cluster results of completed variants whose parameters
//     satisfy the inclusion criteria ε_i ≥ ε_j, minpts_i ≤ minpts_j; and
//   - scheduling variant executions across a goroutine pool so that useful
//     reuse sources complete early.
//
// # Quick start
//
//	points := []vdbscan.Point{{X: 1, Y: 2}, ...}
//	idx := vdbscan.NewIndex(points)
//	run, err := idx.ClusterVariants([]vdbscan.Params{
//		{Eps: 0.4, MinPts: 8},
//		{Eps: 0.6, MinPts: 4},
//	}, vdbscan.WithThreads(8))
//
// Each entry of run.Results holds the clustering for the corresponding
// input parameters, with labels in the caller's point order (-1 = noise,
// 1..NumClusters = cluster IDs).
//
// # Options
//
// Configuration is split in two tiers. IndexOption values (WithR,
// WithBinWidth, WithFlatIndex, WithRefreezeThreshold) fix the physical
// index layout and are accepted by NewIndex and NewIncremental. RunOption
// values (WithThreads, WithIntraThreads, WithReuseScheme, WithStrategy,
// WithMinSeedSize, WithoutReuse, WithContext, WithProgress) shape one
// clustering run and are accepted by Index.Cluster and
// Index.ClusterVariants. Observability attachments (WithWork, WithTracer)
// implement both. Passing an option at the wrong tier — say,
// WithRefreezeThreshold on ClusterVariants — is a compile-time error. The
// one-shot conveniences (Cluster, ClusterVariants, NewIncremental) build an
// index and run it, so they accept the whole Option set.
//
// # Errors
//
// Every error returned across this package's boundary is prefixed
// "vdbscan: " and supports errors.Is / errors.As against the cause chain:
// sentinel values (ErrFlatTooLarge, ErrDeleteUnsupported) and context
// errors (context.Canceled, context.DeadlineExceeded from a WithContext
// cancellation) are matchable through any wrapping this package adds.
package vdbscan

import (
	"context"
	"fmt"
	"time"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
	"vdbscan/internal/obs"
	"vdbscan/internal/quality"
	"vdbscan/internal/reuse"
	"vdbscan/internal/sched"
	"vdbscan/internal/variant"
)

// Point is a 2-D observation (for TEC maps: longitude-like X and
// latitude-like Y, in degrees).
type Point = geom.Point

// Params are the DBSCAN inputs defining one variant: the neighborhood
// radius Eps and the core-point threshold MinPts.
type Params = dbscan.Params

// Clustering is a clustering result. Labels[i] is the label of input point
// i: Noise (-1) or a cluster ID in 1..NumClusters.
type Clustering = cluster.Result

// Noise is the label of outlier points.
const Noise = cluster.Noise

// Work is a snapshot of the work counters accumulated during a run:
// ε-neighborhood searches, candidate points filtered, points reused from
// completed variants, and R-tree nodes visited.
type Work = metrics.Snapshot

// ReuseScheme selects the seed-cluster prioritization used when a variant
// reuses a completed variant's clusters (paper §IV-C).
type ReuseScheme = reuse.Scheme

// Reuse schemes, in the paper's naming.
const (
	// ClusDefault expands seed clusters in generation order.
	ClusDefault = reuse.ClusDefault
	// ClusDensity expands the densest clusters (|C|/area) first — the
	// paper's recommended scheme and this package's default.
	ClusDensity = reuse.ClusDensity
	// ClusPtsSquared expands clusters by |C|²/area, favoring point count.
	ClusPtsSquared = reuse.ClusPtsSquared
)

// SchedStrategy selects the variant scheduling heuristic (paper §IV-D).
type SchedStrategy = sched.Strategy

// Scheduling strategies, in the paper's naming.
const (
	// SchedGreedy reuses the completed variant with the smallest parameter
	// difference — the paper's more robust heuristic and the default.
	SchedGreedy = sched.SchedGreedy
	// SchedMinPts first clusters, from scratch, the max-minpts variant of
	// each unique ε to diversify reuse sources.
	SchedMinPts = sched.SchedMinPts
	// SchedTree executes the dependency tree of minimal parameter
	// differences depth-first, pinning each variant's reuse source to its
	// tree parent (an extension beyond the paper's two heuristics).
	SchedTree = sched.SchedTree
)

// Tracer records a clustering run's execution timeline: variant lifecycle
// spans (queued → started → seed-selected → expand/scratch phases → done),
// scheduler decisions, donor activity, and per-variant work deltas. Create
// one with NewTracer, attach it with WithTracer, then export with
// WriteChromeTrace (Chrome trace-event JSON, loadable in chrome://tracing
// or https://ui.perfetto.dev) or WriteTimeline (plain text). A Tracer holds
// one run; reusing it across runs keeps only the last. A nil *Tracer is
// valid everywhere and disables tracing at zero cost.
type Tracer = obs.Tracer

// NewTracer returns an enabled execution tracer for WithTracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// ProgressEvent is one live progress report delivered to the WithProgress
// callback after each variant completes.
type ProgressEvent = obs.ProgressEvent

// IndexOption configures index construction: NewIndex, NewIncremental, and
// the one-shot conveniences accept it. Index options select the physical
// layout of the shared R-trees (leaf occupancy, bin width, flat freezing,
// streaming re-freeze cadence) and are fixed for the life of the Index.
type IndexOption interface {
	Option
	indexOption()
}

// RunOption configures one clustering run: Index.Cluster,
// Index.ClusterVariants, and the one-shot conveniences accept it. Run
// options select scheduling, reuse, parallelism, cancellation, and
// observability for that run only; the same Index can serve concurrent runs
// with different run options.
type RunOption interface {
	Option
	runOption()
}

// SharedOption is an option valid at either tier: it is both an
// IndexOption and a RunOption. The observability attachments (WithWork,
// WithTracer) return it, so they can be passed anywhere an option is
// accepted.
type SharedOption interface {
	IndexOption
	RunOption
}

// Option is any configuration option — the common supertype of IndexOption
// and RunOption. Entry points that both build an index and run it (the
// one-shot Cluster/ClusterVariants, NewIncremental) accept the full Option
// set; heterogeneous option slices are declared as []Option.
//
// Deprecated: in signatures of new code, accept the precise IndexOption or
// RunOption instead, so misuse (an index-layout knob on a run, a scheduling
// knob at index build) is a compile-time error. Option remains so existing
// callers keep compiling unchanged.
type Option interface {
	apply(*config)
}

// indexOpt is the concrete type of index-time-only options.
type indexOpt func(*config)

func (o indexOpt) apply(c *config) { o(c) }
func (indexOpt) indexOption()      {}

// runOpt is the concrete type of run-time-only options.
type runOpt func(*config)

func (o runOpt) apply(c *config) { o(c) }
func (runOpt) runOption()        {}

// sharedOpt is the concrete type of options valid in either position
// (observability attachments); it implements both interfaces.
type sharedOpt func(*config)

func (o sharedOpt) apply(c *config) { o(c) }
func (sharedOpt) indexOption()      {}
func (sharedOpt) runOption()        {}

// splitOptions partitions a mixed option list for the one-shot entry points
// that construct an index and immediately run it.
func splitOptions(opts []Option) (ix []IndexOption, run []RunOption) {
	for _, o := range opts {
		if io, ok := o.(IndexOption); ok {
			ix = append(ix, io)
		}
		if ro, ok := o.(RunOption); ok {
			run = append(run, ro)
		}
	}
	return ix, run
}

type config struct {
	ctx          context.Context
	r            int
	binWidth     float64
	threads      int
	intraThreads int
	tiles        int
	scheme       ReuseScheme
	strategy     SchedStrategy
	minSeedSize  int
	disableReuse bool
	noFlat       bool
	kind         IndexKind
	refreezeN    int
	work         *Work
	tracer       *Tracer
	progress     func(ProgressEvent)
}

func buildConfig[O Option](opts []O) config {
	c := config{
		ctx:      context.Background(),
		r:        dbscan.DefaultR,
		binWidth: dbscan.DefaultBinWidth,
		threads:  1,
		scheme:   ClusDensity,
		strategy: SchedGreedy,
	}
	for _, o := range opts {
		o.apply(&c)
	}
	return c
}

// WithR sets the leaf occupancy r of the ε-search R-tree: the number of
// points indexed per minimum bounding box. Larger r trades extra candidate
// filtering for fewer memory accesses; the paper finds 70–110 good in
// degree-scaled TEC data (default 70).
func WithR(r int) IndexOption { return indexOpt(func(c *config) { c.r = r }) }

// WithBinWidth sets the width of the spatial sorting bins applied before
// indexing (default 1, the paper's unit-width bins).
func WithBinWidth(w float64) IndexOption { return indexOpt(func(c *config) { c.binWidth = w }) }

// WithFlatIndex toggles the flat array-backed R-tree representation
// (default on). After bulk loading, both trees are frozen into contiguous
// struct-of-arrays node layouts traversed iteratively, which removes
// pointer chasing and per-search allocations from the ε-search hot path;
// clustering output is byte-identical either way. Pass false to search
// the pointer-based trees directly (the pre-freeze layout, mainly useful
// for layout ablations).
func WithFlatIndex(on bool) IndexOption { return indexOpt(func(c *config) { c.noFlat = !on }) }

// IndexKind selects the ε-search substrate; see WithIndexKind.
type IndexKind = dbscan.IndexKind

// Index kinds accepted by WithIndexKind.
const (
	// IndexRTree is the paper's packed R-tree pair (the default): one
	// shared tree serves every variant's ε-searches, a second serves the
	// cluster-MBB sweeps that reuse depends on.
	IndexRTree = dbscan.IndexRTree
	// IndexGrid serves ε-searches from a flat uniform cell grid instead:
	// coordinates are grid-sorted into contiguous runs with one CSR
	// offset per cell, and a search scans the 3×3 cell block around the
	// query through the block distance kernel. The grid's cell side is
	// sized for the variant set's largest ε on first use, so — like the
	// R-tree — one build serves every variant; it wins when the data has
	// bounded density skew (uniform-ish cell occupancy) and loses ground
	// to the R-tree under heavy skew or very wide ε spreads. Cluster-MBB
	// sweeps and streaming-insert fallbacks still use the R-trees, so
	// reuse, intra-variant parallelism, and appends work unchanged.
	IndexGrid = dbscan.IndexGrid
)

// WithIndexKind selects the ε-search index structure (default
// IndexRTree). Clustering output is byte-identical across kinds — only
// the search substrate, and therefore the performance envelope, changes.
func WithIndexKind(k IndexKind) IndexOption { return indexOpt(func(c *config) { c.kind = k }) }

// WithThreads sets the number of worker goroutines T executing variants
// concurrently (default 1). Above 1 it also enables two-level scheduling in
// ClusterVariants — workers left idle once the variant queue drains are
// donated to the running variants' intra-variant pools — and sets the auto
// intra-variant width for single-variant Cluster calls, so WithThreads(8)
// uses 8 cores whether you cluster one variant or eighty.
func WithThreads(t int) RunOption { return runOpt(func(c *config) { c.threads = t }) }

// WithIntraThreads sets the number of goroutines working *inside* one
// DBSCAN execution (intra-variant parallelism: chunked core-point marking
// plus disjoint-set cluster merging, label-identical to the sequential
// algorithm). It applies to Cluster and to ClusterVariants' from-scratch
// executions; reuse-based executions are inherently ordered and stay
// sequential. 0 (the default) selects auto mode: Cluster falls back to
// WithThreads' value, ClusterVariants gives each from-scratch execution one
// worker plus whatever idle pool workers are donated. Set 1 to force the
// paper-faithful sequential execution everywhere. Note that
// WithThreads(T) × WithIntraThreads(n) can oversubscribe T·n goroutines;
// that is the caller's trade to make.
func WithIntraThreads(n int) RunOption { return runOpt(func(c *config) { c.intraThreads = n }) }

// WithTiles sets tile-level parallelism — the third level of the
// variant → tile → chunk hierarchy. On grid indexes
// (WithIndexKind(IndexGrid)), the grid-sorted point array is cut into
// roughly n point-balanced tiles with ε-wide halos; tiles cluster
// concurrently and boundary clusters are merged exactly across tile
// seams, so labels are byte-identical to the untiled run at any tile
// count. 0 (the default) is auto mode: tile when the effective worker
// width and the point count justify it. 1 disables tiling. The option is
// silently a no-op where no grid serves the run — the R-tree index kind,
// or streaming inserts staged since the last re-freeze — which keeps it
// safe to set unconditionally.
func WithTiles(n int) RunOption { return runOpt(func(c *config) { c.tiles = n }) }

// WithReuseScheme selects the cluster-reuse prioritization
// (default ClusDensity).
func WithReuseScheme(s ReuseScheme) RunOption { return runOpt(func(c *config) { c.scheme = s }) }

// WithStrategy selects the variant scheduling heuristic
// (default SchedGreedy).
func WithStrategy(s SchedStrategy) RunOption { return runOpt(func(c *config) { c.strategy = s }) }

// WithMinSeedSize excludes completed clusters smaller than n points from
// reuse; their points are clustered from scratch instead. Sweeping a tiny
// cluster's MBB can cost more ε-searches than copying it saves (default 0:
// reuse every cluster).
func WithMinSeedSize(n int) RunOption { return runOpt(func(c *config) { c.minSeedSize = n }) }

// WithoutReuse forces every variant to cluster from scratch, keeping only
// the shared-index parallelism (the paper's scenario-S1 baseline).
func WithoutReuse() RunOption { return runOpt(func(c *config) { c.disableReuse = true }) }

// WithRefreezeThreshold sets the streaming re-freeze trigger for
// NewIncremental: once n mutations have been staged in the flat
// snapshot's delta overlay, the index is re-frozen in the background
// (n live points also trigger the first freeze). Smaller values keep
// ε-searches closer to the pure flat-scan cost at the price of more
// frequent compactions; 0 (the default) selects
// incremental.DefaultRefreezeThreshold. Ignored by batch clustering,
// where the index freezes exactly once. WithFlatIndex(false) disables
// the snapshot machinery entirely.
func WithRefreezeThreshold(n int) IndexOption { return indexOpt(func(c *config) { c.refreezeN = n }) }

// WithWork records the run's accumulated work counters into w.
func WithWork(w *Work) SharedOption { return sharedOpt(func(c *config) { c.work = w }) }

// WithTracer attaches an execution tracer to Cluster or ClusterVariants.
// The tracer records structured span events at variant/phase granularity
// (never per ε-search), so the clustering output and the hot-path
// allocation behavior are identical with tracing on or off; a nil t is the
// same as not passing the option.
func WithTracer(t *Tracer) SharedOption { return sharedOpt(func(c *config) { c.tracer = t }) }

// WithProgress registers a live progress callback for ClusterVariants,
// invoked serially after each variant completes with the variants-done
// count and the running mean reuse fraction. The callback runs on worker
// goroutines — keep it fast and non-blocking.
func WithProgress(f func(ProgressEvent)) RunOption {
	return runOpt(func(c *config) { c.progress = f })
}

// WithContext attaches a cancellation context to ClusterVariants: when ctx
// is canceled, no further variants start and the run returns ctx's error.
func WithContext(ctx context.Context) RunOption {
	return runOpt(func(c *config) {
		if ctx != nil {
			c.ctx = ctx
		}
	})
}

// Index is an immutable spatial index over one point database, shared by
// any number of clustering runs (concurrently safe once built).
type Index struct {
	ix  *dbscan.Index
	pts []Point
}

// NewIndex grid-sorts points and builds the shared R-trees (WithR,
// WithBinWidth, WithFlatIndex select the layout). The input slice is not
// retained or modified.
func NewIndex(points []Point, opts ...IndexOption) *Index {
	c := buildConfig(opts)
	cp := append([]Point(nil), points...)
	return &Index{
		ix:  dbscan.BuildIndex(cp, dbscan.IndexOptions{R: c.r, BinWidth: c.binWidth, NoFlat: c.noFlat, Kind: c.kind}),
		pts: cp,
	}
}

// Len returns the number of indexed points.
func (x *Index) Len() int { return x.ix.Len() }

// R returns the ε-search tree's leaf occupancy.
func (x *Index) R() int { return x.ix.R() }

// Points returns the indexed points in the caller's original order.
func (x *Index) Points() []Point { return x.pts }

// Cluster runs a single DBSCAN variant and returns labels in the caller's
// point order. It honors WithContext (cancellation is checked coarsely,
// every ~1k points) and parallelizes across WithIntraThreads — or, in auto
// mode, WithThreads — goroutines; the result is identical at any width.
func (x *Index) Cluster(p Params, opts ...RunOption) (*Clustering, error) {
	c := buildConfig(opts)
	width := c.intraThreads
	if width == 0 {
		width = c.threads // auto: a single variant may use the whole pool
	}
	var m metrics.Counters
	var res *cluster.Result
	var err error
	// A traced single-variant run is a one-variant schedule: the same span
	// structure ClusterVariants emits, on worker 0, always from scratch.
	start := time.Now()
	c.tracer.StartRun(start, "single-variant", []string{p.String()})
	rec := c.tracer.Worker(0)
	rec.Event(obs.KindStarted, 0, 0, 0)
	if width > 1 || c.tiles > 1 {
		res, err = dbscan.RunParallelOpts(c.ctx, x.ix, p,
			dbscan.ParallelOptions{Workers: width, Rec: rec, Tiles: c.tiles}, &m)
	} else {
		rec.PhaseBegin(0, obs.PhaseScratch)
		res, err = dbscan.RunCtx(c.ctx, x.ix, p, &m)
		rec.PhaseEnd(0, obs.PhaseScratch)
	}
	if err != nil {
		return nil, wrapErr(err)
	}
	rec.Done(0, -1, 0, m.Snapshot())
	c.tracer.EndRun(time.Since(start))
	if c.progress != nil {
		el := time.Since(start)
		c.progress(ProgressEvent{Done: 1, Total: 1, Variant: 0, Source: -1,
			FromScratch: true, Duration: el, Elapsed: el})
	}
	if c.work != nil {
		*c.work = c.work.Add(m.Snapshot())
	}
	return res.Remap(x.ix.Fwd), nil
}

// VariantResult is the outcome of one variant in a ClusterVariants run.
type VariantResult struct {
	// Params echoes the variant's parameters.
	Params Params
	// Clustering holds labels in the caller's point order.
	Clustering *Clustering
	// FromScratch is true when the variant could not reuse any completed
	// variant and ran plain DBSCAN.
	FromScratch bool
	// FractionReused is the fraction of points copied from a completed
	// variant without an ε-neighborhood search.
	FractionReused float64
	// SourceIndex is the position (in the input params slice) of the
	// variant whose result was reused, or -1.
	SourceIndex int
	// Worker identifies the pool worker that ran the variant.
	Worker int
	// Start and End are offsets from the run's start instant — one
	// time.Time captured when ClusterVariants begins, measured with
	// time.Since and therefore derived from Go's monotonic clock. All
	// workers (and any attached Tracer) share that basis, so spans from
	// different workers order correctly against each other and nest within
	// [0, VariantRun.Makespan] regardless of wall-clock adjustments.
	Start, End time.Duration
}

// Duration returns the variant's response time.
func (vr VariantResult) Duration() time.Duration { return vr.End - vr.Start }

// VariantRun is the outcome of executing a whole variant set.
type VariantRun struct {
	// Results is parallel to the input params slice.
	Results []VariantResult
	// Makespan is the wall-clock duration of the run.
	Makespan time.Duration
	// TotalWork is the sum of per-variant durations (TotalWork/Threads is
	// the no-idle lower bound on the makespan).
	TotalWork time.Duration
	// Threads is the worker pool size used.
	Threads int
}

// MeanFractionReused averages the per-variant fraction of reused points.
func (r *VariantRun) MeanFractionReused() float64 {
	if len(r.Results) == 0 {
		return 0
	}
	var sum float64
	for _, vr := range r.Results {
		sum += vr.FractionReused
	}
	return sum / float64(len(r.Results))
}

// ClusterVariants executes every parameter variant with VariantDBSCAN:
// variants run concurrently on WithThreads workers, reusing completed
// variants' clusters whenever the inclusion criteria allow.
func (x *Index) ClusterVariants(params []Params, opts ...RunOption) (*VariantRun, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("vdbscan: no variants given")
	}
	c := buildConfig(opts)
	var m metrics.Counters
	rr, err := sched.ExecuteContext(c.ctx, x.ix, variant.New(params), sched.Options{
		Threads:      c.threads,
		Strategy:     c.strategy,
		Scheme:       c.scheme,
		MinSeedSize:  c.minSeedSize,
		DisableReuse: c.disableReuse,
		IntraWorkers: c.intraThreads,
		Tiles:        c.tiles,
		DonateIdle:   c.threads > 1 || c.intraThreads > 1,
		Metrics:      &m,
		Tracer:       c.tracer,
		Progress:     c.progress,
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	if c.work != nil {
		*c.work = c.work.Add(m.Snapshot())
	}
	out := &VariantRun{
		Results:   make([]VariantResult, len(params)),
		Makespan:  rr.Makespan,
		TotalWork: rr.TotalWork,
		Threads:   rr.Threads,
	}
	for i, r := range rr.Results {
		out.Results[i] = VariantResult{
			Params:         r.Variant.Params,
			Clustering:     r.Result.Remap(x.ix.Fwd),
			FromScratch:    r.Stats.FromScratch,
			FractionReused: r.Stats.FractionReused,
			SourceIndex:    r.SourceID,
			Worker:         r.Worker,
			Start:          r.Start,
			End:            r.End,
		}
	}
	return out, nil
}

// Cluster is the one-shot convenience: index points and run a single
// DBSCAN variant. It accepts the full Option set (index and run options).
func Cluster(points []Point, p Params, opts ...Option) (*Clustering, error) {
	ixOpts, runOpts := splitOptions(opts)
	return NewIndex(points, ixOpts...).Cluster(p, runOpts...)
}

// ClusterVariants is the one-shot convenience: index points and run every
// variant with VariantDBSCAN. It accepts the full Option set (index and run
// options).
func ClusterVariants(points []Point, params []Params, opts ...Option) (*VariantRun, error) {
	ixOpts, runOpts := splitOptions(opts)
	return NewIndex(points, ixOpts...).ClusterVariants(params, runOpts...)
}

// Quality scores candidate against reference with the per-point Jaccard
// metric of paper §V-D: 1.0 means identical assignments; the paper reports
// VariantDBSCAN ≥ 0.998 versus plain DBSCAN.
func Quality(reference, candidate *Clustering) (float64, error) {
	q, err := quality.Score(reference, candidate)
	return q, wrapErr(err)
}

// CanReuse reports whether a variant with parameters target may reuse the
// completed clustering of a variant with parameters source (the inclusion
// criteria of paper §IV-B).
func CanReuse(target, source Params) bool {
	return variant.CanReuse(target, source)
}

// CartesianVariants builds the variant set V = A × B used throughout the
// paper's evaluation: every ε in epsValues crossed with every minpts in
// minptsValues.
func CartesianVariants(epsValues []float64, minptsValues []int) []Params {
	out := make([]Params, 0, len(epsValues)*len(minptsValues))
	for _, e := range epsValues {
		for _, mp := range minptsValues {
			out = append(out, Params{Eps: e, MinPts: mp})
		}
	}
	return out
}
