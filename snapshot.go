package vdbscan

import (
	"vdbscan/internal/persist"
)

// SnapshotInfo summarizes a snapshot that was just loaded.
type SnapshotInfo struct {
	// Points is the dataset size.
	Points int
	// R is the ε-search tree's leaf occupancy the index was built with.
	R int
	// Kind is the ε-search substrate (IndexRTree or IndexGrid).
	Kind IndexKind
	// Sequence is the caller-supplied tag passed to SaveSnapshot.
	Sequence uint64
	// Bytes is the on-disk snapshot size.
	Bytes int64
	// Mapped is true when the index's arrays are served directly from a
	// read-only mmap of the snapshot file; false when the platform (or the
	// filesystem) forced a heap copy.
	Mapped bool
}

// SaveSnapshot writes the index to path as a durable snapshot: a
// versioned, checksummed, page-aligned image of the frozen struct-of-array
// index layouts, written atomically (temp file, fsync, rename) so a crash
// mid-save can never leave a torn file in place of an old snapshot. seq is
// an opaque caller tag — a version counter, typically — echoed back by
// LoadSnapshot.
//
// The index must be frozen: a flat-layout index built by NewIndex
// qualifies immediately, as does a loaded snapshot. An index with staged
// streaming insertions, or one built with WithFlatIndex(false), returns an
// error rather than silently dropping data.
func (x *Index) SaveSnapshot(path string, seq uint64) error {
	parts, err := x.ix.FrozenParts()
	if err != nil {
		return wrapErr(err)
	}
	return wrapErr(persist.Save(path, parts, seq))
}

// LoadSnapshot maps the snapshot at path and returns a ready Index with
// zero deserialization: the coordinate arrays and frozen index layouts are
// served directly from the file mapping, so a warm restart costs a few
// page faults instead of a rebuild. Labels from a loaded index are
// byte-identical to those of the index the snapshot was saved from.
//
// Damaged or foreign files fail typed — errors.Is(err, ErrSnapshotCorrupt)
// for truncation, checksum, or structural damage, ErrSnapshotVersion for a
// future format or opposite byte order — and never panic; the caller's
// fallback is to rebuild with NewIndex from source data.
func LoadSnapshot(path string) (*Index, SnapshotInfo, error) {
	ix, info, err := persist.Load(path)
	if err != nil {
		return nil, SnapshotInfo{}, wrapErr(err)
	}
	// Rebuild the caller-order view: the snapshot stores grid-sorted
	// points plus the sorted→original permutation.
	pts := make([]Point, len(ix.Pts))
	for i, p := range ix.Pts {
		pts[ix.Fwd[i]] = p
	}
	return &Index{ix: ix, pts: pts}, SnapshotInfo{
		Points:   info.Points,
		R:        info.R,
		Kind:     info.Kind,
		Sequence: info.Sequence,
		Bytes:    info.Bytes,
		Mapped:   info.Mapped,
	}, nil
}
