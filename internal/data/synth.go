package data

import (
	"fmt"
	"math"

	"vdbscan/internal/geom"
)

// SynthClass distinguishes the two synthetic dataset families of §V-A.
type SynthClass int

const (
	// ClassCF: fixed number of clusters (|D|·10⁻⁴) with a uniform number
	// of points per cluster.
	ClassCF SynthClass = iota
	// ClassCV: same cluster count and total clustered points, but each
	// cluster's size is drawn from 0–500% of the uniform size.
	ClassCV
)

// String implements fmt.Stringer with the paper's class prefixes.
func (c SynthClass) String() string {
	if c == ClassCF {
		return "cF"
	}
	return "cV"
}

// SynthConfig parameterizes Generate.
type SynthConfig struct {
	// Class selects cF or cV.
	Class SynthClass
	// N is the total number of points |D|.
	N int
	// NoiseFrac is the fraction of N that is uniform noise (0.05, 0.15,
	// 0.30 in the paper).
	NoiseFrac float64
	// Region is the 2-D extent; the package Region when zero.
	Region geom.MBB
	// Sigma is the per-axis standard deviation of a cluster's Gaussian
	// point cloud, in the region's units; DefaultSigma when zero.
	Sigma float64
	// Clusters overrides the number of synthetic clusters; when zero the
	// paper's rule |D|·10⁻⁴ applies. The evaluation harness uses the
	// override to keep the full-size cluster count when |D| is scaled
	// down, so a scaled dataset keeps the named dataset's structure.
	Clusters int
	// Seed makes the dataset reproducible.
	Seed uint64
}

// DefaultSigma gives clusters a ~6°-wide core on the 360°×180° region —
// compact and well separated at the paper's cluster counts.
const DefaultSigma = 1.5

// clusterCountFor is the paper's rule: the number of synthetic clusters is
// |D| × 10⁻⁴, floored at 1.
func clusterCountFor(n int) int {
	k := int(float64(n) * 1e-4)
	if k < 1 {
		k = 1
	}
	return k
}

// Generate produces a synthetic dataset per cfg. Points are emitted cluster
// by cluster followed by the noise block; the order carries no information
// (the indexing pipeline re-sorts spatially anyway).
func Generate(cfg SynthConfig) (*Dataset, error) {
	if cfg.N < 0 {
		return nil, fmt.Errorf("data: negative N %d", cfg.N)
	}
	if cfg.NoiseFrac < 0 || cfg.NoiseFrac > 1 {
		return nil, fmt.Errorf("data: noise fraction %g outside [0,1]", cfg.NoiseFrac)
	}
	region := cfg.Region
	if region.IsEmpty() || region == (geom.MBB{}) {
		region = Region
	}
	sigma := cfg.Sigma
	if sigma <= 0 {
		sigma = DefaultSigma
	}

	rng := NewRNG(cfg.Seed)
	nNoise := int(math.Round(float64(cfg.N) * cfg.NoiseFrac))
	nClustered := cfg.N - nNoise
	k := cfg.Clusters
	if k <= 0 {
		k = clusterCountFor(cfg.N)
	}

	sizes := clusterSizes(cfg.Class, nClustered, k, rng)

	pts := make([]geom.Point, 0, cfg.N)
	w := region.MaxX - region.MinX
	h := region.MaxY - region.MinY
	// Keep centers a sigma-margin inside the region so clusters do not
	// spill over the edges (matters for the unit-bin sort); cap the margin
	// for very wide clusters so center placement never degenerates.
	mx, my := 3*sigma, 3*sigma
	if mx > w/4 {
		mx = w / 4
	}
	if my > h/4 {
		my = h / 4
	}
	for _, size := range sizes {
		cx := region.MinX + mx + rng.Float64()*(w-2*mx)
		cy := region.MinY + my + rng.Float64()*(h-2*my)
		for i := 0; i < size; i++ {
			pts = append(pts, geom.Point{
				X: clamp(cx+rng.NormFloat64()*sigma, region.MinX, region.MaxX),
				Y: clamp(cy+rng.NormFloat64()*sigma, region.MinY, region.MaxY),
			})
		}
	}
	for i := 0; i < nNoise; i++ {
		pts = append(pts, geom.Point{
			X: region.MinX + rng.Float64()*w,
			Y: region.MinY + rng.Float64()*h,
		})
	}

	return &Dataset{
		Name:          SynthName(cfg.Class, cfg.N, cfg.NoiseFrac),
		Points:        pts,
		NoiseFrac:     cfg.NoiseFrac,
		SynthClusters: k,
		Seed:          cfg.Seed,
	}, nil
}

// clusterSizes distributes nClustered points over k clusters.
//
// cF: uniform split (remainder spread one point each over the first
// clusters). cV: each cluster draws a weight uniform in [0, 5) — i.e. a
// size between 0% and 500% of the uniform share (§V-A) — and sizes are
// scaled so the total stays nClustered.
func clusterSizes(class SynthClass, nClustered, k int, rng *RNG) []int {
	sizes := make([]int, k)
	if nClustered <= 0 || k == 0 {
		return sizes
	}
	if class == ClassCF {
		base := nClustered / k
		rem := nClustered % k
		for i := range sizes {
			sizes[i] = base
			if i < rem {
				sizes[i]++
			}
		}
		return sizes
	}
	weights := make([]float64, k)
	var total float64
	for i := range weights {
		weights[i] = rng.Float64() * 5
		total += weights[i]
	}
	if total == 0 {
		weights[0], total = 1, 1
	}
	assigned := 0
	for i := range sizes {
		sizes[i] = int(weights[i] / total * float64(nClustered))
		assigned += sizes[i]
	}
	// Rounding remainder: one point at a time to the heaviest clusters.
	for i := 0; assigned < nClustered; i = (i + 1) % k {
		sizes[i]++
		assigned++
	}
	return sizes
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SynthName renders the paper's dataset naming: cF_1M_5N, cV_100k_30N, ...
func SynthName(class SynthClass, n int, noiseFrac float64) string {
	return fmt.Sprintf("%s_%s_%.0fN", class, sizeTag(n), noiseFrac*100)
}

// Table1Synthetic generates the twelve synthetic datasets of Table I, with
// every |D| multiplied by scale (0 < scale ≤ 1) so laptop-scale runs stay
// tractable; scale 1 reproduces the paper's sizes. The seed varies per
// dataset so no two share point positions.
func Table1Synthetic(scale float64, seed uint64) ([]*Dataset, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("data: scale %g outside (0,1]", scale)
	}
	specs := []struct {
		class SynthClass
		n     int
		noise float64
	}{
		{ClassCF, 1_000_000, 0.05},
		{ClassCF, 100_000, 0.05},
		{ClassCF, 10_000, 0.05},
		{ClassCF, 1_000_000, 0.15},
		{ClassCF, 1_000_000, 0.30},
		{ClassCF, 100_000, 0.30},
		{ClassCF, 10_000, 0.30},
		{ClassCV, 1_000_000, 0.05},
		{ClassCV, 1_000_000, 0.15},
		{ClassCV, 1_000_000, 0.30},
		{ClassCV, 100_000, 0.30},
		{ClassCV, 10_000, 0.30},
	}
	out := make([]*Dataset, 0, len(specs))
	for i, s := range specs {
		n := int(float64(s.n) * scale)
		if n < 1 {
			n = 1
		}
		ds, err := Generate(SynthConfig{
			Class:     s.class,
			N:         n,
			NoiseFrac: s.noise,
			Seed:      seed + uint64(i)*0x1000,
		})
		if err != nil {
			return nil, err
		}
		// Keep the paper's name (full-size tag) when scaled, with a suffix
		// making the scaling visible.
		if scale != 1 {
			ds.Name = SynthName(s.class, s.n, s.noise)
		}
		out = append(out, ds)
	}
	return out, nil
}
