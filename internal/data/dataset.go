package data

import (
	"fmt"

	"vdbscan/internal/geom"
)

// Region is the default 2-D extent datasets are generated over: a world-map
// style 360°×180° box matching the TEC application's longitude/latitude
// framing. The grid sort uses unit (1°) bins over the same scale (§IV-A).
var Region = geom.MBB{MinX: 0, MinY: 0, MaxX: 360, MaxY: 180}

// Dataset bundles a generated point database with its provenance.
type Dataset struct {
	// Name follows the paper's naming, e.g. "cF_1M_5N" or "SW1".
	Name string
	// Points is the point database D.
	Points []geom.Point
	// NoiseFrac is the intended fraction of uniformly distributed noise
	// points; negative when not applicable (real/simulated TEC data has no
	// explicit noise label — Table I lists "N/A").
	NoiseFrac float64
	// SynthClusters is the number of synthetic clusters generated; 0 when
	// not applicable.
	SynthClusters int
	// Seed reproduces the dataset.
	Seed uint64
}

// Len returns |D|.
func (d *Dataset) Len() int { return len(d.Points) }

// String implements fmt.Stringer.
func (d *Dataset) String() string {
	if d.NoiseFrac < 0 {
		return fmt.Sprintf("%s{|D|=%d}", d.Name, d.Len())
	}
	return fmt.Sprintf("%s{|D|=%d noise=%.0f%% clusters=%d}",
		d.Name, d.Len(), d.NoiseFrac*100, d.SynthClusters)
}

// sizeTag renders a point count the way the paper's dataset names do
// (10k, 100k, 1M).
func sizeTag(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dk", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
