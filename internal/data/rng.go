// Package data provides the synthetic dataset generators of the paper's
// evaluation (§V-A): class cF- (fixed number of clusters, uniform points per
// cluster) and class cV- (variable cluster sizes, 0–500% of the uniform
// size), plus the Dataset container shared with the TEC simulator
// (internal/tec).
//
// All randomness flows through the deterministic splitmix64 generator in
// this file so that every dataset is reproducible from (class, N, noise,
// seed) alone.
package data

import "math"

// RNG is a small, fast, deterministic generator (splitmix64 core with a
// Box–Muller Gaussian). It is NOT safe for concurrent use; generators are
// cheap — create one per goroutine.
type RNG struct {
	state    uint64
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IntN returns a uniform value in [0, n). It panics when n <= 0.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("data: IntN with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal deviate (Box–Muller, polar form).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}
