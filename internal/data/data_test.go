package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestRNGIntN(t *testing.T) {
	r := NewRNG(8)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.IntN(10)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("IntN(10) value %d count %d far from uniform", v, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("IntN(0) should panic")
		}
	}()
	r.IntN(0)
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %g", variance)
	}
}

func TestClusterCountRule(t *testing.T) {
	cases := []struct{ n, want int }{
		{1_000_000, 100},
		{100_000, 10},
		{10_000, 1},
		{5_000, 1}, // floored at 1
		{0, 1},
	}
	for _, c := range cases {
		if got := clusterCountFor(c.n); got != c.want {
			t.Errorf("clusterCountFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGenerateCFBasics(t *testing.T) {
	ds, err := Generate(SynthConfig{Class: ClassCF, N: 20000, NoiseFrac: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 20000 {
		t.Fatalf("|D| = %d", ds.Len())
	}
	if ds.SynthClusters != 2 {
		t.Errorf("clusters = %d, want 2", ds.SynthClusters)
	}
	if ds.Name != "cF_20k_5N" {
		t.Errorf("name = %q", ds.Name)
	}
	for _, p := range ds.Points {
		if !Region.ContainsPoint(p) {
			t.Fatalf("point %v outside region", p)
		}
	}
}

func TestGenerateCFUniformSizes(t *testing.T) {
	rng := NewRNG(1)
	sizes := clusterSizes(ClassCF, 1003, 10, rng)
	total := 0
	for _, s := range sizes {
		total += s
		if s != 100 && s != 101 {
			t.Errorf("cF size %d not uniform", s)
		}
	}
	if total != 1003 {
		t.Errorf("total = %d", total)
	}
}

func TestGenerateCVVariableSizes(t *testing.T) {
	rng := NewRNG(2)
	sizes := clusterSizes(ClassCV, 100000, 10, rng)
	total := 0
	minS, maxS := sizes[0], sizes[0]
	for _, s := range sizes {
		total += s
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if total != 100000 {
		t.Errorf("total = %d", total)
	}
	if maxS == minS {
		t.Error("cV sizes should vary")
	}
	// 0-500% of the uniform share (10000): max must respect the cap
	// loosely (weights scaled by the total, so the cap is statistical; just
	// sanity-check the spread is meaningful).
	if maxS < 11000 {
		t.Errorf("cV max size %d suspiciously uniform", maxS)
	}
}

func TestClusterSizesDegenerate(t *testing.T) {
	rng := NewRNG(3)
	if sizes := clusterSizes(ClassCF, 0, 5, rng); len(sizes) != 5 {
		t.Error("zero points should still return k sizes")
	}
	sizes := clusterSizes(ClassCV, 7, 3, rng)
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 7 {
		t.Errorf("tiny cV total = %d", total)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(SynthConfig{N: -1}); err == nil {
		t.Error("negative N accepted")
	}
	if _, err := Generate(SynthConfig{N: 10, NoiseFrac: 1.5}); err == nil {
		t.Error("noise > 1 accepted")
	}
	if _, err := Generate(SynthConfig{N: 0}); err != nil {
		t.Error("N=0 should be allowed (empty dataset)")
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	cfg := SynthConfig{Class: ClassCV, N: 5000, NoiseFrac: 0.3, Seed: 77}
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("same seed produced different points")
		}
	}
	cfg.Seed = 78
	c, _ := Generate(cfg)
	diff := 0
	for i := range a.Points {
		if a.Points[i] != c.Points[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateNoiseFraction(t *testing.T) {
	f := func(seed uint64) bool {
		ds, err := Generate(SynthConfig{Class: ClassCF, N: 10000, NoiseFrac: 0.3, Seed: seed})
		return err == nil && ds.Len() == 10000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSynthName(t *testing.T) {
	cases := []struct {
		class SynthClass
		n     int
		noise float64
		want  string
	}{
		{ClassCF, 1_000_000, 0.05, "cF_1M_5N"},
		{ClassCF, 100_000, 0.30, "cF_100k_30N"},
		{ClassCV, 10_000, 0.15, "cV_10k_15N"},
		{ClassCV, 1234, 0.05, "cV_1234_5N"},
	}
	for _, c := range cases {
		if got := SynthName(c.class, c.n, c.noise); got != c.want {
			t.Errorf("SynthName = %q, want %q", got, c.want)
		}
	}
}

func TestTable1Synthetic(t *testing.T) {
	dss, err := Table1Synthetic(0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 12 {
		t.Fatalf("datasets = %d, want 12", len(dss))
	}
	names := map[string]bool{}
	for _, ds := range dss {
		if names[ds.Name] {
			t.Errorf("duplicate dataset name %s", ds.Name)
		}
		names[ds.Name] = true
	}
	// Paper names preserved even at reduced scale.
	for _, want := range []string{"cF_1M_5N", "cF_10k_30N", "cV_1M_15N", "cV_100k_30N"} {
		if !names[want] {
			t.Errorf("missing dataset %s", want)
		}
	}
	// Scaled sizes.
	for _, ds := range dss {
		if ds.Name == "cF_1M_5N" && ds.Len() != 10000 {
			t.Errorf("scaled cF_1M_5N size = %d, want 10000", ds.Len())
		}
	}
	if _, err := Table1Synthetic(0, 1); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := Table1Synthetic(2, 1); err == nil {
		t.Error("scale 2 accepted")
	}
}

func TestDatasetString(t *testing.T) {
	ds, _ := Generate(SynthConfig{Class: ClassCF, N: 100, NoiseFrac: 0.05, Seed: 1})
	if ds.String() == "" {
		t.Error("String empty")
	}
	sw := &Dataset{Name: "SW1", NoiseFrac: -1}
	if sw.String() != "SW1{|D|=0}" {
		t.Errorf("SW String = %q", sw.String())
	}
}
