// Package render draws ASCII density maps of point sets and clusterings —
// a dependency-free way to eyeball TEC maps, synthetic datasets, and
// cluster structure from the CLI and examples (the textual counterpart of
// the paper's Figure 1).
package render

import (
	"fmt"
	"io"
	"strings"

	"vdbscan/internal/cluster"
	"vdbscan/internal/geom"
)

// shades maps relative density to characters, light to dark.
var shades = []byte(" .:-=+*#%@")

// glyphs label clusters in cluster view; noise is '.', empty is ' '.
const glyphs = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

// Options configures rendering.
type Options struct {
	// Width and Height are the character-grid dimensions (default 72×24).
	Width, Height int
	// Bounds fixes the world window; the points' bounding box when empty.
	Bounds geom.MBB
}

func (o Options) withDefaults(pts []geom.Point) Options {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 24
	}
	if o.Bounds.IsEmpty() || o.Bounds == (geom.MBB{}) {
		o.Bounds = geom.MBBOfPoints(pts)
	}
	return o
}

// cellOf maps a point into the character grid; ok is false outside bounds.
func cellOf(p geom.Point, o Options) (col, row int, ok bool) {
	b := o.Bounds
	w := b.MaxX - b.MinX
	h := b.MaxY - b.MinY
	if w <= 0 || h <= 0 || !b.ContainsPoint(p) {
		return 0, 0, false
	}
	col = int((p.X - b.MinX) / w * float64(o.Width))
	row = int((p.Y - b.MinY) / h * float64(o.Height))
	if col >= o.Width {
		col = o.Width - 1
	}
	if row >= o.Height {
		row = o.Height - 1
	}
	return col, row, true
}

// Density writes an ASCII density map of pts: darker characters mean more
// points per cell. Rows print north-up (max Y first).
func Density(w io.Writer, pts []geom.Point, opt Options) error {
	opt = opt.withDefaults(pts)
	counts := make([]int, opt.Width*opt.Height)
	max := 0
	for _, p := range pts {
		col, row, ok := cellOf(p, opt)
		if !ok {
			continue
		}
		idx := row*opt.Width + col
		counts[idx]++
		if counts[idx] > max {
			max = counts[idx]
		}
	}
	return writeGrid(w, opt, func(idx int) byte {
		if counts[idx] == 0 {
			return ' '
		}
		// Log-ish scale: sqrt compresses the dynamic range so sparse
		// structure stays visible next to dense cores.
		level := intSqrt(counts[idx]-1) * (len(shades) - 1) / maxLevel(max)
		if level >= len(shades) {
			level = len(shades) - 1
		}
		return shades[level]
	})
}

func intSqrt(x int) int {
	if x <= 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

func maxLevel(max int) int {
	l := intSqrt(max - 1)
	if l < 1 {
		l = 1
	}
	return l
}

// Clusters writes an ASCII map where each cell shows the glyph of the
// cluster owning the plurality of its points; '.' marks noise-dominated
// cells. Only the top len(glyphs) clusters by size get distinct glyphs;
// smaller ones share '+'.
func Clusters(w io.Writer, pts []geom.Point, res *cluster.Result, opt Options) error {
	if res.Len() != len(pts) {
		return fmt.Errorf("render: %d labels for %d points", res.Len(), len(pts))
	}
	opt = opt.withDefaults(pts)

	// Rank clusters by size for glyph assignment.
	glyphOf := map[int32]byte{}
	sizes := res.Sizes()
	type cs struct {
		id   int32
		size int
	}
	ranked := make([]cs, 0, len(sizes))
	for i, s := range sizes {
		ranked = append(ranked, cs{int32(i + 1), s})
	}
	for i := 0; i < len(ranked); i++ { // small n²: cluster count only
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].size > ranked[i].size {
				ranked[i], ranked[j] = ranked[j], ranked[i]
			}
		}
	}
	for rank, c := range ranked {
		if rank < len(glyphs) {
			glyphOf[c.id] = glyphs[rank]
		} else {
			glyphOf[c.id] = '+'
		}
	}

	// Plurality vote per cell.
	votes := make([]map[int32]int, opt.Width*opt.Height)
	for i, p := range pts {
		col, row, ok := cellOf(p, opt)
		if !ok {
			continue
		}
		idx := row*opt.Width + col
		if votes[idx] == nil {
			votes[idx] = map[int32]int{}
		}
		votes[idx][res.Labels[i]]++
	}
	return writeGrid(w, opt, func(idx int) byte {
		v := votes[idx]
		if len(v) == 0 {
			return ' '
		}
		var best int32
		bestN := -1
		for l, n := range v {
			if n > bestN || (n == bestN && l > best) {
				best, bestN = l, n
			}
		}
		if best <= 0 {
			return '.'
		}
		return glyphOf[best]
	})
}

// writeGrid emits the framed character grid, top row = max Y.
func writeGrid(w io.Writer, opt Options, cell func(idx int) byte) error {
	var sb strings.Builder
	sb.Grow((opt.Width + 3) * (opt.Height + 2))
	border := "+" + strings.Repeat("-", opt.Width) + "+\n"
	sb.WriteString(border)
	for row := opt.Height - 1; row >= 0; row-- {
		sb.WriteByte('|')
		for col := 0; col < opt.Width; col++ {
			sb.WriteByte(cell(row*opt.Width + col))
		}
		sb.WriteString("|\n")
	}
	sb.WriteString(border)
	_, err := io.WriteString(w, sb.String())
	return err
}
