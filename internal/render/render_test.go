package render

import (
	"bytes"
	"strings"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/geom"
)

func TestDensityBasics(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 10}, {X: 10, Y: 10}, {X: 10, Y: 10}}
	var buf bytes.Buffer
	if err := Density(&buf, pts, Options{Width: 20, Height: 10}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12 { // 10 rows + 2 borders
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 22 { // 20 cols + 2 borders
			t.Fatalf("line width = %d: %q", len(l), l)
		}
	}
	if !strings.ContainsAny(out, string(shades[1:])) {
		t.Error("no density marks rendered")
	}
}

func TestDensityEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Density(&buf, nil, Options{Width: 5, Height: 3}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "+-----+") {
		t.Errorf("frame missing: %q", buf.String())
	}
}

func TestDensityDenserIsDarker(t *testing.T) {
	// One cell with 100 points, another with 1: the dense cell must use a
	// later (darker) shade.
	var pts []geom.Point
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Point{X: 1, Y: 1})
	}
	pts = append(pts, geom.Point{X: 9, Y: 9})
	var buf bytes.Buffer
	if err := Density(&buf, pts, Options{Width: 10, Height: 10, Bounds: geom.MBB{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	darkest := strings.IndexByte(string(shades), '@')
	if !strings.ContainsRune(out, rune(shades[darkest])) {
		t.Error("dense cell not rendered at darkest shade")
	}
}

func TestClustersGlyphs(t *testing.T) {
	pts := []geom.Point{
		{X: 1, Y: 1}, {X: 1.1, Y: 1}, {X: 1, Y: 1.1}, // cluster 1
		{X: 8, Y: 8}, {X: 8.1, Y: 8}, // cluster 2
		{X: 5, Y: 5}, // noise
	}
	res := &cluster.Result{Labels: []int32{1, 1, 1, 2, 2, cluster.Noise}, NumClusters: 2}
	var buf bytes.Buffer
	if err := Clusters(&buf, pts, res, Options{Width: 20, Height: 10}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Largest cluster gets 'A', second 'B', noise '.'.
	for _, want := range []string{"A", "B", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestClustersLabelMismatch(t *testing.T) {
	res := &cluster.Result{Labels: []int32{1}, NumClusters: 1}
	if err := Clusters(&bytes.Buffer{}, []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}, res, Options{}); err == nil {
		t.Error("mismatch accepted")
	}
}

func TestCellOfBounds(t *testing.T) {
	opt := Options{Width: 10, Height: 10, Bounds: geom.MBB{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}}
	// Max corner maps into the last cell, not out of range.
	col, row, ok := cellOf(geom.Point{X: 10, Y: 10}, opt)
	if !ok || col != 9 || row != 9 {
		t.Errorf("max corner -> (%d,%d,%v)", col, row, ok)
	}
	if _, _, ok := cellOf(geom.Point{X: 11, Y: 5}, opt); ok {
		t.Error("out-of-bounds point accepted")
	}
	// Degenerate bounds are rejected.
	bad := Options{Width: 10, Height: 10, Bounds: geom.MBB{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5}}
	if _, _, ok := cellOf(geom.Point{X: 5, Y: 5}, bad); ok {
		t.Error("degenerate bounds accepted")
	}
}

func TestIntSqrt(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, 0}, {1, 1}, {3, 1}, {4, 2}, {99, 9}, {100, 10}} {
		if got := intSqrt(c.in); got != c.want {
			t.Errorf("intSqrt(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}
