// Package variant models the parameterized DBSCAN variants v_i = (ε_i,
// minpts_i) that VariantDBSCAN executes concurrently, together with the
// relations between them:
//
//   - the reuse inclusion criteria (§IV-B): v_i may reuse v_j iff
//     ε_i ≥ ε_j and minpts_i ≤ minpts_j, because a cluster can then only
//     grow;
//   - the canonical order (§IV-D): non-decreasing ε, then non-increasing
//     minpts;
//   - the dependency tree (Figure 3a): each variant's preferred reuse source
//     is the reusable variant with the minimal component-wise parameter
//     difference.
package variant

import (
	"fmt"
	"sort"

	"vdbscan/internal/dbscan"
)

// Variant is one parameterized DBSCAN execution. ID is the variant's
// position in the caller's original V list, preserved across sorting so
// results can be reported in input order.
type Variant struct {
	ID     int
	Params dbscan.Params
}

// String implements fmt.Stringer.
func (v Variant) String() string {
	return fmt.Sprintf("v%d%s", v.ID, v.Params)
}

// CanReuse reports whether a variant with parameters vi may reuse the
// completed clustering of a variant with parameters vj (§IV-B): growing ε
// and/or shrinking minpts can only grow vj's clusters, so every point of a
// reused cluster is guaranteed to stay in that cluster.
func CanReuse(vi, vj dbscan.Params) bool {
	return vi.Eps >= vj.Eps && vi.MinPts <= vj.MinPts
}

// Sort orders variants canonically (§IV-D): v_i^ε ≤ v_{i+1}^ε, breaking ties
// by v_i^minpts ≥ v_{i+1}^minpts. The sort is stable with a final tie-break
// on ID so the order is deterministic even with duplicate parameters.
func Sort(vs []Variant) {
	sort.SliceStable(vs, func(a, b int) bool {
		va, vb := vs[a].Params, vs[b].Params
		if va.Eps != vb.Eps {
			return va.Eps < vb.Eps
		}
		if va.MinPts != vb.MinPts {
			return va.MinPts > vb.MinPts
		}
		return vs[a].ID < vs[b].ID
	})
}

// Sorted returns a canonically sorted copy of vs.
func Sorted(vs []Variant) []Variant {
	out := append([]Variant(nil), vs...)
	Sort(out)
	return out
}

// New assigns IDs 0..len-1 to a parameter list in its given order.
func New(params []dbscan.Params) []Variant {
	vs := make([]Variant, len(params))
	for i, p := range params {
		vs[i] = Variant{ID: i, Params: p}
	}
	return vs
}

// Product builds V = A × B (the paper's notation for the evaluation
// scenarios): every ε in A crossed with every minpts in B, in row-major
// order (A outer, B inner).
func Product(A []float64, B []int) []Variant {
	vs := make([]Variant, 0, len(A)*len(B))
	for _, eps := range A {
		for _, mp := range B {
			vs = append(vs, Variant{ID: len(vs), Params: dbscan.Params{Eps: eps, MinPts: mp}})
		}
	}
	return vs
}

// Validate checks every variant's parameters.
func Validate(vs []Variant) error {
	if len(vs) == 0 {
		return fmt.Errorf("variant: empty variant set")
	}
	for _, v := range vs {
		if err := v.Params.Validate(); err != nil {
			return fmt.Errorf("variant %d: %w", v.ID, err)
		}
	}
	return nil
}

// Normalizer computes the component-wise parameter distance SCHEDGREEDY
// minimizes when choosing a reuse source. The paper does not pin down the
// metric; we normalize each component by its spread across V so that ε
// (often fractional) and minpts (often tens) contribute comparably:
//
//	dist(a, b) = |a.ε − b.ε| / range(ε) + |a.minpts − b.minpts| / range(minpts)
//
// Degenerate ranges (all variants sharing one ε or one minpts) fall back to
// a unit divisor.
type Normalizer struct {
	epsRange    float64
	minptsRange float64
}

// NewNormalizer measures parameter spreads over vs.
func NewNormalizer(vs []Variant) Normalizer {
	if len(vs) == 0 {
		return Normalizer{epsRange: 1, minptsRange: 1}
	}
	minEps, maxEps := vs[0].Params.Eps, vs[0].Params.Eps
	minMp, maxMp := vs[0].Params.MinPts, vs[0].Params.MinPts
	for _, v := range vs[1:] {
		if v.Params.Eps < minEps {
			minEps = v.Params.Eps
		}
		if v.Params.Eps > maxEps {
			maxEps = v.Params.Eps
		}
		if v.Params.MinPts < minMp {
			minMp = v.Params.MinPts
		}
		if v.Params.MinPts > maxMp {
			maxMp = v.Params.MinPts
		}
	}
	n := Normalizer{epsRange: maxEps - minEps, minptsRange: float64(maxMp - minMp)}
	if n.epsRange <= 0 {
		n.epsRange = 1
	}
	if n.minptsRange <= 0 {
		n.minptsRange = 1
	}
	return n
}

// Dist returns the normalized component-wise difference between a and b.
func (n Normalizer) Dist(a, b dbscan.Params) float64 {
	de := a.Eps - b.Eps
	if de < 0 {
		de = -de
	}
	dm := float64(a.MinPts - b.MinPts)
	if dm < 0 {
		dm = -dm
	}
	return de/n.epsRange + dm/n.minptsRange
}

// DepTree is the Figure 3a dependency tree over a canonically sorted variant
// list: Parent[i] is the index (in the same sorted list) of the variant that
// i would ideally reuse — the reusable variant with minimal normalized
// parameter distance — or -1 when no earlier variant satisfies the inclusion
// criteria (i must be clustered from scratch under sequential execution).
type DepTree struct {
	Variants []Variant // canonically sorted
	Parent   []int
}

// BuildDepTree sorts vs canonically and links each variant to its minimal-
// difference reusable predecessor. With global knowledge and disregarding
// execution order, variant i could reuse ANY j with CanReuse(i, j); the tree
// records the preferred choice (the paper's example: (0.6,20) should prefer
// (0.6,24) over (0.2,32)).
func BuildDepTree(vs []Variant) DepTree {
	sorted := Sorted(vs)
	norm := NewNormalizer(sorted)
	parent := make([]int, len(sorted))
	for i := range sorted {
		parent[i] = -1
		best := -1
		bestDist := 0.0
		for j := range sorted {
			if j == i || !CanReuse(sorted[i].Params, sorted[j].Params) {
				continue
			}
			// Identical parameters are allowed by the criteria; prefer the
			// earlier variant to keep the graph acyclic.
			if sorted[i].Params == sorted[j].Params && j > i {
				continue
			}
			d := norm.Dist(sorted[i].Params, sorted[j].Params)
			if best == -1 || d < bestDist {
				best, bestDist = j, d
			}
		}
		parent[i] = best
	}
	return DepTree{Variants: sorted, Parent: parent}
}

// Roots returns the indices of variants with no reuse source (the ones that
// must be clustered from scratch in a sequential schedule).
func (t DepTree) Roots() []int {
	var roots []int
	for i, p := range t.Parent {
		if p == -1 {
			roots = append(roots, i)
		}
	}
	return roots
}

// DepthFirstOrder returns a schedule visiting each tree root and then its
// subtree depth-first (the paper's Figure 3b example schedule).
func (t DepTree) DepthFirstOrder() []int {
	children := make([][]int, len(t.Parent))
	for i, p := range t.Parent {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	order := make([]int, 0, len(t.Parent))
	var visit func(int)
	visit = func(i int) {
		order = append(order, i)
		for _, c := range children[i] {
			visit(c)
		}
	}
	for _, r := range t.Roots() {
		visit(r)
	}
	return order
}
