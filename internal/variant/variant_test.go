package variant

import (
	"testing"
	"testing/quick"

	"vdbscan/internal/dbscan"
)

func p(eps float64, mp int) dbscan.Params { return dbscan.Params{Eps: eps, MinPts: mp} }

func TestCanReuse(t *testing.T) {
	cases := []struct {
		vi, vj dbscan.Params
		want   bool
	}{
		{p(0.6, 20), p(0.2, 32), true},  // paper's example
		{p(0.6, 20), p(0.6, 24), true},  // paper's preferred source
		{p(0.2, 32), p(0.6, 20), false}, // reverse direction invalid
		{p(0.4, 8), p(0.4, 8), true},    // identical params reusable
		{p(0.4, 16), p(0.4, 8), false},  // larger minpts cannot reuse smaller
		{p(0.3, 8), p(0.4, 8), false},   // smaller eps cannot reuse larger
	}
	for _, c := range cases {
		if got := CanReuse(c.vi, c.vj); got != c.want {
			t.Errorf("CanReuse(%v, %v) = %v, want %v", c.vi, c.vj, got, c.want)
		}
	}
}

func TestCanReuseTransitive(t *testing.T) {
	f := func(e1, e2, e3 float64, m1, m2, m3 uint8) bool {
		a, b, c := p(e1, int(m1)), p(e2, int(m2)), p(e3, int(m3))
		if CanReuse(a, b) && CanReuse(b, c) {
			return CanReuse(a, c)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortCanonical(t *testing.T) {
	vs := New([]dbscan.Params{
		p(0.6, 20), p(0.2, 24), p(0.2, 32), p(0.4, 32), p(0.2, 20), p(0.6, 32),
	})
	Sort(vs)
	want := []dbscan.Params{
		p(0.2, 32), p(0.2, 24), p(0.2, 20), p(0.4, 32), p(0.6, 32), p(0.6, 20),
	}
	for i := range want {
		if vs[i].Params != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, vs[i].Params, want[i])
		}
	}
}

func TestSortPreservesIDs(t *testing.T) {
	params := []dbscan.Params{p(0.6, 4), p(0.2, 4)}
	vs := New(params)
	Sort(vs)
	if vs[0].ID != 1 || vs[1].ID != 0 {
		t.Errorf("IDs after sort = %d,%d", vs[0].ID, vs[1].ID)
	}
	// Sorted() must not mutate its input.
	orig := New(params)
	_ = Sorted(orig)
	if orig[0].Params != p(0.6, 4) {
		t.Error("Sorted mutated its input")
	}
}

func TestSortDeterministicWithDuplicates(t *testing.T) {
	vs := New([]dbscan.Params{p(0.2, 4), p(0.2, 4), p(0.2, 4)})
	Sort(vs)
	for i, v := range vs {
		if v.ID != i {
			t.Fatalf("duplicate params should keep ID order, got %v", vs)
		}
	}
}

func TestProduct(t *testing.T) {
	// Paper's example: A = {0.1, 0.2}, B = {1, 2} ->
	// {(0.1,1), (0.1,2), (0.2,1), (0.2,2)}.
	vs := Product([]float64{0.1, 0.2}, []int{1, 2})
	want := []dbscan.Params{p(0.1, 1), p(0.1, 2), p(0.2, 1), p(0.2, 2)}
	if len(vs) != len(want) {
		t.Fatalf("len = %d", len(vs))
	}
	for i := range want {
		if vs[i].Params != want[i] || vs[i].ID != i {
			t.Fatalf("product[%d] = %v", i, vs[i])
		}
	}
}

func TestProductScenarioSizes(t *testing.T) {
	// S2: A={0.2,0.4,0.6}, B={4,8,...,32} -> |V| = 24.
	B := []int{}
	for mp := 4; mp <= 32; mp += 4 {
		B = append(B, mp)
	}
	if got := len(Product([]float64{0.2, 0.4, 0.6}, B)); got != 24 {
		t.Errorf("S2 |V| = %d, want 24", got)
	}
	// S3 V1: A={0.2,0.3,0.4}, B={10,15,...,100} -> |V| = 57.
	B = B[:0]
	for mp := 10; mp <= 100; mp += 5 {
		B = append(B, mp)
	}
	if got := len(Product([]float64{0.2, 0.3, 0.4}, B)); got != 57 {
		t.Errorf("S3 V1 |V| = %d, want 57", got)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Error("empty set should fail")
	}
	if err := Validate(New([]dbscan.Params{p(0.2, 4)})); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	if err := Validate(New([]dbscan.Params{p(0.2, 4), p(-1, 4)})); err == nil {
		t.Error("invalid eps accepted")
	}
}

func TestNormalizer(t *testing.T) {
	vs := New([]dbscan.Params{p(0.2, 4), p(0.6, 32)})
	n := NewNormalizer(vs)
	// Full-range distance = 1 + 1 = 2.
	if d := n.Dist(p(0.2, 4), p(0.6, 32)); d != 2 {
		t.Errorf("full-range dist = %g, want 2", d)
	}
	if d := n.Dist(p(0.2, 4), p(0.2, 4)); d != 0 {
		t.Errorf("self dist = %g", d)
	}
	// Symmetry.
	if n.Dist(p(0.2, 10), p(0.5, 20)) != n.Dist(p(0.5, 20), p(0.2, 10)) {
		t.Error("distance not symmetric")
	}
}

func TestNormalizerDegenerateRanges(t *testing.T) {
	// All same eps: distance falls back to raw minpts difference.
	vs := New([]dbscan.Params{p(0.2, 4), p(0.2, 8)})
	n := NewNormalizer(vs)
	if d := n.Dist(p(0.2, 4), p(0.2, 8)); d != 1 {
		t.Errorf("degenerate-eps dist = %g, want 1", d)
	}
	// Empty variant list must not panic.
	_ = NewNormalizer(nil)
}

// The paper's Figure 3 variant set.
func fig3Variants() []Variant {
	return Product([]float64{0.2, 0.4, 0.6}, []int{32, 28, 24, 20})
}

func TestDepTreePaperExample(t *testing.T) {
	tree := BuildDepTree(fig3Variants())
	byParams := func(pr dbscan.Params) int {
		for i, v := range tree.Variants {
			if v.Params == pr {
				return i
			}
		}
		t.Fatalf("variant %v not found", pr)
		return -1
	}
	// (0.2,32) is the single root.
	roots := tree.Roots()
	if len(roots) != 1 || tree.Variants[roots[0]].Params != p(0.2, 32) {
		t.Fatalf("roots = %v", roots)
	}
	// The paper's key example: (0.6,20) prefers (0.6,24), not (0.2,32).
	i := byParams(p(0.6, 20))
	if got := tree.Variants[tree.Parent[i]].Params; got != p(0.6, 24) {
		t.Errorf("(0.6,20) parent = %v, want (0.6,24)", got)
	}
	// Every non-root parent satisfies the inclusion criteria.
	for i, pi := range tree.Parent {
		if pi == -1 {
			continue
		}
		if !CanReuse(tree.Variants[i].Params, tree.Variants[pi].Params) {
			t.Errorf("parent of %v violates inclusion criteria: %v",
				tree.Variants[i], tree.Variants[pi])
		}
	}
}

func TestDepTreeAcyclic(t *testing.T) {
	tree := BuildDepTree(fig3Variants())
	for i := range tree.Parent {
		seen := map[int]bool{}
		for j := i; j != -1; j = tree.Parent[j] {
			if seen[j] {
				t.Fatalf("cycle through variant %d", j)
			}
			seen[j] = true
		}
	}
}

func TestDepthFirstOrderCoversAll(t *testing.T) {
	tree := BuildDepTree(fig3Variants())
	order := tree.DepthFirstOrder()
	if len(order) != len(tree.Variants) {
		t.Fatalf("order covers %d of %d", len(order), len(tree.Variants))
	}
	seen := map[int]bool{}
	pos := make(map[int]int)
	for idx, i := range order {
		if seen[i] {
			t.Fatalf("variant %d visited twice", i)
		}
		seen[i] = true
		pos[i] = idx
	}
	// Parents always precede children.
	for i, pi := range tree.Parent {
		if pi >= 0 && pos[pi] > pos[i] {
			t.Errorf("child %d scheduled before parent %d", i, pi)
		}
	}
	// Root first: (0.2,32).
	if tree.Variants[order[0]].Params != p(0.2, 32) {
		t.Errorf("first scheduled = %v, want (0.2,32)", tree.Variants[order[0]])
	}
}

func TestDepTreeAllIdenticalParams(t *testing.T) {
	vs := New([]dbscan.Params{p(0.5, 4), p(0.5, 4), p(0.5, 4)})
	tree := BuildDepTree(vs)
	if len(tree.Roots()) != 1 {
		t.Errorf("identical variants should chain to one root, roots = %v", tree.Roots())
	}
	if got := len(tree.DepthFirstOrder()); got != 3 {
		t.Errorf("order len = %d", got)
	}
}

func TestDepTreeNoReusePossible(t *testing.T) {
	// eps increasing while minpts increases: nothing is reusable.
	vs := New([]dbscan.Params{p(0.1, 4), p(0.2, 8), p(0.3, 16)})
	tree := BuildDepTree(vs)
	if got := len(tree.Roots()); got != 3 {
		t.Errorf("roots = %d, want 3 (no reuse possible)", got)
	}
}

func TestVariantString(t *testing.T) {
	v := Variant{ID: 3, Params: p(0.2, 32)}
	if v.String() != "v3(0.2, 32)" {
		t.Errorf("String = %q", v.String())
	}
}
