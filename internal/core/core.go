// Package core implements VARIANTDBSCAN (paper Algorithm 3) and
// EXPANDCLUSTER (Algorithm 4): clustering one DBSCAN variant by reusing the
// completed clustering of another variant that satisfies the inclusion
// criteria ε_i ≥ ε_j, minpts_i ≤ minpts_j.
//
// For each seed cluster selected by the reuse heuristic (internal/reuse):
//
//  1. copy the old cluster's points into a new cluster and mark them
//     visited, skipping their ε-searches entirely (the reuse win);
//  2. build an MBB around the cluster, augment it by ε, and sweep the
//     high-resolution tree T_high for candidate points (Fig. 2a);
//  3. ε-search each point *outside* the cluster and intersect with the
//     cluster to find the inside edge points that can grow it (Fig. 2b-c);
//  4. expand from those edge points exactly like DBSCAN, recording any old
//     cluster whose points get absorbed as *destroyed* (no longer a seed).
//
// Points not covered by any reused cluster are clustered from scratch
// afterwards. The output is equivalent to plain DBSCAN up to the usual
// border-point order ambiguity (paper §V-D reports quality ≥ 0.998).
package core

import (
	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/metrics"
	"vdbscan/internal/obs"
	"vdbscan/internal/reuse"
	"vdbscan/internal/variant"
)

// Stats reports what one VariantDBSCAN execution did.
type Stats struct {
	// FromScratch is true when no reusable variant was available and plain
	// DBSCAN ran (Algorithm 3, line 19).
	FromScratch bool
	// PointsReused counts points copied from the previous variant's
	// clusters without an ε-search.
	PointsReused int
	// FractionReused is PointsReused / |D| (0 when |D| is 0).
	FractionReused float64
	// ClustersReused counts seed clusters successfully expanded.
	ClustersReused int
	// ClustersDestroyed counts seed clusters invalidated by other seeds'
	// expansions.
	ClustersDestroyed int
}

// Options tunes the reuse pass beyond the scheme choice.
type Options struct {
	// Scheme is the seed-cluster prioritization (paper §IV-C).
	Scheme reuse.Scheme
	// MinSeedSize excludes clusters below this size from reuse (they are
	// clustered from scratch in the remainder pass); 0 or 1 reuses all.
	// This implements the selection criterion the paper's getSeedList
	// description leaves open.
	MinSeedSize int
	// Rec, when non-nil, records the expand/scratch phase boundaries of
	// variant Variant into the calling worker's trace ring. Phase events
	// are emitted once per phase — never per point or per ε-search — and
	// the nil default is a free no-op, so the hot paths are untouched
	// either way.
	Rec *obs.Recorder
	// Variant is the variant ID used in trace events.
	Variant int32
}

// Run clusters variant p over the shared index. prev is the completed
// clustering of a variant vj with variant.CanReuse(p, vj.Params); pass nil
// to cluster from scratch (plain DBSCAN). prev must be in the index's
// sorted point space. m may be nil.
func Run(ix *dbscan.Index, p dbscan.Params, prev *cluster.Result, scheme reuse.Scheme, m *metrics.Counters) (*cluster.Result, Stats, error) {
	return RunOpts(ix, p, prev, Options{Scheme: scheme}, m)
}

// RunOpts is Run with full reuse options.
func RunOpts(ix *dbscan.Index, p dbscan.Params, prev *cluster.Result, opt Options, m *metrics.Counters) (*cluster.Result, Stats, error) {
	if prev == nil || prev.NumClusters == 0 {
		opt.Rec.PhaseBegin(opt.Variant, obs.PhaseScratch)
		res, err := dbscan.Run(ix, p, m)
		opt.Rec.PhaseEnd(opt.Variant, obs.PhaseScratch)
		return res, Stats{FromScratch: true}, err
	}
	if err := p.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if ix.THigh == nil && ix.FlatHigh == nil {
		panic("core: index built with SkipHigh cannot run VariantDBSCAN")
	}

	n := ix.Len()
	res := cluster.NewResult(n)
	visited := make([]bool, n)
	destroyed := make([]bool, prev.NumClusters+1)
	infos := prev.Infos(ix.Pts)
	seeds := reuse.SeedListFiltered(infos, opt.Scheme, opt.MinSeedSize)

	var stats Stats
	var cid int32
	// expandEpoch dedupes expandSet membership without clearing an array
	// per seed: expandEpoch[i] == epoch means i is in the current seed's
	// expandSet.
	expandEpoch := make([]int32, n)
	var epoch int32
	var frontier, nbuf, cbuf []int32

	opt.Rec.PhaseBegin(opt.Variant, obs.PhaseExpand)
	for _, sid := range seeds {
		if destroyed[sid] {
			continue
		}
		members := prev.ClusterPoints(sid)
		// Line 9: copy the old cluster into a new cluster and mark visited,
		// obviating ε-searches on all of these points.
		cid++
		for _, i := range members {
			visited[i] = true
			res.Labels[i] = cid
		}
		stats.PointsReused += len(members)
		stats.ClustersReused++
		m.AddPointsReused(int64(len(members)))
		m.AddClustersReused(1)

		// Lines 10-12: ε-augmented MBB around the cluster, swept over the
		// high-resolution tree; candidates not in C are the outside points.
		mbb := infos[sid-1].MBB.Expand(p.Eps)
		var nodes int64
		cbuf, nodes = ix.HighCandidates(mbb, cbuf[:0])
		m.AddNodesVisited(nodes)
		m.AddCandidatesExamined(int64(len(cbuf)))

		// Lines 13-16: ε-search each outside point; its neighbors inside C
		// are edge points that can grow the cluster. They are removed from
		// the visited set so EXPANDCLUSTER searches them.
		epoch++
		frontier = frontier[:0]
		for _, ci := range cbuf {
			if res.Labels[ci] == cid {
				continue // inside C
			}
			nbuf = ix.NeighborSearch(ix.Pts[ci], p.Eps, m, nbuf[:0])
			for _, ni := range nbuf {
				if res.Labels[ni] == cid && expandEpoch[ni] != epoch {
					expandEpoch[ni] = epoch
					visited[ni] = false
					frontier = append(frontier, ni)
				}
			}
		}

		// Line 17: EXPANDCLUSTER (Algorithm 4). Both buffers come back so
		// queue growth inside the expansion is amortized across seeds
		// instead of re-grown from the stale frontier capacity each time.
		frontier, nbuf = expandCluster(ix, p, res, visited, destroyed, prev, cid, sid, frontier, nbuf, m, &stats)
	}
	opt.Rec.PhaseEnd(opt.Variant, obs.PhaseExpand)
	opt.Rec.PhaseBegin(opt.Variant, obs.PhaseScratch)

	// Line 18: cluster the remainder with DBSCAN over unvisited points.
	// Points enter the queue at most once (marked visited at discovery).
	queue := frontier[:0]
	scratch := nbuf[:0]
	absorb := func(neighbors []int32, cid int32) {
		for _, k := range neighbors {
			if !visited[k] {
				visited[k] = true
				queue = append(queue, k)
			}
			if res.Labels[k] <= 0 {
				res.Labels[k] = cid
			}
		}
	}
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		scratch = ix.NeighborSearch(ix.Pts[i], p.Eps, m, scratch[:0])
		if len(scratch) < p.MinPts {
			res.Labels[i] = cluster.Noise
			continue
		}
		cid++
		res.Labels[i] = cid
		queue = queue[:0]
		absorb(scratch, cid)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			scratch = ix.NeighborSearch(ix.Pts[j], p.Eps, m, scratch[:0])
			if len(scratch) >= p.MinPts {
				absorb(scratch, cid)
			}
		}
	}
	res.NumClusters = int(cid)
	opt.Rec.PhaseEnd(opt.Variant, obs.PhaseScratch)
	if n > 0 {
		stats.FractionReused = float64(stats.PointsReused) / float64(n)
	}
	return res, stats, nil
}

// expandCluster is Algorithm 4: BFS expansion of cluster cid from the edge
// frontier, absorbing density-reachable points and recording destroyed old
// clusters. It returns the (possibly re-grown) queue and scratch buffers so
// the caller amortizes them across every seed cluster of the variant.
func expandCluster(
	ix *dbscan.Index, p dbscan.Params, res *cluster.Result,
	visited []bool, destroyed []bool, prev *cluster.Result,
	cid int32, seedID int32, frontier []int32, scratch []int32,
	m *metrics.Counters, stats *Stats,
) (queueBuf, scratchBuf []int32) {
	queue := frontier // take ownership; caller resets
	// Frontier points are cluster edge points whose visited flag was
	// cleared (Algorithm 3, line 16); mark them visited now so each is
	// searched exactly once. Newly discovered points are marked visited at
	// discovery, bounding the queue by the number of absorbed points.
	for _, i := range queue {
		visited[i] = true
	}
	for qi := 0; qi < len(queue); qi++ {
		i := queue[qi]
		scratch = ix.NeighborSearch(ix.Pts[i], p.Eps, m, scratch[:0])
		if len(scratch) < p.MinPts {
			continue
		}
		for _, k := range scratch {
			if !visited[k] {
				visited[k] = true
				queue = append(queue, k)
			}
			if res.Labels[k] <= 0 {
				res.Labels[k] = cid
				// A point absorbed from another old cluster destroys it as
				// a seed candidate (Algorithm 4, line 10).
				if old := prev.Labels[k]; old > 0 && old != seedID && !destroyed[old] {
					destroyed[old] = true
					stats.ClustersDestroyed++
					m.AddClustersDestroyed(1)
				}
			}
		}
	}
	return queue, scratch
}

// ChooseSource picks, among completed variants, the reuse source for p with
// the smallest normalized parameter difference (the SCHEDGREEDY criterion);
// it returns -1 when none satisfies the inclusion criteria. completed holds
// the parameters of finished variants; norm must come from the full variant
// set so distances are comparable.
func ChooseSource(p dbscan.Params, completed []dbscan.Params, norm variant.Normalizer) int {
	best := -1
	bestDist := 0.0
	for i, c := range completed {
		if !variant.CanReuse(p, c) {
			continue
		}
		d := norm.Dist(p, c)
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}
