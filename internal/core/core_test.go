package core

import (
	"math/rand"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
	"vdbscan/internal/reuse"
	"vdbscan/internal/variant"
)

func blobs(k, m, noise int, extent, sigma float64, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, k*m+noise)
	for c := 0; c < k; c++ {
		cx, cy := rnd.Float64()*extent, rnd.Float64()*extent
		for i := 0; i < m; i++ {
			pts = append(pts, geom.Point{
				X: cx + rnd.NormFloat64()*sigma,
				Y: cy + rnd.NormFloat64()*sigma,
			})
		}
	}
	for i := 0; i < noise; i++ {
		pts = append(pts, geom.Point{X: rnd.Float64() * extent, Y: rnd.Float64() * extent})
	}
	return pts
}

func TestRunFromScratchWhenNoPrev(t *testing.T) {
	ix := dbscan.BuildIndex(blobs(2, 100, 20, 20, 0.5, 1), dbscan.IndexOptions{R: 8})
	res, stats, err := Run(ix, dbscan.Params{Eps: 0.5, MinPts: 4}, nil, reuse.ClusDensity, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FromScratch {
		t.Error("nil prev should cluster from scratch")
	}
	if stats.PointsReused != 0 || stats.FractionReused != 0 {
		t.Errorf("scratch run reported reuse: %+v", stats)
	}
	if res.NumClusters < 1 {
		t.Errorf("clusters = %d", res.NumClusters)
	}
}

func TestRunFromScratchWhenPrevHasNoClusters(t *testing.T) {
	pts := blobs(2, 100, 20, 20, 0.5, 2)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 8})
	// A prev result that found only noise.
	prev := cluster.NewResult(ix.Len())
	for i := range prev.Labels {
		prev.Labels[i] = cluster.Noise
	}
	_, stats, err := Run(ix, dbscan.Params{Eps: 0.5, MinPts: 4}, prev, reuse.ClusDensity, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FromScratch {
		t.Error("all-noise prev should fall back to scratch")
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	ix := dbscan.BuildIndex(blobs(1, 50, 0, 10, 0.5, 3), dbscan.IndexOptions{})
	prev, _ := dbscan.Run(ix, dbscan.Params{Eps: 0.5, MinPts: 4}, nil)
	if _, _, err := Run(ix, dbscan.Params{Eps: -1, MinPts: 4}, prev, reuse.ClusDefault, nil); err == nil {
		t.Error("bad params accepted")
	}
}

// runPair clusters with prevParams from scratch, then target with reuse,
// and returns (reused result, scratch result for target, stats).
func runPair(t *testing.T, pts []geom.Point, prevParams, target dbscan.Params, scheme reuse.Scheme) (*cluster.Result, *cluster.Result, Stats) {
	t.Helper()
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 16})
	prev, err := dbscan.Run(ix, prevParams, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Run(ix, target, prev, scheme, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dbscan.Run(ix, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	return got, want, stats
}

func TestReuseMatchesScratchDBSCAN(t *testing.T) {
	pts := blobs(4, 200, 150, 30, 0.7, 10)
	cases := []struct {
		name         string
		prev, target dbscan.Params
	}{
		{"same-eps-lower-minpts", dbscan.Params{Eps: 0.6, MinPts: 16}, dbscan.Params{Eps: 0.6, MinPts: 4}},
		{"bigger-eps-same-minpts", dbscan.Params{Eps: 0.4, MinPts: 8}, dbscan.Params{Eps: 0.8, MinPts: 8}},
		{"bigger-eps-lower-minpts", dbscan.Params{Eps: 0.4, MinPts: 16}, dbscan.Params{Eps: 0.7, MinPts: 4}},
		{"identical", dbscan.Params{Eps: 0.5, MinPts: 8}, dbscan.Params{Eps: 0.5, MinPts: 8}},
	}
	for _, c := range cases {
		for _, scheme := range reuse.Schemes {
			t.Run(c.name+"/"+scheme.String(), func(t *testing.T) {
				got, want, stats := runPair(t, pts, c.prev, c.target, scheme)
				if stats.PointsReused == 0 {
					t.Error("expected nonzero reuse")
				}
				// Allow a tiny border-point disagreement budget (paper
				// quality ≥ 0.998 => ≤0.2% of points).
				d := cluster.DisagreementCount(got, want)
				if d > len(pts)/200 {
					t.Errorf("disagreements = %d of %d", d, len(pts))
				}
				if got.NumClusters != want.NumClusters {
					t.Errorf("clusters: reuse %d vs scratch %d", got.NumClusters, want.NumClusters)
				}
				if got.NumNoise() != want.NumNoise() {
					t.Errorf("noise: reuse %d vs scratch %d", got.NumNoise(), want.NumNoise())
				}
			})
		}
	}
}

func TestReusedClustersOnlyGrow(t *testing.T) {
	// Inclusion criteria guarantee: every point of a reused (non-destroyed)
	// cluster stays clustered in the new result.
	pts := blobs(3, 200, 100, 25, 0.6, 20)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 16})
	prev, _ := dbscan.Run(ix, dbscan.Params{Eps: 0.4, MinPts: 12}, nil)
	got, _, err := Run(ix, dbscan.Params{Eps: 0.6, MinPts: 4}, prev, reuse.ClusDensity, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range prev.Labels {
		if l > 0 && got.Labels[i] <= 0 {
			t.Fatalf("point %d was clustered in prev but lost in reuse result", i)
		}
	}
	if got.NumClustered() < prev.NumClustered() {
		t.Errorf("clustered count shrank: %d -> %d", prev.NumClustered(), got.NumClustered())
	}
}

func TestClusterMergeDestroysSeeds(t *testing.T) {
	// Two dense blobs 3 apart: separate at eps=1, merged at eps=4.
	pts := make([]geom.Point, 0, 200)
	rnd := rand.New(rand.NewSource(30))
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Point{X: rnd.NormFloat64() * 0.3, Y: rnd.NormFloat64() * 0.3})
	}
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Point{X: 3 + rnd.NormFloat64()*0.3, Y: rnd.NormFloat64() * 0.3})
	}
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 8})
	prev, _ := dbscan.Run(ix, dbscan.Params{Eps: 0.5, MinPts: 4}, nil)
	if prev.NumClusters != 2 {
		t.Fatalf("setup: prev clusters = %d, want 2", prev.NumClusters)
	}
	var m metrics.Counters
	got, stats, err := Run(ix, dbscan.Params{Eps: 4, MinPts: 4}, prev, reuse.ClusDefault, &m)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClusters != 1 {
		t.Errorf("merged clusters = %d, want 1", got.NumClusters)
	}
	if stats.ClustersDestroyed != 1 {
		t.Errorf("destroyed = %d, want 1", stats.ClustersDestroyed)
	}
	if stats.ClustersReused != 1 {
		t.Errorf("reused = %d, want 1", stats.ClustersReused)
	}
	if m.Snapshot().ClustersDestroyed != 1 {
		t.Error("metrics did not record destruction")
	}
}

func TestReuseSkipsSearchesOnCopiedPoints(t *testing.T) {
	// The reuse win: ε-searches with reuse must be well below |D| when
	// identical parameters are reused (only edge verification remains).
	pts := blobs(3, 300, 50, 25, 0.5, 40)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 16})
	p := dbscan.Params{Eps: 0.5, MinPts: 4}

	var mScratch metrics.Counters
	prev, _ := dbscan.Run(ix, p, &mScratch)
	scratchSearches := mScratch.Snapshot().NeighborSearches

	var mReuse metrics.Counters
	_, stats, err := Run(ix, p, prev, reuse.ClusDensity, &mReuse)
	if err != nil {
		t.Fatal(err)
	}
	reuseSearches := mReuse.Snapshot().NeighborSearches
	if reuseSearches >= scratchSearches {
		t.Errorf("reuse searches %d >= scratch searches %d", reuseSearches, scratchSearches)
	}
	if stats.FractionReused < 0.5 {
		t.Errorf("fraction reused = %g, expected > 0.5 on blob data", stats.FractionReused)
	}
}

func TestFractionReusedBounds(t *testing.T) {
	pts := blobs(2, 200, 200, 20, 0.5, 50)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 16})
	prev, _ := dbscan.Run(ix, dbscan.Params{Eps: 0.4, MinPts: 8}, nil)
	_, stats, err := Run(ix, dbscan.Params{Eps: 0.5, MinPts: 4}, prev, reuse.ClusDensity, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FractionReused < 0 || stats.FractionReused > 1 {
		t.Errorf("fraction = %g out of [0,1]", stats.FractionReused)
	}
	if stats.PointsReused != int(float64(ix.Len())*stats.FractionReused+0.5) {
		t.Errorf("fraction inconsistent with count: %+v (n=%d)", stats, ix.Len())
	}
}

func TestReuseAcrossChainOfVariants(t *testing.T) {
	// Chain reuse: v1 scratch -> v2 reuses v1 -> v3 reuses v2; the final
	// result must still match scratch DBSCAN.
	pts := blobs(3, 250, 100, 25, 0.6, 60)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 16})
	p1 := dbscan.Params{Eps: 0.3, MinPts: 16}
	p2 := dbscan.Params{Eps: 0.5, MinPts: 8}
	p3 := dbscan.Params{Eps: 0.8, MinPts: 4}

	r1, _ := dbscan.Run(ix, p1, nil)
	r2, _, err := Run(ix, p2, r1, reuse.ClusDensity, nil)
	if err != nil {
		t.Fatal(err)
	}
	r3, _, err := Run(ix, p3, r2, reuse.ClusDensity, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := dbscan.Run(ix, p3, nil)
	if d := cluster.DisagreementCount(r3, want); d > len(pts)/200 {
		t.Errorf("chained reuse disagreements = %d", d)
	}
}

func TestRunEmptyDataset(t *testing.T) {
	ix := dbscan.BuildIndex(nil, dbscan.IndexOptions{})
	res, stats, err := Run(ix, dbscan.Params{Eps: 1, MinPts: 4}, nil, reuse.ClusDefault, nil)
	if err != nil || res.Len() != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	if stats.FractionReused != 0 {
		t.Error("empty dataset fraction should be 0")
	}
}

func TestChooseSource(t *testing.T) {
	vs := variant.Product([]float64{0.2, 0.4, 0.6}, []int{32, 28, 24, 20})
	norm := variant.NewNormalizer(vs)
	target := dbscan.Params{Eps: 0.6, MinPts: 20}

	completed := []dbscan.Params{
		{Eps: 0.2, MinPts: 32},
		{Eps: 0.6, MinPts: 24},
		{Eps: 0.4, MinPts: 20},
	}
	// Paper example: prefer (0.6,24) over (0.2,32).
	if got := ChooseSource(target, completed, norm); got != 1 {
		t.Errorf("ChooseSource = %d, want 1 (0.6,24)", got)
	}
	// Nothing reusable: completed variants all have bigger eps or smaller minpts.
	if got := ChooseSource(dbscan.Params{Eps: 0.1, MinPts: 40}, completed, norm); got != -1 {
		t.Errorf("ChooseSource = %d, want -1", got)
	}
	if got := ChooseSource(target, nil, norm); got != -1 {
		t.Errorf("empty completed: %d, want -1", got)
	}
}

func TestSchemesAllProduceValidResults(t *testing.T) {
	pts := blobs(5, 150, 100, 40, 0.8, 70)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 16})
	prev, _ := dbscan.Run(ix, dbscan.Params{Eps: 0.5, MinPts: 12}, nil)
	want, _ := dbscan.Run(ix, dbscan.Params{Eps: 0.7, MinPts: 4}, nil)
	for _, scheme := range reuse.Schemes {
		got, stats, err := Run(ix, dbscan.Params{Eps: 0.7, MinPts: 4}, prev, scheme, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := cluster.DisagreementCount(got, want); d > len(pts)/200 {
			t.Errorf("%v disagreements = %d", scheme, d)
		}
		if stats.ClustersReused+stats.ClustersDestroyed != prev.NumClusters {
			t.Errorf("%v: reused %d + destroyed %d != prev clusters %d",
				scheme, stats.ClustersReused, stats.ClustersDestroyed, prev.NumClusters)
		}
	}
}

func TestAllLabelsAssignedAfterReuse(t *testing.T) {
	// Every point must end Noise or in a cluster — never Unclassified.
	pts := blobs(3, 200, 150, 25, 0.6, 80)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 16})
	prev, _ := dbscan.Run(ix, dbscan.Params{Eps: 0.4, MinPts: 10}, nil)
	got, _, err := Run(ix, dbscan.Params{Eps: 0.6, MinPts: 4}, prev, reuse.ClusDensity, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range got.Labels {
		if l == cluster.Unclassified {
			t.Fatalf("point %d left unclassified", i)
		}
		if l > int32(got.NumClusters) {
			t.Fatalf("point %d has label %d > NumClusters %d", i, l, got.NumClusters)
		}
	}
}

func TestRunOptsMinSeedSize(t *testing.T) {
	pts := blobs(4, 150, 100, 30, 0.6, 90)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 16})
	prev, _ := dbscan.Run(ix, dbscan.Params{Eps: 0.5, MinPts: 8}, nil)
	target := dbscan.Params{Eps: 0.7, MinPts: 4}

	all, sAll, err := RunOpts(ix, target, prev, Options{Scheme: reuse.ClusDensity}, nil)
	if err != nil {
		t.Fatal(err)
	}
	filtered, sFil, err := RunOpts(ix, target, prev,
		Options{Scheme: reuse.ClusDensity, MinSeedSize: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Filtering can only reduce (or match) the seeds expanded.
	if sFil.ClustersReused > sAll.ClustersReused {
		t.Errorf("filtered reused %d > unfiltered %d", sFil.ClustersReused, sAll.ClustersReused)
	}
	// Correctness is unaffected: both match scratch DBSCAN.
	want, _ := dbscan.Run(ix, target, nil)
	for name, got := range map[string]*cluster.Result{"all": all, "filtered": filtered} {
		if d := cluster.DisagreementCount(got, want); d > len(pts)/200 {
			t.Errorf("%s: disagreements = %d", name, d)
		}
	}
	// Filtering everything degenerates to a from-scratch-equivalent pass.
	none, sNone, err := RunOpts(ix, target, prev,
		Options{Scheme: reuse.ClusDensity, MinSeedSize: 1 << 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sNone.PointsReused != 0 {
		t.Errorf("fully filtered still reused %d points", sNone.PointsReused)
	}
	if d := cluster.DisagreementCount(none, want); d > len(pts)/200 {
		t.Errorf("fully filtered: disagreements = %d", d)
	}
}
