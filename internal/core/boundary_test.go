package core

import (
	"fmt"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/quality"
	"vdbscan/internal/reuse"
	"vdbscan/internal/variant"
)

// These tests pin the *boundary* of the reuse inclusion criteria
// (§IV-B): reuse is legal when ε_i ≥ ε_j AND minpts_i ≤ minpts_j — with
// equality explicitly included. An accidental strict comparison would be
// silently conservative (equal-parameter variants re-cluster from
// scratch, losing the paper's headline speedup case of duplicated
// parameter grids), and a flipped comparison would be silently wrong.

func TestCanReuseBoundaryInclusive(t *testing.T) {
	base := dbscan.Params{Eps: 0.5, MinPts: 4}
	cases := []struct {
		vi, vj dbscan.Params
		want   bool
		why    string
	}{
		{base, base, true, "identical parameters are the boundary in both coordinates"},
		{dbscan.Params{Eps: 0.5, MinPts: 3}, base, true, "equal ε, smaller minpts"},
		{dbscan.Params{Eps: 0.6, MinPts: 4}, base, true, "larger ε, equal minpts"},
		{dbscan.Params{Eps: 0.6, MinPts: 3}, base, true, "both strictly inside"},
		{dbscan.Params{Eps: 0.4999, MinPts: 4}, base, false, "ε below"},
		{dbscan.Params{Eps: 0.5, MinPts: 5}, base, false, "minpts above"},
		{dbscan.Params{Eps: 0.6, MinPts: 5}, base, false, "ε inside but minpts above"},
	}
	for _, c := range cases {
		if got := variant.CanReuse(c.vi, c.vj); got != c.want {
			t.Errorf("CanReuse(%v, %v) = %v, want %v (%s)", c.vi, c.vj, got, c.want, c.why)
		}
	}
}

// equivalentToScratch checks got against a from-scratch run on the same
// index via the order-independent DBSCAN equivalence: identical noise
// sets, a bijection between cluster IDs on core points, and legal border
// attachment.
func equivalentToScratch(t *testing.T, tag string, ix *dbscan.Index, p dbscan.Params, got *cluster.Result) {
	t.Helper()
	want, err := dbscan.Run(ix, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	epsSq := p.Eps * p.Eps
	n := ix.Len()
	core := make([]bool, n)
	for i := 0; i < n; i++ {
		cnt := 0
		for j := 0; j < n; j++ {
			if ix.Pts[i].DistSq(ix.Pts[j]) <= epsSq {
				cnt++
			}
		}
		core[i] = cnt >= p.MinPts
	}
	g2w, w2g := map[int32]int32{}, map[int32]int32{}
	for i := 0; i < n; i++ {
		g, w := got.Labels[i], want.Labels[i]
		if (g <= 0) != (w <= 0) {
			t.Fatalf("%s: point %d noise disagreement: reused %d, scratch %d", tag, i, g, w)
		}
		if !core[i] {
			continue
		}
		if prev, ok := g2w[g]; ok && prev != w {
			t.Fatalf("%s: reused cluster %d spans scratch clusters %d and %d", tag, g, prev, w)
		}
		if prev, ok := w2g[w]; ok && prev != g {
			t.Fatalf("%s: scratch cluster %d spans reused clusters %d and %d", tag, w, prev, g)
		}
		g2w[g], w2g[w] = w, g
	}
	for i := 0; i < n; i++ {
		if core[i] || got.Labels[i] <= 0 {
			continue
		}
		ok := false
		for j := 0; j < n; j++ {
			if core[j] && got.Labels[j] == got.Labels[i] && ix.Pts[i].DistSq(ix.Pts[j]) <= epsSq {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("%s: border %d attached to cluster %d with no adjacent core", tag, i, got.Labels[i])
		}
	}
}

// TestReuseEqualParamsMatchesPlainDBSCAN is the boundary property test:
// a variant reusing a donor with IDENTICAL parameters must reproduce
// plain DBSCAN exactly — reused clusters are copied wholesale, so even
// the border assignments are inherited and the quality score is exactly
// 1.0, not merely ≥ 0.99.
func TestReuseEqualParamsMatchesPlainDBSCAN(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			pts := blobs(3, 90, 40, 18, 0.5, seed)
			ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 8})
			p := dbscan.Params{Eps: 0.55, MinPts: 4}
			prev, err := dbscan.Run(ix, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !variant.CanReuse(p, p) {
				t.Fatal("equal parameters must satisfy the inclusion criteria")
			}
			for _, scheme := range reuse.Schemes {
				got, stats, err := Run(ix, p, prev, scheme, nil)
				if err != nil {
					t.Fatal(err)
				}
				if stats.FromScratch {
					t.Fatalf("scheme %v: equal-parameter variant did not reuse", scheme)
				}
				if stats.PointsReused == 0 {
					t.Fatalf("scheme %v: no points reused: %+v", scheme, stats)
				}
				if s := quality.MustScore(prev, got); s != 1.0 {
					t.Fatalf("scheme %v: equal-parameter reuse quality = %v, want exactly 1.0", scheme, s)
				}
				if got.NumClusters != prev.NumClusters || got.NumNoise() != prev.NumNoise() {
					t.Fatalf("scheme %v: clusters/noise %d/%d, want %d/%d",
						scheme, got.NumClusters, got.NumNoise(), prev.NumClusters, prev.NumNoise())
				}
			}
		})
	}
}

// TestReuseSingleCoordinateBoundary holds one parameter at exact
// equality while the other moves strictly inside the criteria — the two
// edges of the inclusion region. The reused result must be equivalent to
// clustering variant i from scratch.
func TestReuseSingleCoordinateBoundary(t *testing.T) {
	pts := blobs(3, 80, 40, 16, 0.5, 7)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 8})
	donor := dbscan.Params{Eps: 0.5, MinPts: 5}
	prev, err := dbscan.Run(ix, donor, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		p    dbscan.Params
	}{
		{"equal-eps smaller-minpts", dbscan.Params{Eps: 0.5, MinPts: 3}},
		{"larger-eps equal-minpts", dbscan.Params{Eps: 0.62, MinPts: 5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if !variant.CanReuse(c.p, donor) {
				t.Fatalf("CanReuse(%v, %v) = false at the boundary", c.p, donor)
			}
			got, stats, err := Run(ix, c.p, prev, reuse.ClusDensity, nil)
			if err != nil {
				t.Fatal(err)
			}
			if stats.FromScratch || stats.PointsReused == 0 {
				t.Fatalf("boundary variant did not reuse: %+v", stats)
			}
			equivalentToScratch(t, c.name, ix, c.p, got)
		})
	}
}
