// Package cliutil holds the flag- and environment-parsing helpers shared by
// the command line tools (cmd/vdbscan, cmd/vdbscand, cmd/datagen,
// cmd/experiments).
package cliutil

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vdbscan/internal/dbscan"
	"vdbscan/internal/reuse"
	"vdbscan/internal/sched"
)

// EnvOr returns the environment variable's value, or def when unset or
// empty. Daemons use it as the flag default so `-addr` beats
// `VDBSCAND_ADDR` beats the built-in default.
func EnvOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// EnvIntOr is EnvOr for integers. A set-but-unparsable value is an error:
// silently falling back would mask a typo'd deployment config.
func EnvIntOr(key string, def int) (int, error) {
	v := os.Getenv(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("cliutil: %s=%q: %w", key, v, err)
	}
	return n, nil
}

// EnvFloatOr is EnvOr for floats.
func EnvFloatOr(key string, def float64) (float64, error) {
	v := os.Getenv(key)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("cliutil: %s=%q: %w", key, v, err)
	}
	return f, nil
}

// EnvDurationOr is EnvOr for time.ParseDuration values ("250ms", "1m30s").
func EnvDurationOr(key string, def time.Duration) (time.Duration, error) {
	v := os.Getenv(key)
	if v == "" {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("cliutil: %s=%q: %w", key, v, err)
	}
	return d, nil
}

// ParseFloats parses a comma-separated list of floats ("0.2, 0.4,0.6").
// Empty elements are skipped; an empty list is an error.
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("cliutil: %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty float list")
	}
	return out, nil
}

// ParseInts parses a comma-separated list of ints ("4,8,16").
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("cliutil: %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty int list")
	}
	return out, nil
}

// ParseRange parses "lo:hi:step" into the inclusive arithmetic sequence it
// describes, or falls back to ParseInts for comma lists — convenient for
// the paper's B = {10, 15, ..., 100} style sets.
func ParseRange(s string) ([]int, error) {
	if !strings.Contains(s, ":") {
		return ParseInts(s)
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("cliutil: range %q, want lo:hi:step", s)
	}
	lo, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, fmt.Errorf("cliutil: range lo: %w", err)
	}
	hi, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return nil, fmt.Errorf("cliutil: range hi: %w", err)
	}
	step, err := strconv.Atoi(strings.TrimSpace(parts[2]))
	if err != nil {
		return nil, fmt.Errorf("cliutil: range step: %w", err)
	}
	if step <= 0 {
		return nil, fmt.Errorf("cliutil: range step must be positive, got %d", step)
	}
	if hi < lo {
		return nil, fmt.Errorf("cliutil: range hi %d below lo %d", hi, lo)
	}
	var out []int
	for v := lo; v <= hi; v += step {
		out = append(out, v)
	}
	return out, nil
}

// ParseIndexKind maps CLI spellings ("rtree", "grid"; empty = rtree) to
// index kinds.
func ParseIndexKind(name string) (dbscan.IndexKind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "rtree":
		return dbscan.IndexRTree, nil
	case "grid":
		return dbscan.IndexGrid, nil
	default:
		return 0, fmt.Errorf("cliutil: unknown index kind %q (want rtree or grid)", name)
	}
}

// ParseScheme maps CLI spellings to reuse schemes.
func ParseScheme(name string) (reuse.Scheme, error) {
	return reuse.Parse(name)
}

// ParseStrategy maps CLI spellings to scheduling strategies.
func ParseStrategy(name string) (sched.Strategy, error) {
	return sched.Parse(name)
}
