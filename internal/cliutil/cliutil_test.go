package cliutil

import (
	"testing"
	"time"

	"vdbscan/internal/reuse"
	"vdbscan/internal/sched"
)

func TestParseFloats(t *testing.T) {
	got, err := ParseFloats("0.2, 0.4,0.6")
	if err != nil || len(got) != 3 || got[0] != 0.2 || got[2] != 0.6 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := ParseFloats(""); err == nil {
		t.Error("empty accepted")
	}
	if _, err := ParseFloats("a,b"); err == nil {
		t.Error("garbage accepted")
	}
	if got, _ := ParseFloats("1,,2"); len(got) != 2 {
		t.Errorf("empty elements should be skipped: %v", got)
	}
}

func TestParseInts(t *testing.T) {
	got, err := ParseInts("4,8, 16")
	if err != nil || len(got) != 3 || got[2] != 16 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := ParseInts("1.5"); err == nil {
		t.Error("float accepted as int")
	}
	if _, err := ParseInts(" , "); err == nil {
		t.Error("blank list accepted")
	}
}

func TestParseRange(t *testing.T) {
	got, err := ParseRange("10:100:5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 19 || got[0] != 10 || got[18] != 100 {
		t.Fatalf("paper's B set: %v", got)
	}
	// Falls back to comma lists.
	got, err = ParseRange("4,8,16")
	if err != nil || len(got) != 3 {
		t.Fatalf("comma fallback: %v, %v", got, err)
	}
	for _, bad := range []string{"1:2", "1:2:3:4", "a:2:1", "1:b:1", "1:9:x", "5:1:1", "1:9:0"} {
		if _, err := ParseRange(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	// Single-element range.
	got, _ = ParseRange("7:7:1")
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("degenerate range: %v", got)
	}
}

func TestParseSchemeAndStrategy(t *testing.T) {
	if got, err := ParseScheme("density"); err != nil || got != reuse.ClusDensity {
		t.Errorf("scheme: %v, %v", got, err)
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("bad scheme accepted")
	}
	if got, err := ParseStrategy("tree"); err != nil || got != sched.SchedTree {
		t.Errorf("strategy: %v, %v", got, err)
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bad strategy accepted")
	}
}

func TestEnvOr(t *testing.T) {
	t.Setenv("CLIUTIL_TEST_STR", "")
	if got := EnvOr("CLIUTIL_TEST_STR", "fallback"); got != "fallback" {
		t.Errorf("unset: got %q", got)
	}
	t.Setenv("CLIUTIL_TEST_STR", ":9999")
	if got := EnvOr("CLIUTIL_TEST_STR", "fallback"); got != ":9999" {
		t.Errorf("set: got %q", got)
	}
}

func TestEnvIntOr(t *testing.T) {
	t.Setenv("CLIUTIL_TEST_INT", "")
	if got, err := EnvIntOr("CLIUTIL_TEST_INT", 42); err != nil || got != 42 {
		t.Errorf("unset: got %d, %v", got, err)
	}
	t.Setenv("CLIUTIL_TEST_INT", "7")
	if got, err := EnvIntOr("CLIUTIL_TEST_INT", 42); err != nil || got != 7 {
		t.Errorf("set: got %d, %v", got, err)
	}
	t.Setenv("CLIUTIL_TEST_INT", "seven")
	if _, err := EnvIntOr("CLIUTIL_TEST_INT", 42); err == nil {
		t.Error("unparsable value must error, not silently fall back")
	}
}

func TestEnvFloatOr(t *testing.T) {
	t.Setenv("CLIUTIL_TEST_FLOAT", "")
	if got, err := EnvFloatOr("CLIUTIL_TEST_FLOAT", 0.5); err != nil || got != 0.5 {
		t.Errorf("unset: got %g, %v", got, err)
	}
	t.Setenv("CLIUTIL_TEST_FLOAT", "0.25")
	if got, err := EnvFloatOr("CLIUTIL_TEST_FLOAT", 0.5); err != nil || got != 0.25 {
		t.Errorf("set: got %g, %v", got, err)
	}
	t.Setenv("CLIUTIL_TEST_FLOAT", "half")
	if _, err := EnvFloatOr("CLIUTIL_TEST_FLOAT", 0.5); err == nil {
		t.Error("unparsable float must error, not silently fall back")
	}
}

func TestEnvDurationOr(t *testing.T) {
	t.Setenv("CLIUTIL_TEST_DUR", "")
	if got, err := EnvDurationOr("CLIUTIL_TEST_DUR", time.Minute); err != nil || got != time.Minute {
		t.Errorf("unset: got %v, %v", got, err)
	}
	t.Setenv("CLIUTIL_TEST_DUR", "250ms")
	if got, err := EnvDurationOr("CLIUTIL_TEST_DUR", time.Minute); err != nil || got != 250*time.Millisecond {
		t.Errorf("set: got %v, %v", got, err)
	}
	t.Setenv("CLIUTIL_TEST_DUR", "soon")
	if _, err := EnvDurationOr("CLIUTIL_TEST_DUR", time.Minute); err == nil {
		t.Error("unparsable duration must error")
	}
}
