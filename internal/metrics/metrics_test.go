package metrics

import (
	"sync"
	"testing"
)

func TestCountersBasic(t *testing.T) {
	var c Counters
	c.AddNeighborSearches(3)
	c.AddCandidatesExamined(100)
	c.AddNeighborsFound(40)
	c.AddNodesVisited(7)
	c.AddPointsReused(500)
	c.AddClustersReused(2)
	c.AddClustersDestroyed(1)
	s := c.Snapshot()
	if s.NeighborSearches != 3 || s.CandidatesExamined != 100 ||
		s.NeighborsFound != 40 || s.NodesVisited != 7 ||
		s.PointsReused != 500 || s.ClustersReused != 2 || s.ClustersDestroyed != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestNilCountersAreNoOps(t *testing.T) {
	var c *Counters
	// All of these must not panic.
	c.AddNeighborSearches(1)
	c.AddCandidatesExamined(1)
	c.AddNeighborsFound(1)
	c.AddNodesVisited(1)
	c.AddPointsReused(1)
	c.AddClustersReused(1)
	c.AddClustersDestroyed(1)
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.AddNeighborSearches(5)
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("after reset: %+v", s)
	}
}

func TestSubAdd(t *testing.T) {
	a := Snapshot{NeighborSearches: 10, CandidatesExamined: 100, PointsReused: 7}
	b := Snapshot{NeighborSearches: 4, CandidatesExamined: 40, PointsReused: 2}
	d := a.Sub(b)
	if d.NeighborSearches != 6 || d.CandidatesExamined != 60 || d.PointsReused != 5 {
		t.Errorf("Sub = %+v", d)
	}
	if got := b.Add(d); got != a {
		t.Errorf("Add round trip = %+v, want %+v", got, a)
	}
}

func TestConcurrentAccumulation(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddNeighborSearches(1)
				c.AddCandidatesExamined(2)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.NeighborSearches != workers*per {
		t.Errorf("searches = %d, want %d", s.NeighborSearches, workers*per)
	}
	if s.CandidatesExamined != 2*workers*per {
		t.Errorf("candidates = %d, want %d", s.CandidatesExamined, 2*workers*per)
	}
}

func TestSnapshotString(t *testing.T) {
	if s := (Snapshot{NeighborSearches: 1}).String(); s == "" {
		t.Error("String empty")
	}
}

func TestLocalFlushTo(t *testing.T) {
	var c Counters
	l := Local{NeighborSearches: 3, CandidatesExamined: 40, NeighborsFound: 7,
		NodesVisited: 5, PointsReused: 2, ClustersReused: 1, ClustersDestroyed: 1}
	l.FlushTo(&c)
	want := Snapshot{NeighborSearches: 3, CandidatesExamined: 40, NeighborsFound: 7,
		NodesVisited: 5, PointsReused: 2, ClustersReused: 1, ClustersDestroyed: 1}
	if got := c.Snapshot(); got != want {
		t.Errorf("after flush: %+v, want %+v", got, want)
	}
	if l != (Local{}) {
		t.Errorf("flush did not reset local: %+v", l)
	}
	// Second flush of the zeroed local is a no-op.
	l.FlushTo(&c)
	if got := c.Snapshot(); got != want {
		t.Errorf("empty flush changed counters: %+v", got)
	}
}

func TestLocalFlushToNil(t *testing.T) {
	l := Local{NeighborSearches: 9}
	l.FlushTo(nil)
	if l != (Local{}) {
		t.Errorf("flush to nil did not reset local: %+v", l)
	}
}

func TestNilCountersAllAddsNoOp(t *testing.T) {
	// The documented guarantee: every Add* on a nil receiver is a no-op and
	// must not panic.
	var c *Counters
	c.AddNeighborSearches(1)
	c.AddCandidatesExamined(1)
	c.AddNeighborsFound(1)
	c.AddNodesVisited(1)
	c.AddPointsReused(1)
	c.AddClustersReused(1)
	c.AddClustersDestroyed(1)
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestLocalConcurrentWorkersFlush(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	const workers, per, chunk = 8, 1000, 64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var l Local
			for i := 0; i < per; i++ {
				l.NeighborSearches++
				l.NodesVisited += 2
				if i%chunk == chunk-1 {
					l.FlushTo(&c)
				}
			}
			l.FlushTo(&c)
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.NeighborSearches != workers*per || s.NodesVisited != 2*workers*per {
		t.Errorf("batched totals wrong: %+v", s)
	}
}

// fullSnapshot populates every field with a distinct value so field-mapping
// mistakes in Sub/Add/AddSnapshot can't cancel out.
func fullSnapshot(base int64) Snapshot {
	return Snapshot{
		NeighborSearches:   base + 1,
		CandidatesExamined: base + 2,
		NeighborsFound:     base + 3,
		NodesVisited:       base + 4,
		PointsReused:       base + 5,
		ClustersReused:     base + 6,
		ClustersDestroyed:  base + 7,
	}
}

// TestSubZeroCases pins the identities the tracer's delta attribution
// relies on: subtracting the zero snapshot is the identity, subtracting a
// snapshot from itself is zero, and Sub covers every field.
func TestSubZeroCases(t *testing.T) {
	a := fullSnapshot(100)
	if got := a.Sub(Snapshot{}); got != a {
		t.Errorf("a.Sub(zero) = %+v, want %+v", got, a)
	}
	if got := a.Sub(a); got != (Snapshot{}) {
		t.Errorf("a.Sub(a) = %+v, want zero", got)
	}
	b := fullSnapshot(40)
	d := a.Sub(b)
	want := Snapshot{NeighborSearches: 60, CandidatesExamined: 60, NeighborsFound: 60,
		NodesVisited: 60, PointsReused: 60, ClustersReused: 60, ClustersDestroyed: 60}
	if d != want {
		t.Errorf("field-wise Sub = %+v, want %+v", d, want)
	}
	if got := b.Add(d); got != a {
		t.Errorf("Add/Sub round trip = %+v, want %+v", got, a)
	}
}

// TestAddSnapshot covers the per-variant → run-wide aggregation edge the
// tracer introduced: folding a variant's own counter snapshot into shared
// totals, including the nil-receiver and zero-snapshot no-op paths.
func TestAddSnapshot(t *testing.T) {
	var c Counters
	c.AddSnapshot(fullSnapshot(10))
	c.AddSnapshot(Snapshot{}) // all-zero: skip-on-zero fast path
	c.AddSnapshot(fullSnapshot(20))
	got := c.Snapshot()
	want := fullSnapshot(10).Add(fullSnapshot(20))
	if got != want {
		t.Errorf("AddSnapshot totals = %+v, want %+v", got, want)
	}
	var nilC *Counters
	nilC.AddSnapshot(fullSnapshot(1)) // must not panic
	if nilC.Snapshot() != (Snapshot{}) {
		t.Error("nil Counters snapshot not zero")
	}
}

// TestConcurrentSnapshotDelta exercises the exact path the tracer uses to
// attribute work to one phase — snapshot before, snapshot after, Sub —
// while other goroutines keep accumulating. Two barriers partition the
// writes so the expected delta is deterministic even though phase-2 writers
// run concurrently with the closing snapshot's loads.
func TestConcurrentSnapshotDelta(t *testing.T) {
	var c Counters
	const workers, per = 8, 500

	runPhase := func(searches, reused int64) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := int64(0); i < per; i++ {
					c.AddNeighborSearches(searches)
					c.AddPointsReused(reused)
				}
			}()
		}
		wg.Wait()
	}

	runPhase(1, 0) // phase 1: searches only
	before := c.Snapshot()
	runPhase(2, 3) // phase 2: what the delta must capture
	delta := c.Snapshot().Sub(before)

	if want := int64(2 * workers * per); delta.NeighborSearches != want {
		t.Errorf("delta searches = %d, want %d", delta.NeighborSearches, want)
	}
	if want := int64(3 * workers * per); delta.PointsReused != want {
		t.Errorf("delta reused = %d, want %d", delta.PointsReused, want)
	}
	if delta.CandidatesExamined != 0 {
		t.Errorf("delta candidates = %d, want 0", delta.CandidatesExamined)
	}
}
