package metrics

import (
	"sync"
	"testing"
)

func TestCountersBasic(t *testing.T) {
	var c Counters
	c.AddNeighborSearches(3)
	c.AddCandidatesExamined(100)
	c.AddNeighborsFound(40)
	c.AddNodesVisited(7)
	c.AddPointsReused(500)
	c.AddClustersReused(2)
	c.AddClustersDestroyed(1)
	s := c.Snapshot()
	if s.NeighborSearches != 3 || s.CandidatesExamined != 100 ||
		s.NeighborsFound != 40 || s.NodesVisited != 7 ||
		s.PointsReused != 500 || s.ClustersReused != 2 || s.ClustersDestroyed != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestNilCountersAreNoOps(t *testing.T) {
	var c *Counters
	// All of these must not panic.
	c.AddNeighborSearches(1)
	c.AddCandidatesExamined(1)
	c.AddNeighborsFound(1)
	c.AddNodesVisited(1)
	c.AddPointsReused(1)
	c.AddClustersReused(1)
	c.AddClustersDestroyed(1)
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.AddNeighborSearches(5)
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("after reset: %+v", s)
	}
}

func TestSubAdd(t *testing.T) {
	a := Snapshot{NeighborSearches: 10, CandidatesExamined: 100, PointsReused: 7}
	b := Snapshot{NeighborSearches: 4, CandidatesExamined: 40, PointsReused: 2}
	d := a.Sub(b)
	if d.NeighborSearches != 6 || d.CandidatesExamined != 60 || d.PointsReused != 5 {
		t.Errorf("Sub = %+v", d)
	}
	if got := b.Add(d); got != a {
		t.Errorf("Add round trip = %+v, want %+v", got, a)
	}
}

func TestConcurrentAccumulation(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddNeighborSearches(1)
				c.AddCandidatesExamined(2)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.NeighborSearches != workers*per {
		t.Errorf("searches = %d, want %d", s.NeighborSearches, workers*per)
	}
	if s.CandidatesExamined != 2*workers*per {
		t.Errorf("candidates = %d, want %d", s.CandidatesExamined, 2*workers*per)
	}
}

func TestSnapshotString(t *testing.T) {
	if s := (Snapshot{NeighborSearches: 1}).String(); s == "" {
		t.Error("String empty")
	}
}

func TestLocalFlushTo(t *testing.T) {
	var c Counters
	l := Local{NeighborSearches: 3, CandidatesExamined: 40, NeighborsFound: 7,
		NodesVisited: 5, PointsReused: 2, ClustersReused: 1, ClustersDestroyed: 1}
	l.FlushTo(&c)
	want := Snapshot{NeighborSearches: 3, CandidatesExamined: 40, NeighborsFound: 7,
		NodesVisited: 5, PointsReused: 2, ClustersReused: 1, ClustersDestroyed: 1}
	if got := c.Snapshot(); got != want {
		t.Errorf("after flush: %+v, want %+v", got, want)
	}
	if l != (Local{}) {
		t.Errorf("flush did not reset local: %+v", l)
	}
	// Second flush of the zeroed local is a no-op.
	l.FlushTo(&c)
	if got := c.Snapshot(); got != want {
		t.Errorf("empty flush changed counters: %+v", got)
	}
}

func TestLocalFlushToNil(t *testing.T) {
	l := Local{NeighborSearches: 9}
	l.FlushTo(nil)
	if l != (Local{}) {
		t.Errorf("flush to nil did not reset local: %+v", l)
	}
}

func TestNilCountersAllAddsNoOp(t *testing.T) {
	// The documented guarantee: every Add* on a nil receiver is a no-op and
	// must not panic.
	var c *Counters
	c.AddNeighborSearches(1)
	c.AddCandidatesExamined(1)
	c.AddNeighborsFound(1)
	c.AddNodesVisited(1)
	c.AddPointsReused(1)
	c.AddClustersReused(1)
	c.AddClustersDestroyed(1)
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestLocalConcurrentWorkersFlush(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	const workers, per, chunk = 8, 1000, 64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var l Local
			for i := 0; i < per; i++ {
				l.NeighborSearches++
				l.NodesVisited += 2
				if i%chunk == chunk-1 {
					l.FlushTo(&c)
				}
			}
			l.FlushTo(&c)
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.NeighborSearches != workers*per || s.NodesVisited != 2*workers*per {
		t.Errorf("batched totals wrong: %+v", s)
	}
}
