package metrics

import (
	"sync"
	"testing"
)

func TestCountersBasic(t *testing.T) {
	var c Counters
	c.AddNeighborSearches(3)
	c.AddCandidatesExamined(100)
	c.AddNeighborsFound(40)
	c.AddNodesVisited(7)
	c.AddPointsReused(500)
	c.AddClustersReused(2)
	c.AddClustersDestroyed(1)
	s := c.Snapshot()
	if s.NeighborSearches != 3 || s.CandidatesExamined != 100 ||
		s.NeighborsFound != 40 || s.NodesVisited != 7 ||
		s.PointsReused != 500 || s.ClustersReused != 2 || s.ClustersDestroyed != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestNilCountersAreNoOps(t *testing.T) {
	var c *Counters
	// All of these must not panic.
	c.AddNeighborSearches(1)
	c.AddCandidatesExamined(1)
	c.AddNeighborsFound(1)
	c.AddNodesVisited(1)
	c.AddPointsReused(1)
	c.AddClustersReused(1)
	c.AddClustersDestroyed(1)
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.AddNeighborSearches(5)
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("after reset: %+v", s)
	}
}

func TestSubAdd(t *testing.T) {
	a := Snapshot{NeighborSearches: 10, CandidatesExamined: 100, PointsReused: 7}
	b := Snapshot{NeighborSearches: 4, CandidatesExamined: 40, PointsReused: 2}
	d := a.Sub(b)
	if d.NeighborSearches != 6 || d.CandidatesExamined != 60 || d.PointsReused != 5 {
		t.Errorf("Sub = %+v", d)
	}
	if got := b.Add(d); got != a {
		t.Errorf("Add round trip = %+v, want %+v", got, a)
	}
}

func TestConcurrentAccumulation(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddNeighborSearches(1)
				c.AddCandidatesExamined(2)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.NeighborSearches != workers*per {
		t.Errorf("searches = %d, want %d", s.NeighborSearches, workers*per)
	}
	if s.CandidatesExamined != 2*workers*per {
		t.Errorf("candidates = %d, want %d", s.CandidatesExamined, 2*workers*per)
	}
}

func TestSnapshotString(t *testing.T) {
	if s := (Snapshot{NeighborSearches: 1}).String(); s == "" {
		t.Error("String empty")
	}
}
