// Package metrics provides the atomic work counters the evaluation harness
// reports next to wall-clock time.
//
// The paper's figures are driven by two machine-dependent effects — the
// memory-bound ε-neighborhood search and multi-core parallelism. On hardware
// different from the authors' 16-core Xeon the absolute times shift, but the
// *work* VariantDBSCAN saves (ε-searches skipped, candidate points never
// fetched, points reused from completed variants) is deterministic. Counters
// here capture that work so every figure's shape can be checked exactly.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Counters accumulates work metrics. All methods are safe for concurrent
// use; a single Counters instance is typically shared by all goroutines
// clustering one variant.
//
// Every Add* method on a nil *Counters is a guaranteed no-op: the nil check
// is the first statement of each method, there is no other work on that
// path, and the methods are small enough to inline, so uninstrumented runs
// (m == nil throughout the hot path) pay only a predictable branch per
// call. Callers therefore never need to guard increments with their own
// nil tests.
//
// For instrumented hot paths shared by many goroutines, prefer a per-worker
// Local flushed once per work chunk over per-call Add*: each Add* is one
// atomic read-modify-write on a cache line contended by every worker,
// which is measurably slower than batched flushes (see
// BenchmarkCountersContention in this package).
type Counters struct {
	neighborSearches   atomic.Int64 // ε-neighborhood searches performed (Algorithm 2 calls)
	candidatesExamined atomic.Int64 // points distance-filtered after index lookup
	neighborsFound     atomic.Int64 // points that passed the ε filter
	nodesVisited       atomic.Int64 // R-tree nodes touched (memory-access proxy)
	pointsReused       atomic.Int64 // points copied from a completed variant's clusters
	clustersReused     atomic.Int64 // seed clusters successfully expanded
	clustersDestroyed  atomic.Int64 // seed clusters invalidated during reuse
}

// Snapshot is a plain-value copy of the counters at one instant.
type Snapshot struct {
	NeighborSearches   int64
	CandidatesExamined int64
	NeighborsFound     int64
	NodesVisited       int64
	PointsReused       int64
	ClustersReused     int64
	ClustersDestroyed  int64
}

// AddNeighborSearches records n ε-neighborhood searches.
func (c *Counters) AddNeighborSearches(n int64) {
	if c != nil {
		c.neighborSearches.Add(n)
	}
}

// AddCandidatesExamined records n candidate points distance-filtered.
func (c *Counters) AddCandidatesExamined(n int64) {
	if c != nil {
		c.candidatesExamined.Add(n)
	}
}

// AddNeighborsFound records n points found within ε.
func (c *Counters) AddNeighborsFound(n int64) {
	if c != nil {
		c.neighborsFound.Add(n)
	}
}

// AddNodesVisited records n R-tree nodes touched.
func (c *Counters) AddNodesVisited(n int64) {
	if c != nil {
		c.nodesVisited.Add(n)
	}
}

// AddPointsReused records n points copied from a previous variant.
func (c *Counters) AddPointsReused(n int64) {
	if c != nil {
		c.pointsReused.Add(n)
	}
}

// AddClustersReused records n seed clusters expanded.
func (c *Counters) AddClustersReused(n int64) {
	if c != nil {
		c.clustersReused.Add(n)
	}
}

// AddClustersDestroyed records n seed clusters invalidated.
func (c *Counters) AddClustersDestroyed(n int64) {
	if c != nil {
		c.clustersDestroyed.Add(n)
	}
}

// Snapshot returns a copy of the current counter values. Snapshot on a nil
// receiver returns the zero Snapshot, so instrumentation can be optional.
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		NeighborSearches:   c.neighborSearches.Load(),
		CandidatesExamined: c.candidatesExamined.Load(),
		NeighborsFound:     c.neighborsFound.Load(),
		NodesVisited:       c.nodesVisited.Load(),
		PointsReused:       c.pointsReused.Load(),
		ClustersReused:     c.clustersReused.Load(),
		ClustersDestroyed:  c.clustersDestroyed.Load(),
	}
}

// AddSnapshot accumulates a whole snapshot into the counters — the
// aggregation edge between a per-variant counter set (whose Snapshot is the
// variant's own work delta, reported in trace events) and the run-wide
// totals. Nil-safe and skip-on-zero like the scalar Add* methods.
func (c *Counters) AddSnapshot(s Snapshot) {
	if c == nil {
		return
	}
	if s.NeighborSearches != 0 {
		c.neighborSearches.Add(s.NeighborSearches)
	}
	if s.CandidatesExamined != 0 {
		c.candidatesExamined.Add(s.CandidatesExamined)
	}
	if s.NeighborsFound != 0 {
		c.neighborsFound.Add(s.NeighborsFound)
	}
	if s.NodesVisited != 0 {
		c.nodesVisited.Add(s.NodesVisited)
	}
	if s.PointsReused != 0 {
		c.pointsReused.Add(s.PointsReused)
	}
	if s.ClustersReused != 0 {
		c.clustersReused.Add(s.ClustersReused)
	}
	if s.ClustersDestroyed != 0 {
		c.clustersDestroyed.Add(s.ClustersDestroyed)
	}
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	c.neighborSearches.Store(0)
	c.candidatesExamined.Store(0)
	c.neighborsFound.Store(0)
	c.nodesVisited.Store(0)
	c.pointsReused.Store(0)
	c.clustersReused.Store(0)
	c.clustersDestroyed.Store(0)
}

// Local is a plain, non-atomic accumulator owned by one worker goroutine.
// Workers on hot paths (one ε-search per point) add to their Local with
// ordinary arithmetic and flush the batch into the shared Counters once per
// work chunk, replacing four contended atomic RMWs per search with four per
// chunk. The zero value is ready to use.
type Local struct {
	NeighborSearches   int64
	CandidatesExamined int64
	NeighborsFound     int64
	NodesVisited       int64
	PointsReused       int64
	ClustersReused     int64
	ClustersDestroyed  int64
}

// FlushTo adds the accumulated values to c and resets l. Flushing to a nil
// Counters only resets l, so instrumentation stays optional end to end.
func (l *Local) FlushTo(c *Counters) {
	if c != nil {
		if l.NeighborSearches != 0 {
			c.neighborSearches.Add(l.NeighborSearches)
		}
		if l.CandidatesExamined != 0 {
			c.candidatesExamined.Add(l.CandidatesExamined)
		}
		if l.NeighborsFound != 0 {
			c.neighborsFound.Add(l.NeighborsFound)
		}
		if l.NodesVisited != 0 {
			c.nodesVisited.Add(l.NodesVisited)
		}
		if l.PointsReused != 0 {
			c.pointsReused.Add(l.PointsReused)
		}
		if l.ClustersReused != 0 {
			c.clustersReused.Add(l.ClustersReused)
		}
		if l.ClustersDestroyed != 0 {
			c.clustersDestroyed.Add(l.ClustersDestroyed)
		}
	}
	*l = Local{}
}

// Sub returns the element-wise difference s - o; used to attribute work to
// one phase by snapshotting before and after.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		NeighborSearches:   s.NeighborSearches - o.NeighborSearches,
		CandidatesExamined: s.CandidatesExamined - o.CandidatesExamined,
		NeighborsFound:     s.NeighborsFound - o.NeighborsFound,
		NodesVisited:       s.NodesVisited - o.NodesVisited,
		PointsReused:       s.PointsReused - o.PointsReused,
		ClustersReused:     s.ClustersReused - o.ClustersReused,
		ClustersDestroyed:  s.ClustersDestroyed - o.ClustersDestroyed,
	}
}

// Add returns the element-wise sum s + o.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		NeighborSearches:   s.NeighborSearches + o.NeighborSearches,
		CandidatesExamined: s.CandidatesExamined + o.CandidatesExamined,
		NeighborsFound:     s.NeighborsFound + o.NeighborsFound,
		NodesVisited:       s.NodesVisited + o.NodesVisited,
		PointsReused:       s.PointsReused + o.PointsReused,
		ClustersReused:     s.ClustersReused + o.ClustersReused,
		ClustersDestroyed:  s.ClustersDestroyed + o.ClustersDestroyed,
	}
}

// String implements fmt.Stringer.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"searches=%d candidates=%d neighbors=%d nodes=%d reusedPts=%d reusedClus=%d destroyed=%d",
		s.NeighborSearches, s.CandidatesExamined, s.NeighborsFound, s.NodesVisited,
		s.PointsReused, s.ClustersReused, s.ClustersDestroyed)
}
