package metrics

import (
	"sync"
	"testing"
)

// BenchmarkCountersNilAdd verifies the documented guarantee that increments
// on a nil *Counters cost only an inlined nil check.
func BenchmarkCountersNilAdd(b *testing.B) {
	var c *Counters
	for i := 0; i < b.N; i++ {
		c.AddNeighborSearches(1)
		c.AddCandidatesExamined(64)
		c.AddNodesVisited(3)
		c.AddNeighborsFound(12)
	}
}

// BenchmarkCountersContention contrasts the two instrumentation styles on a
// simulated ε-search hot path (4 counter updates per search) with every
// worker sharing one Counters: per-call atomic RMWs versus a per-worker
// Local flushed once per 256-search chunk. The batched variant is the one
// dbscan.RunParallel uses.
func BenchmarkCountersContention(b *testing.B) {
	const chunk = 256
	workers := 8
	run := func(b *testing.B, search func(c *Counters, l *Local, i int)) {
		var c Counters
		var wg sync.WaitGroup
		per := b.N/workers + 1
		b.ResetTimer()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var l Local
				for i := 0; i < per; i++ {
					search(&c, &l, i)
					if i%chunk == chunk-1 {
						l.FlushTo(&c)
					}
				}
				l.FlushTo(&c)
			}()
		}
		wg.Wait()
	}
	b.Run("atomic-per-call", func(b *testing.B) {
		run(b, func(c *Counters, _ *Local, _ int) {
			c.AddNeighborSearches(1)
			c.AddCandidatesExamined(64)
			c.AddNodesVisited(3)
			c.AddNeighborsFound(12)
		})
	})
	b.Run("local-batched", func(b *testing.B) {
		run(b, func(_ *Counters, l *Local, _ int) {
			l.NeighborSearches++
			l.CandidatesExamined += 64
			l.NodesVisited += 3
			l.NeighborsFound += 12
		})
	})
}
