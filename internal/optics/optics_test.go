package optics

import (
	"container/heap"
	"math/rand"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

func blobs(k, m, noise int, extent, sigma float64, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, k*m+noise)
	for c := 0; c < k; c++ {
		cx, cy := rnd.Float64()*extent, rnd.Float64()*extent
		for i := 0; i < m; i++ {
			pts = append(pts, geom.Point{
				X: cx + rnd.NormFloat64()*sigma,
				Y: cy + rnd.NormFloat64()*sigma,
			})
		}
	}
	for i := 0; i < noise; i++ {
		pts = append(pts, geom.Point{X: rnd.Float64() * extent, Y: rnd.Float64() * extent})
	}
	return pts
}

func TestRunValidation(t *testing.T) {
	ix := dbscan.BuildIndex(blobs(1, 20, 0, 10, 0.5, 1), dbscan.IndexOptions{})
	if _, err := Run(ix, 0, 4, nil); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := Run(ix, 1, 0, nil); err == nil {
		t.Error("minpts=0 accepted")
	}
}

func TestOrderingCoversAllPointsOnce(t *testing.T) {
	pts := blobs(3, 100, 50, 20, 0.5, 2)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 8})
	ord, err := Run(ix, 2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ord.Entries) != len(pts) {
		t.Fatalf("ordering covers %d of %d", len(ord.Entries), len(pts))
	}
	seen := make([]bool, len(pts))
	for _, e := range ord.Entries {
		if seen[e.Point] {
			t.Fatalf("point %d appears twice", e.Point)
		}
		seen[e.Point] = true
	}
}

func TestCoreDistProperties(t *testing.T) {
	pts := blobs(2, 150, 30, 15, 0.4, 3)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 8})
	ord, _ := Run(ix, 1.5, 4, nil)
	for _, e := range ord.Entries {
		if e.CoreDist != Undefined && e.CoreDist > 1.5 {
			t.Fatalf("core distance %g exceeds delta", e.CoreDist)
		}
		if e.Reachability != Undefined && e.CoreDist != Undefined &&
			e.Reachability < 0 {
			t.Fatalf("negative reachability")
		}
	}
}

func TestExtractRejectsLargeEps(t *testing.T) {
	ix := dbscan.BuildIndex(blobs(1, 50, 0, 10, 0.5, 4), dbscan.IndexOptions{})
	ord, _ := Run(ix, 1, 4, nil)
	if _, err := ord.ExtractDBSCAN(2); err == nil {
		t.Error("eps > delta accepted")
	}
}

func TestExtractMatchesDBSCANAcrossEps(t *testing.T) {
	// The core promise: one OPTICS run at delta reproduces DBSCAN for every
	// eps <= delta (up to border-point ties).
	pts := blobs(4, 150, 100, 25, 0.5, 5)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 16})
	const minPts = 4
	ord, err := Run(ix, 2.0, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.3, 0.5, 0.8, 1.2, 2.0} {
		got, err := ord.ExtractDBSCAN(eps)
		if err != nil {
			t.Fatal(err)
		}
		want, err := dbscan.Run(ix, dbscan.Params{Eps: eps, MinPts: minPts}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumClusters != want.NumClusters {
			t.Errorf("eps=%g: OPTICS %d clusters vs DBSCAN %d",
				eps, got.NumClusters, want.NumClusters)
		}
		if d := cluster.DisagreementCount(got, want); d > len(pts)/100 {
			t.Errorf("eps=%g: disagreements = %d", eps, d)
		}
	}
}

func TestAllNoise(t *testing.T) {
	pts := make([]geom.Point, 10)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 100, Y: 0}
	}
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{})
	ord, _ := Run(ix, 1, 3, nil)
	res, _ := ord.ExtractDBSCAN(1)
	if res.NumClusters != 0 || res.NumNoise() != 10 {
		t.Errorf("all-noise extract: %v", res)
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := dbscan.BuildIndex(nil, dbscan.IndexOptions{})
	ord, err := Run(ix, 1, 4, nil)
	if err != nil || len(ord.Entries) != 0 {
		t.Fatalf("empty: %v %v", ord, err)
	}
	res, err := ord.ExtractDBSCAN(1)
	if err != nil || res.Len() != 0 {
		t.Fatalf("empty extract: %v %v", res, err)
	}
}

func TestMetricsCounted(t *testing.T) {
	pts := blobs(2, 100, 20, 15, 0.5, 6)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 8})
	var m metrics.Counters
	if _, err := Run(ix, 1.5, 4, &m); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().NeighborSearches; got != int64(len(pts)) {
		t.Errorf("searches = %d, want %d (one per point)", got, len(pts))
	}
}

func TestSeedQueueOrdering(t *testing.T) {
	// Reachability-ordered pops with decrease-key.
	q := &seedQueue{pos: make([]int, 5)}
	for i := range q.pos {
		q.pos[i] = -1
	}
	for _, it := range []seedItem{{point: 0, reach: 5}, {point: 1, reach: 3}, {point: 2, reach: 4}} {
		heap.Push(q, it)
	}
	q.decrease(0, 1)
	var order []int32
	for q.Len() > 0 {
		order = append(order, heap.Pop(q).(seedItem).point)
	}
	want := []int32{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", order, want)
		}
	}
	// decrease on an absent point must be a no-op.
	q.decrease(4, 0)
}
