// Package optics implements OPTICS (Ankerst, Breunig, Kriegel, Sander;
// SIGMOD 1999) — the related-work alternative the paper discusses in §III:
// given a maximum radius δ and a fixed minpts, OPTICS produces a cluster
// ordering from which a DBSCAN-equivalent clustering can be extracted for
// any ε ≤ δ.
//
// The paper's point stands: OPTICS covers an ε-sweep at ONE minpts, whereas
// VariantDBSCAN handles arbitrary (ε, minpts) sets. This package exists as
// the comparison baseline for ε-only variant sets (see the ablation
// benchmarks) and to cross-validate the DBSCAN implementation.
package optics

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/metrics"
)

// Undefined marks an undefined reachability or core distance.
var Undefined = math.Inf(1)

// Entry is one element of the cluster ordering.
type Entry struct {
	// Point is the point index (in the index's sorted space).
	Point int32
	// Reachability is the reachability distance at ordering time
	// (Undefined for the first point of each connected component).
	Reachability float64
	// CoreDist is the point's core distance (Undefined when the point has
	// fewer than minpts neighbors within δ).
	CoreDist float64
}

// Ordering is the OPTICS output: a permutation of all points with
// reachability information, valid for extracting clusterings at any ε ≤ δ.
type Ordering struct {
	Entries []Entry
	Delta   float64
	MinPts  int
}

// Run computes the cluster ordering for the index under (δ, minpts).
// m may be nil.
func Run(ix *dbscan.Index, delta float64, minPts int, m *metrics.Counters) (*Ordering, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("optics: delta must be > 0, got %g", delta)
	}
	if minPts < 1 {
		return nil, fmt.Errorf("optics: minpts must be >= 1, got %d", minPts)
	}
	n := ix.Len()
	ord := &Ordering{Entries: make([]Entry, 0, n), Delta: delta, MinPts: minPts}
	processed := make([]bool, n)
	reach := make([]float64, n)
	for i := range reach {
		reach[i] = Undefined
	}

	var scratch []int32
	var dists []float64
	// coreDistOf computes the core distance from a freshly fetched
	// neighborhood (distance to the minpts-th nearest neighbor, counting
	// the point itself per the original definition's ε-neighborhood).
	coreDistOf := func(p int32, neigh []int32) float64 {
		if len(neigh) < minPts {
			return Undefined
		}
		dists = dists[:0]
		for _, q := range neigh {
			dists = append(dists, ix.Pts[p].Dist(ix.Pts[q]))
		}
		sort.Float64s(dists)
		return dists[minPts-1]
	}

	pq := &seedQueue{pos: make([]int, n)}
	for i := range pq.pos {
		pq.pos[i] = -1
	}

	update := func(center int32, coreDist float64, neigh []int32) {
		for _, o := range neigh {
			if processed[o] {
				continue
			}
			d := ix.Pts[center].Dist(ix.Pts[o])
			newReach := coreDist
			if d > newReach {
				newReach = d
			}
			if pq.pos[o] == -1 {
				reach[o] = newReach
				heap.Push(pq, seedItem{point: o, reach: newReach})
			} else if newReach < reach[o] {
				reach[o] = newReach
				pq.decrease(o, newReach)
			}
		}
	}

	for i := 0; i < n; i++ {
		if processed[int32(i)] {
			continue
		}
		p := int32(i)
		scratch = ix.NeighborSearch(ix.Pts[p], delta, m, scratch[:0])
		processed[p] = true
		cd := coreDistOf(p, scratch)
		ord.Entries = append(ord.Entries, Entry{Point: p, Reachability: Undefined, CoreDist: cd})
		if cd == Undefined {
			continue
		}
		update(p, cd, scratch)
		for pq.Len() > 0 {
			item := heap.Pop(pq).(seedItem)
			q := item.point
			if processed[q] {
				continue
			}
			scratch = ix.NeighborSearch(ix.Pts[q], delta, m, scratch[:0])
			processed[q] = true
			cdq := coreDistOf(q, scratch)
			ord.Entries = append(ord.Entries, Entry{Point: q, Reachability: reach[q], CoreDist: cdq})
			if cdq != Undefined {
				update(q, cdq, scratch)
			}
		}
	}
	return ord, nil
}

// ExtractDBSCAN derives the DBSCAN-equivalent clustering at ε (≤ δ) from
// the ordering, per the extraction procedure in the OPTICS paper. Labels
// are in the same index space as the ordering.
func (o *Ordering) ExtractDBSCAN(eps float64) (*cluster.Result, error) {
	if eps > o.Delta {
		return nil, fmt.Errorf("optics: extraction eps %g exceeds ordering delta %g", eps, o.Delta)
	}
	res := cluster.NewResult(len(o.Entries))
	var cid int32
	for _, e := range o.Entries {
		if e.Reachability > eps {
			if e.CoreDist <= eps {
				cid++
				res.Labels[e.Point] = cid
			} else {
				res.Labels[e.Point] = cluster.Noise
			}
		} else if cid > 0 {
			res.Labels[e.Point] = cid
		} else {
			res.Labels[e.Point] = cluster.Noise
		}
	}
	res.NumClusters = int(cid)
	return res, nil
}

// seedItem is a priority-queue element ordered by reachability.
type seedItem struct {
	point int32
	reach float64
}

// seedQueue is a binary heap with decrease-key support via a position map.
type seedQueue struct {
	items []seedItem
	pos   []int // pos[point] = heap index, -1 when absent
}

func (q *seedQueue) Len() int { return len(q.items) }
func (q *seedQueue) Less(a, b int) bool {
	if q.items[a].reach != q.items[b].reach {
		return q.items[a].reach < q.items[b].reach
	}
	return q.items[a].point < q.items[b].point // deterministic tie-break
}
func (q *seedQueue) Swap(a, b int) {
	q.items[a], q.items[b] = q.items[b], q.items[a]
	q.pos[q.items[a].point] = a
	q.pos[q.items[b].point] = b
}
func (q *seedQueue) Push(x any) {
	item := x.(seedItem)
	q.pos[item.point] = len(q.items)
	q.items = append(q.items, item)
}
func (q *seedQueue) Pop() any {
	item := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	q.pos[item.point] = -1
	return item
}

// decrease lowers a queued point's reachability and restores heap order.
func (q *seedQueue) decrease(point int32, reach float64) {
	i := q.pos[point]
	if i < 0 {
		return
	}
	q.items[i].reach = reach
	heap.Fix(q, i)
}
