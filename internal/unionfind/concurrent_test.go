package unionfind

import (
	"math/rand"
	"sync"
	"testing"
)

func TestConcurrentDSUSequentialAgreesWithDSU(t *testing.T) {
	const n = 500
	rnd := rand.New(rand.NewSource(7))
	ref := NewDSU(n)
	got := NewConcurrent(n)
	for e := 0; e < 2000; e++ {
		a, b := int32(rnd.Intn(n)), int32(rnd.Intn(n))
		if ref.Union(a, b) != got.Union(a, b) {
			t.Fatalf("edge %d (%d,%d): Union novelty disagrees", e, a, b)
		}
	}
	for i := int32(0); i < n; i++ {
		for j := int32(0); j < n; j += 7 {
			if ref.Same(i, j) != got.Same(i, j) {
				t.Fatalf("partition disagrees at (%d,%d)", i, j)
			}
		}
	}
}

func TestConcurrentDSURepresentativeIsMin(t *testing.T) {
	d := NewConcurrent(10)
	d.Union(9, 4)
	d.Union(4, 7)
	d.Union(2, 7)
	for _, x := range []int32{2, 4, 7, 9} {
		if r := d.Find(x); r != 2 {
			t.Errorf("Find(%d) = %d, want min member 2", x, r)
		}
	}
	if d.Find(3) != 3 {
		t.Error("singleton moved")
	}
}

// TestConcurrentDSUHammer unions a fixed edge set from many goroutines and
// checks the final partition against a sequential DSU over the same edges.
// Run under -race this exercises the lock-free Find/Union paths.
func TestConcurrentDSUHammer(t *testing.T) {
	const n = 4000
	const workers = 8
	rnd := rand.New(rand.NewSource(42))
	type edge struct{ a, b int32 }
	edges := make([]edge, 20000)
	for i := range edges {
		edges[i] = edge{int32(rnd.Intn(n)), int32(rnd.Intn(n))}
	}

	got := NewConcurrent(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(edges); i += workers {
				got.Union(edges[i].a, edges[i].b)
				got.Find(edges[i].b) // interleave reads
			}
		}(w)
	}
	wg.Wait()

	ref := NewDSU(n)
	for _, e := range edges {
		ref.Union(e.a, e.b)
	}
	// Same partition: the root maps must be a bijection in both directions
	// (ref→got catches splits, got→ref catches spurious merges).
	refToGot := make(map[int32]int32)
	gotToRef := make(map[int32]int32)
	for i := int32(0); i < n; i++ {
		rr, gr := ref.Find(i), got.Find(i)
		if want, ok := refToGot[rr]; ok && gr != want {
			t.Fatalf("element %d: concurrent root %d, want %d (set split)", i, gr, want)
		}
		refToGot[rr] = gr
		if want, ok := gotToRef[gr]; ok && rr != want {
			t.Fatalf("element %d: sequential root %d, want %d (sets merged)", i, rr, want)
		}
		gotToRef[gr] = rr
	}
}
