package unionfind

import (
	"testing"
	"testing/quick"
)

func TestDSUBasics(t *testing.T) {
	d := NewDSU(5)
	for i := int32(0); i < 5; i++ {
		if d.Find(i) != i {
			t.Fatalf("singleton %d has root %d", i, d.Find(i))
		}
	}
	if !d.Union(0, 1) {
		t.Error("first union should merge")
	}
	if d.Union(0, 1) {
		t.Error("second union should be a no-op")
	}
	if !d.Same(0, 1) {
		t.Error("0 and 1 should be joined")
	}
	if d.Same(0, 2) {
		t.Error("0 and 2 should be separate")
	}
	d.Union(1, 2)
	if !d.Same(0, 2) {
		t.Error("transitive union failed")
	}
}

func TestDSUUnionIsEquivalenceRelation(t *testing.T) {
	f := func(ops [][2]uint8) bool {
		d := NewDSU(16)
		for _, op := range ops {
			d.Union(int32(op[0]%16), int32(op[1]%16))
		}
		// Reflexive, symmetric, and root-consistent.
		for i := int32(0); i < 16; i++ {
			if !d.Same(i, i) {
				return false
			}
			for j := int32(0); j < 16; j++ {
				if d.Same(i, j) != d.Same(j, i) {
					return false
				}
				if d.Same(i, j) && d.Find(i) != d.Find(j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
