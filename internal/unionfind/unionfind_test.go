package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
)

func blobs(k, m, noise int, extent, sigma float64, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, k*m+noise)
	for c := 0; c < k; c++ {
		cx, cy := rnd.Float64()*extent, rnd.Float64()*extent
		for i := 0; i < m; i++ {
			pts = append(pts, geom.Point{
				X: cx + rnd.NormFloat64()*sigma,
				Y: cy + rnd.NormFloat64()*sigma,
			})
		}
	}
	for i := 0; i < noise; i++ {
		pts = append(pts, geom.Point{X: rnd.Float64() * extent, Y: rnd.Float64() * extent})
	}
	return pts
}

func TestDSUBasics(t *testing.T) {
	d := NewDSU(5)
	for i := int32(0); i < 5; i++ {
		if d.Find(i) != i {
			t.Fatalf("singleton %d has root %d", i, d.Find(i))
		}
	}
	if !d.Union(0, 1) {
		t.Error("first union should merge")
	}
	if d.Union(0, 1) {
		t.Error("second union should be a no-op")
	}
	if !d.Same(0, 1) {
		t.Error("0 and 1 should be joined")
	}
	if d.Same(0, 2) {
		t.Error("0 and 2 should be separate")
	}
	d.Union(1, 2)
	if !d.Same(0, 2) {
		t.Error("transitive union failed")
	}
}

func TestDSUUnionIsEquivalenceRelation(t *testing.T) {
	f := func(ops [][2]uint8) bool {
		d := NewDSU(16)
		for _, op := range ops {
			d.Union(int32(op[0]%16), int32(op[1]%16))
		}
		// Reflexive, symmetric, and root-consistent.
		for i := int32(0); i < 16; i++ {
			if !d.Same(i, i) {
				return false
			}
			for j := int32(0); j < 16; j++ {
				if d.Same(i, j) != d.Same(j, i) {
					return false
				}
				if d.Same(i, j) && d.Find(i) != d.Find(j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRunValidation(t *testing.T) {
	ix := dbscan.BuildIndex(blobs(1, 20, 0, 10, 0.5, 1), dbscan.IndexOptions{})
	if _, err := Run(ix, dbscan.Params{Eps: 0, MinPts: 4}, nil); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestRunMatchesExpansionDBSCAN(t *testing.T) {
	for _, tc := range []struct {
		name string
		pts  []geom.Point
		p    dbscan.Params
	}{
		{"blobs", blobs(4, 150, 100, 25, 0.6, 2), dbscan.Params{Eps: 0.7, MinPts: 4}},
		{"dense", blobs(2, 300, 30, 15, 0.4, 3), dbscan.Params{Eps: 0.4, MinPts: 8}},
		{"sparse-noise", blobs(0, 0, 400, 20, 1, 4), dbscan.Params{Eps: 1.5, MinPts: 4}},
		{"high-minpts", blobs(3, 200, 0, 25, 0.6, 5), dbscan.Params{Eps: 0.8, MinPts: 32}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix := dbscan.BuildIndex(tc.pts, dbscan.IndexOptions{R: 16})
			got, err := Run(ix, tc.p, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := dbscan.Run(ix, tc.p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.NumClusters != want.NumClusters {
				t.Errorf("clusters: unionfind %d vs expansion %d", got.NumClusters, want.NumClusters)
			}
			// Core structure identical; only border ties may differ.
			if d := cluster.DisagreementCount(got, want); d > len(tc.pts)/100 {
				t.Errorf("disagreements = %d", d)
			}
		})
	}
}

func TestRunEveryPointLabeled(t *testing.T) {
	pts := blobs(3, 100, 100, 20, 0.6, 6)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 8})
	res, err := Run(ix, dbscan.Params{Eps: 0.7, MinPts: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Labels {
		if l == cluster.Unclassified {
			t.Fatalf("point %d unclassified", i)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	ix := dbscan.BuildIndex(nil, dbscan.IndexOptions{})
	res, err := Run(ix, dbscan.Params{Eps: 1, MinPts: 4}, nil)
	if err != nil || res.Len() != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
}

func TestRunCoreInvariantToOrder(t *testing.T) {
	// The disjoint-set formulation is order-insensitive on core points:
	// reversing the input must give the same partition of core points.
	pts := blobs(3, 150, 80, 20, 0.6, 7)
	p := dbscan.Params{Eps: 0.7, MinPts: 4}
	ixA := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 8})
	a, _ := Run(ixA, p, nil)
	aOrig := a.Remap(ixA.Fwd)

	rev := make([]geom.Point, len(pts))
	for i, pt := range pts {
		rev[len(pts)-1-i] = pt
	}
	ixB := dbscan.BuildIndex(rev, dbscan.IndexOptions{R: 8})
	b, _ := Run(ixB, p, nil)
	bRev := b.Remap(ixB.Fwd)
	// Un-reverse to original order.
	bOrig := cluster.NewResult(len(pts))
	bOrig.NumClusters = bRev.NumClusters
	for i := range pts {
		bOrig.Labels[i] = bRev.Labels[len(pts)-1-i]
	}
	if aOrig.NumClusters != bOrig.NumClusters {
		t.Fatalf("cluster count depends on order: %d vs %d", aOrig.NumClusters, bOrig.NumClusters)
	}
	if d := cluster.DisagreementCount(aOrig, bOrig); d > len(pts)/100 {
		t.Errorf("order-dependence beyond border ties: %d", d)
	}
}
