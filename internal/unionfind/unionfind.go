// Package unionfind provides disjoint-set union structures: the sequential
// DSU of the Patwary et al. (SC 2012) DBSCAN formulation — the paper's
// reference [14] — and a lock-free ConcurrentDSU for parallel cluster
// merging. The package is deliberately dependency-free so both the
// clustering hot paths (internal/dbscan) and the incremental maintenance
// layer (internal/incremental) can build on it; the disjoint-set DBSCAN
// baseline itself lives in internal/dbscan as RunDisjointSet.
package unionfind

// DSU is a disjoint-set union structure with union by rank and path
// compression, exported for reuse in tests and future distributed merges.
type DSU struct {
	parent []int32
	rank   []uint8
}

// NewDSU returns a structure over n singleton sets.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int32, n), rank: make([]uint8, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Find returns the representative of x's set, compressing the path.
func (d *DSU) Find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets containing a and b; it returns true when they were
// previously distinct.
func (d *DSU) Union(a, b int32) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	return true
}

// Same reports whether a and b are in one set.
func (d *DSU) Same(a, b int32) bool { return d.Find(a) == d.Find(b) }
