// Package unionfind implements DBSCAN via the disjoint-set formulation of
// Patwary et al. (SC 2012, the paper's reference [14]): instead of
// breadth-first cluster expansion, core points are unioned with their
// in-ε core neighbors, and border points attach to one neighboring core
// point's set. This baseline is order-insensitive for core points, which
// makes it a useful oracle for the expansion-based implementations, and it
// is the classical substrate for distributed-memory DBSCAN.
package unionfind

import (
	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/metrics"
)

// DSU is a disjoint-set union structure with union by rank and path
// compression, exported for reuse in tests and future distributed merges.
type DSU struct {
	parent []int32
	rank   []uint8
}

// NewDSU returns a structure over n singleton sets.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int32, n), rank: make([]uint8, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Find returns the representative of x's set, compressing the path.
func (d *DSU) Find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets containing a and b; it returns true when they were
// previously distinct.
func (d *DSU) Union(a, b int32) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	return true
}

// Same reports whether a and b are in one set.
func (d *DSU) Same(a, b int32) bool { return d.Find(a) == d.Find(b) }

// Run clusters the index under p using the disjoint-set formulation.
// m may be nil. Labels are in the index's sorted space.
//
// Core-point cluster structure is identical to expansion-based DBSCAN;
// border points reachable from several clusters attach to the one whose
// core point is scanned first (the same ambiguity every DBSCAN has).
func Run(ix *dbscan.Index, p dbscan.Params, m *metrics.Counters) (*cluster.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := ix.Len()
	res := cluster.NewResult(n)
	core := make([]bool, n)
	neighborhoods := make([][]int32, n)

	// Pass 1: one ε-search per point determines core status. Neighborhoods
	// of core points are retained for the union pass.
	var scratch []int32
	for i := 0; i < n; i++ {
		scratch = ix.NeighborSearch(ix.Pts[i], p.Eps, m, scratch[:0])
		if len(scratch) >= p.MinPts {
			core[i] = true
			neighborhoods[i] = append([]int32(nil), scratch...)
		}
	}

	// Pass 2: union every core point with its core neighbors.
	dsu := NewDSU(n)
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		for _, j := range neighborhoods[i] {
			if core[j] {
				dsu.Union(int32(i), j)
			}
		}
	}

	// Pass 3: label core sets with cluster IDs.
	ids := map[int32]int32{}
	var cid int32
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		root := dsu.Find(int32(i))
		id, ok := ids[root]
		if !ok {
			cid++
			id = cid
			ids[root] = id
		}
		res.Labels[i] = id
	}

	// Pass 4: attach border points to the first scanning core neighbor;
	// everything else is noise.
	for i := 0; i < n; i++ {
		if !core[i] {
			res.Labels[i] = cluster.Noise
		}
	}
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		for _, j := range neighborhoods[i] {
			if res.Labels[j] == cluster.Noise {
				res.Labels[j] = res.Labels[i]
			}
		}
	}
	res.NumClusters = int(cid)
	return res, nil
}
