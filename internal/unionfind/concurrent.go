package unionfind

import "sync/atomic"

// ConcurrentDSU is a lock-free disjoint-set union safe for concurrent
// Find/Union from any number of goroutines, in the style of the wait-free
// structures used by theoretically-efficient parallel DBSCAN (Wang, Gu &
// Shun, 2020) and Jayanti & Tarjan's randomized concurrent union-find.
//
// Linking is by index: the root with the larger index is always attached
// under the root with the smaller index via a single CAS, so parent chains
// strictly decrease and can never form a cycle, regardless of interleaving.
// Find performs lock-free path halving. Without ranks the worst-case chain
// is linear in theory, but halving keeps observed chains short; for the
// ε-graph unions of parallel DBSCAN the structure is far from adversarial.
//
// A useful by-product of index-ordered linking: after all unions complete,
// every set's representative is its minimum member index, which lets the
// labeling pass number clusters deterministically (by smallest core point)
// without a separate reduction.
type ConcurrentDSU struct {
	parent []atomic.Int32
}

// NewConcurrent returns a concurrent DSU over n singleton sets.
func NewConcurrent(n int) *ConcurrentDSU {
	d := &ConcurrentDSU{parent: make([]atomic.Int32, n)}
	for i := range d.parent {
		d.parent[i].Store(int32(i))
	}
	return d
}

// Len returns the number of elements.
func (d *ConcurrentDSU) Len() int { return len(d.parent) }

// Find returns the current representative of x's set, halving the path as
// it walks. Concurrent unions may change the representative; once all
// unions have happened-before the call, the result is stable and equals
// the set's minimum element.
func (d *ConcurrentDSU) Find(x int32) int32 {
	for {
		p := d.parent[x].Load()
		if p == x {
			return x
		}
		gp := d.parent[p].Load()
		if gp != p {
			// Path halving: x -> grandparent. A lost CAS only means
			// someone else already shortened this link.
			d.parent[x].CompareAndSwap(p, gp)
		}
		x = p
	}
}

// Union merges the sets containing a and b, returning true when they were
// distinct at linearization. Safe to call concurrently with other Union
// and Find calls.
func (d *ConcurrentDSU) Union(a, b int32) bool {
	for {
		ra, rb := d.Find(a), d.Find(b)
		if ra == rb {
			return false
		}
		if ra < rb {
			ra, rb = rb, ra
		}
		// Attach the larger-index root under the smaller. The CAS fails if
		// ra stopped being a root in the meantime; re-resolve and retry.
		if d.parent[ra].CompareAndSwap(ra, rb) {
			return true
		}
	}
}

// Same reports whether a and b are currently in one set.
func (d *ConcurrentDSU) Same(a, b int32) bool { return d.Find(a) == d.Find(b) }
