// Package grid implements the spatial binning sort the paper applies before
// indexing (§IV-A): "Before indexing, we sort the points p_i ∈ D into bins in
// the x and y dimensions of unit width."
//
// The sort makes consecutive points spatially coherent, so that packing runs
// of r points into one R-tree leaf MBB (see internal/rtree) produces compact
// boxes with little dead space. The bin width is configurable (the paper uses
// unit width for degree-scaled TEC data; other units may need other widths).
package grid

import (
	"math"
	"sort"

	"vdbscan/internal/geom"
)

// BinKey identifies the (column, row) cell a point falls into.
type BinKey struct {
	Col, Row int
}

// Keyer assigns points to cells of width×height bins anchored at the
// dataset's minimum corner.
type Keyer struct {
	originX, originY float64
	width, height    float64
}

// NewKeyer builds a Keyer over the bounding box of pts with square bins of
// side binWidth. binWidth must be > 0.
func NewKeyer(pts []geom.Point, binWidth float64) Keyer {
	if binWidth <= 0 {
		panic("grid: binWidth must be positive")
	}
	b := geom.MBBOfPoints(pts)
	if b.IsEmpty() {
		return Keyer{width: binWidth, height: binWidth}
	}
	return Keyer{originX: b.MinX, originY: b.MinY, width: binWidth, height: binWidth}
}

// Key returns the bin that p falls into.
func (k Keyer) Key(p geom.Point) BinKey {
	return BinKey{
		Col: int(math.Floor((p.X - k.originX) / k.width)),
		Row: int(math.Floor((p.Y - k.originY) / k.height)),
	}
}

// SortOrder returns a permutation of point indices ordered by bin
// (row-major: row, then column) and, within a bin, by (y, x). Applying the
// permutation yields the spatially coherent ordering the R-tree bulk loader
// consumes. The input slice is not modified.
func SortOrder(pts []geom.Point, binWidth float64) []int {
	k := NewKeyer(pts, binWidth)
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	keys := make([]BinKey, len(pts))
	for i, p := range pts {
		keys[i] = k.Key(p)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		if ka.Row != kb.Row {
			return ka.Row < kb.Row
		}
		if ka.Col != kb.Col {
			return ka.Col < kb.Col
		}
		pa, pb := pts[order[a]], pts[order[b]]
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return pa.X < pb.X
	})
	return order
}

// Apply permutes pts by order (out-of-place) and returns the reordered copy
// together with fwd, where fwd[newIndex] = originalIndex.
func Apply(pts []geom.Point, order []int) (sorted []geom.Point, fwd []int) {
	sorted = make([]geom.Point, len(pts))
	fwd = make([]int, len(pts))
	for newIdx, origIdx := range order {
		sorted[newIdx] = pts[origIdx]
		fwd[newIdx] = origIdx
	}
	return sorted, fwd
}

// Sort is the convenience composition of SortOrder and Apply.
func Sort(pts []geom.Point, binWidth float64) (sorted []geom.Point, fwd []int) {
	return Apply(pts, SortOrder(pts, binWidth))
}
