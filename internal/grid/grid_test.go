package grid

import (
	"math/rand"
	"testing"

	"vdbscan/internal/geom"
)

func TestKeyer(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 3.5, Y: 2.2}, {X: 0.99, Y: 0.99}}
	k := NewKeyer(pts, 1)
	if got := k.Key(geom.Point{X: 0, Y: 0}); got != (BinKey{0, 0}) {
		t.Errorf("Key(0,0) = %v", got)
	}
	if got := k.Key(geom.Point{X: 0.99, Y: 0.99}); got != (BinKey{0, 0}) {
		t.Errorf("Key(0.99,0.99) = %v, want {0 0}", got)
	}
	if got := k.Key(geom.Point{X: 3.5, Y: 2.2}); got != (BinKey{3, 2}) {
		t.Errorf("Key(3.5,2.2) = %v, want {3 2}", got)
	}
	// Points below the origin of the box never occur for in-dataset points,
	// but the keyer must still be total.
	if got := k.Key(geom.Point{X: -0.5, Y: -0.5}); got != (BinKey{-1, -1}) {
		t.Errorf("Key(-0.5,-0.5) = %v, want {-1 -1}", got)
	}
}

func TestKeyerBinWidth(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 10}}
	k := NewKeyer(pts, 5)
	if got := k.Key(geom.Point{X: 4.9, Y: 4.9}); got != (BinKey{0, 0}) {
		t.Errorf("width-5 Key(4.9,4.9) = %v", got)
	}
	if got := k.Key(geom.Point{X: 5, Y: 9.9}); got != (BinKey{1, 1}) {
		t.Errorf("width-5 Key(5,9.9) = %v", got)
	}
}

func TestKeyerPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for binWidth <= 0")
		}
	}()
	NewKeyer(nil, 0)
}

func TestSortOrderIsPermutation(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Point{X: rnd.Float64() * 50, Y: rnd.Float64() * 50}
	}
	order := SortOrder(pts, 1)
	seen := make([]bool, len(pts))
	for _, idx := range order {
		if idx < 0 || idx >= len(pts) || seen[idx] {
			t.Fatalf("order is not a permutation: index %d", idx)
		}
		seen[idx] = true
	}
}

func TestSortOrderRowMajor(t *testing.T) {
	pts := []geom.Point{
		{X: 5.5, Y: 5.5}, // bin (5,5)
		{X: 0.5, Y: 0.5}, // bin (0,0)
		{X: 5.5, Y: 0.5}, // bin (5,0)
		{X: 0.5, Y: 5.5}, // bin (0,5)
	}
	order := SortOrder(pts, 1)
	want := []int{1, 2, 3, 0} // rows ascend, then cols
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSortPreservesMultiset(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Point{X: rnd.Float64() * 10, Y: rnd.Float64() * 10}
	}
	sorted, fwd := Sort(pts, 1)
	if len(sorted) != len(pts) || len(fwd) != len(pts) {
		t.Fatal("length mismatch")
	}
	for newIdx, origIdx := range fwd {
		if sorted[newIdx] != pts[origIdx] {
			t.Fatalf("fwd mapping broken at %d", newIdx)
		}
	}
}

func TestSortSpatialCoherence(t *testing.T) {
	// After sorting, consecutive runs of points should form much tighter
	// MBBs than the unsorted input (that is the entire purpose).
	rnd := rand.New(rand.NewSource(3))
	pts := make([]geom.Point, 4000)
	for i := range pts {
		pts[i] = geom.Point{X: rnd.Float64() * 100, Y: rnd.Float64() * 100}
	}
	const run = 64
	sumArea := func(ps []geom.Point) float64 {
		var total float64
		for i := 0; i+run <= len(ps); i += run {
			total += geom.MBBOfPoints(ps[i : i+run]).Area()
		}
		return total
	}
	sorted, _ := Sort(pts, 1)
	if a, b := sumArea(sorted), sumArea(pts); a >= b {
		t.Errorf("sorted leaf-run area %g should be < unsorted %g", a, b)
	}
}

func TestSortEmptyAndSingle(t *testing.T) {
	if got, _ := Sort(nil, 1); len(got) != 0 {
		t.Error("empty input should produce empty output")
	}
	one := []geom.Point{{X: 3, Y: 4}}
	sorted, fwd := Sort(one, 1)
	if len(sorted) != 1 || sorted[0] != one[0] || fwd[0] != 0 {
		t.Error("single point should pass through")
	}
}

func TestSortDuplicatePoints(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}}
	sorted, fwd := Sort(pts, 1)
	if len(sorted) != 3 {
		t.Fatal("dup points must all survive")
	}
	// Stability: duplicate points keep original relative order.
	for i, f := range fwd {
		if f != i {
			t.Errorf("stable sort expected identity permutation, got %v", fwd)
			break
		}
	}
}
