// Package kdist implements the sorted k-distance heuristic the original
// DBSCAN paper proposes for choosing ε — and which this paper invokes in
// §V-B ("a heuristic [7] for selecting minpts finds 4 to be a good value").
//
// For each point, the distance to its k-th nearest neighbor is computed
// (k = minpts−1 in the classic formulation, because the point itself
// counts toward minpts); the distances sorted in descending order form the
// k-dist graph, whose "valley"/elbow marks the ε separating cluster-interior
// points from noise. SuggestEps locates that elbow as the point of maximum
// distance from the chord connecting the curve's endpoints.
package kdist

import (
	"fmt"
	"math"
	"sort"

	"vdbscan/internal/dbscan"
)

// DefaultMinPts is the paper-endorsed minpts for 2-D data.
const DefaultMinPts = 4

// Curve computes the descending sorted k-dist graph over the index: one
// entry per point holding the distance to its k-th nearest neighbor
// (excluding the point itself). k must be ≥ 1 and the index non-trivial.
func Curve(ix *dbscan.Index, k int) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("kdist: k must be >= 1, got %d", k)
	}
	n := ix.Len()
	if n == 0 {
		return nil, nil
	}
	dists := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// k+1 nearest including self (distance 0 at rank 0).
		nn := ix.THigh.NearestK(ix.Pts[i], k+1)
		if len(nn) < k+1 {
			// Fewer than k other points exist: use the farthest available.
			dists = append(dists, math.Sqrt(nn[len(nn)-1].DistSq))
			continue
		}
		dists = append(dists, math.Sqrt(nn[k].DistSq))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(dists)))
	return dists, nil
}

// Elbow returns the index of the elbow of a descending curve: the point
// with maximum perpendicular distance from the straight line through the
// first and last points. Returns 0 for curves shorter than 3 points.
func Elbow(curve []float64) int {
	n := len(curve)
	if n < 3 {
		return 0
	}
	x1, y1 := 0.0, curve[0]
	x2, y2 := float64(n-1), curve[n-1]
	dx, dy := x2-x1, y2-y1
	norm := math.Hypot(dx, dy)
	if norm == 0 {
		return 0
	}
	best, bestDist := 0, -1.0
	for i := 1; i < n-1; i++ {
		// Perpendicular distance from (i, curve[i]) to the chord.
		d := math.Abs(dy*float64(i)-dx*curve[i]+x2*y1-y2*x1) / norm
		if d > bestDist {
			best, bestDist = i, d
		}
	}
	if bestDist <= 1e-12 {
		return 0 // straight curve: no elbow
	}
	return best
}

// Suggestion is a recommended DBSCAN parameterization.
type Suggestion struct {
	Params dbscan.Params
	// NoiseEstimate is the fraction of points whose k-dist exceeds the
	// suggested ε (they would likely be noise at that setting).
	NoiseEstimate float64
}

// SuggestEps runs the heuristic at the given minpts and returns the ε at
// the k-dist curve's elbow.
func SuggestEps(ix *dbscan.Index, minPts int) (Suggestion, error) {
	if minPts < 2 {
		return Suggestion{}, fmt.Errorf("kdist: minpts must be >= 2, got %d", minPts)
	}
	curve, err := Curve(ix, minPts-1)
	if err != nil {
		return Suggestion{}, err
	}
	if len(curve) == 0 {
		return Suggestion{}, fmt.Errorf("kdist: empty index")
	}
	e := Elbow(curve)
	eps := curve[e]
	if eps <= 0 {
		// Degenerate (duplicate-heavy) data: fall back to the largest
		// nonzero distance, or a tiny positive value.
		for _, d := range curve {
			if d > 0 {
				eps = d
				break
			}
		}
		if eps <= 0 {
			eps = 1e-9
		}
	}
	return Suggestion{
		Params:        dbscan.Params{Eps: eps, MinPts: minPts},
		NoiseEstimate: float64(e) / float64(len(curve)),
	}, nil
}

// SuggestVariants builds a variant set bracketing the heuristic ε: the
// elbow value scaled by factors, crossed with the given minpts values —
// a principled way to generate the V sets VariantDBSCAN consumes.
func SuggestVariants(ix *dbscan.Index, minptsValues []int, epsFactors []float64) ([]dbscan.Params, error) {
	if len(minptsValues) == 0 || len(epsFactors) == 0 {
		return nil, fmt.Errorf("kdist: need at least one minpts and one eps factor")
	}
	base, err := SuggestEps(ix, DefaultMinPts)
	if err != nil {
		return nil, err
	}
	out := make([]dbscan.Params, 0, len(minptsValues)*len(epsFactors))
	for _, f := range epsFactors {
		for _, mp := range minptsValues {
			out = append(out, dbscan.Params{Eps: base.Params.Eps * f, MinPts: mp})
		}
	}
	return out, nil
}
