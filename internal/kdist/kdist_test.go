package kdist

import (
	"math/rand"
	"testing"

	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
)

func blobsAndNoise(seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	var pts []geom.Point
	for c := 0; c < 3; c++ {
		cx, cy := rnd.Float64()*80, rnd.Float64()*80
		for i := 0; i < 300; i++ {
			pts = append(pts, geom.Point{
				X: cx + rnd.NormFloat64()*0.8,
				Y: cy + rnd.NormFloat64()*0.8,
			})
		}
	}
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Point{X: rnd.Float64() * 80, Y: rnd.Float64() * 80})
	}
	return pts
}

func TestCurveProperties(t *testing.T) {
	ix := dbscan.BuildIndex(blobsAndNoise(1), dbscan.IndexOptions{})
	curve, err := Curve(ix, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != ix.Len() {
		t.Fatalf("curve length %d, want %d", len(curve), ix.Len())
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatalf("curve not descending at %d", i)
		}
	}
	for _, d := range curve {
		if d < 0 {
			t.Fatal("negative distance")
		}
	}
}

func TestCurveValidation(t *testing.T) {
	ix := dbscan.BuildIndex(blobsAndNoise(2)[:10], dbscan.IndexOptions{})
	if _, err := Curve(ix, 0); err == nil {
		t.Error("k=0 accepted")
	}
	empty := dbscan.BuildIndex(nil, dbscan.IndexOptions{})
	curve, err := Curve(empty, 3)
	if err != nil || curve != nil {
		t.Errorf("empty index: %v %v", curve, err)
	}
}

func TestCurveTinyDataset(t *testing.T) {
	// Two points, k=5: falls back to the farthest available neighbor.
	ix := dbscan.BuildIndex([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}}, dbscan.IndexOptions{})
	curve, err := Curve(ix, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 || curve[0] != 5 || curve[1] != 5 {
		t.Errorf("tiny curve = %v", curve)
	}
}

func TestElbow(t *testing.T) {
	// A synthetic hockey-stick: flat tail, sharp drop at index 5.
	curve := []float64{10, 9.5, 9, 8.5, 8, 2, 1.8, 1.6, 1.4, 1.2, 1}
	e := Elbow(curve)
	if e < 4 || e > 6 {
		t.Errorf("elbow = %d, want ~5", e)
	}
	// Degenerate curves.
	if Elbow(nil) != 0 || Elbow([]float64{1}) != 0 || Elbow([]float64{1, 2}) != 0 {
		t.Error("short curves should return 0")
	}
	if Elbow([]float64{3, 3, 3}) != 0 {
		t.Error("flat curve should return 0")
	}
}

func TestSuggestEpsSeparatesClustersFromNoise(t *testing.T) {
	pts := blobsAndNoise(3)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{})
	sug, err := SuggestEps(ix, DefaultMinPts)
	if err != nil {
		t.Fatal(err)
	}
	if sug.Params.Eps <= 0 {
		t.Fatalf("eps = %g", sug.Params.Eps)
	}
	if sug.Params.MinPts != DefaultMinPts {
		t.Errorf("minpts = %d", sug.Params.MinPts)
	}
	// Clustering at the suggested parameters must find the 3 blobs and a
	// plausible noise share (between 0 and 40%).
	res, err := dbscan.Run(ix, sug.Params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters < 3 {
		t.Errorf("suggested params found %d clusters, want >= 3", res.NumClusters)
	}
	noiseFrac := float64(res.NumNoise()) / float64(ix.Len())
	if noiseFrac <= 0 || noiseFrac > 0.4 {
		t.Errorf("noise fraction at suggested eps = %g", noiseFrac)
	}
}

func TestSuggestEpsValidation(t *testing.T) {
	ix := dbscan.BuildIndex(blobsAndNoise(4)[:20], dbscan.IndexOptions{})
	if _, err := SuggestEps(ix, 1); err == nil {
		t.Error("minpts=1 accepted")
	}
	empty := dbscan.BuildIndex(nil, dbscan.IndexOptions{})
	if _, err := SuggestEps(empty, 4); err == nil {
		t.Error("empty index accepted")
	}
}

func TestSuggestEpsAllDuplicates(t *testing.T) {
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Point{X: 1, Y: 1}
	}
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{})
	sug, err := SuggestEps(ix, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sug.Params.Eps <= 0 {
		t.Errorf("duplicate data eps = %g, want positive fallback", sug.Params.Eps)
	}
}

func TestSuggestVariants(t *testing.T) {
	ix := dbscan.BuildIndex(blobsAndNoise(5), dbscan.IndexOptions{})
	vs, err := SuggestVariants(ix, []int{4, 8, 16}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 9 {
		t.Fatalf("|V| = %d", len(vs))
	}
	// ε values ascend by factor; each is reusable from the previous under
	// the inclusion criteria when minpts is ordered appropriately.
	if !(vs[0].Eps < vs[3].Eps && vs[3].Eps < vs[6].Eps) {
		t.Errorf("eps ordering: %v", vs)
	}
	if _, err := SuggestVariants(ix, nil, []float64{1}); err == nil {
		t.Error("empty minpts accepted")
	}
	if _, err := SuggestVariants(ix, []int{4}, nil); err == nil {
		t.Error("empty factors accepted")
	}
}
