package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"vdbscan/internal/metrics"
)

// TestNilTracerNoOps pins the disabled-tracer contract: every method on a
// nil *Tracer and on the nil *Recorder it hands out must be a safe no-op.
func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	tr.StartRun(time.Now(), "SCHEDGREEDY", nil)
	tr.EndRun(time.Second)
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer Events = %v, want nil", got)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("nil tracer Dropped = %d, want 0", got)
	}
	rec := tr.Worker(3)
	if rec != nil {
		t.Fatalf("nil tracer Worker = %v, want nil", rec)
	}
	rec.Event(KindStarted, 0, 0, 0)
	rec.Done(0, -1, 0.5, metrics.Snapshot{})
	rec.PhaseBegin(0, PhaseExpand)
	rec.PhaseEnd(0, PhaseExpand)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer WriteChromeTrace: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer trace not JSON: %v", err)
	}
	buf.Reset()
	if err := tr.WriteTimeline(&buf); err != nil {
		t.Fatalf("nil tracer WriteTimeline: %v", err)
	}
}

// TestNilRecorderZeroAlloc is the zero-overhead-when-disabled assertion at
// the instrumentation layer: emitting on a disabled (nil) recorder must not
// allocate, so the call sites on the clustering paths cost a nil check and
// nothing else.
func TestNilRecorderZeroAlloc(t *testing.T) {
	var tr *Tracer
	rec := tr.Worker(0)
	snap := metrics.Snapshot{NeighborSearches: 12}
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Event(KindStarted, 7, 0, 0)
		rec.PhaseBegin(7, PhaseScratch)
		rec.PhaseEnd(7, PhaseScratch)
		rec.Done(7, -1, 0.25, snap)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f times per run, want 0", allocs)
	}
}

// TestEnabledRecorderZeroAllocSteadyState: even with tracing on, ring
// writes are value copies into a preallocated buffer — no allocation per
// event once the recorder exists.
func TestEnabledRecorderZeroAllocSteadyState(t *testing.T) {
	tr := NewTracer(WithRingCap(64))
	tr.StartRun(time.Now(), "SCHEDGREEDY", nil)
	rec := tr.Worker(0)
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Event(KindStarted, 1, 0, 0)
		rec.PhaseBegin(1, PhaseMark)
		rec.PhaseEnd(1, PhaseMark)
	})
	if allocs != 0 {
		t.Fatalf("enabled recorder allocated %.1f times per event batch, want 0", allocs)
	}
}

// TestRingDropOldest: a saturated ring keeps the newest events and counts
// the losses.
func TestRingDropOldest(t *testing.T) {
	tr := NewTracer(WithRingCap(16))
	tr.StartRun(time.Now(), "SCHEDGREEDY", nil)
	rec := tr.Worker(0)
	for i := 0; i < 40; i++ {
		rec.Event(KindStarted, int32(i), int64(i), 0)
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("ring kept %d events, want 16", len(evs))
	}
	if tr.Dropped() != 24 {
		t.Fatalf("Dropped = %d, want 24", tr.Dropped())
	}
	// Oldest-first recovery: the survivors are exactly events 24..39.
	for i, e := range evs {
		if e.Arg != int64(24+i) {
			t.Fatalf("event %d has Arg %d, want %d (drop-oldest violated)", i, e.Arg, 24+i)
		}
	}
}

// TestEventsMergeSorted: events from several workers come back globally
// ordered by time with begin-before-end tie-breaks.
func TestEventsMergeSorted(t *testing.T) {
	tr := NewTracer()
	tr.StartRun(time.Now(), "SCHEDMINPTS", []string{"(1, 4)", "(2, 8)"})
	r0, r1 := tr.Worker(0), tr.Worker(1)
	r0.Event(KindStarted, 0, 0, 0)
	r1.Event(KindStarted, 1, 0, 0)
	r0.PhaseBegin(0, PhaseScratch)
	r1.PhaseBegin(1, PhaseScratch)
	r1.PhaseEnd(1, PhaseScratch)
	r0.PhaseEnd(0, PhaseScratch)
	r0.Done(0, -1, 0, metrics.Snapshot{})
	r1.Done(1, 0, 0.8, metrics.Snapshot{NeighborSearches: 5})
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("got %d events, want 8", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order at %d: %v after %v", i, evs[i].At, evs[i-1].At)
		}
	}
}

// buildRun synthesizes a two-worker, three-variant run with seed reuse,
// phases, and a donation — the full event vocabulary.
func buildRun(t *testing.T) *Tracer {
	t.Helper()
	tr := NewTracer()
	tr.StartRun(time.Now(), "SCHEDGREEDY", []string{"(0.2, 8)", "(0.4, 8)", "(0.6, 4)"})
	run := tr.Worker(-1)
	for i := 0; i < 3; i++ {
		run.Event(KindQueued, int32(i), int64(i), 0)
	}
	r0, r1 := tr.Worker(0), tr.Worker(1)
	r0.Event(KindStarted, 0, 0, 0)
	r0.PhaseBegin(0, PhaseScratch)
	r1.Event(KindStarted, 1, 0, 0)
	r1.PhaseBegin(1, PhaseScratch)
	r1.PhaseEnd(1, PhaseScratch)
	r1.Done(1, -1, 0, metrics.Snapshot{NeighborSearches: 100})
	r1.Event(KindDonorJoin, 0, 0, 0)
	r1.Event(KindDonorLeave, 0, 0, 0)
	r0.PhaseEnd(0, PhaseScratch)
	r0.Done(0, -1, 0, metrics.Snapshot{NeighborSearches: 90})
	r0.Event(KindStarted, 2, 0, 0)
	r0.Event(KindSeedSelected, 2, 0, 0.125)
	r0.PhaseBegin(2, PhaseExpand)
	r0.PhaseEnd(2, PhaseExpand)
	r0.PhaseBegin(2, PhaseScratch)
	r0.PhaseEnd(2, PhaseScratch)
	r0.Done(2, 0, 0.9, metrics.Snapshot{NeighborSearches: 10, PointsReused: 900})
	tr.EndRun(time.Since(time.Now().Add(-time.Millisecond)))
	return tr
}

// TestWriteChromeTrace validates the exporter output as JSON and checks
// the structural requirements: one lifecycle span per variant with
// seed-source and reuse-fraction args, phase spans, and donor spans.
func TestWriteChromeTrace(t *testing.T) {
	tr := buildRun(t)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	variantSpans := map[int]map[string]any{}
	phases := 0
	donors := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Pid == pidVariants {
			switch {
			case e.Args["fraction_reused"] != nil:
				variantSpans[e.Tid] = e.Args
			case e.Name == "scratch" || e.Name == "expand":
				phases++
			}
		}
		if e.Ph == "X" && e.Pid == pidWorkers && strings.HasPrefix(e.Name, "donate") {
			donors++
		}
	}
	if len(variantSpans) != 3 {
		t.Fatalf("got %d variant lifecycle spans, want 3", len(variantSpans))
	}
	v2 := variantSpans[2]
	if got := v2["seed_source"].(float64); got != 0 {
		t.Errorf("v2 seed_source = %v, want 0", got)
	}
	if got := v2["fraction_reused"].(float64); got != 0.9 {
		t.Errorf("v2 fraction_reused = %v, want 0.9", got)
	}
	if got := v2["seed_score"].(float64); got != 0.125 {
		t.Errorf("v2 seed_score = %v, want 0.125", got)
	}
	if got := v2["searches"].(float64); got != 10 {
		t.Errorf("v2 searches = %v, want 10", got)
	}
	if phases != 4 {
		t.Errorf("got %d phase spans, want 4", phases)
	}
	if donors != 1 {
		t.Errorf("got %d donor spans, want 1", donors)
	}
}

// TestWriteTimeline sanity-checks the text export: header, one line per
// variant, seed annotation, donation note.
func TestWriteTimeline(t *testing.T) {
	tr := buildRun(t)
	var buf bytes.Buffer
	if err := tr.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"SCHEDGREEDY", "3 variants done", "seed=v0", "dist=0.125",
		"from-scratch", "donated", "(0.6, 4)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

// TestKindPhaseStrings pins the display names used in exports.
func TestKindPhaseStrings(t *testing.T) {
	if PhaseExpand.String() != "expand" || PhaseScratch.String() != "scratch" ||
		PhaseMark.String() != "mark" || PhaseLink.String() != "link" ||
		PhaseLabel.String() != "label" || PhaseBorder.String() != "border" {
		t.Fatal("phase names changed; exports and docs depend on them")
	}
	if KindDone.String() != "done" || KindSeedSelected.String() != "seed-selected" {
		t.Fatal("kind names changed; timeline output depends on them")
	}
}

// TestSinkReceivesLiveEvents: a WithSink tracer forwards every recorded
// event to the sink at record time, in addition to the ring buffers, and
// the sink sees concurrent workers safely (run under -race).
func TestSinkReceivesLiveEvents(t *testing.T) {
	var mu sync.Mutex
	var got []Event
	tr := NewTracer(WithSink(func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	}))
	tr.StartRun(time.Now(), "SCHEDGREEDY", []string{"v0", "v1"})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := tr.Worker(w)
			rec.Event(KindStarted, int32(w%2), 0, 0)
			rec.PhaseBegin(int32(w%2), PhaseTileRun)
			rec.PhaseEnd(int32(w%2), PhaseTileRun)
			rec.Done(int32(w%2), -1, 0, metrics.Snapshot{NeighborSearches: 5})
		}(w)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if want := 4 * 4; len(got) != want {
		t.Fatalf("sink saw %d events, want %d", len(got), want)
	}
	kinds := map[Kind]int{}
	for _, e := range got {
		kinds[e.Kind]++
	}
	if kinds[KindDone] != 4 || kinds[KindPhaseBegin] != 4 {
		t.Fatalf("sink kind histogram %v", kinds)
	}
	// The ring still captured everything too: the sink is additive.
	if evs := tr.Events(); len(evs) != 16 {
		t.Fatalf("ring kept %d events, want 16", len(evs))
	}
	// The Done events carry the per-variant work delta the live consumer
	// (the serving plane's histograms) depends on.
	for _, e := range got {
		if e.Kind == KindDone && e.Work.NeighborSearches != 5 {
			t.Fatalf("done event lost its work delta: %+v", e)
		}
	}
}
