// Package prom is a dependency-free Prometheus exposition layer: labeled
// counter, gauge, and histogram families rendered in the Prometheus text
// format (version 0.0.4) with # HELP and # TYPE comments, plus a strict
// parser of the same format usable as an in-tree promtool-style lint.
//
// The package exists because the serving plane's throughput claims are
// latency-distribution claims: whether variant-level parallelism keeps every
// core busy shows up in the *tails* of queue-wait and batch-run time, which
// monotonic counters cannot express. Histograms here are built for the
// service hot path:
//
//   - Observe is lock-free: a binary search over the fixed bucket bounds,
//     one atomic increment, and one CAS-loop float add for the sum. No
//     allocation, no mutex, no channel.
//   - Label lookup (Vec.With) takes a read lock on the children map and is
//     meant to be cached by callers on hot paths; families are expected to
//     have low label cardinality (datasets, index kinds, tiled on/off).
//   - Rendering walks a consistent snapshot under the registry lock;
//     cumulative bucket counts are computed at render time, so the
//     monotonicity invariant of the _bucket series holds by construction.
//
// The format contract (HELP/TYPE present, escaping, le ordering, _count ==
// +Inf bucket) is enforced by Parse, which the tests and CI run against the
// live /metrics output.
package prom

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType enumerates the exposition types this package renders.
type MetricType int

// Metric types, named as in the TYPE comment they render to.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

// String implements fmt.Stringer with the text-format spelling.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("MetricType(%d)", int(t))
	}
}

// atomicFloat is a float64 with atomic Add/Set/Load via bit casting.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) Store(v float64) {
	f.bits.Store(math.Float64bits(v))
}
func (f *atomicFloat) Add(delta float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Registry holds metric families in registration order and renders them.
// All methods are safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	seen map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: map[string]bool{}}
}

// family is one named metric family: a fixed label-name schema and its
// children (one per distinct label-value tuple).
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string
	bounds []float64 // histogram upper bounds, sorted, +Inf implicit

	fn func() float64 // callback metric (no children, no labels)

	mu       sync.RWMutex
	children map[string]*Metric
}

func (r *Registry) register(f *family) *family {
	if !validName(f.name) {
		panic("prom: invalid metric name " + strconv.Quote(f.name))
	}
	for _, l := range f.labels {
		if !validLabel(l) {
			panic("prom: invalid label name " + strconv.Quote(l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[f.name] {
		panic("prom: duplicate metric name " + strconv.Quote(f.name))
	}
	r.seen[f.name] = true
	r.fams = append(r.fams, f)
	return f
}

// Counter registers a counter family with the given label names and returns
// its Vec. A counter only goes up (Add panics on negative deltas).
func (r *Registry) Counter(name, help string, labels ...string) *Vec {
	f := r.register(&family{name: name, help: help, typ: TypeCounter,
		labels: labels, children: map[string]*Metric{}})
	return &Vec{f: f}
}

// Gauge registers a gauge family (Set/Add/Sub allowed) and returns its Vec.
func (r *Registry) Gauge(name, help string, labels ...string) *Vec {
	f := r.register(&family{name: name, help: help, typ: TypeGauge,
		labels: labels, children: map[string]*Metric{}})
	return &Vec{f: f}
}

// Histogram registers a fixed-bucket histogram family. buckets are the
// upper bounds (le values) in strictly increasing order; the +Inf bucket is
// implicit. The slice is copied.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Vec {
	if len(buckets) == 0 {
		panic("prom: histogram " + name + " needs at least one bucket")
	}
	b := append([]float64(nil), buckets...)
	for i := range b {
		if math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
			panic("prom: histogram " + name + " has a non-finite bucket bound")
		}
		if i > 0 && b[i] <= b[i-1] {
			panic("prom: histogram " + name + " buckets not strictly increasing")
		}
	}
	f := r.register(&family{name: name, help: help, typ: TypeHistogram,
		labels: labels, bounds: b, children: map[string]*Metric{}})
	return &Vec{f: f}
}

// CounterFunc registers an unlabeled counter whose value is read from fn at
// render time — for totals already maintained elsewhere (e.g. atomics).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: TypeCounter, fn: fn})
}

// GaugeFunc registers an unlabeled gauge read from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: TypeGauge, fn: fn})
}

// Vec is the handle of one registered family; With resolves a child metric
// for a concrete label-value tuple.
type Vec struct{ f *family }

// With returns the child for the given label values (created on first use).
// The number of values must match the family's label names; hot paths
// should cache the returned *Metric rather than re-resolving per event.
func (v *Vec) With(values ...string) *Metric {
	f := v.f
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("prom: %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok = f.children[key]; ok {
		return m
	}
	m = &Metric{f: f, labelValues: append([]string(nil), values...)}
	if f.typ == TypeHistogram {
		m.buckets = make([]atomic.Uint64, len(f.bounds)+1)
	}
	f.children[key] = m
	return m
}

// Metric is one child time series (a concrete label-value tuple).
type Metric struct {
	f           *family
	labelValues []string

	val     atomicFloat     // counter/gauge value, histogram sum
	buckets []atomic.Uint64 // histogram: per-bucket (non-cumulative), +Inf last
}

// Inc adds 1 to a counter or gauge.
func (m *Metric) Inc() { m.Add(1) }

// Add adds delta to a counter (delta must be >= 0) or gauge.
func (m *Metric) Add(delta float64) {
	switch m.f.typ {
	case TypeCounter:
		if delta < 0 {
			panic("prom: counter " + m.f.name + " decreased")
		}
	case TypeHistogram:
		panic("prom: Add on histogram " + m.f.name)
	}
	m.val.Add(delta)
}

// Set sets a gauge's value.
func (m *Metric) Set(v float64) {
	if m.f.typ != TypeGauge {
		panic("prom: Set on non-gauge " + m.f.name)
	}
	m.val.Store(v)
}

// Observe records one histogram observation: lock-free (one atomic bucket
// increment plus a CAS float add to the sum).
func (m *Metric) Observe(v float64) {
	if m.f.typ != TypeHistogram {
		panic("prom: Observe on non-histogram " + m.f.name)
	}
	// Binary search for the first bound >= v; misses land in +Inf.
	b := m.f.bounds
	i := sort.SearchFloat64s(b, v)
	// SearchFloat64s returns the first index with b[i] >= v, which is
	// exactly the le semantics (v <= bound); NaN observations land in +Inf.
	if math.IsNaN(v) {
		i = len(b)
	}
	m.buckets[i].Add(1)
	m.val.Add(v)
}

// Value returns the current counter/gauge value (histogram: the sum).
func (m *Metric) Value() float64 { return m.val.Load() }

// Count returns a histogram child's total observation count.
func (m *Metric) Count() uint64 {
	var n uint64
	for i := range m.buckets {
		n += m.buckets[i].Load()
	}
	return n
}

// ---- rendering ----------------------------------------------------------

// Write renders every registered family in the Prometheus text format.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	bw := &errWriter{w: w}
	for _, f := range fams {
		f.write(bw)
		if bw.err != nil {
			return bw.err
		}
	}
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (b *errWriter) printf(format string, args ...any) {
	if b.err != nil {
		return
	}
	_, b.err = fmt.Fprintf(b.w, format, args...)
}

func (f *family) write(w *errWriter) {
	if f.help != "" {
		w.printf("# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	w.printf("# TYPE %s %s\n", f.name, f.typ)
	if f.fn != nil {
		w.printf("%s %s\n", f.name, formatValue(f.fn()))
		return
	}
	f.mu.RLock()
	children := make([]*Metric, 0, len(f.children))
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.RUnlock()
	for _, m := range children {
		switch f.typ {
		case TypeHistogram:
			m.writeHistogram(w)
		default:
			w.printf("%s%s %s\n", f.name, labelString(f.labels, m.labelValues, "", 0),
				formatValue(m.val.Load()))
		}
	}
}

func (m *Metric) writeHistogram(w *errWriter) {
	f := m.f
	// Snapshot buckets first, then the sum: a concurrent Observe between the
	// two can only make sum cover >= the counted observations, never fewer.
	counts := make([]uint64, len(m.buckets))
	for i := range m.buckets {
		counts[i] = m.buckets[i].Load()
	}
	sum := m.val.Load()
	var cum uint64
	for i, bound := range f.bounds {
		cum += counts[i]
		w.printf("%s_bucket%s %d\n", f.name,
			labelString(f.labels, m.labelValues, "le", bound), cum)
	}
	cum += counts[len(counts)-1]
	w.printf("%s_bucket%s %d\n", f.name,
		labelString(f.labels, m.labelValues, "le", math.Inf(1)), cum)
	w.printf("%s_sum%s %s\n", f.name,
		labelString(f.labels, m.labelValues, "", 0), formatValue(sum))
	w.printf("%s_count%s %d\n", f.name,
		labelString(f.labels, m.labelValues, "", 0), cum)
}

// labelString renders a {name="value",...} block, optionally appending an
// le label (leName != ""). Returns "" for an empty label set.
func labelString(names, values []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(leName)
		sb.WriteString(`="`)
		sb.WriteString(formatLe(le))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatValue renders a sample value: integral floats without an exponent
// (so counters read naturally), everything else in Go's shortest 'g' form,
// which the text format accepts.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 && !math.Signbit(v) || (v == math.Trunc(v) && v < 0 && v > -1e15) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLe renders a bucket bound ("+Inf" for the overflow bucket).
func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabel(s string) bool {
	if s == "" || s == "le" { // le is reserved for histogram buckets
		return false
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// ---- bucket helpers -----------------------------------------------------

// ExpBuckets returns n exponential bucket bounds starting at start and
// multiplying by factor (> 1).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("prom: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the default seconds scale for service latencies:
// 500µs to ~2 minutes, a factor ~2.5 apart.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}
