package prom

import (
	"bytes"
	"strings"
	"testing"
)

// TestRoundTrip: everything the renderer writes, the parser accepts, and
// the parsed values equal the live registry's.
func TestRoundTrip(t *testing.T) {
	r := buildReference()
	exp, err := Parse(bytes.NewReader(render(t, r)))
	if err != nil {
		t.Fatalf("Parse rejected our own output: %v", err)
	}
	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"test_jobs_total", map[string]string{"outcome": "done"}, 3},
		{"test_jobs_total", map[string]string{"outcome": "failed"}, 1},
		{"test_queue_depth", nil, 7},
		{"test_uptime_seconds", nil, 1.5},
		{"test_scrapes_total", nil, 2},
		{"test_run_seconds_bucket", map[string]string{"dataset": "d1", "index": "grid", "le": "0.5"}, 3},
		{"test_run_seconds_bucket", map[string]string{"dataset": "d1", "index": "grid", "le": "+Inf"}, 5},
		{"test_run_seconds_count", map[string]string{"dataset": "d1", "index": "grid"}, 5},
		{"test_run_seconds_count", map[string]string{"dataset": "d2", "index": "rtree"}, 1},
		{"test_escaping", map[string]string{"path": "a\"b\\c\nd"}, 1},
	}
	for _, c := range checks {
		if c.labels == nil {
			c.labels = map[string]string{}
		}
		got, ok := exp.Value(c.name, c.labels)
		if !ok {
			t.Errorf("%s%v: not found", c.name, c.labels)
			continue
		}
		if got != c.want {
			t.Errorf("%s%v = %g, want %g", c.name, c.labels, got, c.want)
		}
	}
	if n := exp.Histograms(); n != 1 {
		t.Errorf("Histograms() = %d, want 1", n)
	}
	if f := exp.Families["test_run_seconds"]; f == nil || f.Type != "histogram" {
		t.Errorf("test_run_seconds family = %+v", f)
	}
	if f := exp.Families["test_jobs_total"]; f == nil || f.Help != "Jobs by outcome." {
		t.Errorf("HELP not carried through: %+v", f)
	}
}

// TestParseRejects: the promtool-style lint catches each class of
// malformed exposition.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		name  string
		input string
		wantE string
	}{
		{"sample without TYPE", "foo 1\n", "before its # TYPE"},
		{"unknown type", "# TYPE foo wat\n", "unknown metric type"},
		{"duplicate TYPE", "# TYPE foo counter\n# TYPE foo counter\n", "duplicate TYPE"},
		{"TYPE after samples", "# TYPE foo counter\nfoo 1\n# TYPE foo gauge\n", "duplicate TYPE"},
		{"missing value", "# TYPE foo counter\nfoo\n", "malformed sample"},
		{"bad value", "# TYPE foo counter\nfoo abc\n", "bad value"},
		{"bad metric name", "# TYPE foo counter\n2foo 1\n", "invalid metric name"},
		{"unterminated labels", "# TYPE foo counter\nfoo{a=\"x 1\n", "unterminated"},
		{"label missing equals", "# TYPE foo counter\nfoo{a=\"x\" 1\n", "label without"},
		{"unquoted label value", "# TYPE foo counter\nfoo{a=x} 1\n", "not quoted"},
		{"bad escape", "# TYPE foo counter\nfoo{a=\"\\q\"} 1\n", "bad escape"},
		{"duplicate label", "# TYPE foo counter\nfoo{a=\"x\",a=\"y\"} 1\n", "duplicate label"},
		{"duplicate sample", "# TYPE foo counter\nfoo{a=\"x\"} 1\nfoo{a=\"x\"} 2\n", "duplicate sample"},
		{"bad timestamp", "# TYPE foo counter\nfoo 1 nope\n", "bad timestamp"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n", "without le"},
		{"stray histogram sample", "# TYPE h histogram\nh_other 1\n", "before its # TYPE"},
		{"missing +Inf bucket", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"missing the +Inf"},
		{"missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n", "missing _sum"},
		{"non-monotone buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"bucket counts decrease"},
		{"le not increasing",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"le bounds not increasing"},
		{"count disagrees with +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 7\n",
			"_count 7 != +Inf"},
		{"+Inf below last bucket",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"+Inf bucket 2 below"},
		{"bad le", "# TYPE h histogram\nh_bucket{le=\"abc\"} 1\nh_sum 1\nh_count 1\n", "bad le"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(c.input))
			if err == nil {
				t.Fatalf("accepted malformed input:\n%s", c.input)
			}
			if !strings.Contains(err.Error(), c.wantE) {
				t.Fatalf("error %q does not mention %q", err, c.wantE)
			}
		})
	}
}

// TestParseAccepts: valid shapes beyond our own renderer — timestamps,
// Inf/NaN values, untyped comments, blank lines, label whitespace.
func TestParseAccepts(t *testing.T) {
	in := `
# plain comment
# TYPE foo counter
# HELP foo A counter.
foo{a="x"} 1 1712000000000

# TYPE bar gauge
bar NaN
# TYPE baz gauge
baz +Inf
# TYPE h histogram
h_bucket{ le="1" } 1
h_bucket{le="+Inf"} 2
h_sum 3.5
h_count 2
`
	exp, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v, ok := exp.Value("foo", map[string]string{"a": "x"}); !ok || v != 1 {
		t.Errorf("foo = %g ok=%v", v, ok)
	}
	if v, ok := exp.Value("h_sum", map[string]string{}); !ok || v != 3.5 {
		t.Errorf("h_sum = %g ok=%v", v, ok)
	}
}
