package prom

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed time series sample.
type Sample struct {
	// Name is the full sample name (histogram children keep their
	// _bucket/_sum/_count suffix).
	Name string
	// Labels holds the label pairs, including le on _bucket samples.
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// ParsedFamily is one metric family reconstructed from the text format.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram | summary | untyped
	Samples []Sample
}

// Exposition is a parsed scrape: families keyed and ordered by name.
type Exposition struct {
	Families map[string]*ParsedFamily
	Order    []string
}

// Histograms counts the histogram-typed families.
func (e *Exposition) Histograms() int {
	n := 0
	for _, f := range e.Families {
		if f.Type == "histogram" {
			n++
		}
	}
	return n
}

// Value returns the value of the sample with the given full name and an
// exactly matching label set.
func (e *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	fam, ok := e.Families[familyName(e, name)]
	if !ok {
		return 0, false
	}
	for _, s := range fam.Samples {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

func familyName(e *Exposition, sample string) string {
	if _, ok := e.Families[sample]; ok {
		return sample
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suf); ok {
			if _, ok := e.Families[base]; ok {
				return base
			}
		}
	}
	return sample
}

// Parse reads a Prometheus text-format exposition and validates it
// strictly — an in-tree promtool-style lint. It rejects:
//
//   - samples whose family has no preceding # TYPE line;
//   - malformed sample lines (bad names, unbalanced braces, bad escapes,
//     missing or unparsable values);
//   - duplicate samples (same name and label set);
//   - histograms missing the +Inf bucket, with non-monotone cumulative
//     bucket counts, with unparsable or non-increasing le bounds, or whose
//     _count disagrees with the +Inf bucket;
//   - duplicate # TYPE lines and unknown type names.
func Parse(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Families: map[string]*ParsedFamily{}}
	seen := map[string]bool{} // dedup key: name + sorted labels
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(exp, line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := exp.Families[familyName(exp, s.Name)]
		if fam == nil || fam.Type == "" {
			return nil, fmt.Errorf("line %d: sample %s before its # TYPE line", lineNo, s.Name)
		}
		if fam.Type == "histogram" {
			base := fam.Name
			if s.Name != base+"_bucket" && s.Name != base+"_sum" && s.Name != base+"_count" {
				return nil, fmt.Errorf("line %d: histogram %s has stray sample %s", lineNo, base, s.Name)
			}
			if s.Name == base+"_bucket" {
				if _, ok := s.Labels["le"]; !ok {
					return nil, fmt.Errorf("line %d: %s without le label", lineNo, s.Name)
				}
			}
		}
		key := sampleKey(s)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seen[key] = true
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range exp.Order {
		fam := exp.Families[name]
		if fam.Type == "histogram" {
			if err := checkHistogram(fam); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", name, err)
			}
		}
	}
	return exp, nil
}

func parseComment(exp *Exposition, line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		f := getFamily(exp, fields[2])
		f.Help = help
	case "TYPE":
		if len(fields) != 4 || !validName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		f := getFamily(exp, fields[2])
		if f.Type != "" {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", fields[2])
		}
		f.Type = fields[3]
	}
	return nil
}

func getFamily(exp *Exposition, name string) *ParsedFamily {
	if f, ok := exp.Families[name]; ok {
		return f
	}
	f := &ParsedFamily{Name: name}
	exp.Families[name] = f
	exp.Order = append(exp.Order, name)
	return f
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	i := strings.IndexAny(rest, "{ \t")
	if i <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	if rest == "" {
		return s, fmt.Errorf("sample %s has no value", s.Name)
	}
	// An optional timestamp may follow the value.
	valStr := rest
	if j := strings.IndexAny(rest, " \t"); j >= 0 {
		valStr = rest[:j]
		ts := strings.TrimSpace(rest[j:])
		if ts != "" {
			if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
				return s, fmt.Errorf("sample %s has a bad timestamp %q", s.Name, ts)
			}
		}
	}
	v, err := parseFloat(valStr)
	if err != nil {
		return s, fmt.Errorf("sample %s has a bad value %q", s.Name, valStr)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at in[0] == '{' and fills
// labels; it returns the index just past the closing brace.
func parseLabels(in string, labels map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ' ' || in[i] == '\t') {
			i++
		}
		if i >= len(in) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if in[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(in) && in[i] != '=' {
			i++
		}
		if i >= len(in) {
			return 0, fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(in[start:i])
		if !validLabelOrLe(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i++ // past '='
		if i >= len(in) || in[i] != '"' {
			return 0, fmt.Errorf("label %s value not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return 0, fmt.Errorf("unterminated label value for %s", name)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(in) {
					return 0, fmt.Errorf("dangling escape in label %s", name)
				}
				switch in[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c in label %s", in[i], name)
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return 0, fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		for i < len(in) && (in[i] == ' ' || in[i] == '\t') {
			i++
		}
		if i < len(in) && in[i] == ',' {
			i++
		}
	}
}

func validLabelOrLe(s string) bool { return s == "le" || validLabel(s) }

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func sampleKey(s Sample) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(s.Name)
	for _, k := range keys {
		sb.WriteByte('{')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(s.Labels[k])
		sb.WriteByte('}')
	}
	return sb.String()
}

// checkHistogram enforces the per-child histogram invariants: le bounds
// strictly increasing and parsable, cumulative counts non-decreasing, a
// +Inf bucket present, and _count equal to the +Inf bucket (when present).
func checkHistogram(fam *ParsedFamily) error {
	type childAgg struct {
		les      []float64
		counts   []float64
		inf      float64
		hasInf   bool
		count    float64
		hasCount bool
		hasSum   bool
	}
	children := map[string]*childAgg{}
	childOf := func(labels map[string]string) *childAgg {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k)
			sb.WriteByte('=')
			sb.WriteString(labels[k])
			sb.WriteByte(';')
		}
		c, ok := children[sb.String()]
		if !ok {
			c = &childAgg{}
			children[sb.String()] = c
		}
		return c
	}
	for _, s := range fam.Samples {
		c := childOf(s.Labels)
		switch s.Name {
		case fam.Name + "_bucket":
			le, err := parseFloat(s.Labels["le"])
			if err != nil {
				return fmt.Errorf("bad le %q", s.Labels["le"])
			}
			if math.IsInf(le, 1) {
				c.inf, c.hasInf = s.Value, true
			} else {
				c.les = append(c.les, le)
				c.counts = append(c.counts, s.Value)
			}
		case fam.Name + "_count":
			c.count, c.hasCount = s.Value, true
		case fam.Name + "_sum":
			c.hasSum = true
		}
	}
	for key, c := range children {
		if !c.hasInf {
			return fmt.Errorf("child {%s} missing the +Inf bucket", key)
		}
		if !c.hasSum {
			return fmt.Errorf("child {%s} missing _sum", key)
		}
		for i := 1; i < len(c.les); i++ {
			if c.les[i] <= c.les[i-1] {
				return fmt.Errorf("child {%s} le bounds not increasing (%g after %g)",
					key, c.les[i], c.les[i-1])
			}
			if c.counts[i] < c.counts[i-1] {
				return fmt.Errorf("child {%s} bucket counts decrease at le=%g (%g < %g)",
					key, c.les[i], c.counts[i], c.counts[i-1])
			}
		}
		if n := len(c.counts); n > 0 && c.inf < c.counts[n-1] {
			return fmt.Errorf("child {%s} +Inf bucket %g below le=%g bucket %g",
				key, c.inf, c.les[n-1], c.counts[n-1])
		}
		if c.hasCount && c.count != c.inf {
			return fmt.Errorf("child {%s} _count %g != +Inf bucket %g", key, c.count, c.inf)
		}
	}
	return nil
}
