package prom

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// buildReference fills a registry with one family of each shape — the
// golden-file fixture and the round-trip fixture share it.
func buildReference() *Registry {
	r := NewRegistry()
	jobs := r.Counter("test_jobs_total", "Jobs by outcome.", "outcome")
	jobs.With("done").Add(3)
	jobs.With("failed").Inc()
	depth := r.Gauge("test_queue_depth", "Current queue depth.")
	depth.With().Set(7)
	r.GaugeFunc("test_uptime_seconds", "Uptime with sub-second resolution.", func() float64 { return 1.5 })
	r.CounterFunc("test_scrapes_total", "Scrapes served.", func() float64 { return 2 })
	h := r.Histogram("test_run_seconds", "Run duration by dataset.",
		[]float64{0.1, 0.5, 2.5}, "dataset", "index")
	m := h.With("d1", "grid")
	m.Observe(0.05)
	m.Observe(0.05)
	m.Observe(0.3)
	m.Observe(1)
	m.Observe(9) // +Inf bucket
	h.With("d2", "rtree").Observe(0.2)
	esc := r.Gauge("test_escaping", "Help with a \\ backslash\nand a newline.", "path")
	esc.With("a\"b\\c\nd").Set(1)
	return r
}

func render(t *testing.T, r *Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// TestGolden pins the exact text-format output byte for byte. Regenerate
// with -update after deliberate format changes.
var update = os.Getenv("UPDATE_GOLDEN") != ""

func TestGolden(t *testing.T) {
	got := render(t, buildReference())
	path := filepath.Join("testdata", "reference.golden")
	if update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("golden mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramInvariants checks bucket monotonicity and the count/sum
// contract directly on the rendered + reparsed output.
func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inv_seconds", "h", []float64{0.001, 0.01, 0.1, 1, 10}, "k")
	m := h.With("a")
	var sum float64
	vals := []float64{0.0005, 0.004, 0.004, 0.05, 0.5, 5, 50, 1e9}
	for _, v := range vals {
		m.Observe(v)
		sum += v
	}
	if got := m.Count(); got != uint64(len(vals)) {
		t.Fatalf("Count = %d, want %d", got, len(vals))
	}
	if got := m.Value(); math.Abs(got-sum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, sum)
	}
	exp, err := Parse(bytes.NewReader(render(t, r)))
	if err != nil {
		t.Fatalf("self-render failed the lint: %v", err)
	}
	// Cumulative buckets from the parse: every le's value must be the
	// number of observations <= le.
	wantCum := map[string]float64{
		"0.001": 1, "0.01": 3, "0.1": 4, "1": 5, "10": 6, "+Inf": 8,
	}
	for le, want := range wantCum {
		got, ok := exp.Value("inv_seconds_bucket", map[string]string{"k": "a", "le": le})
		if !ok || got != want {
			t.Errorf("bucket le=%s = %g (ok=%v), want %g", le, got, ok, want)
		}
	}
	if got, ok := exp.Value("inv_seconds_count", map[string]string{"k": "a"}); !ok || got != float64(len(vals)) {
		t.Errorf("count = %g (ok=%v), want %d", got, ok, len(vals))
	}
}

// TestObserveBoundaries: an observation equal to a bound lands in that
// bucket (le is inclusive), and NaN lands in +Inf only.
func TestObserveBoundaries(t *testing.T) {
	r := NewRegistry()
	m := r.Histogram("b_seconds", "h", []float64{1, 2}).With()
	m.Observe(1) // le="1"
	m.Observe(math.NaN())
	exp, err := Parse(bytes.NewReader(render(t, r)))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := exp.Value("b_seconds_bucket", map[string]string{"le": "1"}); v != 1 {
		t.Errorf("le=1 bucket = %g, want 1", v)
	}
	if v, _ := exp.Value("b_seconds_bucket", map[string]string{"le": "+Inf"}); v != 2 {
		t.Errorf("+Inf bucket = %g, want 2", v)
	}
}

// TestConcurrentObserve hammers one histogram child and one counter from
// many goroutines; run under -race this is the lock-free path's gate.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "h", ExpBuckets(0.001, 4, 8), "w")
	c := r.Counter("c_total", "c")
	const workers, each = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := h.With("shared")
			for i := 0; i < each; i++ {
				m.Observe(float64(i%17) * 0.003)
				c.With().Inc()
				if i%64 == 0 {
					// Concurrent scrape while observing.
					var buf bytes.Buffer
					_ = r.Write(&buf)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := h.With("shared").Count(); got != workers*each {
		t.Fatalf("histogram count = %d, want %d", got, workers*each)
	}
	if got := c.With().Value(); got != workers*each {
		t.Fatalf("counter = %g, want %d", got, workers*each)
	}
	if _, err := Parse(bytes.NewReader(render(t, r))); err != nil {
		t.Fatalf("post-hammer render failed the lint: %v", err)
	}
}

func TestPanics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("p_total", "c")
	g := r.Gauge("p_gauge", "g")
	h := r.Histogram("p_seconds", "h", []float64{1})
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("negative counter add", func() { c.With().Add(-1) })
	expectPanic("set on counter", func() { c.With().Set(1) })
	expectPanic("observe on gauge", func() { g.With().Observe(1) })
	expectPanic("add on histogram", func() { h.With().Add(1) })
	expectPanic("label arity", func() { c.With("extra") })
	expectPanic("duplicate name", func() { r.Counter("p_total", "again") })
	expectPanic("bad name", func() { r.Counter("0bad", "x") })
	expectPanic("reserved le label", func() { r.Counter("p2_total", "x", "le") })
	expectPanic("unsorted buckets", func() { r.Histogram("p2_seconds", "h", []float64{2, 1}) })
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
