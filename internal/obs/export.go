package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// This file turns a captured event stream into the two export formats:
//
//   - Chrome trace-event JSON (the "JSON Array Format" both chrome://tracing
//     and https://ui.perfetto.dev load directly): pid 1 carries one track
//     per pool worker showing what each core executed when (variant spans,
//     donated phases), pid 2 carries one track per variant showing its
//     lifecycle with nested expand/scratch/mark/link/border phase spans,
//     seed-selection instants, and per-variant work-counter args.
//   - A plain-text timeline summary for terminals and logs.
//
// Both exporters reconstruct spans by pairing begin/end events per variant;
// events orphaned by ring overflow degrade to clipped spans rather than
// breaking the output.

// chromeEvent is one trace-event object. Field names follow the format
// spec; Ts/Dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Process/track numbering of the Chrome export.
const (
	pidWorkers  = 1 // one thread per pool worker (tid = worker+1; 0 = scheduler)
	pidVariants = 2 // one thread per variant (tid = variant ID)
)

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func durPtr(d time.Duration) *float64 {
	v := us(d)
	return &v
}

// variantSpan is a reconstructed per-variant lifecycle.
type variantSpan struct {
	id         int32
	worker     int32
	start, end time.Duration
	started    bool
	done       bool
	source     int64
	seedScore  float64
	seedSet    bool
	frac       float64
	work       workArgs
}

type workArgs struct {
	searches, candidates, neighbors, nodes, reusedPts, reusedClus, destroyed int64
}

// spans pairs Started/Done events into per-variant lifecycles and returns
// them keyed by variant ID, plus the largest timestamp seen (the frame for
// clipping orphaned spans).
func spans(evs []Event) (map[int32]*variantSpan, time.Duration) {
	out := map[int32]*variantSpan{}
	var maxAt time.Duration
	get := func(id int32) *variantSpan {
		s, ok := out[id]
		if !ok {
			s = &variantSpan{id: id, source: -1}
			out[id] = s
		}
		return s
	}
	for _, e := range evs {
		if e.At > maxAt {
			maxAt = e.At
		}
		if e.Variant < 0 {
			continue
		}
		switch e.Kind {
		case KindStarted:
			s := get(e.Variant)
			s.start, s.worker, s.started = e.At, e.Worker, true
		case KindSeedSelected:
			s := get(e.Variant)
			s.source, s.seedScore, s.seedSet = e.Arg, e.F, true
		case KindDone:
			s := get(e.Variant)
			s.end, s.done = e.At, true
			s.source, s.frac = e.Arg, e.F
			s.work = workArgs{
				searches: e.Work.NeighborSearches, candidates: e.Work.CandidatesExamined,
				neighbors: e.Work.NeighborsFound, nodes: e.Work.NodesVisited,
				reusedPts: e.Work.PointsReused, reusedClus: e.Work.ClustersReused,
				destroyed: e.Work.ClustersDestroyed,
			}
		}
	}
	return out, maxAt
}

// WriteChromeTrace writes the run as Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. Safe on a nil tracer (writes an empty
// trace).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	var out []chromeEvent
	if t == nil {
		return json.NewEncoder(w).Encode(map[string]any{"traceEvents": out})
	}
	t.mu.Lock()
	strategy, end, dropped := t.strategy, t.end, int64(0)
	names := append([]string(nil), t.names...)
	t.mu.Unlock()
	dropped = t.Dropped()
	name := func(id int32) string {
		if id >= 0 && int(id) < len(names) && names[id] != "" {
			return names[id]
		}
		return fmt.Sprintf("v%d", id)
	}

	vspans, maxAt := spans(evs)
	if end > maxAt {
		maxAt = end
	}

	// Track metadata: name the two processes and every thread.
	meta := func(pid, tid int, key, value string) {
		out = append(out, chromeEvent{Name: key, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": value}})
	}
	meta(pidWorkers, 0, "process_name", "pool workers")
	meta(pidVariants, 0, "process_name", "variants")
	meta(pidWorkers, 0, "thread_name", "scheduler")
	seenWorker := map[int32]bool{}
	for _, e := range evs {
		if e.Worker >= 0 && !seenWorker[e.Worker] {
			seenWorker[e.Worker] = true
			meta(pidWorkers, int(e.Worker)+1, "thread_name", fmt.Sprintf("worker %d", e.Worker))
		}
	}
	for id := range vspans {
		meta(pidVariants, int(id), "thread_name", fmt.Sprintf("v%d %s", id, name(id)))
	}

	// Run-level frame: one span covering the whole run on the scheduler
	// track, annotated with the strategy pick and drop accounting.
	out = append(out, chromeEvent{
		Name: "run", Cat: "sched", Ph: "X", Ts: 0, Dur: durPtr(maxAt),
		Pid: pidWorkers, Tid: 0,
		Args: map[string]any{"strategy": strategy, "events": len(evs), "dropped_events": dropped},
	})

	// Variant lifecycle spans: one per variant on its own track and a twin
	// on its worker's track, both carrying the seed-source and
	// reuse-fraction annotations the schedule plots need.
	ids := make([]int32, 0, len(vspans))
	for id := range vspans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := vspans[id]
		if !s.started && !s.done {
			continue
		}
		if !s.started { // start lost to ring overflow: clip to run start
			s.start = 0
		}
		if !s.done { // never completed (cancelled run): clip to frame end
			s.end = maxAt
		}
		args := map[string]any{
			"variant":            int(id),
			"seed_source":        s.source,
			"from_scratch":       s.source < 0,
			"fraction_reused":    s.frac,
			"worker":             int(s.worker),
			"searches":           s.work.searches,
			"candidates":         s.work.candidates,
			"neighbors":          s.work.neighbors,
			"nodes_visited":      s.work.nodes,
			"points_reused":      s.work.reusedPts,
			"clusters_reused":    s.work.reusedClus,
			"clusters_destroyed": s.work.destroyed,
		}
		if s.seedSet {
			args["seed_score"] = s.seedScore
		}
		ev := chromeEvent{Name: name(id), Cat: "variant", Ph: "X",
			Ts: us(s.start), Dur: durPtr(s.end - s.start), Pid: pidVariants, Tid: int(id), Args: args}
		out = append(out, ev)
		ev.Pid, ev.Tid = pidWorkers, int(s.worker)+1
		out = append(out, ev)
	}

	// Phase spans (nested inside the variant spans on the variant tracks)
	// and donor spans (on the donating worker's track). Begin/end events
	// pair up per (variant, phase) / (worker, variant); orphans clip to the
	// frame.
	type key struct {
		variant int32
		arg     int64
	}
	phaseOpen := map[key]time.Duration{}
	donorOpen := map[key]time.Duration{}
	for _, e := range evs {
		switch e.Kind {
		case KindQueued:
			out = append(out, chromeEvent{Name: fmt.Sprintf("queued %s", name(e.Variant)),
				Cat: "sched", Ph: "i", Ts: us(e.At), Pid: pidWorkers, Tid: 0, S: "t",
				Args: map[string]any{"variant": int(e.Variant), "position": e.Arg}})
		case KindSeedSelected:
			out = append(out, chromeEvent{Name: "seed-selected", Cat: "sched", Ph: "i",
				Ts: us(e.At), Pid: pidVariants, Tid: int(e.Variant), S: "t",
				Args: map[string]any{"seed_source": e.Arg, "seed_score": e.F}})
		case KindPhaseBegin:
			phaseOpen[key{e.Variant, e.Arg}] = e.At
		case KindPhaseEnd:
			k := key{e.Variant, e.Arg}
			begin, ok := phaseOpen[k]
			if !ok {
				begin = 0
			}
			delete(phaseOpen, k)
			out = append(out, chromeEvent{Name: Phase(e.Arg).String(), Cat: "phase", Ph: "X",
				Ts: us(begin), Dur: durPtr(e.At - begin), Pid: pidVariants, Tid: int(e.Variant),
				Args: map[string]any{"variant": int(e.Variant)}})
		case KindDonorJoin:
			donorOpen[key{e.Worker, int64(e.Variant)}] = e.At
		case KindDonorLeave:
			k := key{e.Worker, int64(e.Variant)}
			begin, ok := donorOpen[k]
			if !ok {
				begin = 0
			}
			delete(donorOpen, k)
			out = append(out, chromeEvent{Name: fmt.Sprintf("donate→%s", name(e.Variant)),
				Cat: "donor", Ph: "X", Ts: us(begin), Dur: durPtr(e.At - begin),
				Pid: pidWorkers, Tid: int(e.Worker) + 1,
				Args: map[string]any{"variant": int(e.Variant)}})
		}
	}
	for k, begin := range phaseOpen { // still open at frame end: clip
		out = append(out, chromeEvent{Name: Phase(k.arg).String(), Cat: "phase", Ph: "X",
			Ts: us(begin), Dur: durPtr(maxAt - begin), Pid: pidVariants, Tid: int(k.variant)})
	}
	for k, begin := range donorOpen {
		out = append(out, chromeEvent{Name: "donate", Cat: "donor", Ph: "X",
			Ts: us(begin), Dur: durPtr(maxAt - begin), Pid: pidWorkers, Tid: int(k.variant) + 1})
	}

	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	})
}

// WriteTimeline writes a human-readable run summary: one line per variant
// in start order with its worker, window, seed source, reuse fraction, and
// ε-search count, followed by per-worker donation notes. Safe on a nil
// tracer.
func (t *Tracer) WriteTimeline(w io.Writer) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "trace: disabled (nil tracer)")
		return err
	}
	evs := t.Events()
	t.mu.Lock()
	strategy, end := t.strategy, t.end
	names := append([]string(nil), t.names...)
	t.mu.Unlock()
	name := func(id int32) string {
		if id >= 0 && int(id) < len(names) && names[id] != "" {
			return names[id]
		}
		return fmt.Sprintf("v%d", id)
	}

	vspans, maxAt := spans(evs)
	if end > maxAt {
		maxAt = end
	}
	workers := map[int32]bool{}
	var done int
	var fracSum float64
	list := make([]*variantSpan, 0, len(vspans))
	for _, s := range vspans {
		list = append(list, s)
		if s.done {
			done++
			fracSum += s.frac
		}
		if s.started {
			workers[s.worker] = true
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].start != list[j].start {
			return list[i].start < list[j].start
		}
		return list[i].id < list[j].id
	})
	meanFrac := 0.0
	if done > 0 {
		meanFrac = fracSum / float64(done)
	}
	fmt.Fprintf(w, "trace: %s | %d variants done on %d workers | makespan %s | mean reuse %.3f",
		strategy, done, len(workers), maxAt.Round(time.Microsecond), meanFrac)
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(w, " | %d events dropped (raise ring cap)", d)
	}
	fmt.Fprintln(w)

	for _, s := range list {
		if !s.started && !s.done {
			continue
		}
		src := "from-scratch"
		if s.source >= 0 {
			src = fmt.Sprintf("seed=v%d", s.source)
			if s.seedSet {
				src += fmt.Sprintf(" dist=%.3f", s.seedScore)
			}
		}
		fmt.Fprintf(w, "  [w%-2d] v%-3d %-12s %9s – %-9s %9s  %-28s reuse=%5.1f%% searches=%d\n",
			s.worker, s.id, name(s.id),
			s.start.Round(time.Microsecond), s.end.Round(time.Microsecond),
			(s.end - s.start).Round(time.Microsecond), src, 100*s.frac, s.work.searches)
	}

	// Donation activity, if any: which idle workers helped which variants.
	type dkey struct {
		worker, variant int32
	}
	joins := map[dkey]time.Duration{}
	for _, e := range evs {
		switch e.Kind {
		case KindDonorJoin:
			joins[dkey{e.Worker, e.Variant}] = e.At
		case KindDonorLeave:
			k := dkey{e.Worker, e.Variant}
			if begin, ok := joins[k]; ok {
				fmt.Fprintf(w, "  [w%-2d] donated %s to v%d (%s)\n",
					e.Worker, (e.At - begin).Round(time.Microsecond), e.Variant, name(e.Variant))
				delete(joins, k)
			}
		}
	}
	return nil
}
