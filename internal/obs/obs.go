// Package obs is the execution-tracing and runtime-introspection layer of
// the variant scheduler. It records structured span events — variant
// lifecycle (queued → started → seed-selected → expand/scratch phases →
// done), scheduler decisions (strategy pick, worker assignment, donor
// join/leave), and per-variant metrics.Snapshot deltas — into lock-light
// per-worker ring buffers, then exports them as a Chrome trace-event /
// Perfetto JSON file or a plain-text timeline.
//
// The paper's claims are about *when* each variant ran, *which* completed
// variant it seeded from, and *how much* ε-search work reuse skipped;
// aggregate counters and wall-clock totals cannot answer those questions.
// Tracing makes the SCHEDGREEDY/SCHEDMINPTS schedules, the donor-pool
// behavior of two-level scheduling, and the per-phase work attribution
// directly inspectable (the per-phase methodology of Wang, Gu & Shun,
// arXiv:1912.06255).
//
// # Cost model
//
// Tracing must never tax the ε-search and expansion hot paths:
//
//   - A nil *Tracer (the default everywhere) is a guaranteed no-op:
//     Worker returns a nil *Recorder, and every Recorder method nil-checks
//     first and allocates nothing (asserted with testing.AllocsPerRun).
//   - Events are emitted at variant/phase granularity — never per ε-search —
//     so even an enabled tracer adds a handful of ring writes per variant.
//   - Each pool worker owns one Recorder and is its only writer, so event
//     capture takes no locks; the tracer's mutex guards only recorder
//     registration and post-run exports.
//
// Ring buffers are bounded (RingCap events per worker, drop-oldest); the
// Dropped counter reports any loss so exporters can flag truncation.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"vdbscan/internal/metrics"
)

// Kind identifies one structured event type.
type Kind uint8

// Event kinds. Arg and F carry kind-specific payloads (documented per kind).
const (
	// KindQueued marks a variant's position in the execution queue at
	// schedule-build time. Arg = queue position (0-based).
	KindQueued Kind = iota + 1
	// KindStarted marks a pool worker claiming a variant. The Recorder's
	// worker is the assignee.
	KindStarted
	// KindSeedSelected records the reuse-source decision for a variant.
	// Arg = source variant ID; F = normalized parameter distance (the
	// SCHEDGREEDY score; lower is closer).
	KindSeedSelected
	// KindPhaseBegin/KindPhaseEnd bracket one execution phase of a variant.
	// Arg = Phase code.
	KindPhaseBegin
	KindPhaseEnd
	// KindDone marks variant completion. Arg = source variant ID (-1 for a
	// from-scratch execution); F = fraction of points reused; Work = the
	// variant's own metrics delta (snapshot of a per-variant counter set).
	KindDone
	// KindDonorJoin/KindDonorLeave bracket an idle pool worker donating
	// itself to a running variant's parallel phase (two-level scheduling).
	// Variant = the variant helped.
	KindDonorJoin
	KindDonorLeave
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindQueued:
		return "queued"
	case KindStarted:
		return "started"
	case KindSeedSelected:
		return "seed-selected"
	case KindPhaseBegin:
		return "phase-begin"
	case KindPhaseEnd:
		return "phase-end"
	case KindDone:
		return "done"
	case KindDonorJoin:
		return "donor-join"
	case KindDonorLeave:
		return "donor-leave"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Phase identifies one execution phase inside a variant run.
type Phase uint8

// Phases of a variant execution. Expand and Scratch are VariantDBSCAN's two
// sequential phases (Algorithm 3: seed-cluster expansion, then the
// from-scratch remainder); Mark/Link/Label/Border are the intra-variant
// parallel DBSCAN phases of dbscan.RunParallelOpts; TileRun/TileMerge are
// the tile-level phases of its ε-halo sharded path.
const (
	// PhaseExpand is the seed-cluster reuse expansion (Alg. 3 lines 8–17:
	// cluster copy, MBB sweep, edge search, EXPANDCLUSTER).
	PhaseExpand Phase = iota + 1
	// PhaseScratch is from-scratch DBSCAN: the Alg. 3 line-18 remainder
	// pass, or the whole run when no source was reusable.
	PhaseScratch
	// PhaseMark is parallel core-point marking (the ε-search sweep).
	PhaseMark
	// PhaseLink is parallel core-edge disjoint-set linking.
	PhaseLink
	// PhaseLabel is the sequential cluster numbering pass.
	PhaseLabel
	// PhaseBorder is parallel border-point attachment.
	PhaseBorder
	// PhaseRefreeze is one epoch of the incremental clusterer's
	// generational index maintenance: from the moment a background
	// re-freeze (tree snapshot + Compact) is kicked off until the fresh
	// flat snapshot is installed and the covered overlay segment retired.
	// Recorded with variant = -1 (it belongs to the index, not a variant).
	PhaseRefreeze
	// PhaseTileRun is the tiled parallel runner's per-tile clustering
	// sweep: every tile's ε-searches, core marking, and intra-tile
	// linking (dbscan tiled path, phases A of the tile schedule).
	PhaseTileRun
	// PhaseTileMerge is the cross-tile seam merge: re-walking seam cells
	// to union core-core ε-edges that straddle tile boundaries.
	PhaseTileMerge
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseExpand:
		return "expand"
	case PhaseScratch:
		return "scratch"
	case PhaseMark:
		return "mark"
	case PhaseLink:
		return "link"
	case PhaseLabel:
		return "label"
	case PhaseBorder:
		return "border"
	case PhaseRefreeze:
		return "refreeze"
	case PhaseTileRun:
		return "tile-run"
	case PhaseTileMerge:
		return "tile-merge"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// Event is one recorded span event. Events are plain values (no pointers,
// no strings) so ring writes never allocate.
type Event struct {
	// Kind is the event type.
	Kind Kind
	// At is the offset from the run's start. All workers share one
	// monotonic basis (the time.Time captured in StartRun), so events from
	// different workers order correctly and nest within the run window.
	At time.Duration
	// Worker is the recording pool worker, or -1 for run-level events
	// (strategy pick, queue construction).
	Worker int32
	// Variant is the variant's original ID (its index in the input params
	// slice), or -1 when not variant-specific.
	Variant int32
	// Arg is the kind-specific integer payload (see the Kind constants).
	Arg int64
	// F is the kind-specific float payload (seed score, reuse fraction).
	F float64
	// Work is the per-variant counter delta carried by KindDone events.
	Work metrics.Snapshot
}

// DefaultRingCap is the per-worker ring capacity when the tracer is built
// without an override: ~10 events per variant makes 4096 enough for runs of
// a few hundred variants per worker before drop-oldest kicks in.
const DefaultRingCap = 4096

// Tracer captures one scheduler run. The zero of its pointer type is the
// disabled state: every method on a nil *Tracer (and on the nil *Recorder
// it hands out) is a no-op, so call sites never need their own guards.
//
// A Tracer records a single run: StartRun resets all state, ExecuteContext
// (or Index.Cluster) calls it exactly once per traced run, and the
// exporters read whatever the last run captured.
type Tracer struct {
	mu       sync.Mutex
	t0       time.Time
	started  bool
	ringCap  int
	strategy string
	names    []string // variant ID -> display label
	end      time.Duration
	recs     map[int32]*Recorder
	sink     func(Event)
}

// TracerOption configures NewTracer.
type TracerOption func(*Tracer)

// WithRingCap overrides the per-worker ring capacity (minimum 16).
func WithRingCap(n int) TracerOption {
	return func(t *Tracer) {
		if n < 16 {
			n = 16
		}
		t.ringCap = n
	}
}

// WithSink attaches a live event sink: every recorded event is also passed
// to fn at record time, before the run finishes — the feed for streaming
// progress surfaces (SSE) that cannot wait for the post-run exporters.
//
// fn is called from whichever worker goroutine records the event, so it
// must be safe for concurrent use, and it sits on the recording path (still
// variant/phase granularity, never per ε-search) — it must be fast and
// non-blocking, or it becomes the run's bottleneck.
func WithSink(fn func(Event)) TracerOption {
	return func(t *Tracer) { t.sink = fn }
}

// NewTracer returns an enabled tracer ready to be passed to a run.
func NewTracer(opts ...TracerOption) *Tracer {
	t := &Tracer{ringCap: DefaultRingCap, recs: map[int32]*Recorder{}}
	for _, o := range opts {
		o(t)
	}
	return t
}

// StartRun (re)arms the tracer for one run. t0 is the run's start instant —
// the same time.Time the scheduler measures VariantResult.Start/End against,
// so trace timestamps and result offsets share one monotonic basis. strategy
// names the scheduling heuristic; names[id] labels variant id in exports.
// Safe on a nil tracer.
func (t *Tracer) StartRun(t0 time.Time, strategy string, names []string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.t0 = t0
	t.started = true
	t.strategy = strategy
	t.names = append(t.names[:0], names...)
	t.end = 0
	t.recs = map[int32]*Recorder{}
}

// EndRun records the run's makespan so exporters can frame the window.
// Safe on a nil tracer.
func (t *Tracer) EndRun(makespan time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.end = makespan
	t.mu.Unlock()
}

// Worker returns the recorder owned by pool worker id (-1 is the run-level
// recorder used by the scheduling goroutine itself). The recorder must only
// be written by one goroutine at a time; the scheduler guarantees this by
// fetching it once per worker goroutine. Worker on a nil tracer returns a
// nil recorder, whose methods all no-op.
func (t *Tracer) Worker(id int) *Recorder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w := int32(id)
	if r, ok := t.recs[w]; ok {
		return r
	}
	r := &Recorder{t0: t.t0, worker: w, buf: make([]Event, 0, t.ringCap), sink: t.sink}
	t.recs[w] = r
	return r
}

// Dropped returns the number of events lost to ring overflow across all
// workers (0 on a nil tracer).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, r := range t.recs {
		n += r.dropped
	}
	return n
}

// Events returns every captured event merged across workers in time order.
// Call it only after the traced run has returned (the scheduler's
// WaitGroup provides the happens-before edge with worker writes).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	for _, r := range t.recs {
		out = append(out, r.events()...)
	}
	sortEvents(out)
	return out
}

// name returns the display label of variant id.
func (t *Tracer) name(id int32) string {
	if id >= 0 && int(id) < len(t.names) && t.names[id] != "" {
		return t.names[id]
	}
	return fmt.Sprintf("v%d", id)
}

// sortEvents orders events by time, breaking ties so that nesting survives:
// begins before their same-instant children, ends after them.
func sortEvents(evs []Event) {
	rank := func(k Kind) int {
		switch k {
		case KindQueued:
			return 0
		case KindStarted:
			return 1
		case KindSeedSelected, KindDonorJoin:
			return 2
		case KindPhaseBegin:
			return 3
		case KindPhaseEnd:
			return 4
		case KindDonorLeave, KindDone:
			return 5
		}
		return 6
	}
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if ra, rb := rank(a.Kind), rank(b.Kind); ra != rb {
			return ra < rb
		}
		return a.Variant < b.Variant
	})
}

// Recorder is one worker's event sink: a bounded drop-oldest ring written
// without locks by its single owning goroutine. All methods are safe on a
// nil receiver and never allocate (events are fixed-size values appended
// into a preallocated buffer).
type Recorder struct {
	t0      time.Time
	worker  int32
	buf     []Event // grows to cap once, then rotates via head
	head    int     // oldest element once the ring is saturated
	dropped int64
	sink    func(Event) // live sink shared by all recorders; may be nil
}

// push appends an event, overwriting the oldest once the ring is full.
func (r *Recorder) push(e Event) {
	if r.sink != nil {
		r.sink(e)
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.head] = e
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.dropped++
}

// Event records a plain event. Safe (and free) on a nil recorder.
func (r *Recorder) Event(k Kind, variant int32, arg int64, f float64) {
	if r == nil {
		return
	}
	r.push(Event{Kind: k, At: time.Since(r.t0), Worker: r.worker, Variant: variant, Arg: arg, F: f})
}

// Done records a variant-completion event carrying the per-variant work
// delta. Safe on a nil recorder.
func (r *Recorder) Done(variant int32, source int64, fracReused float64, work metrics.Snapshot) {
	if r == nil {
		return
	}
	r.push(Event{Kind: KindDone, At: time.Since(r.t0), Worker: r.worker,
		Variant: variant, Arg: source, F: fracReused, Work: work})
}

// PhaseBegin marks the start of phase ph of a variant. Safe on a nil
// recorder.
func (r *Recorder) PhaseBegin(variant int32, ph Phase) {
	if r == nil {
		return
	}
	r.push(Event{Kind: KindPhaseBegin, At: time.Since(r.t0), Worker: r.worker,
		Variant: variant, Arg: int64(ph)})
}

// PhaseEnd marks the end of phase ph of a variant. Safe on a nil recorder.
func (r *Recorder) PhaseEnd(variant int32, ph Phase) {
	if r == nil {
		return
	}
	r.push(Event{Kind: KindPhaseEnd, At: time.Since(r.t0), Worker: r.worker,
		Variant: variant, Arg: int64(ph)})
}

// events returns the ring contents oldest-first.
func (r *Recorder) events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// ProgressEvent is one live progress report from a running variant set,
// delivered to the WithProgress callback each time a variant completes.
// Callbacks are invoked serially (never concurrently) in completion order,
// from worker goroutines — keep them fast and do not block.
type ProgressEvent struct {
	// Done counts completed variants (1-based by delivery: the first event
	// has Done == 1); Total is the variant-set size.
	Done, Total int
	// Variant is the completed variant's original ID (index in the input
	// params slice); Source is its reuse source's ID, or -1 for a
	// from-scratch execution.
	Variant, Source int
	// Worker is the pool worker that ran the variant.
	Worker int
	// FractionReused is the completed variant's fraction of points copied
	// from its source; MeanFractionReused is the running mean over all
	// completed variants.
	FractionReused     float64
	MeanFractionReused float64
	// FromScratch reports whether the variant ran plain DBSCAN (no reuse
	// source qualified).
	FromScratch bool
	// Duration is the completed variant's own response time (its End −
	// Start offsets); Elapsed is the time since the run started (same
	// monotonic basis as the trace and VariantResult.Start/End).
	Duration time.Duration
	Elapsed  time.Duration
}
