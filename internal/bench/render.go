// Package bench is the evaluation harness: it regenerates every table and
// figure of the paper's §V on demand, printing paper-style rows next to the
// values measured on this machine.
//
// Absolute speedups depend on the host (the authors used 16 Xeon cores;
// this container may have one), so alongside wall-clock time the harness
// reports deterministic work metrics — ε-neighborhood searches, candidate
// points filtered, R-tree nodes visited, points reused — that carry each
// figure's shape independent of the core count. See EXPERIMENTS.md for the
// paper-vs-measured record.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// table renders aligned text tables.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table {
	return &table{header: header}
}

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	case v >= 1 || v <= -1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// section prints a titled block separator.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n\n", title)
}
