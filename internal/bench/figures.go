package bench

import (
	"fmt"
	"sort"

	"vdbscan/internal/dbscan"
	"vdbscan/internal/quality"
	"vdbscan/internal/render"
	"vdbscan/internal/reuse"
	"vdbscan/internal/sched"
)

// fig4RValues is the leaf-occupancy sweep for the indexing figure: r=1 is
// the unoptimized baseline, 70–110 is the paper's good band, and the outer
// values show the trade-off turning over.
var fig4RValues = []int{1, 16, 70, 100, 110, 256}

// Fig4 regenerates Figure 4 (scenario S1): the relative speedup of
// clustering 16 identical variants concurrently with T threads, versus the
// sequential r=1 reference, across leaf occupancies r. Work columns show
// the compute-for-memory trade directly: tree nodes visited drop with r
// while filtered candidates grow.
func (s *Suite) Fig4() error {
	section(s.Out, "Figure 4: Indexing for variant-parallel clustering (S1)")
	t := newTable("Dataset", "r", "RefTime", "VDBTime", "Speedup",
		"NodesVisited", "Candidates", "Searches")
	for _, spec := range s1Specs {
		ds, err := s.Dataset(spec.dataset)
		if err != nil {
			return err
		}
		p := dbscan.Params{Eps: s.scaleEps(spec.eps), MinPts: s1MinPts}
		vs := identicalVariants(p, s1NumVariants)
		refTime, _, err := s.refRun(ds, vs)
		if err != nil {
			return err
		}
		for _, r := range fig4RValues {
			rr, wall, work, err := s.vdbRun(ds, vs, s.Threads, reuse.ClusDensity,
				sched.SchedGreedy, true /* no reuse: isolate indexing */, r)
			if err != nil {
				return err
			}
			_ = rr
			t.add(spec.dataset, r, seconds(refTime), seconds(wall),
				speedup(refTime, wall), work.NodesVisited,
				work.CandidatesExamined, work.NeighborSearches)
		}
	}
	t.write(s.Out)
	fmt.Fprintln(s.Out, "\nPaper: r=1/T=16 peaks at 2.37x; tuned r reaches 7.91x-31.96x;")
	fmt.Fprintln(s.Out, "SW1 with r=100 is 11.01x (1101%) over the reference.")
	return nil
}

// Fig5 regenerates Figure 5: per-variant response time and fraction of
// points reused on SW1 under scenario S2 with T=1, r=70, for each cluster
// reuse scheme.
func (s *Suite) Fig5() error {
	section(s.Out, "Figure 5: Per-variant response time and reuse on SW1 (S2, T=1)")
	ds, err := s.Dataset("SW1")
	if err != nil {
		return err
	}
	vs := s.s2Variants()
	for _, scheme := range reuse.Schemes {
		fmt.Fprintf(s.Out, "-- %v --\n", scheme)
		rr, _, _, err := s.vdbRun(ds, vs, 1, scheme, sched.SchedGreedy, false, s.R)
		if err != nil {
			return err
		}
		t := newTable("Variant", "Time", "FracReused", "FromScratch")
		for _, r := range rr.Results {
			t.add(r.Variant.Params.String(), seconds(r.Duration()),
				r.Stats.FractionReused, r.Stats.FromScratch)
		}
		t.write(s.Out)
		fmt.Fprintln(s.Out)
	}
	fmt.Fprintln(s.Out, "Paper (SW1, |V|=24): total 801.5s CLUSDEFAULT, 185.8s CLUSDENSITY,")
	fmt.Fprintln(s.Out, "1282.6s CLUSPTSSQUARED vs 1235.0s reference; high reuse <=> low time.")
	return nil
}

// Fig6 regenerates Figure 6: the response-time-versus-reuse relation from
// the Figure 5 data, grouped by ε family and scheme.
func (s *Suite) Fig6() error {
	section(s.Out, "Figure 6: Response time vs fraction reused, by eps family (S2, SW1)")
	ds, err := s.Dataset("SW1")
	if err != nil {
		return err
	}
	vs := s.s2Variants()
	t := newTable("Scheme", "eps", "MeanFracReused", "MeanTime")
	for _, scheme := range reuse.Schemes {
		rr, _, _, err := s.vdbRun(ds, vs, 1, scheme, sched.SchedGreedy, false, s.R)
		if err != nil {
			return err
		}
		type agg struct {
			frac, secs float64
			n          int
		}
		byEps := map[float64]*agg{}
		for _, r := range rr.Results {
			a := byEps[r.Variant.Params.Eps]
			if a == nil {
				a = &agg{}
				byEps[r.Variant.Params.Eps] = a
			}
			a.frac += r.Stats.FractionReused
			a.secs += r.Duration().Seconds()
			a.n++
		}
		var epsKeys []float64
		for e := range byEps {
			epsKeys = append(epsKeys, e)
		}
		sort.Float64s(epsKeys)
		for _, e := range epsKeys {
			a := byEps[e]
			t.add(scheme.String(), e, a.frac/float64(a.n),
				fmt.Sprintf("%.3fs", a.secs/float64(a.n)))
		}
	}
	t.write(s.Out)
	fmt.Fprintln(s.Out, "\nPaper: response times are lower when sufficient data reuse occurs;")
	fmt.Fprintln(s.Out, "in the low-reuse regime larger eps costs disproportionately more.")
	return nil
}

// Fig7 regenerates Figure 7: (a) relative speedup of VariantDBSCAN
// (SCHEDGREEDY, r=70, T=1) versus the reference across the S2 datasets and
// reuse schemes; (b) the average fraction of points reused; (c) the average
// quality score versus plain DBSCAN.
func (s *Suite) Fig7() error {
	section(s.Out, "Figure 7: Data reuse across datasets (S2, T=1, r=70)")
	t := newTable("Dataset", "Scheme", "RefTime", "VDBTime", "Speedup(a)",
		"MeanFracReused(b)", "MeanQuality(c)")
	vs := s.s2Variants()
	for _, name := range s2Datasets {
		ds, err := s.Dataset(name)
		if err != nil {
			return err
		}
		refTime, _, err := s.refRun(ds, vs)
		if err != nil {
			return err
		}
		// Quality reference: plain DBSCAN per variant on the tuned index.
		ix := s.index(ds, s.R)
		for _, scheme := range reuse.Schemes {
			rr, wall, _, err := s.vdbRun(ds, vs, 1, scheme, sched.SchedGreedy, false, s.R)
			if err != nil {
				return err
			}
			var scores []float64
			for _, r := range rr.Results {
				want, err := dbscan.Run(ix, r.Variant.Params, nil)
				if err != nil {
					return err
				}
				q, err := quality.Score(want, r.Result)
				if err != nil {
					return err
				}
				scores = append(scores, q)
			}
			t.add(name, scheme.String(), seconds(refTime), seconds(wall),
				speedup(refTime, wall), rr.MeanFractionReused(), quality.Mean(scores))
		}
	}
	t.write(s.Out)
	fmt.Fprintln(s.Out, "\nPaper: synthetic speedups 6.88x-28.3x; noisiest datasets benefit least;")
	fmt.Fprintln(s.Out, "~60% mean reuse on 30%-noise sets; minimum mean quality 0.998.")
	return nil
}

// fig8Combos are the four scheduling/reuse combinations of Figure 8.
var fig8Combos = []struct {
	scheme   reuse.Scheme
	strategy sched.Strategy
}{
	{reuse.ClusDensity, sched.SchedGreedy},
	{reuse.ClusDensity, sched.SchedMinPts},
	{reuse.ClusPtsSquared, sched.SchedGreedy},
	{reuse.ClusPtsSquared, sched.SchedMinPts},
}

// Fig8 regenerates Figure 8 (scenario S3): relative speedup of the full
// system (indexing + reuse + scheduling, T threads) on the SW datasets for
// each scheduling/reuse combination and variant set.
func (s *Suite) Fig8() error {
	section(s.Out, "Figure 8: Combined indexing + reuse + scheduling on SW datasets (S3)")
	t := newTable("Dataset", "Set", "Scheme", "Strategy", "RefTime", "VDBTime",
		"Speedup", "MeanFracReused")
	for _, spec := range s3Specs {
		ds, err := s.Dataset(spec.dataset)
		if err != nil {
			return err
		}
		for _, setName := range spec.sets {
			vs := s.s3Variants(setName)
			refTime, _, err := s.refRun(ds, vs)
			if err != nil {
				return err
			}
			for _, combo := range fig8Combos {
				rr, wall, _, err := s.vdbRun(ds, vs, s.Threads, combo.scheme,
					combo.strategy, false, s.R)
				if err != nil {
					return err
				}
				t.add(spec.dataset, setName, combo.scheme.String(),
					combo.strategy.String(), seconds(refTime), seconds(wall),
					speedup(refTime, wall), rr.MeanFractionReused())
			}
		}
	}
	t.write(s.Out)
	fmt.Fprintln(s.Out, "\nPaper: CLUSDENSITY beats CLUSPTSSQUARED everywhere; SCHEDGREEDY wins")
	fmt.Fprintln(s.Out, "6 of 8 CLUSDENSITY scenarios; overall 7.27x (SW4,V2) to 22.09x (SW2,V1).")
	return nil
}

// Fig9 regenerates Figure 9: the per-worker makespan of processing V3 on
// SW1 with CLUSDENSITY under each scheduling heuristic, against the
// no-idle lower bound.
func (s *Suite) Fig9() error {
	section(s.Out, "Figure 9: Makespan, SCHEDGREEDY vs SCHEDMINPTS (SW1, V3, CLUSDENSITY)")
	ds, err := s.Dataset("SW1")
	if err != nil {
		return err
	}
	vs := s.s3Variants("V3")
	for _, strategy := range sched.Strategies {
		rr, _, _, err := s.vdbRun(ds, vs, s.Threads, reuse.ClusDensity, strategy, false, s.R)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.Out, "-- %v --\n", strategy)
		t := newTable("Worker", "Variants", "FromScratch", "Busy", "LastEnd")
		for w, line := range rr.WorkerTimelines() {
			var busy float64
			scratch := 0
			lastEnd := 0.0
			for _, r := range line {
				busy += r.Duration().Seconds()
				if r.Stats.FromScratch {
					scratch++
				}
				if e := r.End.Seconds(); e > lastEnd {
					lastEnd = e
				}
			}
			if len(line) == 0 {
				continue
			}
			t.add(w, len(line), scratch, fmt.Sprintf("%.3fs", busy),
				fmt.Sprintf("%.3fs", lastEnd))
		}
		t.write(s.Out)
		scratchTotal := 0
		for _, r := range rr.Results {
			if r.Stats.FromScratch {
				scratchTotal++
			}
		}
		fmt.Fprintf(s.Out, "makespan=%s lowerBound=%s slowdownOverLB=%.1f%% fromScratch=%d/%d\n\n",
			seconds(rr.Makespan), seconds(rr.LowerBound()),
			rr.SlowdownOverLowerBound()*100, scratchTotal, len(vs))
	}
	fmt.Fprintln(s.Out, "Paper: SCHEDGREEDY 13.5% over the lower bound, SCHEDMINPTS 33.0%;")
	fmt.Fprintln(s.Out, "SCHEDMINPTS clusters three more variants from scratch on this workload.")
	return nil
}

// All runs every table and figure in paper order.
func (s *Suite) All() error {
	steps := []func() error{
		s.Fig1, s.Table1, s.Table2, s.Fig4, s.Table3, s.Fig5, s.Fig6, s.Fig7,
		s.Table4, s.Fig8, s.Fig9,
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

// Run dispatches one experiment by ID ("table1", "fig4", ..., "all").
func (s *Suite) Run(id string) error {
	switch id {
	case "fig1":
		return s.Fig1()
	case "table1":
		return s.Table1()
	case "table2":
		return s.Table2()
	case "table3":
		return s.Table3()
	case "table4":
		return s.Table4()
	case "fig4":
		return s.Fig4()
	case "fig5":
		return s.Fig5()
	case "fig6":
		return s.Fig6()
	case "fig7", "fig7a", "fig7b", "fig7c":
		return s.Fig7()
	case "fig8":
		return s.Fig8()
	case "fig9":
		return s.Fig9()
	case "indexkinds":
		return s.IndexKinds()
	case "tiles":
		return s.Tiles()
	case "ablations":
		return s.Ablations()
	case "trace":
		return s.Trace()
	case "all":
		return s.All()
	}
	return fmt.Errorf("bench: unknown experiment %q", id)
}

// Experiments lists the valid experiment IDs in paper order.
var Experiments = []string{
	"fig1", "table1", "table2", "fig4", "table3", "fig5", "fig6", "fig7",
	"table4", "fig8", "fig9", "indexkinds", "tiles", "ablations", "trace",
}

// Fig1 regenerates Figure 1's content as text: the thresholded TEC map of
// (simulated) SW1 rendered as an ASCII density map, followed by the
// clustered view at the Table II parameters.
func (s *Suite) Fig1() error {
	section(s.Out, "Figure 1: TEC map of the Earth's ionosphere (simulated SW1)")
	ds, err := s.Dataset("SW1")
	if err != nil {
		return err
	}
	if err := render.Density(s.Out, ds.Points, render.Options{Width: 90, Height: 24}); err != nil {
		return err
	}
	ix := s.index(ds, s.R)
	res, err := dbscan.Run(ix, dbscan.Params{Eps: s.scaleEps(0.5), MinPts: 4}, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.Out, "\nclusters at (%.2g, 4): %d (largest %v); glyph view:\n\n",
		s.scaleEps(0.5), res.NumClusters, res.TopClusterSizes(3))
	return render.Clusters(s.Out, ix.Pts, res.Remap(ix.Fwd), render.Options{Width: 90, Height: 24})
}
