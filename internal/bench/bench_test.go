package bench

import (
	"bytes"
	"strings"
	"testing"

	"vdbscan/internal/data"
)

// tinySuite runs experiments at a very small scale so every test finishes
// in well under a second per experiment.
func tinySuite() (*Suite, *bytes.Buffer) {
	var buf bytes.Buffer
	s := NewSuite(0.0005, &buf)
	s.Threads = 4
	return s, &buf
}

func TestParseSynthName(t *testing.T) {
	cases := []struct {
		in    string
		class data.SynthClass
		n     int
		noise float64
	}{
		{"cF_1M_5N", data.ClassCF, 1_000_000, 0.05},
		{"cF_100k_30N", data.ClassCF, 100_000, 0.30},
		{"cV_10k_15N", data.ClassCV, 10_000, 0.15},
		{"cV_5000_5N", data.ClassCV, 5000, 0.05},
	}
	for _, c := range cases {
		class, n, noise, err := parseSynthName(c.in)
		if err != nil {
			t.Errorf("parse(%q): %v", c.in, err)
			continue
		}
		if class != c.class || n != c.n || noise != c.noise {
			t.Errorf("parse(%q) = %v %d %g", c.in, class, n, noise)
		}
	}
	for _, bad := range []string{"XX_1M_5N", "cF1M5N", "cF_1M", "cF_xx_5N", "cF_1M_xxN"} {
		if _, _, _, err := parseSynthName(bad); err == nil {
			t.Errorf("parse(%q) should fail", bad)
		}
	}
}

func TestDatasetCacheAndNaming(t *testing.T) {
	s, _ := tinySuite()
	a, err := s.Dataset("cF_1M_5N")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "cF_1M_5N" {
		t.Errorf("name = %q", a.Name)
	}
	if a.Len() != 500 { // 1M * 0.0005
		t.Errorf("scaled |D| = %d, want 500", a.Len())
	}
	b, _ := s.Dataset("cF_1M_5N")
	if a != b {
		t.Error("dataset not cached")
	}
	sw, err := s.Dataset("SW1")
	if err != nil {
		t.Fatal(err)
	}
	scale := s.Scale
	swWant := int(float64(1_864_620) * scale)
	if sw.Len() != swWant {
		t.Errorf("SW1 scaled = %d", sw.Len())
	}
	if _, err := s.Dataset("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestEpsFactor(t *testing.T) {
	s := NewSuite(0.01, nil)
	if got := s.EpsFactor(); got != 10 {
		t.Errorf("EpsFactor(0.01) = %g, want 10", got)
	}
	if got := s.scaleEps(0.5); got != 5 {
		t.Errorf("scaleEps = %g", got)
	}
	all := s.scaleEpsAll([]float64{0.2, 0.4})
	if all[0] != 2 || all[1] != 4 {
		t.Errorf("scaleEpsAll = %v", all)
	}
}

func TestS2VariantCount(t *testing.T) {
	s, _ := tinySuite()
	if got := len(s.s2Variants()); got != 24 {
		t.Errorf("|V| S2 = %d, want 24", got)
	}
}

func TestS3VariantCounts(t *testing.T) {
	s, _ := tinySuite()
	for _, name := range []string{"V1", "V2", "V3"} {
		if got := len(s.s3Variants(name)); got != 57 {
			t.Errorf("|%s| = %d, want 57", name, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown set should panic")
		}
	}()
	s.s3Variants("V9")
}

func TestTable1(t *testing.T) {
	s, buf := tinySuite()
	if err := s.Table1(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "cF_1M_5N", "SW4", "N/A"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	s, buf := tinySuite()
	if err := s.Table2(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Clusters (measured)") {
		t.Error("missing measured clusters column")
	}
}

func TestTables3And4(t *testing.T) {
	s, buf := tinySuite()
	if err := s.Table3(); err != nil {
		t.Fatal(err)
	}
	if err := s.Table4(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "24") || !strings.Contains(out, "57") {
		t.Error("scenario sizes missing from output")
	}
}

func TestFig4(t *testing.T) {
	s, buf := tinySuite()
	// Restrict to one small dataset for speed: shrink the spec table via a
	// scale so tiny that even 1M-named datasets are 2000 points.
	if err := s.Fig4(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "Speedup") {
		t.Error("Fig4 output malformed")
	}
	// All r values present.
	for _, r := range []string{" 1 ", " 70", " 256"} {
		if !strings.Contains(out, r) {
			t.Errorf("missing r row %q", r)
		}
	}
}

func TestFig5And6(t *testing.T) {
	s, buf := tinySuite()
	if err := s.Fig5(); err != nil {
		t.Fatal(err)
	}
	if err := s.Fig6(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CLUSDEFAULT", "CLUSDENSITY", "CLUSPTSSQUARED", "FracReused", "MeanFracReused"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig7(t *testing.T) {
	s, buf := tinySuite()
	if err := s.Fig7(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MeanQuality", "cV_1M_30N", "SW1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig8(t *testing.T) {
	s, buf := tinySuite()
	if err := s.Fig8(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SW1", "SW4", "V1", "V2", "V3", "SCHEDGREEDY", "SCHEDMINPTS"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig9(t *testing.T) {
	s, buf := tinySuite()
	if err := s.Fig9(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"makespan", "lowerBound", "slowdownOverLB", "fromScratch"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	s, _ := tinySuite()
	if err := s.Run("table3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run("bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
	for _, id := range Experiments {
		if id == "" {
			t.Error("empty experiment id")
		}
	}
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	tab := newTable("A", "LongHeader")
	tab.add("x", 3.14159)
	tab.add("yyyy", 42)
	tab.write(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("separator missing: %q", lines[1])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {12345, "12345"}, {123.456, "123.5"}, {3.14159, "3.14"}, {0.1234, "0.1234"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAblations(t *testing.T) {
	s, buf := tinySuite()
	if err := s.Ablations(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"tree-design", "index-build", "seed-filter",
		"eps-sweep", "dbscan-core", "parallel-grain", "SCHEDTREE"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations output missing %q", want)
		}
	}
}

func TestTrialsAveraging(t *testing.T) {
	s, buf := tinySuite()
	s.Trials = 3
	if err := s.Fig4(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Speedup") {
		t.Error("trials run produced no table")
	}
}

func TestFig1(t *testing.T) {
	s, buf := tinySuite()
	if err := s.Fig1(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "+---") {
		t.Error("Fig1 did not render a map frame")
	}
}
