package bench

import (
	"vdbscan/internal/dbscan"
	"vdbscan/internal/variant"
)

// Table I — the sixteen evaluation datasets. The harness prints the paper's
// |D| next to the generated (scaled) |D|.
var table1Names = []string{
	"cF_1M_5N", "cF_100k_5N", "cF_10k_5N",
	"cF_1M_15N", "cF_1M_30N", "cF_100k_30N", "cF_10k_30N",
	"cV_1M_5N", "cV_1M_15N", "cV_1M_30N", "cV_100k_30N", "cV_10k_30N",
	"SW1", "SW2", "SW3", "SW4",
}

// paperSizes lists Table I's |D| per dataset.
var paperSizes = map[string]int{
	"cF_1M_5N": 1_000_000, "cF_100k_5N": 100_000, "cF_10k_5N": 10_000,
	"cF_1M_15N": 1_000_000, "cF_1M_30N": 1_000_000, "cF_100k_30N": 100_000,
	"cF_10k_30N": 10_000,
	"cV_1M_5N":   1_000_000, "cV_1M_15N": 1_000_000, "cV_1M_30N": 1_000_000,
	"cV_100k_30N": 100_000, "cV_10k_30N": 10_000,
	"SW1": 1_864_620, "SW2": 3_162_522, "SW3": 4_179_436, "SW4": 5_159_737,
}

// Table1 regenerates Table I: dataset characteristics.
func (s *Suite) Table1() error {
	section(s.Out, "Table I: Characteristics of Datasets")
	t := newTable("Dataset", "|D| (paper)", "|D| (generated)", "Noise")
	for _, name := range table1Names {
		ds, err := s.Dataset(name)
		if err != nil {
			return err
		}
		noise := "N/A"
		if ds.NoiseFrac >= 0 {
			noise = formatFloat(ds.NoiseFrac*100) + "%"
		}
		t.add(name, paperSizes[name], ds.Len(), noise)
	}
	t.write(s.Out)
	return nil
}

// s1Spec is one row of Table II: the dataset and the variant parameters of
// scenario S1 (16 identical variants, minpts 4).
type s1Spec struct {
	dataset       string
	eps           float64 // paper's ε at full scale
	paperClusters int     // Table II's cluster count
}

// s1Specs reproduces Table II.
var s1Specs = []s1Spec{
	{"cF_1M_5N", 0.5, 672},
	{"cF_100k_5N", 4, 200},
	{"cF_10k_5N", 10, 15},
	{"cV_1M_30N", 0.5, 74},
	{"cV_100k_30N", 2, 14802},
	{"cV_10k_30N", 10, 1},
	{"SW1", 0.5, 2333},
}

const (
	s1MinPts      = 4
	s1NumVariants = 16
)

// Table2 regenerates Table II: the S1 parameters with the cluster counts
// this build produces (simulated substrates cannot match the paper's exact
// counts; the magnitude comparison is the point).
func (s *Suite) Table2() error {
	section(s.Out, "Table II: Scenario 1 (S1)")
	t := newTable("Dataset", "eps (scaled)", "minpts", "Variants", "Clusters (paper)", "Clusters (measured)")
	for _, spec := range s1Specs {
		ds, err := s.Dataset(spec.dataset)
		if err != nil {
			return err
		}
		ix := s.index(ds, s.R)
		res, err := dbscan.Run(ix, dbscan.Params{Eps: s.scaleEps(spec.eps), MinPts: s1MinPts}, nil)
		if err != nil {
			return err
		}
		t.add(spec.dataset, s.scaleEps(spec.eps), s1MinPts, s1NumVariants,
			spec.paperClusters, res.NumClusters)
	}
	t.write(s.Out)
	return nil
}

// s2Datasets lists the seven datasets of Table III.
var s2Datasets = []string{
	"cF_1M_5N", "cV_1M_5N", "cF_1M_15N", "cV_1M_15N",
	"cF_1M_30N", "cV_1M_30N", "SW1",
}

// s2Variants builds Table III's variant set: A = {0.2, 0.4, 0.6},
// B = {4, 8, ..., 32}, |V| = 24 (ε scaled per suite).
func (s *Suite) s2Variants() []variant.Variant {
	A := s.scaleEpsAll([]float64{0.2, 0.4, 0.6})
	var B []int
	for mp := 4; mp <= 32; mp += 4 {
		B = append(B, mp)
	}
	return variant.Product(A, B)
}

// Table3 prints Table III: scenario S2's configuration.
func (s *Suite) Table3() error {
	section(s.Out, "Table III: Scenario 2 (S2)")
	t := newTable("Datasets", "A (eps, scaled)", "B (minpts)", "|V|")
	vs := s.s2Variants()
	t.add("cF/cV 1M x {5,15,30}N, SW1",
		formatFloat(vs[0].Params.Eps)+", "+formatFloat(vs[len(vs)/3].Params.Eps)+", "+formatFloat(vs[2*len(vs)/3].Params.Eps),
		"{4, 8, ..., 32}", len(vs))
	t.write(s.Out)
	return nil
}

// s3Spec is one Table IV scenario: a dataset paired with variant sets.
type s3Spec struct {
	dataset string
	sets    []string // "V1", "V2", "V3"
}

// s3Specs reproduces Table IV's dataset/variant-set pairing.
var s3Specs = []s3Spec{
	{"SW1", []string{"V1", "V3"}},
	{"SW2", []string{"V1", "V3"}},
	{"SW3", []string{"V1", "V3"}},
	{"SW4", []string{"V2", "V3"}},
}

// s3Variants builds the named Table IV variant set (ε scaled per suite).
func (s *Suite) s3Variants(name string) []variant.Variant {
	var A []float64
	var B []int
	switch name {
	case "V1":
		A = []float64{0.2, 0.3, 0.4}
		for mp := 10; mp <= 100; mp += 5 {
			B = append(B, mp)
		}
	case "V2":
		A = []float64{0.15, 0.25, 0.35}
		for mp := 10; mp <= 100; mp += 5 {
			B = append(B, mp)
		}
	case "V3":
		for e := 0.04; e < 0.401; e += 0.02 {
			A = append(A, e)
		}
		B = []int{4, 8, 16}
	default:
		panic("bench: unknown S3 variant set " + name)
	}
	return variant.Product(s.scaleEpsAll(A), B)
}

// Table4 prints Table IV: scenario S3's configuration.
func (s *Suite) Table4() error {
	section(s.Out, "Table IV: Scenario 3 (S3)")
	t := newTable("Dataset", "Sets", "|V1|", "|V2|", "|V3|")
	v1, v2, v3 := s.s3Variants("V1"), s.s3Variants("V2"), s.s3Variants("V3")
	for _, spec := range s3Specs {
		t.add(spec.dataset, spec.sets[0]+","+spec.sets[1], len(v1), len(v2), len(v3))
	}
	t.write(s.Out)
	return nil
}
