package bench

import (
	"context"
	"fmt"
	"time"

	"vdbscan/internal/dbscan"
	"vdbscan/internal/metrics"
	"vdbscan/internal/obs"
)

// tileSweep is the tile-count axis: untiled, 2×2, 4×4, 8×8.
var tileSweep = []int{1, 4, 16, 64}

// Tiles sweeps tile-level parallelism (variant → tile → chunk) over the
// synthetic cF sets: one variant per run on the flat cell grid, T workers,
// tile count stepping 1 → 2×2 → 4×4 → 8×8. Columns:
//
//   - Speedup is against the untiled chunked runner (tiles=1) on the same
//     index — both paths produce byte-identical labels, so this isolates
//     the scheduling difference (whole-tile claims with halo-local
//     searches vs fixed-size chunk claims over the full grid).
//   - MergeFrac is the cross-tile seam merge's share of the run (the
//     PhaseTileMerge span over the whole wall time, from the run's trace):
//     the price of cutting the grid, paid once per run after the barrier.
//   - Part/MaxTile report what the partitioner chose: regular k×k or kd
//     cuts, and the largest tile's point count (the balance bound).
//
// The clusters column must be constant down each dataset's rows — the
// exactness contract means tiling may only move time, never labels.
func (s *Suite) Tiles() error {
	section(s.Out, "Tiles: ε-halo tile-level parallelism (WithTiles)")
	fmt.Fprintln(s.Out, "-- 1 variant, no reuse, grid index, T =", s.Threads, "--")
	t := newTable("Dataset", "Eps", "Tiles", "Part", "MaxTile", "RunTime", "Speedup", "MergeFrac", "Clusters")
	// The Table II ε for each set, plus a dense-neighborhood row on the 1M
	// set (ε=2): the tile win is a locality effect, so it scales with the
	// candidate volume per search, not with |D| alone.
	for _, spec := range []struct {
		dataset string
		eps     float64
	}{
		{"cF_100k_5N", 4},
		{"cF_1M_5N", 0.5},
		{"cF_1M_5N", 2},
	} {
		ds, err := s.Dataset(spec.dataset)
		if err != nil {
			return err
		}
		p := dbscan.Params{Eps: s.scaleEps(spec.eps), MinPts: s1MinPts}
		ix := s.indexKind(ds, s.R, dbscan.IndexGrid)
		if err := ix.EnsureGrid(p.Eps); err != nil {
			return err
		}
		var untiled time.Duration
		for _, tiles := range tileSweep {
			tr := obs.NewTracer()
			clusters := 0
			wall, err := s.timeTrials(func() error {
				var m metrics.Counters
				tr.StartRun(time.Now(), "tiles", nil)
				start := time.Now()
				r, err := dbscan.RunParallelOpts(context.Background(), ix, p, dbscan.ParallelOptions{
					Workers: s.Threads,
					Tiles:   tiles,
					Rec:     tr.Worker(0),
				}, &m)
				tr.EndRun(time.Since(start))
				if r != nil {
					clusters = r.NumClusters
				}
				return err
			})
			if err != nil {
				return err
			}
			partKind, maxTile := "-", "-"
			if part := ix.TilePartition(tiles); tiles > 1 && part != nil {
				partKind = fmt.Sprintf("%s/%d", part.Kind(), part.Len())
				maxTile = fmt.Sprint(part.MaxTilePoints())
			}
			sp, mergeFrac := 1.0, "-"
			if tiles == 1 {
				untiled = wall
			} else {
				sp = speedup(untiled, wall)
				mergeFrac = fmt.Sprintf("%.1f%%", 100*tileMergeFraction(tr.Events()))
			}
			t.add(spec.dataset, p.Eps, tiles, partKind, maxTile, seconds(wall), sp, mergeFrac, clusters)
		}
	}
	t.write(s.Out)
	fmt.Fprintln(s.Out, "\nTiling pays when T workers can hold T tiles' halos in cache instead")
	fmt.Fprintln(s.Out, "of striding chunk-interleaved over the whole grid; the seam merge is")
	fmt.Fprintln(s.Out, "the overhead term and should stay a small fraction of the run.")
	return nil
}

// tileMergeFraction reads the last traced run and returns the
// PhaseTileMerge span as a fraction of the run's full makespan.
func tileMergeFraction(evs []obs.Event) float64 {
	var begin, end, total time.Duration
	for _, e := range evs {
		if e.At > total {
			total = e.At
		}
		if obs.Phase(e.Arg) != obs.PhaseTileMerge {
			continue
		}
		switch e.Kind {
		case obs.KindPhaseBegin:
			begin = e.At
		case obs.KindPhaseEnd:
			end = e.At
		}
	}
	if total <= 0 || end <= begin {
		return 0
	}
	return float64(end-begin) / float64(total)
}
