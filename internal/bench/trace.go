package bench

import (
	"fmt"
	"os"

	"vdbscan/internal/obs"
	"vdbscan/internal/reuse"
	"vdbscan/internal/sched"
	"vdbscan/internal/variant"
)

// traceVariants is the compact workload traced by Trace: a 6-variant subset
// of the S2 grid (A × {8, 16}) — small enough that the exported timeline
// stays readable, varied enough to exercise reuse, from-scratch execution,
// and seed selection (ε scaled per suite).
func (s *Suite) traceVariants() []variant.Variant {
	return variant.Product(s.scaleEpsAll([]float64{0.2, 0.4, 0.6}), []int{8, 16})
}

// Trace executes the traced demonstration run: the 6-variant workload on
// SW1 with SCHEDGREEDY + CLUSDENSITY and two-level scheduling across
// s.Threads workers, with an execution tracer attached. The plain-text
// timeline is printed to s.Out; when s.TracePath is non-empty the Chrome
// trace-event JSON (loadable in chrome://tracing or ui.perfetto.dev) is
// written there.
func (s *Suite) Trace() error {
	path := s.TracePath
	section(s.Out, "Execution trace: SW1, |V|=6, SCHEDGREEDY + CLUSDENSITY")
	ds, err := s.Dataset("SW1")
	if err != nil {
		return err
	}
	tr := obs.NewTracer()
	rr, err := sched.Execute(s.index(ds, s.R), s.traceVariants(), sched.Options{
		Threads:    s.Threads,
		Strategy:   sched.SchedGreedy,
		Scheme:     reuse.ClusDensity,
		DonateIdle: s.Threads > 1,
		Tracer:     tr,
	})
	if err != nil {
		return err
	}
	_ = rr
	if err := tr.WriteTimeline(s.Out); err != nil {
		return err
	}
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(s.Out, "\nwrote Chrome trace to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", path)
	return nil
}
