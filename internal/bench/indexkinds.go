package bench

import (
	"fmt"
	"time"

	"vdbscan/internal/dbscan"
	"vdbscan/internal/reuse"
	"vdbscan/internal/sched"
)

// IndexKinds runs the ε-search substrate head-to-head: the same variant
// workloads on the packed R-tree pair and on the flat cell grid
// (WithIndexKind). Two sections:
//
//   - S1 per dataset (16 identical variants, reuse disabled): pure
//     ε-search throughput, the regime where substrate choice dominates.
//   - S2 on SW1 (the 24-variant sweep with reuse): the end-to-end picture
//     where cluster-MBB sweeps and reuse dilute the substrate's share.
//
// The grid is built (EnsureGrid at the set's max ε) before timing, so both
// rows measure steady-state search cost; the build column reports what
// that preparation cost.
func (s *Suite) IndexKinds() error {
	section(s.Out, "Index kinds: packed R-tree vs flat cell grid (WithIndexKind)")

	fmt.Fprintln(s.Out, "-- S1: 16 identical variants, no reuse, T =", s.Threads, "--")
	t := newTable("Dataset", "Kind", "GridBuild", "RunTime", "Speedup", "Nodes/Cells", "Candidates")
	for _, spec := range s1Specs {
		ds, err := s.Dataset(spec.dataset)
		if err != nil {
			return err
		}
		p := dbscan.Params{Eps: s.scaleEps(spec.eps), MinPts: s1MinPts}
		vs := identicalVariants(p, s1NumVariants)
		var rtreeWall time.Duration
		for _, kind := range []dbscan.IndexKind{dbscan.IndexRTree, dbscan.IndexGrid} {
			ix := s.indexKind(ds, s.R, kind)
			buildStart := time.Now()
			if err := ix.EnsureGrid(p.Eps); err != nil {
				return err
			}
			gridBuild := time.Since(buildStart)
			_, wall, work, err := s.vdbRunIx(ix, vs, s.Threads, reuse.ClusDensity,
				sched.SchedGreedy, true /* no reuse: isolate the substrate */)
			if err != nil {
				return err
			}
			if kind == dbscan.IndexRTree {
				rtreeWall = wall
				t.add(spec.dataset, kind.String(), "-", seconds(wall), 1.0,
					work.NodesVisited, work.CandidatesExamined)
			} else {
				t.add(spec.dataset, kind.String(), seconds(gridBuild), seconds(wall),
					speedup(rtreeWall, wall), work.NodesVisited, work.CandidatesExamined)
			}
		}
	}
	t.write(s.Out)

	fmt.Fprintln(s.Out, "\n-- S2: 24-variant sweep on SW1 with reuse (CLUSDENSITY, T=1) --")
	ds, err := s.Dataset("SW1")
	if err != nil {
		return err
	}
	vs := s.s2Variants()
	maxEps := 0.0
	for _, v := range vs {
		if v.Params.Eps > maxEps {
			maxEps = v.Params.Eps
		}
	}
	t2 := newTable("Kind", "RunTime", "Speedup", "MeanFracReused", "Searches", "Candidates")
	var rtreeWall time.Duration
	for _, kind := range []dbscan.IndexKind{dbscan.IndexRTree, dbscan.IndexGrid} {
		ix := s.indexKind(ds, s.R, kind)
		if err := ix.EnsureGrid(maxEps); err != nil {
			return err
		}
		rr, wall, work, err := s.vdbRunIx(ix, vs, 1, reuse.ClusDensity, sched.SchedGreedy, false)
		if err != nil {
			return err
		}
		frac := 0.0
		for _, r := range rr.Results {
			frac += r.Stats.FractionReused
		}
		frac /= float64(len(rr.Results))
		sp := 1.0
		if kind == dbscan.IndexRTree {
			rtreeWall = wall
		} else {
			sp = speedup(rtreeWall, wall)
		}
		t2.add(kind.String(), seconds(wall), sp, frac,
			work.NeighborSearches, work.CandidatesExamined)
	}
	t2.write(s.Out)
	fmt.Fprintln(s.Out, "\nThe grid wins when cell occupancy is even (uniform-ish data, one")
	fmt.Fprintln(s.Out, "dominant eps); the R-tree holds up under density skew and keeps the")
	fmt.Fprintln(s.Out, "cluster-MBB sweep (T_high) that reuse requires on either kind.")
	return nil
}
