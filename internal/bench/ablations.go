package bench

import (
	"fmt"
	"time"

	"vdbscan/internal/dbscan"
	"vdbscan/internal/optics"
	"vdbscan/internal/reuse"
	"vdbscan/internal/rtree"
	"vdbscan/internal/sched"
	"vdbscan/internal/variant"
)

// Ablations regenerates the design-choice studies of DESIGN.md §5 on SW1:
// two-tree vs single-tree, bulk load vs dynamic insertion, seed-size
// filtering, OPTICS vs VariantDBSCAN for ε-sweeps, union-find vs expansion
// DBSCAN, and the SCHEDTREE extension vs the paper's heuristics.
func (s *Suite) Ablations() error {
	section(s.Out, "Ablations: design choices (SW1)")
	ds, err := s.Dataset("SW1")
	if err != nil {
		return err
	}
	vs := s.s2Variants()
	t := newTable("Ablation", "Config", "Time", "Notes")

	// 1. Two-tree vs single-tree cluster sweeps.
	ix := s.index(ds, s.R)
	single := &dbscan.Index{
		Pts: ix.Pts, X: ix.X, Y: ix.Y, Fwd: ix.Fwd,
		TLow: ix.TLow, THigh: ix.TLow,
		FlatLow: ix.FlatLow, FlatHigh: ix.FlatLow,
	}
	for _, cfg := range []struct {
		name string
		ix   *dbscan.Index
	}{{"two-tree", ix}, {"single-tree", single}} {
		start := time.Now()
		if _, err := sched.Execute(cfg.ix, vs, sched.Options{Threads: 1, Scheme: reuse.ClusDensity}); err != nil {
			return err
		}
		t.add("tree-design", cfg.name, seconds(time.Since(start)),
			"T_high sweeps vs low-res sweeps")
	}

	// 1b. Index layout: frozen flat arrays vs pointer-chasing tree. Same
	// trees, same output; only the traversal memory behavior differs.
	pointerIx := dbscan.BuildIndex(ds.Points, dbscan.IndexOptions{R: s.R, NoFlat: true})
	for _, cfg := range []struct {
		name string
		ix   *dbscan.Index
	}{{"flat", ix}, {"pointer", pointerIx}} {
		start := time.Now()
		if _, err := sched.Execute(cfg.ix, vs, sched.Options{Threads: 1, Scheme: reuse.ClusDensity}); err != nil {
			return err
		}
		t.add("index-layout", cfg.name, seconds(time.Since(start)),
			"SoA node arrays + iterative search vs heap nodes")
	}

	// 2. Bulk load vs dynamic insertion.
	start := time.Now()
	dbscan.BuildIndex(ds.Points, dbscan.IndexOptions{R: s.R, SkipHigh: true})
	t.add("index-build", "bulkload", seconds(time.Since(start)), fmt.Sprintf("%d points", ds.Len()))
	start = time.Now()
	dyn := rtree.New(rtree.Options{})
	for _, p := range ds.Points {
		dyn.Insert(p)
	}
	t.add("index-build", "insert", seconds(time.Since(start)), "quadratic-split inserts")

	// 3. Seed-size filtering.
	for _, minSize := range []int{0, 64} {
		start = time.Now()
		rr, err := sched.Execute(ix, vs, sched.Options{
			Threads: 1, Scheme: reuse.ClusDensity, MinSeedSize: minSize,
		})
		if err != nil {
			return err
		}
		t.add("seed-filter", fmt.Sprintf("minSize=%d", minSize), seconds(time.Since(start)),
			fmt.Sprintf("meanReuse=%.1f%%", rr.MeanFractionReused()*100))
	}

	// 4. OPTICS vs VariantDBSCAN on an ε-only sweep at fixed minpts.
	epsSweep := s.scaleEpsAll([]float64{0.2, 0.3, 0.4, 0.5, 0.6})
	start = time.Now()
	ord, err := optics.Run(ix, epsSweep[len(epsSweep)-1], 4, nil)
	if err != nil {
		return err
	}
	for _, e := range epsSweep {
		if _, err := ord.ExtractDBSCAN(e); err != nil {
			return err
		}
	}
	t.add("eps-sweep", "optics", seconds(time.Since(start)),
		fmt.Sprintf("%d extractions from one ordering", len(epsSweep)))
	var ps []dbscan.Params
	for _, e := range epsSweep {
		ps = append(ps, dbscan.Params{Eps: e, MinPts: 4})
	}
	start = time.Now()
	if _, err := sched.Execute(ix, variant.New(ps), sched.Options{Threads: 1, Scheme: reuse.ClusDensity}); err != nil {
		return err
	}
	t.add("eps-sweep", "variantdbscan", seconds(time.Since(start)),
		"also supports varying minpts (OPTICS cannot)")

	// 5. Expansion vs union-find single-variant DBSCAN.
	p := dbscan.Params{Eps: s.scaleEps(0.4), MinPts: 4}
	start = time.Now()
	if _, err := dbscan.Run(ix, p, nil); err != nil {
		return err
	}
	t.add("dbscan-core", "expansion", seconds(time.Since(start)), p.String())
	start = time.Now()
	if _, err := dbscan.RunDisjointSet(ix, p, nil); err != nil {
		return err
	}
	t.add("dbscan-core", "unionfind", seconds(time.Since(start)), "disjoint-set formulation")

	// 6. Intra-variant parallel DBSCAN vs variant-level parallelism.
	start = time.Now()
	for _, v := range ps {
		if _, err := dbscan.RunParallel(ix, v, s.Threads, nil); err != nil {
			return err
		}
	}
	t.add("parallel-grain", "intra-variant", seconds(time.Since(start)),
		"master/worker range queries (§III)")
	start = time.Now()
	if _, err := sched.Execute(ix, variant.New(ps), sched.Options{Threads: s.Threads, Scheme: reuse.ClusDensity}); err != nil {
		return err
	}
	t.add("parallel-grain", "variant-level", seconds(time.Since(start)),
		"VariantDBSCAN with reuse")

	// 7. Scheduling: the SCHEDTREE extension vs the paper's heuristics.
	for _, strategy := range sched.AllStrategies {
		start = time.Now()
		rr, err := sched.Execute(ix, vs, sched.Options{
			Threads: s.Threads, Scheme: reuse.ClusDensity, Strategy: strategy,
		})
		if err != nil {
			return err
		}
		t.add("scheduling", strategy.String(), seconds(time.Since(start)),
			fmt.Sprintf("meanReuse=%.1f%% slowdownOverLB=%.1f%%",
				rr.MeanFractionReused()*100, rr.SlowdownOverLowerBound()*100))
	}

	t.write(s.Out)
	return nil
}
