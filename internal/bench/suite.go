package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"vdbscan/internal/data"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/metrics"
	"vdbscan/internal/reuse"
	"vdbscan/internal/sched"
	"vdbscan/internal/stats"
	"vdbscan/internal/tec"
	"vdbscan/internal/variant"
)

// Suite runs the paper's experiments at a configurable dataset scale.
type Suite struct {
	// Scale multiplies every dataset's |D| (0 < Scale ≤ 1); 1 reproduces
	// the paper's sizes. ε values are multiplied by 1/√Scale to keep
	// neighborhood populations comparable as density drops (the region is
	// fixed, so density scales with |D|).
	Scale float64
	// Threads is the pool size T for the multithreaded scenarios; the
	// paper uses 16.
	Threads int
	// Seed drives all dataset generation.
	Seed uint64
	// R is the tuned ε-search leaf occupancy; the paper uses 70 for S2/S3.
	R int
	// Trials is the number of repetitions averaged for every timed
	// measurement; the paper averages 3. Default 1 keeps laptop runs fast.
	Trials int
	// Out receives the rendered tables.
	Out io.Writer
	// TracePath, when non-empty, is where Trace writes its Chrome
	// trace-event JSON (the plain-text timeline always goes to Out).
	TracePath string
	// IndexKind selects the ε-search substrate every scenario runs on
	// (IndexRTree when zero). The "indexkinds" experiment ignores it and
	// runs both kinds head-to-head.
	IndexKind dbscan.IndexKind

	datasets map[string]*data.Dataset
	indexes  map[string]*dbscan.Index // keyed by name/r
}

// NewSuite returns a Suite with the paper's defaults at the given scale.
func NewSuite(scale float64, out io.Writer) *Suite {
	return &Suite{
		Scale:    scale,
		Threads:  16,
		Trials:   1,
		Seed:     0xDB5CA7,
		R:        dbscan.DefaultR,
		Out:      out,
		datasets: map[string]*data.Dataset{},
		indexes:  map[string]*dbscan.Index{},
	}
}

// EpsFactor is the ε multiplier compensating for dataset scaling.
func (s *Suite) EpsFactor() float64 {
	return 1 / math.Sqrt(s.Scale)
}

// scaleEps applies EpsFactor to one value.
func (s *Suite) scaleEps(eps float64) float64 { return eps * s.EpsFactor() }

// scaleEpsAll applies EpsFactor to a set of ε values.
func (s *Suite) scaleEpsAll(eps []float64) []float64 {
	out := make([]float64, len(eps))
	for i, e := range eps {
		out[i] = s.scaleEps(e)
	}
	return out
}

// Dataset returns (generating and caching on first use) the named dataset:
// Table I synthetic names (cF_1M_5N, ...) or SW1..SW4.
func (s *Suite) Dataset(name string) (*data.Dataset, error) {
	if ds, ok := s.datasets[name]; ok {
		return ds, nil
	}
	var ds *data.Dataset
	var err error
	switch name {
	case "SW1", "SW2", "SW3", "SW4":
		ds, err = tec.SW(int(name[2]-'0'), s.Scale)
	default:
		class, n, noise, perr := parseSynthName(name)
		if perr != nil {
			return nil, perr
		}
		scaled := int(float64(n) * s.Scale)
		if scaled < 1 {
			scaled = 1
		}
		// Preserve the full-size dataset's structure at reduced |D|: keep
		// the paper-rule cluster count of the FULL size and stretch every
		// length (cluster sigma) by the same 1/√scale factor the ε values
		// get, so point density per ε-ball matches the full-size run.
		fullClusters := int(float64(n) * 1e-4)
		if fullClusters < 1 {
			fullClusters = 1
		}
		ds, err = data.Generate(data.SynthConfig{
			Class:     class,
			N:         scaled,
			NoiseFrac: noise,
			Sigma:     data.DefaultSigma * s.EpsFactor(),
			Clusters:  fullClusters,
			Seed:      s.Seed + uint64(len(s.datasets))*0x9E37,
		})
		if ds != nil {
			ds.Name = name
		}
	}
	if err != nil {
		return nil, err
	}
	s.datasets[name] = ds
	return ds, nil
}

// parseSynthName decodes the paper's synthetic dataset naming
// (cF_1M_5N → ClassCF, 1e6, 0.05).
func parseSynthName(name string) (data.SynthClass, int, float64, error) {
	var class data.SynthClass
	switch {
	case len(name) > 2 && name[:2] == "cF":
		class = data.ClassCF
	case len(name) > 2 && name[:2] == "cV":
		class = data.ClassCV
	default:
		return 0, 0, 0, fmt.Errorf("bench: unknown dataset %q", name)
	}
	if len(name) < 4 || name[2] != '_' {
		return 0, 0, 0, fmt.Errorf("bench: unparseable dataset name %q", name)
	}
	var noisePct float64
	rest := name[3:]
	us := -1
	for i, c := range rest {
		if c == '_' {
			us = i
			break
		}
	}
	if us < 0 {
		return 0, 0, 0, fmt.Errorf("bench: unparseable dataset name %q", name)
	}
	sizeTag := rest[:us]
	if _, err := fmt.Sscanf(rest[us+1:], "%fN", &noisePct); err != nil {
		return 0, 0, 0, fmt.Errorf("bench: unparseable noise in %q", name)
	}
	var n int
	switch sizeTag {
	case "1M":
		n = 1_000_000
	case "100k":
		n = 100_000
	case "10k":
		n = 10_000
	default:
		if _, err := fmt.Sscanf(sizeTag, "%d", &n); err != nil {
			return 0, 0, 0, fmt.Errorf("bench: unparseable size in %q", name)
		}
	}
	return class, n, noisePct / 100, nil
}

// index returns a cached shared index for a dataset at leaf occupancy r,
// built with the suite's configured index kind.
func (s *Suite) index(ds *data.Dataset, r int) *dbscan.Index {
	return s.indexKind(ds, r, s.IndexKind)
}

// indexKind is index with an explicit substrate (used by the head-to-head
// experiment, which needs both kinds over one dataset).
func (s *Suite) indexKind(ds *data.Dataset, r int, kind dbscan.IndexKind) *dbscan.Index {
	key := fmt.Sprintf("%s/%d/%s", ds.Name, r, kind)
	if ix, ok := s.indexes[key]; ok {
		return ix
	}
	ix := dbscan.BuildIndex(ds.Points, dbscan.IndexOptions{R: r, Kind: kind})
	s.indexes[key] = ix
	return ix
}

// trials returns the effective repetition count.
func (s *Suite) trials() int {
	if s.Trials < 1 {
		return 1
	}
	return s.Trials
}

// timeTrials runs f Trials times and returns the mean wall time.
func (s *Suite) timeTrials(f func() error) (time.Duration, error) {
	times := make([]float64, 0, s.trials())
	for t := 0; t < s.trials(); t++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start).Seconds())
	}
	return time.Duration(stats.Mean(times) * float64(time.Second)), nil
}

// refRun executes the reference implementation: sequential DBSCAN (T=1,
// r=1, no reuse) over every variant, returning the mean total response
// time over Trials repetitions and the last trial's work.
func (s *Suite) refRun(ds *data.Dataset, vs []variant.Variant) (time.Duration, metrics.Snapshot, error) {
	ix := s.index(ds, 1)
	var m metrics.Counters
	mean, err := s.timeTrials(func() error {
		m.Reset()
		for _, v := range vs {
			if _, err := dbscan.Run(ix, v.Params, &m); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	return mean, m.Snapshot(), nil
}

// vdbRun executes VariantDBSCAN over vs with the given configuration and
// returns the run, the wall time, and the accumulated work.
func (s *Suite) vdbRun(ds *data.Dataset, vs []variant.Variant, threads int,
	scheme reuse.Scheme, strategy sched.Strategy, disableReuse bool, r int,
) (*sched.RunResult, time.Duration, metrics.Snapshot, error) {
	return s.vdbRunIx(s.index(ds, r), vs, threads, scheme, strategy, disableReuse)
}

// vdbRunIx is vdbRun over an explicitly built index (the head-to-head
// experiment times the same variant set on different substrates).
func (s *Suite) vdbRunIx(ix *dbscan.Index, vs []variant.Variant, threads int,
	scheme reuse.Scheme, strategy sched.Strategy, disableReuse bool,
) (*sched.RunResult, time.Duration, metrics.Snapshot, error) {
	var m metrics.Counters
	var rr *sched.RunResult
	mean, err := s.timeTrials(func() error {
		m.Reset()
		var err error
		rr, err = sched.Execute(ix, vs, sched.Options{
			Threads:      threads,
			Strategy:     strategy,
			Scheme:       scheme,
			DisableReuse: disableReuse,
			Metrics:      &m,
		})
		return err
	})
	if err != nil {
		return nil, 0, metrics.Snapshot{}, err
	}
	return rr, mean, m.Snapshot(), nil
}

// identicalVariants builds scenario S1's workload: n copies of one variant.
func identicalVariants(p dbscan.Params, n int) []variant.Variant {
	params := make([]dbscan.Params, n)
	for i := range params {
		params[i] = p
	}
	return variant.New(params)
}

// seconds renders a duration in seconds with millisecond precision.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// speedup is the paper's relative speedup: reference time / measured time
// (11.01x corresponds to the paper's "1101% faster").
func speedup(ref, got time.Duration) float64 {
	if got <= 0 {
		return 0
	}
	return float64(ref) / float64(got)
}
