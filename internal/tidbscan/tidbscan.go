// Package tidbscan implements TI-DBSCAN (Kryszkiewicz & Lasek, RSCTC
// 2010) — the paper's reference [21]: DBSCAN without any spatial index,
// using the triangle inequality to prune ε-neighborhood candidates.
//
// Points are sorted by their distance to a fixed reference point r. For a
// query point p with d(p, r) = δ, every neighbor q must satisfy
// |d(q, r) − δ| ≤ ε (triangle inequality), so the candidate set is a
// contiguous window of the sorted order found by binary search. The window
// is distance-filtered exactly.
//
// The pruning quality depends on how well distance-to-reference separates
// points; for 2-D data it is typically much weaker than an R-tree or grid
// (a ring of equal reference-distance spans the whole dataset), which is
// why it serves here as a baseline rather than a production index — and as
// another independent oracle.
package tidbscan

import (
	"sort"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

// Index is the reference-distance-sorted point order.
type Index struct {
	pts  []geom.Point // sorted by refDist
	dist []float64    // dist[i] = d(pts[i], ref), ascending
	fwd  []int        // sorted index -> original index
	ref  geom.Point
}

// Build sorts pts by distance to a reference point (the bounding box's
// minimum corner, per the TI-DBSCAN paper's recommendation).
func Build(pts []geom.Point) *Index {
	b := geom.MBBOfPoints(pts)
	ref := geom.Point{X: b.MinX, Y: b.MinY}
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	dist := make([]float64, len(pts))
	for i, p := range pts {
		dist[i] = ref.Dist(p)
	}
	sort.SliceStable(order, func(a, b int) bool { return dist[order[a]] < dist[order[b]] })

	ix := &Index{
		pts:  make([]geom.Point, len(pts)),
		dist: make([]float64, len(pts)),
		fwd:  order,
		ref:  ref,
	}
	for si, oi := range order {
		ix.pts[si] = pts[oi]
		ix.dist[si] = dist[oi]
	}
	return ix
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pts) }

// Fwd maps sorted index -> original index.
func (ix *Index) Fwd() []int { return ix.fwd }

// NeighborSearch appends the sorted-space indices of points within eps of
// sorted point i (including itself). Candidates come from the contiguous
// reference-distance window [d_i − ε, d_i + ε].
func (ix *Index) NeighborSearch(i int32, eps float64, m *metrics.Counters, dst []int32) []int32 {
	d := ix.dist[i]
	lo := sort.SearchFloat64s(ix.dist, d-eps)
	hi := sort.SearchFloat64s(ix.dist, d+eps)
	// hi is the first index with dist >= d+eps; points at exactly d+eps are
	// still candidates (distance could equal eps), so extend over ties.
	for hi < len(ix.dist) && ix.dist[hi] <= d+eps {
		hi++
	}
	epsSq := eps * eps
	q := ix.pts[i]
	for j := lo; j < hi; j++ {
		if q.DistSq(ix.pts[j]) <= epsSq {
			dst = append(dst, int32(j))
		}
	}
	m.AddNeighborSearches(1)
	m.AddCandidatesExamined(int64(hi - lo))
	m.AddNeighborsFound(int64(len(dst)))
	return dst
}

// Run executes DBSCAN over the TI index; labels are in sorted space (use
// Fwd with cluster.Result.Remap for the caller's order). m may be nil.
func Run(ix *Index, p dbscan.Params, m *metrics.Counters) (*cluster.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := ix.Len()
	res := cluster.NewResult(n)
	visited := make([]bool, n)
	var cid int32
	queue := make([]int32, 0, 1024)
	var scratch []int32
	absorb := func(neighbors []int32, cid int32) {
		for _, k := range neighbors {
			if !visited[k] {
				visited[k] = true
				queue = append(queue, k)
			}
			if res.Labels[k] <= 0 {
				res.Labels[k] = cid
			}
		}
	}
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		scratch = ix.NeighborSearch(int32(i), p.Eps, m, scratch[:0])
		if len(scratch) < p.MinPts {
			res.Labels[i] = cluster.Noise
			continue
		}
		cid++
		res.Labels[i] = cid
		queue = queue[:0]
		absorb(scratch, cid)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			scratch = ix.NeighborSearch(j, p.Eps, m, scratch[:0])
			if len(scratch) >= p.MinPts {
				absorb(scratch, cid)
			}
		}
	}
	res.NumClusters = int(cid)
	return res, nil
}
