package tidbscan

import (
	"math/rand"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

func blobs(k, m, noise int, extent, sigma float64, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, k*m+noise)
	for c := 0; c < k; c++ {
		cx, cy := rnd.Float64()*extent, rnd.Float64()*extent
		for i := 0; i < m; i++ {
			pts = append(pts, geom.Point{
				X: cx + rnd.NormFloat64()*sigma,
				Y: cy + rnd.NormFloat64()*sigma,
			})
		}
	}
	for i := 0; i < noise; i++ {
		pts = append(pts, geom.Point{X: rnd.Float64() * extent, Y: rnd.Float64() * extent})
	}
	return pts
}

func TestBuildSortedByRefDist(t *testing.T) {
	pts := blobs(2, 100, 50, 20, 0.5, 1)
	ix := Build(pts)
	if ix.Len() != len(pts) {
		t.Fatalf("Len = %d", ix.Len())
	}
	for i := 1; i < ix.Len(); i++ {
		if ix.dist[i] < ix.dist[i-1] {
			t.Fatal("distances not ascending")
		}
	}
	// fwd is a permutation.
	seen := make([]bool, len(pts))
	for _, oi := range ix.Fwd() {
		if seen[oi] {
			t.Fatal("fwd not a permutation")
		}
		seen[oi] = true
	}
}

func TestNeighborSearchMatchesLinear(t *testing.T) {
	pts := blobs(3, 200, 100, 25, 0.7, 2)
	ix := Build(pts)
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		i := int32(rnd.Intn(ix.Len()))
		eps := 0.3 + rnd.Float64()*2
		got := ix.NeighborSearch(i, eps, nil, nil)
		want := 0
		q := ix.pts[i]
		for _, p := range ix.pts {
			if q.DistSq(p) <= eps*eps {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("search(%d, %g) = %d, want %d", i, eps, len(got), want)
		}
	}
}

func TestTriangleInequalityPrunes(t *testing.T) {
	// The window must examine fewer candidates than a full scan on data
	// spread along the reference axis.
	pts := blobs(5, 200, 100, 60, 0.5, 4)
	ix := Build(pts)
	var m metrics.Counters
	for i := 0; i < ix.Len(); i++ {
		ix.NeighborSearch(int32(i), 0.5, &m, nil)
	}
	s := m.Snapshot()
	full := int64(ix.Len()) * int64(ix.Len())
	if s.CandidatesExamined >= full {
		t.Errorf("no pruning: %d candidates vs %d full", s.CandidatesExamined, full)
	}
	if s.CandidatesExamined < s.NeighborsFound {
		t.Error("candidates < neighbors")
	}
}

func TestRunMatchesReferenceDBSCAN(t *testing.T) {
	pts := blobs(4, 150, 100, 25, 0.6, 5)
	p := dbscan.Params{Eps: 0.8, MinPts: 4}
	ix := Build(pts)
	got, err := Run(ix, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotOrig := got.Remap(ix.Fwd())
	want, err := dbscan.RunBruteForce(pts, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotOrig.NumClusters != want.NumClusters {
		t.Fatalf("clusters: ti %d vs brute %d", gotOrig.NumClusters, want.NumClusters)
	}
	if gotOrig.NumNoise() != want.NumNoise() {
		t.Fatalf("noise: ti %d vs brute %d", gotOrig.NumNoise(), want.NumNoise())
	}
	if d := cluster.DisagreementCount(gotOrig, want); d > len(pts)/200 {
		t.Fatalf("disagreements = %d", d)
	}
}

func TestRunValidationAndEdgeCases(t *testing.T) {
	ix := Build(nil)
	res, err := Run(ix, dbscan.Params{Eps: 1, MinPts: 3}, nil)
	if err != nil || res.Len() != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	if _, err := Run(ix, dbscan.Params{Eps: 0, MinPts: 3}, nil); err == nil {
		t.Error("bad params accepted")
	}
	// Duplicates at the reference corner (distance 0 window).
	dup := make([]geom.Point, 20)
	for i := range dup {
		dup[i] = geom.Point{X: 1, Y: 1}
	}
	ix = Build(dup)
	res, _ = Run(ix, dbscan.Params{Eps: 0.5, MinPts: 4}, nil)
	if res.NumClusters != 1 || res.NumClustered() != 20 {
		t.Fatalf("duplicates: %v", res)
	}
}

func TestBoundaryExactlyEps(t *testing.T) {
	// Two points exactly eps apart along the reference diagonal: the window
	// tie-extension must keep them mutual neighbors.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}} // ref (0,0); dist 0 and 5
	ix := Build(pts)
	got := ix.NeighborSearch(0, 5, nil, nil)
	if len(got) != 2 {
		t.Fatalf("exact-eps neighbors = %d, want 2", len(got))
	}
}
