package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{0, 0}, Point{0, 2.5}, 2.5},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %g, want %g", c.p, c.q, got, c.want)
		}
		if got := c.p.DistSq(c.q); math.Abs(got-c.want*c.want) > 1e-9 {
			t.Errorf("DistSq(%v, %v) = %g, want %g", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{ax, ay}, Point{bx, by}
		return p.Dist(q) == q.Dist(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithin(t *testing.T) {
	p := Point{0, 0}
	if !p.Within(Point{1, 0}, 1) {
		t.Error("point at exactly eps should be within (inclusive)")
	}
	if p.Within(Point{1.0001, 0}, 1) {
		t.Error("point beyond eps should not be within")
	}
	if !p.Within(p, 0) {
		t.Error("a point is within eps=0 of itself")
	}
}

func TestEmptyMBB(t *testing.T) {
	e := EmptyMBB()
	if !e.IsEmpty() {
		t.Fatal("EmptyMBB should be empty")
	}
	if e.Area() != 0 {
		t.Errorf("empty area = %g, want 0", e.Area())
	}
	if e.ContainsPoint(Point{0, 0}) {
		t.Error("empty box contains no points")
	}
	if e.Intersects(MBBOf(Point{0, 0})) {
		t.Error("empty box intersects nothing")
	}
	// Union with empty is identity.
	b := MBB{0, 0, 2, 3}
	if got := e.Union(b); got != b {
		t.Errorf("empty.Union(b) = %v, want %v", got, b)
	}
	if got := b.Union(e); got != b {
		t.Errorf("b.Union(empty) = %v, want %v", got, b)
	}
	// Expanding the empty box keeps it empty.
	if !e.Expand(5).IsEmpty() {
		t.Error("expanded empty box should stay empty")
	}
}

func TestMBBOfPoints(t *testing.T) {
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	b := MBBOfPoints(pts)
	want := MBB{MinX: -2, MinY: -1, MaxX: 4, MaxY: 5}
	if b != want {
		t.Errorf("MBBOfPoints = %v, want %v", b, want)
	}
	for _, p := range pts {
		if !b.ContainsPoint(p) {
			t.Errorf("box %v should contain %v", b, p)
		}
	}
	if got := MBBOfPoints(nil); !got.IsEmpty() {
		t.Errorf("MBBOfPoints(nil) = %v, want empty", got)
	}
}

func TestQueryMBB(t *testing.T) {
	b := QueryMBB(Point{10, 20}, 0.5)
	want := MBB{MinX: 9.5, MinY: 19.5, MaxX: 10.5, MaxY: 20.5}
	if b != want {
		t.Errorf("QueryMBB = %v, want %v", b, want)
	}
	// Every point within eps of the center must be inside the query box.
	f := func(dx, dy float64) bool {
		dx = math.Mod(dx, 0.5)
		dy = math.Mod(dy, 0.5)
		if math.IsNaN(dx) || math.IsNaN(dy) {
			return true
		}
		p := Point{10 + dx, 20 + dy}
		if Point.Dist(Point{10, 20}, p) <= 0.5 {
			return b.ContainsPoint(p)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpand(t *testing.T) {
	b := MBB{0, 0, 1, 1}
	e := b.Expand(2)
	want := MBB{-2, -2, 3, 3}
	if e != want {
		t.Errorf("Expand = %v, want %v", e, want)
	}
	if !e.ContainsMBB(b) {
		t.Error("expanded box must contain original")
	}
}

func TestIntersects(t *testing.T) {
	a := MBB{0, 0, 2, 2}
	cases := []struct {
		b    MBB
		want bool
	}{
		{MBB{1, 1, 3, 3}, true},     // overlap
		{MBB{2, 2, 4, 4}, true},     // touching corner (inclusive)
		{MBB{3, 3, 4, 4}, false},    // disjoint
		{MBB{0.5, 0.5, 1, 1}, true}, // contained
		{MBB{-1, 0, 0, 2}, true},    // touching edge
		{MBB{0, 3, 2, 4}, false},    // disjoint in y only
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects not symmetric for %v, %v", a, c.b)
		}
	}
}

func TestUnionProperties(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	randBox := func() MBB {
		x, y := rnd.Float64()*100, rnd.Float64()*100
		return MBB{x, y, x + rnd.Float64()*10, y + rnd.Float64()*10}
	}
	for i := 0; i < 200; i++ {
		a, b := randBox(), randBox()
		u := a.Union(b)
		if !u.ContainsMBB(a) || !u.ContainsMBB(b) {
			t.Fatalf("union %v of %v,%v does not contain operands", u, a, b)
		}
		if u != b.Union(a) {
			t.Fatalf("union not commutative: %v vs %v", u, b.Union(a))
		}
		if u.Area() < a.Area() || u.Area() < b.Area() {
			t.Fatalf("union area shrank")
		}
		if a.Enlargement(b) < 0 {
			t.Fatalf("enlargement negative")
		}
	}
}

func TestContainsMBB(t *testing.T) {
	outer := MBB{0, 0, 10, 10}
	if !outer.ContainsMBB(MBB{1, 1, 9, 9}) {
		t.Error("should contain inner box")
	}
	if !outer.ContainsMBB(outer) {
		t.Error("box contains itself")
	}
	if outer.ContainsMBB(MBB{5, 5, 11, 9}) {
		t.Error("should not contain partially-outside box")
	}
	if outer.ContainsMBB(EmptyMBB()) {
		t.Error("containment of the empty box is defined false")
	}
}

func TestAreaPerimeterCenter(t *testing.T) {
	b := MBB{1, 2, 4, 6}
	if got := b.Area(); got != 12 {
		t.Errorf("Area = %g, want 12", got)
	}
	if got := b.Perimeter(); got != 7 {
		t.Errorf("Perimeter = %g, want 7", got)
	}
	if got := b.Center(); got != (Point{2.5, 4}) {
		t.Errorf("Center = %v, want (2.5, 4)", got)
	}
	// Degenerate box: zero area but nonzero perimeter.
	d := MBB{1, 1, 1, 5}
	if d.Area() != 0 || d.Perimeter() != 4 {
		t.Errorf("degenerate box: area=%g perim=%g", d.Area(), d.Perimeter())
	}
}

func TestMinDistSq(t *testing.T) {
	b := MBB{0, 0, 2, 2}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{1, 1}, 0},  // inside
		{Point{2, 2}, 0},  // on corner
		{Point{3, 2}, 1},  // right of box
		{Point{-2, 1}, 4}, // left of box
		{Point{3, 3}, 2},  // diagonal from corner
		{Point{1, -3}, 9}, // below
	}
	for _, c := range cases {
		if got := b.MinDistSq(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinDistSq(%v) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestMinDistSqLowerBoundsTrueDist(t *testing.T) {
	// MinDistSq must never exceed the squared distance to any point in the box.
	rnd := rand.New(rand.NewSource(42))
	b := MBB{10, 10, 20, 30}
	for i := 0; i < 500; i++ {
		q := Point{10 + rnd.Float64()*10, 10 + rnd.Float64()*20}
		p := Point{rnd.Float64()*60 - 15, rnd.Float64()*60 - 15}
		if b.MinDistSq(p) > p.DistSq(q)+1e-9 {
			t.Fatalf("MinDistSq(%v)=%g exceeds dist² to interior point %v (%g)",
				p, b.MinDistSq(p), q, p.DistSq(q))
		}
	}
}

func TestStringers(t *testing.T) {
	if s := (Point{1, 2}).String(); s != "(1, 2)" {
		t.Errorf("Point.String = %q", s)
	}
	if s := EmptyMBB().String(); s != "MBB(empty)" {
		t.Errorf("empty MBB String = %q", s)
	}
	if s := (MBB{0, 0, 1, 1}).String(); s == "" {
		t.Error("MBB String empty")
	}
}
