// Package geom provides the 2-D geometric primitives used throughout the
// VariantDBSCAN implementation: points, minimum bounding boxes (MBBs), and
// distance computations.
//
// The paper operates on a database D of 2-D points (x, y) — thresholded
// Total Electron Content samples in the space-weather application — and all
// spatial reasoning is done with axis-aligned MBBs (R-tree entries, query
// boxes enlarged by ε, and cluster-circumscribing boxes).
package geom

import (
	"fmt"
	"math"
)

// Point is a single 2-D observation. For the space-weather datasets X and Y
// are longitude-like and latitude-like coordinates in degrees, but the
// algorithms are unit-agnostic.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance between p and q. The DBSCAN
// inner loops compare squared distances against ε² to avoid the sqrt.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Within reports whether q lies within distance eps of p.
func (p Point) Within(q Point, eps float64) bool {
	return p.DistSq(q) <= eps*eps
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%g, %g)", p.X, p.Y)
}

// MBB is an axis-aligned minimum bounding box with inclusive bounds.
// The zero value is not a valid box; use EmptyMBB to start accumulating.
type MBB struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyMBB returns the identity element for Extend/Union: a box that
// contains nothing and unions to the other operand.
func EmptyMBB() MBB {
	return MBB{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether the box is the empty box (contains no points).
func (b MBB) IsEmpty() bool {
	return b.MinX > b.MaxX || b.MinY > b.MaxY
}

// MBBOf returns the degenerate box containing exactly p.
func MBBOf(p Point) MBB {
	return MBB{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// MBBOfPoints returns the smallest box containing every point in pts,
// or the empty box when pts is empty.
func MBBOfPoints(pts []Point) MBB {
	b := EmptyMBB()
	for _, p := range pts {
		b = b.ExtendPoint(p)
	}
	return b
}

// QueryMBB builds the ε-augmented query box around p used by
// NeighborSearch (Algorithm 2):
//
//	MBB_min = (x−ε, y−ε), MBB_max = (x+ε, y+ε).
func QueryMBB(p Point, eps float64) MBB {
	return MBB{MinX: p.X - eps, MinY: p.Y - eps, MaxX: p.X + eps, MaxY: p.Y + eps}
}

// Expand returns b grown by d on every side. Used to augment a cluster's
// circumscribing box by ε (Algorithm 3, line 10).
func (b MBB) Expand(d float64) MBB {
	if b.IsEmpty() {
		return b
	}
	return MBB{MinX: b.MinX - d, MinY: b.MinY - d, MaxX: b.MaxX + d, MaxY: b.MaxY + d}
}

// ExtendPoint returns the smallest box containing b and p.
func (b MBB) ExtendPoint(p Point) MBB {
	if b.IsEmpty() {
		return MBBOf(p)
	}
	if p.X < b.MinX {
		b.MinX = p.X
	}
	if p.Y < b.MinY {
		b.MinY = p.Y
	}
	if p.X > b.MaxX {
		b.MaxX = p.X
	}
	if p.Y > b.MaxY {
		b.MaxY = p.Y
	}
	return b
}

// Union returns the smallest box containing both b and o.
func (b MBB) Union(o MBB) MBB {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	if o.MinX < b.MinX {
		b.MinX = o.MinX
	}
	if o.MinY < b.MinY {
		b.MinY = o.MinY
	}
	if o.MaxX > b.MaxX {
		b.MaxX = o.MaxX
	}
	if o.MaxY > b.MaxY {
		b.MaxY = o.MaxY
	}
	return b
}

// Intersects reports whether b and o overlap (inclusive of touching edges).
func (b MBB) Intersects(o MBB) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.MinX <= o.MaxX && o.MinX <= b.MaxX &&
		b.MinY <= o.MaxY && o.MinY <= b.MaxY
}

// ContainsPoint reports whether p lies inside b (inclusive).
func (b MBB) ContainsPoint(p Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// ContainsMBB reports whether o lies entirely inside b.
func (b MBB) ContainsMBB(o MBB) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return o.MinX >= b.MinX && o.MaxX <= b.MaxX &&
		o.MinY >= b.MinY && o.MaxY <= b.MaxY
}

// Area returns the area of b; the empty box has area 0. Degenerate boxes
// (single points, lines) also have area 0, which callers that divide by
// area must guard against (see the cluster density measures).
func (b MBB) Area() float64 {
	if b.IsEmpty() {
		return 0
	}
	return (b.MaxX - b.MinX) * (b.MaxY - b.MinY)
}

// Perimeter returns half the perimeter (width + height); used as a
// tie-break measure during R-tree node splits.
func (b MBB) Perimeter() float64 {
	if b.IsEmpty() {
		return 0
	}
	return (b.MaxX - b.MinX) + (b.MaxY - b.MinY)
}

// Center returns the box midpoint.
func (b MBB) Center() Point {
	return Point{X: (b.MinX + b.MaxX) / 2, Y: (b.MinY + b.MaxY) / 2}
}

// Enlargement returns how much b's area grows if extended to contain o.
func (b MBB) Enlargement(o MBB) float64 {
	return b.Union(o).Area() - b.Area()
}

// MinDistSq returns the squared distance from p to the nearest point of b
// (0 when p is inside b). It lets ε-searches prune an MBB whose nearest
// corner already lies farther than ε.
func (b MBB) MinDistSq(p Point) float64 {
	var dx, dy float64
	switch {
	case p.X < b.MinX:
		dx = b.MinX - p.X
	case p.X > b.MaxX:
		dx = p.X - b.MaxX
	}
	switch {
	case p.Y < b.MinY:
		dy = b.MinY - p.Y
	case p.Y > b.MaxY:
		dy = p.Y - b.MaxY
	}
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (b MBB) String() string {
	if b.IsEmpty() {
		return "MBB(empty)"
	}
	return fmt.Sprintf("MBB[(%g, %g)-(%g, %g)]", b.MinX, b.MinY, b.MaxX, b.MaxY)
}
