package tiling_test

import (
	"math/rand"
	"testing"

	"vdbscan/internal/gridindex"
	"vdbscan/internal/tiling"
)

func freeze(t *testing.T, n int, extent, side float64, seed int64, skew bool) *gridindex.Flat {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		if skew && i%4 != 0 {
			// Three quarters of the mass in one corner blob.
			xs[i] = rnd.NormFloat64() * extent / 20
			ys[i] = rnd.NormFloat64() * extent / 20
		} else {
			xs[i] = rnd.Float64() * extent
			ys[i] = rnd.Float64() * extent
		}
	}
	g, err := gridindex.Freeze(xs, ys, side)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestBuildCoversEveryCellOnce: the tile rectangles partition the grid —
// every cell in exactly one tile, every point owned by exactly one tile,
// and TileOf/Counts agreeing with the rectangles.
func TestBuildCoversEveryCellOnce(t *testing.T) {
	for _, skew := range []bool{false, true} {
		g := freeze(t, 5000, 100, 1.5, 11, skew)
		cols, rows := g.Shape()
		for _, target := range []int{2, 3, 4, 7, 9, 16} {
			p := tiling.Build(g, target)
			if p == nil {
				t.Fatalf("skew=%v target=%d: nil partition", skew, target)
			}
			cellOwner := make([]int, int(cols)*int(rows))
			for i := range cellOwner {
				cellOwner[i] = -1
			}
			for ti, rect := range p.Tiles() {
				for r := rect.R0; r < rect.R1; r++ {
					for c := rect.C0; c < rect.C1; c++ {
						i := int(r)*int(cols) + int(c)
						if cellOwner[i] != -1 {
							t.Fatalf("skew=%v target=%d: cell (%d,%d) in tiles %d and %d",
								skew, target, r, c, cellOwner[i], ti)
						}
						cellOwner[i] = ti
					}
				}
			}
			for i, o := range cellOwner {
				if o == -1 {
					t.Fatalf("skew=%v target=%d: cell %d uncovered", skew, target, i)
				}
			}
			// TileOf and Counts agree with the rectangles.
			tileOf := p.TileOf()
			if len(tileOf) != g.Len() {
				t.Fatalf("TileOf len %d want %d", len(tileOf), g.Len())
			}
			counts := make([]int, p.Len())
			for _, ti := range tileOf {
				counts[ti]++
			}
			total := 0
			for ti, want := range p.Counts() {
				if counts[ti] != want {
					t.Fatalf("skew=%v target=%d tile=%d: TileOf count %d, Counts %d",
						skew, target, ti, counts[ti], want)
				}
				total += want
			}
			if total != g.Len() {
				t.Fatalf("skew=%v target=%d: counts sum %d want %d", skew, target, total, g.Len())
			}
		}
	}
}

// TestBuildBalance: no tile dominates — the largest tile stays well
// under the whole dataset, and on skewed data the winning partitioner
// still splits the hot blob instead of fencing it into one tile.
func TestBuildBalance(t *testing.T) {
	for _, skew := range []bool{false, true} {
		g := freeze(t, 20000, 200, 2.0, 23, skew)
		for _, target := range []int{4, 9, 16} {
			p := tiling.Build(g, target)
			if p == nil {
				t.Fatalf("skew=%v target=%d: nil partition", skew, target)
			}
			if p.Len() < 2 {
				t.Fatalf("skew=%v target=%d: only %d tiles", skew, target, p.Len())
			}
			maxPts := p.MaxTilePoints()
			// A perfect split would give n/target; allow generous slack for
			// cell granularity, but a tile holding > 3/4 of everything means
			// the partitioner failed to split the mass.
			if maxPts > g.Len()*3/4 {
				t.Errorf("skew=%v target=%d kind=%s: max tile holds %d of %d points",
					skew, target, p.Kind(), maxPts, g.Len())
			}
		}
	}
}

// TestBuildDegenerate: inputs where tiling is not applicable return nil
// rather than a broken partition.
func TestBuildDegenerate(t *testing.T) {
	if p := tiling.Build(nil, 4); p != nil {
		t.Error("nil grid accepted")
	}
	g := freeze(t, 100, 10, 1.0, 5, false)
	if p := tiling.Build(g, 1); p != nil {
		t.Error("target=1 accepted")
	}
	if p := tiling.Build(g, 0); p != nil {
		t.Error("target=0 accepted")
	}
	// Single-cell grid: all points in one cell, nothing to split.
	xs := []float64{1, 1.0001, 1.0002}
	ys := []float64{2, 2.0001, 2.0002}
	one, err := gridindex.Freeze(xs, ys, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cols, rows := one.Shape(); int(cols)*int(rows) == 1 {
		if p := tiling.Build(one, 4); p != nil {
			t.Errorf("single-cell grid produced %d tiles", p.Len())
		}
	}
	// Empty grid.
	empty, err := gridindex.Freeze(nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p := tiling.Build(empty, 4); p != nil {
		t.Error("empty grid accepted")
	}
}

// TestBuildRowGrid: a grid only one cell tall can still be tiled (kd
// degenerates to column spans).
func TestBuildRowGrid(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = rnd.Float64() * 100
		ys[i] = rnd.Float64() * 0.5
	}
	g, err := gridindex.Freeze(xs, ys, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, rows := g.Shape(); rows != 1 {
		t.Skipf("grid not single-row (rows=%d)", rows)
	}
	p := tiling.Build(g, 4)
	if p == nil || p.Len() < 2 {
		t.Fatalf("single-row grid: partition %v", p)
	}
}

func TestAuto(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{100, 8, 1},                        // too small to shard
		{4 * tiling.MinTilePoints, 1, 1},   // one worker: untiled
		{4 * tiling.MinTilePoints, 4, 4},   // balanced
		{4 * tiling.MinTilePoints, 16, 4},  // capped by point floor
		{100 * tiling.MinTilePoints, 8, 8}, // one tile per worker
		{4*tiling.MinTilePoints - 1, 8, 1}, // just under the floor
		{1_000_000, 6, 6},                  // big data, few workers
		{2 * tiling.MinTilePoints, 2, 1},   // below 4× floor
	}
	for _, c := range cases {
		if got := tiling.Auto(c.n, c.workers); got != c.want {
			t.Errorf("Auto(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}
