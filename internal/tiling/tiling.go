// Package tiling partitions a frozen cell grid (gridindex.Flat) into a
// set of rectangular tiles — the middle level of the variant → tile →
// chunk parallelism hierarchy. A partition covers every grid cell
// exactly once, so each point has exactly one owning tile; the tiled
// DBSCAN runner clusters tiles concurrently and merges boundary
// clusters across the ε-halo seams (see internal/dbscan).
//
// Two partitioners compete per build, and the better-balanced one wins:
//
//   - regular N×N: the grid rectangle is cut into N point-balanced
//     column spans × N point-balanced row spans (marginal balancing —
//     cheap, and ideal for uniform-ish data);
//   - kd-split: the rectangle is cut recursively along its longer axis
//     at the cell boundary that best splits the point count, which
//     tracks density skew the marginal cuts cannot (the structure of
//     Wang/Gu/Shun's grid-cell decomposition).
//
// Balance is measured as the maximum owned-point count over tiles; the
// point counts behind both partitioners come from one summed-area table
// over the grid's CSR cell counts, so every candidate cut costs O(1).
package tiling

import (
	"vdbscan/internal/gridindex"
)

// MinTilePoints is the auto-mode floor on the expected points per tile:
// below it, per-tile fixed costs (view setup, seam bookkeeping) outweigh
// the parallelism a tile buys.
const MinTilePoints = 4096

// Auto picks a tile-count target for n points on workers goroutines: one
// tile per worker, capped so the expected tile keeps MinTilePoints, and
// 1 (untiled) when the data or the worker pool is too small to shard.
func Auto(n, workers int) int {
	if workers <= 1 || n < 4*MinTilePoints {
		return 1
	}
	t := workers
	if cap := n / MinTilePoints; t > cap {
		t = cap
	}
	if t < 2 {
		return 1
	}
	return t
}

// Partition is an immutable tiling of one grid snapshot. Build it with
// Build; all methods are safe for concurrent use.
type Partition struct {
	grid   *gridindex.Flat
	tiles  []gridindex.CellRect
	tileOf []int32 // caller index -> owning tile
	counts []int   // per-tile owned point counts
	kind   string  // winning partitioner: "regular" or "kd"
}

// Build partitions g's cell rectangle into (up to) target tiles. It
// returns nil when tiling is not applicable: a nil or empty grid, a
// target below 2, or a grid too small to yield at least two non-trivial
// tiles. The returned partition is tied to the grid snapshot it was
// built from — rebuild after any EnsureGrid re-side or re-freeze.
func Build(g *gridindex.Flat, target int) *Partition {
	if g == nil || target < 2 || g.Len() == 0 {
		return nil
	}
	cols, rows := g.Shape()
	if int(cols)*int(rows) < 2 {
		return nil
	}
	s := newSAT(g)
	full := gridindex.CellRect{C0: 0, R0: 0, C1: cols, R1: rows}

	var kd []gridindex.CellRect
	kdSplit(s, full, target, &kd)
	tiles, kind := kd, "kd"

	if k := isqrt(target); k >= 2 && k*k == target {
		if reg := s.regular(full, k); len(reg) >= 2 && s.maxTile(reg) <= s.maxTile(kd) {
			tiles, kind = reg, "regular"
		}
	}
	if len(tiles) < 2 {
		return nil
	}

	p := &Partition{grid: g, tiles: tiles, kind: kind}
	p.counts = make([]int, len(tiles))
	p.tileOf = make([]int32, g.Len())
	for t, rect := range tiles {
		n := 0
		for r := rect.R0; r < rect.R1; r++ {
			lo, hi := g.CellRange(r, rect.C0, rect.C1)
			n += int(hi - lo)
			for s := lo; s < hi; s++ {
				p.tileOf[g.SlotID(s)] = int32(t)
			}
		}
		p.counts[t] = n
	}
	return p
}

// Grid returns the grid snapshot the partition was built from.
func (p *Partition) Grid() *gridindex.Flat { return p.grid }

// Len returns the number of tiles.
func (p *Partition) Len() int { return len(p.tiles) }

// Tiles returns the owned cell rectangles. Read-only.
func (p *Partition) Tiles() []gridindex.CellRect { return p.tiles }

// TileOf returns the caller-index → owning-tile map. Read-only.
func (p *Partition) TileOf() []int32 { return p.tileOf }

// Counts returns the per-tile owned point counts. Read-only.
func (p *Partition) Counts() []int { return p.counts }

// Kind reports which partitioner won: "regular" or "kd".
func (p *Partition) Kind() string { return p.kind }

// MaxTilePoints returns the largest owned point count over tiles — the
// balance figure the partitioner choice minimized.
func (p *Partition) MaxTilePoints() int {
	m := 0
	for _, c := range p.counts {
		if c > m {
			m = c
		}
	}
	return m
}

// sat is a summed-area table over the grid's per-cell point counts:
// rectangle point counts in O(1).
type sat struct {
	cols, rows int32
	v          []int64 // (rows+1)×(cols+1), v[r][c] = points in [0,r)×[0,c)
}

func newSAT(g *gridindex.Flat) *sat {
	cols, rows := g.Shape()
	s := &sat{cols: cols, rows: rows, v: make([]int64, int(rows+1)*int(cols+1))}
	w := int(cols) + 1
	for r := int32(0); r < rows; r++ {
		base := (int(r) + 1) * w
		prev := int(r) * w
		for c := int32(0); c < cols; c++ {
			s.v[base+int(c)+1] = int64(g.CellCount(r, c)) +
				s.v[prev+int(c)+1] + s.v[base+int(c)] - s.v[prev+int(c)]
		}
	}
	return s
}

// sum returns the point count inside rect.
func (s *sat) sum(r gridindex.CellRect) int64 {
	if r.Empty() {
		return 0
	}
	w := int(s.cols) + 1
	return s.v[int(r.R1)*w+int(r.C1)] - s.v[int(r.R0)*w+int(r.C1)] -
		s.v[int(r.R1)*w+int(r.C0)] + s.v[int(r.R0)*w+int(r.C0)]
}

// maxTile returns the largest point count over a tile set.
func (s *sat) maxTile(tiles []gridindex.CellRect) int64 {
	var m int64
	for _, t := range tiles {
		if n := s.sum(t); n > m {
			m = n
		}
	}
	return m
}

// regular cuts rect into k point-balanced column spans × k point-balanced
// row spans. Spans are balanced marginally (per axis, independent of the
// other), so heavy density skew can leave hot corner tiles — that is what
// the kd competitor is for.
func (s *sat) regular(rect gridindex.CellRect, k int) []gridindex.CellRect {
	colCuts := s.cuts(rect, true, k)
	rowCuts := s.cuts(rect, false, k)
	tiles := make([]gridindex.CellRect, 0, (len(colCuts)-1)*(len(rowCuts)-1))
	for ri := 0; ri+1 < len(rowCuts); ri++ {
		for ci := 0; ci+1 < len(colCuts); ci++ {
			tiles = append(tiles, gridindex.CellRect{
				C0: colCuts[ci], R0: rowCuts[ri],
				C1: colCuts[ci+1], R1: rowCuts[ri+1],
			})
		}
	}
	return tiles
}

// cuts returns the ascending cut positions (including both borders) that
// split rect into up to k spans of roughly equal point count along one
// axis. Fewer spans come back when the axis has fewer cells than k.
func (s *sat) cuts(rect gridindex.CellRect, columns bool, k int) []int32 {
	lo, hi := rect.R0, rect.R1
	if columns {
		lo, hi = rect.C0, rect.C1
	}
	total := s.sum(rect)
	cuts := []int32{lo}
	last := lo
	for j := 1; j < k; j++ {
		want := total * int64(j) / int64(k)
		c := s.searchCut(rect, columns, want)
		if c <= last {
			c = last + 1
		}
		if c >= hi {
			break
		}
		cuts = append(cuts, c)
		last = c
	}
	return append(cuts, hi)
}

// searchCut finds the smallest cut position whose left span holds at
// least want points (binary search over the monotone prefix).
func (s *sat) searchCut(rect gridindex.CellRect, columns bool, want int64) int32 {
	lo, hi := rect.R0, rect.R1
	if columns {
		lo, hi = rect.C0, rect.C1
	}
	left := func(c int32) int64 {
		r := rect
		if columns {
			r.C1 = c
		} else {
			r.R1 = c
		}
		return s.sum(r)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if left(mid) < want {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// kdSplit recursively cuts rect into t tiles: split along the longer
// axis at the cell boundary closest to a ⌊t/2⌋:⌈t/2⌉ point split, then
// recurse. A rectangle too small to cut is emitted as a single tile
// (absorbing its remaining share of t).
func kdSplit(s *sat, rect gridindex.CellRect, t int, out *[]gridindex.CellRect) {
	for {
		if t <= 1 || rect.Cells() <= 1 {
			*out = append(*out, rect)
			return
		}
		w, h := rect.C1-rect.C0, rect.R1-rect.R0
		columns := w >= h
		if w <= 1 {
			columns = false
		} else if h <= 1 {
			columns = true
		}
		t1 := t / 2
		total := s.sum(rect)
		want := total * int64(t1) / int64(t)
		cut := s.searchCut(rect, columns, want)
		// Snap inside the open interval; prefer the neighbor closer to
		// the target split when both bracket it.
		lo, hi := rect.R0, rect.R1
		if columns {
			lo, hi = rect.C0, rect.C1
		}
		if cut <= lo {
			cut = lo + 1
		}
		if cut >= hi {
			cut = hi - 1
		}
		var leftR, rightR gridindex.CellRect
		if columns {
			leftR = gridindex.CellRect{C0: rect.C0, R0: rect.R0, C1: cut, R1: rect.R1}
			rightR = gridindex.CellRect{C0: cut, R0: rect.R0, C1: rect.C1, R1: rect.R1}
		} else {
			leftR = gridindex.CellRect{C0: rect.C0, R0: rect.R0, C1: rect.C1, R1: cut}
			rightR = gridindex.CellRect{C0: rect.C0, R0: cut, C1: rect.C1, R1: rect.R1}
		}
		kdSplit(s, leftR, t1, out)
		rect, t = rightR, t-t1
	}
}

// isqrt returns ⌊√n⌋.
func isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	k := 1
	for (k+1)*(k+1) <= n {
		k++
	}
	return k
}
