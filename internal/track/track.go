// Package track links clusters across consecutive map frames into moving
// features — the step that turns per-frame clusterings into Traveling
// Ionospheric Disturbance *tracks* with propagation velocities, which is
// the space-weather product the paper's application ultimately needs
// (TIDs "propagate in a wave-like fashion", §I).
//
// Tracking is deliberately simple and deterministic: features (clusters
// above a size floor) are matched frame-to-frame by greedy nearest-centroid
// assignment under a maximum jump distance; unmatched features start new
// tracks. Velocities come from a least-squares fit of centroid positions
// over time.
package track

import (
	"fmt"
	"math"
	"sort"

	"vdbscan/internal/cluster"
	"vdbscan/internal/geom"
)

// Feature is one cluster observed in one frame.
type Feature struct {
	// ClusterID is the cluster's ID within its frame's clustering.
	ClusterID int32
	// Size is the number of points.
	Size int
	// MBB is the cluster's bounding box.
	MBB geom.MBB
	// Centroid is the mean point position.
	Centroid geom.Point
	// Time is the frame epoch.
	Time float64
}

// Extract summarizes a frame's clustering into features, dropping clusters
// smaller than minSize. pts must be the frame's points in the same index
// space as res.
func Extract(pts []geom.Point, res *cluster.Result, time float64, minSize int) []Feature {
	var out []Feature
	for id := int32(1); id <= int32(res.NumClusters); id++ {
		members := res.ClusterPoints(id)
		if len(members) < minSize {
			continue
		}
		var sx, sy float64
		b := geom.EmptyMBB()
		for _, i := range members {
			p := pts[i]
			sx += p.X
			sy += p.Y
			b = b.ExtendPoint(p)
		}
		n := float64(len(members))
		out = append(out, Feature{
			ClusterID: id,
			Size:      len(members),
			MBB:       b,
			Centroid:  geom.Point{X: sx / n, Y: sy / n},
			Time:      time,
		})
	}
	// Deterministic order: largest first.
	sort.Slice(out, func(a, b int) bool {
		if out[a].Size != out[b].Size {
			return out[a].Size > out[b].Size
		}
		return out[a].ClusterID < out[b].ClusterID
	})
	return out
}

// Track is one feature followed through time.
type Track struct {
	// ID is the tracker-assigned identity.
	ID int
	// History holds the matched features in time order.
	History []Feature
}

// Len returns the number of frames the track spans.
func (t *Track) Len() int { return len(t.History) }

// Last returns the most recent feature.
func (t *Track) Last() Feature { return t.History[len(t.History)-1] }

// Velocity estimates (vx, vy) in position units per time unit via a
// least-squares fit over the track's centroids. Tracks shorter than 2
// frames report (0, 0).
func (t *Track) Velocity() (vx, vy float64) {
	n := len(t.History)
	if n < 2 {
		return 0, 0
	}
	var st, sx, sy, stt, stx, sty float64
	for _, f := range t.History {
		st += f.Time
		sx += f.Centroid.X
		sy += f.Centroid.Y
		stt += f.Time * f.Time
		stx += f.Time * f.Centroid.X
		sty += f.Time * f.Centroid.Y
	}
	fn := float64(n)
	den := fn*stt - st*st
	if den == 0 {
		return 0, 0
	}
	return (fn*stx - st*sx) / den, (fn*sty - st*sy) / den
}

// Speed returns the scalar propagation speed.
func (t *Track) Speed() float64 {
	vx, vy := t.Velocity()
	return math.Hypot(vx, vy)
}

// GrowthRate returns the relative size change per time unit over the
// track's life (0 for short tracks) — the early-warning trigger quantity.
func (t *Track) GrowthRate() float64 {
	n := len(t.History)
	if n < 2 {
		return 0
	}
	first, last := t.History[0], t.History[n-1]
	dt := last.Time - first.Time
	if dt == 0 || first.Size == 0 {
		return 0
	}
	return (float64(last.Size)/float64(first.Size) - 1) / dt
}

// Tracker links frames incrementally.
type Tracker struct {
	// MaxJump is the maximum centroid displacement between consecutive
	// frames for a match.
	MaxJump float64
	// MaxGap is the maximum time a track may go unmatched before it is
	// retired (0 retires after any missed frame).
	MaxGap float64

	nextID  int
	active  []*Track
	retired []*Track
}

// NewTracker returns a tracker with the given matching gate.
func NewTracker(maxJump, maxGap float64) *Tracker {
	return &Tracker{MaxJump: maxJump, MaxGap: maxGap}
}

// Advance matches a new frame's features against active tracks. Matching is
// greedy by ascending centroid distance, one feature per track.
func (tr *Tracker) Advance(features []Feature) {
	type pair struct {
		trackIdx, featIdx int
		dist              float64
	}
	var pairs []pair
	for ti, t := range tr.active {
		last := t.Last()
		for fi, f := range features {
			d := last.Centroid.Dist(f.Centroid)
			if d <= tr.MaxJump {
				pairs = append(pairs, pair{ti, fi, d})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].dist != pairs[b].dist {
			return pairs[a].dist < pairs[b].dist
		}
		if pairs[a].trackIdx != pairs[b].trackIdx {
			return pairs[a].trackIdx < pairs[b].trackIdx
		}
		return pairs[a].featIdx < pairs[b].featIdx
	})
	trackTaken := make([]bool, len(tr.active))
	featTaken := make([]bool, len(features))
	for _, p := range pairs {
		if trackTaken[p.trackIdx] || featTaken[p.featIdx] {
			continue
		}
		trackTaken[p.trackIdx] = true
		featTaken[p.featIdx] = true
		tr.active[p.trackIdx].History = append(tr.active[p.trackIdx].History, features[p.featIdx])
	}
	// Retire unmatched tracks that exceeded the gap; keep the rest active.
	var still []*Track
	var frameTime float64
	if len(features) > 0 {
		frameTime = features[0].Time
	}
	for ti, t := range tr.active {
		if trackTaken[ti] {
			still = append(still, t)
			continue
		}
		if len(features) > 0 && frameTime-t.Last().Time > tr.MaxGap {
			tr.retired = append(tr.retired, t)
		} else {
			still = append(still, t)
		}
	}
	tr.active = still
	// New tracks for unmatched features.
	for fi, f := range features {
		if featTaken[fi] {
			continue
		}
		tr.nextID++
		tr.active = append(tr.active, &Track{ID: tr.nextID, History: []Feature{f}})
	}
}

// Active returns the live tracks (still being matched).
func (tr *Tracker) Active() []*Track { return tr.active }

// All returns every track, live and retired, in creation order.
func (tr *Tracker) All() []*Track {
	all := append([]*Track(nil), tr.retired...)
	all = append(all, tr.active...)
	sort.Slice(all, func(a, b int) bool { return all[a].ID < all[b].ID })
	return all
}

// String implements fmt.Stringer.
func (t *Track) String() string {
	vx, vy := t.Velocity()
	return fmt.Sprintf("track%d{frames=%d size=%d v=(%.2f, %.2f)}",
		t.ID, t.Len(), t.Last().Size, vx, vy)
}
