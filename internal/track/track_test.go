package track

import (
	"math"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/geom"
)

func feature(x, y float64, size int, time float64) Feature {
	return Feature{
		Size:     size,
		Centroid: geom.Point{X: x, Y: y},
		MBB:      geom.MBB{MinX: x - 1, MinY: y - 1, MaxX: x + 1, MaxY: y + 1},
		Time:     time,
	}
}

func TestExtract(t *testing.T) {
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 1, Y: 2}, // cluster 1, centroid (1, 2/3)
		{X: 10, Y: 10}, // cluster 2 (too small with minSize 2? size 1)
		{X: 5, Y: 5},   // noise
	}
	res := &cluster.Result{Labels: []int32{1, 1, 1, 2, cluster.Noise}, NumClusters: 2}
	fs := Extract(pts, res, 3.5, 2)
	if len(fs) != 1 {
		t.Fatalf("features = %d, want 1 (size floor)", len(fs))
	}
	f := fs[0]
	if f.ClusterID != 1 || f.Size != 3 || f.Time != 3.5 {
		t.Errorf("feature = %+v", f)
	}
	if math.Abs(f.Centroid.X-1) > 1e-12 || math.Abs(f.Centroid.Y-2.0/3) > 1e-12 {
		t.Errorf("centroid = %v", f.Centroid)
	}
	// minSize 1 keeps both, ordered by size.
	fs = Extract(pts, res, 0, 1)
	if len(fs) != 2 || fs[0].Size < fs[1].Size {
		t.Errorf("features = %+v", fs)
	}
}

func TestTrackerFollowsMovingFeature(t *testing.T) {
	tr := NewTracker(3, 1)
	for f := 0; f < 6; f++ {
		tr.Advance([]Feature{feature(float64(f)*2, 0, 100, float64(f))})
	}
	all := tr.All()
	if len(all) != 1 {
		t.Fatalf("tracks = %d, want 1", len(all))
	}
	if all[0].Len() != 6 {
		t.Errorf("track frames = %d", all[0].Len())
	}
	vx, vy := all[0].Velocity()
	if math.Abs(vx-2) > 1e-9 || math.Abs(vy) > 1e-9 {
		t.Errorf("velocity = (%g, %g), want (2, 0)", vx, vy)
	}
	if math.Abs(all[0].Speed()-2) > 1e-9 {
		t.Errorf("speed = %g", all[0].Speed())
	}
}

func TestTrackerJumpGate(t *testing.T) {
	tr := NewTracker(1, 0)
	tr.Advance([]Feature{feature(0, 0, 50, 0)})
	// Too far: becomes a new track; old one retires after the gap.
	tr.Advance([]Feature{feature(10, 0, 50, 1)})
	all := tr.All()
	if len(all) != 2 {
		t.Fatalf("tracks = %d, want 2", len(all))
	}
	if len(tr.Active()) != 1 {
		t.Errorf("active = %d, want 1 (far track retired)", len(tr.Active()))
	}
}

func TestTrackerGreedyDisambiguation(t *testing.T) {
	// Two tracks, two features: each feature must match its nearest track.
	tr := NewTracker(5, 1)
	tr.Advance([]Feature{feature(0, 0, 50, 0), feature(10, 0, 60, 0)})
	tr.Advance([]Feature{feature(1, 0, 55, 1), feature(9, 0, 65, 1)})
	all := tr.All()
	if len(all) != 2 {
		t.Fatalf("tracks = %d", len(all))
	}
	for _, trk := range all {
		if trk.Len() != 2 {
			t.Errorf("track %d frames = %d, want 2", trk.ID, trk.Len())
		}
		dx := trk.History[1].Centroid.X - trk.History[0].Centroid.X
		if math.Abs(dx) > 1.5 {
			t.Errorf("track %d jumped %g — crossed assignment", trk.ID, dx)
		}
	}
}

func TestTrackerGapRetirement(t *testing.T) {
	tr := NewTracker(2, 1.5)
	tr.Advance([]Feature{feature(0, 0, 50, 0)})
	tr.Advance([]Feature{feature(100, 100, 10, 1)}) // no match; gap 1 <= 1.5 keeps it
	if len(tr.Active()) != 2 {
		t.Fatalf("active = %d, want 2 (within gap)", len(tr.Active()))
	}
	tr.Advance([]Feature{feature(100, 102, 10, 3)}) // gap 3 > 1.5 retires track 1
	active := tr.Active()
	for _, trk := range active {
		if trk.ID == 1 {
			t.Error("track 1 should be retired")
		}
	}
	if len(tr.All()) != 2 {
		t.Errorf("total tracks = %d", len(tr.All()))
	}
}

func TestGrowthRate(t *testing.T) {
	trk := &Track{History: []Feature{feature(0, 0, 100, 0), feature(1, 0, 200, 2)}}
	// Size doubled over 2 time units: (2-1)/2 = 0.5 per unit.
	if got := trk.GrowthRate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("growth = %g", got)
	}
	short := &Track{History: []Feature{feature(0, 0, 100, 0)}}
	if short.GrowthRate() != 0 {
		t.Error("short track growth should be 0")
	}
	if vx, vy := short.Velocity(); vx != 0 || vy != 0 {
		t.Error("short track velocity should be 0")
	}
}

func TestTrackString(t *testing.T) {
	trk := &Track{ID: 3, History: []Feature{feature(0, 0, 10, 0)}}
	if trk.String() == "" {
		t.Error("String empty")
	}
}
