// Package quality implements the result-quality metric of paper §V-D
// (following Januzaj, Kriegel & Pfeifle's DBDC, EDBT 2004) used for
// Figure 7c: comparing the per-point cluster/noise assignments of
// VariantDBSCAN against plain DBSCAN.
//
// Per point:
//
//   - misidentified noise (noise in exactly one of the two results) → 0;
//   - noise in both → 1 (the assignments agree);
//   - clustered in both → Jaccard similarity |E ∩ F| / |E ∪ F| of the two
//     clusters E (reference) and F (candidate) containing the point.
//
// The variant's quality score is the average over all points. The paper
// reports every average ≥ 0.998.
package quality

import (
	"fmt"

	"vdbscan/internal/cluster"
)

// Score computes the average quality of candidate versus reference. The two
// results must label the same points in the same index space.
func Score(reference, candidate *cluster.Result) (float64, error) {
	n := reference.Len()
	if candidate.Len() != n {
		return 0, fmt.Errorf("quality: length mismatch %d vs %d", n, candidate.Len())
	}
	if n == 0 {
		return 1, nil
	}

	// Pre-compute cluster sizes and pairwise overlaps |E ∩ F| so that each
	// point's Jaccard score is an O(1) lookup: for point i in clusters
	// (e, f), |E ∪ F| = |E| + |F| − |E ∩ F|.
	refSizes := reference.Sizes()
	candSizes := candidate.Sizes()
	type pair struct{ e, f int32 }
	overlap := make(map[pair]int)
	for i := 0; i < n; i++ {
		e, f := reference.Labels[i], candidate.Labels[i]
		if e > 0 && f > 0 {
			overlap[pair{e, f}]++
		}
	}

	var sum float64
	for i := 0; i < n; i++ {
		e, f := reference.Labels[i], candidate.Labels[i]
		eNoise, fNoise := e == cluster.Noise, f == cluster.Noise
		switch {
		case eNoise && fNoise:
			sum += 1
		case eNoise || fNoise:
			// Misidentified as noise (or non-noise): score 0.
		default:
			inter := overlap[pair{e, f}]
			union := refSizes[e-1] + candSizes[f-1] - inter
			if union > 0 {
				sum += float64(inter) / float64(union)
			}
		}
	}
	return sum / float64(n), nil
}

// MustScore is Score for callers with statically matched inputs; it panics
// on length mismatch.
func MustScore(reference, candidate *cluster.Result) float64 {
	s, err := Score(reference, candidate)
	if err != nil {
		panic(err)
	}
	return s
}

// Mean averages a slice of per-variant scores (Figure 7c plots the average
// across all |V| variants).
func Mean(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	return sum / float64(len(scores))
}
