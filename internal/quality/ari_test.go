package quality

import (
	"math"
	"math/rand"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
)

func TestARIIdentical(t *testing.T) {
	a := res(1, 1, 2, 2, cluster.Noise)
	got, err := ARI(a, a)
	if err != nil || got != 1 {
		t.Errorf("self ARI = %g, %v", got, err)
	}
}

func TestARIRenumbered(t *testing.T) {
	a := res(1, 1, 2, 2, cluster.Noise)
	b := res(2, 2, 1, 1, cluster.Noise)
	if got, _ := ARI(a, b); got != 1 {
		t.Errorf("renumbered ARI = %g", got)
	}
}

func TestARILengthMismatch(t *testing.T) {
	if _, err := ARI(res(1), res(1, 2)); err == nil {
		t.Error("mismatch accepted")
	}
}

func TestARIEmpty(t *testing.T) {
	if got, _ := ARI(res(), res()); got != 1 {
		t.Errorf("empty ARI = %g", got)
	}
}

func TestARIDisagreementLowersScore(t *testing.T) {
	a := res(1, 1, 1, 1, 2, 2, 2, 2)
	same, _ := ARI(a, a)
	// Swap two points between the clusters.
	b := res(1, 1, 1, 2, 1, 2, 2, 2)
	worse, _ := ARI(a, b)
	if !(worse < same) {
		t.Errorf("ARI did not drop: %g vs %g", worse, same)
	}
	if worse <= 0 {
		t.Errorf("mild disagreement should stay positive: %g", worse)
	}
}

func TestARIIndependentPartitionsNearZero(t *testing.T) {
	// Random labels vs random labels over many points: expect ~0.
	rnd := rand.New(rand.NewSource(1))
	n := 2000
	la := make([]int32, n)
	lb := make([]int32, n)
	for i := 0; i < n; i++ {
		la[i] = int32(rnd.Intn(5) + 1)
		lb[i] = int32(rnd.Intn(5) + 1)
	}
	a := &cluster.Result{Labels: la, NumClusters: 5}
	b := &cluster.Result{Labels: lb, NumClusters: 5}
	got, _ := ARI(a, b)
	if math.Abs(got) > 0.05 {
		t.Errorf("independent ARI = %g, want ~0", got)
	}
}

func TestARIAllSingletons(t *testing.T) {
	a := res(cluster.Noise, cluster.Noise, cluster.Noise)
	if got, _ := ARI(a, a); got != 1 {
		t.Errorf("all-noise self ARI = %g", got)
	}
	b := res(1, 1, 1)
	got, _ := ARI(a, b)
	if got >= 1 {
		t.Errorf("noise vs one-cluster ARI = %g, want < 1", got)
	}
}

func TestARIAgreesWithJaccardOnRealRuns(t *testing.T) {
	// Two DBSCAN runs at nearby parameters: both metrics should be high;
	// at wildly different parameters both should drop.
	rnd := rand.New(rand.NewSource(2))
	var pts []geom.Point
	for c := 0; c < 3; c++ {
		cx, cy := rnd.Float64()*40, rnd.Float64()*40
		for i := 0; i < 200; i++ {
			pts = append(pts, geom.Point{X: cx + rnd.NormFloat64()*0.5, Y: cy + rnd.NormFloat64()*0.5})
		}
	}
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Point{X: rnd.Float64() * 40, Y: rnd.Float64() * 40})
	}
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 16})
	base, _ := dbscan.Run(ix, dbscan.Params{Eps: 0.6, MinPts: 4}, nil)
	near, _ := dbscan.Run(ix, dbscan.Params{Eps: 0.65, MinPts: 4}, nil)
	far, _ := dbscan.Run(ix, dbscan.Params{Eps: 40, MinPts: 4}, nil)

	ariNear, _ := ARI(base, near)
	ariFar, _ := ARI(base, far)
	if ariNear < 0.9 {
		t.Errorf("near-params ARI = %g, want high", ariNear)
	}
	if ariFar >= ariNear {
		t.Errorf("far-params ARI %g should be below near %g", ariFar, ariNear)
	}
}
