package quality

import (
	"math"
	"math/rand"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/reuse"

	vcore "vdbscan/internal/core"
)

func res(labels ...int32) *cluster.Result {
	r := &cluster.Result{Labels: labels}
	max := int32(0)
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	r.NumClusters = int(max)
	return r
}

func TestScoreIdentical(t *testing.T) {
	a := res(1, 1, 2, cluster.Noise)
	got, err := Score(a, a)
	if err != nil || got != 1 {
		t.Errorf("identical score = %g, %v", got, err)
	}
}

func TestScoreRenumberedIsPerfect(t *testing.T) {
	a := res(1, 1, 2, cluster.Noise)
	b := res(2, 2, 1, cluster.Noise)
	if got := MustScore(a, b); got != 1 {
		t.Errorf("renumbered score = %g, want 1", got)
	}
}

func TestScoreNoiseMisidentification(t *testing.T) {
	// One of four points flips noise status: it scores 0, the others 1.
	a := res(1, 1, 1, cluster.Noise)
	b := res(1, 1, 1, 1)
	want := 0.0
	// Points 0..2: both in clusters of sizes 3 (a) and 4 (b), overlap 3.
	// Jaccard = 3 / (3 + 4 - 3) = 0.75 each. Point 3: noise vs cluster -> 0.
	want = (0.75*3 + 0) / 4
	if got := MustScore(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("score = %g, want %g", got, want)
	}
}

func TestScoreAsymmetricNoise(t *testing.T) {
	// The noise-misidentification penalty must fire in BOTH directions and
	// both must cost exactly the same: a point that is noise only in the
	// reference and a point that is noise only in the candidate each score
	// 0, regardless of how clean the rest of the assignment is. A buggy
	// one-sided check (e.g. only penalizing candidate-noise) would make
	// Score(a, b) disagree with Score(b, a) on pure noise flips.
	a := res(1, 1, 1, cluster.Noise, 2, 2)
	b := res(1, 1, 1, 2, 2, cluster.Noise)
	// Point 3: noise in a only -> 0. Point 5: noise in b only -> 0.
	// Points 0-2: clusters of size 3/3, overlap 3 -> 1 each.
	// Point 4: a-cluster 2 (size 2), b-cluster 2 (size 2), overlap 1 ->
	// 1/(2+2-1) = 1/3.
	want := (3 + 0 + 1.0/3 + 0) / 6
	if got := MustScore(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("asymmetric noise score = %g, want %g", got, want)
	}
	// Swapping reference and candidate flips which side each noise point
	// sits on, but the per-point penalties are symmetric here, so the
	// total must be identical.
	if fwd, rev := MustScore(a, b), MustScore(b, a); math.Abs(fwd-rev) > 1e-12 {
		t.Errorf("noise penalty is direction-dependent: %g vs %g", fwd, rev)
	}
	// All-noise reference against all-clustered candidate is the extreme
	// case: every point misidentified, score exactly 0 — not NaN, not a
	// Jaccard of empty sets.
	allNoise := res(cluster.Noise, cluster.Noise, cluster.Noise)
	allClus := res(1, 1, 1)
	if got := MustScore(allNoise, allClus); got != 0 {
		t.Errorf("all-noise vs all-clustered = %g, want 0", got)
	}
	if got := MustScore(allClus, allNoise); got != 0 {
		t.Errorf("all-clustered vs all-noise = %g, want 0", got)
	}
}

func TestScoreSplitCluster(t *testing.T) {
	// Reference one cluster of 4; candidate splits it 2+2.
	a := res(1, 1, 1, 1)
	b := res(1, 1, 2, 2)
	// Each point: |E∩F| = 2, |E∪F| = 4 + 2 - 2 = 4 -> 0.5.
	if got := MustScore(a, b); got != 0.5 {
		t.Errorf("split score = %g, want 0.5", got)
	}
}

func TestScoreAllNoiseBoth(t *testing.T) {
	a := res(cluster.Noise, cluster.Noise)
	if got := MustScore(a, a); got != 1 {
		t.Errorf("all-noise score = %g", got)
	}
}

func TestScoreEmpty(t *testing.T) {
	if got := MustScore(res(), res()); got != 1 {
		t.Errorf("empty score = %g, want 1 by convention", got)
	}
}

func TestScoreLengthMismatch(t *testing.T) {
	if _, err := Score(res(1), res(1, 2)); err == nil {
		t.Error("length mismatch accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustScore should panic on mismatch")
		}
	}()
	MustScore(res(1), res(1, 2))
}

func TestScoreAsymmetryOfSizes(t *testing.T) {
	// Candidate merges two reference clusters: points of the small one get
	// a low Jaccard against the merged cluster.
	a := res(1, 1, 1, 2)
	b := res(1, 1, 1, 1)
	// Points 0-2: 3/(3+4-3)=0.75; point 3: 1/(1+4-1)=0.25.
	want := (0.75*3 + 0.25) / 4
	if got := MustScore(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("merge score = %g, want %g", got, want)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 0.5}); got != 0.75 {
		t.Errorf("Mean = %g", got)
	}
}

// End-to-end: VariantDBSCAN vs DBSCAN quality matches the paper's ≥0.998
// regime on blob data.
func TestVariantDBSCANQualityHigh(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 0, 900)
	for c := 0; c < 4; c++ {
		cx, cy := rnd.Float64()*30, rnd.Float64()*30
		for i := 0; i < 200; i++ {
			pts = append(pts, geom.Point{X: cx + rnd.NormFloat64()*0.5, Y: cy + rnd.NormFloat64()*0.5})
		}
	}
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Point{X: rnd.Float64() * 30, Y: rnd.Float64() * 30})
	}
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 16})
	prev, _ := dbscan.Run(ix, dbscan.Params{Eps: 0.4, MinPts: 12}, nil)
	target := dbscan.Params{Eps: 0.6, MinPts: 4}
	got, _, err := vcore.Run(ix, target, prev, reuse.ClusDensity, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := dbscan.Run(ix, target, nil)
	score := MustScore(want, got)
	if score < 0.99 {
		t.Errorf("quality = %g, want >= 0.99 (paper reports >= 0.998)", score)
	}
}
