package quality

import (
	"fmt"

	"vdbscan/internal/cluster"
)

// ARI computes the Adjusted Rand Index between two clusterings — a second,
// widely used external measure complementing the paper's per-point Jaccard
// score. ARI is 1 for identical partitions, ~0 for independent ones, and
// can be negative for adversarial disagreement.
//
// Noise points are treated as singletons (each its own cluster), the
// convention that punishes both spurious merging of noise and spurious
// fragmentation of clusters.
func ARI(a, b *cluster.Result) (float64, error) {
	n := a.Len()
	if b.Len() != n {
		return 0, fmt.Errorf("quality: length mismatch %d vs %d", n, b.Len())
	}
	if n == 0 {
		return 1, nil
	}

	// Relabel with noise-as-singletons: noise point i gets its own label.
	labelsOf := func(r *cluster.Result) []int32 {
		out := make([]int32, n)
		next := int32(r.NumClusters)
		for i, l := range r.Labels {
			if l > 0 {
				out[i] = l - 1
			} else {
				out[i] = next
				next++
			}
		}
		return out
	}
	la, lb := labelsOf(a), labelsOf(b)

	// Contingency table and marginals.
	type pair struct{ x, y int32 }
	joint := make(map[pair]int64)
	ma := make(map[int32]int64)
	mb := make(map[int32]int64)
	for i := 0; i < n; i++ {
		joint[pair{la[i], lb[i]}]++
		ma[la[i]]++
		mb[lb[i]]++
	}
	choose2 := func(x int64) float64 { return float64(x) * float64(x-1) / 2 }

	var sumJoint, sumA, sumB float64
	for _, c := range joint {
		sumJoint += choose2(c)
	}
	for _, c := range ma {
		sumA += choose2(c)
	}
	for _, c := range mb {
		sumB += choose2(c)
	}
	total := choose2(int64(n))
	if total == 0 {
		return 1, nil
	}
	expected := sumA * sumB / total
	max := (sumA + sumB) / 2
	if max == expected {
		// Both partitions are all-singletons (or degenerate): identical
		// iff the joint matches; define ARI = 1 in that case, else 0.
		if sumJoint == max {
			return 1, nil
		}
		return 0, nil
	}
	return (sumJoint - expected) / (max - expected), nil
}
