package dbscan

import (
	"context"
	"sync/atomic"

	"vdbscan/internal/cluster"
	"vdbscan/internal/geom"
	"vdbscan/internal/gridindex"
	"vdbscan/internal/metrics"
	"vdbscan/internal/obs"
	"vdbscan/internal/tiling"
	"vdbscan/internal/unionfind"
)

// Tiled intra-variant DBSCAN — the third parallelism level, variant →
// tile → chunk. The grid-sorted point array is cut into point-balanced
// cell-rectangle tiles (internal/tiling); each tile runs the full mark +
// intra-tile link sweep concurrently on a gridindex.TileView whose
// ε-halo makes its searches exact for every owned query, and a seam
// merge afterwards unions the core-core ε-edges that straddle tile
// boundaries. The output is byte-identical to the untiled chunked runner
// (and therefore to sequential Run):
//
//   - Every ε-search an owned point issues is clamped to the tile's
//     halo, which always contains the search's cell block, so core flags
//     and retained neighborhoods equal the untiled run's exactly —
//     including the candidate/cell-visit metric counts.
//   - The DSU edge set is the untiled run's edge set: same-tile edges
//     link during the tile sweep (from the higher endpoint, whose owner
//     computed both core flags), cross-tile edges link during the seam
//     merge. A cross-tile ε-edge's higher endpoint always sits in a seam
//     cell — the two cells are within reach = ⌈ε/side⌉ of each other and
//     in different tiles, so the endpoint's cell is within reach of its
//     tile's boundary — and gridindex.TileView.SeamRuns yields exactly
//     those cells. Each edge is examined from its higher endpoint only,
//     in exactly one of the two phases (the tile test is a partition of
//     the neighborhood), so no edge is linked twice or missed.
//   - Labeling and border attachment reuse the untiled runner's passes
//     (labelCores, borderBody): index-ordered DSU roots reproduce Run's
//     formation-order numbering, and the CAS min-reduction resolves
//     every halo/border ownership tie deterministically, so a border
//     point equidistant from cores in two tiles gets the same owner as
//     the untiled run.
//
// The tile phases run through runPhase, so donated pool workers
// (two-level scheduling) pick up tiles exactly as they pick up chunks.

// runTiled executes the tiled path when it applies. handled reports
// whether it ran; when false the caller falls through to the untiled
// chunked phases. It declines — with no observable difference, since the
// tiled result is byte-identical anyway — when the index has no current
// grid (R-tree kind, or staged inserts awaiting re-freeze), when the
// resolved tile target is < 2, or when the grid is too small to cut.
func runTiled(ctx context.Context, ix *Index, p Params, opt ParallelOptions, m *metrics.Counters, workers int) (*cluster.Result, bool, error) {
	n := ix.Len()
	target := opt.Tiles
	if target == 0 {
		target = tiling.Auto(n, workers)
	}
	if target < 2 {
		return nil, false, nil
	}
	g := ix.Grid()
	if g == nil || g.Len() != n {
		return nil, false, nil
	}
	part := ix.TilePartition(target)
	if part == nil || part.Len() < 2 {
		return nil, false, nil
	}

	nt := part.Len()
	views := make([]gridindex.TileView, nt)
	for t, rect := range part.Tiles() {
		views[t] = g.Tile(rect, p.Eps)
	}
	tileOf := part.TileOf()

	res := cluster.NewResult(n)
	core := make([]bool, n)
	neighborhoods := make([][]int32, n)
	dsu := unionfind.NewConcurrent(n)

	// Phase A: per-tile clustering. A worker claims a whole tile, marks
	// its owned points (retaining core neighborhoods), then links the
	// tile's internal core edges — both core flags were computed by this
	// same claim, so no cross-worker visibility is needed yet.
	var cursorA atomic.Int64
	tileRun := func() {
		scratch := make([]int32, 0, 256)
		var arena []int32 // batches neighborhood copies, as in the chunked mark
		var local metrics.Local
		for {
			if ctx.Err() != nil {
				break
			}
			t := int(cursorA.Add(1) - 1)
			if t >= nt {
				break
			}
			v := &views[t]
			tt := int32(t)
			v.OwnedRuns(func(start, end int32) {
				for s := start; s < end; s++ {
					x, y := g.SlotCoords(s)
					var cand, nodes int
					scratch, cand, nodes = v.EpsSearch(geom.Point{X: x, Y: y}, p.Eps, scratch[:0])
					local.NeighborSearches++
					local.CandidatesExamined += int64(cand)
					local.NodesVisited += int64(nodes)
					local.NeighborsFound += int64(len(scratch))
					if len(scratch) < p.MinPts {
						continue
					}
					i := g.SlotID(s)
					core[i] = true
					if cap(arena)-len(arena) < len(scratch) {
						size := 16 * 1024
						if size < len(scratch) {
							size = len(scratch)
						}
						arena = make([]int32, 0, size)
					}
					st := len(arena)
					arena = append(arena, scratch...)
					neighborhoods[i] = arena[st:len(arena):len(arena)]
				}
			})
			v.OwnedRuns(func(start, end int32) {
				for s := start; s < end; s++ {
					i := g.SlotID(s)
					if !core[i] {
						continue
					}
					for _, j := range neighborhoods[i] {
						// Ownership test first: core[j] of a foreign tile may
						// still be being written by its owner during this phase.
						if j < i && tileOf[j] == tt && core[j] {
							dsu.Union(i, j)
						}
					}
				}
			})
			local.FlushTo(m)
		}
		local.FlushTo(m)
	}
	wA := min(workers, nt)
	opt.Rec.PhaseBegin(opt.Variant, obs.PhaseTileRun)
	runPhase(wA, opt, tileRun)
	opt.Rec.PhaseEnd(opt.Variant, obs.PhaseTileRun)
	if err := ctx.Err(); err != nil {
		return nil, true, err
	}

	// Phase B: seam merge. Revisit only the seam cells and link the
	// cross-tile core edges from their higher endpoints; the runPhase
	// barrier has published every tile's core flags and neighborhoods.
	var cursorB atomic.Int64
	tileMerge := func() {
		for {
			if ctx.Err() != nil {
				break
			}
			t := int(cursorB.Add(1) - 1)
			if t >= nt {
				break
			}
			v := &views[t]
			tt := int32(t)
			v.SeamRuns(func(start, end int32) {
				for s := start; s < end; s++ {
					i := g.SlotID(s)
					if !core[i] {
						continue
					}
					for _, j := range neighborhoods[i] {
						if j < i && core[j] && tileOf[j] != tt {
							dsu.Union(i, j)
						}
					}
				}
			})
		}
	}
	opt.Rec.PhaseBegin(opt.Variant, obs.PhaseTileMerge)
	runPhase(wA, opt, tileMerge)
	opt.Rec.PhaseEnd(opt.Variant, obs.PhaseTileMerge)
	if err := ctx.Err(); err != nil {
		return nil, true, err
	}

	// Labeling and border attachment are tile-agnostic: identical passes
	// to the untiled runner over the merged DSU.
	opt.Rec.PhaseBegin(opt.Variant, obs.PhaseLabel)
	cid := labelCores(res, core, dsu)
	opt.Rec.PhaseEnd(opt.Variant, obs.PhaseLabel)

	attach := make([]atomic.Int32, n)
	opt.Rec.PhaseBegin(opt.Variant, obs.PhaseBorder)
	runPhase(workers, opt, borderBody(ctx, core, neighborhoods, res.Labels, attach))
	opt.Rec.PhaseEnd(opt.Variant, obs.PhaseBorder)
	if err := ctx.Err(); err != nil {
		return nil, true, err
	}

	finishBorders(res, core, attach)
	res.NumClusters = int(cid)
	return res, true, nil
}
