package dbscan

import (
	"context"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

// tiledRun runs the parallel path with an explicit tile target on a
// grid-kind index.
func tiledRun(t *testing.T, ix *Index, p Params, tiles, workers int, m *metrics.Counters) *cluster.Result {
	t.Helper()
	res, err := RunParallelOpts(context.Background(), ix, p,
		ParallelOptions{Workers: workers, Tiles: tiles}, m)
	if err != nil {
		t.Fatalf("tiles=%d workers=%d: %v", tiles, workers, err)
	}
	return res
}

// TestRunTiledMatchesUntiledExactly is the tentpole's exactness property:
// across {1, 2×2, 3×3, 4×4} tiles × {1..8} workers, the tiled run must be
// byte-identical to sequential Run — same labels, same cluster numbering,
// same noise set — on uniform, clustered, skewed, and degenerate data.
// (The reuse on/off axis of the matrix runs at the scheduler level; see
// sched's TestExecuteTiledMatchesUntiled.)
func TestRunTiledMatchesUntiledExactly(t *testing.T) {
	params := []Params{
		{Eps: 3, MinPts: 4},
		{Eps: 1.5, MinPts: 8},
		{Eps: 0.5, MinPts: 1},
	}
	for name, pts := range synthetic(t) {
		ix := BuildIndex(pts, IndexOptions{R: 16, Kind: IndexGrid})
		for _, p := range params {
			want, err := Run(ix, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, tiles := range []int{1, 4, 9, 16} {
				for _, workers := range []int{1, 2, 4, 8} {
					got := tiledRun(t, ix, p, tiles, workers, nil)
					requireIdentical(t, got, want,
						name+"/"+p.String())
				}
			}
		}
	}
}

// TestRunTiledMetricsMatch: the tiled mark sweep issues exactly one
// ε-search per point with halo-clamped blocks equal to the full-grid
// blocks, so every work counter — searches, candidates, cells visited,
// neighbors found — must equal the sequential grid run's.
func TestRunTiledMetricsMatch(t *testing.T) {
	pts := blobs(4, 800, 200, 30, 0.7, 201)
	ix := BuildIndex(pts, IndexOptions{R: 16, Kind: IndexGrid})
	p := Params{Eps: 0.9, MinPts: 5}
	var mSeq metrics.Counters
	if _, err := Run(ix, p, &mSeq); err != nil {
		t.Fatal(err)
	}
	for _, tiles := range []int{4, 9} {
		var mTile metrics.Counters
		tiledRun(t, ix, p, tiles, 4, &mTile)
		if mTile.Snapshot() != mSeq.Snapshot() {
			t.Errorf("tiles=%d: work counters diverge: tiled %v vs sequential %v",
				tiles, mTile.Snapshot(), mSeq.Snapshot())
		}
	}
}

// TestRunTiledUsesTiledPath guards against the tiled path silently never
// engaging: an explicit tile target on a grid index must install a tile
// partition keyed to the current grid, and auto mode must engage it on a
// dataset large enough to shard.
func TestRunTiledUsesTiledPath(t *testing.T) {
	pts := blobs(6, 4000, 1000, 60, 0.8, 202) // 25k points ≥ 4×MinTilePoints
	ix := BuildIndex(pts, IndexOptions{R: 16, Kind: IndexGrid})
	p := Params{Eps: 0.9, MinPts: 5}

	tiledRun(t, ix, p, 4, 2, nil)
	part := ix.TilePartition(4)
	if part == nil || part.Len() < 2 {
		t.Fatalf("explicit tiles=4 did not build a partition: %v", part)
	}
	if part.Grid() != ix.Grid() {
		t.Fatal("partition not keyed to the installed grid")
	}

	// Auto mode (Tiles: 0) on a multi-worker large run engages tiling too.
	ix2 := BuildIndex(pts, IndexOptions{R: 16, Kind: IndexGrid})
	if _, err := RunParallelOpts(context.Background(), ix2, p,
		ParallelOptions{Workers: 4}, nil); err != nil {
		t.Fatal(err)
	}
	if tp := ix2.tiles.Load(); tp == nil || tp.part == nil {
		t.Fatal("auto mode never engaged the tiled path on a 25k-point 4-worker run")
	}
}

// TestRunTiledRTreeFallsBack: on an R-tree index there is no grid, so an
// explicit tile request must quietly take the untiled path and still be
// exact.
func TestRunTiledRTreeFallsBack(t *testing.T) {
	pts := blobs(3, 300, 100, 25, 0.6, 203)
	ix := BuildIndex(pts, IndexOptions{R: 16})
	p := Params{Eps: 0.8, MinPts: 4}
	want, err := Run(ix, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := tiledRun(t, ix, p, 4, 4, nil)
	requireIdentical(t, got, want, "rtree-fallback")
	if tp := ix.tiles.Load(); tp != nil {
		t.Error("R-tree index built a tile partition")
	}
}

// TestTilePartitionRebuiltOnReside is the re-side regression test: a
// params sweep whose later variant has a larger ε forces EnsureGrid to
// re-side the grid (side >= maxEps is violated), and the tile partition
// must be recut for the new grid — stale tile boundaries from the
// small-ε grid would shear the label space.
func TestTilePartitionRebuiltOnReside(t *testing.T) {
	pts := blobs(5, 600, 150, 40, 0.9, 204)
	ix := BuildIndex(pts, IndexOptions{R: 16, Kind: IndexGrid})

	small := Params{Eps: 0.4, MinPts: 4}
	tiledRun(t, ix, small, 9, 4, nil)
	gridBefore := ix.Grid()
	partBefore := ix.TilePartition(9)
	if gridBefore == nil || partBefore == nil {
		t.Fatal("small-ε tiled run built no grid/partition")
	}

	// 10× the ε: the cached grid's side is too small, EnsureGrid re-sides.
	big := Params{Eps: 4, MinPts: 4}
	want, err := Run(ix, big, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := tiledRun(t, ix, big, 9, 4, nil)
	requireIdentical(t, got, want, "post-reside")

	if ix.Grid() == gridBefore {
		t.Fatal("grid was not re-sided for the larger ε")
	}
	partAfter := ix.TilePartition(9)
	if partAfter == nil {
		t.Fatal("no partition after re-side")
	}
	if partAfter == partBefore {
		t.Fatal("stale tile partition survived the grid re-side")
	}
	if partAfter.Grid() != ix.Grid() {
		t.Fatal("rebuilt partition not keyed to the re-sided grid")
	}
}

// TestTiledSeamBorderDeterminism is the satellite property test: border
// points seam-adjacent and equidistant from core points in two different
// tiles must get the same owner as the untiled run — the CAS
// min-reduction resolves the tie by lowest cluster id regardless of
// which tile's worker attaches first. The constructed case pins the
// geometry; the seeded sweep covers organically arising ties.
func TestTiledSeamBorderDeterminism(t *testing.T) {
	// Constructed: two dense cores far enough apart that they form two
	// clusters, with one border point exactly equidistant from a core
	// member of each, sitting on what a 2-tile cut makes a seam.
	var pts []geom.Point
	put := func(cx, cy float64) {
		for dx := 0; dx < 3; dx++ {
			for dy := 0; dy < 2; dy++ {
				pts = append(pts, geom.Point{X: cx + float64(dx)*0.01, Y: cy + float64(dy)*0.01})
			}
		}
	}
	put(10, 10) // cluster A
	put(14, 10) // cluster B: 4 apart, eps=2.01 cannot bridge A-B cores...
	// ...but the midpoint is within eps of both clusters' cores.
	pts = append(pts, geom.Point{X: 12, Y: 10})
	// Spread filler so the grid has multiple cells/tiles to cut.
	for i := 0; i < 400; i++ {
		pts = append(pts, geom.Point{
			X: float64(i%20) * 1.3,
			Y: float64(i/20) * 1.3,
		})
	}
	p := Params{Eps: 2.01, MinPts: 6}
	ix := BuildIndex(pts, IndexOptions{R: 16, Kind: IndexGrid})
	want, err := Run(ix, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tiles := range []int{2, 4, 9, 16} {
		for _, workers := range []int{1, 4} {
			got := tiledRun(t, ix, p, tiles, workers, nil)
			requireIdentical(t, got, want, "constructed-tie")
		}
	}

	// Seeded sweep: dense random data at an ε that makes most points
	// border-adjacent to several clusters across many random layouts.
	for seed := int64(1); seed <= 20; seed++ {
		pts := blobs(6, 120, 90, 18, 1.1, 300+seed)
		ix := BuildIndex(pts, IndexOptions{R: 16, Kind: IndexGrid})
		p := Params{Eps: 1.3, MinPts: 9}
		want, err := Run(ix, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, tiles := range []int{4, 9} {
			got := tiledRun(t, ix, p, tiles, 4, nil)
			requireIdentical(t, got, want, "seeded-tie")
		}
	}
}

// TestRunTiledCancellation: a context canceled mid-run drains and
// surfaces the context error with no partial result.
func TestRunTiledCancellation(t *testing.T) {
	pts := blobs(4, 500, 200, 30, 0.7, 205)
	ix := BuildIndex(pts, IndexOptions{R: 16, Kind: IndexGrid})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunParallelOpts(ctx, ix, Params{Eps: 0.8, MinPts: 4},
		ParallelOptions{Workers: 4, Tiles: 4}, nil)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled run returned a partial result")
	}
}

// TestRunTiledWithHelperMatches: donated workers joining the tile phases
// through the Helper interface must not perturb the result.
func TestRunTiledWithHelperMatches(t *testing.T) {
	pts := blobs(4, 700, 200, 30, 0.8, 206)
	ix := BuildIndex(pts, IndexOptions{R: 16, Kind: IndexGrid})
	p := Params{Eps: 0.9, MinPts: 5}
	want, err := Run(ix, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := &waitHelper{donors: 3}
	res, err := RunParallelOpts(context.Background(), ix, p,
		ParallelOptions{Workers: 2, Tiles: 9, Helper: h}, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, res, want, "tiled-helper")
}
