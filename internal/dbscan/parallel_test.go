package dbscan

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/data"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

func TestRunParallelValidation(t *testing.T) {
	ix := BuildIndex([]geom.Point{{X: 0, Y: 0}}, IndexOptions{})
	if _, err := RunParallel(ix, Params{Eps: 0, MinPts: 4}, 2, nil); err == nil {
		t.Error("bad params accepted")
	}
}

// requireIdentical asserts got is byte-identical to want: same cluster
// count, same labels (including cluster numbering and the noise set).
func requireIdentical(t *testing.T, got, want *cluster.Result, tag string) {
	t.Helper()
	if got.NumClusters != want.NumClusters {
		t.Fatalf("%s: clusters %d vs %d", tag, got.NumClusters, want.NumClusters)
	}
	if len(got.Labels) != len(want.Labels) {
		t.Fatalf("%s: lengths %d vs %d", tag, len(got.Labels), len(want.Labels))
	}
	for i := range got.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("%s: label[%d] = %d, want %d", tag, i, got.Labels[i], want.Labels[i])
		}
	}
}

// synthetic builds the property-test datasets from internal/data: uniform
// (all-noise), clustered (cF and cV classes), and degenerate shapes.
func synthetic(t *testing.T) map[string][]geom.Point {
	t.Helper()
	gen := func(cfg data.SynthConfig) []geom.Point {
		ds, err := data.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ds.Points
	}
	dup := make([]geom.Point, 600)
	for i := range dup {
		dup[i] = geom.Point{X: 42.5, Y: 17.25}
	}
	return map[string][]geom.Point{
		"uniform":   gen(data.SynthConfig{Class: data.ClassCF, N: 3000, NoiseFrac: 1, Seed: 11}),
		"clustered": gen(data.SynthConfig{Class: data.ClassCF, N: 4000, NoiseFrac: 0.15, Clusters: 6, Seed: 12}),
		"skewed":    gen(data.SynthConfig{Class: data.ClassCV, N: 4000, NoiseFrac: 0.05, Clusters: 5, Seed: 13}),
		"all-dup":   dup,
		"tiny":      {{X: 1, Y: 1}, {X: 1.1, Y: 1}, {X: 9, Y: 9}},
		"single":    {{X: 1, Y: 1}},
		"empty":     nil,
	}
}

// TestRunParallelMatchesSequentialExactly is the property test of the
// intra-variant tentpole: for 1..8 workers, RunParallel must reproduce
// sequential Run exactly — identical labels, cluster numbering, and noise
// set — on uniform, clustered, and degenerate datasets.
func TestRunParallelMatchesSequentialExactly(t *testing.T) {
	params := []Params{
		{Eps: 3, MinPts: 4},
		{Eps: 1.5, MinPts: 8},
		{Eps: 0.5, MinPts: 1},
		{Eps: 8, MinPts: 700}, // MinPts > |all-dup| exercises the all-noise path
	}
	for name, pts := range synthetic(t) {
		ix := BuildIndex(pts, IndexOptions{R: 16})
		for _, p := range params {
			want, err := Run(ix, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			for workers := 1; workers <= 8; workers++ {
				got, err := RunParallel(ix, p, workers, nil)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, got, want, name+"/"+p.String())
			}
		}
	}
}

func TestRunParallelDefaultWorkers(t *testing.T) {
	pts := blobs(3, 200, 100, 25, 0.6, 100)
	ix := BuildIndex(pts, IndexOptions{R: 16})
	p := Params{Eps: 0.8, MinPts: 4}
	want, _ := Run(ix, p, nil)
	got, err := RunParallel(ix, p, 0, nil) // 0 → GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, got, want, "gomaxprocs")
}

func TestRunParallelEmptyAndDegenerate(t *testing.T) {
	ix := BuildIndex(nil, IndexOptions{})
	res, err := RunParallel(ix, Params{Eps: 1, MinPts: 4}, 4, nil)
	if err != nil || res.Len() != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	ix = BuildIndex([]geom.Point{{X: 1, Y: 1}}, IndexOptions{})
	res, _ = RunParallel(ix, Params{Eps: 1, MinPts: 2}, 4, nil)
	if res.NumNoise() != 1 {
		t.Error("single point should be noise")
	}
}

func TestRunParallelSearchCountMatches(t *testing.T) {
	// The chunked core-marking pass must still search each point exactly
	// once, and the per-worker batched flushes must not lose counts.
	pts := blobs(3, 200, 100, 25, 0.6, 103)
	ix := BuildIndex(pts, IndexOptions{R: 16})
	var mSeq, mPar metrics.Counters
	if _, err := Run(ix, Params{Eps: 0.7, MinPts: 4}, &mSeq); err != nil {
		t.Fatal(err)
	}
	if _, err := RunParallel(ix, Params{Eps: 0.7, MinPts: 4}, 4, &mPar); err != nil {
		t.Fatal(err)
	}
	if got := mPar.Snapshot().NeighborSearches; got != int64(len(pts)) {
		t.Errorf("searches = %d, want %d", got, len(pts))
	}
	if mPar.Snapshot() != mSeq.Snapshot() {
		t.Errorf("work counters diverge: parallel %v vs sequential %v",
			mPar.Snapshot(), mSeq.Snapshot())
	}
}

func TestRunParallelAllLabeled(t *testing.T) {
	pts := blobs(3, 150, 150, 25, 0.6, 104)
	ix := BuildIndex(pts, IndexOptions{R: 16})
	res, err := RunParallel(ix, Params{Eps: 0.7, MinPts: 4}, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Labels {
		if l == cluster.Unclassified {
			t.Fatalf("point %d unclassified", i)
		}
	}
}

func TestRunParallelCancellation(t *testing.T) {
	pts := blobs(4, 500, 200, 30, 0.7, 105)
	ix := BuildIndex(pts, IndexOptions{R: 16})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunParallelOpts(ctx, ix, Params{Eps: 1, MinPts: 4},
		ParallelOptions{Workers: 4}, nil); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunCtxCancellation(t *testing.T) {
	pts := blobs(4, 500, 200, 30, 0.7, 106)
	ix := BuildIndex(pts, IndexOptions{R: 16})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, ix, Params{Eps: 1, MinPts: 4}, nil); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// A background context run is unaffected.
	if _, err := RunCtx(context.Background(), ix, Params{Eps: 1, MinPts: 4}, nil); err != nil {
		t.Errorf("background run failed: %v", err)
	}
}

// waitHelper is a test Helper that runs every offered help function on n
// donor goroutines — the shape internal/sched's donor pool provides.
type waitHelper struct{ donors int }

func (h *waitHelper) Offer(_ int32, help func()) (stop func()) {
	var wg sync.WaitGroup
	for i := 0; i < h.donors; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			help()
		}()
	}
	return wg.Wait
}

func TestRunParallelWithHelperMatches(t *testing.T) {
	pts := blobs(4, 300, 150, 25, 0.6, 107)
	ix := BuildIndex(pts, IndexOptions{R: 16})
	p := Params{Eps: 0.8, MinPts: 4}
	want, _ := Run(ix, p, nil)
	for _, donors := range []int{1, 3, 7} {
		got, err := RunParallelOpts(context.Background(), ix, p,
			ParallelOptions{Workers: 1, Helper: &waitHelper{donors: donors}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, got, want, "helper")
	}
}

// countdownCtx is a context whose Err starts reporting cancellation at its
// nth call, making the cancellation point of a parallel run deterministic
// (the stdlib's cancel happens at an arbitrary instant relative to chunk
// boundaries).
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) >= c.after {
		return context.Canceled
	}
	return nil
}

// TestRunParallelCancelFlushesLocalCounters is the regression test for the
// batched-counter audit: when a run is canceled mid-way, every worker's
// metrics.Local batch must still reach the shared Counters (the flush after
// the chunk loop), so no performed ε-search goes uncounted.
//
// With one worker and cancellation at the 3rd Err() call, the mark phase
// deterministically completes exactly two 256-point chunks — each point
// ε-searched once and flushed once per chunk — before observing the cancel,
// so the shared counters must read exactly 512 searches.
func TestRunParallelCancelFlushesLocalCounters(t *testing.T) {
	ds, err := data.Generate(data.SynthConfig{Class: data.ClassCF, N: 2048, NoiseFrac: 0.2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildIndex(ds.Points, IndexOptions{R: 16})
	var m metrics.Counters
	ctx := &countdownCtx{Context: context.Background(), after: 3}
	res, err := RunParallelOpts(ctx, ix, Params{Eps: 1, MinPts: 4},
		ParallelOptions{Workers: 1}, &m)
	if err == nil || res != nil {
		t.Fatalf("expected canceled run, got res=%v err=%v", res, err)
	}
	snap := m.Snapshot()
	if want := int64(2 * parallelChunk); snap.NeighborSearches != want {
		t.Fatalf("NeighborSearches = %d after mid-run cancel, want %d (Local batch dropped?)",
			snap.NeighborSearches, want)
	}
	if snap.CandidatesExamined == 0 || snap.NodesVisited == 0 {
		t.Fatalf("candidate/node counters empty after cancel: %+v", snap)
	}

	// Multi-worker runs cancel at nondeterministic chunk counts, but the
	// invariant stands: whatever chunks completed were flushed whole.
	for _, workers := range []int{2, 4} {
		var mw metrics.Counters
		cw := &countdownCtx{Context: context.Background(), after: 5}
		if _, err := RunParallelOpts(cw, ix, Params{Eps: 1, MinPts: 4},
			ParallelOptions{Workers: workers}, &mw); err == nil {
			t.Fatalf("workers=%d: expected canceled run", workers)
		}
		s := mw.Snapshot()
		if s.NeighborSearches == 0 || s.NeighborSearches%parallelChunk != 0 {
			t.Fatalf("workers=%d: NeighborSearches = %d, want a positive multiple of %d",
				workers, s.NeighborSearches, parallelChunk)
		}
	}
}

// TestNeighborSearchZeroAlloc covers the expansion hot path's counter
// flavor: NeighborSearch into shared atomic Counters (what Run's BFS
// expansion and VariantDBSCAN's EXPANDCLUSTER call per frontier point) must
// not allocate with a warmed destination buffer — tracing disabled adds
// nothing to this path because span events are per-phase, not per-search.
func TestNeighborSearchZeroAlloc(t *testing.T) {
	ds, err := data.Generate(data.SynthConfig{Class: data.ClassCF, N: 20_000, NoiseFrac: 0.15, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildIndex(ds.Points, IndexOptions{R: 70})
	var m metrics.Counters
	dst := make([]int32, 0, 4096)
	for i := 0; i < len(ix.Pts); i += 37 { // warm dst to its high-water mark
		dst = ix.NeighborSearch(ix.Pts[i], 2, &m, dst[:0])
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		dst = ix.NeighborSearch(ix.Pts[i%len(ix.Pts)], 2, &m, dst[:0])
		i += 41
	})
	if allocs != 0 {
		t.Fatalf("NeighborSearch allocated %.1f times per run, want 0", allocs)
	}
}
