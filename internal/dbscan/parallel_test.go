package dbscan

import (
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

func TestRunParallelValidation(t *testing.T) {
	ix := BuildIndex([]geom.Point{{X: 0, Y: 0}}, IndexOptions{})
	if _, err := RunParallel(ix, Params{Eps: 0, MinPts: 4}, 2, nil); err == nil {
		t.Error("bad params accepted")
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		pts  []geom.Point
		p    Params
	}{
		{"blobs", blobs(4, 200, 100, 30, 0.7, 100), Params{Eps: 0.8, MinPts: 4}},
		{"dense", blobs(2, 500, 50, 15, 0.4, 101), Params{Eps: 0.4, MinPts: 8}},
		{"noise-heavy", blobs(1, 100, 500, 25, 0.5, 102), Params{Eps: 1, MinPts: 6}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix := BuildIndex(tc.pts, IndexOptions{R: 16})
			want, err := Run(ix, tc.p, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 4, 16} {
				got, err := RunParallel(ix, tc.p, workers, nil)
				if err != nil {
					t.Fatal(err)
				}
				if got.NumClusters != want.NumClusters {
					t.Errorf("workers=%d: clusters %d vs %d", workers, got.NumClusters, want.NumClusters)
				}
				if d := cluster.DisagreementCount(got, want); d > len(tc.pts)/200 {
					t.Errorf("workers=%d: disagreements = %d", workers, d)
				}
			}
		})
	}
}

func TestRunParallelEmptyAndDegenerate(t *testing.T) {
	ix := BuildIndex(nil, IndexOptions{})
	res, err := RunParallel(ix, Params{Eps: 1, MinPts: 4}, 4, nil)
	if err != nil || res.Len() != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	ix = BuildIndex([]geom.Point{{X: 1, Y: 1}}, IndexOptions{})
	res, _ = RunParallel(ix, Params{Eps: 1, MinPts: 2}, 4, nil)
	if res.NumNoise() != 1 {
		t.Error("single point should be noise")
	}
}

func TestRunParallelSearchCountMatches(t *testing.T) {
	// Level-synchronous expansion must still search each point exactly once.
	pts := blobs(3, 200, 100, 25, 0.6, 103)
	ix := BuildIndex(pts, IndexOptions{R: 16})
	var m metrics.Counters
	if _, err := RunParallel(ix, Params{Eps: 0.7, MinPts: 4}, 4, &m); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().NeighborSearches; got != int64(len(pts)) {
		t.Errorf("searches = %d, want %d", got, len(pts))
	}
}

func TestRunParallelAllLabeled(t *testing.T) {
	pts := blobs(3, 150, 150, 25, 0.6, 104)
	ix := BuildIndex(pts, IndexOptions{R: 16})
	res, err := RunParallel(ix, Params{Eps: 0.7, MinPts: 4}, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Labels {
		if l == cluster.Unclassified {
			t.Fatalf("point %d unclassified", i)
		}
	}
}
