// Package dbscan implements DBSCAN (Ester et al., KDD 1996) — Algorithms 1
// and 2 of the paper — over the shared R-tree indexes that make
// variant-based parallelism possible.
//
// The central object is Index: one spatially sorted copy of the point
// database plus two read-only R-trees,
//
//	T_low  — r points per leaf MBB (r ≈ 70–110), used for ε-searches;
//	T_high — one point per leaf MBB, used for exact cluster-MBB sweeps
//	         in VariantDBSCAN (internal/core).
//
// Because the trees are immutable after construction, any number of variant
// executions may search them concurrently without locking — the property the
// paper's throughput optimization rests on.
package dbscan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"vdbscan/internal/cluster"
	"vdbscan/internal/geom"
	"vdbscan/internal/grid"
	"vdbscan/internal/gridindex"
	"vdbscan/internal/kernel"
	"vdbscan/internal/metrics"
	"vdbscan/internal/rtree"
	"vdbscan/internal/tiling"
)

// IndexKind selects the ε-search substrate an Index routes through.
type IndexKind int

const (
	// IndexRTree is the paper's packed R-tree pair (the default): T_low
	// serves ε-searches, T_high serves cluster-MBB sweeps.
	IndexRTree IndexKind = iota
	// IndexGrid routes ε-searches through a flat uniform cell grid
	// (gridindex.Flat) sized for the variant set's largest ε. The R-trees
	// are still built — T_high keeps serving the cluster-MBB sweeps that
	// reuse depends on, and T_low remains the fallback until the grid is
	// built (EnsureGrid) — but every steady-state ε-search becomes three
	// contiguous block-kernel scans.
	IndexGrid
)

// String implements fmt.Stringer ("rtree" / "grid").
func (k IndexKind) String() string {
	switch k {
	case IndexGrid:
		return "grid"
	default:
		return "rtree"
	}
}

// DefaultR is the T_low leaf occupancy used when the caller does not choose
// one. The paper finds 70 ≤ r ≤ 110 consistently good (§V-C); 70 matches the
// setting used for scenarios S2 and S3.
const DefaultR = 70

// DefaultBinWidth is the width of the pre-index sorting bins (§IV-A uses
// unit width for degree-scaled TEC data).
const DefaultBinWidth = 1.0

// Index is the shared, immutable spatial index for one point database.
type Index struct {
	// Pts is the grid-sorted point array; all clustering runs in this
	// index space.
	Pts []geom.Point
	// X and Y are struct-of-arrays copies of Pts, shared by the flat
	// trees so the ε distance filter scans contiguous float64 slices.
	// Nil when the flat representation is disabled.
	X, Y []float64
	// Fwd maps sorted index -> original index (Fwd[sorted] = original).
	Fwd []int
	// TLow is the low-resolution ε-search tree (r points per MBB).
	TLow *rtree.Tree
	// THigh is the high-resolution tree (one point per MBB).
	THigh *rtree.Tree
	// FlatLow and FlatHigh are the frozen array-backed views of TLow and
	// THigh (rtree.Flat). When non-nil — the default — every search goes
	// through them; the pointer trees remain the build/mutate path and
	// the fallback when flat indexing is disabled.
	//
	// The flat views are generational snapshots: each records the source
	// tree's generation at freeze time, and searches only trust a view
	// whose generation gap is fully accounted for by the staged overlay
	// (see Insert). A view that has fallen behind in any other way — a
	// caller mutating TLow/THigh directly — is never consulted; searches
	// silently fall back to the pointer trees, which are always current.
	FlatLow  *rtree.Flat
	FlatHigh *rtree.Flat

	// Kind selects the ε-search substrate. IndexGrid routes searches
	// through the cell grid below once EnsureGrid has built it; until
	// then (and whenever the grid cannot serve a query) searches fall
	// back to the R-tree path, which is always correct.
	Kind IndexKind

	// grid is the frozen cell grid serving ε-searches when Kind is
	// IndexGrid. It is built lazily by EnsureGrid — the variant set's max
	// ε is not known at BuildIndex time — and installed atomically so
	// concurrent searches either see a complete grid or fall back.
	// Points inserted after the grid build are covered by an append-only
	// tail scan (grid.Len() marks the covered prefix of Pts; Delete is
	// unsupported, so the prefix stays exact).
	grid   atomic.Pointer[gridindex.Flat]
	gridMu sync.Mutex // serializes EnsureGrid builds

	// tiles caches the tile partition for the tiled parallel runner. It
	// is keyed by (grid snapshot pointer, tile target), so an EnsureGrid
	// re-side or re-freeze — which installs a fresh *gridindex.Flat —
	// invalidates it automatically: stale tile boundaries can never
	// outlive the grid they were cut from.
	tiles   atomic.Pointer[tilePart]
	tilesMu sync.Mutex // serializes TilePartition builds

	// ov stages post-Freeze insertions so the frozen views stay usable:
	// searches merge the flat results with this delta instead of
	// abandoning the fast path. Re-freezing folds it into fresh views.
	ov rtree.Overlay
}

// IndexOptions configures BuildIndex.
type IndexOptions struct {
	// R is the T_low leaf occupancy; DefaultR when zero.
	R int
	// BinWidth is the grid sorting bin width; DefaultBinWidth when zero.
	BinWidth float64
	// Fanout overrides the R-tree node fanout; rtree.DefaultFanout when zero.
	Fanout int
	// SkipHigh omits T_high construction for callers that only run plain
	// DBSCAN (saves |D| leaf MBBs of memory).
	SkipHigh bool
	// NoFlat skips the Compact freeze step and leaves searches on the
	// pointer-based trees (the pre-flat layout, kept for ablations and
	// as the vdbscan.WithFlatIndex(false) escape hatch).
	NoFlat bool
	// Kind selects the ε-search substrate (IndexRTree when zero).
	Kind IndexKind
}

func (o IndexOptions) withDefaults() IndexOptions {
	if o.R <= 0 {
		o.R = DefaultR
	}
	if o.BinWidth <= 0 {
		o.BinWidth = DefaultBinWidth
	}
	return o
}

// BuildIndex grid-sorts pts and builds the shared trees. The input slice is
// not modified; the index keeps its own sorted copy.
func BuildIndex(pts []geom.Point, opt IndexOptions) *Index {
	opt = opt.withDefaults()
	sorted, fwd := grid.Sort(pts, opt.BinWidth)
	ix := &Index{
		Pts:  sorted,
		Fwd:  fwd,
		Kind: opt.Kind,
		TLow: rtree.BulkLoad(sorted, rtree.Options{R: opt.R, Fanout: opt.Fanout}),
	}
	if !opt.SkipHigh {
		ix.THigh = rtree.BulkLoad(sorted, rtree.Options{R: 1, Fanout: opt.Fanout})
	}
	if !opt.NoFlat {
		ix.Freeze()
	}
	return ix
}

// Freeze builds the flat array-backed views of the trees (one shared
// pair of SoA coordinate slices, then a Compact per tree). BuildIndex
// calls it unless IndexOptions.NoFlat; callers that assemble an Index by
// hand (ablations, incremental re-indexing) may call it themselves.
// Re-freezing after Insert folds the staged overlay into the fresh views
// and resets it.
func (ix *Index) Freeze() {
	ix.materialize() // mapped indexes have no pointer trees until needed
	if ix.X == nil || len(ix.X) < len(ix.Pts) {
		ix.X = make([]float64, len(ix.Pts))
		ix.Y = make([]float64, len(ix.Pts))
		for i, p := range ix.Pts {
			ix.X[i], ix.Y[i] = p.X, p.Y
		}
	}
	ix.FlatLow = ix.TLow.CompactWithCoords(ix.X, ix.Y)
	if ix.THigh != nil {
		ix.FlatHigh = ix.THigh.CompactWithCoords(ix.X, ix.Y)
	}
	// Fold staged insertions into the cell grid too, keeping its side:
	// the tail scan stays correct without this, but re-freezing is the
	// point where the holder pays O(n) to restore the pure fast path.
	if g := ix.grid.Load(); g != nil && g.Len() != len(ix.Pts) {
		if ng, err := gridindex.Freeze(ix.X, ix.Y, g.Side()); err == nil {
			ix.grid.Store(ng)
		}
	}
	ix.ov.Reset()
}

// Grid exposes the installed cell grid (nil until EnsureGrid has run on
// an IndexGrid index). Read-only.
func (ix *Index) Grid() *gridindex.Flat { return ix.grid.Load() }

// EnsureGrid builds (or rebuilds) the cell grid serving ε-searches when
// Kind is IndexGrid; for other kinds it is a no-op. maxEps should be the
// largest ε the caller is about to run — the variant set's max — so one
// build serves every variant: the grid's cell side is at least maxEps,
// and smaller-ε searches just filter more candidates per cell. Larger-ε
// searches also stay exact (the scanned block widens), so an existing
// grid is only rebuilt when its side is smaller than maxEps or when
// points were inserted since it was built. Safe for concurrent callers;
// searches racing a rebuild use whichever complete grid they observe.
func (ix *Index) EnsureGrid(maxEps float64) error {
	if ix.Kind != IndexGrid || !(maxEps > 0) {
		return nil
	}
	if g := ix.grid.Load(); g != nil && g.Side() >= maxEps && g.Len() == len(ix.Pts) {
		return nil
	}
	ix.gridMu.Lock()
	defer ix.gridMu.Unlock()
	if g := ix.grid.Load(); g != nil && g.Side() >= maxEps && g.Len() == len(ix.Pts) {
		return nil
	}
	x, y := ix.X, ix.Y
	if x == nil || len(x) != len(ix.Pts) {
		x = make([]float64, len(ix.Pts))
		y = make([]float64, len(ix.Pts))
		for i, p := range ix.Pts {
			x[i], y[i] = p.X, p.Y
		}
	}
	g, err := gridindex.Freeze(x, y, maxEps)
	if err != nil {
		return err
	}
	ix.grid.Store(g)
	return nil
}

// tilePart is one cached tile partition together with the key it was
// built under.
type tilePart struct {
	grid   *gridindex.Flat
	target int
	part   *tiling.Partition // nil when tiling was not applicable
}

// TilePartition returns the tile partition of the current grid snapshot
// for the given tile-count target, building and caching it on first use.
// The cache is keyed by the snapshot pointer, so any grid rebuild (an
// EnsureGrid re-side for a larger ε, or a re-freeze after streaming
// inserts) makes the next call cut fresh tiles. Returns nil when there
// is no grid or the grid/target cannot yield at least two tiles; safe
// for concurrent callers.
func (ix *Index) TilePartition(target int) *tiling.Partition {
	g := ix.grid.Load()
	if g == nil {
		return nil
	}
	if tp := ix.tiles.Load(); tp != nil && tp.grid == g && tp.target == target {
		return tp.part
	}
	ix.tilesMu.Lock()
	defer ix.tilesMu.Unlock()
	if tp := ix.tiles.Load(); tp != nil && tp.grid == g && tp.target == target {
		return tp.part
	}
	p := tiling.Build(g, target)
	ix.tiles.Store(&tilePart{grid: g, target: target, part: p})
	return p
}

// ErrDeleteUnsupported is returned by Index.Delete: every execution path
// (Run, RunParallel, VariantDBSCAN) scans the full point array, so a
// removed point would need tombstone handling through all of them.
// Streaming deletions are the job of internal/incremental's Clusterer,
// which owns a dynamic tree plus the same generational overlay machinery.
var ErrDeleteUnsupported = errors.New(
	"dbscan: Index does not support deletion; use the incremental clusterer for delete-capable streaming")

// Insert appends p to the index in sorted index space and returns its
// index; its caller-order (Fwd) position is appended equal to it, so
// Remap keeps working with post-build insertions ordered after the
// original points. This is the post-Freeze mutation API: the pointer
// trees are updated in place and the insertion is staged in the overlay,
// so frozen flat views keep serving searches (merged with the overlay
// delta) instead of being invalidated wholesale. The generation
// accounting guarantees a mutated index can never serve results from a
// stale snapshot alone: if the overlay ever fails to cover the trees'
// generation gap, searches abandon the flat views entirely.
//
// Call Freeze after a batch of insertions to fold the overlay into fresh
// flat views and restore the zero-merge-cost fast path. Note inserted
// points are not grid-sorted, so heavy insertion without re-freezing
// degrades search locality (never correctness).
func (ix *Index) Insert(p geom.Point) int {
	ix.materialize() // mapped indexes grow pointer trees on first mutation
	idx := len(ix.Pts)
	ix.Pts = append(ix.Pts, p)
	ix.Fwd = append(ix.Fwd, idx)
	if ix.X != nil {
		ix.X = append(ix.X, p.X)
		ix.Y = append(ix.Y, p.Y)
	}
	ix.TLow.InsertIndexed(ix.Pts, int32(idx))
	if ix.THigh != nil {
		ix.THigh.InsertIndexed(ix.Pts, int32(idx))
	}
	if ix.FlatLow != nil {
		ix.ov.RecordInsert(int32(idx))
	}
	return idx
}

// Delete always returns ErrDeleteUnsupported (see the error's doc).
func (ix *Index) Delete(int) error { return ErrDeleteUnsupported }

// Overlay exposes the staged post-Freeze insertion delta (read-only).
func (ix *Index) Overlay() *rtree.Overlay { return &ix.ov }

// flatLowCurrent reports how to search T_low: the flat view alone
// (fresh), the flat view merged with the overlay (every tree mutation
// staged), or neither (stale — pointer fallback).
func (ix *Index) flatLowCurrent() (fresh, overlaid bool) {
	f := ix.FlatLow
	if f == nil {
		return false, false
	}
	if ix.TLow == nil {
		// Mapped mode (IndexFromFrozen): there is no pointer tree to drift
		// from — the flat view is the authoritative index.
		return true, false
	}
	gap := ix.TLow.Generation() - f.Generation()
	if gap == 0 {
		return true, false
	}
	return false, ix.ov.Muts() == gap
}

// flatHighCurrent is flatLowCurrent for T_high.
func (ix *Index) flatHighCurrent() (fresh, overlaid bool) {
	f := ix.FlatHigh
	if f == nil {
		return false, false
	}
	if ix.THigh == nil {
		return true, false // mapped mode, as in flatLowCurrent
	}
	gap := ix.THigh.Generation() - f.Generation()
	if gap == 0 {
		return true, false
	}
	return false, ix.ov.Muts() == gap
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.Pts) }

// R returns the leaf occupancy of T_low.
func (ix *Index) R() int {
	if ix.TLow == nil {
		return ix.FlatLow.R()
	}
	return ix.TLow.R()
}

// NeighborSearch is Algorithm 2: it builds the ε-augmented query MBB around
// p, collects candidate points from T_low's overlapping leaf MBBs, and
// distance-filters them. Results are appended to dst (which may be nil) as
// sorted-space point indices, including the query point itself when it is in
// the database. m may be nil.
func (ix *Index) NeighborSearch(p geom.Point, eps float64, m *metrics.Counters, dst []int32) []int32 {
	dst, candidates, nodes := ix.neighborSearch(p, eps, dst)
	m.AddNeighborSearches(1)
	m.AddCandidatesExamined(candidates)
	m.AddNodesVisited(nodes)
	m.AddNeighborsFound(int64(len(dst)))
	return dst
}

// NeighborSearchLocal is NeighborSearch accumulating into a per-worker
// metrics.Local instead of shared atomic Counters. Parallel executions call
// it on their hot path and flush the local once per work chunk, avoiding a
// contended atomic read-modify-write per ε-search. l may be nil.
func (ix *Index) NeighborSearchLocal(p geom.Point, eps float64, l *metrics.Local, dst []int32) []int32 {
	dst, candidates, nodes := ix.neighborSearch(p, eps, dst)
	if l != nil {
		l.NeighborSearches++
		l.CandidatesExamined += candidates
		l.NodesVisited += nodes
		l.NeighborsFound += int64(len(dst))
	}
	return dst
}

// neighborSearch is the uninstrumented Algorithm 2 body shared by the two
// counter flavors. The flat path is allocation-free in steady state (the
// traversal stack is a fixed local array inside rtree.Flat, dst amortizes
// across calls); the pointer path remains as the NoFlat fallback and
// produces byte-identical output.
func (ix *Index) neighborSearch(p geom.Point, eps float64, dst []int32) (out []int32, candidates, nodes int64) {
	if ix.Kind == IndexGrid {
		if g := ix.grid.Load(); g != nil {
			out, c, n := g.EpsSearch(p, eps, dst)
			candidates, nodes = int64(c), int64(n)
			// Append-only tail merge: points inserted after the grid
			// build live at indices ≥ g.Len() (Delete is unsupported, so
			// the covered prefix is exact). The tail is tiny between
			// re-freezes; the block kernel scans it when the SoA slices
			// cover it, the per-point loop otherwise.
			if n0 := g.Len(); n0 < len(ix.Pts) {
				candidates += int64(len(ix.Pts) - n0)
				epsSq := eps * eps
				if len(ix.X) == len(ix.Pts) {
					out = kernel.FilterEps(out, ix.X[n0:], ix.Y[n0:], int32(n0), p.X, p.Y, epsSq)
				} else {
					for i := n0; i < len(ix.Pts); i++ {
						if p.DistSq(ix.Pts[i]) <= epsSq {
							out = append(out, int32(i))
						}
					}
				}
			}
			return out, candidates, nodes
		}
		// No grid yet (EnsureGrid not called, or its build failed): the
		// R-tree path below is always current and byte-identical.
	}
	if fresh, overlaid := ix.flatLowCurrent(); fresh {
		out, c, n := ix.FlatLow.EpsSearch(p, eps, dst)
		return out, int64(c), int64(n)
	} else if overlaid {
		out, c, n := rtree.EpsSearchOverlay(ix.FlatLow, ix.Pts, p, eps, dst, &ix.ov)
		return out, int64(c), int64(n)
	}
	q := geom.QueryMBB(p, eps)
	epsSq := eps * eps
	n := ix.TLow.Search(q, func(lr rtree.LeafRange) {
		end := lr.Start + lr.Count
		for i := lr.Start; i < end; i++ {
			candidates++
			if p.DistSq(ix.Pts[i]) <= epsSq {
				dst = append(dst, int32(i))
			}
		}
	})
	return dst, candidates, int64(n)
}

// HighCandidates appends to dst the indices of all points in T_high leaf
// entries overlapping q and returns dst plus the nodes touched — the
// cluster-MBB sweep of VariantDBSCAN (Algorithm 3, line 11). It routes
// through the flat tree when available.
func (ix *Index) HighCandidates(q geom.MBB, dst []int32) (out []int32, nodes int64) {
	if fresh, overlaid := ix.flatHighCurrent(); fresh {
		out, n := ix.FlatHigh.SearchCandidates(q, dst)
		return out, int64(n)
	} else if overlaid {
		out, n := rtree.SearchCandidatesOverlay(ix.FlatHigh, ix.Pts, q, dst, &ix.ov)
		return out, int64(n)
	}
	n := ix.THigh.Search(q, func(lr rtree.LeafRange) {
		for k := 0; k < lr.Count; k++ {
			dst = append(dst, int32(lr.Start+k))
		}
	})
	return dst, int64(n)
}

// Params are the two DBSCAN inputs that define a variant.
type Params struct {
	Eps    float64
	MinPts int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Eps <= 0 {
		return fmt.Errorf("dbscan: eps must be > 0, got %g", p.Eps)
	}
	if p.MinPts < 1 {
		return fmt.Errorf("dbscan: minpts must be >= 1, got %d", p.MinPts)
	}
	return nil
}

// String implements fmt.Stringer in the paper's (ε, minpts) notation.
func (p Params) String() string {
	return fmt.Sprintf("(%g, %d)", p.Eps, p.MinPts)
}

// Run executes Algorithm 1 over the index and returns labels in sorted index
// space (use Index.Fwd / Result.Remap to translate). m may be nil.
//
// The expansion follows the pseudocode's seed-set semantics: a core point's
// neighbors join the cluster; neighbors that are themselves core points
// extend the frontier; non-core neighbors become border points. A point
// previously marked noise can be relabeled as a border point, matching the
// original DBSCAN definition.
func Run(ix *Index, p Params, m *metrics.Counters) (*cluster.Result, error) {
	return RunCtx(context.Background(), ix, p, m)
}

// cancelCheckInterval is how many outer-loop points RunCtx and RunParallel
// process between context checks. Coarse on purpose: a ctx.Err() call per
// point would be measurable on the ε-search hot path, one per kilopoint is
// not, and a single point's expansion is already bounded work.
const cancelCheckInterval = 1024

// RunCtx is Run with cancellation: ctx is checked every
// cancelCheckInterval points of the outer loop, and the context error is
// returned (with no partial result) once observed.
func RunCtx(ctx context.Context, ix *Index, p Params, m *metrics.Counters) (*cluster.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ix.EnsureGrid(p.Eps); err != nil {
		return nil, err
	}
	n := ix.Len()
	res := cluster.NewResult(n)
	visited := make([]bool, n)
	var cid int32

	// Reusable buffers: the frontier queue and the per-search scratch.
	// Points enter the queue at most once (marked visited at discovery),
	// so the queue is bounded by the cluster size rather than by the sum
	// of all neighborhood sizes.
	queue := make([]int32, 0, 1024)
	scratch := make([]int32, 0, 256)

	// absorb labels every neighbor of a core point and enqueues the
	// not-yet-visited ones for their own ε-search.
	absorb := func(neighbors []int32, cid int32) {
		for _, k := range neighbors {
			if !visited[k] {
				visited[k] = true
				queue = append(queue, k)
			}
			if res.Labels[k] <= 0 { // unclassified or noise -> join cluster
				res.Labels[k] = cid
			}
		}
	}

	for i := 0; i < n; i++ {
		if i%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if visited[i] {
			continue
		}
		visited[i] = true
		scratch = ix.NeighborSearch(ix.Pts[i], p.Eps, m, scratch[:0])
		if len(scratch) < p.MinPts {
			res.Labels[i] = cluster.Noise
			continue
		}
		cid++
		res.Labels[i] = cid
		queue = queue[:0]
		absorb(scratch, cid)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			scratch = ix.NeighborSearch(ix.Pts[j], p.Eps, m, scratch[:0])
			if len(scratch) >= p.MinPts {
				absorb(scratch, cid)
			}
		}
	}
	res.NumClusters = int(cid)
	return res, nil
}

// RunBruteForce is the O(|D|²) reference without any index: the
// "brute-force approach" the paper contrasts in §II-B. It exists to
// cross-validate the indexed implementation and for the ablation benchmarks.
func RunBruteForce(pts []geom.Point, p Params, m *metrics.Counters) (*cluster.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(pts)
	res := cluster.NewResult(n)
	visited := make([]bool, n)
	epsSq := p.Eps * p.Eps

	search := func(q geom.Point, dst []int32) []int32 {
		for i := 0; i < n; i++ {
			if q.DistSq(pts[i]) <= epsSq {
				dst = append(dst, int32(i))
			}
		}
		m.AddNeighborSearches(1)
		m.AddCandidatesExamined(int64(n))
		m.AddNeighborsFound(int64(len(dst)))
		return dst
	}

	var cid int32
	queue := make([]int32, 0, 1024)
	scratch := make([]int32, 0, 256)
	absorb := func(neighbors []int32, cid int32) {
		for _, k := range neighbors {
			if !visited[k] {
				visited[k] = true
				queue = append(queue, k)
			}
			if res.Labels[k] <= 0 {
				res.Labels[k] = cid
			}
		}
	}
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		scratch = search(pts[i], scratch[:0])
		if len(scratch) < p.MinPts {
			res.Labels[i] = cluster.Noise
			continue
		}
		cid++
		res.Labels[i] = cid
		queue = queue[:0]
		absorb(scratch, cid)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			scratch = search(pts[j], scratch[:0])
			if len(scratch) >= p.MinPts {
				absorb(scratch, cid)
			}
		}
	}
	res.NumClusters = int(cid)
	return res, nil
}

// CorePoints returns, in sorted index space, whether each point is a core
// point under p. Exposed for tests and the OPTICS cross-checks.
func CorePoints(ix *Index, p Params, m *metrics.Counters) []bool {
	_ = ix.EnsureGrid(p.Eps) // a failed build just leaves the R-tree path
	n := ix.Len()
	core := make([]bool, n)
	scratch := make([]int32, 0, 256)
	for i := 0; i < n; i++ {
		scratch = ix.NeighborSearch(ix.Pts[i], p.Eps, m, scratch[:0])
		core[i] = len(scratch) >= p.MinPts
	}
	return core
}
