package dbscan

import (
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/geom"
)

func TestRunDisjointSetValidation(t *testing.T) {
	ix := BuildIndex(blobs(1, 20, 0, 10, 0.5, 1), IndexOptions{})
	if _, err := RunDisjointSet(ix, Params{Eps: 0, MinPts: 4}, nil); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestRunDisjointSetMatchesExpansionDBSCAN(t *testing.T) {
	for _, tc := range []struct {
		name string
		pts  []geom.Point
		p    Params
	}{
		{"blobs", blobs(4, 150, 100, 25, 0.6, 2), Params{Eps: 0.7, MinPts: 4}},
		{"dense", blobs(2, 300, 30, 15, 0.4, 3), Params{Eps: 0.4, MinPts: 8}},
		{"sparse-noise", blobs(0, 0, 400, 20, 1, 4), Params{Eps: 1.5, MinPts: 4}},
		{"high-minpts", blobs(3, 200, 0, 25, 0.6, 5), Params{Eps: 0.8, MinPts: 32}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix := BuildIndex(tc.pts, IndexOptions{R: 16})
			got, err := RunDisjointSet(ix, tc.p, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(ix, tc.p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.NumClusters != want.NumClusters {
				t.Errorf("clusters: disjoint-set %d vs expansion %d", got.NumClusters, want.NumClusters)
			}
			// Core structure identical; only border ties may differ.
			if d := cluster.DisagreementCount(got, want); d > len(tc.pts)/100 {
				t.Errorf("disagreements = %d", d)
			}
		})
	}
}

func TestRunDisjointSetEveryPointLabeled(t *testing.T) {
	pts := blobs(3, 100, 100, 20, 0.6, 6)
	ix := BuildIndex(pts, IndexOptions{R: 8})
	res, err := RunDisjointSet(ix, Params{Eps: 0.7, MinPts: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Labels {
		if l == cluster.Unclassified {
			t.Fatalf("point %d unclassified", i)
		}
	}
}

func TestRunDisjointSetEmpty(t *testing.T) {
	ix := BuildIndex(nil, IndexOptions{})
	res, err := RunDisjointSet(ix, Params{Eps: 1, MinPts: 4}, nil)
	if err != nil || res.Len() != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
}

func TestRunDisjointSetCoreInvariantToOrder(t *testing.T) {
	// The disjoint-set formulation is order-insensitive on core points:
	// reversing the input must give the same partition of core points.
	pts := blobs(3, 150, 80, 20, 0.6, 7)
	p := Params{Eps: 0.7, MinPts: 4}
	ixA := BuildIndex(pts, IndexOptions{R: 8})
	a, _ := RunDisjointSet(ixA, p, nil)
	aOrig := a.Remap(ixA.Fwd)

	rev := make([]geom.Point, len(pts))
	for i, pt := range pts {
		rev[len(pts)-1-i] = pt
	}
	ixB := BuildIndex(rev, IndexOptions{R: 8})
	b, _ := RunDisjointSet(ixB, p, nil)
	bRev := b.Remap(ixB.Fwd)
	// Un-reverse to original order.
	bOrig := cluster.NewResult(len(pts))
	bOrig.NumClusters = bRev.NumClusters
	for i := range pts {
		bOrig.Labels[i] = bRev.Labels[len(pts)-1-i]
	}
	if aOrig.NumClusters != bOrig.NumClusters {
		t.Fatalf("cluster count depends on order: %d vs %d", aOrig.NumClusters, bOrig.NumClusters)
	}
	if d := cluster.DisagreementCount(aOrig, bOrig); d > len(pts)/100 {
		t.Errorf("order-dependence beyond border ties: %d", d)
	}
}
