package dbscan

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"vdbscan/internal/cluster"
	"vdbscan/internal/metrics"
	"vdbscan/internal/obs"
	"vdbscan/internal/unionfind"
)

// This file implements intra-variant parallel DBSCAN in the disjoint-set
// style of Patwary et al. (SC 2012) and the theoretically-efficient
// parallel DBSCAN of Wang, Gu & Shun (SIGMOD 2020): instead of the
// inherently sequential breadth-first cluster expansion, the grid-sorted
// point array is partitioned into contiguous chunks that workers claim
// from an atomic cursor, each worker performs the ε-searches and core-point
// marking for its chunks over the shared immutable T_low (safe without
// locking — the trees are read-only by design), core→core edges are linked
// through a lock-free unionfind.ConcurrentDSU, and border points attach to
// the lowest-numbered adjacent cluster with a CAS min-reduction.
//
// The output is *identical* to sequential Run — not merely equivalent up to
// renumbering — because both resolve every tie the same way:
//
//   - Run numbers clusters in formation order, and a cluster forms when the
//     outer loop reaches its minimum-index core point; linking through the
//     index-ordered ConcurrentDSU and labeling core points in ascending
//     index order reproduces exactly that numbering.
//   - Run assigns a border point to the first-formed (lowest-cid) cluster
//     that has a core point within ε of it; the CAS min-reduction computes
//     the same cluster order-independently.
//
// This is the single-variant complement to VariantDBSCAN's inter-variant
// parallelism: it reduces one variant's response time when there are fewer
// runnable variants than cores (the |V| < T and end-of-run-tail regimes),
// while the paper's scheduler maximizes throughput over many variants.
// internal/sched composes the two levels by donating idle pool workers to
// running variants through the Helper interface.

// Helper donates extra worker goroutines to the parallel phases of
// RunParallelOpts. Offer publishes a help function that idle donor
// goroutines may invoke concurrently; help returns when the phase's work is
// exhausted. The returned stop retracts the offer and blocks until every
// in-flight donated invocation has returned, so the caller may rely on
// happens-before between donated writes and its next phase. variant is the
// offering variant execution's ID (ParallelOptions.Variant), which lets the
// helper attribute donated time in traces; helpers that don't trace may
// ignore it.
type Helper interface {
	Offer(variant int32, help func()) (stop func())
}

// ParallelOptions configures RunParallelOpts.
type ParallelOptions struct {
	// Workers is the number of goroutines the run drives itself, including
	// the calling one; <= 0 selects GOMAXPROCS.
	Workers int
	// Helper, when non-nil, contributes donated goroutines to every
	// parallel phase on top of Workers (two-level scheduling).
	Helper Helper
	// Rec, when non-nil, records mark/link/label/border phase spans for
	// variant Variant into the calling worker's trace ring. The nil
	// default costs nothing: every Recorder method is a nil-receiver no-op
	// and no per-point work is ever traced.
	Rec *obs.Recorder
	// Variant is the variant ID used in trace events and Helper offers.
	Variant int32
	// Tiles selects tile-level parallelism (variant → tile → chunk) on
	// grid-kind indexes: the grid is cut into point-balanced tiles with
	// ε-halos, tiles cluster concurrently, and boundary clusters merge
	// across seams — byte-identical to the untiled run. 0 is automatic
	// (tile when Workers and the point count justify it), 1 forces the
	// untiled chunked path, >= 2 requests that many tiles. Ignored (falls
	// back to untiled) when no grid serves the run: R-tree kind, or
	// staged inserts not yet re-frozen.
	Tiles int
}

// parallelChunk is the number of contiguous grid-sorted points a worker
// claims per cursor increment. Chunks are large enough to amortize the
// cursor's atomic add and a metrics flush across many ε-searches, and small
// enough to load-balance the skewed per-point search costs of clustered
// data.
const parallelChunk = 256

// RunParallel executes DBSCAN with intra-variant parallelism and returns a
// result identical to sequential Run (same labels, same cluster numbering,
// same noise set). workers <= 0 selects GOMAXPROCS. m may be nil; counters
// are accumulated per worker and flushed once per chunk, so the totals
// match Run's exactly without per-search atomic contention.
func RunParallel(ix *Index, p Params, workers int, m *metrics.Counters) (*cluster.Result, error) {
	return RunParallelOpts(context.Background(), ix, p, ParallelOptions{Workers: workers}, m)
}

// RunParallelOpts is RunParallel with cancellation and donated workers. ctx
// is checked once per chunk; on cancellation the phases drain and the
// context error is returned with no partial result.
func RunParallelOpts(ctx context.Context, ix *Index, p Params, opt ParallelOptions, m *metrics.Counters) (*cluster.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ix.EnsureGrid(p.Eps); err != nil {
		return nil, err
	}
	n := ix.Len()
	res := cluster.NewResult(n)
	if n == 0 {
		return res, nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if res, handled, err := runTiled(ctx, ix, p, opt, m, workers); handled {
		return res, err
	}
	nChunks := (n + parallelChunk - 1) / parallelChunk
	if workers > nChunks {
		workers = nChunks
	}

	core := make([]bool, n)
	neighborhoods := make([][]int32, n)

	// Phase 1: ε-search every point, mark core points, and retain their
	// neighborhoods for the union and border passes. Workers claim
	// contiguous chunks from the cursor; each writes only its own chunk's
	// entries of core/neighborhoods, so the phase needs no locks.
	var cursor1 atomic.Int64
	mark := func() {
		scratch := make([]int32, 0, 256)
		var arena []int32 // batches neighborhood copies, one alloc per ~16k entries
		var local metrics.Local
		for {
			if ctx.Err() != nil {
				break
			}
			lo := int(cursor1.Add(1)-1) * parallelChunk
			if lo >= n {
				break
			}
			hi := min(lo+parallelChunk, n)
			for i := lo; i < hi; i++ {
				scratch = ix.NeighborSearchLocal(ix.Pts[i], p.Eps, &local, scratch[:0])
				if len(scratch) < p.MinPts {
					continue
				}
				core[i] = true
				if cap(arena)-len(arena) < len(scratch) {
					// Fresh arena; retired arrays stay alive via the
					// neighborhood subslices that point into them.
					size := 16 * 1024
					if size < len(scratch) {
						size = len(scratch)
					}
					arena = make([]int32, 0, size)
				}
				start := len(arena)
				arena = append(arena, scratch...)
				neighborhoods[i] = arena[start:len(arena):len(arena)]
			}
			local.FlushTo(m)
		}
		local.FlushTo(m)
	}
	opt.Rec.PhaseBegin(opt.Variant, obs.PhaseMark)
	runPhase(workers, opt, mark)
	opt.Rec.PhaseEnd(opt.Variant, obs.PhaseMark)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: link core→core ε-edges through the lock-free DSU. Each
	// symmetric edge is linked once, from its higher-index endpoint.
	dsu := unionfind.NewConcurrent(n)
	var cursor2 atomic.Int64
	link := func() {
		for {
			if ctx.Err() != nil {
				break
			}
			lo := int(cursor2.Add(1)-1) * parallelChunk
			if lo >= n {
				break
			}
			hi := min(lo+parallelChunk, n)
			for i := lo; i < hi; i++ {
				if !core[i] {
					continue
				}
				for _, j := range neighborhoods[i] {
					if j < int32(i) && core[j] {
						dsu.Union(int32(i), j)
					}
				}
			}
		}
	}
	opt.Rec.PhaseBegin(opt.Variant, obs.PhaseLink)
	runPhase(workers, opt, link)
	opt.Rec.PhaseEnd(opt.Variant, obs.PhaseLink)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 3 (sequential, O(n) with near-flat finds): number the core
	// sets by ascending minimum core index — precisely Run's formation
	// order — and label core points.
	opt.Rec.PhaseBegin(opt.Variant, obs.PhaseLabel)
	cid := labelCores(res, core, dsu)
	opt.Rec.PhaseEnd(opt.Variant, obs.PhaseLabel)

	// Phase 4: border attachment. A border point joins the lowest-cid
	// cluster that has a core point within ε — Run's first-absorber — via
	// an atomic min-reduction over the retained core neighborhoods.
	attach := make([]atomic.Int32, n)
	opt.Rec.PhaseBegin(opt.Variant, obs.PhaseBorder)
	runPhase(workers, opt, borderBody(ctx, core, neighborhoods, res.Labels, attach))
	opt.Rec.PhaseEnd(opt.Variant, obs.PhaseBorder)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	finishBorders(res, core, attach)
	res.NumClusters = int(cid)
	return res, nil
}

// labelCores is the sequential labeling pass shared by the chunked and
// tiled runners: number the core DSU components by ascending minimum
// core index — precisely Run's formation order — write the core labels,
// and return the cluster count. Because ConcurrentDSU roots are the
// minimum member index, the first time a component is seen is at its
// minimum core point, exactly when Run would have formed it.
func labelCores(res *cluster.Result, core []bool, dsu *unionfind.ConcurrentDSU) int32 {
	n := len(core)
	rootID := make([]int32, n)
	var cid int32
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		r := dsu.Find(int32(i))
		if rootID[r] == 0 {
			cid++
			rootID[r] = cid
		}
		res.Labels[i] = rootID[r]
	}
	return cid
}

// borderBody returns the border-attachment worker body shared by the
// chunked and tiled runners. Workers claim chunks of core points from a
// cursor captured in the closure and CAS-min each non-core neighbor's
// attachment to the lowest adjacent cluster id — Run's first absorber,
// computed order-independently.
func borderBody(ctx context.Context, core []bool, neighborhoods [][]int32, labels []int32, attach []atomic.Int32) func() {
	n := len(core)
	var cursor atomic.Int64
	return func() {
		for {
			if ctx.Err() != nil {
				break
			}
			lo := int(cursor.Add(1)-1) * parallelChunk
			if lo >= n {
				break
			}
			hi := min(lo+parallelChunk, n)
			for i := lo; i < hi; i++ {
				if !core[i] {
					continue
				}
				label := labels[i]
				for _, j := range neighborhoods[i] {
					if core[j] {
						continue
					}
					for {
						cur := attach[j].Load()
						if cur != 0 && cur <= label {
							break
						}
						if attach[j].CompareAndSwap(cur, label) {
							break
						}
					}
				}
			}
		}
	}
}

// finishBorders resolves every non-core point: the attached cluster if
// any core absorbed it, noise otherwise.
func finishBorders(res *cluster.Result, core []bool, attach []atomic.Int32) {
	for i := range core {
		if core[i] {
			continue
		}
		if a := attach[i].Load(); a != 0 {
			res.Labels[i] = a
		} else {
			res.Labels[i] = cluster.Noise
		}
	}
}

// runPhase drives body on workers goroutines (the caller's included) plus
// any donated helpers, returning once every invocation has finished. body
// must be safe for concurrent invocation and return when the phase's work
// is exhausted.
func runPhase(workers int, opt ParallelOptions, body func()) {
	var stop func()
	if opt.Helper != nil {
		stop = opt.Helper.Offer(opt.Variant, body)
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body()
		}()
	}
	body()
	wg.Wait()
	if stop != nil {
		stop()
	}
}
