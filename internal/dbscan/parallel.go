package dbscan

import (
	"runtime"
	"sync"

	"vdbscan/internal/cluster"
	"vdbscan/internal/metrics"
)

// RunParallel executes DBSCAN with intra-variant parallelism: the
// ε-neighborhood searches of each expansion frontier are fanned out to a
// worker pool, in the spirit of the master/worker schemes of Arlia &
// Coppola (Euro-Par 2001) and Brecheisen et al. — the related work the
// paper contrasts with variant-based parallelism (§III).
//
// The master performs the clustering logic; workers only answer range
// queries, which is safe because the shared index is immutable. This is
// the single-variant alternative to VariantDBSCAN: it reduces one
// variant's response time, while VariantDBSCAN maximizes throughput over
// many variants. The ablation benchmarks compare the two regimes.
//
// Results are equivalent to Run up to border-point ordering. workers <= 0
// selects GOMAXPROCS.
func RunParallel(ix *Index, p Params, workers int, m *metrics.Counters) (*cluster.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := ix.Len()
	res := cluster.NewResult(n)
	visited := make([]bool, n)
	var cid int32

	// searchBatch fans the ε-searches of batch out to the pool and returns
	// the neighborhoods, aligned with batch.
	results := make([][]int32, 0, 1024)
	searchBatch := func(batch []int32) [][]int32 {
		results = results[:0]
		for range batch {
			results = append(results, nil)
		}
		if len(batch) == 1 { // avoid goroutine overhead on tiny frontiers
			results[0] = ix.NeighborSearch(ix.Pts[batch[0]], p.Eps, m, nil)
			return results
		}
		var wg sync.WaitGroup
		chunk := (len(batch) + workers - 1) / workers
		for w := 0; w < workers && w*chunk < len(batch); w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(batch) {
				hi = len(batch)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					results[i] = ix.NeighborSearch(ix.Pts[batch[i]], p.Eps, m, nil)
				}
			}(lo, hi)
		}
		wg.Wait()
		return results
	}

	frontier := make([]int32, 0, 1024)
	next := make([]int32, 0, 1024)
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		seed := ix.NeighborSearch(ix.Pts[i], p.Eps, m, nil)
		if len(seed) < p.MinPts {
			res.Labels[i] = cluster.Noise
			continue
		}
		cid++
		res.Labels[i] = cid
		frontier = frontier[:0]
		for _, k := range seed {
			if !visited[k] {
				visited[k] = true
				frontier = append(frontier, k)
			}
			if res.Labels[k] <= 0 {
				res.Labels[k] = cid
			}
		}
		// Level-synchronous expansion: search the whole frontier in
		// parallel, then absorb sequentially (the master).
		for len(frontier) > 0 {
			neighborhoods := searchBatch(frontier)
			next = next[:0]
			for bi := range frontier {
				if len(neighborhoods[bi]) < p.MinPts {
					continue
				}
				for _, k := range neighborhoods[bi] {
					if !visited[k] {
						visited[k] = true
						next = append(next, k)
					}
					if res.Labels[k] <= 0 {
						res.Labels[k] = cid
					}
				}
			}
			frontier, next = next, frontier
		}
	}
	res.NumClusters = int(cid)
	return res, nil
}
