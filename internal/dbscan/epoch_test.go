package dbscan

import (
	"errors"
	"math/rand"
	"testing"

	"vdbscan/internal/geom"
	"vdbscan/internal/rtree"
)

// These tests pin the Index's post-Freeze mutation contract: insertions
// stage in the generational overlay and are immediately visible through
// the flat search path, a mutated index can never answer from a stale
// snapshot alone, and deletion is an explicit typed error rather than a
// silent wrong answer.

func randPts(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 12, Y: rng.Float64() * 12}
	}
	return pts
}

func neighborSet(ix *Index, p geom.Point, eps float64) map[int32]bool {
	got := ix.NeighborSearch(p, eps, nil, nil)
	set := make(map[int32]bool, len(got))
	for _, i := range got {
		set[i] = true
	}
	return set
}

func bruteSet(pts []geom.Point, p geom.Point, eps float64) map[int32]bool {
	epsSq := eps * eps
	set := map[int32]bool{}
	for i, q := range pts {
		if p.DistSq(q) <= epsSq {
			set[int32(i)] = true
		}
	}
	return set
}

func sameSet(a, b map[int32]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestIndexInsertVisibleThroughOverlay freezes an index, inserts points
// through the mutation API, and checks every ε-search and MBB sweep sees
// them without an intervening re-freeze — and that the searches stayed on
// the flat+overlay path (no silent pointer fallback).
func TestIndexInsertVisibleThroughOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ix := BuildIndex(randPts(rng, 200), IndexOptions{})
	if ix.FlatLow == nil {
		t.Fatal("setup: index not frozen")
	}
	for i := 0; i < 40; i++ {
		p := geom.Point{X: rng.Float64() * 12, Y: rng.Float64() * 12}
		idx := ix.Insert(p)
		if idx != ix.Len()-1 {
			t.Fatalf("insert returned %d, len %d", idx, ix.Len())
		}
	}
	if fresh, overlaid := ix.flatLowCurrent(); fresh || !overlaid {
		t.Fatalf("after inserts: fresh=%v overlaid=%v, want overlay-merged path", fresh, overlaid)
	}
	for trial := 0; trial < 20; trial++ {
		q := geom.Point{X: rng.Float64() * 12, Y: rng.Float64() * 12}
		eps := 0.4 + rng.Float64()*1.2
		if got, want := neighborSet(ix, q, eps), bruteSet(ix.Pts, q, eps); !sameSet(got, want) {
			t.Fatalf("trial %d: overlay search diverged from brute force", trial)
		}
		// The R=1 sweep tree must see insertions too (reuse MBB sweeps).
		cand, _ := ix.HighCandidates(geom.QueryMBB(q, eps), nil)
		inCand := map[int32]bool{}
		for _, i := range cand {
			inCand[i] = true
		}
		for i := range bruteSet(ix.Pts, q, eps) {
			if !inCand[i] {
				t.Fatalf("trial %d: HighCandidates missing inserted neighbor %d", trial, i)
			}
		}
	}

	// Re-freeze folds the overlay: back on the zero-merge fast path.
	ix.Freeze()
	if ix.Overlay().Muts() != 0 {
		t.Fatalf("overlay not reset by Freeze: %v", ix.Overlay())
	}
	if fresh, _ := ix.flatLowCurrent(); !fresh {
		t.Fatal("after Freeze: flat view not fresh")
	}
	q := geom.Point{X: 6, Y: 6}
	if got, want := neighborSet(ix, q, 1.0), bruteSet(ix.Pts, q, 1.0); !sameSet(got, want) {
		t.Fatal("post-refreeze search diverged from brute force")
	}
}

// TestIndexRunAfterInsertMatchesBruteForce runs full DBSCAN on a mutated
// (frozen + inserted, not re-frozen) index and checks the clustering
// equals a from-scratch brute-force run over all points.
func TestIndexRunAfterInsertMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	base := randPts(rng, 250)
	ix := BuildIndex(base, IndexOptions{})
	var all []geom.Point
	all = append(all, base...)
	for i := 0; i < 60; i++ {
		p := geom.Point{X: rng.Float64() * 12, Y: rng.Float64() * 12}
		ix.Insert(p)
		all = append(all, p)
	}
	p := Params{Eps: 0.8, MinPts: 4}
	got, err := Run(ix, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunBruteForce(all, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotOrig := got.Remap(ix.Fwd)
	if gotOrig.NumClusters != want.NumClusters || gotOrig.NumNoise() != want.NumNoise() {
		t.Fatalf("clusters/noise: got %d/%d, want %d/%d",
			gotOrig.NumClusters, gotOrig.NumNoise(), want.NumClusters, want.NumNoise())
	}
	// Border points legally attach to either adjacent cluster depending on
	// visit order (sorted vs original space), so compare the
	// order-independent parts: noise set, core partition bijection, and
	// border attachment legality.
	epsSq := p.Eps * p.Eps
	core := make([]bool, len(all))
	for i := range all {
		cnt := 0
		for j := range all {
			if all[i].DistSq(all[j]) <= epsSq {
				cnt++
			}
		}
		core[i] = cnt >= p.MinPts
	}
	g2w, w2g := map[int32]int32{}, map[int32]int32{}
	for i := range all {
		g, w := gotOrig.Labels[i], want.Labels[i]
		if (g <= 0) != (w <= 0) {
			t.Fatalf("point %d: noise disagreement (got %d, want %d)", i, g, w)
		}
		if !core[i] {
			continue
		}
		if prev, ok := g2w[g]; ok && prev != w {
			t.Fatalf("core %d: got-cluster %d spans want-clusters %d and %d", i, g, prev, w)
		}
		if prev, ok := w2g[w]; ok && prev != g {
			t.Fatalf("core %d: want-cluster %d spans got-clusters %d and %d", i, w, prev, g)
		}
		g2w[g], w2g[w] = w, g
	}
	for i := range all {
		if core[i] || gotOrig.Labels[i] <= 0 {
			continue
		}
		ok := false
		for j := range all {
			if core[j] && gotOrig.Labels[j] == gotOrig.Labels[i] && all[i].DistSq(all[j]) <= epsSq {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("border %d attached to cluster %d with no adjacent core", i, gotOrig.Labels[i])
		}
	}
}

// TestIndexStaleSnapshotNeverServes mutates the pointer tree behind the
// overlay's back (the bug class the generation counter exists for): the
// flat view's generation is then unaccounted for, so searches must
// abandon it and fall back to the pointer tree — slower, but correct.
func TestIndexStaleSnapshotNeverServes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ix := BuildIndex(randPts(rng, 150), IndexOptions{})

	// Out-of-band mutation: append the point and insert into the tree
	// directly, skipping Index.Insert's overlay staging.
	rogue := geom.Point{X: 6.001, Y: 6.001}
	idx := int32(len(ix.Pts))
	ix.Pts = append(ix.Pts, rogue)
	ix.Fwd = append(ix.Fwd, int(idx))
	ix.TLow.InsertIndexed(ix.Pts, idx)

	if fresh, overlaid := ix.flatLowCurrent(); fresh || overlaid {
		t.Fatalf("untracked mutation not detected: fresh=%v overlaid=%v", fresh, overlaid)
	}
	got := neighborSet(ix, rogue, 0.5)
	if !got[idx] {
		t.Fatal("fallback search missed the untracked point — stale snapshot served")
	}
	if want := bruteSet(ix.Pts, rogue, 0.5); !sameSet(got, want) {
		t.Fatal("fallback search diverged from brute force")
	}
}

// TestIndexDeleteUnsupported pins the typed error.
func TestIndexDeleteUnsupported(t *testing.T) {
	ix := BuildIndex(randPts(rand.New(rand.NewSource(24)), 10), IndexOptions{})
	if err := ix.Delete(3); !errors.Is(err, ErrDeleteUnsupported) {
		t.Fatalf("Delete = %v, want ErrDeleteUnsupported", err)
	}
}

// TestCompactOversizeGuard documents that the int32 guard is wired into
// the compaction path the Index uses (the unit bounds check lives in
// rtree; here we just pin that Compact still works at realistic sizes
// and the guard constant is the documented one).
func TestCompactOversizeGuard(t *testing.T) {
	tr := rtree.New(rtree.Options{R: 4})
	for i := 0; i < 100; i++ {
		tr.Insert(geom.Point{X: float64(i), Y: 0})
	}
	f := tr.Compact()
	if f.Len() != 100 {
		t.Fatalf("compact len = %d", f.Len())
	}
	if rtree.ErrFlatTooLarge == nil {
		t.Fatal("guard error must be exported for callers to match")
	}
}
