package dbscan

import (
	"fmt"

	"vdbscan/internal/geom"
	"vdbscan/internal/gridindex"
	"vdbscan/internal/rtree"
)

// FrozenParts is the complete frozen state of an Index, decomposed into
// the arrays and scalars the persistence layer serializes: the sorted
// point storage, the sorted→original permutation, and the flat parts of
// every frozen view. High and Grid are optional (SkipHigh builds, and
// grid-kind indexes whose grid was never built). All slices alias the
// index (or, on the way back in, the caller's file-backed memory) — the
// decomposition copies nothing.
type FrozenParts struct {
	Pts  []geom.Point
	X, Y []float64
	Fwd  []int
	R    int
	Kind IndexKind
	Low  rtree.FlatParts
	High *rtree.FlatParts
	Grid *gridindex.FlatParts
}

// FrozenParts exports the index's frozen state for serialization. It
// requires the frozen views to be current: an index built with NoFlat, or
// one carrying staged post-Freeze insertions, returns an error (call
// Freeze first — the snapshot format has no overlay section on purpose;
// staged points are the WAL's job).
func (ix *Index) FrozenParts() (FrozenParts, error) {
	if ix.FlatLow == nil {
		return FrozenParts{}, fmt.Errorf("dbscan: index has no frozen views (built with NoFlat?)")
	}
	if fresh, _ := ix.flatLowCurrent(); !fresh {
		return FrozenParts{}, fmt.Errorf("dbscan: frozen views are stale (staged insertions? call Freeze first)")
	}
	if ix.X == nil || len(ix.X) < len(ix.Pts) {
		return FrozenParts{}, fmt.Errorf("dbscan: index has no SoA coordinate slices")
	}
	p := FrozenParts{
		Pts:  ix.Pts,
		X:    ix.X[:len(ix.Pts)],
		Y:    ix.Y[:len(ix.Pts)],
		Fwd:  ix.Fwd,
		R:    ix.R(),
		Kind: ix.Kind,
		Low:  ix.FlatLow.Parts(),
	}
	if ix.FlatHigh != nil {
		hp := ix.FlatHigh.Parts()
		p.High = &hp
	}
	if g := ix.grid.Load(); g != nil {
		gp := g.Parts()
		p.Grid = &gp
	}
	return p, nil
}

// IndexFromFrozen reconstructs a servable Index around previously exported
// frozen parts, aliasing every input slice — this is the mmap load path,
// so a reconstructed index answers ε-searches straight out of file-backed
// memory with zero deserialization.
//
// The index comes back in mapped mode: flat views only, no pointer trees.
// Searches (NeighborSearch, HighCandidates, the grid path) work
// immediately; the build/mutate pointer trees are materialized lazily on
// the first Insert or Freeze. Because the parts may come from an untrusted
// file, everything is validated before use — array length agreement, the
// Fwd permutation, SoA/AoS coordinate consistency, and (via the parts
// constructors) full structural validation of each view. Mutating the
// aliased arrays through Insert is safe even when they are mapped
// read-only: every slice arrives at full capacity, so appends reallocate
// to the heap.
func IndexFromFrozen(p FrozenParts) (*Index, error) {
	bad := func(format string, args ...any) (*Index, error) {
		return nil, fmt.Errorf("dbscan: invalid frozen parts: "+format, args...)
	}
	n := len(p.Pts)
	if len(p.X) != n || len(p.Y) != n || len(p.Fwd) != n {
		return bad("array lengths disagree: %d points, %d/%d coords, %d fwd", n, len(p.X), len(p.Y), len(p.Fwd))
	}
	seen := make([]bool, n)
	for i, f := range p.Fwd {
		if f < 0 || f >= n || seen[f] {
			return bad("fwd is not a permutation at %d", i)
		}
		seen[f] = true
	}
	for i := range p.Pts {
		if !sameFloat(p.Pts[i].X, p.X[i]) || !sameFloat(p.Pts[i].Y, p.Y[i]) {
			return bad("SoA coords disagree with points at %d", i)
		}
	}
	low, err := rtree.FlatFromParts(p.Low, p.X, p.Y, p.Pts)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		Pts:     p.Pts,
		X:       p.X,
		Y:       p.Y,
		Fwd:     p.Fwd,
		Kind:    p.Kind,
		FlatLow: low,
	}
	if p.High != nil {
		high, err := rtree.FlatFromParts(*p.High, p.X, p.Y, p.Pts)
		if err != nil {
			return nil, err
		}
		ix.FlatHigh = high
	}
	if p.Grid != nil {
		g, err := gridindex.FlatFromParts(*p.Grid)
		if err != nil {
			return nil, err
		}
		if g.Len() > n {
			return bad("grid covers %d points, index has %d", g.Len(), n)
		}
		ix.grid.Store(g)
	}
	return ix, nil
}

// sameFloat is bitwise-tolerant float equality: equal values, or both NaN.
// Plain == would reject NaN coordinates that round-trip perfectly.
func sameFloat(a, b float64) bool { return a == b || (a != a && b != b) }

// materialize builds the pointer build/mutate trees for a mapped index
// (IndexFromFrozen), which starts with flat views only. BulkLoad is
// deterministic and leaves the tree generation at 0 — the same value the
// frozen views carry — so after materialization the views still read as
// fresh and keep serving searches; the new trees exist purely to absorb
// subsequent Inserts through the usual overlay accounting.
func (ix *Index) materialize() {
	if ix.TLow != nil {
		return
	}
	st := ix.FlatLow.Stats()
	ix.TLow = rtree.BulkLoad(ix.Pts, rtree.Options{R: st.R, Fanout: st.Fanout})
	if ix.FlatHigh != nil && ix.THigh == nil {
		hst := ix.FlatHigh.Stats()
		ix.THigh = rtree.BulkLoad(ix.Pts, rtree.Options{R: 1, Fanout: hst.Fanout})
	}
}
