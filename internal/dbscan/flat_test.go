package dbscan

import (
	"testing"

	"vdbscan/internal/data"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

// TestFlatIndexMatchesPointerExactly is the property test of the flat-index
// tentpole: with the trees frozen into the array-backed layout (the
// default), both sequential Run and RunParallel at 1..8 workers must
// reproduce the pointer-tree clustering byte-identically — same labels,
// cluster numbering, noise set — and the work counters (searches,
// candidates, nodes visited) must agree exactly, since the flat traversal
// touches the same logical nodes and leaf runs.
func TestFlatIndexMatchesPointerExactly(t *testing.T) {
	params := []Params{
		{Eps: 3, MinPts: 4},
		{Eps: 1.5, MinPts: 8},
		{Eps: 0.5, MinPts: 1},
	}
	for name, pts := range synthetic(t) {
		ptrIx := BuildIndex(pts, IndexOptions{R: 16, NoFlat: true})
		flatIx := BuildIndex(pts, IndexOptions{R: 16})
		if flatIx.FlatLow == nil || ptrIx.FlatLow != nil {
			t.Fatalf("%s: flat default not honored (flat=%v ptr=%v)", name, flatIx.FlatLow, ptrIx.FlatLow)
		}
		for _, p := range params {
			var mp, mf metrics.Counters
			want, err := Run(ptrIx, p, &mp)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(flatIx, p, &mf)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, got, want, name+"/sequential")
			if sp, sf := mp.Snapshot(), mf.Snapshot(); sp != sf {
				t.Fatalf("%s %v: work counters differ\npointer: %+v\nflat:    %+v", name, p, sp, sf)
			}
			for workers := 1; workers <= 8; workers++ {
				got, err := RunParallel(flatIx, p, workers, nil)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, got, want, name+"/parallel")
			}
		}
	}
}

// TestHighCandidatesMatchesPointer checks the cluster-MBB sweep helper
// used by VariantDBSCAN's reuse pass on both index layouts.
func TestHighCandidatesMatchesPointer(t *testing.T) {
	ds, err := data.Generate(data.SynthConfig{Class: data.ClassCF, N: 2000, NoiseFrac: 0.2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	ptrIx := BuildIndex(ds.Points, IndexOptions{R: 16, NoFlat: true})
	flatIx := BuildIndex(ds.Points, IndexOptions{R: 16})
	boxes := []geom.MBB{
		{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		{MinX: -5, MinY: -5, MaxX: 200, MaxY: 200},
		{MinX: 40, MinY: 40, MaxX: 41, MaxY: 41},
		geom.EmptyMBB(),
	}
	for _, q := range boxes {
		want, wantNodes := ptrIx.HighCandidates(q, nil)
		got, gotNodes := flatIx.HighCandidates(q, nil)
		if gotNodes != wantNodes {
			t.Fatalf("%v: nodes %d vs %d", q, gotNodes, wantNodes)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d candidates vs %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: candidate %d is %d, want %d", q, i, got[i], want[i])
			}
		}
	}
}

// TestNeighborSearchLocalZeroAlloc asserts the paper-critical hot path —
// NeighborSearchLocal over the flat index with a warmed destination buffer
// and a per-worker metrics.Local — runs without heap allocation.
func TestNeighborSearchLocalZeroAlloc(t *testing.T) {
	ds, err := data.Generate(data.SynthConfig{Class: data.ClassCF, N: 20_000, NoiseFrac: 0.15, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildIndex(ds.Points, IndexOptions{R: 70})
	var local metrics.Local
	dst := make([]int32, 0, 4096)
	for i := 0; i < len(ix.Pts); i += 37 { // warm dst to its high-water mark
		dst = ix.NeighborSearchLocal(ix.Pts[i], 2, &local, dst[:0])
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		dst = ix.NeighborSearchLocal(ix.Pts[i%len(ix.Pts)], 2, &local, dst[:0])
		i += 41
	})
	if allocs != 0 {
		t.Fatalf("NeighborSearchLocal allocated %.1f times per run, want 0", allocs)
	}
}
