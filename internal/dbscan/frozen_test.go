package dbscan_test

import (
	"math/rand"
	"testing"

	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

func frozenPoints(n int, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rnd.Float64() * 60, Y: rnd.Float64() * 60}
	}
	return pts
}

// TestIndexFrozenRoundTrip decomposes an index with FrozenParts, rebuilds
// it with IndexFromFrozen, and requires byte-identical DBSCAN labels from
// the mapped-mode index — for both index kinds, with and without a built
// grid.
func TestIndexFrozenRoundTrip(t *testing.T) {
	pts := frozenPoints(4000, 17)
	params := dbscan.Params{Eps: 1.5, MinPts: 4}
	for _, kind := range []dbscan.IndexKind{dbscan.IndexRTree, dbscan.IndexGrid} {
		ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{Kind: kind})
		if kind == dbscan.IndexGrid {
			if err := ix.EnsureGrid(params.Eps); err != nil {
				t.Fatalf("EnsureGrid: %v", err)
			}
		}
		want, err := dbscan.Run(ix, params, &metrics.Counters{})
		if err != nil {
			t.Fatalf("kind=%v: run: %v", kind, err)
		}

		parts, err := ix.FrozenParts()
		if err != nil {
			t.Fatalf("kind=%v: FrozenParts: %v", kind, err)
		}
		if kind == dbscan.IndexGrid && parts.Grid == nil {
			t.Fatalf("grid-kind parts carry no grid")
		}
		loaded, err := dbscan.IndexFromFrozen(parts)
		if err != nil {
			t.Fatalf("kind=%v: IndexFromFrozen: %v", kind, err)
		}
		if loaded.TLow != nil || loaded.THigh != nil {
			t.Fatalf("mapped index should have no pointer trees before mutation")
		}
		got, err := dbscan.Run(loaded, params, &metrics.Counters{})
		if err != nil {
			t.Fatalf("kind=%v: mapped run: %v", kind, err)
		}
		if len(got.Labels) != len(want.Labels) || got.NumClusters != want.NumClusters {
			t.Fatalf("kind=%v: shape diverged", kind)
		}
		for i := range want.Labels {
			if want.Labels[i] != got.Labels[i] {
				t.Fatalf("kind=%v: label %d: %d vs %d", kind, i, want.Labels[i], got.Labels[i])
			}
		}
	}
}

// TestMappedIndexInsert mutates a mapped index: Insert must lazily
// materialize the pointer trees, stage through the overlay, and keep
// search results identical to a from-scratch index over the same points.
func TestMappedIndexInsert(t *testing.T) {
	pts := frozenPoints(1500, 23)
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{})
	parts, err := ix.FrozenParts()
	if err != nil {
		t.Fatalf("FrozenParts: %v", err)
	}
	loaded, err := dbscan.IndexFromFrozen(parts)
	if err != nil {
		t.Fatalf("IndexFromFrozen: %v", err)
	}

	extra := frozenPoints(200, 29)
	for _, p := range extra {
		loaded.Insert(p)
	}
	if loaded.TLow == nil {
		t.Fatalf("Insert did not materialize the pointer trees")
	}

	// Reference: the original index with the same insertions.
	for _, p := range extra {
		ix.Insert(p)
	}
	params := dbscan.Params{Eps: 1.5, MinPts: 4}
	want, err := dbscan.Run(ix, params, &metrics.Counters{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got, err := dbscan.Run(loaded, params, &metrics.Counters{})
	if err != nil {
		t.Fatalf("mapped run: %v", err)
	}
	for i := range want.Labels {
		if want.Labels[i] != got.Labels[i] {
			t.Fatalf("label %d: %d vs %d", i, want.Labels[i], got.Labels[i])
		}
	}

	// Freeze folds the staged overlay on both sides; results must hold.
	loaded.Freeze()
	ix.Freeze()
	got2, err := dbscan.Run(loaded, params, &metrics.Counters{})
	if err != nil {
		t.Fatalf("post-freeze run: %v", err)
	}
	for i := range want.Labels {
		if want.Labels[i] != got2.Labels[i] {
			t.Fatalf("post-freeze label %d: %d vs %d", i, want.Labels[i], got2.Labels[i])
		}
	}
}

// TestFrozenPartsRefusesStaged pins the contract that staged insertions
// never silently vanish into a snapshot.
func TestFrozenPartsRefusesStaged(t *testing.T) {
	ix := dbscan.BuildIndex(frozenPoints(500, 31), dbscan.IndexOptions{})
	ix.Insert(geom.Point{X: 1, Y: 1})
	if _, err := ix.FrozenParts(); err == nil {
		t.Fatalf("FrozenParts accepted staged insertions")
	}
	ix.Freeze()
	if _, err := ix.FrozenParts(); err != nil {
		t.Fatalf("FrozenParts after Freeze: %v", err)
	}
}

// TestIndexFromFrozenRejects feeds inconsistent frozen parts and requires
// typed rejection.
func TestIndexFromFrozenRejects(t *testing.T) {
	ix := dbscan.BuildIndex(frozenPoints(300, 37), dbscan.IndexOptions{})
	good, err := ix.FrozenParts()
	if err != nil {
		t.Fatalf("FrozenParts: %v", err)
	}

	badFwd := good
	badFwd.Fwd = append([]int(nil), good.Fwd...)
	badFwd.Fwd[0] = badFwd.Fwd[1] // duplicate — not a permutation
	if _, err := dbscan.IndexFromFrozen(badFwd); err == nil {
		t.Fatalf("non-permutation fwd accepted")
	}

	badCoord := good
	badCoord.X = append([]float64(nil), good.X...)
	badCoord.X[5]++ // SoA no longer matches Pts
	if _, err := dbscan.IndexFromFrozen(badCoord); err == nil {
		t.Fatalf("diverging SoA coords accepted")
	}

	badLen := good
	badLen.Fwd = good.Fwd[:len(good.Fwd)-1]
	if _, err := dbscan.IndexFromFrozen(badLen); err == nil {
		t.Fatalf("length mismatch accepted")
	}
}
