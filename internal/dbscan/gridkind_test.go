package dbscan

import (
	"context"
	"testing"

	"vdbscan/internal/data"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

// TestGridKindMatchesRTreeExactly is the cross-kind equivalence property:
// an IndexGrid run must produce byte-identical labels to the IndexRTree
// run — DBSCAN labels depend only on each point's neighbor *set*, which
// both substrates answer exactly — at every worker width, and the
// per-point metrics (searches issued, neighbors found) must agree too.
// CandidatesExamined/NodesVisited legitimately differ: the structures
// prune differently.
func TestGridKindMatchesRTreeExactly(t *testing.T) {
	params := Params{Eps: 2, MinPts: 4}
	for name, pts := range synthetic(t) {
		rix := BuildIndex(pts, IndexOptions{R: 70})
		gix := BuildIndex(pts, IndexOptions{R: 70, Kind: IndexGrid})

		var rm, gm metrics.Counters
		want, err := Run(rix, params, &rm)
		if err != nil {
			t.Fatalf("%s: rtree run: %v", name, err)
		}
		got, err := Run(gix, params, &gm)
		if err != nil {
			t.Fatalf("%s: grid run: %v", name, err)
		}
		if gix.Grid() == nil && len(pts) > 0 {
			t.Fatalf("%s: grid was never built", name)
		}
		requireIdentical(t, got, want, name+"/serial")

		rs, gs := rm.Snapshot(), gm.Snapshot()
		if rs.NeighborSearches != gs.NeighborSearches {
			t.Fatalf("%s: searches %d vs %d", name, gs.NeighborSearches, rs.NeighborSearches)
		}
		if rs.NeighborsFound != gs.NeighborsFound {
			t.Fatalf("%s: neighbors found %d vs %d", name, gs.NeighborsFound, rs.NeighborsFound)
		}

		for _, workers := range []int{1, 2, 3, 8} {
			got, err := RunParallel(gix, params, workers, nil)
			if err != nil {
				t.Fatalf("%s: grid parallel(%d): %v", name, workers, err)
			}
			requireIdentical(t, got, want, name+"/parallel")
		}
	}
}

// TestGridKindStreamingInserts exercises the append-only tail merge: the
// grid covers the frozen prefix, inserted points are brute-checked, and a
// re-freeze folds them in — labels must match the R-tree path at every
// stage.
func TestGridKindStreamingInserts(t *testing.T) {
	ds, err := data.Generate(data.SynthConfig{Class: data.ClassCF, N: 4000, NoiseFrac: 0.2, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	pts := ds.Points
	params := Params{Eps: 2, MinPts: 4}

	gix := BuildIndex(pts[:3000], IndexOptions{Kind: IndexGrid})
	rix := BuildIndex(pts[:3000], IndexOptions{})
	if _, err := Run(gix, params, nil); err != nil { // installs the grid
		t.Fatal(err)
	}
	n0 := gix.Grid().Len()
	for _, p := range pts[3000:] {
		gix.Insert(p)
		rix.Insert(p)
	}
	if gix.Grid().Len() != n0 {
		t.Fatal("insert should not rebuild the grid")
	}
	got, err := Run(gix, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(rix, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The two indexes sorted their base points identically (same input,
	// same bin width) and appended the tail in the same order, so label
	// slices are comparable without remapping.
	requireIdentical(t, got, want, "tail-merge")

	gix.Freeze()
	if gix.Grid().Len() != gix.Len() {
		t.Fatalf("freeze left grid at %d of %d points", gix.Grid().Len(), gix.Len())
	}
	got, err = Run(gix, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, got, want, "post-refreeze")
}

// TestGridKindParamsSweep runs several ε values over one grid-kind index
// against fresh R-tree runs: ε below the side reuses the build untouched,
// ε above it triggers the one-time re-side (EnsureGrid), and direct
// searches past the side stay exact via the widened block either way.
func TestGridKindParamsSweep(t *testing.T) {
	ds, err := data.Generate(data.SynthConfig{Class: data.ClassCV, N: 6000, NoiseFrac: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	gix := BuildIndex(ds.Points, IndexOptions{Kind: IndexGrid})
	rix := BuildIndex(ds.Points, IndexOptions{})
	if err := gix.EnsureGrid(2.5); err != nil {
		t.Fatal(err)
	}
	side := gix.Grid().Side()
	for _, eps := range []float64{0.5, 1, 2.5} {
		p := Params{Eps: eps, MinPts: 4}
		got, err := Run(gix, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(rix, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, got, want, p.String())
		if gix.Grid().Side() != side {
			t.Fatalf("eps %g <= side %g rebuilt the grid (side now %g)",
				eps, side, gix.Grid().Side())
		}
	}
	// ε beyond the side: the run re-sides the grid once and stays exact.
	p := Params{Eps: 4, MinPts: 4}
	got, err := Run(gix, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(rix, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, got, want, p.String())
	if gix.Grid().Side() < 4 {
		t.Fatalf("eps 4 left grid side at %g", gix.Grid().Side())
	}
}

// TestNeighborSearchGridZeroAlloc mirrors TestNeighborSearchLocalZeroAlloc
// for the grid substrate: once dst is warm, grid-kind ε-searches stay off
// the heap.
func TestNeighborSearchGridZeroAlloc(t *testing.T) {
	ds, err := data.Generate(data.SynthConfig{Class: data.ClassCF, N: 20_000, NoiseFrac: 0.15, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildIndex(ds.Points, IndexOptions{Kind: IndexGrid})
	if err := ix.EnsureGrid(2); err != nil {
		t.Fatal(err)
	}
	var local metrics.Local
	dst := make([]int32, 0, 4096)
	for i := 0; i < len(ix.Pts); i += 37 { // warm dst to its high-water mark
		dst = ix.NeighborSearchLocal(ix.Pts[i], 2, &local, dst[:0])
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		dst = ix.NeighborSearchLocal(ix.Pts[i%len(ix.Pts)], 2, &local, dst[:0])
		i += 41
	})
	if allocs != 0 {
		t.Fatalf("grid NeighborSearchLocal allocated %.1f times per run, want 0", allocs)
	}
}

// TestEnsureGridNoOpOnRTreeKind pins the contract that EnsureGrid does
// nothing (and costs nothing) on the default kind.
func TestEnsureGridNoOpOnRTreeKind(t *testing.T) {
	ix := BuildIndex([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}, IndexOptions{})
	if err := ix.EnsureGrid(5); err != nil {
		t.Fatal(err)
	}
	if ix.Grid() != nil {
		t.Fatal("EnsureGrid built a grid on an IndexRTree index")
	}
}

// TestGridKindCancellation: grid-kind runs still honor context
// cancellation through the shared RunCtx loop.
func TestGridKindCancellation(t *testing.T) {
	ds, err := data.Generate(data.SynthConfig{Class: data.ClassCF, N: 10_000, NoiseFrac: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildIndex(ds.Points, IndexOptions{Kind: IndexGrid})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, ix, Params{Eps: 2, MinPts: 4}, nil); err == nil {
		t.Fatal("canceled context accepted")
	}
}
