package dbscan

import (
	"math"
	"math/rand"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

// blobs generates k Gaussian blobs of m points each plus noise uniform
// points over extent; deterministic per seed.
func blobs(k, m, noise int, extent, sigma float64, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, k*m+noise)
	for c := 0; c < k; c++ {
		cx, cy := rnd.Float64()*extent, rnd.Float64()*extent
		for i := 0; i < m; i++ {
			pts = append(pts, geom.Point{
				X: cx + rnd.NormFloat64()*sigma,
				Y: cy + rnd.NormFloat64()*sigma,
			})
		}
	}
	for i := 0; i < noise; i++ {
		pts = append(pts, geom.Point{X: rnd.Float64() * extent, Y: rnd.Float64() * extent})
	}
	return pts
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{Eps: 0.5, MinPts: 4}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (Params{Eps: 0, MinPts: 4}).Validate(); err == nil {
		t.Error("eps=0 accepted")
	}
	if err := (Params{Eps: -1, MinPts: 4}).Validate(); err == nil {
		t.Error("eps<0 accepted")
	}
	if err := (Params{Eps: 1, MinPts: 0}).Validate(); err == nil {
		t.Error("minpts=0 accepted")
	}
	if s := (Params{Eps: 0.2, MinPts: 32}).String(); s != "(0.2, 32)" {
		t.Errorf("String = %q", s)
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	ix := BuildIndex([]geom.Point{{X: 0, Y: 0}}, IndexOptions{})
	if _, err := Run(ix, Params{Eps: -1, MinPts: 2}, nil); err == nil {
		t.Error("Run accepted bad params")
	}
	if _, err := RunBruteForce(nil, Params{Eps: 1, MinPts: 0}, nil); err == nil {
		t.Error("RunBruteForce accepted bad params")
	}
}

func TestBuildIndexDefaults(t *testing.T) {
	pts := blobs(2, 100, 20, 50, 1, 1)
	ix := BuildIndex(pts, IndexOptions{})
	if ix.Len() != len(pts) {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.R() != DefaultR {
		t.Errorf("R = %d, want %d", ix.R(), DefaultR)
	}
	if ix.THigh == nil || ix.THigh.R() != 1 {
		t.Error("THigh should be built with r=1")
	}
	// Fwd is a permutation.
	seen := make([]bool, len(pts))
	for _, orig := range ix.Fwd {
		if seen[orig] {
			t.Fatal("Fwd not a permutation")
		}
		seen[orig] = true
	}
}

func TestBuildIndexSkipHigh(t *testing.T) {
	ix := BuildIndex(blobs(1, 50, 0, 10, 1, 2), IndexOptions{SkipHigh: true})
	if ix.THigh != nil {
		t.Error("SkipHigh should omit THigh")
	}
}

func TestNeighborSearchExact(t *testing.T) {
	pts := blobs(3, 200, 50, 30, 1, 3)
	ix := BuildIndex(pts, IndexOptions{R: 16})
	rnd := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		q := geom.Point{X: rnd.Float64() * 30, Y: rnd.Float64() * 30}
		eps := 0.5 + rnd.Float64()*2
		got := ix.NeighborSearch(q, eps, nil, nil)
		// Linear scan over sorted points gives ground truth.
		want := 0
		for _, p := range ix.Pts {
			if q.DistSq(p) <= eps*eps {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("NeighborSearch(%v, %g) = %d points, want %d", q, eps, len(got), want)
		}
		for _, idx := range got {
			if q.DistSq(ix.Pts[idx]) > eps*eps {
				t.Fatalf("returned point %d outside eps", idx)
			}
		}
	}
}

func TestNeighborSearchCountsMetrics(t *testing.T) {
	pts := blobs(1, 500, 0, 10, 1, 5)
	ix := BuildIndex(pts, IndexOptions{R: 32})
	var m metrics.Counters
	ix.NeighborSearch(geom.Point{X: 5, Y: 5}, 1, &m, nil)
	s := m.Snapshot()
	if s.NeighborSearches != 1 {
		t.Errorf("searches = %d", s.NeighborSearches)
	}
	if s.CandidatesExamined < s.NeighborsFound {
		t.Errorf("candidates %d < neighbors %d", s.CandidatesExamined, s.NeighborsFound)
	}
	if s.NodesVisited < 1 {
		t.Errorf("nodes = %d", s.NodesVisited)
	}
}

// Known tiny configuration with hand-computable answer.
func TestRunTinyKnownClusters(t *testing.T) {
	// Two tight triads far apart plus one isolated point.
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0, Y: 0.5}, // cluster A
		{X: 10, Y: 10}, {X: 10.5, Y: 10}, {X: 10, Y: 10.5}, // cluster B
		{X: 50, Y: 50}, // noise
	}
	ix := BuildIndex(pts, IndexOptions{R: 2})
	res, err := Run(ix, Params{Eps: 1, MinPts: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.NumClusters)
	}
	if res.NumNoise() != 1 {
		t.Fatalf("noise = %d, want 1", res.NumNoise())
	}
	// Remap to original order and check the two triads landed together.
	orig := res.Remap(ix.Fwd)
	if orig.Labels[0] != orig.Labels[1] || orig.Labels[1] != orig.Labels[2] {
		t.Error("triad A split")
	}
	if orig.Labels[3] != orig.Labels[4] || orig.Labels[4] != orig.Labels[5] {
		t.Error("triad B split")
	}
	if orig.Labels[0] == orig.Labels[3] {
		t.Error("triads merged")
	}
	if orig.Labels[6] != cluster.Noise {
		t.Error("isolated point not noise")
	}
}

func TestRunMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		name string
		pts  []geom.Point
		p    Params
	}{
		{"blobs-sparse", blobs(4, 150, 100, 40, 0.8, 10), Params{Eps: 0.7, MinPts: 4}},
		{"blobs-dense", blobs(2, 400, 50, 20, 0.5, 11), Params{Eps: 0.4, MinPts: 8}},
		{"uniform", blobs(0, 0, 600, 25, 1, 12), Params{Eps: 1.2, MinPts: 4}},
		{"high-minpts", blobs(3, 200, 0, 30, 1, 13), Params{Eps: 1, MinPts: 30}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix := BuildIndex(tc.pts, IndexOptions{R: 16})
			indexed, err := Run(ix, tc.p, nil)
			if err != nil {
				t.Fatal(err)
			}
			brute, err := RunBruteForce(tc.pts, tc.p, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Compare in original index space.
			orig := indexed.Remap(ix.Fwd)
			if orig.NumClusters != brute.NumClusters {
				t.Fatalf("clusters: indexed %d vs brute %d", orig.NumClusters, brute.NumClusters)
			}
			if orig.NumNoise() != brute.NumNoise() {
				t.Fatalf("noise: indexed %d vs brute %d", orig.NumNoise(), brute.NumNoise())
			}
			// Core points and cluster structure are order-independent;
			// border points can tie-break differently only when reachable
			// from two clusters, which EquivalentLabelings treats as a
			// mismatch. Use a small disagreement budget for those ties.
			if d := cluster.DisagreementCount(orig, brute); d > len(tc.pts)/200 {
				t.Fatalf("disagreements = %d (allowed %d)", d, len(tc.pts)/200)
			}
		})
	}
}

func TestRunInvariantToR(t *testing.T) {
	// The leaf occupancy r trades memory for compute but must never change
	// the clustering (candidates are distance-filtered exactly).
	pts := blobs(3, 200, 100, 30, 1, 20)
	p := Params{Eps: 0.9, MinPts: 5}
	var base *cluster.Result
	for _, r := range []int{1, 8, 70, 110, 512} {
		ix := BuildIndex(pts, IndexOptions{R: r})
		res, err := Run(ix, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		orig := res.Remap(ix.Fwd)
		if base == nil {
			base = orig
			continue
		}
		if !cluster.EquivalentLabelings(base, orig) {
			t.Fatalf("r=%d changed the clustering", r)
		}
	}
}

func TestRunEmptyAndDegenerate(t *testing.T) {
	// Empty database.
	ix := BuildIndex(nil, IndexOptions{})
	res, err := Run(ix, Params{Eps: 1, MinPts: 4}, nil)
	if err != nil || res.Len() != 0 || res.NumClusters != 0 {
		t.Fatalf("empty: res=%v err=%v", res, err)
	}
	// Single point: noise for minpts > 1.
	ix = BuildIndex([]geom.Point{{X: 1, Y: 1}}, IndexOptions{})
	res, _ = Run(ix, Params{Eps: 1, MinPts: 2}, nil)
	if res.NumNoise() != 1 {
		t.Error("single point should be noise")
	}
	// Single point with minpts=1 forms a singleton cluster.
	res, _ = Run(ix, Params{Eps: 1, MinPts: 1}, nil)
	if res.NumClusters != 1 || res.NumNoise() != 0 {
		t.Errorf("minpts=1 single point: %v", res)
	}
	// All-duplicate points: one cluster.
	dup := make([]geom.Point, 50)
	for i := range dup {
		dup[i] = geom.Point{X: 3, Y: 3}
	}
	ix = BuildIndex(dup, IndexOptions{R: 7})
	res, _ = Run(ix, Params{Eps: 0.1, MinPts: 4}, nil)
	if res.NumClusters != 1 || res.NumClustered() != 50 {
		t.Errorf("duplicates: %v", res)
	}
	// Collinear points spaced exactly eps apart: one chain cluster with
	// minpts=2 (each interior point has 3 neighbors including itself).
	line := make([]geom.Point, 30)
	for i := range line {
		line[i] = geom.Point{X: float64(i) * 1.0, Y: 0}
	}
	ix = BuildIndex(line, IndexOptions{R: 4})
	res, _ = Run(ix, Params{Eps: 1.0, MinPts: 2}, nil)
	if res.NumClusters != 1 || res.NumNoise() != 0 {
		t.Errorf("collinear chain: %v", res)
	}
}

func TestAllNoise(t *testing.T) {
	// Points too far apart for any cluster.
	pts := make([]geom.Point, 20)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i * 100), Y: float64(i * 100)}
	}
	ix := BuildIndex(pts, IndexOptions{})
	res, _ := Run(ix, Params{Eps: 1, MinPts: 2}, nil)
	if res.NumClusters != 0 || res.NumNoise() != 20 {
		t.Errorf("all-noise: %v", res)
	}
}

func TestOneGiantCluster(t *testing.T) {
	// eps large enough to span everything: one cluster, no noise.
	pts := blobs(5, 100, 100, 10, 1, 30)
	ix := BuildIndex(pts, IndexOptions{})
	res, _ := Run(ix, Params{Eps: 100, MinPts: 4}, nil)
	if res.NumClusters != 1 {
		t.Errorf("clusters = %d, want 1", res.NumClusters)
	}
	if res.NumNoise() != 0 {
		t.Errorf("noise = %d, want 0", res.NumNoise())
	}
}

func TestIncreasingMinptsIncreasesNoise(t *testing.T) {
	// Paper §II-A: increasing minpts increases the number of noise points.
	pts := blobs(4, 150, 200, 30, 1, 40)
	ix := BuildIndex(pts, IndexOptions{})
	prevNoise := -1
	for _, mp := range []int{2, 4, 8, 16, 32, 64} {
		res, err := Run(ix, Params{Eps: 0.8, MinPts: mp}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumNoise() < prevNoise {
			t.Fatalf("minpts=%d: noise %d decreased from %d", mp, res.NumNoise(), prevNoise)
		}
		prevNoise = res.NumNoise()
	}
}

func TestIncreasingEpsNeverShrinksClusteredSet(t *testing.T) {
	// The reuse inclusion criteria rest on this monotonicity: growing eps
	// (same minpts) can only move points from noise into clusters.
	pts := blobs(3, 150, 150, 25, 1, 50)
	ix := BuildIndex(pts, IndexOptions{})
	prev := -1
	for _, eps := range []float64{0.3, 0.5, 0.8, 1.2, 2.0} {
		res, err := Run(ix, Params{Eps: eps, MinPts: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumClustered() < prev {
			t.Fatalf("eps=%g: clustered %d shrank from %d", eps, res.NumClustered(), prev)
		}
		prev = res.NumClustered()
	}
}

func TestCorePoints(t *testing.T) {
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 0.1, Y: 0}, {X: 0.2, Y: 0}, // dense triple
		{X: 10, Y: 10}, // isolated
	}
	ix := BuildIndex(pts, IndexOptions{})
	core := CorePoints(ix, Params{Eps: 0.5, MinPts: 3}, nil)
	nCore := 0
	for _, c := range core {
		if c {
			nCore++
		}
	}
	if nCore != 3 {
		t.Errorf("core points = %d, want 3", nCore)
	}
}

func TestMetricsAccountingDuringRun(t *testing.T) {
	pts := blobs(2, 300, 100, 20, 0.8, 60)
	ix := BuildIndex(pts, IndexOptions{R: 32})
	var m metrics.Counters
	if _, err := Run(ix, Params{Eps: 0.5, MinPts: 4}, &m); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	// Every point is either visited via the outer loop or the frontier;
	// each visit does exactly one search, so searches == |D|.
	if s.NeighborSearches != int64(len(pts)) {
		t.Errorf("searches = %d, want %d", s.NeighborSearches, len(pts))
	}
	if s.CandidatesExamined < s.NeighborsFound {
		t.Error("candidates < neighbors found")
	}
}

func TestHigherRExaminesMoreCandidates(t *testing.T) {
	// The indexing trade-off (paper §IV-A): larger r -> fewer node visits,
	// more candidates to filter.
	pts := blobs(3, 2000, 500, 40, 1, 70)
	p := Params{Eps: 0.5, MinPts: 4}
	var prevCand, prevNodes int64
	for i, r := range []int{1, 70} {
		ix := BuildIndex(pts, IndexOptions{R: r})
		var m metrics.Counters
		if _, err := Run(ix, p, &m); err != nil {
			t.Fatal(err)
		}
		s := m.Snapshot()
		if i == 1 {
			if s.CandidatesExamined <= prevCand {
				t.Errorf("r=70 candidates %d should exceed r=1 candidates %d",
					s.CandidatesExamined, prevCand)
			}
			if s.NodesVisited >= prevNodes {
				t.Errorf("r=70 node visits %d should be below r=1 visits %d",
					s.NodesVisited, prevNodes)
			}
		}
		prevCand, prevNodes = s.CandidatesExamined, s.NodesVisited
	}
}

func TestBruteForceNaNSafety(t *testing.T) {
	// NaN coordinates must not crash; NaN distance comparisons are false,
	// so such points end up as noise.
	pts := []geom.Point{{X: math.NaN(), Y: 0}, {X: 0, Y: 0}, {X: 0.1, Y: 0}, {X: 0.2, Y: 0}}
	res, err := RunBruteForce(pts, Params{Eps: 0.5, MinPts: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] != cluster.Noise {
		t.Errorf("NaN point label = %d, want noise", res.Labels[0])
	}
}
