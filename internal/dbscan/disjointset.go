package dbscan

import (
	"vdbscan/internal/cluster"
	"vdbscan/internal/metrics"
	"vdbscan/internal/unionfind"
)

// RunDisjointSet clusters the index under p with the sequential disjoint-set
// formulation of Patwary et al. (SC 2012, the paper's reference [14]):
// instead of breadth-first cluster expansion, core points are unioned with
// their in-ε core neighbors, and border points attach to one neighboring
// core point's set. This baseline is order-insensitive for core points,
// which makes it a useful oracle for the expansion-based implementations
// and the single-worker reference for RunParallel. m may be nil. Labels are
// in the index's sorted space.
//
// Core-point cluster structure is identical to expansion-based DBSCAN;
// border points reachable from several clusters attach to the one whose
// core point is scanned first (the same ambiguity every DBSCAN has).
func RunDisjointSet(ix *Index, p Params, m *metrics.Counters) (*cluster.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := ix.Len()
	res := cluster.NewResult(n)
	core := make([]bool, n)
	neighborhoods := make([][]int32, n)

	// Pass 1: one ε-search per point determines core status. Neighborhoods
	// of core points are retained for the union pass.
	var scratch []int32
	for i := 0; i < n; i++ {
		scratch = ix.NeighborSearch(ix.Pts[i], p.Eps, m, scratch[:0])
		if len(scratch) >= p.MinPts {
			core[i] = true
			neighborhoods[i] = append([]int32(nil), scratch...)
		}
	}

	// Pass 2: union every core point with its core neighbors.
	dsu := unionfind.NewDSU(n)
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		for _, j := range neighborhoods[i] {
			if core[j] {
				dsu.Union(int32(i), j)
			}
		}
	}

	// Pass 3: label core sets with cluster IDs.
	ids := map[int32]int32{}
	var cid int32
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		root := dsu.Find(int32(i))
		id, ok := ids[root]
		if !ok {
			cid++
			id = cid
			ids[root] = id
		}
		res.Labels[i] = id
	}

	// Pass 4: attach border points to the first scanning core neighbor;
	// everything else is noise.
	for i := 0; i < n; i++ {
		if !core[i] {
			res.Labels[i] = cluster.Noise
		}
	}
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		for _, j := range neighborhoods[i] {
			if res.Labels[j] == cluster.Noise {
				res.Labels[j] = res.Labels[i]
			}
		}
	}
	res.NumClusters = int(cid)
	return res, nil
}
