package sched

import (
	"sync"

	"vdbscan/internal/obs"
)

// donorPool implements dbscan.Helper for two-level scheduling: pool workers
// that find the variant queue empty donate themselves to the parallel
// phases of still-running variants instead of parking. This closes the two
// idle regimes the paper's one-variant-per-worker pool leaves open: |V| < T
// from the start, and the end-of-run tail where the last (often
// makespan-dominating) variants run alone while finished workers idle.
//
// Protocol: a running variant's parallel phase publishes its chunk-draining
// help function with Offer; idle workers loop in donate, invoking open help
// functions until no variant is active. A donor can only be idle once the
// queue is exhausted (or the context canceled) — both permanent — so the
// active-variant count is monotonically non-increasing by then, and
// reaching zero means no further offers can ever appear.
type donorPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	offers []*offer
	active int // variants currently executing
}

// offer is one open parallel phase accepting donated workers.
type offer struct {
	variant   int32 // the variant being helped (trace annotation)
	help      func()
	wg        sync.WaitGroup // in-flight donated invocations
	exhausted bool           // a help() invocation returned: no work left
}

func newDonorPool() *donorPool {
	p := &donorPool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Offer publishes help to idle donors until the returned stop is called;
// stop blocks until every donated invocation has returned, giving the
// caller happens-before with all donated writes. variant identifies the
// offering variant execution for trace donor-join/leave events.
func (p *donorPool) Offer(variant int32, help func()) (stop func()) {
	o := &offer{variant: variant, help: help}
	p.mu.Lock()
	p.offers = append(p.offers, o)
	p.mu.Unlock()
	p.cond.Broadcast()
	return func() {
		p.mu.Lock()
		for i, e := range p.offers {
			if e == o {
				p.offers = append(p.offers[:i], p.offers[i+1:]...)
				break
			}
		}
		p.mu.Unlock()
		o.wg.Wait()
	}
}

// variantStarted and variantFinished bracket each variant execution so
// donate knows when parking is final.
func (p *donorPool) variantStarted() {
	p.mu.Lock()
	p.active++
	p.mu.Unlock()
}

func (p *donorPool) variantFinished() {
	p.mu.Lock()
	p.active--
	p.mu.Unlock()
	p.cond.Broadcast()
}

// donate serves open offers until no variant is running, then returns.
// Must only be called after the caller's take() has failed permanently.
// rec (the donating worker's trace recorder, nil when tracing is off)
// receives a donor-join/donor-leave pair around every donated phase.
func (p *donorPool) donate(rec *obs.Recorder) {
	p.mu.Lock()
	for {
		var o *offer
		for _, e := range p.offers {
			if !e.exhausted {
				o = e
				break
			}
		}
		if o == nil {
			if p.active == 0 {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			continue
		}
		o.wg.Add(1)
		p.mu.Unlock()
		rec.Event(obs.KindDonorJoin, o.variant, 0, 0)
		o.help() // drains the phase's chunk cursor
		rec.Event(obs.KindDonorLeave, o.variant, 0, 0)
		p.mu.Lock()
		o.exhausted = true
		o.wg.Done()
	}
}
