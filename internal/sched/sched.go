// Package sched executes a set of DBSCAN variants on a pool of worker
// goroutines, implementing the paper's two online scheduling heuristics
// (§IV-D):
//
//	SCHEDGREEDY — workers take variants in canonical order (ε ascending,
//	  minpts descending) and reuse the *completed* variant with the smallest
//	  normalized parameter difference; if none qualifies, the variant is
//	  clustered from scratch.
//	SCHEDMINPTS — the variants with the maximum minpts for each unique ε are
//	  queued first (clustered from scratch), maximizing the diversity of
//	  completed ε values so later variants more likely find a close source;
//	  the remainder then follows the SCHEDGREEDY criterion.
//
// The scheduling problem is online: which sources exist when a variant
// starts depends on the order and speed of earlier completions. The paper's
// thread pool maps to T goroutines pulling from a shared queue. Per-variant
// start/end offsets are recorded to reproduce the Figure 9 makespan plots.
//
// Beyond the paper, the pool supports *two-level* scheduling
// (Options.IntraWorkers / Options.DonateIdle): from-scratch variant
// executions can run on the intra-variant parallel path
// (dbscan.RunParallelOpts), and workers left idle once the queue drains —
// the |V| < T and end-of-run-tail regimes, where the paper's scheme parks
// cores — donate themselves to the running variants' worker pools. Results
// are unchanged: the parallel from-scratch path is label-identical to
// sequential DBSCAN.
package sched

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"vdbscan/internal/cluster"
	"vdbscan/internal/core"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/metrics"
	"vdbscan/internal/obs"
	"vdbscan/internal/reuse"
	"vdbscan/internal/variant"
)

// Strategy selects the scheduling heuristic.
type Strategy int

const (
	// SchedGreedy assigns variants in canonical order, reusing the closest
	// completed variant.
	SchedGreedy Strategy = iota
	// SchedMinPts first clusters, from scratch, the max-minpts variant of
	// each unique ε, then proceeds greedily.
	SchedMinPts
	// SchedTree executes the Figure 3a dependency tree depth-first: each
	// variant prefers to reuse its tree parent (the reusable variant with
	// minimal parameter difference under global knowledge), falling back to
	// the greedy choice when the parent has not completed yet. This static
	// schedule is an extension beyond the paper's two online heuristics.
	SchedTree
)

// Strategies lists both heuristics for sweeps.
var Strategies = []Strategy{SchedGreedy, SchedMinPts}

// AllStrategies includes the SchedTree extension.
var AllStrategies = []Strategy{SchedGreedy, SchedMinPts, SchedTree}

// String implements fmt.Stringer with the paper's names.
func (s Strategy) String() string {
	switch s {
	case SchedGreedy:
		return "SCHEDGREEDY"
	case SchedMinPts:
		return "SCHEDMINPTS"
	case SchedTree:
		return "SCHEDTREE"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Parse converts a strategy name ("SCHEDGREEDY"/"greedy",
// "SCHEDMINPTS"/"minpts").
func Parse(name string) (Strategy, error) {
	switch name {
	case "SCHEDGREEDY", "greedy":
		return SchedGreedy, nil
	case "SCHEDMINPTS", "minpts":
		return SchedMinPts, nil
	case "SCHEDTREE", "tree":
		return SchedTree, nil
	}
	return 0, fmt.Errorf("sched: unknown strategy %q", name)
}

// Options configures Execute.
type Options struct {
	// Threads is the worker pool size T; 1 when zero or negative.
	Threads int
	// Strategy is the scheduling heuristic; SchedGreedy by default.
	Strategy Strategy
	// Scheme is the cluster-reuse prioritization; reuse.ClusDensity is the
	// paper's recommended default and ours.
	Scheme reuse.Scheme
	// MinSeedSize excludes clusters below this size from reuse
	// (core.Options.MinSeedSize); 0 reuses all.
	MinSeedSize int
	// DisableReuse forces every variant to cluster from scratch (the
	// multithreaded no-reuse baseline of scenario S1).
	DisableReuse bool
	// IntraWorkers is the per-variant worker count for from-scratch variant
	// executions: when set above 1 (or when DonateIdle is on), every
	// from-scratch DBSCAN uses dbscan.RunParallelOpts instead of the
	// sequential expansion, so a single variant can use several cores.
	// Reuse-based executions (EXPANDCLUSTER) are inherently ordered and
	// remain sequential. 0 or 1 keeps from-scratch runs on one worker
	// (paper-faithful) unless DonateIdle lends them more.
	IntraWorkers int
	// DonateIdle enables two-level scheduling: pool workers that find the
	// variant queue empty donate themselves to the parallel phases of
	// still-running variants instead of parking. This removes the idle
	// cores of the |V| < Threads and end-of-run-tail regimes without
	// changing any clustering result (the parallel from-scratch path is
	// label-identical to sequential DBSCAN).
	DonateIdle bool
	// Tiles selects tile-level parallelism for from-scratch executions on
	// grid-kind indexes (dbscan.ParallelOptions.Tiles): 0 is automatic,
	// 1 untiled, >= 2 an explicit tile target. Label-identical to the
	// untiled run; a value above 1 also enables the parallel from-scratch
	// path, like IntraWorkers.
	Tiles int
	// Metrics optionally accumulates work counters across all variants.
	Metrics *metrics.Counters
	// Tracer optionally records the run's execution timeline: variant
	// lifecycle spans, seed-selection decisions, expand/scratch phase
	// boundaries, donor join/leave, and per-variant work deltas. Nil (the
	// default) disables tracing at zero cost — every recording call is a
	// nil-receiver no-op that allocates nothing.
	Tracer *obs.Tracer
	// Progress, when non-nil, is invoked serially after each variant
	// completes with the live run state (variants done, running mean reuse
	// fraction). It is called from worker goroutines — keep it fast.
	Progress func(obs.ProgressEvent)
}

// intraEnabled reports whether from-scratch executions should take the
// parallel path.
func (o Options) intraEnabled() bool { return o.IntraWorkers > 1 || o.DonateIdle || o.Tiles > 1 }

// VariantResult is the outcome of one variant execution.
type VariantResult struct {
	Variant variant.Variant
	// Result holds labels in the index's sorted point space.
	Result *cluster.Result
	// Stats reports the reuse achieved.
	Stats core.Stats
	// SourceID is the original ID of the reused variant, or -1 for a
	// from-scratch execution.
	SourceID int
	// Worker is the pool worker (0..T-1) that ran the variant.
	Worker int
	// Start and End are offsets from the run's start instant: a single
	// time.Time captured once when Execute begins, measured with
	// time.Since, so every offset is derived from Go's monotonic clock and
	// all workers (and any attached obs.Tracer) share the same basis.
	// Spans therefore order correctly across workers: End ≥ Start ≥ 0 and
	// End ≤ RunResult.Makespan, wall-clock adjustments notwithstanding.
	Start, End time.Duration
}

// Duration returns the variant's response time.
func (vr VariantResult) Duration() time.Duration { return vr.End - vr.Start }

// RunResult is the outcome of executing a whole variant set.
type RunResult struct {
	// Results is indexed by the variants' original IDs.
	Results []VariantResult
	// Makespan is the wall-clock time from first start to last finish.
	Makespan time.Duration
	// TotalWork is the sum of per-variant durations; TotalWork/T is the
	// Figure 9 lower bound ("no cores idle").
	TotalWork time.Duration
	// Threads echoes the pool size used.
	Threads int
}

// LowerBound returns the idealized makespan if all T workers finished
// simultaneously (Figure 9's black line).
func (rr *RunResult) LowerBound() time.Duration {
	if rr.Threads <= 0 {
		return rr.TotalWork
	}
	return rr.TotalWork / time.Duration(rr.Threads)
}

// SlowdownOverLowerBound returns Makespan/LowerBound − 1 (the paper reports
// 13.5% for SCHEDGREEDY and 33.0% for SCHEDMINPTS in its Figure 9 scenario).
func (rr *RunResult) SlowdownOverLowerBound() float64 {
	lb := rr.LowerBound()
	if lb <= 0 {
		return 0
	}
	return float64(rr.Makespan)/float64(lb) - 1
}

// FractionFromScratch returns the fraction of variants clustered without
// reuse. Its floor is (|V|−f·|V|)/|V| with f = (|V|−T)/|V| (paper §IV-D).
func (rr *RunResult) FractionFromScratch() float64 {
	if len(rr.Results) == 0 {
		return 0
	}
	n := 0
	for _, r := range rr.Results {
		if r.Stats.FromScratch {
			n++
		}
	}
	return float64(n) / float64(len(rr.Results))
}

// MeanFractionReused averages the per-variant fraction of points reused
// (Figure 7b's quantity).
func (rr *RunResult) MeanFractionReused() float64 {
	if len(rr.Results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rr.Results {
		sum += r.Stats.FractionReused
	}
	return sum / float64(len(rr.Results))
}

// completedEntry is a published, immutable variant result workers may reuse.
type completedEntry struct {
	params dbscan.Params
	id     int
	result *cluster.Result
}

// registry tracks completed variants under a mutex. Results are made
// read-safe (cluster grouping precomputed) before publication.
type registry struct {
	mu        sync.Mutex
	completed []completedEntry
}

func (g *registry) publish(e completedEntry) {
	// Precompute the lazy cluster grouping so concurrent readers never
	// race on the cache inside cluster.Result.
	e.result.Clusters()
	g.mu.Lock()
	g.completed = append(g.completed, e)
	g.mu.Unlock()
}

// byID returns the completed entry for a specific variant ID, or nil.
func (g *registry) byID(id int) *completedEntry {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range g.completed {
		if g.completed[i].id == id {
			e := g.completed[i]
			return &e
		}
	}
	return nil
}

// choose returns the closest reusable completed entry for p (plus its
// normalized parameter distance, the SCHEDGREEDY score), or nil.
func (g *registry) choose(p dbscan.Params, norm variant.Normalizer) (*completedEntry, float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	params := make([]dbscan.Params, len(g.completed))
	for i, e := range g.completed {
		params[i] = e.params
	}
	idx := core.ChooseSource(p, params, norm)
	if idx < 0 {
		return nil, 0
	}
	e := g.completed[idx]
	return &e, norm.Dist(p, e.params)
}

// order builds the execution queue for the chosen strategy over a canonical
// sort of vs. It returns the variants in assignment order.
func order(vs []variant.Variant, strategy Strategy) []variant.Variant {
	sorted := variant.Sorted(vs)
	if strategy == SchedGreedy {
		return sorted
	}
	if strategy == SchedTree {
		tree := variant.BuildDepTree(vs)
		out := make([]variant.Variant, 0, len(tree.Variants))
		for _, i := range tree.DepthFirstOrder() {
			out = append(out, tree.Variants[i])
		}
		return out
	}
	// SCHEDMINPTS: for each unique ε, pull the variant with the maximum
	// minpts to the front (in ascending ε order); keep the rest canonical.
	type key struct{ eps float64 }
	bestForEps := map[key]int{} // index into sorted
	for i, v := range sorted {
		k := key{v.Params.Eps}
		if j, ok := bestForEps[k]; !ok || v.Params.MinPts > sorted[j].Params.MinPts {
			bestForEps[k] = i
		}
	}
	prioritized := make([]bool, len(sorted))
	var heads []int
	for _, i := range bestForEps {
		prioritized[i] = true
		heads = append(heads, i)
	}
	sort.Ints(heads)
	out := make([]variant.Variant, 0, len(sorted))
	for _, i := range heads {
		out = append(out, sorted[i])
	}
	for i, v := range sorted {
		if !prioritized[i] {
			out = append(out, v)
		}
	}
	return out
}

// Execute runs every variant in vs over the shared index and returns the
// per-variant results (indexed by original variant ID).
func Execute(ix *dbscan.Index, vs []variant.Variant, opt Options) (*RunResult, error) {
	return ExecuteContext(context.Background(), ix, vs, opt)
}

// ExecuteContext is Execute with cancellation: when ctx is canceled, no new
// variant executions start and the context error is returned once in-flight
// variants finish. A single variant execution is not interruptible (its
// work is bounded by one from-scratch DBSCAN run).
func ExecuteContext(ctx context.Context, ix *dbscan.Index, vs []variant.Variant, opt Options) (*RunResult, error) {
	if err := variant.Validate(vs); err != nil {
		return nil, err
	}
	// Grid-kind indexes get one cell-grid build sized for the whole
	// variant set's max ε, so every variant (and every reuse expansion)
	// shares it — the grid analogue of the shared R-tree pair.
	maxEps := 0.0
	for _, v := range vs {
		if v.Params.Eps > maxEps {
			maxEps = v.Params.Eps
		}
	}
	if err := ix.EnsureGrid(maxEps); err != nil {
		return nil, err
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = 1
	}
	queue := order(vs, opt.Strategy)
	norm := variant.NewNormalizer(vs)
	reg := &registry{}

	// treeParent maps a variant's original ID to its preferred source's
	// original ID under SCHEDTREE (-1 = cluster from scratch).
	treeParent := map[int]int{}
	if opt.Strategy == SchedTree {
		tree := variant.BuildDepTree(vs)
		for i, p := range tree.Parent {
			if p < 0 {
				treeParent[tree.Variants[i].ID] = -1
			} else {
				treeParent[tree.Variants[i].ID] = tree.Variants[p].ID
			}
		}
	}

	// scratchOnly marks the SCHEDMINPTS priority head: those variants are
	// clustered from scratch by construction.
	scratchOnly := map[int]bool{}
	if opt.Strategy == SchedMinPts {
		seen := map[float64]bool{}
		for _, v := range queue {
			if !seen[v.Params.Eps] {
				seen[v.Params.Eps] = true
				scratchOnly[v.ID] = true
			} else {
				break // priority head is a prefix of the queue
			}
		}
	}

	var pool *donorPool
	if opt.DonateIdle {
		pool = newDonorPool()
	}

	results := make([]VariantResult, len(vs))
	var next int
	var nextMu sync.Mutex
	take := func() (variant.Variant, bool) {
		if ctx.Err() != nil {
			return variant.Variant{}, false
		}
		nextMu.Lock()
		defer nextMu.Unlock()
		if next >= len(queue) {
			return variant.Variant{}, false
		}
		v := queue[next]
		next++
		return v, true
	}

	// start is the run's single monotonic basis: every VariantResult offset
	// and every trace event measures time.Since(start), so spans from
	// different workers order correctly against each other.
	start := time.Now()
	tr := opt.Tracer
	if tr != nil {
		names := make([]string, len(vs))
		for _, v := range vs {
			names[v.ID] = v.Params.String()
		}
		tr.StartRun(start, opt.Strategy.String(), names)
		runRec := tr.Worker(-1)
		for pos, v := range queue {
			runRec.Event(obs.KindQueued, int32(v.ID), int64(pos), 0)
		}
	}

	// prog serializes Progress callbacks and maintains the running reuse
	// mean; one short critical section per variant completion.
	var prog struct {
		sync.Mutex
		done    int
		fracSum float64
	}
	reportProgress := func(vr *VariantResult) {
		if opt.Progress == nil {
			return
		}
		prog.Lock()
		defer prog.Unlock()
		prog.done++
		prog.fracSum += vr.Stats.FractionReused
		opt.Progress(obs.ProgressEvent{
			Done:               prog.done,
			Total:              len(vs),
			Variant:            vr.Variant.ID,
			Source:             vr.SourceID,
			Worker:             vr.Worker,
			FractionReused:     vr.Stats.FractionReused,
			MeanFractionReused: prog.fracSum / float64(prog.done),
			FromScratch:        vr.Stats.FromScratch,
			Duration:           vr.End - vr.Start,
			Elapsed:            vr.End,
		})
	}
	var wg sync.WaitGroup
	errs := make([]error, threads)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rec := tr.Worker(worker) // nil recorder when tracing is off
			for {
				v, ok := take()
				if !ok {
					// No variant will ever be taken again (queue drained or
					// ctx canceled): donate this worker to the running
					// variants' intra-variant pools instead of parking.
					if pool != nil {
						pool.donate(rec)
					}
					return
				}
				vr := VariantResult{Variant: v, Worker: worker, SourceID: -1}
				vr.Start = time.Since(start)
				rec.Event(obs.KindStarted, int32(v.ID), 0, 0)

				var prev *cluster.Result
				if !opt.DisableReuse && !scratchOnly[v.ID] {
					var e *completedEntry
					var dist float64
					if opt.Strategy == SchedTree {
						if pid, ok := treeParent[v.ID]; ok && pid >= 0 {
							if e = reg.byID(pid); e != nil {
								dist = norm.Dist(v.Params, e.params)
							}
						}
					}
					if e == nil {
						e, dist = reg.choose(v.Params, norm)
					}
					if e != nil {
						prev = e.result
						vr.SourceID = e.id
						rec.Event(obs.KindSeedSelected, int32(v.ID), int64(e.id), dist)
					}
				}
				// With tracing on, the variant runs against its own counter
				// set so its work delta is exact even while other variants
				// accumulate concurrently; the delta is folded into the
				// run-wide totals afterwards, leaving them unchanged.
				vmet := opt.Metrics
				var own *metrics.Counters
				if tr != nil {
					own = new(metrics.Counters)
					vmet = own
				}
				var res *cluster.Result
				var stats core.Stats
				var err error
				if opt.intraEnabled() && (prev == nil || prev.NumClusters == 0) {
					// From-scratch execution on the intra-variant parallel
					// path: label-identical to dbscan.Run, but chunked over
					// IntraWorkers goroutines plus any donated idle workers.
					if pool != nil {
						pool.variantStarted()
					}
					w := opt.IntraWorkers
					if w < 1 {
						w = 1
					}
					popt := dbscan.ParallelOptions{Workers: w, Rec: rec, Variant: int32(v.ID), Tiles: opt.Tiles}
					if pool != nil {
						popt.Helper = pool
					}
					res, err = dbscan.RunParallelOpts(ctx, ix, v.Params, popt, vmet)
					stats = core.Stats{FromScratch: true}
					if pool != nil {
						pool.variantFinished()
					}
				} else {
					if pool != nil {
						pool.variantStarted()
					}
					res, stats, err = core.RunOpts(ix, v.Params, prev,
						core.Options{Scheme: opt.Scheme, MinSeedSize: opt.MinSeedSize,
							Rec: rec, Variant: int32(v.ID)}, vmet)
					if pool != nil {
						pool.variantFinished()
					}
				}
				if own != nil {
					opt.Metrics.AddSnapshot(own.Snapshot())
				}
				if err != nil {
					if ctx.Err() != nil {
						// Canceled mid-variant (interruptible parallel
						// path); the post-wait ctx check reports it.
						return
					}
					errs[worker] = fmt.Errorf("variant %v: %w", v, err)
					return
				}
				if stats.FromScratch {
					vr.SourceID = -1
				}
				vr.Result, vr.Stats = res, stats
				vr.End = time.Since(start)
				reg.publish(completedEntry{params: v.Params, id: v.ID, result: res})
				results[v.ID] = vr
				rec.Done(int32(v.ID), int64(vr.SourceID), stats.FractionReused, own.Snapshot())
				reportProgress(&vr)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sched: canceled after %d of %d variants: %w", next, len(vs), err)
	}

	rr := &RunResult{Results: results, Threads: threads, Makespan: time.Since(start)}
	for _, r := range results {
		rr.TotalWork += r.Duration()
	}
	tr.EndRun(rr.Makespan)
	return rr, nil
}

// WorkerTimelines groups results by worker in start order — the raw
// material of the Figure 9 makespan bars.
func (rr *RunResult) WorkerTimelines() [][]VariantResult {
	lines := make([][]VariantResult, rr.Threads)
	for _, r := range rr.Results {
		lines[r.Worker] = append(lines[r.Worker], r)
	}
	for _, line := range lines {
		sort.Slice(line, func(a, b int) bool { return line[a].Start < line[b].Start })
	}
	return lines
}
