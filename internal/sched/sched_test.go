package sched

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
	"vdbscan/internal/obs"
	"vdbscan/internal/reuse"
	"vdbscan/internal/variant"
)

func blobs(k, m, noise int, extent, sigma float64, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, k*m+noise)
	for c := 0; c < k; c++ {
		cx, cy := rnd.Float64()*extent, rnd.Float64()*extent
		for i := 0; i < m; i++ {
			pts = append(pts, geom.Point{
				X: cx + rnd.NormFloat64()*sigma,
				Y: cy + rnd.NormFloat64()*sigma,
			})
		}
	}
	for i := 0; i < noise; i++ {
		pts = append(pts, geom.Point{X: rnd.Float64() * extent, Y: rnd.Float64() * extent})
	}
	return pts
}

func testIndex(t *testing.T) *dbscan.Index {
	t.Helper()
	return dbscan.BuildIndex(blobs(3, 200, 100, 25, 0.6, 1), dbscan.IndexOptions{R: 16})
}

func TestStrategyStrings(t *testing.T) {
	if SchedGreedy.String() != "SCHEDGREEDY" || SchedMinPts.String() != "SCHEDMINPTS" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy should stringify")
	}
	for _, c := range []struct {
		in   string
		want Strategy
	}{{"SCHEDGREEDY", SchedGreedy}, {"greedy", SchedGreedy}, {"SCHEDMINPTS", SchedMinPts}, {"minpts", SchedMinPts}} {
		got, err := Parse(c.in)
		if err != nil || got != c.want {
			t.Errorf("Parse(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := Parse("nope"); err == nil {
		t.Error("Parse should reject unknown")
	}
}

func TestOrderGreedyIsCanonical(t *testing.T) {
	vs := variant.Product([]float64{0.4, 0.2}, []int{4, 8})
	q := order(vs, SchedGreedy)
	want := []dbscan.Params{{Eps: 0.2, MinPts: 8}, {Eps: 0.2, MinPts: 4}, {Eps: 0.4, MinPts: 8}, {Eps: 0.4, MinPts: 4}}
	for i := range want {
		if q[i].Params != want[i] {
			t.Fatalf("greedy order[%d] = %v, want %v", i, q[i].Params, want[i])
		}
	}
}

func TestOrderMinPtsPrioritizesMaxMinptsPerEps(t *testing.T) {
	// Paper Figure 3c: (0.2,32),(0.4,32),(0.6,32) first.
	vs := variant.Product([]float64{0.2, 0.4, 0.6}, []int{32, 28, 24, 20})
	q := order(vs, SchedMinPts)
	wantHead := []dbscan.Params{{Eps: 0.2, MinPts: 32}, {Eps: 0.4, MinPts: 32}, {Eps: 0.6, MinPts: 32}}
	for i := range wantHead {
		if q[i].Params != wantHead[i] {
			t.Fatalf("minpts head[%d] = %v, want %v", i, q[i].Params, wantHead[i])
		}
	}
	if len(q) != len(vs) {
		t.Fatalf("order dropped variants: %d of %d", len(q), len(vs))
	}
	// Figure 3c's full schedule: after the head, remaining canonical order.
	wantRest := []dbscan.Params{
		{Eps: 0.2, MinPts: 28}, {Eps: 0.2, MinPts: 24}, {Eps: 0.2, MinPts: 20},
		{Eps: 0.4, MinPts: 28}, {Eps: 0.4, MinPts: 24}, {Eps: 0.4, MinPts: 20},
		{Eps: 0.6, MinPts: 28}, {Eps: 0.6, MinPts: 24}, {Eps: 0.6, MinPts: 20},
	}
	for i := range wantRest {
		if q[3+i].Params != wantRest[i] {
			t.Fatalf("minpts rest[%d] = %v, want %v", i, q[3+i].Params, wantRest[i])
		}
	}
}

func TestExecuteValidates(t *testing.T) {
	ix := testIndex(t)
	if _, err := Execute(ix, nil, Options{}); err == nil {
		t.Error("empty variant set accepted")
	}
	bad := variant.New([]dbscan.Params{{Eps: -1, MinPts: 4}})
	if _, err := Execute(ix, bad, Options{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestExecuteSingleVariant(t *testing.T) {
	ix := testIndex(t)
	vs := variant.New([]dbscan.Params{{Eps: 0.5, MinPts: 4}})
	rr, err := Execute(ix, vs, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) != 1 {
		t.Fatalf("results = %d", len(rr.Results))
	}
	if !rr.Results[0].Stats.FromScratch {
		t.Error("single variant must be from scratch")
	}
	if rr.Results[0].SourceID != -1 {
		t.Error("single variant has no source")
	}
}

func TestExecuteMatchesScratchPerVariant(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.3, 0.5, 0.8}, []int{4, 8, 16})
	for _, strategy := range AllStrategies {
		for _, threads := range []int{1, 4} {
			rr, err := Execute(ix, vs, Options{Threads: threads, Strategy: strategy, Scheme: reuse.ClusDensity})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rr.Results {
				want, _ := dbscan.Run(ix, r.Variant.Params, nil)
				if d := cluster.DisagreementCount(r.Result, want); d > ix.Len()/200 {
					t.Errorf("%v T=%d variant %v: disagreements = %d",
						strategy, threads, r.Variant, d)
				}
			}
		}
	}
}

func TestExecuteResultsIndexedByOriginalID(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.8, 0.3}, []int{4, 16}) // deliberately unsorted
	rr, err := Execute(ix, vs, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for id, r := range rr.Results {
		if r.Variant.ID != id {
			t.Errorf("results[%d] holds variant %d", id, r.Variant.ID)
		}
		if r.Variant.Params != vs[id].Params {
			t.Errorf("results[%d] params %v != input %v", id, r.Variant.Params, vs[id].Params)
		}
	}
}

func TestExecuteReuseHappens(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.4, 0.6, 0.8}, []int{4, 8, 16})
	rr, err := Execute(ix, vs, Options{Threads: 1, Scheme: reuse.ClusDensity})
	if err != nil {
		t.Fatal(err)
	}
	// With T=1 only the first variant must be from scratch; the canonical
	// first is (0.4,16), which produces clusters on this dataset, and every
	// later variant can reuse a completed one.
	scratch := 0
	for _, r := range rr.Results {
		if r.Stats.FromScratch {
			scratch++
		}
	}
	if scratch != 1 {
		t.Errorf("from-scratch count = %d, want 1 (T=1, chainable set)", scratch)
	}
	if rr.MeanFractionReused() <= 0 {
		t.Error("mean fraction reused should be positive")
	}
}

func TestExecuteSourceSatisfiesInclusionCriteria(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.3, 0.5, 0.8}, []int{4, 8, 16})
	for _, strategy := range AllStrategies {
		rr, err := Execute(ix, vs, Options{Threads: 3, Strategy: strategy})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rr.Results {
			if r.SourceID < 0 {
				continue
			}
			src := vs[r.SourceID].Params
			if !variant.CanReuse(r.Variant.Params, src) {
				t.Errorf("%v: variant %v reused %v violating inclusion criteria",
					strategy, r.Variant.Params, src)
			}
		}
	}
}

func TestExecuteDisableReuse(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.3, 0.5}, []int{4, 8})
	rr, err := Execute(ix, vs, Options{Threads: 2, DisableReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := rr.FractionFromScratch(); got != 1 {
		t.Errorf("DisableReuse fraction from scratch = %g, want 1", got)
	}
}

func TestExecuteMoreThreadsThanVariants(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.5}, []int{4, 8})
	rr, err := Execute(ix, vs, Options{Threads: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) != 2 {
		t.Fatalf("results = %d", len(rr.Results))
	}
	for _, r := range rr.Results {
		if r.Result == nil {
			t.Fatal("missing result")
		}
	}
}

func TestExecuteIdenticalVariants(t *testing.T) {
	// Scenario S1 uses 16 identical variants.
	ix := testIndex(t)
	params := make([]dbscan.Params, 8)
	for i := range params {
		params[i] = dbscan.Params{Eps: 0.5, MinPts: 4}
	}
	rr, err := Execute(ix, variant.New(params), Options{Threads: 4, Scheme: reuse.ClusDensity})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := dbscan.Run(ix, params[0], nil)
	for _, r := range rr.Results {
		if d := cluster.DisagreementCount(r.Result, want); d > ix.Len()/200 {
			t.Errorf("identical variant %d: disagreements = %d", r.Variant.ID, d)
		}
	}
}

func TestTimelinesAndMakespan(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.3, 0.5, 0.8}, []int{4, 8, 16})
	rr, err := Execute(ix, vs, Options{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Makespan <= 0 {
		t.Error("makespan should be positive")
	}
	if rr.TotalWork <= 0 {
		t.Error("total work should be positive")
	}
	if rr.LowerBound() > rr.Makespan {
		t.Errorf("lower bound %v exceeds makespan %v", rr.LowerBound(), rr.Makespan)
	}
	if rr.SlowdownOverLowerBound() < 0 {
		t.Errorf("slowdown = %g < 0", rr.SlowdownOverLowerBound())
	}
	lines := rr.WorkerTimelines()
	if len(lines) != 3 {
		t.Fatalf("timelines = %d", len(lines))
	}
	total := 0
	for _, line := range lines {
		total += len(line)
		// Within one worker, executions must not overlap.
		for i := 1; i < len(line); i++ {
			if line[i].Start < line[i-1].End {
				t.Errorf("worker timeline overlaps: %v then %v", line[i-1], line[i])
			}
		}
	}
	if total != len(vs) {
		t.Errorf("timelines cover %d of %d variants", total, len(vs))
	}
}

func TestExecuteMetricsAccumulate(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.4, 0.6}, []int{4, 8})
	var m metrics.Counters
	if _, err := Execute(ix, vs, Options{Threads: 2, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.NeighborSearches == 0 {
		t.Error("metrics saw no searches")
	}
	if s.PointsReused == 0 {
		t.Error("metrics saw no reuse")
	}
}

func TestMinPtsHeadClusteredFromScratch(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.3, 0.5, 0.8}, []int{4, 8, 16})
	rr, err := Execute(ix, vs, Options{Threads: 1, Strategy: SchedMinPts})
	if err != nil {
		t.Fatal(err)
	}
	// The head variants (max minpts per eps) must be from scratch.
	for _, r := range rr.Results {
		if r.Variant.Params.MinPts == 16 && !r.Stats.FromScratch {
			t.Errorf("head variant %v was not clustered from scratch", r.Variant.Params)
		}
	}
	// With T=1, everything after the 3 head variants can reuse.
	if got := rr.FractionFromScratch(); got != 3.0/9.0 {
		t.Errorf("fraction from scratch = %g, want 1/3", got)
	}
}

func TestFractionFromScratchLowerBoundFormula(t *testing.T) {
	// Paper §IV-D: at least (1-f) = T/|V| of variants are from scratch...
	// with T=1 and a fully chainable set exactly 1/|V|.
	ix := testIndex(t)
	vs := variant.Product([]float64{0.3, 0.5}, []int{4, 8, 16})
	rr, err := Execute(ix, vs, Options{Threads: 1, Strategy: SchedGreedy})
	if err != nil {
		t.Fatal(err)
	}
	f := float64(len(vs)-1) / float64(len(vs))
	if got := 1 - rr.FractionFromScratch(); got > f {
		t.Errorf("reused fraction %g exceeds max %g", got, f)
	}
}

func TestSchedTreeOrderAndSources(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.4, 0.6, 0.8}, []int{4, 8, 16})
	rr, err := Execute(ix, vs, Options{Threads: 1, Strategy: SchedTree, Scheme: reuse.ClusDensity})
	if err != nil {
		t.Fatal(err)
	}
	tree := variant.BuildDepTree(vs)
	parentOf := map[int]int{}
	for i, p := range tree.Parent {
		if p < 0 {
			parentOf[tree.Variants[i].ID] = -1
		} else {
			parentOf[tree.Variants[i].ID] = tree.Variants[p].ID
		}
	}
	// With T=1 and DFS order, every variant with a tree parent reuses
	// exactly that parent (the parent completed earlier by construction)
	// unless the parent produced no clusters.
	for _, r := range rr.Results {
		want := parentOf[r.Variant.ID]
		if want == -1 {
			continue
		}
		src := rr.Results[want]
		if src.Result.NumClusters == 0 {
			continue // from-scratch fallback is correct here
		}
		if r.SourceID != want {
			t.Errorf("variant %v reused %d, tree parent is %d", r.Variant, r.SourceID, want)
		}
	}
	// Correctness unchanged.
	for _, r := range rr.Results {
		wantRes, _ := dbscan.Run(ix, r.Variant.Params, nil)
		if d := cluster.DisagreementCount(r.Result, wantRes); d > ix.Len()/200 {
			t.Errorf("SCHEDTREE variant %v: disagreements = %d", r.Variant, d)
		}
	}
}

func TestSchedTreeParseAndString(t *testing.T) {
	if SchedTree.String() != "SCHEDTREE" {
		t.Error("SchedTree name")
	}
	got, err := Parse("tree")
	if err != nil || got != SchedTree {
		t.Errorf("Parse(tree) = %v, %v", got, err)
	}
	if len(AllStrategies) != 3 {
		t.Errorf("AllStrategies = %v", AllStrategies)
	}
}

func TestExecuteContextCancellation(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.3, 0.5, 0.8}, []int{4, 8, 16})
	// Already-canceled context: nothing starts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExecuteContext(ctx, ix, vs, Options{Threads: 2})
	if err == nil {
		t.Fatal("canceled context accepted")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// Background context: unchanged behavior.
	if _, err := ExecuteContext(context.Background(), ix, vs, Options{Threads: 2}); err != nil {
		t.Fatal(err)
	}
}

// --- Two-level scheduling (intra-variant donation) ---

func TestExecuteTwoLevelSingleVariant(t *testing.T) {
	// |V|=1 < T: the spare workers must donate to the lone variant, and the
	// result must be label-identical to the sequential execution.
	ix := testIndex(t)
	p := dbscan.Params{Eps: 0.8, MinPts: 4}
	want, err := dbscan.Run(ix, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Execute(ix, variant.New([]dbscan.Params{p}), Options{
		Threads: 4, DonateIdle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rr.Results[0].Result
	if got.NumClusters != want.NumClusters {
		t.Fatalf("clusters %d vs %d", got.NumClusters, want.NumClusters)
	}
	for i := range got.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label[%d] = %d, want %d", i, got.Labels[i], want.Labels[i])
		}
	}
}

func TestExecuteTwoLevelTailSkew(t *testing.T) {
	// A skewed set: several cheap variants plus one expensive tail variant
	// (huge ε). With reuse disabled every execution is from scratch; idle
	// workers must flow into the tail without changing any result.
	ix := testIndex(t)
	ps := []dbscan.Params{
		{Eps: 0.2, MinPts: 8}, {Eps: 0.25, MinPts: 8}, {Eps: 0.3, MinPts: 8},
		{Eps: 6, MinPts: 4}, // tail: large ε dominates
	}
	baseline, err := Execute(ix, variant.New(ps), Options{Threads: 4, DisableReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	donated, err := Execute(ix, variant.New(ps), Options{
		Threads: 4, DisableReuse: true, DonateIdle: true, IntraWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for vi := range ps {
		a, b := baseline.Results[vi].Result, donated.Results[vi].Result
		if a.NumClusters != b.NumClusters {
			t.Fatalf("variant %d: clusters %d vs %d", vi, a.NumClusters, b.NumClusters)
		}
		for i := range a.Labels {
			if a.Labels[i] != b.Labels[i] {
				t.Fatalf("variant %d: label[%d] = %d vs %d", vi, i, b.Labels[i], a.Labels[i])
			}
		}
		if !donated.Results[vi].Stats.FromScratch {
			t.Errorf("variant %d: expected from-scratch", vi)
		}
	}
}

func TestExecuteTwoLevelWithReuse(t *testing.T) {
	// Reuse-based executions stay on the sequential EXPANDCLUSTER path;
	// only from-scratch ones go parallel. Per-variant quality against the
	// non-donated run must be unchanged.
	ix := testIndex(t)
	vs := variant.Product([]float64{0.5, 0.7, 0.9}, []int{4, 8})
	base, err := Execute(ix, vs, Options{Threads: 2, Scheme: reuse.ClusDensity})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Execute(ix, vs, Options{
		Threads: 2, Scheme: reuse.ClusDensity, DonateIdle: true, IntraWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for vi := range vs {
		a, b := base.Results[vi].Result, two.Results[vi].Result
		// Reuse order can differ between runs (online schedule), so compare
		// cluster structure, not exact labels.
		if a.NumClusters != b.NumClusters {
			t.Errorf("variant %d: clusters %d vs %d", vi, a.NumClusters, b.NumClusters)
		}
	}
}

func TestExecuteTwoLevelCancellation(t *testing.T) {
	ix := testIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExecuteContext(ctx, ix, variant.New([]dbscan.Params{{Eps: 0.8, MinPts: 4}}),
		Options{Threads: 4, DonateIdle: true})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want canceled", err)
	}
}

func TestExecuteIntraWorkersWithoutDonation(t *testing.T) {
	// IntraWorkers > 1 alone (no donation) must also reproduce sequential
	// labels on from-scratch executions.
	ix := testIndex(t)
	p := dbscan.Params{Eps: 0.8, MinPts: 4}
	want, _ := dbscan.Run(ix, p, nil)
	rr, err := Execute(ix, variant.New([]dbscan.Params{p}), Options{
		Threads: 1, IntraWorkers: 4, DisableReuse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rr.Results[0].Result
	for i := range got.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label[%d] = %d, want %d", i, got.Labels[i], want.Labels[i])
		}
	}
}

func TestExecuteTwoLevelManyVariantsFewThreads(t *testing.T) {
	// |V| > T with donation on: donors only appear at the tail; the run
	// must complete and every variant must be populated.
	ix := testIndex(t)
	vs := variant.Product([]float64{0.4, 0.6, 0.8, 1.0, 1.2}, []int{4, 8})
	rr, err := Execute(ix, vs, Options{Threads: 3, DisableReuse: true, DonateIdle: true})
	if err != nil {
		t.Fatal(err)
	}
	for vi, r := range rr.Results {
		if r.Result == nil {
			t.Fatalf("variant %d has no result", vi)
		}
	}
}

// TestSpansShareMonotonicBasis pins the documented clock contract of
// VariantResult.Start/End: all offsets are time.Since measurements against
// the single run-start instant (Go's monotonic clock), so regardless of
// worker interleaving every span is non-negative, well-ordered, and nested
// within [0, Makespan].
func TestSpansShareMonotonicBasis(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.4, 0.8, 1.2}, []int{4, 8, 12, 16})
	for _, threads := range []int{1, 4, 8} {
		rr, err := Execute(ix, vs, Options{Threads: threads, Scheme: reuse.ClusDensity})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rr.Results {
			if r.Start < 0 {
				t.Fatalf("T=%d v%d: Start %v < 0", threads, r.Variant.ID, r.Start)
			}
			if r.Duration() < 0 {
				t.Fatalf("T=%d v%d: Duration %v < 0 (End %v before Start %v)",
					threads, r.Variant.ID, r.Duration(), r.End, r.Start)
			}
			if r.End > rr.Makespan {
				t.Fatalf("T=%d v%d: End %v exceeds Makespan %v",
					threads, r.Variant.ID, r.End, rr.Makespan)
			}
		}
	}
}

// TestTracedRunMatchesUntraced is the equivalence property under tracing:
// attaching a tracer must not change a single label — and the tracer must
// come back with a complete account (one started + one done per variant,
// seed-selected events consistent with SourceID, per-variant work deltas
// summing to the run totals).
func TestTracedRunMatchesUntraced(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.4, 0.8, 1.2}, []int{4, 8, 12, 16})
	for _, threads := range []int{1, 3} {
		plain, err := Execute(ix, vs, Options{Threads: threads, Scheme: reuse.ClusDensity})
		if err != nil {
			t.Fatal(err)
		}
		tr := obs.NewTracer()
		var m metrics.Counters
		traced, err := Execute(ix, vs, Options{
			Threads: threads, Scheme: reuse.ClusDensity, Tracer: tr, Metrics: &m,
		})
		if err != nil {
			t.Fatal(err)
		}
		for id := range plain.Results {
			a, b := plain.Results[id].Result, traced.Results[id].Result
			if a.NumClusters != b.NumClusters {
				t.Fatalf("T=%d v%d: clusters %d vs %d", threads, id, b.NumClusters, a.NumClusters)
			}
			for i := range a.Labels {
				if a.Labels[i] != b.Labels[i] {
					t.Fatalf("T=%d v%d: label[%d] = %d with tracing, %d without",
						threads, id, i, b.Labels[i], a.Labels[i])
				}
			}
		}

		started := map[int32]int{}
		done := map[int32]int{}
		var workSum metrics.Snapshot
		for _, e := range tr.Events() {
			switch e.Kind {
			case obs.KindStarted:
				started[e.Variant]++
			case obs.KindDone:
				done[e.Variant]++
				workSum = workSum.Add(e.Work)
				if want := int64(traced.Results[e.Variant].SourceID); e.Arg != want {
					t.Fatalf("T=%d v%d: done source %d, result SourceID %d", threads, e.Variant, e.Arg, want)
				}
				if e.F != traced.Results[e.Variant].Stats.FractionReused {
					t.Fatalf("T=%d v%d: done frac %v, stats %v",
						threads, e.Variant, e.F, traced.Results[e.Variant].Stats.FractionReused)
				}
			}
		}
		for _, v := range vs {
			id := int32(v.ID)
			if started[id] != 1 || done[id] != 1 {
				t.Fatalf("T=%d v%d: started %d done %d, want 1/1", threads, id, started[id], done[id])
			}
		}
		// Per-variant deltas must partition the run totals exactly.
		if total := m.Snapshot(); workSum != total {
			t.Fatalf("T=%d: per-variant work deltas sum to %+v, run totals %+v", threads, workSum, total)
		}
		if tr.Dropped() != 0 {
			t.Fatalf("T=%d: %d events dropped on a small run", threads, tr.Dropped())
		}
	}
}

// TestTracedEventsNestWithinRun checks the trace-side clock contract: every
// event offset lies within [0, makespan] and each variant's phase events
// fall inside its started→done window.
func TestTracedEventsNestWithinRun(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.4, 0.9}, []int{4, 10, 16})
	tr := obs.NewTracer()
	rr, err := Execute(ix, vs, Options{
		Threads: 4, Scheme: reuse.ClusDensity, Tracer: tr,
		DonateIdle: true, // exercise donor join/leave events too
	})
	if err != nil {
		t.Fatal(err)
	}
	window := map[int32][2]time.Duration{}
	for _, e := range tr.Events() {
		if e.At < 0 || e.At > rr.Makespan {
			t.Fatalf("event %v at %v outside [0, %v]", e.Kind, e.At, rr.Makespan)
		}
		switch e.Kind {
		case obs.KindStarted:
			window[e.Variant] = [2]time.Duration{e.At, -1}
		case obs.KindDone:
			w := window[e.Variant]
			w[1] = e.At
			window[e.Variant] = w
		}
	}
	for _, e := range tr.Events() {
		if e.Kind != obs.KindPhaseBegin && e.Kind != obs.KindPhaseEnd {
			continue
		}
		w, ok := window[e.Variant]
		if !ok || w[1] < 0 {
			t.Fatalf("phase event for v%d without a complete started/done window", e.Variant)
		}
		if e.At < w[0] || e.At > w[1] {
			t.Fatalf("v%d %v(%v) at %v outside its span [%v, %v]",
				e.Variant, e.Kind, obs.Phase(e.Arg), e.At, w[0], w[1])
		}
	}
}

// TestProgressCallback: one serial event per variant, Done strictly
// incrementing to |V|, running reuse mean consistent with the final result.
func TestProgressCallback(t *testing.T) {
	ix := testIndex(t)
	vs := variant.Product([]float64{0.4, 0.8}, []int{4, 8, 12})
	var events []obs.ProgressEvent
	rr, err := Execute(ix, vs, Options{
		Threads: 3, Scheme: reuse.ClusDensity,
		Progress: func(e obs.ProgressEvent) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(vs) {
		t.Fatalf("got %d progress events, want %d", len(events), len(vs))
	}
	seen := map[int]bool{}
	for i, e := range events {
		if e.Done != i+1 {
			t.Fatalf("event %d has Done=%d, want %d (serial delivery broken)", i, e.Done, i+1)
		}
		if e.Total != len(vs) {
			t.Fatalf("event %d has Total=%d, want %d", i, e.Total, len(vs))
		}
		if seen[e.Variant] {
			t.Fatalf("variant %d reported twice", e.Variant)
		}
		seen[e.Variant] = true
		if e.Source != rr.Results[e.Variant].SourceID {
			t.Fatalf("v%d: progress source %d, result %d", e.Variant, e.Source, rr.Results[e.Variant].SourceID)
		}
	}
	last := events[len(events)-1]
	if got, want := last.MeanFractionReused, rr.MeanFractionReused(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("final running mean %v, run mean %v", got, want)
	}
}

// TestExecuteTiledMatchesUntiled covers the reuse on/off axis of the
// tiled-exactness matrix: a variant schedule run with tile-level
// parallelism must produce byte-identical per-variant labels to the
// untiled schedule, whether executions cluster from scratch (reuse
// disabled — every run takes the tiled parallel path) or reuse seed
// clusters (reuse on — only the from-scratch head of the schedule
// tiles). Threads=1 keeps seed selection deterministic so the
// comparison can be exact.
func TestExecuteTiledMatchesUntiled(t *testing.T) {
	ix := dbscan.BuildIndex(blobs(3, 200, 100, 25, 0.6, 1),
		dbscan.IndexOptions{R: 16, Kind: dbscan.IndexGrid})
	vs := variant.Product([]float64{0.3, 0.5, 0.8}, []int{4, 8, 16})
	for _, disableReuse := range []bool{true, false} {
		base, err := Execute(ix, vs, Options{
			Threads: 1, Scheme: reuse.ClusDensity,
			DisableReuse: disableReuse, IntraWorkers: 2, Tiles: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, tiles := range []int{4, 9, 16} {
			for _, threads := range []int{1, 4} {
				opt := Options{
					Threads: threads, Scheme: reuse.ClusDensity,
					DisableReuse: disableReuse, IntraWorkers: 2, Tiles: tiles,
				}
				if !disableReuse && threads > 1 {
					continue // nondeterministic seed selection; covered at threads=1
				}
				rr, err := Execute(ix, vs, opt)
				if err != nil {
					t.Fatal(err)
				}
				for vi, r := range rr.Results {
					want := base.Results[vi].Result
					if r.Result.NumClusters != want.NumClusters {
						t.Fatalf("reuse=%v tiles=%d T=%d variant %v: clusters %d vs %d",
							!disableReuse, tiles, threads, r.Variant,
							r.Result.NumClusters, want.NumClusters)
					}
					for i := range r.Result.Labels {
						if r.Result.Labels[i] != want.Labels[i] {
							t.Fatalf("reuse=%v tiles=%d T=%d variant %v: label[%d] = %d, want %d",
								!disableReuse, tiles, threads, r.Variant,
								i, r.Result.Labels[i], want.Labels[i])
						}
					}
				}
			}
		}
	}
}
