//go:build unix

package persist

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mapFile maps the file at path read-only and returns the image plus
// whether it is a real mapping (true) or a heap fallback. A private
// read-only mapping keeps load O(1) in the file size — pages fault in on
// first touch — and makes warm restarts nearly instant; if the mmap
// syscall fails (some filesystems refuse it) the file is read to heap
// instead, which is slower but identical in behavior.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size == 0 {
		return nil, false, fmt.Errorf("%w: empty file", ErrSnapshotCorrupt)
	}
	if size > int64(math.MaxInt) {
		return nil, false, fmt.Errorf("%w: %d bytes exceeds the address space", ErrSnapshotCorrupt, size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		heap, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, false, rerr
		}
		return heap, false, nil
	}
	return b, true, nil
}

// unmapFile releases a mapping returned by mapFile. Only called on load
// failure — a successfully loaded snapshot's arrays alias the mapping,
// which then lives for the life of the process.
func unmapFile(b []byte) {
	syscall.Munmap(b) //nolint:errcheck // release path; nothing to do
}
