package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"vdbscan/internal/data"
	"vdbscan/internal/dataio"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

func testPoints(n int, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rnd.Float64() * 50, Y: rnd.Float64() * 50}
	}
	return pts
}

func buildFrozen(t testing.TB, pts []geom.Point, kind dbscan.IndexKind, eps float64) (*dbscan.Index, dbscan.FrozenParts) {
	t.Helper()
	ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{Kind: kind})
	if kind == dbscan.IndexGrid {
		if err := ix.EnsureGrid(eps); err != nil {
			t.Fatalf("EnsureGrid: %v", err)
		}
	}
	parts, err := ix.FrozenParts()
	if err != nil {
		t.Fatalf("FrozenParts: %v", err)
	}
	return ix, parts
}

// TestSaveLoadRoundTrip pins the exactness bar of the snapshot store: a
// dataset loaded back from disk must produce byte-identical DBSCAN labels
// to the index it was saved from, for both index kinds.
func TestSaveLoadRoundTrip(t *testing.T) {
	params := dbscan.Params{Eps: 1.5, MinPts: 4}
	for _, kind := range []dbscan.IndexKind{dbscan.IndexRTree, dbscan.IndexGrid} {
		for _, n := range []int{0, 1, 37, 3000} {
			pts := testPoints(n, int64(n)+3)
			ix, parts := buildFrozen(t, pts, kind, params.Eps)
			path := filepath.Join(t.TempDir(), "snapshot")
			if err := Save(path, parts, 42); err != nil {
				t.Fatalf("kind=%v n=%d: Save: %v", kind, n, err)
			}
			loaded, info, err := Load(path)
			if err != nil {
				t.Fatalf("kind=%v n=%d: Load: %v", kind, n, err)
			}
			if info.Points != n || info.Sequence != 42 || info.Kind != kind {
				t.Fatalf("kind=%v n=%d: info %+v", kind, n, info)
			}
			st, _ := os.Stat(path)
			if info.Bytes != st.Size() || info.Bytes%PageSize != 0 {
				t.Fatalf("kind=%v n=%d: Bytes=%d file=%d", kind, n, info.Bytes, st.Size())
			}
			if n == 0 {
				continue
			}
			want, err := dbscan.Run(ix, params, &metrics.Counters{})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got, err := dbscan.Run(loaded, params, &metrics.Counters{})
			if err != nil {
				t.Fatalf("mapped run: %v", err)
			}
			for i := range want.Labels {
				if want.Labels[i] != got.Labels[i] {
					t.Fatalf("kind=%v n=%d: label %d: %d vs %d", kind, n, i, want.Labels[i], got.Labels[i])
				}
			}
		}
	}
}

// TestSaveAtomic checks that Save leaves no temp droppings and that a
// save over an existing snapshot fully replaces it.
func TestSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot")
	_, parts := buildFrozen(t, testPoints(500, 7), dbscan.IndexRTree, 1.5)
	if err := Save(path, parts, 1); err != nil {
		t.Fatalf("Save: %v", err)
	}
	_, parts2 := buildFrozen(t, testPoints(900, 11), dbscan.IndexRTree, 1.5)
	if err := Save(path, parts2, 2); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "snapshot" {
		t.Fatalf("directory not clean after saves: %v", ents)
	}
	_, info, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if info.Points != 900 || info.Sequence != 2 {
		t.Fatalf("old snapshot survived: %+v", info)
	}
}

// stamp recomputes and patches the whole-file checksum so a mutation
// reaches the structural validators instead of tripping the CRC.
func stamp(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.NativeEndian.PutUint32(b[offChecksum:], checksumOf(b))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadCorruption is the corruption matrix: every damaged file must
// come back as a typed error — ErrSnapshotCorrupt or ErrSnapshotVersion —
// and never a panic or a silently wrong index.
func TestLoadCorruption(t *testing.T) {
	_, parts := buildFrozen(t, testPoints(2000, 13), dbscan.IndexGrid, 1.5)
	good := filepath.Join(t.TempDir(), "good")
	if err := Save(good, parts, 9); err != nil {
		t.Fatalf("Save: %v", err)
	}
	img, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func(b []byte) []byte
		restamp bool
		want    error
	}{
		{"truncated_half", func(b []byte) []byte {
			return b[:len(b)/2]
		}, false, ErrSnapshotCorrupt},
		{"truncated_header", func(b []byte) []byte {
			return b[:100]
		}, false, ErrSnapshotCorrupt},
		{"flipped_payload_byte", func(b []byte) []byte {
			b[PageSize+5] ^= 0x40
			return b
		}, false, ErrSnapshotCorrupt},
		{"flipped_checksum_byte", func(b []byte) []byte {
			b[offChecksum+1] ^= 0x01
			return b
		}, false, ErrSnapshotCorrupt},
		{"bad_magic", func(b []byte) []byte {
			b[0] = 'X'
			return b
		}, true, ErrSnapshotCorrupt},
		{"future_version", func(b []byte) []byte {
			binary.NativeEndian.PutUint32(b[offVersion:], FormatVersion+1)
			return b
		}, true, ErrSnapshotVersion},
		{"swapped_endianness", func(b []byte) []byte {
			// A file written on the opposite-endian host carries the mark
			// byte-swapped.
			b[offEndian], b[offEndian+1], b[offEndian+2], b[offEndian+3] =
				b[offEndian+3], b[offEndian+2], b[offEndian+1], b[offEndian]
			return b
		}, true, ErrSnapshotVersion},
		{"lying_total_size", func(b []byte) []byte {
			binary.NativeEndian.PutUint64(b[offTotal:], uint64(len(b))*2)
			return b
		}, true, ErrSnapshotCorrupt},
		{"negative_npoints", func(b []byte) []byte {
			binary.NativeEndian.PutUint64(b[offNPoints:], ^uint64(0))
			return b
		}, true, ErrSnapshotCorrupt},
		{"section_out_of_bounds", func(b []byte) []byte {
			binary.NativeEndian.PutUint64(b[offSections:], uint64(len(b)))
			return b
		}, true, ErrSnapshotCorrupt},
		{"restamped_structural_damage", func(b []byte) []byte {
			// Corrupt the Fwd permutation but fix the CRC: only the
			// structural validators stand between this file and a panic.
			binary.NativeEndian.PutUint64(b[PageSize*4+8:], binary.NativeEndian.Uint64(b[PageSize*4:]))
			return b
		}, true, ErrSnapshotCorrupt},
		{"empty_file", func(b []byte) []byte {
			return nil
		}, false, ErrSnapshotCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "snap")
			b := tc.mutate(append([]byte(nil), img...))
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			if tc.restamp {
				stamp(t, path)
			}
			ix, _, err := Load(path)
			if err == nil {
				t.Fatalf("damaged snapshot loaded (ix=%v)", ix != nil)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err=%v, want errors.Is(%v)", err, tc.want)
			}
		})
	}

	if _, _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatalf("missing snapshot loaded")
	}
}

// The Fwd-corruption case above depends on the Fwd section landing at
// page 4 for a small snapshot; pin that assumption.
func TestFwdSectionPlacement(t *testing.T) {
	_, parts := buildFrozen(t, testPoints(64, 3), dbscan.IndexRTree, 1.5)
	h, _ := layout(parts, 0)
	if h.secs[secFwd].off != PageSize*4 {
		t.Fatalf("secFwd moved to %d; update TestLoadCorruption", h.secs[secFwd].off)
	}
}

// TestWALRoundTrip appends batches and replays them back in order.
func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	var want []geom.Point
	for _, n := range []int{1, 3, 0, 128} {
		batch := testPoints(n, int64(n))
		if err := w.Append(batch); err != nil {
			t.Fatalf("Append(%d): %v", n, err)
		}
		want = append(want, batch...)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := ReplayWAL(path)
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: %v vs %v", i, got[i], want[i])
		}
	}

	// Reopen and append more: the log is append-only across opens.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	more := testPoints(5, 99)
	if err := w2.Append(more); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	w2.Close()
	got, err = ReplayWAL(path)
	if err != nil {
		t.Fatalf("ReplayWAL after reopen: %v", err)
	}
	if len(got) != len(want)+5 {
		t.Fatalf("replayed %d points, want %d", len(got), len(want)+5)
	}
}

// TestWALPartialTail simulates a crash mid-append: every truncation point
// inside the final record must yield the full earlier prefix plus
// ErrWALPartial, and a corrupted tail CRC likewise.
func TestWALPartialTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	first := testPoints(10, 1)
	second := testPoints(7, 2)
	if err := w.Append(first); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(second); err != nil {
		t.Fatal(err)
	}
	w.Close()
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := 4 + len(first)*16 + 4

	for cut := firstLen + 1; cut < len(img); cut += 13 {
		p := filepath.Join(dir, "cut")
		if err := os.WriteFile(p, img[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReplayWAL(p)
		if !errors.Is(err, ErrWALPartial) {
			t.Fatalf("cut=%d: err=%v, want ErrWALPartial", cut, err)
		}
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("cut=%d: ErrWALPartial must wrap ErrSnapshotCorrupt", cut)
		}
		if len(got) != len(first) {
			t.Fatalf("cut=%d: prefix %d points, want %d", cut, len(got), len(first))
		}
	}

	// Flip a payload byte in the tail record: prefix survives, tail drops.
	bad := append([]byte(nil), img...)
	bad[firstLen+6] ^= 0x20
	p := filepath.Join(dir, "flip")
	if err := os.WriteFile(p, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReplayWAL(p)
	if !errors.Is(err, ErrWALPartial) {
		t.Fatalf("flipped tail: err=%v", err)
	}
	if len(got) != len(first) {
		t.Fatalf("flipped tail: prefix %d points, want %d", len(got), len(first))
	}

	// A record claiming an absurd count must not drive an allocation.
	huge := append([]byte(nil), img[:firstLen]...)
	var cnt [4]byte
	binary.NativeEndian.PutUint32(cnt[:], 1<<31)
	huge = append(huge, cnt[:]...)
	p = filepath.Join(dir, "huge")
	if err := os.WriteFile(p, huge, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = ReplayWAL(p)
	if !errors.Is(err, ErrWALPartial) || len(got) != len(first) {
		t.Fatalf("huge count: got %d points, err=%v", len(got), err)
	}

	// Missing file: empty history, no error.
	if pts, err := ReplayWAL(filepath.Join(dir, "absent")); pts != nil || err != nil {
		t.Fatalf("missing wal: %v, %v", pts, err)
	}
}

// FuzzLoadSnapshot mutates a valid snapshot image, re-stamps the
// checksum so mutations reach the structural validators, and requires
// Load to either succeed or fail typed — never panic.
func FuzzLoadSnapshot(f *testing.F) {
	_, parts := buildFrozen(f, testPoints(200, 5), dbscan.IndexGrid, 1.5)
	seedPath := filepath.Join(f.TempDir(), "seed")
	if err := Save(seedPath, parts, 3); err != nil {
		f.Fatalf("Save: %v", err)
	}
	img, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(int64(1), 0, byte(0xff))
	f.Add(int64(2), len(img)/2, byte(0x01))
	f.Fuzz(func(t *testing.T, seed int64, pos int, x byte) {
		rnd := rand.New(rand.NewSource(seed))
		b := append([]byte(nil), img...)
		if pos >= 0 && pos < len(b) {
			b[pos] ^= x
		}
		for i := 0; i < 8; i++ {
			b[rnd.Intn(len(b))] ^= byte(1 << rnd.Intn(8))
		}
		if rnd.Intn(2) == 0 {
			b = b[:rnd.Intn(len(b)+1)]
		}
		if len(b) >= offChecksum+4 {
			binary.NativeEndian.PutUint32(b[offChecksum:], checksumOf(b))
		}
		path := filepath.Join(t.TempDir(), "fuzz")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		ix, _, err := Load(path)
		if err != nil {
			if !errors.Is(err, ErrSnapshotCorrupt) && !errors.Is(err, ErrSnapshotVersion) {
				t.Fatalf("untyped load error: %v", err)
			}
			return
		}
		// A mutation that survives every check must still be servable.
		if ix.Len() >= 0 {
			_ = ix.NeighborSearch(geom.Point{X: 25, Y: 25}, 1.5, &metrics.Counters{}, nil)
		}
	})
}

// benchSizes are the restart-economics scales EXPERIMENTS.md reports: the
// repo's usual 1%-scale working set and a full paper-scale 1M-point set.
var benchSizes = []int{100_000, 1_000_000}

func BenchmarkSave(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ix := dbscan.BuildIndex(testPoints(n, 21), dbscan.IndexOptions{})
			parts, err := ix.FrozenParts()
			if err != nil {
				b.Fatal(err)
			}
			path := filepath.Join(b.TempDir(), "snapshot")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := Save(path, parts, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLoad(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ix := dbscan.BuildIndex(testPoints(n, 21), dbscan.IndexOptions{})
			parts, err := ix.FrozenParts()
			if err != nil {
				b.Fatal(err)
			}
			path := filepath.Join(b.TempDir(), "snapshot")
			if err := Save(path, parts, 1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Load(path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColdStart is what a restart costs WITHOUT a snapshot: re-parse
// the dataset's CSV, re-freeze the index, and run the first clustering
// job — the upload path a warm restart skips.
func BenchmarkColdStart(b *testing.B) {
	params := dbscan.Params{Eps: 0.4, MinPts: 4}
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var buf bytes.Buffer
			ds := &data.Dataset{Name: "bench", Points: testPoints(n, 21)}
			if err := dataio.WriteCSV(&buf, ds); err != nil {
				b.Fatal(err)
			}
			csv := buf.Bytes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				parsed, err := dataio.ReadCSV(bytes.NewReader(csv))
				if err != nil {
					b.Fatal(err)
				}
				ix := dbscan.BuildIndex(parsed.Points, dbscan.IndexOptions{})
				if _, err := dbscan.Run(ix, params, &metrics.Counters{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWarmStart is the same time-to-first-labels through the durable
// store: mmap + validate the snapshot, then run the first job against the
// mapped arrays.
func BenchmarkWarmStart(b *testing.B) {
	params := dbscan.Params{Eps: 0.4, MinPts: 4}
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ix := dbscan.BuildIndex(testPoints(n, 21), dbscan.IndexOptions{})
			parts, err := ix.FrozenParts()
			if err != nil {
				b.Fatal(err)
			}
			path := filepath.Join(b.TempDir(), "snapshot")
			if err := Save(path, parts, 1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loaded, _, err := Load(path)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dbscan.Run(loaded, params, &metrics.Counters{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
