// Package persist implements the durable dataset store: a versioned,
// checksummed, page-aligned snapshot of a frozen dbscan.Index, written
// atomically and loaded back via mmap with zero deserialization, plus a
// small append-only WAL for the points staged between snapshots.
//
// The format leans on the fact that both frozen index layouts
// (rtree.Flat and gridindex.Flat) are already offset-based
// struct-of-arrays — the same property that makes them cache-friendly in
// memory makes them directly servable from a file mapping, the
// node-as-page design of SQLite's R-tree module applied to whole arrays.
// A snapshot is one header page followed by each array as a page-aligned
// byte section in native endianness; loading is a handful of bounds
// checks and slice casts, after which the existing iterative traversals
// run over file-backed memory.
//
// Integrity is layered: a CRC32-C over the whole file catches bit rot and
// truncation, and — because a checksum can be re-stamped by an attacker
// or a fuzzer — every structural invariant the traversals rely on is
// re-validated on load (via rtree.FlatFromParts, gridindex.FlatFromParts,
// and dbscan.IndexFromFrozen), so a hostile file yields ErrSnapshotCorrupt,
// never a panic.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"strconv"
	"unsafe"

	"vdbscan/internal/geom"
)

// Typed failure modes, per the facade's errors.Is contract.
var (
	// ErrSnapshotCorrupt reports a snapshot or WAL that failed integrity
	// or structural validation: truncation, checksum mismatch, bad magic,
	// or any internal inconsistency. The caller's correct response is to
	// discard the file and rebuild from source data.
	ErrSnapshotCorrupt = errors.New("persist: snapshot corrupt")
	// ErrSnapshotVersion reports a well-formed snapshot this build cannot
	// read: a future format version, or a file written on a platform with
	// the opposite byte order.
	ErrSnapshotVersion = errors.New("persist: unsupported snapshot version or byte order")
	// ErrWALPartial reports a WAL whose tail record is truncated or
	// corrupt — the expected state after a crash mid-append. Replay
	// returns it alongside the valid prefix; it wraps ErrSnapshotCorrupt
	// so one errors.Is covers every integrity failure.
	ErrWALPartial = fmt.Errorf("%w: wal tail truncated or corrupt", ErrSnapshotCorrupt)
)

const (
	// PageSize is the section alignment: the header fills one page and
	// every array section starts on a page boundary, so mapped slices are
	// maximally aligned and sections never share a page.
	PageSize = 4096
	// FormatVersion is the snapshot format this build reads and writes.
	FormatVersion = 1
	// endianMark reads back byte-swapped on a host with the opposite
	// byte order, turning a cross-endian file into ErrSnapshotVersion
	// instead of silent garbage.
	endianMark = 0x01020304
)

var snapMagic = [4]byte{'V', 'D', 'B', 'S'}

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Section indices of the fixed layout table. Order is also write order.
const (
	secPts     = iota // []geom.Point, n·16 bytes
	secX              // []float64, n·8
	secY              // []float64, n·8
	secFwd            // []int64, n·8
	secLowMinX        // low tree entry arrays, E·8 / E·4
	secLowMinY
	secLowMaxX
	secLowMaxY
	secLowRef
	secLowCnt
	secLowNode // (numNodes+1)·4
	secHighMinX
	secHighMinY
	secHighMaxX
	secHighMaxY
	secHighRef
	secHighCnt
	secHighNode
	secGridCell // (cols·rows+1)·4
	secGridXs
	secGridYs
	secGridIDs
	numSections
)

// Header field offsets. Scalars are native-endian at fixed offsets inside
// the first page; everything past headerUsed is zero.
const (
	offMagic    = 0
	offVersion  = 4
	offEndian   = 8
	offPageSize = 12
	offFlags    = 16
	offKind     = 20
	offChecksum = 24 // CRC32-C of the whole file with this field zeroed
	offTotal    = 32
	offNPoints  = 40
	offSequence = 48
	offLowMeta  = 56 // height, r, fanout, firstLeaf: 4×int32
	offHighMeta = 72
	offGridSide = 88
	offGridOrgX = 96
	offGridOrgY = 104
	offGridCols = 112
	offGridRows = 116
	offGridLen  = 120
	offSections = 128 // numSections × {offset int64, length int64}
	headerUsed  = offSections + numSections*16
)

// Header flag bits.
const (
	flagHasHigh = 1 << iota
	flagHasGrid
)

type treeMeta struct{ height, r, fanout, firstLeaf int32 }

type span struct{ off, n int64 }

// header is the decoded first page.
type header struct {
	flags, kind                        uint32
	checksum                           uint32
	totalSize, nPoints                 int64
	sequence                           uint64
	low, high                          treeMeta
	gridSide, gridOriginX, gridOriginY float64
	gridCols, gridRows                 int32
	gridLen                            int64
	secs                               [numSections]span
}

func encodeHeader(h header) []byte {
	b := make([]byte, PageSize)
	ne := binary.NativeEndian
	copy(b[offMagic:], snapMagic[:])
	ne.PutUint32(b[offVersion:], FormatVersion)
	ne.PutUint32(b[offEndian:], endianMark)
	ne.PutUint32(b[offPageSize:], PageSize)
	ne.PutUint32(b[offFlags:], h.flags)
	ne.PutUint32(b[offKind:], h.kind)
	ne.PutUint32(b[offChecksum:], h.checksum)
	ne.PutUint64(b[offTotal:], uint64(h.totalSize))
	ne.PutUint64(b[offNPoints:], uint64(h.nPoints))
	ne.PutUint64(b[offSequence:], h.sequence)
	putTreeMeta(b[offLowMeta:], h.low)
	putTreeMeta(b[offHighMeta:], h.high)
	ne.PutUint64(b[offGridSide:], math.Float64bits(h.gridSide))
	ne.PutUint64(b[offGridOrgX:], math.Float64bits(h.gridOriginX))
	ne.PutUint64(b[offGridOrgY:], math.Float64bits(h.gridOriginY))
	ne.PutUint32(b[offGridCols:], uint32(h.gridCols))
	ne.PutUint32(b[offGridRows:], uint32(h.gridRows))
	ne.PutUint64(b[offGridLen:], uint64(h.gridLen))
	for i, s := range h.secs {
		ne.PutUint64(b[offSections+i*16:], uint64(s.off))
		ne.PutUint64(b[offSections+i*16+8:], uint64(s.n))
	}
	return b
}

func putTreeMeta(b []byte, m treeMeta) {
	ne := binary.NativeEndian
	ne.PutUint32(b[0:], uint32(m.height))
	ne.PutUint32(b[4:], uint32(m.r))
	ne.PutUint32(b[8:], uint32(m.fanout))
	ne.PutUint32(b[12:], uint32(m.firstLeaf))
}

func getTreeMeta(b []byte) treeMeta {
	ne := binary.NativeEndian
	return treeMeta{
		height:    int32(ne.Uint32(b[0:])),
		r:         int32(ne.Uint32(b[4:])),
		fanout:    int32(ne.Uint32(b[8:])),
		firstLeaf: int32(ne.Uint32(b[12:])),
	}
}

// decodeHeader parses and gate-checks the first page: magic and geometry
// under ErrSnapshotCorrupt, version and byte order under
// ErrSnapshotVersion. Structural checks on the section table happen later
// against the actual file size.
func decodeHeader(b []byte) (header, error) {
	var h header
	if len(b) < PageSize {
		return h, fmt.Errorf("%w: %d bytes is smaller than one header page", ErrSnapshotCorrupt, len(b))
	}
	ne := binary.NativeEndian
	if [4]byte(b[offMagic:offMagic+4]) != snapMagic {
		return h, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	if v := ne.Uint32(b[offVersion:]); v != FormatVersion {
		return h, fmt.Errorf("%w: format version %d (want %d)", ErrSnapshotVersion, v, FormatVersion)
	}
	if m := ne.Uint32(b[offEndian:]); m != endianMark {
		return h, fmt.Errorf("%w: endianness mark %#x (written on an opposite-endian host?)", ErrSnapshotVersion, m)
	}
	if ps := ne.Uint32(b[offPageSize:]); ps != PageSize {
		return h, fmt.Errorf("%w: page size %d (want %d)", ErrSnapshotVersion, ps, PageSize)
	}
	h.flags = ne.Uint32(b[offFlags:])
	h.kind = ne.Uint32(b[offKind:])
	h.checksum = ne.Uint32(b[offChecksum:])
	h.totalSize = int64(ne.Uint64(b[offTotal:]))
	h.nPoints = int64(ne.Uint64(b[offNPoints:]))
	h.sequence = ne.Uint64(b[offSequence:])
	h.low = getTreeMeta(b[offLowMeta:])
	h.high = getTreeMeta(b[offHighMeta:])
	h.gridSide = math.Float64frombits(ne.Uint64(b[offGridSide:]))
	h.gridOriginX = math.Float64frombits(ne.Uint64(b[offGridOrgX:]))
	h.gridOriginY = math.Float64frombits(ne.Uint64(b[offGridOrgY:]))
	h.gridCols = int32(ne.Uint32(b[offGridCols:]))
	h.gridRows = int32(ne.Uint32(b[offGridRows:]))
	h.gridLen = int64(ne.Uint64(b[offGridLen:]))
	for i := range h.secs {
		h.secs[i].off = int64(ne.Uint64(b[offSections+i*16:]))
		h.secs[i].n = int64(ne.Uint64(b[offSections+i*16+8:]))
	}
	return h, nil
}

// checksumOf computes the file checksum: CRC32-C over the whole image
// with the 4-byte checksum field treated as zero.
func checksumOf(b []byte) uint32 {
	var zero [4]byte
	c := crc32.Update(0, castagnoli, b[:offChecksum])
	c = crc32.Update(c, castagnoli, zero[:])
	return crc32.Update(c, castagnoli, b[offChecksum+4:])
}

// ---- byte-level views of the typed arrays ----
//
// The casts below are the whole point of the format: a section written
// with f64Bytes reads back with bytesF64 over the same (mapped) memory.
// Safety rests on three facts the callers maintain: lengths are validated
// to be exact element multiples, base pointers are at least 8-byte
// aligned (sections are page-aligned in the file, and Go heap slices of
// ≥ 8 bytes are 8-byte aligned), and every reconstructed slice is treated
// as read-only — appends reallocate because len == cap.

func f64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func i32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func ptBytes(s []geom.Point) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*16)
}

// intBytes views []int as disk bytes (int64 elements). On 32-bit hosts it
// widens through a copy.
func intBytes(s []int) []byte {
	if len(s) == 0 {
		return nil
	}
	if strconv.IntSize == 64 {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	wide := make([]int64, len(s))
	for i, v := range s {
		wide[i] = int64(v)
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&wide[0])), len(wide)*8)
}

func bytesF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func bytesI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func bytesPts(b []byte) []geom.Point {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*geom.Point)(unsafe.Pointer(&b[0])), len(b)/16)
}

// bytesInts views disk bytes (int64 elements) as []int, narrowing through
// a copy on 32-bit hosts (out-of-range values become garbage there, which
// the downstream permutation validation rejects).
func bytesInts(b []byte) []int {
	if len(b) == 0 {
		return nil
	}
	if strconv.IntSize == 64 {
		return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	wide := unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
	out := make([]int, len(wide))
	for i, v := range wide {
		out[i] = int(v)
	}
	return out
}
