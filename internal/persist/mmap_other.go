//go:build !unix

package persist

import (
	"fmt"
	"os"
)

// mapFile on platforms without the unix mmap surface reads the file to
// heap. Loads still avoid deserialization (the same slice casts apply);
// they just pay one streaming read up front.
func mapFile(path string) ([]byte, bool, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if len(b) == 0 {
		return nil, false, fmt.Errorf("%w: empty file", ErrSnapshotCorrupt)
	}
	return b, false, nil
}

func unmapFile([]byte) {}
