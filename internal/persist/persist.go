package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"vdbscan/internal/dbscan"
	"vdbscan/internal/gridindex"
	"vdbscan/internal/rtree"
)

// Info summarizes a loaded (or just-written) snapshot.
type Info struct {
	// Points is the dataset size.
	Points int
	// R is the ε-search tree's leaf occupancy.
	R int
	// Kind is the ε-search substrate the dataset was frozen with.
	Kind dbscan.IndexKind
	// Sequence is the caller-supplied monotonic tag (the registry stores
	// the dataset's install version here, pairing snapshots with WALs).
	Sequence uint64
	// Bytes is the on-disk snapshot size.
	Bytes int64
	// Mapped is true when the arrays are served from an mmap of the file
	// (false on platforms without mmap, where the file is read to heap).
	Mapped bool
}

// Save writes parts as a snapshot at path, atomically: the image is
// streamed to a temp file in the same directory, fsynced, and renamed
// over path, so a crash at any instant leaves either the old snapshot or
// the new one — never a torn file. seq is the caller's monotonic tag,
// echoed back by Load.
func Save(path string, parts dbscan.FrozenParts, seq uint64) (err error) {
	h, sections := layout(parts, seq)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("persist: save: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	// Stream header + sections through one buffered, checksumming writer.
	// The header goes out with a zero checksum field — exactly what the
	// checksum is defined over — and the real value is patched in with
	// WriteAt afterwards, which cannot tear a 4-byte write.
	w := &checkWriter{w: bufio.NewWriterSize(tmp, 1<<20), crc: crc32.New(castagnoli)}
	if err = w.write(encodeHeader(h)); err != nil {
		return fmt.Errorf("persist: save: %w", err)
	}
	for i, sec := range sections {
		if len(sec) == 0 {
			continue
		}
		if err = w.padTo(h.secs[i].off); err != nil {
			return fmt.Errorf("persist: save: %w", err)
		}
		if err = w.write(sec); err != nil {
			return fmt.Errorf("persist: save: %w", err)
		}
	}
	if err = w.padTo(h.totalSize); err != nil {
		return fmt.Errorf("persist: save: %w", err)
	}
	if err = w.w.(*bufio.Writer).Flush(); err != nil {
		return fmt.Errorf("persist: save: %w", err)
	}
	var sum [4]byte
	binary.NativeEndian.PutUint32(sum[:], w.crc.Sum32())
	if _, err = tmp.WriteAt(sum[:], offChecksum); err != nil {
		return fmt.Errorf("persist: save: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("persist: save: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("persist: save: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: save: %w", err)
	}
	syncDir(dir) // make the rename itself durable; best-effort
	return nil
}

// layout computes the header and the ordered per-section byte views for
// parts. Sections are laid out in index order, each starting on a page
// boundary; empty sections get a zero span.
func layout(parts dbscan.FrozenParts, seq uint64) (header, [numSections][]byte) {
	var sections [numSections][]byte
	sections[secPts] = ptBytes(parts.Pts)
	sections[secX] = f64Bytes(parts.X)
	sections[secY] = f64Bytes(parts.Y)
	sections[secFwd] = intBytes(parts.Fwd)
	fillTree := func(base int, p rtree.FlatParts) {
		sections[base+0] = f64Bytes(p.EntMinX)
		sections[base+1] = f64Bytes(p.EntMinY)
		sections[base+2] = f64Bytes(p.EntMaxX)
		sections[base+3] = f64Bytes(p.EntMaxY)
		sections[base+4] = i32Bytes(p.EntRef)
		sections[base+5] = i32Bytes(p.EntCnt)
		sections[base+6] = i32Bytes(p.NodeEnt)
	}
	fillTree(secLowMinX, parts.Low)

	h := header{
		kind:     uint32(parts.Kind),
		nPoints:  int64(len(parts.Pts)),
		sequence: seq,
		low: treeMeta{
			height: int32(parts.Low.Height), r: int32(parts.Low.R),
			fanout: int32(parts.Low.Fanout), firstLeaf: parts.Low.FirstLeaf,
		},
	}
	if parts.High != nil {
		h.flags |= flagHasHigh
		fillTree(secHighMinX, *parts.High)
		h.high = treeMeta{
			height: int32(parts.High.Height), r: int32(parts.High.R),
			fanout: int32(parts.High.Fanout), firstLeaf: parts.High.FirstLeaf,
		}
	}
	if parts.Grid != nil {
		h.flags |= flagHasGrid
		g := *parts.Grid
		sections[secGridCell] = i32Bytes(g.CellStart)
		sections[secGridXs] = f64Bytes(g.Xs)
		sections[secGridYs] = f64Bytes(g.Ys)
		sections[secGridIDs] = i32Bytes(g.IDs)
		h.gridSide, h.gridOriginX, h.gridOriginY = g.Side, g.OriginX, g.OriginY
		h.gridCols, h.gridRows = g.Cols, g.Rows
		h.gridLen = int64(len(g.Xs))
	}

	cur := int64(PageSize)
	for i, sec := range sections {
		if len(sec) == 0 {
			continue
		}
		h.secs[i] = span{off: cur, n: int64(len(sec))}
		cur = pageCeil(cur + int64(len(sec)))
	}
	h.totalSize = cur
	return h, sections
}

func pageCeil(n int64) int64 { return (n + PageSize - 1) &^ (PageSize - 1) }

// checkWriter streams bytes through a CRC while tracking the write
// offset, so padTo can emit zero fill up to the next section boundary.
type checkWriter struct {
	w   io.Writer
	crc hash.Hash32
	n   int64
}

func (c *checkWriter) write(b []byte) error {
	if _, err := c.w.Write(b); err != nil {
		return err
	}
	c.crc.Write(b) //nolint:errcheck // hash writes cannot fail
	c.n += int64(len(b))
	return nil
}

var zeroPage [PageSize]byte

func (c *checkWriter) padTo(off int64) error {
	for c.n < off {
		chunk := off - c.n
		if chunk > PageSize {
			chunk = PageSize
		}
		if err := c.write(zeroPage[:chunk]); err != nil {
			return err
		}
	}
	return nil
}

// Load opens the snapshot at path, maps it, validates it, and
// reconstructs a servable index whose arrays alias the mapping — zero
// copies, zero deserialization. The mapping stays alive for the life of
// the process (the index and anything built from it may reference it
// indefinitely; a long-running daemon holds a handful of mappings, not a
// leak-per-request). Corrupt or truncated files return
// ErrSnapshotCorrupt; files from a newer format or foreign byte order
// return ErrSnapshotVersion; neither ever panics.
func Load(path string) (*dbscan.Index, Info, error) {
	b, mapped, err := mapFile(path)
	if err != nil {
		return nil, Info{}, err
	}
	ix, info, err := decode(b)
	if err != nil {
		if mapped {
			unmapFile(b)
		}
		return nil, Info{}, err
	}
	info.Mapped = mapped
	return ix, info, nil
}

// decode validates the image end to end and reconstructs the index.
func decode(b []byte) (*dbscan.Index, Info, error) {
	corrupt := func(format string, args ...any) (*dbscan.Index, Info, error) {
		return nil, Info{}, fmt.Errorf("%w: "+format, append([]any{ErrSnapshotCorrupt}, args...)...)
	}
	h, err := decodeHeader(b)
	if err != nil {
		return nil, Info{}, err
	}
	if h.totalSize != int64(len(b)) {
		return corrupt("header says %d bytes, file has %d", h.totalSize, len(b))
	}
	if got := checksumOf(b); got != h.checksum {
		return corrupt("checksum mismatch: stored %#x, computed %#x", h.checksum, got)
	}
	n := h.nPoints
	if n < 0 || n > math.MaxInt32 {
		return corrupt("point count %d out of range", n)
	}
	if h.kind != uint32(dbscan.IndexRTree) && h.kind != uint32(dbscan.IndexGrid) {
		return corrupt("unknown index kind %d", h.kind)
	}

	// Section extraction: every span must sit past the header, inside the
	// file, 8-byte aligned, and be an exact element multiple.
	sec := func(i int, elem int64) ([]byte, error) {
		sp := h.secs[i]
		if sp.n == 0 {
			if sp.off != 0 {
				return nil, fmt.Errorf("%w: empty section %d has offset %d", ErrSnapshotCorrupt, i, sp.off)
			}
			return nil, nil
		}
		if sp.off < PageSize || sp.off%8 != 0 || sp.n < 0 || sp.n%elem != 0 ||
			sp.off > h.totalSize || sp.n > h.totalSize-sp.off {
			return nil, fmt.Errorf("%w: section %d span [%d, +%d) invalid", ErrSnapshotCorrupt, i, sp.off, sp.n)
		}
		return b[sp.off : sp.off+sp.n : sp.off+sp.n], nil
	}
	fixed := func(i int, elem, want int64) ([]byte, error) {
		s, err := sec(i, elem)
		if err != nil {
			return nil, err
		}
		if int64(len(s))/elem != want {
			return nil, fmt.Errorf("%w: section %d has %d elements, want %d", ErrSnapshotCorrupt, i, int64(len(s))/elem, want)
		}
		return s, nil
	}

	var parts dbscan.FrozenParts
	parts.Kind = dbscan.IndexKind(h.kind)
	var secErr error
	get := func(i int, elem, want int64) []byte {
		if secErr != nil {
			return nil
		}
		var s []byte
		if want < 0 {
			s, secErr = sec(i, elem)
		} else {
			s, secErr = fixed(i, elem, want)
		}
		return s
	}
	parts.Pts = bytesPts(get(secPts, 16, n))
	parts.X = bytesF64(get(secX, 8, n))
	parts.Y = bytesF64(get(secY, 8, n))
	parts.Fwd = bytesInts(get(secFwd, 8, n))
	readTree := func(base int, m treeMeta) rtree.FlatParts {
		p := rtree.FlatParts{
			EntMinX: bytesF64(get(base+0, 8, -1)),
			EntMinY: bytesF64(get(base+1, 8, -1)),
			EntMaxX: bytesF64(get(base+2, 8, -1)),
			EntMaxY: bytesF64(get(base+3, 8, -1)),
			EntRef:  bytesI32(get(base+4, 4, -1)),
			EntCnt:  bytesI32(get(base+5, 4, -1)),
			NodeEnt: bytesI32(get(base+6, 4, -1)),
		}
		p.FirstLeaf = m.firstLeaf
		p.Height, p.R, p.Fanout = int(m.height), int(m.r), int(m.fanout)
		p.Size = int(n)
		return p
	}
	parts.Low = readTree(secLowMinX, h.low)
	if h.flags&flagHasHigh != 0 {
		hp := readTree(secHighMinX, h.high)
		parts.High = &hp
	}
	if h.flags&flagHasGrid != 0 {
		if h.gridLen < 0 || h.gridLen > n {
			return corrupt("grid length %d out of range", h.gridLen)
		}
		gp := gridindex.FlatParts{
			Side: h.gridSide, OriginX: h.gridOriginX, OriginY: h.gridOriginY,
			Cols: h.gridCols, Rows: h.gridRows,
			CellStart: bytesI32(get(secGridCell, 4, -1)),
			Xs:        bytesF64(get(secGridXs, 8, h.gridLen)),
			Ys:        bytesF64(get(secGridYs, 8, h.gridLen)),
			IDs:       bytesI32(get(secGridIDs, 4, h.gridLen)),
		}
		parts.Grid = &gp
	}
	if secErr != nil {
		return nil, Info{}, secErr
	}
	parts.R = int(h.low.r)

	// Full structural validation happens inside the reconstruction chain
	// (FlatFromParts, IndexFromFrozen); any rejection is corruption.
	ix, err := dbscan.IndexFromFrozen(parts)
	if err != nil {
		return corrupt("%v", err)
	}
	return ix, Info{
		Points:   int(n),
		R:        int(h.low.r),
		Kind:     parts.Kind,
		Sequence: h.sequence,
		Bytes:    int64(len(b)),
	}, nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best-effort: some filesystems refuse directory syncs.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // advisory
		d.Close()
	}
}
