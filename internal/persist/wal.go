package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"vdbscan/internal/geom"
)

// maxWALRecordPoints bounds one record's point count, so a corrupt length
// prefix cannot drive replay into a multi-gigabyte allocation. Appends
// above the bound are split by the caller or rejected; in practice the
// registry appends per-request batches far below it.
const maxWALRecordPoints = 1 << 22

// WAL is an append-only log of point batches staged after the last
// snapshot. Each Append writes one self-checking record —
//
//	count uint32 | count × geom.Point | crc32c(count+points) uint32
//
// in native endianness — and fsyncs, so an acknowledged append survives a
// crash. A record half-written at crash time fails its CRC (or its length
// prefix) and is dropped by Replay as ErrWALPartial along with everything
// after it; records are only ever appended, so the valid prefix is
// exactly the acknowledged history.
type WAL struct {
	mu sync.Mutex
	f  *os.File
}

// OpenWAL opens (creating if absent) the WAL at path for appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: wal: %w", err)
	}
	return &WAL{f: f}, nil
}

// Append logs one batch of points durably (the call returns after fsync).
// Safe for concurrent callers.
func (w *WAL) Append(pts []geom.Point) error {
	if len(pts) == 0 {
		return nil
	}
	if len(pts) > maxWALRecordPoints {
		// Split oversized batches into bounded records; each is
		// independently durable, and replay concatenates them back.
		for start := 0; start < len(pts); start += maxWALRecordPoints {
			end := start + maxWALRecordPoints
			if end > len(pts) {
				end = len(pts)
			}
			if err := w.Append(pts[start:end]); err != nil {
				return err
			}
		}
		return nil
	}
	rec := make([]byte, 4+len(pts)*16+4)
	binary.NativeEndian.PutUint32(rec, uint32(len(pts)))
	copy(rec[4:], ptBytes(pts))
	sum := crc32.Checksum(rec[:4+len(pts)*16], castagnoli)
	binary.NativeEndian.PutUint32(rec[4+len(pts)*16:], sum)

	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("persist: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("persist: wal append: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// ReplayWAL reads every valid record at path and returns the concatenated
// points in append order. A missing file is an empty history (nil, nil).
// A truncated or corrupt tail — the normal state after a crash
// mid-append — returns the valid prefix together with ErrWALPartial
// (which wraps ErrSnapshotCorrupt); the caller keeps the prefix and
// truncates or deletes the file. Never panics on hostile input.
func ReplayWAL(path string) ([]geom.Point, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: wal replay: %w", err)
	}
	defer f.Close()

	var out []geom.Point
	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return out, nil // clean end
			}
			return out, fmt.Errorf("%w: record header: %v", ErrWALPartial, err)
		}
		count := binary.NativeEndian.Uint32(hdr[:])
		if count == 0 || count > maxWALRecordPoints {
			return out, fmt.Errorf("%w: record claims %d points", ErrWALPartial, count)
		}
		body := make([]byte, int(count)*16+4)
		if _, err := io.ReadFull(r, body); err != nil {
			return out, fmt.Errorf("%w: record body: %v", ErrWALPartial, err)
		}
		sum := crc32.Update(crc32.Checksum(hdr[:], castagnoli), castagnoli, body[:len(body)-4])
		if stored := binary.NativeEndian.Uint32(body[len(body)-4:]); stored != sum {
			return out, fmt.Errorf("%w: record checksum mismatch", ErrWALPartial)
		}
		out = append(out, bytesPts(body[:len(body)-4])...)
	}
}
