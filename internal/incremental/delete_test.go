package incremental

import (
	"math/rand"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
)

// liveEquivalent compares the incremental clustering restricted to live
// points against batch DBSCAN over the same live points.
func liveEquivalent(t *testing.T, c *Clusterer, pts []geom.Point, dead map[int]bool) {
	t.Helper()
	var live []geom.Point
	var liveIdx []int
	for i, p := range pts {
		if !dead[i] {
			live = append(live, p)
			liveIdx = append(liveIdx, i)
		}
	}
	want, err := dbscan.RunBruteForce(live, c.Params(), nil)
	if err != nil {
		t.Fatal(err)
	}
	full := c.Labels()
	got := cluster.NewResult(len(live))
	remap := map[int32]int32{}
	var next int32
	for li, oi := range liveIdx {
		l := full.Labels[oi]
		if l <= 0 {
			got.Labels[li] = cluster.Noise
			continue
		}
		id, ok := remap[l]
		if !ok {
			next++
			id = next
			remap[l] = id
		}
		got.Labels[li] = id
	}
	got.NumClusters = int(next)
	if got.NumClusters != want.NumClusters {
		t.Fatalf("live clusters: incremental %d, batch %d", got.NumClusters, want.NumClusters)
	}
	if got.NumNoise() != want.NumNoise() {
		t.Fatalf("live noise: incremental %d, batch %d", got.NumNoise(), want.NumNoise())
	}
	if d := cluster.DisagreementCount(got, want); d > len(live)/100 {
		t.Fatalf("disagreements = %d of %d", d, len(live))
	}
}

func TestDeleteValidation(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 3}, nil)
	if err := c.Delete(0); err == nil {
		t.Error("delete from empty accepted")
	}
	c.Insert(geom.Point{X: 1, Y: 1})
	if err := c.Delete(5); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := c.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(0); err == nil {
		t.Error("double delete accepted")
	}
	if c.LiveLen() != 0 || c.Len() != 1 {
		t.Errorf("live=%d len=%d", c.LiveLen(), c.Len())
	}
}

func TestDeleteNoisePointIsLocal(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 3}, nil)
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.25, Y: 0.4}, // cluster
		{X: 50, Y: 50}, // noise
	}
	c.InsertBatch(pts)
	if err := c.Delete(3); err != nil {
		t.Fatal(err)
	}
	res := c.Labels()
	if res.NumClusters != 1 {
		t.Fatalf("after noise delete: %v", res)
	}
	liveEquivalent(t, c, pts, map[int]bool{3: true})
}

func TestDeleteDissolvesCluster(t *testing.T) {
	// A minimal cluster (3 points, minpts 3): deleting any member demotes
	// the cores and the remnants become noise.
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 3}, nil)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.25, Y: 0.4}}
	c.InsertBatch(pts)
	if res := c.Labels(); res.NumClusters != 1 {
		t.Fatalf("setup: %v", res)
	}
	if err := c.Delete(1); err != nil {
		t.Fatal(err)
	}
	res := c.Labels()
	if res.NumClusters != 0 {
		t.Fatalf("after delete: %v", res)
	}
	liveEquivalent(t, c, pts, map[int]bool{1: true})
}

func TestDeleteSplitsCluster(t *testing.T) {
	// Two triads joined by a bridge core: deleting the bridge splits the
	// cluster into two.
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 3}, nil)
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.25, Y: 0.4},
		{X: 2.4, Y: 0}, {X: 2.9, Y: 0}, {X: 2.65, Y: 0.4},
		{X: 1.45, Y: 0}, // bridge
	}
	c.InsertBatch(pts)
	if res := c.Labels(); res.NumClusters != 1 {
		t.Fatalf("setup: %v", res)
	}
	if err := c.Delete(6); err != nil {
		t.Fatal(err)
	}
	res := c.Labels()
	if res.NumClusters != 2 {
		t.Fatalf("split expected 2 clusters: %v", res)
	}
	liveEquivalent(t, c, pts, map[int]bool{6: true})
}

func TestDeleteInsertChurnMatchesBatch(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	p := dbscan.Params{Eps: 1.2, MinPts: 4}
	c, _ := New(p, nil)
	var pts []geom.Point
	dead := map[int]bool{}
	centers := []geom.Point{{X: 5, Y: 5}, {X: 14, Y: 6}, {X: 9, Y: 14}}
	for step := 0; step < 300; step++ {
		if step > 40 && rnd.Float64() < 0.3 {
			// Delete a random live point.
			for {
				i := rnd.Intn(len(pts))
				if !dead[i] {
					if err := c.Delete(i); err != nil {
						t.Fatal(err)
					}
					dead[i] = true
					break
				}
			}
		} else {
			var pt geom.Point
			if rnd.Float64() < 0.8 {
				ctr := centers[rnd.Intn(len(centers))]
				pt = geom.Point{X: ctr.X + rnd.NormFloat64(), Y: ctr.Y + rnd.NormFloat64()}
			} else {
				pt = geom.Point{X: rnd.Float64() * 20, Y: rnd.Float64() * 20}
			}
			pts = append(pts, pt)
			c.Insert(pt)
		}
		if (step+1)%50 == 0 {
			liveEquivalent(t, c, pts, dead)
		}
	}
	liveEquivalent(t, c, pts, dead)
}

func TestDeleteEverything(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 3}, nil)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.25, Y: 0.4}, {X: 0.5, Y: 0.4}}
	c.InsertBatch(pts)
	for i := range pts {
		if err := c.Delete(i); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	res := c.Labels()
	if res.NumClusters != 0 || c.LiveLen() != 0 {
		t.Fatalf("after draining: %v live=%d", res, c.LiveLen())
	}
	// The structure remains usable.
	c.InsertBatch(pts)
	if res := c.Labels(); res.NumClusters != 1 {
		t.Fatalf("reuse after drain: %v", res)
	}
}
