package incremental

import (
	"math/rand"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(dbscan.Params{Eps: 0, MinPts: 4}, nil); err == nil {
		t.Error("bad params accepted")
	}
	c, err := New(dbscan.Params{Eps: 1, MinPts: 3}, nil)
	if err != nil || c.Len() != 0 {
		t.Fatalf("New: %v %v", c, err)
	}
	if c.String() == "" {
		t.Error("String empty")
	}
	if c.Params().MinPts != 3 {
		t.Error("Params lost")
	}
}

// batchEquivalent asserts the incremental labels match batch DBSCAN over
// the same points, up to border-point ties.
func batchEquivalent(t *testing.T, c *Clusterer, pts []geom.Point) {
	t.Helper()
	got := c.Labels()
	want, err := dbscan.RunBruteForce(pts, c.Params(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClusters != want.NumClusters {
		t.Fatalf("after %d inserts: incremental %d clusters, batch %d",
			len(pts), got.NumClusters, want.NumClusters)
	}
	if got.NumNoise() != want.NumNoise() {
		// Border ties can flip noise<->border only when a point is within
		// eps of a core in one run but not the other — impossible here, so
		// noise counts must agree exactly.
		t.Fatalf("after %d inserts: incremental %d noise, batch %d",
			len(pts), got.NumNoise(), want.NumNoise())
	}
	if d := cluster.DisagreementCount(got, want); d > len(pts)/100 {
		t.Fatalf("after %d inserts: %d disagreements", len(pts), d)
	}
}

func TestClusterCreation(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 3}, nil)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}}
	c.InsertBatch(pts)
	res := c.Labels()
	if res.NumClusters != 0 || res.NumNoise() != 2 {
		t.Fatalf("pre-creation: %v", res)
	}
	// Third point promotes all three into one new cluster.
	pts = append(pts, geom.Point{X: 0.25, Y: 0.4})
	c.Insert(pts[2])
	res = c.Labels()
	if res.NumClusters != 1 || res.NumNoise() != 0 {
		t.Fatalf("creation: %v", res)
	}
	batchEquivalent(t, c, pts)
}

func TestAbsorption(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 3}, nil)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.25, Y: 0.4}, {X: 1.2, Y: 0}}
	c.InsertBatch(pts)
	res := c.Labels()
	if res.NumClusters != 1 {
		t.Fatalf("absorption: %v", res)
	}
	if res.Labels[3] == cluster.Noise {
		t.Error("new point near cluster should be absorbed")
	}
	batchEquivalent(t, c, pts)
}

func TestMergeTwoClusters(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 3}, nil)
	// Two triads 2.4 apart (disconnected at eps=1).
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.25, Y: 0.4},
		{X: 2.4, Y: 0}, {X: 2.9, Y: 0}, {X: 2.65, Y: 0.4},
	}
	c.InsertBatch(pts)
	if res := c.Labels(); res.NumClusters != 2 {
		t.Fatalf("setup: %v", res)
	}
	// A bridging point within eps of both triads' edges becomes core and
	// merges them.
	bridge := geom.Point{X: 1.45, Y: 0}
	pts = append(pts, bridge)
	c.Insert(bridge)
	res := c.Labels()
	if res.NumClusters != 1 {
		t.Fatalf("merge: %v", res)
	}
	batchEquivalent(t, c, pts)
}

func TestBorderDoesNotMerge(t *testing.T) {
	// A non-core point within eps of two clusters is a border tie, not a
	// merge (minpts high enough that the bridge is not core).
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 4}, nil)
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.25, Y: 0.4}, {X: 0.25, Y: -0.4},
		{X: 3, Y: 0}, {X: 3.5, Y: 0}, {X: 3.25, Y: 0.4}, {X: 3.25, Y: -0.4},
	}
	c.InsertBatch(pts)
	if res := c.Labels(); res.NumClusters != 2 {
		t.Fatalf("setup: %v", res)
	}
	// Bridge at 1.75: within eps=1 of x=0.5+... actually distance to
	// nearest member of each cluster: 1.25 > eps, so place at 1.45 and
	// 2.05? Use two noise points that stay non-core.
	bridge := geom.Point{X: 1.75, Y: 0}
	pts = append(pts, bridge)
	c.Insert(bridge)
	res := c.Labels()
	if res.NumClusters != 2 {
		t.Fatalf("border bridge merged clusters: %v", res)
	}
	batchEquivalent(t, c, pts)
}

func TestIncrementalMatchesBatchRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	p := dbscan.Params{Eps: 1.2, MinPts: 4}
	c, _ := New(p, nil)
	var pts []geom.Point
	centers := []geom.Point{{X: 5, Y: 5}, {X: 15, Y: 5}, {X: 10, Y: 15}}
	for i := 0; i < 400; i++ {
		var pt geom.Point
		if rnd.Float64() < 0.8 {
			ctr := centers[rnd.Intn(len(centers))]
			pt = geom.Point{X: ctr.X + rnd.NormFloat64(), Y: ctr.Y + rnd.NormFloat64()}
		} else {
			pt = geom.Point{X: rnd.Float64() * 20, Y: rnd.Float64() * 20}
		}
		pts = append(pts, pt)
		c.Insert(pt)
		if (i+1)%50 == 0 {
			batchEquivalent(t, c, pts)
		}
	}
}

func TestIncrementalAdversarialOrder(t *testing.T) {
	// Insert a dense grid in an order that maximizes late merges: odd
	// columns first, then even columns bridging them.
	p := dbscan.Params{Eps: 1.1, MinPts: 3}
	c, _ := New(p, nil)
	var pts []geom.Point
	add := func(x, y float64) {
		pt := geom.Point{X: x, Y: y}
		pts = append(pts, pt)
		c.Insert(pt)
	}
	for x := 0; x < 10; x += 2 {
		for y := 0; y < 5; y++ {
			add(float64(x), float64(y))
		}
	}
	batchEquivalent(t, c, pts)
	for x := 1; x < 10; x += 2 {
		for y := 0; y < 5; y++ {
			add(float64(x), float64(y))
		}
	}
	res := c.Labels()
	if res.NumClusters != 1 {
		t.Fatalf("grid should fuse into one cluster, got %d", res.NumClusters)
	}
	batchEquivalent(t, c, pts)
}

func TestManyClustersGrowsDSU(t *testing.T) {
	// More clusters than the initial DSU capacity (64) forces growth.
	p := dbscan.Params{Eps: 0.5, MinPts: 3}
	c, _ := New(p, nil)
	var pts []geom.Point
	for k := 0; k < 100; k++ {
		cx, cy := float64(k%10)*10, float64(k/10)*10
		tri := []geom.Point{{X: cx, Y: cy}, {X: cx + 0.3, Y: cy}, {X: cx, Y: cy + 0.3}}
		pts = append(pts, tri...)
		c.InsertBatch(tri)
	}
	res := c.Labels()
	if res.NumClusters != 100 {
		t.Fatalf("clusters = %d, want 100", res.NumClusters)
	}
	batchEquivalent(t, c, pts)
}

func TestDuplicatePointsStream(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 0.5, MinPts: 4}, nil)
	var pts []geom.Point
	for i := 0; i < 10; i++ {
		pt := geom.Point{X: 1, Y: 1}
		pts = append(pts, pt)
		c.Insert(pt)
	}
	res := c.Labels()
	if res.NumClusters != 1 || res.NumNoise() != 0 {
		t.Fatalf("duplicates: %v", res)
	}
	batchEquivalent(t, c, pts)
}

func TestMetricsAccounting(t *testing.T) {
	var m metrics.Counters
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 3}, &m)
	c.Insert(geom.Point{X: 0, Y: 0})
	if m.Snapshot().NeighborSearches == 0 {
		t.Error("no searches recorded")
	}
}
