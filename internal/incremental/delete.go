package incremental

import (
	"fmt"

	"vdbscan/internal/cluster"
)

// Delete removes the i-th inserted point (0-based insertion order) and
// repairs the clustering. Deletion is the hard direction of
// IncrementalDBSCAN: removing a point can demote cores, orphan border
// points, and *split* a cluster into disconnected parts. The repair
// strategy is local re-clustering:
//
//  1. remove the point from the tree and decrement its neighbors' counts,
//     demoting cores that fall under minpts;
//  2. collect the affected clusters — those owning the deleted point, any
//     demoted core, or any point in a demoted core's neighborhood;
//  3. clear the labels of all their live points and re-run a DBSCAN
//     expansion restricted to that set (core flags are already
//     up to date, so only connectivity is recomputed).
//
// Deletion never merges clusters (edges are only removed), so restricting
// the re-clustering to the affected clusters is exact. The cost is
// O(affected cluster sizes), not O(|D|) — except for one O(|D|) label scan.
//
// Labels() keeps one entry per insertion; deleted points report Noise.
func (c *Clusterer) Delete(i int) error {
	err := c.delete(i)
	c.maybeRefreeze()
	return err
}

func (c *Clusterer) delete(i int) error {
	if i < 0 || i >= c.Len() {
		return fmt.Errorf("incremental: index %d out of range [0,%d)", i, c.Len())
	}
	if c.deleted(i) {
		return fmt.Errorf("incremental: point %d already deleted", i)
	}
	p := c.tree.Points()[i]
	// Delete by index, not value: with duplicate coordinates a value
	// delete could remove a live twin's entry and desynchronize the
	// per-index count/core bookkeeping.
	found, err := c.tree.DeleteIndex(p, int32(i))
	if err != nil {
		return fmt.Errorf("incremental: %w", err)
	}
	if !found {
		return fmt.Errorf("incremental: point %d not in tree", i)
	}
	c.recordDelete(int32(i))
	c.markDeleted(i)

	// Neighbor counts drop; collect demotions.
	n := c.neighbors(p, nil) // post-delete: excludes i
	var demoted []int32
	for _, q := range n {
		c.counts[q]--
		if c.core[q] && int(c.counts[q]) < c.params.MinPts {
			c.core[q] = false
			demoted = append(demoted, q)
		}
	}
	c.counts[i] = 0
	wasCore := c.core[i]
	c.core[i] = false
	oldLabel := c.resolve(c.rawLabels[i])
	c.rawLabels[i] = cluster.Noise

	// Fast path: the deleted point was noise/border and nothing demoted —
	// no reachability changed for anyone else.
	if !wasCore && len(demoted) == 0 {
		return nil
	}

	// Affected clusters: the deleted point's, plus every cluster touching
	// a demoted core's neighborhood (their border points may lose support).
	// There are almost always 1–3 of them, so a small slice with a linear
	// membership scan beats a map — the scan below tests every live point.
	var affected []int32
	addAffected := func(l int32) {
		for _, a := range affected {
			if a == l {
				return
			}
		}
		affected = append(affected, l)
	}
	if oldLabel > 0 {
		addAffected(oldLabel)
	}
	var scratch []int32
	for _, d := range demoted {
		if l := c.resolve(c.rawLabels[d]); l > 0 {
			addAffected(l)
		}
		scratch = c.neighbors(c.tree.Points()[d], scratch[:0])
		for _, k := range scratch {
			if l := c.resolve(c.rawLabels[k]); l > 0 {
				addAffected(l)
			}
		}
	}
	if len(affected) == 0 {
		return nil
	}
	isAffected := func(l int32) bool {
		for _, a := range affected {
			if a == l {
				return true
			}
		}
		return false
	}

	// Collect live members of affected clusters and clear their labels.
	var members []int32
	for j := range c.rawLabels {
		if c.deleted(j) {
			continue
		}
		if l := c.resolve(c.rawLabels[j]); l > 0 && isAffected(l) {
			members = append(members, int32(j))
			c.rawLabels[j] = cluster.Unclassified
		}
	}

	// Local DBSCAN over the affected set. Core flags are current; only
	// connectivity must be rebuilt. Each connected core component gets a
	// fresh cluster id; border members attach to any adjacent core.
	// Membership and visit marks live in epoch-stamped scratch arrays on
	// the Clusterer (see markGen) — the repair path runs per delete, and
	// allocating two maps per run dominated its profile.
	c.markGen++
	gen := c.markGen
	for len(c.markIn) < c.Len() {
		c.markIn = append(c.markIn, 0)
		c.markVis = append(c.markVis, 0)
	}
	for _, j := range members {
		c.markIn[j] = gen
	}
	for _, j := range members {
		if c.markVis[j] == gen || !c.core[j] {
			continue
		}
		id := c.newCluster()
		queue := []int32{j}
		c.markVis[j] = gen
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			c.rawLabels[u] = id
			scratch = c.neighbors(c.tree.Points()[u], scratch[:0])
			for _, k := range scratch {
				if c.markIn[k] != gen {
					continue // other clusters are unaffected by deletions
				}
				if c.core[k] && c.markVis[k] != gen {
					c.markVis[k] = gen
					queue = append(queue, k)
				} else if !c.core[k] && c.rawLabels[k] == cluster.Unclassified {
					c.rawLabels[k] = id // border attachment
				}
			}
		}
	}
	// Members not reached by any affected core: border of an unaffected
	// adjacent core, or noise.
	for _, j := range members {
		if c.rawLabels[j] != cluster.Unclassified {
			continue
		}
		label := cluster.Noise
		scratch = c.neighbors(c.tree.Points()[j], scratch[:0])
		for _, k := range scratch {
			if k != j && c.core[k] && c.rawLabels[k] > 0 {
				label = c.resolve(c.rawLabels[k])
				break
			}
		}
		c.rawLabels[j] = label
	}
	return nil
}

// deleted reports whether insertion i has been removed.
func (c *Clusterer) deleted(i int) bool {
	return i < len(c.dead) && c.dead[i]
}

// markDeleted records the removal.
func (c *Clusterer) markDeleted(i int) {
	for len(c.dead) < c.Len() {
		c.dead = append(c.dead, false)
	}
	c.dead[i] = true
	c.liveCount--
}
