package incremental

import (
	"testing"

	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/tec"
)

// BenchmarkWindow measures sliding-window streaming throughput — the
// EXPERIMENTS.md "streaming churn" row. Each iteration streams 8 TEC
// batches of 1500 observations through the clusterer, expiring the
// oldest insertions to hold a 6000-point live window, so batches 4+ are
// the delete-heavy steady state.
//
// Pointer is the pre-epoch configuration (every ε-search on the dynamic
// pointer tree); Epoch is the overlay+refreeze path. On a single CPU the
// background compactions compete with the mutator, so Epoch ≈ Pointer
// there; with a spare core the compactions are free and the flat scans
// win outright.

func windowBatch(b *testing.B, batch int) []geom.Point {
	b.Helper()
	ds, err := tec.Simulate(tec.Config{
		N: 1500, Seed: 99, Time: float64(batch) * 0.25, Name: "bench",
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds.Points
}

func benchWindow(b *testing.B, o Options) {
	params := dbscan.Params{Eps: 2.5, MinPts: 8}
	batches := make([][]geom.Point, 8)
	for i := range batches {
		batches[i] = windowBatch(b, i)
	}
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		c, err := NewWithOptions(params, nil, o)
		if err != nil {
			b.Fatal(err)
		}
		oldest := 0
		for _, pts := range batches {
			c.InsertBatch(pts)
			for c.LiveLen() > 6000 {
				if err := c.Delete(oldest); err != nil {
					b.Fatal(err)
				}
				oldest++
			}
		}
		if st := c.RefreezeStats(); !o.DisableFlat && st.StaleFallbacks != 0 {
			b.Fatalf("stale fallbacks during benchmark churn: %+v", st)
		}
	}
}

func BenchmarkWindowPointer(b *testing.B) { benchWindow(b, Options{DisableFlat: true}) }
func BenchmarkWindowEpoch(b *testing.B)   { benchWindow(b, Options{RefreezeThreshold: 256}) }
