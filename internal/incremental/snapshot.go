package incremental

import (
	"vdbscan/internal/obs"
	"vdbscan/internal/rtree"
)

// This file is the epoch-based (generational) index-maintenance layer of
// the incremental clusterer. The PR-2 flat index made every ε-search a
// zero-allocation scan over frozen struct-of-arrays — but only for a
// static dataset. Streaming inserts and deletes mutate the dynamic
// pointer tree, and before this layer existed they silently bypassed the
// flat fast path entirely.
//
// The design keeps one immutable rtree.Flat snapshot hot while mutations
// stage in a small rtree.Overlay delta:
//
//	search(q) = flat results − overlay deletions + overlay insertions
//
// Every tree mutation bumps the tree's generation; the snapshot records
// the generation it froze at. The identity
//
//	flat.Generation() + pending.Muts() + ov.Muts() == tree.Generation()
//
// therefore holds exactly when the overlays are a complete delta. If it
// ever fails (an out-of-band tree mutation), the snapshot is stale and
// searches fall back to the pointer tree — slower, never wrong.
//
// Once the active overlay crosses a size/ratio threshold, the clusterer
// re-freezes in the background: it takes a structural clone of the tree
// (cheap, and immune to further mutations), compacts the clone on a
// separate goroutine, and keeps serving from the old snapshot plus BOTH
// overlay segments — `pending` (mutations the clone already covers) and
// the fresh active overlay — until the new Flat arrives. Installing it
// is a copy-on-write swap on the owning goroutine between searches, so
// in-flight results always came from one consistent epoch; the old
// snapshot and the pending segment are retired together.

// DefaultRefreezeThreshold is the overlay mutation count that triggers a
// background re-freeze when Options.RefreezeThreshold is zero. 256 keeps
// the brute-force overlay scan per ε-search in the same cost range as
// touching a few extra tree leaves, while amortizing the O(n) compaction
// over hundreds of mutations.
const DefaultRefreezeThreshold = 256

// refreezeRatioDiv caps re-freeze frequency on large live sets: a
// re-freeze also requires the overlay to reach liveSize/refreezeRatioDiv
// mutations, so compaction work stays amortized at O(refreezeRatioDiv)
// points per mutation.
const refreezeRatioDiv = 64

// Options configures a Clusterer beyond its DBSCAN parameters.
type Options struct {
	// RefreezeThreshold is the overlay mutation count that triggers a
	// background re-freeze (and the live size that triggers the first
	// freeze). 0 selects DefaultRefreezeThreshold; on snapshots larger
	// than 64× the threshold, the effective trigger grows to
	// liveSize/64 so compactions stay amortized.
	RefreezeThreshold int
	// DisableFlat keeps every ε-search on the dynamic pointer tree (the
	// pre-epoch behavior) — the ablation path and escape hatch.
	DisableFlat bool
	// Rec, when non-nil, records refreeze spans (obs.PhaseRefreeze with
	// variant -1) into the owning goroutine's trace ring.
	Rec *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.RefreezeThreshold <= 0 {
		o.RefreezeThreshold = DefaultRefreezeThreshold
	}
	return o
}

// epochState is the generational snapshot a Clusterer serves from.
type epochState struct {
	// flat is the frozen snapshot (nil until the first freeze).
	flat *rtree.Flat
	// ov stages mutations since the last clone; pending stages the
	// segment between the previous freeze and the in-flight clone (empty
	// when no re-freeze is running). Searches merge both.
	ov, pending rtree.Overlay
}

// RefreezeStats reports the state of the epoch maintenance machinery.
type RefreezeStats struct {
	// Refreezes counts installed snapshots, including the first freeze.
	Refreezes int
	// FrozenPoints is the live point count covered by the current
	// snapshot (0 before the first freeze).
	FrozenPoints int
	// OverlayAdded and OverlayDeleted are the staged net deltas not yet
	// folded into a snapshot (across both overlay segments).
	OverlayAdded, OverlayDeleted int
	// RefreezeInFlight reports a background compaction in progress.
	RefreezeInFlight bool
	// StaleFallbacks counts ε-searches that found the snapshot's
	// generation unaccounted for and fell back to the pointer tree. It
	// stays 0 unless something mutates the tree behind the overlay's
	// back — the guard that turns "wrong neighbors" into "slow search".
	StaleFallbacks int64
	// Generation is the dynamic tree's mutation counter.
	Generation uint64
}

// RefreezeStats snapshots the epoch machinery's counters.
func (c *Clusterer) RefreezeStats() RefreezeStats {
	return RefreezeStats{
		Refreezes:        c.refreezes,
		FrozenPoints:     c.frozenLen(),
		OverlayAdded:     c.snap.ov.NumAdded() + c.snap.pending.NumAdded(),
		OverlayDeleted:   c.snap.ov.NumDeleted() + c.snap.pending.NumDeleted(),
		RefreezeInFlight: c.refreezing,
		StaleFallbacks:   c.staleFalls,
		Generation:       c.tree.Generation(),
	}
}

func (c *Clusterer) frozenLen() int {
	if c.snap.flat == nil {
		return 0
	}
	return c.snap.flat.Len()
}

// epochActive reports whether mutations must be staged in the overlay:
// from the moment a freeze is in flight (the clone no longer sees new
// mutations) or installed.
func (c *Clusterer) epochActive() bool {
	return c.snap.flat != nil || c.refreezing
}

// recordInsert stages a live insertion in the active overlay.
func (c *Clusterer) recordInsert(idx int32) {
	if c.epochActive() {
		c.snap.ov.RecordInsert(idx)
	}
}

// recordDelete stages a removal in the active overlay.
func (c *Clusterer) recordDelete(idx int32) {
	if c.epochActive() {
		c.snap.ov.RecordDelete(idx)
	}
}

// maybeRefreeze kicks off a background re-freeze when the active overlay
// has crossed the size/ratio threshold (or the tree has grown enough for
// its first freeze). At most one compaction runs at a time.
//
// The overlay is hard-bounded at twice the trigger: if it outgrows that
// while a compaction is still in flight — on a single-CPU machine a
// tight mutation loop can starve the background goroutine for an entire
// scheduler quantum — the owner blocks for the install (the blocking
// receive yields the CPU to the compactor) and immediately starts the
// next epoch. Without the backstop the overlay grows without bound and
// every ε-search pays a brute-force scan over it, which is exactly the
// cost the flat path exists to avoid.
func (c *Clusterer) maybeRefreeze() {
	if c.opts.DisableFlat {
		return
	}
	if c.refreezing {
		if c.snap.ov.Muts() < 2*uint64(c.refreezeNeed()) {
			return
		}
		c.pollRefreeze(true)
	}
	if c.snap.flat == nil {
		if c.tree.Len() < c.opts.RefreezeThreshold {
			return
		}
	} else if c.snap.ov.Muts() < uint64(c.refreezeNeed()) {
		return
	}
	c.startRefreeze()
}

// refreezeNeed is the active-overlay mutation count that triggers the
// next re-freeze: the configured threshold, scaled up on large frozen
// sets so compaction work stays amortized.
func (c *Clusterer) refreezeNeed() int {
	need := c.opts.RefreezeThreshold
	if c.snap.flat != nil {
		if r := c.snap.flat.Len() / refreezeRatioDiv; r > need {
			need = r
		}
	}
	return need
}

// startRefreeze clones the tree structure, retires the active overlay
// into the pending segment (the clone covers exactly those mutations),
// and compacts the clone on a background goroutine. The send always
// succeeds immediately (the channel holds one result and at most one
// compaction is in flight), so an abandoned Clusterer never leaks the
// goroutine.
func (c *Clusterer) startRefreeze() {
	clone := c.tree.Snapshot()
	c.snap.pending = c.snap.ov
	c.snap.ov = rtree.Overlay{}
	c.refreezing = true
	c.opts.Rec.PhaseBegin(-1, obs.PhaseRefreeze)
	ch := c.refreezeCh
	go func() { ch <- clone.Compact() }()
}

// pollRefreeze installs a finished background compaction, if any. All
// searches call it first, so the swap happens between searches on the
// owning goroutine — a copy-on-write hand-off with no locking on the
// search hot path. block waits for an in-flight compaction to finish.
func (c *Clusterer) pollRefreeze(block bool) {
	if !c.refreezing {
		return
	}
	if block {
		c.install(<-c.refreezeCh)
		return
	}
	select {
	case f := <-c.refreezeCh:
		c.install(f)
	default:
	}
}

// install swaps in the fresh snapshot and retires the overlay segment it
// covers. The old Flat is simply dropped: it is immutable, so any search
// result already produced from it (plus the overlays) remains a correct
// answer for its epoch.
func (c *Clusterer) install(f *rtree.Flat) {
	c.snap.flat = f
	c.snap.pending = rtree.Overlay{}
	c.refreezing = false
	c.refreezes++
	c.opts.Rec.PhaseEnd(-1, obs.PhaseRefreeze)
}

// FlushRefreeze blocks until any in-flight background re-freeze has been
// installed. Tests and benchmarks use it to pin the epoch state; normal
// callers never need it (searches install finished snapshots
// opportunistically).
func (c *Clusterer) FlushRefreeze() {
	c.pollRefreeze(true)
}
