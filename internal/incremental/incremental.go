// Package incremental implements insertion-incremental DBSCAN in the
// spirit of IncrementalDBSCAN (Ester, Kriegel, Sander, Wimmer, Xu; VLDB
// 1998): maintaining a DBSCAN clustering under a stream of point
// insertions without re-clustering from scratch.
//
// The paper's early-warning motivation makes this the natural companion to
// VariantDBSCAN: monitoring ingests new TEC observations continuously, and
// re-clustering a whole frame for every arriving batch wastes exactly the
// work reuse is meant to save.
//
// Mechanics per insertion of p:
//
//  1. p's ε-neighborhood N is fetched from a dynamic R-tree; every q ∈ N
//     gains one neighbor, which can promote q to a core point.
//  2. The *seed set* is p (if core) plus the just-promoted cores. Cluster
//     labels of points density-reachable from the seed set are updated by a
//     local expansion:
//     - seeds adjacent to existing clusters merge them (cluster IDs are
//     tracked in a union-find, so merging is O(α));
//     - otherwise a new cluster forms;
//     - absorbed noise/unclassified points get the cluster's label.
//  3. If no core appears in N, p is noise (or a border point of an
//     adjacent core's cluster).
//
// Labels returns a materialized cluster.Result equivalent (up to DBSCAN's
// usual border-point ambiguity) to running batch DBSCAN on the points
// inserted so far — the invariant the tests enforce.
package incremental

import (
	"fmt"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
	"vdbscan/internal/rtree"
	"vdbscan/internal/unionfind"
)

// Clusterer maintains a DBSCAN clustering under insertions.
type Clusterer struct {
	params dbscan.Params
	tree   *rtree.Tree
	m      *metrics.Counters
	opts   Options

	// snap is the generational flat snapshot + overlay pair every
	// ε-search routes through once the first freeze lands (snapshot.go);
	// the pointer tree remains the mutation path and the stale fallback.
	snap       epochState
	refreezing bool
	refreezeCh chan *rtree.Flat
	refreezes  int
	staleFalls int64

	// counts[i] = |N_ε(i)| including i itself.
	counts []int32
	core   []bool
	// rawLabels hold pre-merge cluster ids; the DSU resolves merges.
	rawLabels []int32
	dsu       *unionfind.DSU // over cluster ids
	nextID    int32
	dsuCap    int32

	// dead marks removed insertions; liveCount = Len() - removed.
	dead      []bool
	liveCount int

	// Delete-repair scratch: epoch-stamped membership marks reused across
	// deletes. markIn[i]/markVis[i] == markGen means "in the affected set" /
	// "visited by the repair BFS" for the current delete — profiling showed
	// per-delete maps for those two sets dominating the repair hot path.
	markIn  []int32
	markVis []int32
	markGen int32
}

// New returns an empty incremental clusterer with default Options.
// m may be nil.
func New(p dbscan.Params, m *metrics.Counters) (*Clusterer, error) {
	return NewWithOptions(p, m, Options{})
}

// NewWithOptions is New with epoch-maintenance options.
func NewWithOptions(p dbscan.Params, m *metrics.Counters, o Options) (*Clusterer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Clusterer{
		params:     p,
		tree:       rtree.New(rtree.Options{}),
		m:          m,
		opts:       o.withDefaults(),
		refreezeCh: make(chan *rtree.Flat, 1),
		dsu:        unionfind.NewDSU(64),
		dsuCap:     64,
	}, nil
}

// Len returns the number of insertions (including deleted points).
func (c *Clusterer) Len() int { return len(c.counts) }

// LiveLen returns the number of points currently in the clustering.
func (c *Clusterer) LiveLen() int { return c.liveCount }

// Params echoes the clusterer's parameters.
func (c *Clusterer) Params() dbscan.Params { return c.params }

// neighbors returns indices of points within ε of q (including q when
// indexed). The fast path merges the frozen flat snapshot with the
// staged overlay deltas; the dynamic pointer tree serves before the
// first freeze, when flat indexing is disabled, and as the fallback
// whenever the snapshot's generation is not fully accounted for by the
// overlays (a stale snapshot must never answer alone).
func (c *Clusterer) neighbors(q geom.Point, dst []int32) []int32 {
	c.pollRefreeze(false)
	if f := c.snap.flat; f != nil {
		if f.Generation()+c.snap.pending.Muts()+c.snap.ov.Muts() == c.tree.Generation() {
			out, cand, nodes := rtree.EpsSearchOverlay(
				f, c.tree.Points(), q, c.params.Eps, dst,
				&c.snap.pending, &c.snap.ov)
			c.m.AddNeighborSearches(1)
			c.m.AddCandidatesExamined(int64(cand))
			c.m.AddNodesVisited(int64(nodes))
			return out
		}
		c.staleFalls++
	}
	epsSq := c.params.Eps * c.params.Eps
	box := geom.QueryMBB(q, c.params.Eps)
	pts := c.tree.Points()
	candidates := int64(0)
	nodes := c.tree.Search(box, func(lr rtree.LeafRange) {
		end := lr.Start + lr.Count
		for i := lr.Start; i < end; i++ {
			candidates++
			if q.DistSq(pts[i]) <= epsSq {
				dst = append(dst, int32(i))
			}
		}
	})
	c.m.AddNeighborSearches(1)
	c.m.AddCandidatesExamined(candidates)
	c.m.AddNodesVisited(int64(nodes))
	return dst
}

// newCluster allocates a cluster id.
func (c *Clusterer) newCluster() int32 {
	c.nextID++
	if c.nextID >= c.dsuCap {
		// Grow the DSU by rebuilding with the unions replayed implicitly:
		// DSU state is only reachable via Find, so copy roots.
		old := c.dsu
		oldCap := c.dsuCap
		c.dsuCap *= 2
		c.dsu = unionfind.NewDSU(int(c.dsuCap))
		for i := int32(1); i < oldCap; i++ {
			c.dsu.Union(i, old.Find(i))
		}
	}
	return c.nextID
}

// resolve maps a raw label to its post-merge cluster id.
func (c *Clusterer) resolve(raw int32) int32 {
	if raw <= 0 {
		return raw
	}
	return c.dsu.Find(raw)
}

// Insert adds point p and updates the clustering.
func (c *Clusterer) Insert(p geom.Point) {
	c.insert(p)
	// Trigger the epoch check after the clustering update so a re-freeze
	// clone never captures a half-applied insertion.
	c.maybeRefreeze()
}

func (c *Clusterer) insert(p geom.Point) {
	idx := int32(c.Len())
	c.tree.Insert(p)
	c.recordInsert(idx)
	c.counts = append(c.counts, 0)
	c.core = append(c.core, false)
	c.rawLabels = append(c.rawLabels, cluster.Unclassified)

	c.liveCount++

	n := c.neighbors(p, nil) // includes idx itself
	c.counts[idx] = int32(len(n))

	// Every preexisting neighbor gains one neighbor; collect promotions.
	var seeds []int32
	for _, q := range n {
		if q == idx {
			continue
		}
		c.counts[q]++
		if !c.core[q] && int(c.counts[q]) >= c.params.MinPts {
			c.core[q] = true
			seeds = append(seeds, q)
		}
	}
	if int(c.counts[idx]) >= c.params.MinPts {
		c.core[idx] = true
		seeds = append(seeds, idx)
	}

	if len(seeds) == 0 {
		// No new core points. p is a border point if any neighbor is core,
		// otherwise noise.
		label := cluster.Noise
		for _, q := range n {
			if q != idx && c.core[q] && c.rawLabels[q] > 0 {
				label = c.resolve(c.rawLabels[q])
				break
			}
		}
		c.rawLabels[idx] = label
		return
	}

	// The seeds (newly-promoted cores, and p itself when core) are the only
	// points whose reachability changed. Reachability propagates between
	// two seeds only when one lies in the other's ε-neighborhood, so:
	//
	//  1. fetch every seed's neighborhood once;
	//  2. group seeds into connected components (seed adjacency);
	//  3. per group, merge the clusters of all CORE neighbors — a border
	//     point shared with another cluster is a tie, never a merge — or
	//     start a new cluster when no neighbor is clustered;
	//  4. label the group's seeds and absorb their label-less neighbors
	//     (former noise now density-reachable) as border points.
	seedPos := make(map[int32]int, len(seeds))
	for i, s := range seeds {
		seedPos[s] = i
	}
	neighborhoods := make([][]int32, len(seeds))
	for i, s := range seeds {
		neighborhoods[i] = c.neighbors(c.tree.Points()[s], nil)
	}
	groups := unionfind.NewDSU(len(seeds))
	for i, nb := range neighborhoods {
		for _, k := range nb {
			if j, ok := seedPos[k]; ok && j != i {
				groups.Union(int32(i), int32(j))
			}
		}
	}

	// Per group: collect the target cluster (merging as needed).
	targets := map[int32]int32{} // group root -> resolved cluster id
	for i, nb := range neighborhoods {
		root := groups.Find(int32(i))
		target := targets[root]
		for _, k := range nb {
			if !c.core[k] || c.rawLabels[k] <= 0 {
				continue
			}
			kRoot := c.resolve(c.rawLabels[k])
			if target == 0 {
				target = kRoot
			} else if kRoot != target {
				c.dsu.Union(target, kRoot)
				target = c.resolve(target)
			}
		}
		if target != 0 {
			targets[root] = target
		}
	}
	for i := range seeds {
		root := groups.Find(int32(i))
		if targets[root] == 0 {
			targets[root] = c.newCluster()
		}
	}

	// Label seeds and absorb their unlabeled neighbors.
	for i, s := range seeds {
		target := targets[groups.Find(int32(i))]
		c.rawLabels[s] = target
		for _, k := range neighborhoods[i] {
			if c.rawLabels[k] <= 0 {
				c.rawLabels[k] = target
			}
		}
	}
}

// InsertBatch inserts points in order.
func (c *Clusterer) InsertBatch(pts []geom.Point) {
	for _, p := range pts {
		c.Insert(p)
	}
}

// Labels materializes the current clustering with dense cluster IDs
// 1..NumClusters in the insertion order of the points.
func (c *Clusterer) Labels() *cluster.Result {
	res := cluster.NewResult(c.Len())
	remap := map[int32]int32{}
	var next int32
	for i, raw := range c.rawLabels {
		switch {
		case raw > 0:
			root := c.resolve(raw)
			id, ok := remap[root]
			if !ok {
				next++
				id = next
				remap[root] = id
			}
			res.Labels[i] = id
		default:
			res.Labels[i] = cluster.Noise
		}
	}
	res.NumClusters = int(next)
	return res
}

// String implements fmt.Stringer.
func (c *Clusterer) String() string {
	return fmt.Sprintf("incremental{points=%d params=%v}", c.Len(), c.params)
}
