package incremental

import (
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/tec"
)

// TestSlidingWindowTEC is the regression test for the duplicate-coordinate
// deletion bug: tec.Simulate reuses receiver geometry across epochs, so the
// stream contains exact duplicate points; deleting by value instead of by
// index desynchronized the tree from the count/core bookkeeping and
// fragmented the clustering (hundreds of phantom clusters).
func TestSlidingWindowTEC(t *testing.T) {
	p := dbscan.Params{Eps: 2.5, MinPts: 8}
	c, _ := New(p, nil)
	var history []geom.Point
	oldest := 0
	for batch := 0; batch < 4; batch++ {
		ds, err := tec.Simulate(tec.Config{N: 1000, Seed: 99, Time: float64(batch) * 0.25})
		if err != nil {
			t.Fatal(err)
		}
		c.InsertBatch(ds.Points)
		history = append(history, ds.Points...)
		for c.LiveLen() > 2000 {
			if err := c.Delete(oldest); err != nil {
				t.Fatal(err)
			}
			oldest++
		}
		live := history[oldest:]
		want, _ := dbscan.RunBruteForce(live, p, nil)
		full := c.Labels()
		got := cluster.NewResult(len(live))
		remap := map[int32]int32{}
		var next int32
		for li := range live {
			l := full.Labels[oldest+li]
			if l <= 0 {
				got.Labels[li] = cluster.Noise
				continue
			}
			id, ok := remap[l]
			if !ok {
				next++
				id = next
				remap[l] = id
			}
			got.Labels[li] = id
		}
		got.NumClusters = int(next)
		if got.NumClusters != want.NumClusters {
			t.Fatalf("batch %d: clusters %d vs batch %d", batch, got.NumClusters, want.NumClusters)
		}
		if got.NumNoise() != want.NumNoise() {
			t.Fatalf("batch %d: noise %d vs batch %d", batch, got.NumNoise(), want.NumNoise())
		}
		if d := cluster.DisagreementCount(got, want); d > len(live)/100 {
			t.Fatalf("batch %d: disagreements = %d", batch, d)
		}
	}
}
