package incremental

import (
	"fmt"
	"math/rand"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
)

// This file is the differential correctness harness for the streaming
// path: after EVERY delete (and periodically between insert batches) the
// incremental clustering, restricted to live points, must be equivalent
// to a from-scratch DBSCAN run over the same points.
//
// "Equivalent" cannot mean label-for-label identical: DBSCAN border
// points within ε of cores from two clusters legally attach to either,
// depending on expansion order, and incremental maintenance explores in
// a different order than a batch run. The checker therefore enforces the
// strongest order-independent equivalence:
//
//  1. identical noise sets (noise is order-independent: no core within ε);
//  2. identical core sets (recomputed by brute force, trusting neither side);
//  3. a bijection between cluster IDs restricted to core points — the
//     core partition is order-independent, so it must match exactly;
//  4. every border point's cluster contains a core within ε of it
//     (attachment legality, checked geometrically).
//
// Anything weaker (noise counts, 1%-disagreement tolerance) can hide a
// genuine cluster-split bug; anything stronger is unsatisfiable.

// churnEquivalent checks conditions 1–4 for got (live-point labels from
// the incremental clusterer) against want (a from-scratch run over the
// same live slice).
func churnEquivalent(t *testing.T, tag string, got, want *cluster.Result, live []geom.Point, p dbscan.Params) {
	t.Helper()
	n := len(live)
	if got.Len() != n || want.Len() != n {
		t.Fatalf("%s: length mismatch: got %d, want %d, live %d", tag, got.Len(), want.Len(), n)
	}
	// Core flags by brute force, trusting neither clustering.
	epsSq := p.Eps * p.Eps
	core := make([]bool, n)
	for i := range live {
		cnt := 0
		for j := range live {
			if live[i].DistSq(live[j]) <= epsSq {
				cnt++
			}
		}
		core[i] = cnt >= p.MinPts
	}
	// 1. Noise sets.
	for i := 0; i < n; i++ {
		gn, wn := got.Labels[i] <= 0, want.Labels[i] <= 0
		if gn != wn {
			t.Fatalf("%s: point %d %v: incremental noise=%v, batch noise=%v",
				tag, i, live[i], gn, wn)
		}
		if core[i] && gn {
			t.Fatalf("%s: core point %d %v labeled noise", tag, i, live[i])
		}
	}
	// 2+3. Core partition bijection.
	g2w := map[int32]int32{}
	w2g := map[int32]int32{}
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		g, w := got.Labels[i], want.Labels[i]
		if prev, ok := g2w[g]; ok && prev != w {
			t.Fatalf("%s: incremental cluster %d spans batch clusters %d and %d (core %d)",
				tag, g, prev, w, i)
		}
		if prev, ok := w2g[w]; ok && prev != g {
			t.Fatalf("%s: batch cluster %d spans incremental clusters %d and %d (core %d) — missed split or merge",
				tag, w, prev, g, i)
		}
		g2w[g] = w
		w2g[w] = g
	}
	// 4. Border attachment legality for the incremental side.
	for i := 0; i < n; i++ {
		if core[i] || got.Labels[i] <= 0 {
			continue
		}
		ok := false
		for j := 0; j < n; j++ {
			if core[j] && got.Labels[j] == got.Labels[i] && live[i].DistSq(live[j]) <= epsSq {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("%s: border point %d %v in cluster %d has no core of that cluster within ε",
				tag, i, live[i], got.Labels[i])
		}
	}
}

// liveView projects the full insertion-ordered labels down to the live
// points.
func liveView(c *Clusterer, pts []geom.Point, dead []bool) (*cluster.Result, []geom.Point) {
	full := c.Labels()
	var live []geom.Point
	var labels []int32
	for i, p := range pts {
		if dead[i] {
			continue
		}
		live = append(live, p)
		labels = append(labels, full.Labels[i])
	}
	res := cluster.NewResult(len(live))
	copy(res.Labels, labels)
	return res, live
}

// churnPoint draws from four dense blobs plus a uniform background, so
// the stream continually forms, bridges, and starves clusters.
func churnPoint(rng *rand.Rand) geom.Point {
	if rng.Float64() < 0.25 {
		return geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	centers := [4]geom.Point{{X: 2, Y: 2}, {X: 2, Y: 7}, {X: 7, Y: 3}, {X: 8, Y: 8}}
	c := centers[rng.Intn(4)]
	return geom.Point{X: c.X + rng.NormFloat64()*0.6, Y: c.Y + rng.NormFloat64()*0.6}
}

// runChurn drives a seeded insert/delete churn through a Clusterer and
// checks differential equivalence against dbscan.RunBruteForce after
// every single delete and every insertCheck insertions.
func runChurn(t *testing.T, opts Options, seed int64, warmup, ops int) *Clusterer {
	t.Helper()
	p := dbscan.Params{Eps: 0.45, MinPts: 4}
	c, err := NewWithOptions(p, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var pts []geom.Point
	var dead []bool
	var liveIdx []int

	check := func(tag string) {
		t.Helper()
		got, live := liveView(c, pts, dead)
		want, err := dbscan.RunBruteForce(live, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		churnEquivalent(t, tag, got, want, live, p)
	}
	insert := func() {
		q := churnPoint(rng)
		pts = append(pts, q)
		dead = append(dead, false)
		liveIdx = append(liveIdx, len(pts)-1)
		c.Insert(q)
	}

	for i := 0; i < warmup; i++ {
		insert()
	}
	check("after warmup")

	const insertCheck = 25
	sinceCheck := 0
	for op := 0; op < ops; op++ {
		if len(liveIdx) > 0 && rng.Float64() < 0.45 {
			k := rng.Intn(len(liveIdx))
			i := liveIdx[k]
			liveIdx[k] = liveIdx[len(liveIdx)-1]
			liveIdx = liveIdx[:len(liveIdx)-1]
			if err := c.Delete(i); err != nil {
				t.Fatalf("op %d: delete %d: %v", op, i, err)
			}
			dead[i] = true
			// Satellite requirement: the clustering is checked after
			// EVERY delete — splits must be exact, not eventually right.
			check(fmt.Sprintf("op %d after delete %d", op, i))
			sinceCheck = 0
		} else {
			insert()
			sinceCheck++
			if sinceCheck >= insertCheck {
				check(fmt.Sprintf("op %d after insert run", op))
				sinceCheck = 0
			}
		}
	}
	check("final")
	return c
}

// TestChurnDifferentialPointer pins the delete/split repair logic on the
// pure pointer-tree path (no snapshot machinery in the loop).
func TestChurnDifferentialPointer(t *testing.T) {
	runChurn(t, Options{DisableFlat: true}, 1, 180, 260)
}

// TestChurnDifferentialEpochs runs the same differential churn with an
// aggressively small re-freeze threshold, so the stream crosses many
// snapshot epochs: first freeze, overlay growth, background compactions,
// and copy-on-write installs all happen mid-churn. Every search the
// checker depends on is answered by the flat+overlay merge.
func TestChurnDifferentialEpochs(t *testing.T) {
	for _, seed := range []int64{2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := runChurn(t, Options{RefreezeThreshold: 24}, seed, 180, 260)
			c.FlushRefreeze()
			st := c.RefreezeStats()
			if st.Refreezes < 2 {
				t.Fatalf("expected multiple re-freezes at threshold 24, got %d (stats %+v)", st.Refreezes, st)
			}
			if st.StaleFallbacks != 0 {
				t.Fatalf("overlay-tracked churn must never fall back to the pointer tree: %d stale fallbacks (stats %+v)", st.StaleFallbacks, st)
			}
			if st.FrozenPoints == 0 {
				t.Fatalf("no frozen snapshot after churn (stats %+v)", st)
			}
		})
	}
}

// TestChurnDifferentialDefaultThreshold covers the configuration real
// callers get: default threshold, so the churn spans the pre-freeze
// regime, the first freeze, and overlay-staged mutations on top of it.
func TestChurnDifferentialDefaultThreshold(t *testing.T) {
	c := runChurn(t, Options{}, 4, 300, 200)
	if st := c.RefreezeStats(); st.Refreezes < 1 {
		t.Fatalf("expected the first freeze to have happened at %d insertions (stats %+v)",
			c.Len(), st)
	}
}

// TestChurnMatchesParallelFlat cross-checks the incremental clustering
// against from-scratch *flat-path parallel* DBSCAN at 1–8 workers — the
// exact acceptance criterion: any interleaving of inserts, deletes, and
// re-freezes must equal a fresh Run over the surviving points.
func TestChurnMatchesParallelFlat(t *testing.T) {
	p := dbscan.Params{Eps: 0.45, MinPts: 4}
	c, err := NewWithOptions(p, nil, Options{RefreezeThreshold: 32})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var pts []geom.Point
	var dead []bool
	var liveIdx []int

	crossCheck := func(tag string) {
		t.Helper()
		got, live := liveView(c, pts, dead)
		ix := dbscan.BuildIndex(append([]geom.Point(nil), live...), dbscan.IndexOptions{})
		for workers := 1; workers <= 8; workers++ {
			want, err := dbscan.RunParallel(ix, p, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			churnEquivalent(t, fmt.Sprintf("%s workers=%d", tag, workers),
				got, want.Remap(ix.Fwd), live, p)
		}
	}

	for i := 0; i < 240; i++ {
		q := churnPoint(rng)
		pts = append(pts, q)
		dead = append(dead, false)
		liveIdx = append(liveIdx, len(pts)-1)
		c.Insert(q)
	}
	crossCheck("after load")
	for round := 0; round < 4; round++ {
		for op := 0; op < 40; op++ {
			if len(liveIdx) > 0 && rng.Float64() < 0.5 {
				k := rng.Intn(len(liveIdx))
				i := liveIdx[k]
				liveIdx[k] = liveIdx[len(liveIdx)-1]
				liveIdx = liveIdx[:len(liveIdx)-1]
				if err := c.Delete(i); err != nil {
					t.Fatal(err)
				}
				dead[i] = true
			} else {
				q := churnPoint(rng)
				pts = append(pts, q)
				dead = append(dead, false)
				liveIdx = append(liveIdx, len(pts)-1)
				c.Insert(q)
			}
		}
		c.FlushRefreeze() // pin an install between rounds, then keep mutating
		crossCheck(fmt.Sprintf("round %d", round))
	}
	if st := c.RefreezeStats(); st.StaleFallbacks != 0 {
		t.Fatalf("stale fallbacks during tracked churn: %+v", st)
	}
}

// TestChurnDifferentialManySeeds widens the seed sweep — cheap insurance
// against a split/demotion corner the fixed seeds happen to miss.
func TestChurnDifferentialManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	for seed := int64(10); seed < 22; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			opts := Options{RefreezeThreshold: 16 + int(seed)}
			if seed%3 == 0 {
				opts = Options{DisableFlat: true}
			}
			runChurn(t, opts, seed, 140, 180)
		})
	}
}

// TestStaleSnapshotFallback mutates the tree BEHIND the overlay's back —
// the failure mode the generation counter exists to catch. The snapshot
// must detect that its generation is unaccounted for and refuse to
// answer; searches fall back to the pointer tree and stay correct.
func TestStaleSnapshotFallback(t *testing.T) {
	p := dbscan.Params{Eps: 0.6, MinPts: 3}
	c, err := NewWithOptions(p, nil, Options{RefreezeThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		c.Insert(churnPoint(rng))
	}
	c.FlushRefreeze()
	if st := c.RefreezeStats(); st.Refreezes == 0 {
		t.Fatalf("setup: expected a frozen snapshot, stats %+v", st)
	}

	// Out-of-band mutation: straight into the tree, no overlay record.
	rogue := geom.Point{X: 2.05, Y: 2.05}
	c.tree.Insert(rogue)

	got := c.neighbors(rogue, nil)
	if c.staleFalls == 0 {
		t.Fatal("search served from a stale snapshot after an untracked mutation")
	}
	// The fallback answer must include the rogue point and match brute force.
	epsSq := p.Eps * p.Eps
	pts := c.tree.Points()
	want := map[int32]bool{}
	for i, q := range pts {
		if rogue.DistSq(q) <= epsSq {
			want[int32(i)] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("fallback neighbors: got %d, want %d", len(got), len(want))
	}
	for _, i := range got {
		if !want[i] {
			t.Fatalf("fallback returned non-neighbor %d", i)
		}
	}
	if !want[int32(len(pts)-1)] {
		t.Fatal("test bug: rogue point should be its own neighbor")
	}
}
