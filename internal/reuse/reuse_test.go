package reuse

import (
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/geom"
)

func info(id int32, size int, area float64) cluster.Info {
	return cluster.Info{
		ID:      id,
		Size:    size,
		Area:    area,
		Density: float64(size) / area,
		PtsSq:   float64(size) * float64(size) / area,
	}
}

func TestSchemeStrings(t *testing.T) {
	if ClusDefault.String() != "CLUSDEFAULT" ||
		ClusDensity.String() != "CLUSDENSITY" ||
		ClusPtsSquared.String() != "CLUSPTSSQUARED" {
		t.Error("scheme names wrong")
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme should still stringify")
	}
}

func TestParse(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Scheme
	}{
		{"CLUSDEFAULT", ClusDefault},
		{"default", ClusDefault},
		{"CLUSDENSITY", ClusDensity},
		{"density", ClusDensity},
		{"CLUSPTSSQUARED", ClusPtsSquared},
		{"ptssquared", ClusPtsSquared},
	} {
		got, err := Parse(c.in)
		if err != nil || got != c.want {
			t.Errorf("Parse(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse should reject unknown names")
	}
}

func TestSeedListDefault(t *testing.T) {
	infos := []cluster.Info{info(1, 10, 1), info(2, 100, 1), info(3, 5, 1)}
	ids := SeedList(infos, ClusDefault)
	want := []int32{1, 2, 3}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("default order = %v", ids)
		}
	}
}

func TestSeedListDensity(t *testing.T) {
	// Cluster 2: tiny but hyper-dense. Cluster 1: large but sparse.
	infos := []cluster.Info{
		info(1, 1000, 1000), // density 1
		info(2, 50, 1),      // density 50
		info(3, 300, 30),    // density 10
	}
	ids := SeedList(infos, ClusDensity)
	want := []int32{2, 3, 1}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("density order = %v, want %v", ids, want)
		}
	}
}

func TestSeedListPtsSquared(t *testing.T) {
	// Same infos as above; |C|²/a flips the ranking toward big clusters:
	// c1: 1e6/1e3 = 1000, c2: 2500/1 = 2500, c3: 9e4/30 = 3000.
	infos := []cluster.Info{
		info(1, 1000, 1000),
		info(2, 50, 1),
		info(3, 300, 30),
	}
	ids := SeedList(infos, ClusPtsSquared)
	want := []int32{3, 2, 1}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ptsSquared order = %v, want %v", ids, want)
		}
	}
}

func TestSeedListSchemesDisagree(t *testing.T) {
	// The paper's motivation: a very dense cluster may not contain many
	// points, so density and |C|² orders differ on the same input.
	infos := []cluster.Info{
		info(1, 10000, 10000), // density 1,   ptsSq 10000
		info(2, 10, 0.1),      // density 100, ptsSq 1000
	}
	d := SeedList(infos, ClusDensity)
	s := SeedList(infos, ClusPtsSquared)
	if d[0] != 2 || s[0] != 1 {
		t.Errorf("density first = %d (want 2), ptsSq first = %d (want 1)", d[0], s[0])
	}
}

func TestSeedListEmptyAndSingle(t *testing.T) {
	if got := SeedList(nil, ClusDensity); len(got) != 0 {
		t.Errorf("empty infos -> %v", got)
	}
	one := []cluster.Info{info(1, 5, 2)}
	for _, s := range Schemes {
		if got := SeedList(one, s); len(got) != 1 || got[0] != 1 {
			t.Errorf("scheme %v single = %v", s, got)
		}
	}
}

func TestSeedListStableOnTies(t *testing.T) {
	infos := []cluster.Info{info(1, 10, 1), info(2, 10, 1), info(3, 10, 1)}
	for _, s := range Schemes {
		ids := SeedList(infos, s)
		for i := range ids {
			if ids[i] != int32(i+1) {
				t.Errorf("scheme %v tie order = %v", s, ids)
				break
			}
		}
	}
}

func TestSeedListFromRealResult(t *testing.T) {
	// End-to-end through cluster.Infos: two clusters where density and
	// generation order differ.
	pts := []geom.Point{
		// Cluster 1: 3 spread-out points (low density).
		{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 0, Y: 4},
		// Cluster 2: 3 tight points (high density).
		{X: 10, Y: 10}, {X: 10.1, Y: 10}, {X: 10, Y: 10.1},
	}
	r := &cluster.Result{Labels: []int32{1, 1, 1, 2, 2, 2}, NumClusters: 2}
	infos := r.Infos(pts)
	if got := SeedList(infos, ClusDensity); got[0] != 2 {
		t.Errorf("densest-first should pick cluster 2, got %v", got)
	}
	if got := SeedList(infos, ClusDefault); got[0] != 1 {
		t.Errorf("default should pick cluster 1, got %v", got)
	}
}

func TestSeedListFiltered(t *testing.T) {
	infos := []cluster.Info{info(1, 100, 10), info(2, 3, 0.1), info(3, 50, 5)}
	// minSize <= 1 keeps everything.
	if got := SeedListFiltered(infos, ClusDefault, 0); len(got) != 3 {
		t.Errorf("unfiltered = %v", got)
	}
	if got := SeedListFiltered(infos, ClusDefault, 1); len(got) != 3 {
		t.Errorf("minSize=1 = %v", got)
	}
	// minSize 10 drops the 3-point cluster but keeps priority order.
	got := SeedListFiltered(infos, ClusDensity, 10)
	if len(got) != 2 {
		t.Fatalf("filtered = %v", got)
	}
	// Density order: cluster 1 (10/unit) then 3 (10/unit)... equal density;
	// stable order keeps ID order 1, 3.
	if got[0] != 1 || got[1] != 3 {
		t.Errorf("filtered order = %v", got)
	}
	// Filtering everything leaves an empty seed list.
	if got := SeedListFiltered(infos, ClusDefault, 1000); len(got) != 0 {
		t.Errorf("over-filtered = %v", got)
	}
}
