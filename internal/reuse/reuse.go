// Package reuse implements the cluster-reuse prioritization techniques of
// paper §IV-C. When VariantDBSCAN reuses a completed variant, expanding one
// seed cluster can absorb points of other old clusters, destroying them as
// reuse candidates — so the order in which seed clusters are expanded
// determines how much reuse is achieved. Three schemes are proposed:
//
//	CLUSDEFAULT    — generation order (cluster ID order);
//	CLUSDENSITY    — densest first, density = |C| / area(MBB(C));
//	CLUSPTSSQUARED — highest |C|² / area(MBB(C)) first, favoring clusters
//	                 with many points even when not the densest.
//
// The paper finds CLUSDENSITY the strongest (565% faster than the reference
// on SW1) and CLUSPTSSQUARED can even lose to clustering from scratch.
package reuse

import (
	"fmt"
	"sort"

	"vdbscan/internal/cluster"
)

// Scheme selects a seed-cluster prioritization.
type Scheme int

const (
	// ClusDefault selects clusters in the order they were generated.
	ClusDefault Scheme = iota
	// ClusDensity selects clusters from highest to lowest |C|/area.
	ClusDensity
	// ClusPtsSquared selects clusters from highest to lowest |C|²/area.
	ClusPtsSquared
)

// Schemes lists all schemes in paper order, for sweeps.
var Schemes = []Scheme{ClusDefault, ClusDensity, ClusPtsSquared}

// String implements fmt.Stringer with the paper's names.
func (s Scheme) String() string {
	switch s {
	case ClusDefault:
		return "CLUSDEFAULT"
	case ClusDensity:
		return "CLUSDENSITY"
	case ClusPtsSquared:
		return "CLUSPTSSQUARED"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Parse converts a scheme name (case-sensitive paper spelling or the
// lowercase CLI spellings "default", "density", "ptssquared").
func Parse(name string) (Scheme, error) {
	switch name {
	case "CLUSDEFAULT", "default":
		return ClusDefault, nil
	case "CLUSDENSITY", "density":
		return ClusDensity, nil
	case "CLUSPTSSQUARED", "ptssquared":
		return ClusPtsSquared, nil
	}
	return 0, fmt.Errorf("reuse: unknown scheme %q", name)
}

// SeedListFiltered is SeedList with the selection criteria the paper's
// getSeedList description allows for ("filters the list of total
// clusters"): clusters smaller than minSize are excluded from reuse (their
// points cluster from scratch in the remainder pass), since sweeping and
// edge-expanding a tiny cluster can cost more ε-searches than it saves.
// minSize <= 1 keeps every cluster.
func SeedListFiltered(infos []cluster.Info, s Scheme, minSize int) []int32 {
	ids := SeedList(infos, s)
	if minSize <= 1 {
		return ids
	}
	kept := ids[:0]
	for _, id := range ids {
		if infos[id-1].Size >= minSize {
			kept = append(kept, id)
		}
	}
	return kept
}

// SeedList is getSeedList (Algorithm 3, line 6): it orders the completed
// variant's clusters by the scheme's priority and returns their IDs. All
// clusters are candidates; prioritization only affects which survive the
// destruction race.
func SeedList(infos []cluster.Info, s Scheme) []int32 {
	ids := make([]int32, len(infos))
	for i, info := range infos {
		ids[i] = info.ID
	}
	switch s {
	case ClusDefault:
		// Generation order == ID order; infos are already ID-ordered.
	case ClusDensity:
		sort.SliceStable(ids, func(a, b int) bool {
			return infos[ids[a]-1].Density > infos[ids[b]-1].Density
		})
	case ClusPtsSquared:
		sort.SliceStable(ids, func(a, b int) bool {
			return infos[ids[a]-1].PtsSq > infos[ids[b]-1].PtsSq
		})
	}
	return ids
}
