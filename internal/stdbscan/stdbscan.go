// Package stdbscan implements ST-DBSCAN (Birant & Kut, Data & Knowledge
// Engineering 2007) — the spatiotemporal DBSCAN the paper cites as its
// reference [20] for spatiotemporal applications.
//
// Ionospheric TEC observations are inherently spatiotemporal: a Traveling
// Ionospheric Disturbance is one object moving through consecutive map
// frames. ST-DBSCAN clusters points (x, y, t) with two radii:
//
//	Eps1 — spatial Euclidean radius over (x, y);
//	Eps2 — temporal radius over t;
//
// a neighbor must be within both. Core/border/noise semantics follow
// DBSCAN. The spatial search runs over the same packed R-tree substrate as
// the rest of the library (internal/rtree), with the temporal filter
// applied during candidate filtering.
package stdbscan

import (
	"fmt"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

// Point is one spatiotemporal observation.
type Point struct {
	X, Y float64
	// T is the observation epoch in the caller's unit (e.g. hours).
	T float64
}

// Params are the ST-DBSCAN inputs.
type Params struct {
	// Eps1 is the spatial radius.
	Eps1 float64
	// Eps2 is the temporal radius.
	Eps2 float64
	// MinPts is the core-point threshold (the point itself counts).
	MinPts int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Eps1 <= 0 {
		return fmt.Errorf("stdbscan: eps1 must be > 0, got %g", p.Eps1)
	}
	if p.Eps2 <= 0 {
		return fmt.Errorf("stdbscan: eps2 must be > 0, got %g", p.Eps2)
	}
	if p.MinPts < 1 {
		return fmt.Errorf("stdbscan: minpts must be >= 1, got %d", p.MinPts)
	}
	return nil
}

// String implements fmt.Stringer.
func (p Params) String() string {
	return fmt.Sprintf("(eps1=%g, eps2=%g, minpts=%d)", p.Eps1, p.Eps2, p.MinPts)
}

// Index is the spatiotemporal index: the shared 2-D R-tree over (x, y)
// plus the aligned epoch array.
type Index struct {
	spatial *dbscan.Index
	times   []float64 // aligned with spatial's sorted point order
}

// BuildIndex indexes pts. r is the ε-search leaf occupancy (DefaultR when
// zero, as in dbscan.BuildIndex).
func BuildIndex(pts []Point, r int) *Index {
	xy := make([]geom.Point, len(pts))
	for i, p := range pts {
		xy[i] = geom.Point{X: p.X, Y: p.Y}
	}
	spatial := dbscan.BuildIndex(xy, dbscan.IndexOptions{R: r, SkipHigh: true})
	times := make([]float64, len(pts))
	for sortedIdx, origIdx := range spatial.Fwd {
		times[sortedIdx] = pts[origIdx].T
	}
	return &Index{spatial: spatial, times: times}
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.spatial.Len() }

// Fwd maps sorted index -> original index (see dbscan.Index.Fwd).
func (ix *Index) Fwd() []int { return ix.spatial.Fwd }

// NeighborSearch returns the sorted-space indices of points within Eps1
// spatially AND Eps2 temporally of sorted-space point i (including itself).
func (ix *Index) NeighborSearch(i int32, p Params, m *metrics.Counters, dst []int32) []int32 {
	q := ix.spatial.Pts[i]
	t := ix.times[i]
	spatialHits := ix.spatial.NeighborSearch(q, p.Eps1, m, nil)
	for _, j := range spatialHits {
		dt := ix.times[j] - t
		if dt < 0 {
			dt = -dt
		}
		if dt <= p.Eps2 {
			dst = append(dst, j)
		}
	}
	return dst
}

// Run clusters the index under p; labels are in sorted space (use Fwd with
// cluster.Result.Remap for the caller's order). m may be nil.
func Run(ix *Index, p Params, m *metrics.Counters) (*cluster.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := ix.Len()
	res := cluster.NewResult(n)
	visited := make([]bool, n)
	var cid int32

	queue := make([]int32, 0, 1024)
	var scratch []int32
	absorb := func(neighbors []int32, cid int32) {
		for _, k := range neighbors {
			if !visited[k] {
				visited[k] = true
				queue = append(queue, k)
			}
			if res.Labels[k] <= 0 {
				res.Labels[k] = cid
			}
		}
	}
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		scratch = ix.NeighborSearch(int32(i), p, m, scratch[:0])
		if len(scratch) < p.MinPts {
			res.Labels[i] = cluster.Noise
			continue
		}
		cid++
		res.Labels[i] = cid
		queue = queue[:0]
		absorb(scratch, cid)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			scratch = ix.NeighborSearch(j, p, m, scratch[:0])
			if len(scratch) >= p.MinPts {
				absorb(scratch, cid)
			}
		}
	}
	res.NumClusters = int(cid)
	return res, nil
}

// RunBruteForce is the O(n²) oracle for cross-validation.
func RunBruteForce(pts []Point, p Params, m *metrics.Counters) (*cluster.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(pts)
	e1Sq := p.Eps1 * p.Eps1
	search := func(i int, dst []int32) []int32 {
		for j := 0; j < n; j++ {
			dx := pts[i].X - pts[j].X
			dy := pts[i].Y - pts[j].Y
			dt := pts[i].T - pts[j].T
			if dt < 0 {
				dt = -dt
			}
			if dx*dx+dy*dy <= e1Sq && dt <= p.Eps2 {
				dst = append(dst, int32(j))
			}
		}
		m.AddNeighborSearches(1)
		return dst
	}
	res := cluster.NewResult(n)
	visited := make([]bool, n)
	var cid int32
	queue := make([]int32, 0, 1024)
	var scratch []int32
	absorb := func(neighbors []int32, cid int32) {
		for _, k := range neighbors {
			if !visited[k] {
				visited[k] = true
				queue = append(queue, k)
			}
			if res.Labels[k] <= 0 {
				res.Labels[k] = cid
			}
		}
	}
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		scratch = search(i, scratch[:0])
		if len(scratch) < p.MinPts {
			res.Labels[i] = cluster.Noise
			continue
		}
		cid++
		res.Labels[i] = cid
		queue = queue[:0]
		absorb(scratch, cid)
		for qi := 0; qi < len(queue); qi++ {
			scratch = search(int(queue[qi]), scratch[:0])
			if len(scratch) >= p.MinPts {
				absorb(scratch, cid)
			}
		}
	}
	res.NumClusters = int(cid)
	return res, nil
}
