package stdbscan

import (
	"math/rand"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/metrics"
)

// movingBlob emits a blob drifting across frames: frames observations at
// epochs 0..frames-1, the blob center moving by (vx, vy) per epoch.
func movingBlob(frames, perFrame int, x0, y0, vx, vy, sigma float64, rnd *rand.Rand) []Point {
	var pts []Point
	for f := 0; f < frames; f++ {
		cx, cy := x0+vx*float64(f), y0+vy*float64(f)
		for i := 0; i < perFrame; i++ {
			pts = append(pts, Point{
				X: cx + rnd.NormFloat64()*sigma,
				Y: cy + rnd.NormFloat64()*sigma,
				T: float64(f),
			})
		}
	}
	return pts
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{Eps1: 1, Eps2: 1, MinPts: 4}).Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []Params{
		{Eps1: 0, Eps2: 1, MinPts: 4},
		{Eps1: 1, Eps2: 0, MinPts: 4},
		{Eps1: 1, Eps2: 1, MinPts: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%v accepted", bad)
		}
	}
	if (Params{Eps1: 1, Eps2: 2, MinPts: 3}).String() == "" {
		t.Error("String empty")
	}
}

func TestTemporalSeparation(t *testing.T) {
	// Same location, two bursts far apart in time: spatial DBSCAN would
	// merge them; ST-DBSCAN with a tight Eps2 must split them.
	rnd := rand.New(rand.NewSource(1))
	var pts []Point
	for i := 0; i < 50; i++ {
		pts = append(pts, Point{X: rnd.NormFloat64() * 0.3, Y: rnd.NormFloat64() * 0.3, T: 0})
	}
	for i := 0; i < 50; i++ {
		pts = append(pts, Point{X: rnd.NormFloat64() * 0.3, Y: rnd.NormFloat64() * 0.3, T: 10})
	}
	ix := BuildIndex(pts, 8)
	res, err := Run(ix, Params{Eps1: 1, Eps2: 2, MinPts: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Errorf("temporally split bursts: %d clusters, want 2", res.NumClusters)
	}
	// With a generous Eps2 they merge into one.
	res, _ = Run(ix, Params{Eps1: 1, Eps2: 100, MinPts: 4}, nil)
	if res.NumClusters != 1 {
		t.Errorf("generous eps2: %d clusters, want 1", res.NumClusters)
	}
}

func TestMovingObjectStaysOneCluster(t *testing.T) {
	// A drifting blob observed over 8 frames: consecutive frames overlap
	// spatially, so with Eps2 >= 1 the track forms one spatiotemporal
	// cluster even though frame 0 and frame 7 are spatially disjoint.
	rnd := rand.New(rand.NewSource(2))
	pts := movingBlob(8, 80, 0, 0, 1.5, 0, 0.4, rnd)
	ix := BuildIndex(pts, 8)
	res, err := Run(ix, Params{Eps1: 1, Eps2: 1.5, MinPts: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Errorf("moving object: %d clusters, want 1 connected track", res.NumClusters)
	}
	// Eps2 < 1 breaks temporal connectivity: every frame its own cluster.
	res, _ = Run(ix, Params{Eps1: 1, Eps2: 0.5, MinPts: 4}, nil)
	if res.NumClusters != 8 {
		t.Errorf("frame-isolated: %d clusters, want 8", res.NumClusters)
	}
}

func TestRunMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	var pts []Point
	pts = append(pts, movingBlob(5, 60, 0, 0, 2, 1, 0.5, rnd)...)
	pts = append(pts, movingBlob(5, 60, 30, 30, -1, 0, 0.5, rnd)...)
	for i := 0; i < 100; i++ {
		pts = append(pts, Point{X: rnd.Float64() * 50, Y: rnd.Float64() * 50, T: rnd.Float64() * 5})
	}
	p := Params{Eps1: 1.2, Eps2: 1.2, MinPts: 5}
	ix := BuildIndex(pts, 16)
	got, err := Run(ix, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunBruteForce(pts, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotOrig := got.Remap(ix.Fwd())
	if gotOrig.NumClusters != want.NumClusters {
		t.Errorf("clusters: %d vs %d", gotOrig.NumClusters, want.NumClusters)
	}
	if d := cluster.DisagreementCount(gotOrig, want); d > len(pts)/100 {
		t.Errorf("disagreements = %d", d)
	}
}

func TestRunEmptyAndDegenerate(t *testing.T) {
	ix := BuildIndex(nil, 0)
	res, err := Run(ix, Params{Eps1: 1, Eps2: 1, MinPts: 4}, nil)
	if err != nil || res.Len() != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	ix = BuildIndex([]Point{{X: 1, Y: 1, T: 0}}, 0)
	res, _ = Run(ix, Params{Eps1: 1, Eps2: 1, MinPts: 2}, nil)
	if res.NumNoise() != 1 {
		t.Error("lone point should be noise")
	}
	if _, err := Run(ix, Params{}, nil); err == nil {
		t.Error("zero params accepted")
	}
}

func TestMetricsCounted(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	pts := movingBlob(3, 50, 0, 0, 1, 0, 0.3, rnd)
	ix := BuildIndex(pts, 8)
	var m metrics.Counters
	if _, err := Run(ix, Params{Eps1: 1, Eps2: 1, MinPts: 4}, &m); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().NeighborSearches; got != int64(len(pts)) {
		t.Errorf("searches = %d, want %d", got, len(pts))
	}
}
