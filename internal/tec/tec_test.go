package tec

import (
	"math"
	"testing"

	"vdbscan/internal/data"
	"vdbscan/internal/dbscan"
)

func TestSimulateBasics(t *testing.T) {
	ds, err := Simulate(Config{N: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 5000 {
		t.Fatalf("|D| = %d", ds.Len())
	}
	if ds.NoiseFrac >= 0 {
		t.Error("TEC datasets have no noise label (Table I: N/A)")
	}
	for _, p := range ds.Points {
		if !data.Region.ContainsPoint(p) {
			t.Fatalf("point %v outside region", p)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := Config{N: 2000, Seed: 9}
	a, _ := Simulate(cfg)
	b, _ := Simulate(cfg)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("same config produced different points")
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Config{N: -5}); err == nil {
		t.Error("negative N accepted")
	}
	ds, err := Simulate(Config{N: 0, Seed: 1})
	if err != nil || ds.Len() != 0 {
		t.Errorf("N=0: %v %v", ds, err)
	}
}

func TestFieldStructure(t *testing.T) {
	f := NewField(Config{Seed: 3})
	// TEC is always positive and bounded by the component amplitudes.
	for lon := 0.0; lon < 360; lon += 30 {
		for lat := 0.0; lat <= 180; lat += 30 {
			v := f.TEC(lon, lat, 0)
			if v <= 0 || v > 200 {
				t.Fatalf("TEC(%g,%g) = %g implausible", lon, lat, v)
			}
			if math.IsNaN(v) {
				t.Fatalf("TEC(%g,%g) = NaN", lon, lat)
			}
		}
	}
}

func TestFieldEvolvesWithTime(t *testing.T) {
	f := NewField(Config{Seed: 4})
	moved := 0
	for lon := 5.0; lon < 360; lon += 45 {
		if math.Abs(f.TEC(lon, 90, 0)-f.TEC(lon, 90, 2)) > 0.1 {
			moved++
		}
	}
	if moved < 3 {
		t.Errorf("field barely changed over 2h (moved=%d)", moved)
	}
}

func TestThresholdingKeepsHighTEC(t *testing.T) {
	// Kept points must have TEC above the field's global mean: they are the
	// top KeepFraction of samples.
	cfg := Config{N: 3000, Seed: 5}
	ds, _ := Simulate(cfg)
	f := NewField(cfg)
	var keptSum float64
	for _, p := range ds.Points {
		keptSum += f.TEC(p.X, p.Y, 0)
	}
	keptMean := keptSum / float64(ds.Len())

	rng := data.NewRNG(123)
	var allSum float64
	const probes = 5000
	for i := 0; i < probes; i++ {
		allSum += f.TEC(rng.Float64()*360, rng.Float64()*180, 0)
	}
	allMean := allSum / probes
	if keptMean <= allMean {
		t.Errorf("kept mean TEC %.2f not above field mean %.2f", keptMean, allMean)
	}
}

func TestSimulatedTECClustersWell(t *testing.T) {
	// The point of the substitution: thresholded TEC points must produce a
	// meaningful DBSCAN clustering (many clusters, partial noise) like the
	// paper's SW data (Table II: SW1 at (0.5, 4) -> 2333 clusters).
	ds, _ := Simulate(Config{N: 20000, Seed: 6})
	ix := dbscan.BuildIndex(ds.Points, dbscan.IndexOptions{R: 32})
	res, err := dbscan.Run(ix, dbscan.Params{Eps: 2.0, MinPts: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters < 10 {
		t.Errorf("clusters = %d, want >= 10 (filamentary structure)", res.NumClusters)
	}
	if res.NumNoise() == 0 {
		t.Error("expected some diffuse background noise")
	}
	if res.NumNoise() == ds.Len() {
		t.Error("everything was noise — no dense structure")
	}
}

func TestSW(t *testing.T) {
	for k := 1; k <= 4; k++ {
		ds, err := SW(k, 0.001)
		if err != nil {
			t.Fatal(err)
		}
		want := int(float64(PaperSize(k)) * 0.001)
		if ds.Len() != want {
			t.Errorf("SW%d scaled size = %d, want %d", k, ds.Len(), want)
		}
	}
	// Sizes ascend like the paper's.
	if !(PaperSize(1) < PaperSize(2) && PaperSize(2) < PaperSize(3) && PaperSize(3) < PaperSize(4)) {
		t.Error("SW sizes not ascending")
	}
	if PaperSize(1) != 1_864_620 || PaperSize(4) != 5_159_737 {
		t.Errorf("paper sizes wrong: %d, %d", PaperSize(1), PaperSize(4))
	}
	if PaperSize(0) != 0 || PaperSize(5) != 0 {
		t.Error("out-of-range PaperSize should be 0")
	}
}

func TestSWValidation(t *testing.T) {
	if _, err := SW(0, 0.1); err == nil {
		t.Error("SW(0) accepted")
	}
	if _, err := SW(5, 0.1); err == nil {
		t.Error("SW(5) accepted")
	}
	if _, err := SW(1, 0); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := SW(1, 1.5); err == nil {
		t.Error("scale > 1 accepted")
	}
}

func TestSWDatasetsDiffer(t *testing.T) {
	a, _ := SW(1, 0.001)
	b, _ := SW(2, 0.001)
	if a.Name != "SW1" || b.Name != "SW2" {
		t.Errorf("names: %s, %s", a.Name, b.Name)
	}
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	same := 0
	for i := 0; i < n; i++ {
		if a.Points[i] == b.Points[i] {
			same++
		}
	}
	if same > n/10 {
		t.Errorf("SW1 and SW2 share %d of %d points", same, n)
	}
}

func TestWrapLonClampLat(t *testing.T) {
	if got := wrapLon(-10); got != 350 {
		t.Errorf("wrapLon(-10) = %g", got)
	}
	if got := wrapLon(370); got != 10 {
		t.Errorf("wrapLon(370) = %g", got)
	}
	if clampLat(-5) != 0 || clampLat(185) != 180 || clampLat(90) != 90 {
		t.Error("clampLat wrong")
	}
}

func TestAngularDist(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 10, 10},
		{350, 10, 20}, // wraps
		{0, 180, 180},
		{90, 90, 0},
	}
	for _, c := range cases {
		if got := angularDist(c.a, c.b); got != c.want {
			t.Errorf("angularDist(%g,%g) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}
