// Package tec simulates ionospheric Total Electron Content (TEC) point
// datasets shaped like the paper's real-world SW1–SW4 inputs.
//
// The paper's SW datasets are thresholded TEC maps derived from GPS signal
// processing (1.86M–5.16M points; the published FTP archive is no longer
// reachable). This package substitutes them with a synthetic TEC field that
// reproduces the structure the clustering pipeline actually depends on:
//
//   - a smooth background ionosphere: a day-side enhancement around a
//     subsolar longitude plus equatorial-anomaly latitude bands;
//   - Traveling Ionospheric Disturbances (TIDs): moving plane-wave packets
//     with Gaussian envelopes, producing the elongated wave-crest filaments
//     the paper's clustering is designed to find;
//   - storm-enhanced density blobs: localized hot spots;
//   - patchy receiver coverage: samples concentrate around "receiver site"
//     clusters (continents/networks), with a uniform background.
//
// Samples are drawn at coverage-weighted locations and the highest-TEC
// fraction is kept — equivalent to the paper's "select a range of TEC
// values and determine clusters for the resulting thresholded set of 2-D
// points" (§II). The result is dense anisotropic filaments plus diffuse
// background with no explicit noise labels, matching Table I's "N/A".
package tec

import (
	"fmt"
	"math"
	"sort"

	"vdbscan/internal/data"
	"vdbscan/internal/geom"
)

// Config parameterizes one simulated TEC snapshot.
type Config struct {
	// N is the number of thresholded points to emit.
	N int
	// Seed makes the dataset reproducible.
	Seed uint64
	// Waves is the number of TID wave packets; default 6.
	Waves int
	// Storms is the number of storm-enhanced density blobs; default 3.
	Storms int
	// Sites is the number of receiver-site coverage clusters; default 40.
	Sites int
	// Time is the epoch in hours; it advances the TID phases and the
	// subsolar longitude, letting callers generate evolving frames.
	Time float64
	// KeepFraction is the fraction of candidate samples kept after
	// thresholding (the TEC cutoff is the corresponding quantile);
	// default 1/3.
	KeepFraction float64
	// Name overrides the dataset name; default "TEC".
	Name string
}

func (c Config) withDefaults() Config {
	if c.Waves <= 0 {
		c.Waves = 6
	}
	if c.Storms < 0 {
		c.Storms = 0
	}
	if c.Storms == 0 {
		c.Storms = 3
	}
	if c.Sites <= 0 {
		c.Sites = 40
	}
	if c.KeepFraction <= 0 || c.KeepFraction > 1 {
		c.KeepFraction = 1.0 / 3.0
	}
	if c.Name == "" {
		c.Name = "TEC"
	}
	return c
}

// wave is one TID packet: a plane wave with wavevector (kx, ky), phase
// speed, amplitude, and a moving Gaussian envelope.
type wave struct {
	kx, ky   float64 // wavevector (radians per degree)
	phase    float64
	speed    float64 // phase speed (radians per hour)
	amp      float64
	envX     float64 // envelope center
	envY     float64
	envVX    float64 // envelope drift (degrees per hour)
	envVY    float64
	envSigma float64
}

type storm struct {
	x, y  float64
	sigma float64
	amp   float64
}

// Field is a deterministic TEC field TEC(lon, lat) in TEC units (TECU).
type Field struct {
	subsolarLon float64
	waves       []wave
	storms      []storm
}

// NewField builds the deterministic TEC field for cfg (sampling state is
// separate, so the same field can be probed by examples and tests).
func NewField(cfg Config) *Field {
	cfg = cfg.withDefaults()
	rng := data.NewRNG(cfg.Seed)
	f := &Field{
		// Subsolar point circles the globe once per 24 h.
		subsolarLon: math.Mod(180+cfg.Time*15, 360),
	}
	for i := 0; i < cfg.Waves; i++ {
		// Medium-scale TIDs: wavelengths ~3–15°, mostly propagating
		// equatorward/zonal; envelopes a few tens of degrees wide.
		lambda := 3 + rng.Float64()*12
		theta := rng.Float64() * 2 * math.Pi
		k := 2 * math.Pi / lambda
		f.waves = append(f.waves, wave{
			kx:       k * math.Cos(theta),
			ky:       k * math.Sin(theta),
			phase:    rng.Float64() * 2 * math.Pi,
			speed:    (0.5 + rng.Float64()) * 2 * math.Pi, // ~1 cycle/h
			amp:      2 + rng.Float64()*4,
			envX:     rng.Float64() * 360,
			envY:     20 + rng.Float64()*140,
			envVX:    (rng.Float64() - 0.5) * 10,
			envVY:    (rng.Float64() - 0.5) * 4,
			envSigma: 15 + rng.Float64()*25,
		})
	}
	for i := 0; i < cfg.Storms; i++ {
		f.storms = append(f.storms, storm{
			x:     rng.Float64() * 360,
			y:     30 + rng.Float64()*120,
			sigma: 3 + rng.Float64()*6,
			amp:   6 + rng.Float64()*10,
		})
	}
	return f
}

// TEC evaluates the field at (lon, lat) ∈ [0,360)×[0,180) at epoch t hours.
// Latitude is shifted so 90 is the equator (matching data.Region).
func (f *Field) TEC(lon, lat, t float64) float64 {
	// Background: 10 TECU base + day-side bump + equatorial anomaly bands
	// at ±15° magnetic latitude.
	dlon := angularDist(lon, math.Mod(f.subsolarLon+t*15, 360))
	dayside := 14 * math.Exp(-dlon*dlon/(2*60*60))
	magLat := lat - 90
	anomaly := 8 * (math.Exp(-(magLat-15)*(magLat-15)/(2*8*8)) +
		math.Exp(-(magLat+15)*(magLat+15)/(2*8*8)))
	v := 10 + dayside + anomaly

	for _, w := range f.waves {
		dx := angularDist(lon, math.Mod(w.envX+w.envVX*t+3600, 360))
		dy := lat - (w.envY + w.envVY*t)
		env := math.Exp(-(dx*dx + dy*dy) / (2 * w.envSigma * w.envSigma))
		v += w.amp * env * math.Sin(w.kx*lon+w.ky*lat+w.phase+w.speed*t)
	}
	for _, s := range f.storms {
		dx := angularDist(lon, s.x)
		dy := lat - s.y
		v += s.amp * math.Exp(-(dx*dx+dy*dy)/(2*s.sigma*s.sigma))
	}
	return v
}

// angularDist is the wrapped longitude distance in degrees (≤180).
func angularDist(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 180 {
		d = 360 - d
	}
	return d
}

// Simulate produces a thresholded TEC point dataset: coverage-weighted
// candidate samples are drawn, the field is evaluated at each, and the
// top KeepFraction by TEC value are kept (exactly N points).
func Simulate(cfg Config) (*data.Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 0 {
		return nil, fmt.Errorf("tec: negative N %d", cfg.N)
	}
	field := NewField(cfg)
	// Use a sampling RNG decoupled from the field RNG so varying Time does
	// not change receiver geometry.
	rng := data.NewRNG(cfg.Seed ^ 0xC0FFEE)

	// Receiver sites: dense sampling clusters (continental GPS networks).
	type site struct{ x, y, sigma float64 }
	sites := make([]site, cfg.Sites)
	for i := range sites {
		sites[i] = site{
			x:     rng.Float64() * 360,
			y:     15 + rng.Float64()*150,
			sigma: 2 + rng.Float64()*8,
		}
	}

	nCand := int(float64(cfg.N) / cfg.KeepFraction)
	if nCand < cfg.N {
		nCand = cfg.N
	}
	type sample struct {
		p   geom.Point
		tec float64
	}
	cands := make([]sample, 0, nCand)
	for len(cands) < nCand {
		var p geom.Point
		if rng.Float64() < 0.8 {
			s := sites[rng.IntN(len(sites))]
			p = geom.Point{
				X: wrapLon(s.x + rng.NormFloat64()*s.sigma),
				Y: clampLat(s.y + rng.NormFloat64()*s.sigma),
			}
		} else {
			p = geom.Point{X: rng.Float64() * 360, Y: rng.Float64() * 180}
		}
		cands = append(cands, sample{p: p, tec: field.TEC(p.X, p.Y, cfg.Time)})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].tec > cands[b].tec })

	pts := make([]geom.Point, cfg.N)
	for i := 0; i < cfg.N; i++ {
		pts[i] = cands[i].p
	}
	return &data.Dataset{
		Name:      cfg.Name,
		Points:    pts,
		NoiseFrac: -1, // Table I: N/A
		Seed:      cfg.Seed,
	}, nil
}

// swSizes are the paper's Table I SW dataset sizes.
var swSizes = [4]int{1_864_620, 3_162_522, 4_179_436, 5_159_737}

// SW simulates dataset SW<k> (k in 1..4) with every size multiplied by
// scale (0 < scale ≤ 1); scale 1 reproduces the paper's |D|. Each SW
// dataset uses its own seed and activity level so the four differ in
// structure as well as size.
func SW(k int, scale float64) (*data.Dataset, error) {
	if k < 1 || k > 4 {
		return nil, fmt.Errorf("tec: SW index %d outside 1..4", k)
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("tec: scale %g outside (0,1]", scale)
	}
	n := int(float64(swSizes[k-1]) * scale)
	if n < 1 {
		n = 1
	}
	return Simulate(Config{
		N:      n,
		Seed:   0x5157 + uint64(k)*0x9E37,
		Waves:  4 + 2*k, // later datasets: more disturbance activity
		Storms: 2 + k,
		Sites:  30 + 10*k,
		Name:   fmt.Sprintf("SW%d", k),
	})
}

// PaperSize returns the paper's |D| for SW<k>.
func PaperSize(k int) int {
	if k < 1 || k > 4 {
		return 0
	}
	return swSizes[k-1]
}

func wrapLon(x float64) float64 {
	x = math.Mod(x, 360)
	if x < 0 {
		x += 360
	}
	return x
}

func clampLat(y float64) float64 {
	if y < 0 {
		return 0
	}
	if y > 180 {
		return 180
	}
	return y
}
