package rtree

import (
	"fmt"

	"vdbscan/internal/geom"
	"vdbscan/internal/kernel"
)

// Overlay is a small delta of mutations staged on top of a frozen Flat
// snapshot: points inserted since the freeze and snapshot-covered points
// deleted since the freeze. It is the epoch-maintenance half of the
// flat-index design — the Flat stays immutable (and therefore safe for
// concurrent, zero-allocation searches) while a stream of inserts and
// deletes accumulates here until the holder re-freezes.
//
// Searches merge the overlay in two steps: indices in the deleted set are
// filtered out of the snapshot's results, and the added buffer is
// brute-force distance-checked against the live point array. The overlay
// is kept deliberately small (the holder re-freezes once it crosses a
// size threshold), so the linear scan costs about as much as touching a
// few extra tree leaves.
//
// Mutation accounting: Muts counts every recorded event, so
// Flat.Generation() + Muts() == Tree.Generation() holds exactly when the
// overlay has captured every tree mutation since the freeze. Holders use
// that identity to detect out-of-band mutations (staleness) instead of
// serving wrong neighbors.
//
// The zero value is an empty overlay ready for use. An Overlay is not
// safe for concurrent mutation.
type Overlay struct {
	// added holds live indices not covered by the snapshot, in insertion
	// order (deterministic modulo swap-removal on delete).
	added []int32
	// addedPos maps an added index to its position in added, for O(1)
	// removal when an overlay-added point is deleted again.
	addedPos map[int32]int32
	// deletedBits marks snapshot-covered indices removed since the
	// freeze, one bit per index. A bitset rather than a map: merged
	// searches test deletion once per flat result, and on that path a
	// hash lookup per candidate dominated the whole merge cost.
	deletedBits []uint64
	numDeleted  int
	// muts counts recorded mutation events (inserts + deletes).
	muts uint64
}

// RecordInsert stages index idx (a point not covered by the snapshot).
func (o *Overlay) RecordInsert(idx int32) {
	if o.addedPos == nil {
		o.addedPos = make(map[int32]int32)
	}
	o.addedPos[idx] = int32(len(o.added))
	o.added = append(o.added, idx)
	o.muts++
}

// RecordDelete stages the removal of index idx. An index previously
// staged by RecordInsert is removed from the added buffer (it never
// existed in any snapshot); any other index is assumed snapshot-covered
// and joins the deleted set.
func (o *Overlay) RecordDelete(idx int32) {
	o.muts++
	if pos, ok := o.addedPos[idx]; ok {
		last := int32(len(o.added) - 1)
		moved := o.added[last]
		o.added[pos] = moved
		o.addedPos[moved] = pos
		o.added = o.added[:last]
		delete(o.addedPos, idx)
		return
	}
	w := int(idx) >> 6
	for len(o.deletedBits) <= w {
		o.deletedBits = append(o.deletedBits, 0)
	}
	bit := uint64(1) << (uint(idx) & 63)
	if o.deletedBits[w]&bit == 0 {
		o.deletedBits[w] |= bit
		o.numDeleted++
	}
}

// Added returns the staged insertions (do not mutate).
func (o *Overlay) Added() []int32 { return o.added }

// IsDeleted reports whether idx is in the staged deleted set.
func (o *Overlay) IsDeleted(idx int32) bool {
	w := int(idx) >> 6
	return w < len(o.deletedBits) && o.deletedBits[w]&(1<<(uint(idx)&63)) != 0
}

// NumAdded and NumDeleted report the overlay's current net delta sizes.
func (o *Overlay) NumAdded() int   { return len(o.added) }
func (o *Overlay) NumDeleted() int { return o.numDeleted }

// Muts returns the number of mutation events recorded since the last
// Reset — the quantity that must equal the tree-generation gap for the
// overlay to be a complete delta.
func (o *Overlay) Muts() uint64 { return o.muts }

// Size returns the merge cost proxy: staged insertions plus deletions.
func (o *Overlay) Size() int { return len(o.added) + o.numDeleted }

// Reset empties the overlay (after its delta was folded into a fresh
// snapshot).
func (o *Overlay) Reset() {
	o.added = o.added[:0]
	o.addedPos = nil
	o.deletedBits = nil
	o.numDeleted = 0
	o.muts = 0
}

// String implements fmt.Stringer.
func (o *Overlay) String() string {
	return fmt.Sprintf("rtree.Overlay{added=%d deleted=%d muts=%d}",
		len(o.added), o.numDeleted, o.muts)
}

// EpsSearchOverlay is Flat.EpsSearch merged with staged overlay deltas:
// snapshot results whose index sits in any overlay's deleted set are
// filtered out, and every overlay's added indices are distance-checked
// against pts (the live point array the indices address). Results append
// to dst; the triple mirrors EpsSearch (added points count as candidates,
// the brute-force pass counts as zero extra nodes). Overlays later in ovs
// stack on earlier ones — a holder mid-refreeze passes the pending
// (being-compacted) overlay first and the active one second.
func EpsSearchOverlay(f *Flat, pts []geom.Point, p geom.Point, eps float64, dst []int32, ovs ...*Overlay) (out []int32, candidates, nodesVisited int) {
	base := len(dst)
	dst, candidates, nodesVisited = f.EpsSearch(p, eps, dst)
	dst = filterDeleted(dst, base, ovs)
	epsSq := eps * eps
	anyDeletes := false
	for _, ov := range ovs {
		if ov.numDeleted > 0 {
			anyDeletes = true
			break
		}
	}
	for _, ov := range ovs {
		if !anyDeletes {
			// Insert-only stream (the common epoch shape): the whole added
			// buffer goes through the block kernel in one shot.
			candidates += len(ov.added)
			dst = kernel.FilterEpsPoints(dst, pts, ov.added, p.X, p.Y, epsSq)
			continue
		}
		for _, idx := range ov.added {
			if overlaysDelete(ovs, idx) {
				continue
			}
			candidates++
			if p.DistSq(pts[idx]) <= epsSq {
				dst = append(dst, idx)
			}
		}
	}
	return dst, candidates, nodesVisited
}

// SearchCandidatesOverlay is Flat.SearchCandidates merged with staged
// overlay deltas: deleted indices are filtered from the snapshot's
// candidates, and added points inside q are appended (each added point
// acts as its own degenerate leaf entry).
func SearchCandidatesOverlay(f *Flat, pts []geom.Point, q geom.MBB, dst []int32, ovs ...*Overlay) (out []int32, nodesVisited int) {
	base := len(dst)
	dst, nodesVisited = f.SearchCandidates(q, dst)
	dst = filterDeleted(dst, base, ovs)
	for _, ov := range ovs {
		for _, idx := range ov.added {
			if overlaysDelete(ovs, idx) {
				continue
			}
			if q.ContainsPoint(pts[idx]) {
				dst = append(dst, idx)
			}
		}
	}
	return dst, nodesVisited
}

// filterDeleted compacts dst[base:] in place, dropping indices deleted by
// any overlay. The common no-deletions case is a handful of nil-map
// checks and no writes.
func filterDeleted(dst []int32, base int, ovs []*Overlay) []int32 {
	any := false
	for _, ov := range ovs {
		if ov.numDeleted > 0 {
			any = true
			break
		}
	}
	if !any {
		return dst
	}
	kept := dst[:base]
	for _, idx := range dst[base:] {
		if !overlaysDelete(ovs, idx) {
			kept = append(kept, idx)
		}
	}
	return kept
}

// overlaysDelete reports whether any overlay's deleted set holds idx.
func overlaysDelete(ovs []*Overlay, idx int32) bool {
	for _, ov := range ovs {
		if ov.IsDeleted(idx) {
			return true
		}
	}
	return false
}
