package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vdbscan/internal/geom"
	"vdbscan/internal/grid"
)

func randPts(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	return pts
}

// collectRanges gathers a search's leaf ranges in visit order.
func collectRanges(search func(func(LeafRange)) int) ([]LeafRange, int) {
	var out []LeafRange
	n := search(func(lr LeafRange) { out = append(out, lr) })
	return out, n
}

// TestFlatMatchesTreeSearch checks that a compacted tree reproduces the
// pointer tree's Search exactly: same leaf ranges, same visit order, same
// node count — for bulk-loaded trees at several r and fanout values.
func TestFlatMatchesTreeSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 5, 100, 3000} {
		for _, r := range []int{1, 7, 70} {
			for _, fanout := range []int{2, 4, 16} {
				sorted, _ := grid.Sort(randPts(rng, n), 1)
				tr := BulkLoad(sorted, Options{R: r, Fanout: fanout})
				fl := tr.Compact()
				if fl.Len() != tr.Len() || fl.Height() != tr.Height() || fl.R() != tr.R() {
					t.Fatalf("n=%d r=%d fanout=%d: shape mismatch %v vs %v", n, r, fanout, fl, tr)
				}
				if fs, ts := fl.Stats(), tr.Stats(); fs != ts {
					t.Fatalf("n=%d r=%d fanout=%d: stats %+v vs %+v", n, r, fanout, fs, ts)
				}
				for trial := 0; trial < 30; trial++ {
					q := geom.QueryMBB(geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
						rng.Float64()*10)
					want, wantNodes := collectRanges(func(v func(LeafRange)) int { return tr.Search(q, v) })
					got, gotNodes := collectRanges(func(v func(LeafRange)) int { return fl.Search(q, v) })
					if gotNodes != wantNodes {
						t.Fatalf("n=%d r=%d fanout=%d: nodes %d vs %d", n, r, fanout, gotNodes, wantNodes)
					}
					if len(got) != len(want) {
						t.Fatalf("n=%d r=%d fanout=%d: %d ranges vs %d", n, r, fanout, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("range %d: %+v vs %+v", i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestFlatSearchCandidatesIdentical checks element-for-element equality of
// the candidate streams, including order — the property the byte-identical
// clustering guarantee rests on.
func TestFlatSearchCandidatesIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sorted, _ := grid.Sort(randPts(rng, 5000), 1)
	for _, r := range []int{1, 70, 110} {
		tr := BulkLoad(sorted, Options{R: r})
		fl := tr.Compact()
		for trial := 0; trial < 50; trial++ {
			q := geom.QueryMBB(geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				rng.Float64()*8)
			want := tr.SearchCandidates(q, nil)
			got, _ := fl.SearchCandidates(q, nil)
			if len(got) != len(want) {
				t.Fatalf("r=%d: %d candidates vs %d", r, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("r=%d candidate %d: %d vs %d", r, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFlatEpsSearchOracle checks EpsSearch against a linear-scan oracle:
// the fused search must return exactly the points within eps, in ascending
// leaf-run order, and candidate counts must match the pointer-tree search.
func TestFlatEpsSearchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sorted, _ := grid.Sort(randPts(rng, 4000), 1)
	for _, r := range []int{1, 35, 70} {
		tr := BulkLoad(sorted, Options{R: r})
		fl := tr.Compact()
		var dst []int32
		for trial := 0; trial < 50; trial++ {
			p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			eps := rng.Float64()*5 + 0.01
			dst, _, _ = fl.EpsSearch(p, eps, dst[:0])

			// Oracle: distance filter over the pointer tree's candidates
			// (identical traversal), cross-checked against a full scan.
			epsSq := eps * eps
			var want []int32
			for _, ci := range tr.SearchCandidates(geom.QueryMBB(p, eps), nil) {
				if p.DistSq(sorted[ci]) <= epsSq {
					want = append(want, ci)
				}
			}
			if len(dst) != len(want) {
				t.Fatalf("r=%d: %d neighbors vs %d", r, len(dst), len(want))
			}
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("r=%d neighbor %d: %d vs %d", r, i, dst[i], want[i])
				}
			}
			inEps := 0
			for _, q := range sorted {
				if p.DistSq(q) <= epsSq {
					inEps++
				}
			}
			if len(dst) != inEps {
				t.Fatalf("r=%d: EpsSearch found %d, full scan %d", r, len(dst), inEps)
			}
		}
	}
}

// TestFlatDynamicRecompact exercises the mutate-then-freeze cycle: grow a
// dynamic tree, Compact, verify, insert more, Compact again.
func TestFlatDynamicRecompact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := New(Options{Fanout: 8})
	check := func() {
		t.Helper()
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		fl := tr.Compact()
		huge := geom.MBB{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9}
		want := tr.SearchCandidates(huge, nil)
		got, _ := fl.SearchCandidates(huge, nil)
		if len(got) != len(want) {
			t.Fatalf("after %d inserts: %d candidates vs %d", tr.Len(), len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("candidate %d: %d vs %d", i, got[i], want[i])
			}
		}
	}
	check() // empty tree
	for _, batch := range []int{1, 10, 200, 1000} {
		for i := 0; i < batch; i++ {
			tr.Insert(geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50})
		}
		check()
	}
}

// TestFlatSharedCoords checks that CompactWithCoords shares the caller's
// SoA slices rather than copying.
func TestFlatSharedCoords(t *testing.T) {
	sorted, _ := grid.Sort(randPts(rand.New(rand.NewSource(1)), 100), 1)
	x := make([]float64, len(sorted))
	y := make([]float64, len(sorted))
	for i, p := range sorted {
		x[i], y[i] = p.X, p.Y
	}
	low := BulkLoad(sorted, Options{R: 10}).CompactWithCoords(x, y)
	high := BulkLoad(sorted, Options{R: 1}).CompactWithCoords(x, y)
	lx, _ := low.Coords()
	hx, _ := high.Coords()
	if &lx[0] != &x[0] || &hx[0] != &x[0] {
		t.Fatal("CompactWithCoords did not share the provided coordinate slices")
	}
}

// Property: flat and pointer candidate streams agree for arbitrary
// quick-generated point sets, r, and query boxes.
func TestQuickFlatEquivalence(t *testing.T) {
	f := func(raw []float64, qx, qy, qr float64, rSel, fanoutSel uint8) bool {
		pts := normPts(raw)
		if math.IsNaN(qx) || math.IsNaN(qy) || math.IsNaN(qr) {
			return true
		}
		sorted, _ := grid.Sort(pts, 1)
		tr := BulkLoad(sorted, Options{R: int(rSel)%120 + 1, Fanout: int(fanoutSel)%14 + 2})
		fl := tr.Compact()
		q := geom.QueryMBB(geom.Point{X: math.Mod(math.Abs(qx), 100), Y: math.Mod(math.Abs(qy), 100)},
			math.Mod(math.Abs(qr), 20))
		want := tr.SearchCandidates(q, nil)
		got, _ := fl.SearchCandidates(q, nil)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
