package rtree

import (
	"encoding/binary"
	"math"
	"testing"

	"vdbscan/internal/geom"
	"vdbscan/internal/grid"
)

// FuzzSearch drives the pointer tree and its compacted flat view with
// fuzzer-chosen point sets, leaf occupancies, and query boxes, checking
// both against each other and against a linear-scan oracle:
//
//   - flat and pointer SearchCandidates return identical streams;
//   - every point inside the query box appears among the candidates
//     (the superset property the distance filter relies on);
//   - EpsSearch returns exactly the linear-scan ε-neighborhood.
//
// Run with `go test -fuzz FuzzSearch ./internal/rtree` to explore; the
// seed corpus alone runs as a regular test.
func FuzzSearch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(70), uint8(16), float64(10), float64(10), float64(3))
	f.Add([]byte{}, uint8(1), uint8(2), float64(0), float64(0), float64(0))
	f.Add([]byte{255, 0, 255, 0, 128, 64, 32, 16}, uint8(110), uint8(4), float64(50), float64(50), float64(100))

	f.Fuzz(func(t *testing.T, raw []byte, rSel, fanoutSel uint8, qx, qy, qr float64) {
		if math.IsNaN(qx) || math.IsNaN(qy) || math.IsNaN(qr) ||
			math.IsInf(qx, 0) || math.IsInf(qy, 0) || math.IsInf(qr, 0) {
			return
		}
		// Decode two bytes per coordinate into a bounded grid, so the
		// fuzzer controls the spatial distribution deterministically.
		var pts []geom.Point
		for i := 0; i+3 < len(raw) && len(pts) < 2048; i += 4 {
			x := float64(binary.LittleEndian.Uint16(raw[i:])) / 655.36
			y := float64(binary.LittleEndian.Uint16(raw[i+2:])) / 655.36
			pts = append(pts, geom.Point{X: x, Y: y})
		}
		r := int(rSel)%128 + 1
		fanout := int(fanoutSel)%30 + 2
		sorted, _ := grid.Sort(pts, 1)
		tr := BulkLoad(sorted, Options{R: r, Fanout: fanout})
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		fl := tr.Compact()

		q := geom.QueryMBB(geom.Point{X: math.Mod(math.Abs(qx), 120), Y: math.Mod(math.Abs(qy), 120)},
			math.Mod(math.Abs(qr), 60))
		want := tr.SearchCandidates(q, nil)
		got, _ := fl.SearchCandidates(q, nil)
		if len(got) != len(want) {
			t.Fatalf("candidates: flat %d vs pointer %d (r=%d fanout=%d n=%d)",
				len(got), len(want), r, fanout, len(sorted))
		}
		seen := make(map[int32]bool, len(got))
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("candidate %d: flat %d vs pointer %d", i, got[i], want[i])
			}
			seen[got[i]] = true
		}
		for i, p := range sorted {
			if q.ContainsPoint(p) && !seen[int32(i)] {
				t.Fatalf("point %d inside query box missing from candidates", i)
			}
		}

		eps := math.Mod(math.Abs(qr), 60)
		if eps > 0 {
			p := geom.Point{X: math.Mod(math.Abs(qx), 120), Y: math.Mod(math.Abs(qy), 120)}
			neighbors, candidates, _ := fl.EpsSearch(p, eps, nil)
			if candidates != len(want) {
				t.Fatalf("EpsSearch examined %d candidates, Search found %d", candidates, len(want))
			}
			epsSq := eps * eps
			j := 0
			for i, sp := range sorted {
				if p.DistSq(sp) <= epsSq {
					if j >= len(neighbors) || neighbors[j] != int32(i) {
						t.Fatalf("EpsSearch disagrees with linear scan at oracle neighbor %d", i)
					}
					j++
				}
			}
			if j != len(neighbors) {
				t.Fatalf("EpsSearch returned %d neighbors, oracle %d", len(neighbors), j)
			}
		}
	})
}
