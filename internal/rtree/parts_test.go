package rtree_test

import (
	"math/rand"
	"strings"
	"testing"

	"vdbscan/internal/geom"
	"vdbscan/internal/rtree"
)

func partsPoints(n int, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rnd.Float64() * 100, Y: rnd.Float64() * 100}
	}
	return pts
}

// TestFlatPartsRoundTrip freezes trees of several shapes, tears each into
// parts, rebuilds through FlatFromParts, and requires the rebuilt Flat to
// answer ε-searches identically to the original.
func TestFlatPartsRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 500, 5000} {
		for _, r := range []int{1, 4, 70} {
			pts := partsPoints(n, int64(n*100+r))
			tr := rtree.BulkLoad(pts, rtree.Options{R: r})
			f := tr.Compact()
			x, y := f.Coords()
			g, err := rtree.FlatFromParts(f.Parts(), x, y, f.Points())
			if err != nil {
				t.Fatalf("n=%d r=%d: FlatFromParts: %v", n, r, err)
			}
			if g.Stats() != f.Stats() {
				t.Fatalf("n=%d r=%d: stats diverge: %+v vs %+v", n, r, g.Stats(), f.Stats())
			}
			rnd := rand.New(rand.NewSource(int64(n + r)))
			for q := 0; q < 50; q++ {
				p := geom.Point{X: rnd.Float64() * 100, Y: rnd.Float64() * 100}
				eps := rnd.Float64() * 10
				want, wc, wn := f.EpsSearch(p, eps, nil)
				got, gc, gn := g.EpsSearch(p, eps, nil)
				if wc != gc || wn != gn || len(want) != len(got) {
					t.Fatalf("n=%d r=%d: search diverged: %d/%d/%d vs %d/%d/%d",
						n, r, len(want), wc, wn, len(got), gc, gn)
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("n=%d r=%d: result %d: %d vs %d", n, r, i, want[i], got[i])
					}
				}
			}
		}
	}
}

// TestFlatFromPartsRejects feeds structurally corrupt parts and requires a
// descriptive error, never a panic and never a Flat that could crash a
// search.
func TestFlatFromPartsRejects(t *testing.T) {
	pts := partsPoints(300, 42)
	f := rtree.BulkLoad(pts, rtree.Options{R: 4}).Compact()
	x, y := f.Coords()

	cases := []struct {
		name string
		mut  func(p *rtree.FlatParts)
		want string
	}{
		{"entry length mismatch", func(p *rtree.FlatParts) { p.EntRef = p.EntRef[:len(p.EntRef)-1] }, "entry arrays"},
		{"empty node table", func(p *rtree.FlatParts) { p.NodeEnt = p.NodeEnt[:1] }, "node table"},
		{"range does not span", func(p *rtree.FlatParts) { p.NodeEnt[len(p.NodeEnt)-1]-- }, "span"},
		{"firstLeaf out of range", func(p *rtree.FlatParts) { p.FirstLeaf = int32(len(p.NodeEnt)) }, "firstLeaf"},
		{"size mismatch", func(p *rtree.FlatParts) { p.Size++ }, "points"},
		{"backward child ref", func(p *rtree.FlatParts) { p.EntRef[0] = 0 }, "forward"},
		{"out-of-table child ref", func(p *rtree.FlatParts) { p.EntRef[0] = int32(len(p.NodeEnt)) }, "forward"},
		{"leaf range overflow", func(p *rtree.FlatParts) {
			last := len(p.EntRef) - 1
			p.EntCnt[last] = int32(p.Size) // start+count > size
		}, "leaf entry"},
		{"negative leaf start", func(p *rtree.FlatParts) { p.EntRef[len(p.EntRef)-1] = -1 }, "leaf entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			parts := f.Parts()
			// Deep-copy the mutable arrays so cases stay independent.
			parts.NodeEnt = append([]int32(nil), parts.NodeEnt...)
			parts.EntRef = append([]int32(nil), parts.EntRef...)
			parts.EntCnt = append([]int32(nil), parts.EntCnt...)
			tc.mut(&parts)
			_, err := rtree.FlatFromParts(parts, x, y, pts)
			if err == nil {
				t.Fatalf("corrupt parts accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestFlatFromPartsRejectsDoubleRef builds a tiny fake two-level tree
// whose root references the same leaf twice — the cycle-ish shape a
// forward-only check alone would admit.
func TestFlatFromPartsRejectsDoubleRef(t *testing.T) {
	pts := partsPoints(2, 7)
	x := []float64{pts[0].X, pts[1].X}
	y := []float64{pts[0].Y, pts[1].Y}
	parts := rtree.FlatParts{
		EntMinX: []float64{0, 0, 0}, EntMinY: []float64{0, 0, 0},
		EntMaxX: []float64{100, 100, 100}, EntMaxY: []float64{100, 100, 100},
		EntRef: []int32{1, 1, 0}, EntCnt: []int32{0, 0, 2},
		NodeEnt:   []int32{0, 2, 3},
		FirstLeaf: 1,
		Height:    2, R: 2, Fanout: 16, Size: 2,
	}
	if _, err := rtree.FlatFromParts(parts, x, y, pts); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("double reference accepted: %v", err)
	}
}
