package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"vdbscan/internal/geom"
	"vdbscan/internal/grid"
)

func randomPoints(n int, extent float64, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rnd.Float64() * extent, Y: rnd.Float64() * extent}
	}
	return pts
}

// linearCandidates returns the indices of points whose coordinates fall in q,
// i.e. the exact answer the R-tree's candidate search must be a superset of
// (and equal to when r=1).
func linearCandidates(pts []geom.Point, q geom.MBB) []int32 {
	var out []int32
	for i, p := range pts {
		if q.ContainsPoint(p) {
			out = append(out, int32(i))
		}
	}
	return out
}

func sortedCopy(xs []int32) []int32 {
	c := append([]int32(nil), xs...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad(nil, Options{})
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.SearchCandidates(geom.MBB{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1}, nil)
	if len(got) != 0 {
		t.Fatalf("search on empty tree returned %v", got)
	}
}

func TestBulkLoadSinglePoint(t *testing.T) {
	pts := []geom.Point{{X: 5, Y: 5}}
	tr := BulkLoad(pts, Options{R: 4})
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.SearchCandidates(geom.QueryMBB(geom.Point{X: 5, Y: 5}, 0.1), nil)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("got %v", got)
	}
	if got := tr.SearchCandidates(geom.QueryMBB(geom.Point{X: 50, Y: 50}, 0.1), nil); len(got) != 0 {
		t.Fatalf("distant query returned %v", got)
	}
}

func TestBulkLoadInvariantsAcrossR(t *testing.T) {
	for _, r := range []int{1, 2, 7, 16, 64, 100, 1000} {
		pts, _ := grid.Sort(randomPoints(1234, 50, 1), 1)
		tr := BulkLoad(pts, Options{R: r})
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		if tr.Len() != 1234 {
			t.Fatalf("r=%d: Len = %d", r, tr.Len())
		}
	}
}

func TestSearchMatchesLinearScanR1(t *testing.T) {
	// With r=1 every leaf MBB is a point, so candidates == exact containment.
	pts, _ := grid.Sort(randomPoints(800, 40, 2), 1)
	tr := BulkLoad(pts, Options{R: 1})
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		c := geom.Point{X: rnd.Float64() * 40, Y: rnd.Float64() * 40}
		q := geom.QueryMBB(c, rnd.Float64()*5)
		got := sortedCopy(tr.SearchCandidates(q, nil))
		want := sortedCopy(linearCandidates(pts, q))
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d candidates, want %d", q, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %v: candidate mismatch at %d", q, j)
			}
		}
	}
}

func TestSearchSupersetForLargerR(t *testing.T) {
	// For r>1 the candidate set must contain every point actually inside q.
	pts, _ := grid.Sort(randomPoints(2000, 60, 4), 1)
	for _, r := range []int{4, 32, 128} {
		tr := BulkLoad(pts, Options{R: r})
		rnd := rand.New(rand.NewSource(int64(r)))
		for i := 0; i < 50; i++ {
			c := geom.Point{X: rnd.Float64() * 60, Y: rnd.Float64() * 60}
			q := geom.QueryMBB(c, 1+rnd.Float64()*3)
			got := tr.SearchCandidates(q, nil)
			inGot := make(map[int32]bool, len(got))
			for _, idx := range got {
				inGot[idx] = true
			}
			for _, idx := range linearCandidates(pts, q) {
				if !inGot[idx] {
					t.Fatalf("r=%d: point %d inside %v missing from candidates", r, idx, q)
				}
			}
		}
	}
}

func TestHigherRShrinksTree(t *testing.T) {
	pts, _ := grid.Sort(randomPoints(10000, 100, 5), 1)
	s1 := BulkLoad(pts, Options{R: 1}).Stats()
	s100 := BulkLoad(pts, Options{R: 100}).Stats()
	if s100.Nodes >= s1.Nodes {
		t.Errorf("r=100 nodes %d should be < r=1 nodes %d", s100.Nodes, s1.Nodes)
	}
	if s100.Height > s1.Height {
		t.Errorf("r=100 height %d should be <= r=1 height %d", s100.Height, s1.Height)
	}
	if s1.LeafEntries != 10000 {
		t.Errorf("r=1 should have one leaf entry per point, got %d", s1.LeafEntries)
	}
	if want := 100; s100.LeafEntries != want {
		t.Errorf("r=100 leaf entries = %d, want %d", s100.LeafEntries, want)
	}
}

func TestHigherRVisitsFewerNodes(t *testing.T) {
	pts, _ := grid.Sort(randomPoints(20000, 100, 6), 1)
	t1 := BulkLoad(pts, Options{R: 1})
	t100 := BulkLoad(pts, Options{R: 100})
	q := geom.QueryMBB(geom.Point{X: 50, Y: 50}, 2)
	v1 := t1.Search(q, func(LeafRange) {})
	v100 := t100.Search(q, func(LeafRange) {})
	if v100 >= v1 {
		t.Errorf("r=100 visited %d nodes, r=1 visited %d; expected fewer", v100, v1)
	}
}

func TestDynamicInsert(t *testing.T) {
	tr := New(Options{Fanout: 4})
	pts := randomPoints(500, 30, 7)
	for _, p := range pts {
		tr.Insert(p)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Dynamic tree with r=1: candidates == exact containment.
	rnd := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		q := geom.QueryMBB(geom.Point{X: rnd.Float64() * 30, Y: rnd.Float64() * 30}, rnd.Float64()*4)
		got := sortedCopy(tr.SearchCandidates(q, nil))
		want := sortedCopy(linearCandidates(tr.Points(), q))
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d, want %d", q, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %v: mismatch at %d", q, j)
			}
		}
	}
}

func TestDynamicInsertDuplicates(t *testing.T) {
	tr := New(Options{Fanout: 3})
	for i := 0; i < 20; i++ {
		tr.Insert(geom.Point{X: 1, Y: 1})
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.SearchCandidates(geom.QueryMBB(geom.Point{X: 1, Y: 1}, 0.5), nil)
	if len(got) != 20 {
		t.Fatalf("expected all 20 duplicates, got %d", len(got))
	}
}

func TestInsertGrowsHeight(t *testing.T) {
	tr := New(Options{Fanout: 2})
	for i := 0; i < 64; i++ {
		tr.Insert(geom.Point{X: float64(i), Y: float64(i % 8)})
	}
	if tr.Height() < 3 {
		t.Errorf("fanout-2 tree with 64 points should be at least height 3, got %d", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkVsDynamicSameAnswers(t *testing.T) {
	raw := randomPoints(600, 25, 9)
	sorted, _ := grid.Sort(raw, 1)
	bulk := BulkLoad(sorted, Options{R: 8})
	dyn := New(Options{})
	for _, p := range raw {
		dyn.Insert(p)
	}
	rnd := rand.New(rand.NewSource(10))
	for i := 0; i < 40; i++ {
		c := geom.Point{X: rnd.Float64() * 25, Y: rnd.Float64() * 25}
		q := geom.QueryMBB(c, 0.5+rnd.Float64()*2)
		// Compare as point-value multisets since index spaces differ.
		collect := func(tr *Tree) []geom.Point {
			idxs := tr.SearchCandidates(q, nil)
			var out []geom.Point
			for _, idx := range idxs {
				p := tr.Points()[idx]
				if q.ContainsPoint(p) { // filter candidates to exact
					out = append(out, p)
				}
			}
			sort.Slice(out, func(a, b int) bool {
				if out[a].X != out[b].X {
					return out[a].X < out[b].X
				}
				return out[a].Y < out[b].Y
			})
			return out
		}
		a, b := collect(bulk), collect(dyn)
		if len(a) != len(b) {
			t.Fatalf("query %v: bulk %d vs dynamic %d exact matches", q, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %v: point mismatch at %d: %v vs %v", q, j, a[j], b[j])
			}
		}
	}
}

func TestSearchCandidatesAppendsToDst(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	tr := BulkLoad(pts, Options{})
	dst := make([]int32, 0, 8)
	dst = append(dst, 99)
	got := tr.SearchCandidates(geom.MBB{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2}, dst)
	if len(got) != 3 || got[0] != 99 {
		t.Fatalf("expected append semantics, got %v", got)
	}
}

func TestStatsAndString(t *testing.T) {
	pts, _ := grid.Sort(randomPoints(1000, 50, 11), 1)
	tr := BulkLoad(pts, Options{R: 10, Fanout: 8})
	s := tr.Stats()
	if s.Points != 1000 || s.R != 10 || s.Fanout != 8 {
		t.Errorf("stats = %+v", s)
	}
	if s.LeafEntries != 100 {
		t.Errorf("leaf entries = %d, want 100", s.LeafEntries)
	}
	if tr.String() == "" {
		t.Error("String() empty")
	}
}
