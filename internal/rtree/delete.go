package rtree

import (
	"errors"

	"vdbscan/internal/geom"
)

// ErrPackedTree is returned by Delete on trees whose leaf entries cover
// more than one point (bulk-loaded with R > 1): removing a single point
// from a packed run would break the contiguous range mapping. Rebuild such
// trees instead — they are designed as immutable snapshots.
var ErrPackedTree = errors.New("rtree: cannot delete from a packed (R > 1) tree")

// minFill is the underflow threshold for condense-tree.
func (t *Tree) minFill() int { return t.fanout / 2 }

// Delete removes one indexed occurrence of point p from a dynamic (r = 1)
// tree, returning whether a matching entry was found. The backing point
// array keeps the deleted slot (indices of other points remain stable);
// the entry simply becomes unreachable.
//
// The implementation follows Guttman's delete: find the leaf, remove the
// entry, condense the tree upward (underfull nodes are dissolved and their
// entries reinserted), and shorten the root when it has a single child.
func (t *Tree) Delete(p geom.Point) (bool, error) {
	return t.delete(p, -1)
}

// DeleteIndex removes the entry for the specific point index idx (as
// returned by Search/NearestK), which must hold point p. Unlike Delete,
// it never removes a different entry with equal coordinates — required by
// callers (e.g. incremental DBSCAN) whose per-index bookkeeping must stay
// aligned with the tree under duplicate points.
func (t *Tree) DeleteIndex(p geom.Point, idx int32) (bool, error) {
	return t.delete(p, idx)
}

// delete removes one entry holding p; when wantIdx >= 0 only the entry
// with that exact start index matches.
func (t *Tree) delete(p geom.Point, wantIdx int32) (bool, error) {
	if t.r != 1 {
		return false, ErrPackedTree
	}
	leaf, entryIdx, path := t.findLeaf(t.root, p, wantIdx, nil)
	if leaf == nil {
		return false, nil
	}
	if leaf.entries[entryIdx].count != 1 {
		return false, ErrPackedTree
	}
	// Remove the entry.
	leaf.entries = append(leaf.entries[:entryIdx], leaf.entries[entryIdx+1:]...)
	t.size--
	t.gen++

	// Condense: walk back up, dissolving underfull non-root nodes.
	var orphans []entry
	for i := len(path) - 1; i >= 0; i-- {
		parent, childIdx := path[i].node, path[i].childIdx
		child := parent.entries[childIdx].child
		if len(child.entries) < t.minFill() {
			// Dissolve: collect the child's entries for reinsertion.
			orphans = append(orphans, child.entries...)
			parent.entries = append(parent.entries[:childIdx], parent.entries[childIdx+1:]...)
		} else {
			parent.entries[childIdx].mbb = child.mbb()
		}
	}

	// Reinsert orphans at their original level. Leaf entries reinsert like
	// points; interior orphans carry whole subtrees — for simplicity (and
	// because fanout/2 subtrees are rare at realistic fanouts) we reinsert
	// their leaf descendants' entries.
	for _, o := range orphans {
		t.reinsert(o)
	}

	// Shorten the root while it is a single-child interior node.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
		t.height = 1
	}
	return true, nil
}

// pathStep records the descent taken by findLeaf.
type pathStep struct {
	node     *node
	childIdx int
}

// findLeaf locates the leaf node and entry index holding point p (and,
// when wantIdx >= 0, the specific start index), along with the
// root-to-parent path.
func (t *Tree) findLeaf(n *node, p geom.Point, wantIdx int32, path []pathStep) (*node, int, []pathStep) {
	if n.leaf {
		for i, e := range n.entries {
			if e.count != 1 || t.pts[e.start] != p {
				continue
			}
			if wantIdx >= 0 && e.start != wantIdx {
				continue
			}
			return n, i, path
		}
		return nil, 0, path
	}
	q := geom.MBBOf(p)
	for i, e := range n.entries {
		if !e.mbb.Intersects(q) {
			continue
		}
		leaf, idx, found := t.findLeaf(e.child, p, wantIdx, append(path, pathStep{n, i}))
		if leaf != nil {
			return leaf, idx, found
		}
	}
	return nil, 0, path
}

// reinsert places an orphaned entry back into the tree. Leaf entries are
// inserted directly; interior entries are flattened to their leaf entries.
func (t *Tree) reinsert(e entry) {
	if e.child == nil {
		split := t.insert(t.root, e)
		if split != nil {
			t.root = &node{
				leaf: false,
				entries: []entry{
					{mbb: t.root.mbb(), child: t.root},
					{mbb: split.mbb(), child: split},
				},
			}
			t.height++
		}
		return
	}
	var walk func(n *node)
	walk = func(n *node) {
		for _, c := range n.entries {
			if n.leaf {
				t.reinsert(c)
			} else {
				walk(c.child)
			}
		}
	}
	if e.child.leaf {
		for _, c := range e.child.entries {
			t.reinsert(c)
		}
	} else {
		walk(e.child)
	}
}
