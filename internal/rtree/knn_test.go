package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"vdbscan/internal/geom"
	"vdbscan/internal/grid"
)

// bruteKNN is the oracle: exact k nearest by linear scan.
func bruteKNN(pts []geom.Point, q geom.Point, k int) []Neighbor {
	all := make([]Neighbor, len(pts))
	for i, p := range pts {
		all[i] = Neighbor{Index: int32(i), DistSq: q.DistSq(p)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].DistSq != all[b].DistSq {
			return all[a].DistSq < all[b].DistSq
		}
		return all[a].Index < all[b].Index
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestNearestKMatchesBruteForce(t *testing.T) {
	for _, r := range []int{1, 8, 70} {
		pts, _ := grid.Sort(randomPoints(1500, 50, 60), 1)
		tr := BulkLoad(pts, Options{R: r})
		rnd := rand.New(rand.NewSource(int64(61 + r)))
		for trial := 0; trial < 40; trial++ {
			q := geom.Point{X: rnd.Float64() * 50, Y: rnd.Float64() * 50}
			k := 1 + rnd.Intn(20)
			got := tr.NearestK(q, k)
			want := bruteKNN(pts, q, k)
			if len(got) != len(want) {
				t.Fatalf("r=%d k=%d: got %d results, want %d", r, k, len(got), len(want))
			}
			for i := range want {
				// Distances must match exactly; indices may differ only on
				// exact distance ties.
				if got[i].DistSq != want[i].DistSq {
					t.Fatalf("r=%d k=%d rank %d: distSq %g, want %g",
						r, k, i, got[i].DistSq, want[i].DistSq)
				}
			}
		}
	}
}

func TestNearestKEdgeCases(t *testing.T) {
	empty := BulkLoad(nil, Options{})
	if got := empty.NearestK(geom.Point{X: 0, Y: 0}, 5); got != nil {
		t.Errorf("empty tree: %v", got)
	}
	pts := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	tr := BulkLoad(pts, Options{})
	if got := tr.NearestK(geom.Point{X: 0, Y: 0}, 0); got != nil {
		t.Errorf("k=0: %v", got)
	}
	// k larger than the point count returns everything.
	got := tr.NearestK(geom.Point{X: 0, Y: 0}, 10)
	if len(got) != 2 {
		t.Fatalf("k>n: %d results", len(got))
	}
	if got[0].Index != 0 || got[1].Index != 1 {
		t.Errorf("order: %v", got)
	}
}

func TestNearestKSelf(t *testing.T) {
	// Querying at an indexed point: that point is rank 0 with distance 0.
	pts, _ := grid.Sort(randomPoints(300, 30, 62), 1)
	tr := BulkLoad(pts, Options{R: 16})
	for i := 0; i < 20; i++ {
		got := tr.NearestK(pts[i], 1)
		if len(got) != 1 || got[0].DistSq != 0 {
			t.Fatalf("self query %d: %v", i, got)
		}
	}
}

func TestNearestKAscendingOrder(t *testing.T) {
	pts, _ := grid.Sort(randomPoints(800, 40, 63), 1)
	tr := BulkLoad(pts, Options{R: 32})
	got := tr.NearestK(geom.Point{X: 20, Y: 20}, 50)
	for i := 1; i < len(got); i++ {
		if got[i].DistSq < got[i-1].DistSq {
			t.Fatalf("results not ascending at %d", i)
		}
	}
}

func TestNearestKOnDynamicTree(t *testing.T) {
	tr := New(Options{Fanout: 4})
	pts := randomPoints(400, 25, 64)
	for _, p := range pts {
		tr.Insert(p)
	}
	q := geom.Point{X: 12, Y: 12}
	got := tr.NearestK(q, 7)
	want := bruteKNN(pts, q, 7)
	for i := range want {
		if got[i].DistSq != want[i].DistSq {
			t.Fatalf("rank %d: %g vs %g", i, got[i].DistSq, want[i].DistSq)
		}
	}
}
