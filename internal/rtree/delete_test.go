package rtree

import (
	"math/rand"
	"testing"

	"vdbscan/internal/geom"
	"vdbscan/internal/grid"
)

func TestDeleteBasic(t *testing.T) {
	tr := New(Options{Fanout: 4})
	pts := randomPoints(100, 20, 50)
	for _, p := range pts {
		tr.Insert(p)
	}
	found, err := tr.Delete(pts[10])
	if err != nil || !found {
		t.Fatalf("Delete: found=%v err=%v", found, err)
	}
	if tr.Len() != 99 {
		t.Errorf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		// CheckInvariants counts covered points vs size; after delete the
		// leaf coverage is size, still consistent.
		t.Fatal(err)
	}
	// The deleted point is no longer returned.
	got := tr.SearchCandidates(geom.QueryMBB(pts[10], 1e-9), nil)
	for _, idx := range got {
		if tr.Points()[idx] == pts[10] && idx == 10 {
			t.Error("deleted point still indexed")
		}
	}
}

func TestDeleteMissingPoint(t *testing.T) {
	tr := New(Options{})
	tr.Insert(geom.Point{X: 1, Y: 1})
	found, err := tr.Delete(geom.Point{X: 5, Y: 5})
	if err != nil || found {
		t.Errorf("missing delete: found=%v err=%v", found, err)
	}
	if tr.Len() != 1 {
		t.Errorf("Len changed to %d", tr.Len())
	}
}

func TestDeletePackedTreeRejected(t *testing.T) {
	pts, _ := grid.Sort(randomPoints(100, 20, 51), 1)
	tr := BulkLoad(pts, Options{R: 10})
	if _, err := tr.Delete(pts[0]); err != ErrPackedTree {
		t.Errorf("packed delete err = %v, want ErrPackedTree", err)
	}
}

func TestDeleteAllPoints(t *testing.T) {
	tr := New(Options{Fanout: 3})
	pts := randomPoints(60, 15, 52)
	for _, p := range pts {
		tr.Insert(p)
	}
	for i, p := range pts {
		found, err := tr.Delete(p)
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if !found {
			t.Fatalf("point %d not found", i)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
	// Tree is usable again.
	tr.Insert(geom.Point{X: 1, Y: 2})
	if got := tr.SearchCandidates(geom.QueryMBB(geom.Point{X: 1, Y: 2}, 0.1), nil); len(got) != 1 {
		t.Errorf("insert after drain: %v", got)
	}
}

func TestDeleteDuplicatesOneAtATime(t *testing.T) {
	tr := New(Options{Fanout: 4})
	for i := 0; i < 10; i++ {
		tr.Insert(geom.Point{X: 3, Y: 3})
	}
	for i := 9; i >= 0; i-- {
		found, err := tr.Delete(geom.Point{X: 3, Y: 3})
		if err != nil || !found {
			t.Fatalf("dup delete %d: found=%v err=%v", i, found, err)
		}
		got := tr.SearchCandidates(geom.QueryMBB(geom.Point{X: 3, Y: 3}, 0.1), nil)
		if len(got) != i {
			t.Fatalf("after %d deletes: %d remain", 10-i, len(got))
		}
	}
}

func TestDeleteRandomizedSearchStaysExact(t *testing.T) {
	rnd := rand.New(rand.NewSource(53))
	tr := New(Options{Fanout: 5})
	pts := randomPoints(400, 30, 54)
	alive := make(map[int]bool, len(pts))
	for i, p := range pts {
		tr.Insert(p)
		alive[i] = true
	}
	// Interleave deletions with search validation.
	order := rnd.Perm(len(pts))
	for step, idx := range order[:300] {
		found, err := tr.Delete(pts[idx])
		if err != nil || !found {
			t.Fatalf("step %d: found=%v err=%v", step, found, err)
		}
		alive[idx] = false
		if step%50 != 0 {
			continue
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		q := geom.QueryMBB(geom.Point{X: rnd.Float64() * 30, Y: rnd.Float64() * 30}, 2)
		got := map[geom.Point]int{}
		for _, ci := range tr.SearchCandidates(q, nil) {
			got[tr.Points()[ci]]++
		}
		want := map[geom.Point]int{}
		for i, p := range pts {
			if alive[i] && q.ContainsPoint(p) {
				want[p]++
			}
		}
		for p, c := range want {
			if got[p] != c {
				t.Fatalf("step %d: point %v count %d, want %d", step, p, got[p], c)
			}
		}
		for p, c := range got {
			if want[p] != c {
				t.Fatalf("step %d: stale point %v in results", step, p)
			}
		}
	}
}

func TestDeleteIndexWithDuplicates(t *testing.T) {
	// Ten identical points: DeleteIndex must remove exactly the requested
	// entry, never a twin's.
	tr := New(Options{Fanout: 4})
	p := geom.Point{X: 7, Y: 7}
	for i := 0; i < 10; i++ {
		tr.Insert(p)
	}
	// Delete index 3 specifically; indices 0-2 and 4-9 must remain.
	found, err := tr.DeleteIndex(p, 3)
	if err != nil || !found {
		t.Fatalf("DeleteIndex: %v %v", found, err)
	}
	remaining := map[int32]bool{}
	for _, ci := range tr.SearchCandidates(geom.QueryMBB(p, 0.1), nil) {
		remaining[ci] = true
	}
	if len(remaining) != 9 || remaining[3] {
		t.Fatalf("remaining = %v", remaining)
	}
	// Deleting the same index again fails cleanly.
	found, err = tr.DeleteIndex(p, 3)
	if err != nil || found {
		t.Fatalf("second DeleteIndex: %v %v", found, err)
	}
	// Index with wrong point value is not found.
	found, err = tr.DeleteIndex(geom.Point{X: 0, Y: 0}, 4)
	if err != nil || found {
		t.Fatalf("mismatched value: %v %v", found, err)
	}
}
