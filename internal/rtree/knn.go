package rtree

import (
	"container/heap"
	"math"

	"vdbscan/internal/geom"
)

// Neighbor is one k-nearest-neighbor result.
type Neighbor struct {
	// Index is the point's position in Points().
	Index int32
	// DistSq is the squared Euclidean distance to the query point.
	DistSq float64
}

// NearestK returns the k nearest indexed points to q in ascending distance
// order, using best-first branch-and-bound over node MBBs (Hjaltason &
// Samet). Fewer than k results are returned when the tree holds fewer
// points. Ties are broken by point index for determinism.
//
// The search is exact for any leaf occupancy: a packed leaf entry is
// expanded into its individual points when reached.
func (t *Tree) NearestK(q geom.Point, k int) []Neighbor {
	if k <= 0 || t.root == nil || t.size == 0 {
		return nil
	}
	pq := &nnQueue{}
	heap.Push(pq, nnItem{node: t.root, distSq: t.root.mbb().MinDistSq(q)})

	result := make([]Neighbor, 0, k)
	// worst returns the current k-th best distance (or +inf).
	worst := func() float64 {
		if len(result) < k {
			return math.Inf(1)
		}
		return result[len(result)-1].DistSq
	}
	insert := func(n Neighbor) {
		// Insertion into the sorted result list, keeping at most k.
		lo := 0
		for lo < len(result) &&
			(result[lo].DistSq < n.DistSq ||
				(result[lo].DistSq == n.DistSq && result[lo].Index < n.Index)) {
			lo++
		}
		if lo >= k {
			return
		}
		if len(result) < k {
			result = append(result, Neighbor{})
		}
		copy(result[lo+1:], result[lo:])
		result[lo] = n
	}

	for pq.Len() > 0 {
		item := heap.Pop(pq).(nnItem)
		if item.distSq > worst() {
			break // every remaining node is farther than the k-th best
		}
		n := item.node
		if n.leaf {
			for _, e := range n.entries {
				if e.mbb.MinDistSq(q) > worst() {
					continue
				}
				end := int(e.start) + int(e.count)
				for i := int(e.start); i < end; i++ {
					d := q.DistSq(t.pts[i])
					if d <= worst() {
						insert(Neighbor{Index: int32(i), DistSq: d})
					}
				}
			}
			continue
		}
		for _, e := range n.entries {
			d := e.mbb.MinDistSq(q)
			if d <= worst() {
				heap.Push(pq, nnItem{node: e.child, distSq: d})
			}
		}
	}
	return result
}

type nnItem struct {
	node   *node
	distSq float64
}

type nnQueue []nnItem

func (q nnQueue) Len() int           { return len(q) }
func (q nnQueue) Less(a, b int) bool { return q[a].distSq < q[b].distSq }
func (q nnQueue) Swap(a, b int)      { q[a], q[b] = q[b], q[a] }
func (q *nnQueue) Push(x any)        { *q = append(*q, x.(nnItem)) }
func (q *nnQueue) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }
