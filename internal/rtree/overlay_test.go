package rtree

import (
	"math"
	"math/rand"
	"testing"

	"vdbscan/internal/geom"
)

// linearEps is the oracle: brute-force ε-neighbors over the live set.
func linearEps(pts []geom.Point, live []bool, q geom.Point, eps float64) []int32 {
	epsSq := eps * eps
	var out []int32
	for i, p := range pts {
		if live[i] && q.DistSq(p) <= epsSq {
			out = append(out, int32(i))
		}
	}
	return out
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOverlayMergedSearchOracle freezes a snapshot, then churns inserts
// and deletes through an Overlay and checks every merged search against
// the linear oracle — including deletes of snapshot-covered points,
// deletes of overlay-added points, and queries landing on both.
func TestOverlayMergedSearchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New(Options{R: 4})
	var pts []geom.Point
	var live []bool
	for i := 0; i < 150; i++ {
		p := geom.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		tr.Insert(p)
		pts = append(pts, p)
		live = append(live, true)
	}
	f := tr.Compact()
	var ov Overlay

	check := func(tag string) {
		t.Helper()
		for trial := 0; trial < 12; trial++ {
			q := geom.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
			eps := 0.5 + rng.Float64()*2.5
			got, _, _ := EpsSearchOverlay(f, tr.Points(), q, eps, nil, &ov)
			want := linearEps(tr.Points(), live, q, eps)
			if !equalInt32(sortedCopy(got), sortedCopy(want)) {
				t.Fatalf("%s trial %d: merged search %v != oracle %v (q=%v eps=%v, %v)",
					tag, trial, sortedCopy(got), sortedCopy(want), q, eps, &ov)
			}
			// MBB candidate merge must stay a superset of the ε result.
			cand, _ := SearchCandidatesOverlay(f, tr.Points(), geom.QueryMBB(q, eps), nil, &ov)
			inCand := map[int32]bool{}
			for _, i := range cand {
				inCand[i] = true
			}
			for _, i := range want {
				if !inCand[i] {
					t.Fatalf("%s trial %d: candidate merge missing neighbor %d", tag, trial, i)
				}
			}
		}
	}

	check("fresh snapshot")
	for round := 0; round < 6; round++ {
		for k := 0; k < 20; k++ {
			if rng.Float64() < 0.4 {
				// Delete a random live point (snapshot-covered or added).
				var liveIdx []int32
				for i, l := range live {
					if l {
						liveIdx = append(liveIdx, int32(i))
					}
				}
				i := liveIdx[rng.Intn(len(liveIdx))]
				found, err := tr.DeleteIndex(tr.Points()[i], i)
				if err != nil || !found {
					t.Fatalf("delete %d: found=%v err=%v", i, found, err)
				}
				ov.RecordDelete(i)
				live[i] = false
			} else {
				p := geom.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
				idx := int32(len(tr.Points()))
				tr.Insert(p)
				ov.RecordInsert(idx)
				pts = append(pts, p)
				live = append(live, true)
			}
		}
		// The overlay must account for the full generation gap.
		if f.Generation()+ov.Muts() != tr.Generation() {
			t.Fatalf("round %d: generation identity broken: flat=%d + muts=%d != tree=%d",
				round, f.Generation(), ov.Muts(), tr.Generation())
		}
		check("churn round")
	}
}

// TestOverlayDeleteOfAddedPoint pins RecordDelete's two regimes: an
// overlay-added index vanishes from the added buffer (it was never in
// any snapshot), while a snapshot-covered index joins the deleted set.
func TestOverlayDeleteOfAddedPoint(t *testing.T) {
	var ov Overlay
	ov.RecordInsert(100)
	ov.RecordInsert(101)
	ov.RecordInsert(102)
	ov.RecordDelete(101) // swap-removes from added
	if ov.NumAdded() != 2 || ov.NumDeleted() != 0 {
		t.Fatalf("delete of added point: %v", &ov)
	}
	if got := sortedCopy(ov.Added()); !equalInt32(got, []int32{100, 102}) {
		t.Fatalf("added buffer after swap-remove: %v", got)
	}
	ov.RecordDelete(7) // snapshot-covered
	if !ov.IsDeleted(7) || ov.NumDeleted() != 1 {
		t.Fatalf("delete of covered point: %v", &ov)
	}
	// Every event counted, including the net-zero insert+delete pair.
	if ov.Muts() != 5 {
		t.Fatalf("muts = %d, want 5", ov.Muts())
	}
	ov.Reset()
	if ov.Muts() != 0 || ov.Size() != 0 {
		t.Fatalf("reset left state: %v", &ov)
	}
}

// TestStackedOverlays exercises the mid-refreeze shape: a pending
// overlay (covered by the in-flight clone) stacked under the active one,
// with the active overlay deleting a point the pending one added.
func TestStackedOverlays(t *testing.T) {
	tr := New(Options{R: 4})
	for i := 0; i < 40; i++ {
		tr.Insert(geom.Point{X: float64(i % 8), Y: float64(i / 8)})
	}
	f := tr.Compact()

	var pending, active Overlay
	a := geom.Point{X: 2.1, Y: 2.1}
	tr.Insert(a)
	pending.RecordInsert(40)
	b := geom.Point{X: 2.2, Y: 2.2}
	tr.Insert(b)
	active.RecordInsert(41)
	// Active deletes the pending-added point: pending still lists it, so
	// the merge must honor the later overlay's deletion.
	found, err := tr.DeleteIndex(a, 40)
	if err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	active.RecordDelete(40)

	got, _, _ := EpsSearchOverlay(f, tr.Points(), geom.Point{X: 2.15, Y: 2.15}, 0.2, nil, &pending, &active)
	if !equalInt32(sortedCopy(got), []int32{41}) {
		t.Fatalf("stacked merge = %v, want [41]", sortedCopy(got))
	}
	if f.Generation()+pending.Muts()+active.Muts() != tr.Generation() {
		t.Fatalf("stacked generation identity broken")
	}
}

// TestGenerationCounting pins the generation contract: every insert and
// every delete bumps the tree's generation by exactly one, and Compact
// stamps the tree's generation into the Flat.
func TestGenerationCounting(t *testing.T) {
	tr := New(Options{R: 4})
	if tr.Generation() != 0 {
		t.Fatalf("fresh tree generation = %d", tr.Generation())
	}
	for i := 0; i < 10; i++ {
		tr.Insert(geom.Point{X: float64(i), Y: 0})
	}
	if tr.Generation() != 10 {
		t.Fatalf("after 10 inserts: generation = %d", tr.Generation())
	}
	if found, err := tr.DeleteIndex(geom.Point{X: 3, Y: 0}, 3); err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	if tr.Generation() != 11 {
		t.Fatalf("after delete: generation = %d", tr.Generation())
	}
	f := tr.Compact()
	if f.Generation() != tr.Generation() {
		t.Fatalf("flat generation %d != tree generation %d", f.Generation(), tr.Generation())
	}
}

// TestSnapshotIndependence verifies a structural clone is immune to
// subsequent mutations of the original: its compacted search answers
// stay exactly the pre-mutation answers.
func TestSnapshotIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := New(Options{R: 4})
	for i := 0; i < 120; i++ {
		tr.Insert(geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10})
	}
	frozenLen := tr.Len()
	frozenGen := tr.Generation()
	clone := tr.Snapshot()

	// Mutate the original heavily: grows the shared points array (forcing
	// reallocation past the clone's capped length) and deletes entries.
	for i := 0; i < 200; i++ {
		tr.Insert(geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10})
	}
	for i := 0; i < 30; i++ {
		idx := int32(rng.Intn(frozenLen))
		tr.DeleteIndex(tr.Points()[idx], idx) // ignore not-found on repeats
	}

	if clone.Len() != frozenLen || clone.Generation() != frozenGen {
		t.Fatalf("clone mutated: len=%d gen=%d, want len=%d gen=%d",
			clone.Len(), clone.Generation(), frozenLen, frozenGen)
	}
	f := clone.Compact()
	if f.Len() != frozenLen || f.Generation() != frozenGen {
		t.Fatalf("compacted clone: len=%d gen=%d, want len=%d gen=%d",
			f.Len(), f.Generation(), frozenLen, frozenGen)
	}
	// Every clone search equals a linear scan over the frozen prefix.
	pts := clone.Points()
	if len(pts) != frozenLen {
		t.Fatalf("clone points length %d, want %d", len(pts), frozenLen)
	}
	live := make([]bool, frozenLen)
	for i := range live {
		live[i] = true
	}
	for trial := 0; trial < 20; trial++ {
		q := geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		got, _, _ := f.EpsSearch(q, 1.0, nil)
		want := linearEps(pts, live, q, 1.0)
		if !equalInt32(sortedCopy(got), sortedCopy(want)) {
			t.Fatalf("trial %d: clone search diverged after original mutated", trial)
		}
	}
}

// TestCheckCompactBounds pins the int32 offset guard: entry or point
// counts past math.MaxInt32 must produce ErrFlatTooLarge rather than a
// silent overflowing cast.
func TestCheckCompactBounds(t *testing.T) {
	if err := checkCompactBounds(100, 100); err != nil {
		t.Fatalf("small tree rejected: %v", err)
	}
	if err := checkCompactBounds(math.MaxInt32, math.MaxInt32); err != nil {
		t.Fatalf("exactly MaxInt32 rejected: %v", err)
	}
	big := int(math.MaxInt32) + 1
	if big < 0 {
		t.Skip("32-bit int platform cannot represent the overflowing count")
	}
	if err := checkCompactBounds(big, 100); err == nil {
		t.Fatal("entry count past MaxInt32 accepted")
	}
	if err := checkCompactBounds(100, big); err == nil {
		t.Fatal("point count past MaxInt32 accepted")
	}
}
