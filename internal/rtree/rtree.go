// Package rtree implements the R-tree spatial index (Guttman, SIGMOD 1984)
// specialized for VariantDBSCAN's workload (paper §IV-A).
//
// The distinguishing feature versus a textbook R-tree is the leaf layout:
// each leaf *entry* covers a contiguous run of r points in a spatially
// pre-sorted point array (see internal/grid), and the entry stores the run's
// minimum bounding box (MBB). A lookup into the shared point array maps an
// overlapping MBB to its candidate points. Raising r
//
//   - shrinks the tree (⌈|D|/r⌉ leaf entries instead of |D|), cutting the
//     pointer-chasing memory traffic that makes 2-D DBSCAN memory-bound, but
//   - grows the MBB areas, so more candidate points must be distance-filtered
//     (extra compute).
//
// The paper exploits this compute-for-memory trade with r ≈ 70–110 for the
// ε-search tree T_low, and keeps a second tree T_high with r = 1 for exact
// cluster-MBB sweeps (Algorithm 3, line 11).
//
// Two construction paths are provided:
//
//   - BulkLoad packs a pre-sorted point array bottom-up (the paper's path);
//   - New + Insert grows a dynamic tree one point at a time using Guttman's
//     quadratic split, for callers with incremental data.
package rtree

import (
	"fmt"

	"vdbscan/internal/geom"
)

// DefaultFanout is the default maximum number of entries per tree node.
// 16 keeps interior nodes within one or two cache lines of MBBs while
// keeping the tree shallow.
const DefaultFanout = 16

// entry is one slot in a node: either a child pointer (interior) or a run of
// points [start, start+count) in the tree's point array (leaf).
type entry struct {
	mbb   geom.MBB
	child *node // nil in leaf nodes
	start int32 // leaf only
	count int32 // leaf only
}

type node struct {
	leaf    bool
	entries []entry
}

func (n *node) mbb() geom.MBB {
	b := geom.EmptyMBB()
	for _, e := range n.entries {
		b = b.Union(e.mbb)
	}
	return b
}

// Tree is an R-tree over a shared array of 2-D points. The tree stores point
// indices, never coordinates, so the caller's point array is the single
// source of truth; Points returns it.
type Tree struct {
	root   *node
	pts    []geom.Point
	fanout int
	r      int // points per leaf entry used at construction (1 for dynamic)
	size   int // number of indexed points
	height int
	// gen counts structural mutations (inserts and deletes) since
	// construction. A Flat snapshot records the generation it was frozen
	// at, so any holder of both can detect that the snapshot is stale
	// instead of serving pre-mutation search results.
	gen uint64
}

// Options configures tree construction.
type Options struct {
	// Fanout is the maximum entries per node; DefaultFanout when zero.
	Fanout int
	// R is the number of points packed per leaf MBB (BulkLoad only);
	// 1 when zero.
	R int
}

func (o Options) withDefaults() Options {
	if o.Fanout <= 0 {
		o.Fanout = DefaultFanout
	}
	if o.Fanout < 2 {
		o.Fanout = 2
	}
	if o.R <= 0 {
		o.R = 1
	}
	return o
}

// New returns an empty dynamic tree over an initially empty point set.
func New(opt Options) *Tree {
	opt = opt.withDefaults()
	return &Tree{
		root:   &node{leaf: true},
		fanout: opt.Fanout,
		r:      1,
		height: 1,
	}
}

// BulkLoad builds a tree over pts, which must already be in a spatially
// coherent order (use grid.Sort); consecutive runs of opt.R points become
// one leaf MBB each. The tree keeps a reference to pts; the caller must not
// mutate it afterwards.
func BulkLoad(pts []geom.Point, opt Options) *Tree {
	opt = opt.withDefaults()
	t := &Tree{pts: pts, fanout: opt.Fanout, r: opt.R, size: len(pts)}
	if len(pts) == 0 {
		t.root = &node{leaf: true}
		t.height = 1
		return t
	}

	// Level 0: leaf entries covering runs of R points.
	nLeaves := (len(pts) + opt.R - 1) / opt.R
	leafEntries := make([]entry, 0, nLeaves)
	for start := 0; start < len(pts); start += opt.R {
		end := start + opt.R
		if end > len(pts) {
			end = len(pts)
		}
		leafEntries = append(leafEntries, entry{
			mbb:   geom.MBBOfPoints(pts[start:end]),
			start: int32(start),
			count: int32(end - start),
		})
	}

	// Pack entries into leaf nodes, then build interior levels bottom-up.
	level := packNodes(leafEntries, opt.Fanout, true)
	t.height = 1
	for len(level) > 1 {
		parents := make([]entry, len(level))
		for i, n := range level {
			parents[i] = entry{mbb: n.mbb(), child: n}
		}
		level = packNodes(parents, opt.Fanout, false)
		t.height++
	}
	t.root = level[0]
	return t
}

// packNodes groups consecutive entries into nodes of at most fanout entries.
func packNodes(entries []entry, fanout int, leaf bool) []*node {
	nNodes := (len(entries) + fanout - 1) / fanout
	if nNodes == 0 {
		nNodes = 1
	}
	nodes := make([]*node, 0, nNodes)
	for start := 0; start < len(entries); start += fanout {
		end := start + fanout
		if end > len(entries) {
			end = len(entries)
		}
		nodes = append(nodes, &node{leaf: leaf, entries: entries[start:end:end]})
	}
	if len(nodes) == 0 {
		nodes = append(nodes, &node{leaf: leaf})
	}
	return nodes
}

// Points returns the tree's backing point array. Leaf ranges reported by
// Search index into this slice.
func (t *Tree) Points() []geom.Point { return t.pts }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a tree that is a single leaf).
func (t *Tree) Height() int { return t.height }

// R returns the leaf occupancy the tree was built with (1 for dynamic trees).
func (t *Tree) R() int { return t.r }

// Generation returns the tree's mutation counter: 0 after construction,
// incremented by every Insert, InsertIndexed, Delete, and DeleteIndex.
// Compare against Flat.Generation to detect a stale frozen snapshot.
func (t *Tree) Generation() uint64 { return t.gen }

// Insert adds point p to a dynamic tree. Each inserted point becomes its own
// leaf MBB (r = 1). Insert must not be used on a bulk-loaded tree whose
// backing array the caller shares — the tree appends to its own copy.
func (t *Tree) Insert(p geom.Point) {
	idx := int32(len(t.pts))
	t.pts = append(t.pts, p)
	t.InsertIndexed(t.pts, idx)
}

// InsertIndexed adds a leaf entry for pts[idx], where pts is a
// caller-owned backing array already extended to hold the point; the tree
// adopts pts as its view. This is the insert path for callers (such as
// dbscan.Index) that share one point array across several trees and must
// not let each tree append its own copy of the point.
func (t *Tree) InsertIndexed(pts []geom.Point, idx int32) {
	if int(idx) >= len(pts) {
		panic(fmt.Sprintf("rtree: InsertIndexed index %d out of range [0,%d)", idx, len(pts)))
	}
	t.pts = pts
	t.size++
	t.gen++
	e := entry{mbb: geom.MBBOf(pts[idx]), start: idx, count: 1}
	split := t.insert(t.root, e)
	if split != nil {
		// Root was split: grow the tree upward.
		newRoot := &node{
			leaf: false,
			entries: []entry{
				{mbb: t.root.mbb(), child: t.root},
				{mbb: split.mbb(), child: split},
			},
		}
		t.root = newRoot
		t.height++
	}
}

// Snapshot returns a structurally independent copy of the tree: all nodes
// and entries are deep-copied, while the (append-only) point array is
// shared with its length capped at snapshot time. Further Insert/Delete
// calls on the original never affect the copy, so the copy can be handed
// to a background goroutine — e.g. for Compact — while the original keeps
// mutating. The clone carries the generation at snapshot time.
func (t *Tree) Snapshot() *Tree {
	cp := &Tree{
		pts:    t.pts[:len(t.pts):len(t.pts)],
		fanout: t.fanout,
		r:      t.r,
		size:   t.size,
		height: t.height,
		gen:    t.gen,
	}
	cp.root = cloneNode(t.root)
	return cp
}

// cloneNode deep-copies a node and its subtree.
func cloneNode(n *node) *node {
	if n == nil {
		return nil
	}
	m := &node{leaf: n.leaf, entries: append([]entry(nil), n.entries...)}
	if !n.leaf {
		for i := range m.entries {
			m.entries[i].child = cloneNode(m.entries[i].child)
		}
	}
	return m
}

// insert places e under n, returning a new sibling node if n was split.
func (t *Tree) insert(n *node, e entry) *node {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.fanout {
			return t.splitNode(n)
		}
		return nil
	}
	// ChooseLeaf: descend into the child needing least enlargement,
	// breaking ties by smallest area.
	best := 0
	bestEnl := n.entries[0].mbb.Enlargement(e.mbb)
	bestArea := n.entries[0].mbb.Area()
	for i := 1; i < len(n.entries); i++ {
		enl := n.entries[i].mbb.Enlargement(e.mbb)
		area := n.entries[i].mbb.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	child := n.entries[best].child
	split := t.insert(child, e)
	n.entries[best].mbb = child.mbb()
	if split != nil {
		n.entries = append(n.entries, entry{mbb: split.mbb(), child: split})
		if len(n.entries) > t.fanout {
			return t.splitNode(n)
		}
	}
	return nil
}

// splitNode performs Guttman's quadratic split on an overfull node,
// keeping roughly half the entries in n and returning the rest in a new
// sibling.
func (t *Tree) splitNode(n *node) *node {
	entries := n.entries
	// PickSeeds: the pair wasting the most area if grouped together.
	seedA, seedB := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].mbb.Union(entries[j].mbb).Area() -
				entries[i].mbb.Area() - entries[j].mbb.Area()
			if d > worst {
				worst, seedA, seedB = d, i, j
			}
		}
	}

	groupA := []entry{entries[seedA]}
	groupB := []entry{entries[seedB]}
	mbbA := entries[seedA].mbb
	mbbB := entries[seedB].mbb

	minFill := t.fanout / 2
	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}

	for len(rest) > 0 {
		// If one group must take all remaining entries to reach minFill, do so.
		if len(groupA)+len(rest) == minFill {
			groupA = append(groupA, rest...)
			for _, e := range rest {
				mbbA = mbbA.Union(e.mbb)
			}
			break
		}
		if len(groupB)+len(rest) == minFill {
			groupB = append(groupB, rest...)
			for _, e := range rest {
				mbbB = mbbB.Union(e.mbb)
			}
			break
		}
		// PickNext: entry with the greatest preference for one group.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			dA := mbbA.Enlargement(e.mbb)
			dB := mbbB.Enlargement(e.mbb)
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		dA := mbbA.Enlargement(e.mbb)
		dB := mbbB.Enlargement(e.mbb)
		switch {
		case dA < dB:
			groupA = append(groupA, e)
			mbbA = mbbA.Union(e.mbb)
		case dB < dA:
			groupB = append(groupB, e)
			mbbB = mbbB.Union(e.mbb)
		case mbbA.Area() <= mbbB.Area():
			groupA = append(groupA, e)
			mbbA = mbbA.Union(e.mbb)
		default:
			groupB = append(groupB, e)
			mbbB = mbbB.Union(e.mbb)
		}
	}

	n.entries = groupA
	return &node{leaf: n.leaf, entries: groupB}
}

// LeafRange is one leaf entry overlapping a search box: count points
// beginning at index start in Points().
type LeafRange struct {
	MBB   geom.MBB
	Start int
	Count int
}

// Search visits every leaf entry whose MBB intersects q and reports the
// number of tree nodes touched (a proxy for memory accesses). The visit
// callback receives the matching leaf ranges.
func (t *Tree) Search(q geom.MBB, visit func(LeafRange)) (nodesVisited int) {
	if t.root == nil {
		return 0
	}
	return t.search(t.root, q, visit)
}

func (t *Tree) search(n *node, q geom.MBB, visit func(LeafRange)) int {
	visited := 1
	if n.leaf {
		for _, e := range n.entries {
			if e.mbb.Intersects(q) {
				visit(LeafRange{MBB: e.mbb, Start: int(e.start), Count: int(e.count)})
			}
		}
		return visited
	}
	for _, e := range n.entries {
		if e.mbb.Intersects(q) {
			visited += t.search(e.child, q, visit)
		}
	}
	return visited
}

// SearchCandidates collects the indices of all points in leaf entries
// overlapping q, appending to dst (which may be nil) and returning it. The
// returned indices are candidates only: the caller must distance-filter.
func (t *Tree) SearchCandidates(q geom.MBB, dst []int32) []int32 {
	t.Search(q, func(lr LeafRange) {
		for i := 0; i < lr.Count; i++ {
			dst = append(dst, int32(lr.Start+i))
		}
	})
	return dst
}

// Stats summarizes tree shape for diagnostics and the indexing ablation.
type Stats struct {
	Height      int
	Nodes       int
	LeafNodes   int
	LeafEntries int
	Points      int
	R           int
	Fanout      int
}

// Stats walks the tree and reports its shape.
func (t *Tree) Stats() Stats {
	s := Stats{Height: t.height, Points: t.size, R: t.r, Fanout: t.fanout}
	var walk func(n *node)
	walk = func(n *node) {
		s.Nodes++
		if n.leaf {
			s.LeafNodes++
			s.LeafEntries += len(n.entries)
			return
		}
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return s
}

// String implements fmt.Stringer with a shape summary.
func (t *Tree) String() string {
	s := t.Stats()
	return fmt.Sprintf("rtree{points=%d r=%d fanout=%d height=%d nodes=%d leafEntries=%d}",
		s.Points, s.R, s.Fanout, s.Height, s.Nodes, s.LeafEntries)
}

// CheckInvariants validates structural invariants, returning a descriptive
// error when violated. Used by tests and available to callers for debugging.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return fmt.Errorf("rtree: nil root")
	}
	covered := 0
	var walk func(n *node, depth int) (geom.MBB, error)
	walk = func(n *node, depth int) (geom.MBB, error) {
		box := geom.EmptyMBB()
		if n.leaf {
			if depth != t.height {
				return box, fmt.Errorf("rtree: leaf at depth %d, height %d", depth, t.height)
			}
			for _, e := range n.entries {
				if e.child != nil {
					return box, fmt.Errorf("rtree: leaf entry with child")
				}
				if e.count <= 0 {
					return box, fmt.Errorf("rtree: leaf entry with count %d", e.count)
				}
				if int(e.start)+int(e.count) > len(t.pts) {
					return box, fmt.Errorf("rtree: leaf range [%d,%d) out of bounds %d",
						e.start, int(e.start)+int(e.count), len(t.pts))
				}
				for i := int(e.start); i < int(e.start)+int(e.count); i++ {
					if !e.mbb.ContainsPoint(t.pts[i]) {
						return box, fmt.Errorf("rtree: point %d outside its leaf MBB", i)
					}
				}
				covered += int(e.count)
				box = box.Union(e.mbb)
			}
			return box, nil
		}
		if len(n.entries) == 0 {
			return box, fmt.Errorf("rtree: empty interior node")
		}
		for _, e := range n.entries {
			if e.child == nil {
				return box, fmt.Errorf("rtree: interior entry without child")
			}
			childBox, err := walk(e.child, depth+1)
			if err != nil {
				return box, err
			}
			if !e.mbb.ContainsMBB(childBox) && !childBox.IsEmpty() {
				return box, fmt.Errorf("rtree: entry MBB %v does not cover child %v", e.mbb, childBox)
			}
			box = box.Union(e.mbb)
		}
		return box, nil
	}
	if _, err := walk(t.root, 1); err != nil {
		return err
	}
	if covered != t.size {
		return fmt.Errorf("rtree: leaves cover %d points, size is %d", covered, t.size)
	}
	return nil
}
