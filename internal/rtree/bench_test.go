package rtree

import (
	"fmt"
	"math/rand"
	"testing"

	"vdbscan/internal/geom"
	"vdbscan/internal/grid"
)

// The pointer-vs-flat benchmark pairs quantify the index-layout trade the
// paper's §IV memory-access argument describes: identical query results,
// different traversal cost. Run with -benchmem to see the closure/stack
// allocation difference on the ε-search path.

func benchPoints(n int) []geom.Point {
	rng := rand.New(rand.NewSource(0xF1A7))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	sorted, _ := grid.Sort(pts, 1)
	return sorted
}

func benchQueries(n int) []geom.Point {
	rng := rand.New(rand.NewSource(0x9E75))
	qs := make([]geom.Point, 1024)
	for i := range qs {
		qs[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	return qs
}

// BenchmarkEpsSearch compares the full ε-neighborhood search (traverse +
// distance filter) on the pointer tree versus the flat tree, across the
// paper's leaf-occupancy range and two dataset sizes.
func BenchmarkEpsSearch(b *testing.B) {
	const eps = 1.5
	for _, n := range []int{10_000, 100_000} {
		sorted := benchPoints(n)
		queries := benchQueries(n)
		for _, r := range []int{1, 70, 110} {
			tr := BulkLoad(sorted, Options{R: r})
			fl := tr.Compact()
			epsSq := eps * eps

			b.Run(fmt.Sprintf("pointer/n=%d/r=%d", n, r), func(b *testing.B) {
				// Faithful Algorithm 2 body: candidate counting included,
				// as dbscan.NeighborSearch performs it on this path.
				dst := make([]int32, 0, 1024)
				var candidates int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p := queries[i%len(queries)]
					dst = dst[:0]
					tr.Search(geom.QueryMBB(p, eps), func(lr LeafRange) {
						end := lr.Start + lr.Count
						for j := lr.Start; j < end; j++ {
							candidates++
							if p.DistSq(sorted[j]) <= epsSq {
								dst = append(dst, int32(j))
							}
						}
					})
				}
			})
			b.Run(fmt.Sprintf("flat/n=%d/r=%d", n, r), func(b *testing.B) {
				dst := make([]int32, 0, 1024)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dst, _, _ = fl.EpsSearch(queries[i%len(queries)], eps, dst[:0])
				}
			})
		}
	}
}

// BenchmarkSearchCandidates compares the raw candidate sweep (no distance
// filter) — the T_high cluster-MBB sweep workload of Algorithm 3.
func BenchmarkSearchCandidates(b *testing.B) {
	sorted := benchPoints(100_000)
	queries := benchQueries(100_000)
	for _, r := range []int{1, 70} {
		tr := BulkLoad(sorted, Options{R: r})
		fl := tr.Compact()
		b.Run(fmt.Sprintf("pointer/r=%d", r), func(b *testing.B) {
			dst := make([]int32, 0, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := geom.QueryMBB(queries[i%len(queries)], 4)
				dst = tr.SearchCandidates(q, dst[:0])
			}
		})
		b.Run(fmt.Sprintf("flat/r=%d", r), func(b *testing.B) {
			dst := make([]int32, 0, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := geom.QueryMBB(queries[i%len(queries)], 4)
				dst, _ = fl.SearchCandidates(q, dst[:0])
			}
		})
	}
}

// BenchmarkCompact measures the freeze step itself, so its (one-time) cost
// can be weighed against the per-query savings.
func BenchmarkCompact(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		sorted := benchPoints(n)
		for _, r := range []int{1, 70} {
			tr := BulkLoad(sorted, Options{R: r})
			b.Run(fmt.Sprintf("n=%d/r=%d", n, r), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if tr.Compact().Len() != n {
						b.Fatal("bad compact")
					}
				}
			})
		}
	}
}

// TestEpsSearchZeroAlloc asserts the flat ε-search's steady state stays
// off the heap entirely once the destination buffer has warmed up.
func TestEpsSearchZeroAlloc(t *testing.T) {
	sorted := benchPoints(20_000)
	fl := BulkLoad(sorted, Options{R: 70}).Compact()
	queries := benchQueries(20_000)
	dst := make([]int32, 0, 4096)
	for _, p := range queries { // warm dst to its high-water mark
		dst, _, _ = fl.EpsSearch(p, 2, dst[:0])
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		dst, _, _ = fl.EpsSearch(queries[i%len(queries)], 2, dst[:0])
		i++
	})
	if allocs != 0 {
		t.Fatalf("EpsSearch allocated %.1f times per run, want 0", allocs)
	}
}
