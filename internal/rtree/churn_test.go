package rtree

import (
	"testing"

	"vdbscan/internal/data"
	"vdbscan/internal/geom"
)

func TestChurnLargeTree(t *testing.T) {
	rng := data.NewRNG(99)
	n := 6000
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 360, Y: rng.Float64() * 180}
	}
	tr := New(Options{}) // fanout 16
	for _, p := range pts {
		tr.Insert(p)
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	check := func(step int) {
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		// exact search vs live set at a few query points
		for qi := 0; qi < 5; qi++ {
			q := geom.Point{X: rng.Float64() * 360, Y: rng.Float64() * 180}
			box := geom.QueryMBB(q, 5)
			got := map[geom.Point]int{}
			for _, ci := range tr.SearchCandidates(box, nil) {
				if box.ContainsPoint(tr.Points()[ci]) {
					got[tr.Points()[ci]]++
				}
			}
			want := map[geom.Point]int{}
			for i, p := range pts {
				if alive[i] && box.ContainsPoint(p) {
					want[p]++
				}
			}
			for p, c := range want {
				if got[p] != c {
					t.Fatalf("step %d: missing point %v (got %d want %d)", step, p, got[p], c)
				}
			}
			for p, c := range got {
				if want[p] != c {
					t.Fatalf("step %d: stale point %v", step, p)
				}
			}
		}
	}
	for i := 0; i < 3000; i++ {
		found, err := tr.Delete(pts[i])
		if err != nil || !found {
			t.Fatalf("delete %d: found=%v err=%v", i, found, err)
		}
		alive[i] = false
		if i%200 == 0 {
			check(i)
		}
	}
	check(3000)
}
