package rtree

import (
	"math"
	"testing"
	"testing/quick"

	"vdbscan/internal/geom"
	"vdbscan/internal/grid"
)

// normPts converts raw quick-generated floats into a bounded point set.
func normPts(raw []float64) []geom.Point {
	pts := make([]geom.Point, 0, len(raw)/2)
	for i := 0; i+1 < len(raw); i += 2 {
		x, y := raw[i], raw[i+1]
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			continue
		}
		pts = append(pts, geom.Point{
			X: math.Mod(math.Abs(x), 100),
			Y: math.Mod(math.Abs(y), 100),
		})
	}
	return pts
}

// Property: for any point set and any query box, the candidate set of a
// bulk-loaded tree contains every point inside the box, at every r.
func TestQuickCandidatesSuperset(t *testing.T) {
	f := func(raw []float64, qx, qy, qr float64, rSel uint8) bool {
		pts := normPts(raw)
		if len(pts) == 0 {
			return true
		}
		if math.IsNaN(qx) || math.IsNaN(qy) || math.IsNaN(qr) {
			return true
		}
		r := int(rSel)%64 + 1
		sorted, _ := grid.Sort(pts, 1)
		tr := BulkLoad(sorted, Options{R: r})
		q := geom.QueryMBB(geom.Point{X: math.Mod(math.Abs(qx), 100), Y: math.Mod(math.Abs(qy), 100)},
			math.Mod(math.Abs(qr), 20))
		got := map[int32]bool{}
		for _, idx := range tr.SearchCandidates(q, nil) {
			got[idx] = true
		}
		for i, p := range sorted {
			if q.ContainsPoint(p) && !got[int32(i)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: invariants hold after any sequence of dynamic inserts.
func TestQuickInsertInvariants(t *testing.T) {
	f := func(raw []float64, fanoutSel uint8) bool {
		pts := normPts(raw)
		tr := New(Options{Fanout: int(fanoutSel)%14 + 2})
		for _, p := range pts {
			tr.Insert(p)
		}
		return tr.CheckInvariants() == nil && tr.Len() == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: bulk loading never loses or duplicates points — the union of
// all leaf ranges covers exactly 0..n-1.
func TestQuickBulkLeafCoverage(t *testing.T) {
	f := func(raw []float64, rSel uint8) bool {
		pts := normPts(raw)
		sorted, _ := grid.Sort(pts, 1)
		tr := BulkLoad(sorted, Options{R: int(rSel)%200 + 1})
		seen := make([]bool, len(sorted))
		huge := geom.MBB{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9}
		ok := true
		tr.Search(huge, func(lr LeafRange) {
			for i := lr.Start; i < lr.Start+lr.Count; i++ {
				if i >= len(seen) || seen[i] {
					ok = false
					return
				}
				seen[i] = true
			}
		})
		if !ok {
			return false
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
