package rtree

import (
	"fmt"
	"sync"

	"vdbscan/internal/geom"
)

// FlatParts is the exported structural skeleton of a Flat: every array and
// scalar the frozen layout is made of, minus the point storage (which the
// caller owns and provides again at reconstruction). It exists for the
// persistence layer — Parts exposes the arrays for writing, FlatFromParts
// rebuilds a servable Flat around arrays read (or mapped) back in.
//
// The slices are aliased in both directions, never copied: a Flat built by
// FlatFromParts serves searches straight out of the caller's backing
// memory, which is what makes an mmap-loaded snapshot zero-deserialization.
type FlatParts struct {
	EntMinX, EntMinY, EntMaxX, EntMaxY []float64
	EntRef, EntCnt                     []int32
	NodeEnt                            []int32
	FirstLeaf                          int32
	Height, R, Fanout, Size            int
}

// Parts exposes the Flat's structural arrays and scalars for serialization.
// The returned slices alias the Flat — treat them as read-only.
func (f *Flat) Parts() FlatParts {
	return FlatParts{
		EntMinX: f.entMinX, EntMinY: f.entMinY,
		EntMaxX: f.entMaxX, EntMaxY: f.entMaxY,
		EntRef: f.entRef, EntCnt: f.entCnt,
		NodeEnt:   f.nodeEnt,
		FirstLeaf: f.firstLeaf,
		Height:    f.height, R: f.r, Fanout: f.fanout, Size: f.size,
	}
}

// FlatFromParts reconstructs a servable Flat from previously exported
// parts plus the point storage (pts and its SoA coordinate slices, exactly
// as CompactWithCoords would have received them). The input arrays are
// aliased, not copied.
//
// Because the parts may come from an untrusted file, the structure is
// fully validated before any search can run over it: entry ranges must be
// a monotone partition of the entry arrays, interior children must be
// forward references inside the node table (so traversals provably
// terminate), every non-root node must be referenced exactly once, leaves
// must sit at one uniform depth, and leaf point ranges must stay inside
// the point array. The worst-case traversal stack is recomputed from the
// observed shape, never trusted from the input. Invalid parts return an
// error; FlatFromParts never panics on hostile input.
func FlatFromParts(parts FlatParts, x, y []float64, pts []geom.Point) (*Flat, error) {
	bad := func(format string, args ...any) (*Flat, error) {
		return nil, fmt.Errorf("rtree: invalid flat parts: "+format, args...)
	}
	nE := len(parts.EntRef)
	if len(parts.EntMinX) != nE || len(parts.EntMinY) != nE ||
		len(parts.EntMaxX) != nE || len(parts.EntMaxY) != nE ||
		len(parts.EntCnt) != nE {
		return bad("entry arrays disagree on length")
	}
	numNodes := len(parts.NodeEnt) - 1
	if numNodes < 1 {
		return bad("node table has %d entries, want >= 2", len(parts.NodeEnt))
	}
	if parts.NodeEnt[0] != 0 || int(parts.NodeEnt[numNodes]) != nE {
		return bad("node entry ranges do not span the entry arrays")
	}
	if parts.FirstLeaf < 0 || int(parts.FirstLeaf) > numNodes {
		return bad("firstLeaf %d outside [0, %d]", parts.FirstLeaf, numNodes)
	}
	if parts.Size < 0 || parts.Size != len(pts) {
		return bad("size %d != %d points", parts.Size, len(pts))
	}
	if len(x) < parts.Size || len(y) < parts.Size {
		return bad("got %d/%d coords for %d points", len(x), len(y), parts.Size)
	}

	// One forward scan establishes every traversal-safety invariant: BFS
	// order means a node's parent precedes it, so depths propagate in a
	// single pass and an unreferenced node is detectable the moment it is
	// reached.
	depth := make([]int32, numNodes)
	referenced := make([]bool, numNodes)
	depth[0], referenced[0] = 1, true
	maxEntries := 1
	maxDepth := 1
	leafDepth := int32(-1)
	for ni := 0; ni < numNodes; ni++ {
		if !referenced[ni] {
			return bad("node %d is unreachable", ni)
		}
		lo, hi := parts.NodeEnt[ni], parts.NodeEnt[ni+1]
		if lo > hi {
			return bad("node %d has negative entry range [%d, %d)", ni, lo, hi)
		}
		if int(hi-lo) > maxEntries {
			maxEntries = int(hi - lo)
		}
		if int(depth[ni]) > maxDepth {
			maxDepth = int(depth[ni])
		}
		if ni >= int(parts.FirstLeaf) {
			if leafDepth < 0 {
				leafDepth = depth[ni]
			} else if depth[ni] != leafDepth {
				return bad("leaf %d at depth %d, want uniform depth %d", ni, depth[ni], leafDepth)
			}
			for e := lo; e < hi; e++ {
				ref, cnt := parts.EntRef[e], parts.EntCnt[e]
				if ref < 0 || cnt < 0 || int(ref)+int(cnt) > parts.Size {
					return bad("leaf entry %d range [%d, %d) outside %d points", e, ref, int(ref)+int(cnt), parts.Size)
				}
			}
			continue
		}
		for e := lo; e < hi; e++ {
			ref := parts.EntRef[e]
			if int(ref) <= ni || int(ref) >= numNodes {
				return bad("interior entry %d child %d not a forward node reference from %d", e, ref, ni)
			}
			if referenced[ref] {
				return bad("node %d referenced twice", ref)
			}
			referenced[ref] = true
			depth[ref] = depth[ni] + 1
		}
	}

	f := &Flat{
		pts: pts, ptX: x, ptY: y,
		entMinX: parts.EntMinX, entMinY: parts.EntMinY,
		entMaxX: parts.EntMaxX, entMaxY: parts.EntMaxY,
		entRef: parts.EntRef, entCnt: parts.EntCnt,
		nodeEnt:   parts.NodeEnt,
		firstLeaf: parts.FirstLeaf,
		height:    parts.Height, r: parts.R, fanout: parts.Fanout,
		size: parts.Size,
		// gen 0 matches a freshly built tree's Generation, so a holder that
		// later materializes a pointer tree over the same points sees this
		// snapshot as current.
		gen: 0,
	}
	f.maxStack = maxDepth*(maxEntries-1) + 1
	if f.maxStack > flatLocalStack {
		need := f.maxStack
		f.stackPool = &sync.Pool{New: func() any {
			s := make([]int32, 0, need)
			return &s
		}}
	}
	return f, nil
}
