package rtree

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"vdbscan/internal/geom"
	"vdbscan/internal/kernel"
)

// flatLocalStack is the traversal stack capacity that searches keep in a
// stack-allocated array. A tree needs height·(fanout−1)+1 slots in the
// worst case; 128 covers the default fanout 16 up to height 9 (≈ 16⁸ leaf
// entries, far beyond anything that fits in memory). The array is kept
// small because Go zero-initializes it on every call — at 128·4 B the
// memclr is noise, while a generous stack would tax every ε-search.
// Deeper/wider configurations fall back to a pooled heap stack sized
// exactly at freeze time.
const flatLocalStack = 128

// Flat is the frozen, cache-friendly representation of a Tree, produced
// by Compact.
//
// The pointer tree (rtree.go) is the build/mutate path: Guttman inserts,
// deletes, and bulk loading all operate on heap-allocated nodes. Every
// traversal of that structure chases node pointers and runs a visit
// closure per query — costs that the paper's memory-bound ε-search
// argument (§IV) says dominate 2-D DBSCAN. Compact linearizes the tree
// once into contiguous arrays so that steady-state searches
//
//   - touch only a handful of flat slices (struct-of-arrays MBBs,
//     int32 child/leaf offsets) laid out in BFS order, parent levels
//     before children, so a root-to-leaf walk moves forward in memory;
//   - traverse iteratively with an explicit stack — no recursion, no
//     per-node heap objects, no closure on the hot path; and
//   - allocate nothing: the traversal stack lives in a fixed-size local
//     array (spilling to a sync.Pool only for trees deeper than any
//     realistic configuration), and result buffers are caller-provided.
//
// This mirrors the linearized layouts of Wang/Gu/Shun (SIGMOD 2020) and
// Prokopenko et al. (ArborX) that make tree-based ε-search fast in
// practice. A Flat is immutable and safe for unlimited concurrent
// searches; incremental callers keep mutating the pointer tree and
// re-Compact when they need a fresh frozen view. All slices are
// struct-of-arrays: entry i's MBB is
// (entMinX[i], entMinY[i])–(entMaxX[i], entMaxY[i]).
type Flat struct {
	pts []geom.Point
	// ptX/ptY are SoA copies of the point coordinates, so the ε distance
	// filter scans two contiguous float64 slices instead of striding
	// through []geom.Point. They may be shared across trees built over
	// the same point array (CompactWithCoords).
	ptX, ptY []float64

	// Entry arrays, indexed by a global entry id. A node owns the
	// contiguous entry range [nodeEnt[n], nodeEnt[n+1]).
	entMinX, entMinY, entMaxX, entMaxY []float64
	// entRef is the child node id for interior entries, or the start
	// offset into the point array for leaf entries.
	entRef []int32
	// entCnt is the leaf entry's point count (unused, zero, for interior
	// entries).
	entCnt []int32

	// nodeEnt is the prefix array of entry ranges, len numNodes+1. Nodes
	// are numbered in BFS order with the root at 0; because every leaf
	// sits at the same depth, all leaves occupy the id range
	// [firstLeaf, numNodes).
	nodeEnt   []int32
	firstLeaf int32

	height, r, fanout, size int

	// gen is the source tree's generation at freeze time; a holder of the
	// source tree compares it against Tree.Generation to detect staleness.
	gen uint64

	// maxStack is the exact worst-case traversal stack size for this
	// tree; stackPool is only initialized when it exceeds flatLocalStack.
	maxStack  int
	stackPool *sync.Pool
}

// ErrFlatTooLarge is the panic value (wrapped with size detail) raised by
// Compact/CompactWithCoords when the tree exceeds the flat layout's int32
// offset space. All entry, child, and point offsets in a Flat are int32 —
// the cap is math.MaxInt32 (≈2.1e9) leaf entries and points; beyond that
// the unchecked casts would silently wrap and corrupt the index.
var ErrFlatTooLarge = errors.New("rtree: tree exceeds flat layout int32 offset space")

// checkCompactBounds validates that entries and points fit the int32
// offsets of the flat layout. Factored out of CompactWithCoords so the
// guard is unit-testable without allocating a multi-gigabyte tree.
func checkCompactBounds(entries, points int) error {
	if entries > math.MaxInt32 {
		return fmt.Errorf("%w: %d entries > %d", ErrFlatTooLarge, entries, math.MaxInt32)
	}
	if points > math.MaxInt32 {
		return fmt.Errorf("%w: %d points > %d", ErrFlatTooLarge, points, math.MaxInt32)
	}
	return nil
}

// Compact freezes the tree into a Flat. The Flat shares the tree's point
// array but copies all structure; the tree may keep mutating afterwards
// (call Compact again for a fresh frozen view). The frozen snapshot
// records the tree's generation at freeze time (Flat.Generation).
//
// The flat layout addresses entries, children, and points with int32
// offsets; Compact panics with an error wrapping ErrFlatTooLarge when the
// tree exceeds math.MaxInt32 leaf entries or points.
func (t *Tree) Compact() *Flat {
	return t.CompactWithCoords(nil, nil)
}

// CompactWithCoords is Compact with caller-provided SoA coordinate
// slices, so several trees over the same point array (T_low and T_high)
// share one pair instead of duplicating them. x and y must satisfy
// x[i] == Points()[i].X and y[i] == Points()[i].Y; pass nil, nil to have
// the Flat build its own. It shares Compact's int32 size cap and panics
// with an error wrapping ErrFlatTooLarge beyond it.
func (t *Tree) CompactWithCoords(x, y []float64) *Flat {
	f := &Flat{
		pts:    t.pts,
		height: t.height,
		r:      t.r,
		fanout: t.fanout,
		size:   t.size,
		gen:    t.gen,
	}
	if x == nil || y == nil {
		x = make([]float64, len(t.pts))
		y = make([]float64, len(t.pts))
		for i, p := range t.pts {
			x[i], y[i] = p.X, p.Y
		}
	} else if len(x) < len(t.pts) || len(y) < len(t.pts) {
		panic(fmt.Sprintf("rtree: CompactWithCoords got %d/%d coords for %d points",
			len(x), len(y), len(t.pts)))
	}
	f.ptX, f.ptY = x, y

	root := t.root
	if root == nil {
		root = &node{leaf: true}
	}

	// BFS numbering: parents before children, each level contiguous, so
	// with uniform leaf depth all leaves end up in one trailing block.
	order := []*node{root}
	for i := 0; i < len(order); i++ {
		n := order[i]
		if n.leaf {
			continue
		}
		for _, e := range n.entries {
			order = append(order, e.child)
		}
	}

	numNodes := len(order)
	f.firstLeaf = int32(numNodes) // until the first leaf is seen
	f.nodeEnt = make([]int32, numNodes+1)
	totalEntries := 0
	maxEntries := 1
	for i, n := range order {
		f.nodeEnt[i] = int32(totalEntries)
		totalEntries += len(n.entries)
		if len(n.entries) > maxEntries {
			maxEntries = len(n.entries)
		}
		if n.leaf {
			if int32(i) < f.firstLeaf {
				f.firstLeaf = int32(i)
			}
		} else if int32(i) > f.firstLeaf {
			// BFS puts all leaves in one trailing block only when every
			// leaf sits at the same depth — the invariant both build
			// paths maintain (CheckInvariants enforces it).
			panic("rtree: Compact requires uniform leaf depth")
		}
	}
	if err := checkCompactBounds(totalEntries, len(t.pts)); err != nil {
		panic(err)
	}
	f.nodeEnt[numNodes] = int32(totalEntries)

	f.entMinX = make([]float64, totalEntries)
	f.entMinY = make([]float64, totalEntries)
	f.entMaxX = make([]float64, totalEntries)
	f.entMaxY = make([]float64, totalEntries)
	f.entRef = make([]int32, totalEntries)
	f.entCnt = make([]int32, totalEntries)

	// Children were appended to order in per-node entry order, so a
	// node's k-th child has id (id of previous children)+1; recover it
	// with a running child cursor per BFS scan.
	childID := int32(1)
	ei := 0
	for _, n := range order {
		for _, e := range n.entries {
			f.entMinX[ei] = e.mbb.MinX
			f.entMinY[ei] = e.mbb.MinY
			f.entMaxX[ei] = e.mbb.MaxX
			f.entMaxY[ei] = e.mbb.MaxY
			if n.leaf {
				f.entRef[ei] = e.start
				f.entCnt[ei] = e.count
			} else {
				f.entRef[ei] = childID
				childID++
			}
			ei++
		}
	}

	f.maxStack = t.height*(maxEntries-1) + 1
	if f.maxStack > flatLocalStack {
		need := f.maxStack
		f.stackPool = &sync.Pool{New: func() any {
			s := make([]int32, 0, need)
			return &s
		}}
	}
	return f
}

// Points returns the backing point array; leaf ranges index into it.
func (f *Flat) Points() []geom.Point { return f.pts }

// Coords returns the SoA coordinate slices the distance filter scans.
func (f *Flat) Coords() (x, y []float64) { return f.ptX, f.ptY }

// Len returns the number of indexed points.
func (f *Flat) Len() int { return f.size }

// Height returns the number of tree levels.
func (f *Flat) Height() int { return f.height }

// R returns the leaf occupancy the source tree was built with.
func (f *Flat) R() int { return f.r }

// Generation returns the source tree's mutation counter at freeze time.
// When it differs from the live tree's Generation, this snapshot no
// longer reflects the tree and must not serve searches on its own —
// either merge the missing mutations from an Overlay or fall back to the
// pointer tree.
func (f *Flat) Generation() uint64 { return f.gen }

// Stats reports the frozen tree's shape (same fields as Tree.Stats).
func (f *Flat) Stats() Stats {
	numNodes := len(f.nodeEnt) - 1
	return Stats{
		Height:      f.height,
		Nodes:       numNodes,
		LeafNodes:   numNodes - int(f.firstLeaf),
		LeafEntries: int(f.nodeEnt[numNodes] - f.nodeEnt[f.firstLeaf]),
		Points:      f.size,
		R:           f.r,
		Fanout:      f.fanout,
	}
}

// String implements fmt.Stringer with a shape summary.
func (f *Flat) String() string {
	s := f.Stats()
	return fmt.Sprintf("rtree.Flat{points=%d r=%d fanout=%d height=%d nodes=%d leafEntries=%d}",
		s.Points, s.R, s.Fanout, s.Height, s.Nodes, s.LeafEntries)
}

// Search visits every leaf entry whose MBB intersects q, in the same
// order as Tree.Search on the source tree, and returns the number of
// nodes touched. Prefer SearchCandidates or EpsSearch on hot paths —
// they avoid the per-range callback.
func (f *Flat) Search(q geom.MBB, visit func(LeafRange)) (nodesVisited int) {
	if f.maxStack <= flatLocalStack {
		var buf [flatLocalStack]int32
		return f.searchVisit(buf[:0], q, visit)
	}
	sp := f.stackPool.Get().(*[]int32)
	n := f.searchVisit((*sp)[:0], q, visit)
	f.stackPool.Put(sp)
	return n
}

func (f *Flat) searchVisit(stack []int32, q geom.MBB, visit func(LeafRange)) int {
	nodes := 0
	stack = append(stack, 0)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		lo, hi := f.nodeEnt[ni], f.nodeEnt[ni+1]
		if ni >= f.firstLeaf {
			for e := lo; e < hi; e++ {
				if f.entMinX[e] <= q.MaxX && q.MinX <= f.entMaxX[e] &&
					f.entMinY[e] <= q.MaxY && q.MinY <= f.entMaxY[e] {
					visit(LeafRange{
						MBB: geom.MBB{
							MinX: f.entMinX[e], MinY: f.entMinY[e],
							MaxX: f.entMaxX[e], MaxY: f.entMaxY[e],
						},
						Start: int(f.entRef[e]),
						Count: int(f.entCnt[e]),
					})
				}
			}
			continue
		}
		// Push intersecting children in reverse so they pop in entry
		// order — the exact visit order of the recursive pointer search.
		for e := hi - 1; e >= lo; e-- {
			if f.entMinX[e] <= q.MaxX && q.MinX <= f.entMaxX[e] &&
				f.entMinY[e] <= q.MaxY && q.MinY <= f.entMaxY[e] {
				stack = append(stack, f.entRef[e])
			}
		}
	}
	return nodes
}

// SearchCandidates appends to dst the indices of all points in leaf
// entries overlapping q (candidates only — the caller distance-filters)
// and returns dst plus the number of nodes touched. The output matches
// Tree.SearchCandidates on the source tree element-for-element.
func (f *Flat) SearchCandidates(q geom.MBB, dst []int32) (out []int32, nodesVisited int) {
	if f.maxStack <= flatLocalStack {
		var buf [flatLocalStack]int32
		return f.searchCandidates(buf[:0], q, dst)
	}
	sp := f.stackPool.Get().(*[]int32)
	out, n := f.searchCandidates((*sp)[:0], q, dst)
	f.stackPool.Put(sp)
	return out, n
}

func (f *Flat) searchCandidates(stack []int32, q geom.MBB, dst []int32) ([]int32, int) {
	// Locals for the same aliasing reason as epsSearch.
	entMinX, entMinY := f.entMinX, f.entMinY
	entMaxX, entMaxY := f.entMaxX, f.entMaxY
	entRef, entCnt := f.entRef, f.entCnt
	nodeEnt, firstLeaf := f.nodeEnt, f.firstLeaf
	nodes := 0
	stack = append(stack, 0)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		lo, hi := nodeEnt[ni], nodeEnt[ni+1]
		if ni >= firstLeaf {
			for e := lo; e < hi; e++ {
				if entMinX[e] <= q.MaxX && q.MinX <= entMaxX[e] &&
					entMinY[e] <= q.MaxY && q.MinY <= entMaxY[e] {
					start, end := entRef[e], entRef[e]+entCnt[e]
					for i := start; i < end; i++ {
						dst = append(dst, i)
					}
				}
			}
			continue
		}
		for e := hi - 1; e >= lo; e-- {
			if entMinX[e] <= q.MaxX && q.MinX <= entMaxX[e] &&
				entMinY[e] <= q.MaxY && q.MinY <= entMaxY[e] {
				stack = append(stack, entRef[e])
			}
		}
	}
	return dst, nodes
}

// EpsSearch is the fused ε-neighborhood search (Algorithm 2 without the
// per-leaf callback): it walks the leaves intersecting the ε-augmented
// box around p and distance-filters their point runs against the SoA
// coordinate slices, appending passing indices to dst. It returns dst,
// the number of candidate points examined, and the number of nodes
// touched — the same triple NeighborSearch derives from Tree.Search, in
// the same order, with zero heap allocations once dst has warmed up.
func (f *Flat) EpsSearch(p geom.Point, eps float64, dst []int32) (out []int32, candidates, nodesVisited int) {
	if f.maxStack <= flatLocalStack {
		var buf [flatLocalStack]int32
		return f.epsSearch(buf[:0], p, eps, dst)
	}
	sp := f.stackPool.Get().(*[]int32)
	out, c, n := f.epsSearch((*sp)[:0], p, eps, dst)
	f.stackPool.Put(sp)
	return out, c, n
}

func (f *Flat) epsSearch(stack []int32, p geom.Point, eps float64, dst []int32) ([]int32, int, int) {
	minX, minY := p.X-eps, p.Y-eps
	maxX, maxY := p.X+eps, p.Y+eps
	epsSq := eps * eps
	px, py := p.X, p.Y
	// Hoist every array into a local: dst shares the []int32 element type
	// with entRef/entCnt, so without these the compiler must assume each
	// append may alias a tree slice and reload the headers every access.
	ptX, ptY := f.ptX, f.ptY
	entMinX, entMinY := f.entMinX, f.entMinY
	entMaxX, entMaxY := f.entMaxX, f.entMaxY
	entRef, entCnt := f.entRef, f.entCnt
	nodeEnt, firstLeaf := f.nodeEnt, f.firstLeaf
	candidates, nodes := 0, 0
	stack = append(stack, 0)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		lo, hi := nodeEnt[ni], nodeEnt[ni+1]
		if ni >= firstLeaf {
			for e := lo; e < hi; e++ {
				if entMinX[e] <= maxX && minX <= entMaxX[e] &&
					entMinY[e] <= maxY && minY <= entMaxY[e] {
					start, end := int(entRef[e]), int(entRef[e]+entCnt[e])
					candidates += end - start
					dst = kernel.FilterEps(dst,
						ptX[start:end:end], ptY[start:end:end],
						int32(start), px, py, epsSq)
				}
			}
			continue
		}
		for e := hi - 1; e >= lo; e-- {
			if entMinX[e] <= maxX && minX <= entMaxX[e] &&
				entMinY[e] <= maxY && minY <= entMaxY[e] {
				stack = append(stack, entRef[e])
			}
		}
	}
	return dst, candidates, nodes
}
