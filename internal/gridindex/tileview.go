package gridindex

// Tile views: rectangular cell-range slices of a frozen Flat grid, the
// substrate of the tile level of parallelism (variant → tile → chunk).
// A TileView owns a half-open rectangle of cells; because Freeze
// grid-sorts the coordinates into CSR runs, the view's points are a set
// of contiguous slot ranges — no coordinates are copied, a tile is pure
// arithmetic over the shared cellStart offsets.
//
// Each view carries an ε-halo: the owned rectangle expanded by
// reach = ⌈eps/side⌉ cells per direction (clamped to the grid). Any
// ε-search whose query point lies in an owned cell scans a cell block
// that is fully inside the halo, so a per-tile search clamped to the
// halo returns exactly the full-grid result — including identical
// candidate and cell-visit counts. That equivalence is what makes the
// tiled DBSCAN runner byte-identical to the untiled one, and it is
// property-tested in tileview_test.go.

import (
	"math"

	"vdbscan/internal/geom"
	"vdbscan/internal/kernel"
)

// CellRect is a half-open rectangle of grid cells: columns [C0, C1) ×
// rows [R0, R1).
type CellRect struct {
	C0, R0, C1, R1 int32
}

// Cells returns the number of cells the rectangle covers.
func (r CellRect) Cells() int {
	if r.Empty() {
		return 0
	}
	return int(r.C1-r.C0) * int(r.R1-r.R0)
}

// Empty reports whether the rectangle covers no cells.
func (r CellRect) Empty() bool { return r.C1 <= r.C0 || r.R1 <= r.R0 }

// Shape returns the grid's cell geometry (columns, rows).
func (f *Flat) Shape() (cols, rows int32) { return f.cols, f.rows }

// CellRange returns the half-open slot range holding the points of row
// r's cells [c0, c1) — one contiguous CSR run. Bounds are the caller's
// responsibility: 0 ≤ r < rows, 0 ≤ c0 ≤ c1 ≤ cols.
func (f *Flat) CellRange(r, c0, c1 int32) (start, end int32) {
	base := r * f.cols
	return f.cellStart[base+c0], f.cellStart[base+c1]
}

// CellCount returns the number of points in cell (r, c).
func (f *Flat) CellCount(r, c int32) int32 {
	i := r*f.cols + c
	return f.cellStart[i+1] - f.cellStart[i]
}

// SlotID maps a grid slot back to the caller's index space.
func (f *Flat) SlotID(s int32) int32 { return f.ids[s] }

// SlotCoords returns the grid-sorted coordinates at slot s.
func (f *Flat) SlotCoords(s int32) (x, y float64) { return f.xs[s], f.ys[s] }

// Reach returns the cell reach of an ε-search: how many cells per
// direction the scanned block extends around the query's cell,
// ⌈eps/side⌉ clamped to the grid's own extent.
func (f *Flat) Reach(eps float64) int32 {
	if !(eps > 0) || f.cols == 0 {
		return 0
	}
	r := math.Ceil(eps / f.side)
	if lim := math.Max(float64(f.cols), float64(f.rows)); r > lim {
		r = lim
	}
	return int32(r)
}

// TileView is one tile of the grid: an owned cell rectangle plus its
// ε-halo. Views alias the Flat's arrays (nothing is copied) and are
// read-only, so any number may search concurrently.
type TileView struct {
	f     *Flat
	owned CellRect
	halo  CellRect
	reach int32
}

// Tile builds the view for an owned cell rectangle at search radius eps.
// The halo is the owned rectangle expanded by Reach(eps) cells per
// direction, clamped to the grid.
func (f *Flat) Tile(owned CellRect, eps float64) TileView {
	reach := f.Reach(eps)
	halo := CellRect{
		C0: max(0, owned.C0-reach),
		R0: max(0, owned.R0-reach),
		C1: min(f.cols, owned.C1+reach),
		R1: min(f.rows, owned.R1+reach),
	}
	return TileView{f: f, owned: owned, halo: halo, reach: reach}
}

// Owned returns the view's owned cell rectangle.
func (v *TileView) Owned() CellRect { return v.owned }

// Halo returns the view's ε-expanded cell rectangle.
func (v *TileView) Halo() CellRect { return v.halo }

// OwnedPoints returns the number of points in the owned rectangle.
func (v *TileView) OwnedPoints() int {
	n := 0
	v.OwnedRuns(func(start, end int32) { n += int(end - start) })
	return n
}

// OwnedRuns calls yield once per non-empty grid row of the owned
// rectangle with the half-open slot range of that row's owned cells.
// Runs are disjoint and ascending; across a partition's tiles they
// cover every slot exactly once.
func (v *TileView) OwnedRuns(yield func(start, end int32)) {
	for r := v.owned.R0; r < v.owned.R1; r++ {
		s, e := v.f.CellRange(r, v.owned.C0, v.owned.C1)
		if s < e {
			yield(s, e)
		}
	}
}

// rowSeam reports whether every owned cell of row r is a seam cell: the
// row sits within reach of the owned rectangle's top or bottom edge and
// the grid continues past that edge.
func (v *TileView) rowSeam(r int32) bool {
	return (v.owned.R0 > 0 && r < v.owned.R0+v.reach) ||
		(v.owned.R1 < v.f.rows && r >= v.owned.R1-v.reach)
}

// SeamRuns calls yield with the slot ranges of the tile's seam cells:
// owned cells whose ε-search block extends past the owned rectangle
// into the rest of the grid. Every owned point with a neighbor within
// reach·side owned by another tile lies in a seam cell, so a cross-tile
// merge only has to revisit these runs; cells flush against the global
// grid edge are not seam on that side (there is nothing beyond them).
// Runs are disjoint; each seam point appears exactly once.
func (v *TileView) SeamRuns(yield func(start, end int32)) {
	f := v.f
	for r := v.owned.R0; r < v.owned.R1; r++ {
		if v.rowSeam(r) {
			if s, e := f.CellRange(r, v.owned.C0, v.owned.C1); s < e {
				yield(s, e)
			}
			continue
		}
		// Interior row: only the left/right reach bands are seam.
		lEnd, rStart := v.owned.C0, v.owned.C1
		if v.owned.C0 > 0 {
			lEnd = min(v.owned.C1, v.owned.C0+v.reach)
		}
		if v.owned.C1 < f.cols {
			rStart = max(v.owned.C0, v.owned.C1-v.reach)
		}
		if lEnd >= rStart {
			// The bands meet: the whole row is seam.
			if s, e := f.CellRange(r, v.owned.C0, v.owned.C1); s < e {
				yield(s, e)
			}
			continue
		}
		if v.owned.C0 < lEnd {
			if s, e := f.CellRange(r, v.owned.C0, lEnd); s < e {
				yield(s, e)
			}
		}
		if rStart < v.owned.C1 {
			if s, e := f.CellRange(r, rStart, v.owned.C1); s < e {
				yield(s, e)
			}
		}
	}
}

// EpsSearch is Flat.EpsSearch restricted to the view: the scanned cell
// block is clamped to the halo rectangle instead of the whole grid. For
// query points inside an owned cell the block already lies within the
// halo, so the result — neighbors, candidate count, cells visited — is
// identical to the full-grid search; the clamp enforces the sub-view
// boundary for any other query.
func (v *TileView) EpsSearch(p geom.Point, eps float64, dst []int32) (out []int32, candidates, nodesVisited int) {
	f := v.f
	if len(f.ids) == 0 || !(eps >= 0) {
		return dst, 0, 0
	}
	reach := math.Ceil(eps / f.side)
	fc := math.Floor((p.X - f.originX) / f.side)
	fr := math.Floor((p.Y - f.originY) / f.side)
	c0, c1, ok := clampSpan(fc-reach, fc+reach, f.cols)
	if !ok {
		return dst, 0, 0
	}
	r0, r1, ok := clampSpan(fr-reach, fr+reach, f.rows)
	if !ok {
		return dst, 0, 0
	}
	c0, r0 = max(c0, v.halo.C0), max(r0, v.halo.R0)
	c1, r1 = min(c1, v.halo.C1-1), min(r1, v.halo.R1-1)
	if c0 > c1 || r0 > r1 {
		return dst, 0, 0
	}
	epsSq := eps * eps
	xs, ys, ids, cellStart := f.xs, f.ys, f.ids, f.cellStart
	for r := r0; r <= r1; r++ {
		base := r * f.cols
		start := cellStart[base+c0]
		end := cellStart[base+c1+1]
		candidates += int(end - start)
		dst = kernel.FilterEpsIDs(dst,
			xs[start:end:end], ys[start:end:end], ids[start:end:end],
			p.X, p.Y, epsSq)
	}
	nodesVisited = int(r1-r0+1) * int(c1-c0+1)
	return dst, candidates, nodesVisited
}
