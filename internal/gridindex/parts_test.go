package gridindex_test

import (
	"math/rand"
	"strings"
	"testing"

	"vdbscan/internal/geom"
	"vdbscan/internal/gridindex"
)

// TestGridPartsRoundTrip freezes grids of several shapes, tears each into
// parts, rebuilds via FlatFromParts, and requires identical ε-search
// results.
func TestGridPartsRoundTrip(t *testing.T) {
	for _, n := range []int{0, 10, 100, 3000} {
		pts := blobs(5, n/5, n/10, 50, 1.5, int64(n))
		xs, ys := coords(pts)
		f, err := gridindex.Freeze(xs, ys, 2.0)
		if err != nil {
			t.Fatalf("Freeze: %v", err)
		}
		g, err := gridindex.FlatFromParts(f.Parts())
		if err != nil {
			t.Fatalf("n=%d: FlatFromParts: %v", n, err)
		}
		if g.Stats() != f.Stats() {
			t.Fatalf("n=%d: stats diverge: %+v vs %+v", n, g.Stats(), f.Stats())
		}
		rnd := rand.New(rand.NewSource(int64(n)))
		for q := 0; q < 50; q++ {
			p := geom.Point{X: rnd.Float64() * 50, Y: rnd.Float64() * 50}
			eps := rnd.Float64() * 5
			want, wc, wn := f.EpsSearch(p, eps, nil)
			got, gc, gn := g.EpsSearch(p, eps, nil)
			if wc != gc || wn != gn || len(want) != len(got) {
				t.Fatalf("n=%d: search diverged: %d/%d/%d vs %d/%d/%d",
					n, len(want), wc, wn, len(got), gc, gn)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("n=%d: result %d: %d vs %d", n, i, want[i], got[i])
				}
			}
		}
	}
}

// TestGridFlatFromPartsRejects feeds structurally corrupt parts and
// requires a descriptive error, never a panic.
func TestGridFlatFromPartsRejects(t *testing.T) {
	pts := blobs(4, 50, 20, 30, 1, 9)
	xs, ys := coords(pts)
	f, err := gridindex.Freeze(xs, ys, 1.5)
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	cases := []struct {
		name string
		mut  func(p *gridindex.FlatParts)
		want string
	}{
		{"length mismatch", func(p *gridindex.FlatParts) { p.IDs = p.IDs[:len(p.IDs)-1] }, "length"},
		{"negative shape", func(p *gridindex.FlatParts) { p.Cols = -1 }, "shape"},
		{"cellStart truncated", func(p *gridindex.FlatParts) { p.CellStart = p.CellStart[:len(p.CellStart)-1] }, "cellStart"},
		{"cellStart not spanning", func(p *gridindex.FlatParts) { p.CellStart[len(p.CellStart)-1]-- }, "span"},
		{"cellStart non-monotone", func(p *gridindex.FlatParts) {
			p.CellStart[1] = p.CellStart[len(p.CellStart)-1] + 1
		}, ""},
		{"id out of range", func(p *gridindex.FlatParts) { p.IDs[0] = int32(len(p.IDs)) }, "id"},
		{"negative id", func(p *gridindex.FlatParts) { p.IDs[0] = -1 }, "id"},
		{"bad side", func(p *gridindex.FlatParts) { p.Side = 0 }, "side"},
		{"nan origin", func(p *gridindex.FlatParts) { p.OriginX = nan() }, "origin"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			parts := f.Parts()
			parts.CellStart = append([]int32(nil), parts.CellStart...)
			parts.IDs = append([]int32(nil), parts.IDs...)
			tc.mut(&parts)
			_, err := gridindex.FlatFromParts(parts)
			if err == nil {
				t.Fatalf("corrupt parts accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func nan() float64 {
	var z float64
	return z / z
}
