package gridindex_test

import (
	"math/rand"
	"sort"
	"testing"

	"vdbscan/internal/geom"
	"vdbscan/internal/gridindex"
)

// gridRects cuts the grid's cell rectangle into a k×k set of equal cell
// spans (the partitioner proper lives in internal/tiling; these tests
// only need *some* disjoint cover).
func gridRects(f *gridindex.Flat, k int32) []gridindex.CellRect {
	cols, rows := f.Shape()
	if k > cols {
		k = cols
	}
	if k > rows {
		k = rows
	}
	if k < 1 {
		k = 1
	}
	cut := func(n, i int32) int32 { return n * i / k }
	var rects []gridindex.CellRect
	for ri := int32(0); ri < k; ri++ {
		for ci := int32(0); ci < k; ci++ {
			r := gridindex.CellRect{
				C0: cut(cols, ci), R0: cut(rows, ri),
				C1: cut(cols, ci+1), R1: cut(rows, ri+1),
			}
			if !r.Empty() {
				rects = append(rects, r)
			}
		}
	}
	return rects
}

// TestTileEpsSearchMatchesFull is the exactness cornerstone: for every
// owned query point of every tile, the halo-clamped search must equal
// the full-grid search — same ids, same candidate count, same cells
// visited.
func TestTileEpsSearchMatchesFull(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		pts := blobs(6, 120, 80, 50, 1.2, seed)
		eps := 0.9 + 0.3*float64(seed)
		xs, ys := coords(pts)
		f, err := gridindex.Freeze(xs, ys, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int32{2, 3, 5} {
			for _, rect := range gridRects(f, k) {
				v := f.Tile(rect, eps)
				v.OwnedRuns(func(start, end int32) {
					for s := start; s < end; s++ {
						x, y := f.SlotCoords(s)
						p := geom.Point{X: x, Y: y}
						got, gc, gn := v.EpsSearch(p, eps, nil)
						want, wc, wn := f.EpsSearch(p, eps, nil)
						if gc != wc || gn != wn {
							t.Fatalf("seed=%d k=%d slot=%d: counts (%d,%d) want (%d,%d)",
								seed, k, s, gc, gn, wc, wn)
						}
						sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
						sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
						if len(got) != len(want) {
							t.Fatalf("seed=%d k=%d slot=%d: %d neighbors, want %d",
								seed, k, s, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("seed=%d k=%d slot=%d: ids %v want %v",
									seed, k, s, got, want)
							}
						}
					}
				})
			}
		}
	}
}

// TestOwnedRunsCoverGridOnce: across a disjoint tile cover, every grid
// slot is yielded by OwnedRuns exactly once.
func TestOwnedRunsCoverGridOnce(t *testing.T) {
	pts := blobs(5, 200, 100, 40, 1.0, 7)
	const eps = 1.1
	xs, ys := coords(pts)
	f, err := gridindex.Freeze(xs, ys, eps)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int32{1, 2, 4, 7} {
		seen := make([]int, f.Len())
		total := 0
		for _, rect := range gridRects(f, k) {
			v := f.Tile(rect, eps)
			v.OwnedRuns(func(start, end int32) {
				if start >= end {
					t.Fatalf("empty run [%d,%d) yielded", start, end)
				}
				for s := start; s < end; s++ {
					seen[s]++
				}
				total += int(end - start)
			})
			if got := v.OwnedPoints(); got != ownedBrute(f, rect) {
				t.Fatalf("k=%d OwnedPoints=%d want %d", k, got, ownedBrute(f, rect))
			}
		}
		if total != f.Len() {
			t.Fatalf("k=%d covered %d slots, want %d", k, total, f.Len())
		}
		for s, c := range seen {
			if c != 1 {
				t.Fatalf("k=%d slot %d covered %d times", k, s, c)
			}
		}
	}
}

func ownedBrute(f *gridindex.Flat, rect gridindex.CellRect) int {
	n := 0
	for r := rect.R0; r < rect.R1; r++ {
		lo, hi := f.CellRange(r, rect.C0, rect.C1)
		n += int(hi - lo)
	}
	return n
}

// TestSeamRunsContainCrossTileNeighbors: seam runs are a subset of the
// owned runs with no duplicates, and every owned point that has any
// neighbor (within eps) owned by a different tile lies in a seam run —
// so a merge that only revisits seam points sees every cross-tile edge.
func TestSeamRunsContainCrossTileNeighbors(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		pts := blobs(4, 150, 120, 40, 1.3, 100+seed)
		eps := 1.0 + 0.4*float64(seed)
		xs, ys := coords(pts)
		f, err := gridindex.Freeze(xs, ys, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int32{2, 3, 4} {
			rects := gridRects(f, k)
			// slot -> owning tile
			owner := make([]int, f.Len())
			for ti, rect := range rects {
				v := f.Tile(rect, eps)
				v.OwnedRuns(func(start, end int32) {
					for s := start; s < end; s++ {
						owner[s] = ti
					}
				})
			}
			// caller id -> slot, to translate EpsSearch ids back
			slotOf := make([]int32, f.Len())
			for s := int32(0); s < int32(f.Len()); s++ {
				slotOf[f.SlotID(s)] = s
			}
			for ti, rect := range rects {
				v := f.Tile(rect, eps)
				seam := make(map[int32]bool)
				v.SeamRuns(func(start, end int32) {
					for s := start; s < end; s++ {
						if seam[s] {
							t.Fatalf("seed=%d k=%d tile=%d: slot %d in two seam runs", seed, k, ti, s)
						}
						if owner[s] != ti {
							t.Fatalf("seed=%d k=%d tile=%d: seam slot %d not owned", seed, k, ti, s)
						}
						seam[s] = true
					}
				})
				v.OwnedRuns(func(start, end int32) {
					for s := start; s < end; s++ {
						x, y := f.SlotCoords(s)
						nbrs, _, _ := f.EpsSearch(geom.Point{X: x, Y: y}, eps, nil)
						cross := false
						for _, id := range nbrs {
							if owner[slotOf[id]] != ti {
								cross = true
								break
							}
						}
						if cross && !seam[s] {
							t.Fatalf("seed=%d k=%d tile=%d: slot %d has cross-tile neighbor but is not seam",
								seed, k, ti, s)
						}
					}
				})
			}
		}
	}
}

// TestTileHaloClamped: halos never leave the grid, always contain the
// owned rect, and extend exactly Reach cells where the grid allows.
func TestTileHaloClamped(t *testing.T) {
	pts := blobs(3, 100, 50, 30, 0.8, 42)
	const eps = 1.7
	xs, ys := coords(pts)
	f, err := gridindex.Freeze(xs, ys, eps)
	if err != nil {
		t.Fatal(err)
	}
	cols, rows := f.Shape()
	reach := f.Reach(eps)
	if reach < 1 {
		t.Fatalf("reach = %d, want >= 1", reach)
	}
	rnd := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		c0, r0 := rnd.Int31n(cols), rnd.Int31n(rows)
		rect := gridindex.CellRect{
			C0: c0, R0: r0,
			C1: c0 + 1 + rnd.Int31n(cols-c0), R1: r0 + 1 + rnd.Int31n(rows-r0),
		}
		v := f.Tile(rect, eps)
		h := v.Halo()
		if h.C0 > rect.C0 || h.R0 > rect.R0 || h.C1 < rect.C1 || h.R1 < rect.R1 {
			t.Fatalf("halo %+v does not contain owned %+v", h, rect)
		}
		if h.C0 < 0 || h.R0 < 0 || h.C1 > cols || h.R1 > rows {
			t.Fatalf("halo %+v exceeds grid %dx%d", h, cols, rows)
		}
		if want := max(0, rect.C0-reach); h.C0 != want {
			t.Fatalf("halo C0 = %d, want %d", h.C0, want)
		}
		if want := min(rows, rect.R1+reach); h.R1 != want {
			t.Fatalf("halo R1 = %d, want %d", h.R1, want)
		}
	}
}
