package gridindex

import (
	"errors"
	"math"
	"testing"

	"vdbscan/internal/geom"
)

// TestGridShapeBoundaries drives gridShape across the degenerate extents
// the coarsening loop must survive: it must terminate on every input and
// either land at ≤ MaxCells or return ErrGridTooLarge — never spin, never
// overflow into a bogus shape.
func TestGridShapeBoundaries(t *testing.T) {
	box := func(w, h float64) geom.MBB { return geom.MBB{MinX: 0, MinY: 0, MaxX: w, MaxY: h} }
	cases := []struct {
		name    string
		b       geom.MBB
		side    float64
		wantErr bool
	}{
		{"zero span", box(0, 0), 1, false},
		{"tiny span huge side", box(1e-300, 1e-300), 1e300, false},
		{"huge span tiny side", box(1e300, 1e300), 1e-300, false},
		{"huge span denormal side", box(1e308, 1e308), 5e-324, false},
		{"max finite span", box(math.MaxFloat64, math.MaxFloat64), 1, false},
		{"asymmetric huge", box(1e307, 1e-307), 1e-310, false},
		{"denormal span denormal side", box(5e-324, 5e-324), 5e-324, false},
		{"span overflows to inf", geom.MBB{MinX: -math.MaxFloat64, MinY: 0, MaxX: math.MaxFloat64, MaxY: 1}, 1, true},
		{"nan span", geom.MBB{MinX: math.NaN(), MinY: 0, MaxX: 1, MaxY: 1}, 1, true},
		{"negative span", geom.MBB{MinX: 1, MinY: 0, MaxX: 0, MaxY: 1}, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cols, rows, side, err := gridShape(tc.b, tc.side)
			if tc.wantErr {
				if !errors.Is(err, ErrGridTooLarge) {
					t.Fatalf("want ErrGridTooLarge, got cols=%d rows=%d side=%g err=%v", cols, rows, side, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("gridShape: %v", err)
			}
			if cols < 1 || rows < 1 || int64(cols)*int64(rows) > MaxCells {
				t.Fatalf("bad shape %dx%d", cols, rows)
			}
			if !(side > 0) || math.IsInf(side, 0) || math.IsNaN(side) {
				t.Fatalf("bad side %g", side)
			}
			if side < tc.side {
				t.Fatalf("side shrank: %g < %g", side, tc.side)
			}
			// The landed geometry must actually cover the extent: the last
			// cell's far edge reaches past the span on both axes.
			if float64(cols)*side < tc.b.MaxX-tc.b.MinX || float64(rows)*side < tc.b.MaxY-tc.b.MinY {
				t.Fatalf("%dx%d cells of side %g do not cover %gx%g",
					cols, rows, side, tc.b.MaxX-tc.b.MinX, tc.b.MaxY-tc.b.MinY)
			}
		})
	}
}

// TestGridShapeBadSide pins the side-argument contract.
func TestGridShapeBadSide(t *testing.T) {
	b := geom.MBB{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	for _, side := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, _, _, err := gridShape(b, side); err == nil {
			t.Fatalf("side %g accepted", side)
		}
	}
}

// TestGridShapeCoarsens pins the normal coarsening path: a side far below
// the span must still land within MaxCells without hitting the fallback's
// 2×2 floor when a finer legal geometry exists.
func TestGridShapeCoarsens(t *testing.T) {
	b := geom.MBB{MinX: 0, MinY: 0, MaxX: 1e6, MaxY: 1e6}
	cols, rows, side, err := gridShape(b, 1e-3)
	if err != nil {
		t.Fatalf("gridShape: %v", err)
	}
	cells := int64(cols) * int64(rows)
	if cells > MaxCells || cells < MaxCells/8 {
		t.Fatalf("coarsening landed far from the cap: %dx%d = %d cells (cap %d)", cols, rows, cells, MaxCells)
	}
	if side <= 1e-3 {
		t.Fatalf("side did not coarsen: %g", side)
	}
}
