// Package gridindex provides a uniform-grid neighbor index — the classic
// alternative to the R-tree for DBSCAN ε-searches (used by G-DBSCAN and
// most GPU implementations the paper surveys in §III).
//
// Points are bucketed into square cells of side ε; an ε-search inspects the
// 3×3 cell block around the query point and distance-filters. Compared to
// the paper's packed R-tree:
//
//   - the grid is ε-specific — a different ε needs a rebuild (or a cell
//     side chosen for the largest ε, degrading smaller-ε searches), whereas
//     ONE pair of R-trees serves every variant: exactly the property
//     variant-based parallelism needs;
//   - for a single ε the grid's O(1) cell addressing is hard to beat.
//
// The ablation benchmarks quantify this trade; the package also serves as
// an independent oracle for the R-tree's search results.
package gridindex

import (
	"fmt"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

// Index is a uniform grid over a point set with cell side = ε.
type Index struct {
	pts     []geom.Point
	eps     float64
	originX float64
	originY float64
	cols    int
	rows    int
	cellOf  []int32   // point -> cell
	cellPts [][]int32 // cell -> points
}

// Build buckets pts into cells of side eps. eps must be positive.
func Build(pts []geom.Point, eps float64) (*Index, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("gridindex: eps must be > 0, got %g", eps)
	}
	ix := &Index{pts: pts, eps: eps}
	if len(pts) == 0 {
		return ix, nil
	}
	b := geom.MBBOfPoints(pts)
	ix.originX, ix.originY = b.MinX, b.MinY
	ix.cols = int((b.MaxX-b.MinX)/eps) + 1
	ix.rows = int((b.MaxY-b.MinY)/eps) + 1
	ix.cellPts = make([][]int32, ix.cols*ix.rows)
	ix.cellOf = make([]int32, len(pts))
	for i, p := range pts {
		c := ix.cell(p)
		ix.cellOf[i] = c
		ix.cellPts[c] = append(ix.cellPts[c], int32(i))
	}
	return ix, nil
}

// cell maps a point to its cell id; points are inside the bounding box by
// construction.
func (ix *Index) cell(p geom.Point) int32 {
	col := int((p.X - ix.originX) / ix.eps)
	row := int((p.Y - ix.originY) / ix.eps)
	if col >= ix.cols {
		col = ix.cols - 1
	}
	if row >= ix.rows {
		row = ix.rows - 1
	}
	return int32(row*ix.cols + col)
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pts) }

// Eps returns the cell side the grid was built for.
func (ix *Index) Eps() float64 { return ix.eps }

// NeighborSearch appends the indices of points within eps of q to dst.
// eps must not exceed the build ε (the 3×3 block would miss neighbors);
// smaller eps is allowed but filters more candidates per cell.
func (ix *Index) NeighborSearch(q geom.Point, eps float64, m *metrics.Counters, dst []int32) ([]int32, error) {
	if eps > ix.eps {
		return dst, fmt.Errorf("gridindex: search eps %g exceeds build eps %g", eps, ix.eps)
	}
	if len(ix.pts) == 0 {
		m.AddNeighborSearches(1)
		return dst, nil
	}
	epsSq := eps * eps
	col := int((q.X - ix.originX) / ix.eps)
	row := int((q.Y - ix.originY) / ix.eps)
	candidates := int64(0)
	for dr := -1; dr <= 1; dr++ {
		r := row + dr
		if r < 0 || r >= ix.rows {
			continue
		}
		for dc := -1; dc <= 1; dc++ {
			c := col + dc
			if c < 0 || c >= ix.cols {
				continue
			}
			for _, i := range ix.cellPts[r*ix.cols+c] {
				candidates++
				if q.DistSq(ix.pts[i]) <= epsSq {
					dst = append(dst, i)
				}
			}
		}
	}
	m.AddNeighborSearches(1)
	m.AddCandidatesExamined(candidates)
	m.AddNeighborsFound(int64(len(dst)))
	return dst, nil
}

// Run executes DBSCAN over the grid index (labels in the input point
// order; there is no pre-sort). m may be nil. p.Eps must equal the build ε
// or be smaller.
func Run(ix *Index, p dbscan.Params, m *metrics.Counters) (*cluster.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Eps > ix.eps {
		return nil, fmt.Errorf("gridindex: run eps %g exceeds build eps %g", p.Eps, ix.eps)
	}
	n := ix.Len()
	res := cluster.NewResult(n)
	visited := make([]bool, n)
	var cid int32
	queue := make([]int32, 0, 1024)
	var scratch []int32
	absorb := func(neighbors []int32, cid int32) {
		for _, k := range neighbors {
			if !visited[k] {
				visited[k] = true
				queue = append(queue, k)
			}
			if res.Labels[k] <= 0 {
				res.Labels[k] = cid
			}
		}
	}
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		var err error
		scratch, err = ix.NeighborSearch(ix.pts[i], p.Eps, m, scratch[:0])
		if err != nil {
			return nil, err
		}
		if len(scratch) < p.MinPts {
			res.Labels[i] = cluster.Noise
			continue
		}
		cid++
		res.Labels[i] = cid
		queue = queue[:0]
		absorb(scratch, cid)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			scratch, err = ix.NeighborSearch(ix.pts[j], p.Eps, m, scratch[:0])
			if err != nil {
				return nil, err
			}
			if len(scratch) >= p.MinPts {
				absorb(scratch, cid)
			}
		}
	}
	res.NumClusters = int(cid)
	return res, nil
}

// Stats describes the grid shape.
type Stats struct {
	Cols, Rows int
	Cells      int
	NonEmpty   int
	MaxPerCell int
}

// Stats reports grid occupancy.
func (ix *Index) Stats() Stats {
	s := Stats{Cols: ix.cols, Rows: ix.rows, Cells: len(ix.cellPts)}
	for _, ps := range ix.cellPts {
		if len(ps) > 0 {
			s.NonEmpty++
		}
		if len(ps) > s.MaxPerCell {
			s.MaxPerCell = len(ps)
		}
	}
	return s
}
