// Package gridindex provides a uniform-grid neighbor index — the classic
// alternative to the R-tree for DBSCAN ε-searches (the structure behind
// G-DBSCAN, de Berg et al.'s faster sequential DBSCAN, and most GPU
// implementations the paper surveys in §III).
//
// Points are bucketed into square cells of side ≥ ε; an ε-search inspects
// the cell block around the query point and distance-filters. Compared to
// the paper's packed R-tree:
//
//   - the grid's side is chosen at build time — a larger ε than the side
//     widens the scanned block, so one build sized for the variant set's
//     max ε serves every variant (smaller ε just filters more candidates
//     per cell);
//   - for point sets without extreme density skew the grid's O(1) cell
//     addressing and purely sequential candidate runs are hard to beat.
//
// Two implementations live here:
//
//   - Index: the original pointer-chasing ([][]int32 buckets) build. It
//     stays as the readable reference and as an independent oracle for
//     the production layouts' search results.
//   - Flat: the production layout, mirroring rtree.Flat's freeze design.
//     Coordinates are grid-sorted into struct-of-arrays slices with a CSR
//     cellStart array, so a search touches three contiguous runs (one per
//     cell row of the 3×3 block) and hands each to the shared block
//     kernel. Steady-state searches allocate nothing.
//
// Both builds cap the total cell count (MaxCells): a tiny ε over a wide
// extent coarsens the side instead of allocating cols·rows without bound —
// coarser is always correct because searches only require eps ≤ side.
package gridindex

import (
	"errors"
	"fmt"
	"math"

	"vdbscan/internal/cluster"
	"vdbscan/internal/geom"
	"vdbscan/internal/kernel"
	"vdbscan/internal/metrics"
)

// MaxCells caps cols·rows for any grid build. 2²¹ cells keep the CSR
// offsets array at 8 MiB worst case; builds whose requested side would
// exceed the cap coarsen the side until it fits.
const MaxCells = 1 << 21

// ErrGridTooLarge mirrors rtree.ErrFlatTooLarge: the point set exceeds
// int32 addressing, or its bounding box is non-finite (NaN/±Inf
// coordinates), so no grid geometry can cover it.
var ErrGridTooLarge = errors.New("gridindex: point set too large or bounds non-finite for grid layout")

// gridShape picks the cell geometry for a bounding box: the number of
// columns and rows at the requested side, coarsening the side until the
// total cell count fits MaxCells. Degenerate geometry (NaN spans, or spans
// whose difference overflows to ±Inf) returns ErrGridTooLarge.
//
// The coarsening loop provably terminates: each step multiplies side by a
// factor > 1.001, so the iteration cap is never the binding constraint for
// well-formed inputs, and any stall (a denormal side whose product rounds
// to itself) or float overflow drops to the one-shot fallback of
// side = max(spanX, spanY), which yields at most 2×2 cells.
func gridShape(b geom.MBB, side float64) (cols, rows int, outSide float64, err error) {
	if !(side > 0) || math.IsInf(side, 0) {
		return 0, 0, 0, fmt.Errorf("gridindex: cell side must be positive and finite, got %g", side)
	}
	spanX, spanY := b.MaxX-b.MinX, b.MaxY-b.MinY
	if !(spanX >= 0) || !(spanY >= 0) || math.IsInf(spanX, 0) || math.IsInf(spanY, 0) {
		return 0, 0, 0, ErrGridTooLarge
	}
	for iter := 0; iter < 64; iter++ {
		fcols := math.Floor(spanX/side) + 1
		frows := math.Floor(spanY/side) + 1
		if fcols*frows <= MaxCells { // also false for ±Inf products
			return int(fcols), int(frows), side, nil
		}
		// Coarsen just past the cap; the 1.001 margin absorbs float
		// rounding so the loop converges in one or two iterations.
		next := side * math.Sqrt(fcols*frows/float64(MaxCells)) * 1.001
		if !(next > side) || math.IsInf(next, 0) {
			break // stalled or overflowed — take the fallback
		}
		side = next
	}
	// Fallback for spans the multiplicative walk cannot reach (a denormal
	// side under a huge extent drives fcols·frows to +Inf): one cell per
	// axis span always fits.
	side = math.Max(side, math.Max(spanX, spanY))
	fcols := math.Floor(spanX/side) + 1
	frows := math.Floor(spanY/side) + 1
	if !(fcols >= 1) || !(frows >= 1) || fcols*frows > MaxCells {
		return 0, 0, 0, ErrGridTooLarge
	}
	return int(fcols), int(frows), side, nil
}

// Index is a uniform grid over a point set, cell side ≥ the requested ε
// (coarsened when the extent would exceed MaxCells).
type Index struct {
	pts     []geom.Point
	eps     float64 // requested build ε
	side    float64 // actual cell side (≥ eps)
	originX float64
	originY float64
	cols    int
	rows    int
	cellOf  []int32   // point -> cell
	cellPts [][]int32 // cell -> points
}

// Build buckets pts into cells of side eps (coarsened to respect
// MaxCells). eps must be positive and finite.
func Build(pts []geom.Point, eps float64) (*Index, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("gridindex: eps must be > 0, got %g", eps)
	}
	if int64(len(pts)) > math.MaxInt32 {
		return nil, ErrGridTooLarge
	}
	ix := &Index{pts: pts, eps: eps, side: eps}
	if len(pts) == 0 {
		return ix, nil
	}
	b := geom.MBBOfPoints(pts)
	var err error
	ix.cols, ix.rows, ix.side, err = gridShape(b, eps)
	if err != nil {
		return nil, err
	}
	ix.originX, ix.originY = b.MinX, b.MinY
	ix.cellPts = make([][]int32, ix.cols*ix.rows)
	ix.cellOf = make([]int32, len(pts))
	for i, p := range pts {
		c := ix.cell(p)
		ix.cellOf[i] = c
		ix.cellPts[c] = append(ix.cellPts[c], int32(i))
	}
	return ix, nil
}

// cell maps a point to its cell id; points are inside the bounding box by
// construction.
func (ix *Index) cell(p geom.Point) int32 {
	col := int((p.X - ix.originX) / ix.side)
	row := int((p.Y - ix.originY) / ix.side)
	if col >= ix.cols {
		col = ix.cols - 1
	}
	if row >= ix.rows {
		row = ix.rows - 1
	}
	return int32(row*ix.cols + col)
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pts) }

// Eps returns the ε the grid was built for.
func (ix *Index) Eps() float64 { return ix.eps }

// Side returns the actual cell side (≥ Eps when the build coarsened).
func (ix *Index) Side() float64 { return ix.side }

// NeighborSearch appends the indices of points within eps of q to dst.
// eps must not exceed the cell side (the 3×3 block would miss neighbors);
// smaller eps is allowed but filters more candidates per cell.
func (ix *Index) NeighborSearch(q geom.Point, eps float64, m *metrics.Counters, dst []int32) ([]int32, error) {
	if eps > ix.side {
		return dst, fmt.Errorf("gridindex: search eps %g exceeds cell side %g", eps, ix.side)
	}
	if len(ix.pts) == 0 {
		m.AddNeighborSearches(1)
		return dst, nil
	}
	epsSq := eps * eps
	col := int((q.X - ix.originX) / ix.side)
	row := int((q.Y - ix.originY) / ix.side)
	candidates := int64(0)
	found := 0
	for dr := -1; dr <= 1; dr++ {
		r := row + dr
		if r < 0 || r >= ix.rows {
			continue
		}
		for dc := -1; dc <= 1; dc++ {
			c := col + dc
			if c < 0 || c >= ix.cols {
				continue
			}
			for _, i := range ix.cellPts[r*ix.cols+c] {
				candidates++
				if q.DistSq(ix.pts[i]) <= epsSq {
					dst = append(dst, i)
					found++
				}
			}
		}
	}
	m.AddNeighborSearches(1)
	m.AddCandidatesExamined(candidates)
	m.AddNeighborsFound(int64(found))
	return dst, nil
}

// Run executes DBSCAN over the grid index (labels in the input point
// order; there is no pre-sort). m may be nil. eps must not exceed the
// cell side; minPts must be ≥ 1.
func Run(ix *Index, eps float64, minPts int, m *metrics.Counters) (*cluster.Result, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("gridindex: eps must be > 0, got %g", eps)
	}
	if minPts < 1 {
		return nil, fmt.Errorf("gridindex: minpts must be >= 1, got %d", minPts)
	}
	if eps > ix.side {
		return nil, fmt.Errorf("gridindex: run eps %g exceeds cell side %g", eps, ix.side)
	}
	n := ix.Len()
	res := cluster.NewResult(n)
	visited := make([]bool, n)
	var cid int32
	queue := make([]int32, 0, 1024)
	var scratch []int32
	absorb := func(neighbors []int32, cid int32) {
		for _, k := range neighbors {
			if !visited[k] {
				visited[k] = true
				queue = append(queue, k)
			}
			if res.Labels[k] <= 0 {
				res.Labels[k] = cid
			}
		}
	}
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		var err error
		scratch, err = ix.NeighborSearch(ix.pts[i], eps, m, scratch[:0])
		if err != nil {
			return nil, err
		}
		if len(scratch) < minPts {
			res.Labels[i] = cluster.Noise
			continue
		}
		cid++
		res.Labels[i] = cid
		queue = queue[:0]
		absorb(scratch, cid)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			scratch, err = ix.NeighborSearch(ix.pts[j], eps, m, scratch[:0])
			if err != nil {
				return nil, err
			}
			if len(scratch) >= minPts {
				absorb(scratch, cid)
			}
		}
	}
	res.NumClusters = int(cid)
	return res, nil
}

// Stats describes the grid shape.
type Stats struct {
	Cols, Rows int
	Cells      int
	NonEmpty   int
	MaxPerCell int
}

// Stats reports grid occupancy.
func (ix *Index) Stats() Stats {
	s := Stats{Cols: ix.cols, Rows: ix.rows, Cells: len(ix.cellPts)}
	for _, ps := range ix.cellPts {
		if len(ps) > 0 {
			s.NonEmpty++
		}
		if len(ps) > s.MaxPerCell {
			s.MaxPerCell = len(ps)
		}
	}
	return s
}

// Flat is the frozen, production grid layout, the cell-grid analogue of
// rtree.Flat. Freeze grid-sorts the coordinates into struct-of-arrays
// slices and records one CSR offset per cell, so cell (r, c) owns the
// half-open slot range [cellStart[r·cols+c], cellStart[r·cols+c+1]) and a
// row of adjacent cells is ONE contiguous run — an ε-search issues a
// single block-kernel call per scanned row. The ids slice maps each grid
// slot back to the caller's index space. A Flat is immutable and safe for
// concurrent searches; steady-state searches allocate nothing.
type Flat struct {
	side      float64
	originX   float64
	originY   float64
	cols      int32
	rows      int32
	cellStart []int32 // len cols·rows+1, CSR offsets into xs/ys/ids
	xs, ys    []float64
	ids       []int32
}

// Freeze builds the flat grid over parallel coordinate slices with cells
// of the given side (coarsened to respect MaxCells). The slices are
// copied — the Flat does not alias caller memory. Non-finite coordinates
// or > MaxInt32 points return ErrGridTooLarge.
func Freeze(x, y []float64, side float64) (*Flat, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("gridindex: coordinate slices differ in length: %d vs %d", len(x), len(y))
	}
	if int64(len(x)) > math.MaxInt32 {
		return nil, ErrGridTooLarge
	}
	if !(side > 0) || math.IsInf(side, 0) {
		return nil, fmt.Errorf("gridindex: cell side must be positive and finite, got %g", side)
	}
	n := len(x)
	if n == 0 {
		return &Flat{side: side, cols: 0, rows: 0, cellStart: []int32{0}}, nil
	}
	b := geom.MBB{MinX: x[0], MinY: y[0], MaxX: x[0], MaxY: y[0]}
	for i := 1; i < n; i++ {
		b = b.ExtendPoint(geom.Point{X: x[i], Y: y[i]})
	}
	cols, rows, side, err := gridShape(b, side)
	if err != nil {
		return nil, err
	}
	f := &Flat{
		side:    side,
		originX: b.MinX,
		originY: b.MinY,
		cols:    int32(cols),
		rows:    int32(rows),
	}
	cells := cols * rows
	// Counting sort into CSR: count per cell, prefix-sum, scatter.
	cellOf := make([]int32, n)
	f.cellStart = make([]int32, cells+1)
	for i := 0; i < n; i++ {
		col := int((x[i] - f.originX) / side)
		row := int((y[i] - f.originY) / side)
		if col >= cols {
			col = cols - 1
		}
		if row >= rows {
			row = rows - 1
		}
		c := int32(row*cols + col)
		cellOf[i] = c
		f.cellStart[c+1]++
	}
	for c := 0; c < cells; c++ {
		f.cellStart[c+1] += f.cellStart[c]
	}
	f.xs = make([]float64, n)
	f.ys = make([]float64, n)
	f.ids = make([]int32, n)
	next := make([]int32, cells)
	copy(next, f.cellStart[:cells])
	for i := 0; i < n; i++ {
		c := cellOf[i]
		s := next[c]
		next[c] = s + 1
		f.xs[s] = x[i]
		f.ys[s] = y[i]
		f.ids[s] = int32(i)
	}
	return f, nil
}

// Len returns the number of indexed points.
func (f *Flat) Len() int { return len(f.ids) }

// Side returns the cell side; searches with eps ≤ Side scan the 3×3
// block, larger eps widens the block accordingly.
func (f *Flat) Side() float64 { return f.side }

// Stats reports grid occupancy (shape shared with Index.Stats).
func (f *Flat) Stats() Stats {
	s := Stats{Cols: int(f.cols), Rows: int(f.rows), Cells: int(f.cols) * int(f.rows)}
	for c := 0; c < s.Cells; c++ {
		n := int(f.cellStart[c+1] - f.cellStart[c])
		if n > 0 {
			s.NonEmpty++
		}
		if n > s.MaxPerCell {
			s.MaxPerCell = n
		}
	}
	return s
}

// clampSpan clamps the float cell range [lo, hi] to [0, n); ok is false
// when the range misses the grid entirely (including NaN coordinates).
func clampSpan(lo, hi float64, n int32) (int32, int32, bool) {
	if !(lo < float64(n)) || !(hi >= 0) { // also rejects NaN
		return 0, 0, false
	}
	if lo < 0 {
		lo = 0
	}
	if hi > float64(n-1) {
		hi = float64(n - 1)
	}
	return int32(lo), int32(hi), true
}

// EpsSearch appends the indices (in the caller's space) of all points
// within eps of p to dst, returning the triple rtree.Flat.EpsSearch
// returns: the grown slice, candidate points distance-checked, and cells
// visited (the grid's "nodes"). The scanned block is 3×3 for eps ≤ Side
// and widens to ⌈eps/Side⌉ cells per direction beyond that, so any eps is
// answered exactly. Allocation-free once dst has warmed to its
// high-water capacity.
func (f *Flat) EpsSearch(p geom.Point, eps float64, dst []int32) (out []int32, candidates, nodesVisited int) {
	if len(f.ids) == 0 || !(eps >= 0) {
		return dst, 0, 0
	}
	reach := math.Ceil(eps / f.side)
	fc := math.Floor((p.X - f.originX) / f.side)
	fr := math.Floor((p.Y - f.originY) / f.side)
	c0, c1, ok := clampSpan(fc-reach, fc+reach, f.cols)
	if !ok {
		return dst, 0, 0
	}
	r0, r1, ok := clampSpan(fr-reach, fr+reach, f.rows)
	if !ok {
		return dst, 0, 0
	}
	epsSq := eps * eps
	xs, ys, ids, cellStart := f.xs, f.ys, f.ids, f.cellStart
	for r := r0; r <= r1; r++ {
		base := r * f.cols
		start := cellStart[base+c0]
		end := cellStart[base+c1+1]
		candidates += int(end - start)
		dst = kernel.FilterEpsIDs(dst,
			xs[start:end:end], ys[start:end:end], ids[start:end:end],
			p.X, p.Y, epsSq)
	}
	nodesVisited = int(r1-r0+1) * int(c1-c0+1)
	return dst, candidates, nodesVisited
}
