package gridindex

import (
	"math/rand"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

func blobs(k, m, noise int, extent, sigma float64, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, k*m+noise)
	for c := 0; c < k; c++ {
		cx, cy := rnd.Float64()*extent, rnd.Float64()*extent
		for i := 0; i < m; i++ {
			pts = append(pts, geom.Point{
				X: cx + rnd.NormFloat64()*sigma,
				Y: cy + rnd.NormFloat64()*sigma,
			})
		}
	}
	for i := 0; i < noise; i++ {
		pts = append(pts, geom.Point{X: rnd.Float64() * extent, Y: rnd.Float64() * extent})
	}
	return pts
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	ix, err := Build(nil, 1)
	if err != nil || ix.Len() != 0 {
		t.Fatalf("empty build: %v %v", ix, err)
	}
	got, err := ix.NeighborSearch(geom.Point{X: 0, Y: 0}, 1, nil, nil)
	if err != nil || len(got) != 0 {
		t.Errorf("empty search: %v %v", got, err)
	}
}

func TestNeighborSearchMatchesLinear(t *testing.T) {
	pts := blobs(3, 300, 100, 30, 0.8, 1)
	const eps = 1.2
	ix, err := Build(pts, eps)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		q := geom.Point{X: rnd.Float64() * 30, Y: rnd.Float64() * 30}
		searchEps := eps
		if trial%2 == 0 {
			searchEps = eps * rnd.Float64() // smaller eps is allowed
		}
		if searchEps == 0 {
			continue
		}
		got, err := ix.NeighborSearch(q, searchEps, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, p := range pts {
			if q.DistSq(p) <= searchEps*searchEps {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("search(%v, %g) = %d, want %d", q, searchEps, len(got), want)
		}
	}
}

func TestNeighborSearchRejectsLargerEps(t *testing.T) {
	ix, _ := Build([]geom.Point{{X: 0, Y: 0}}, 1)
	if _, err := ix.NeighborSearch(geom.Point{X: 0, Y: 0}, 2, nil, nil); err == nil {
		t.Error("eps > build eps accepted")
	}
}

func TestRunMatchesRTreeDBSCAN(t *testing.T) {
	pts := blobs(4, 200, 150, 30, 0.7, 3)
	p := dbscan.Params{Eps: 0.9, MinPts: 4}
	gix, err := Build(pts, p.Eps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(gix, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	rix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 16})
	wantSorted, err := dbscan.Run(rix, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := wantSorted.Remap(rix.Fwd)
	if got.NumClusters != want.NumClusters {
		t.Fatalf("clusters: grid %d vs rtree %d", got.NumClusters, want.NumClusters)
	}
	if got.NumNoise() != want.NumNoise() {
		t.Fatalf("noise: grid %d vs rtree %d", got.NumNoise(), want.NumNoise())
	}
	if d := cluster.DisagreementCount(got, want); d > len(pts)/200 {
		t.Fatalf("disagreements = %d", d)
	}
}

func TestRunValidation(t *testing.T) {
	ix, _ := Build(blobs(1, 50, 0, 10, 0.5, 4), 1)
	if _, err := Run(ix, dbscan.Params{Eps: 0, MinPts: 3}, nil); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := Run(ix, dbscan.Params{Eps: 2, MinPts: 3}, nil); err == nil {
		t.Error("eps > build eps accepted")
	}
}

func TestMetricsAndStats(t *testing.T) {
	pts := blobs(2, 200, 50, 20, 0.5, 5)
	ix, _ := Build(pts, 1)
	var m metrics.Counters
	if _, err := Run(ix, dbscan.Params{Eps: 1, MinPts: 4}, &m); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.NeighborSearches != int64(len(pts)) {
		t.Errorf("searches = %d, want %d", s.NeighborSearches, len(pts))
	}
	if s.CandidatesExamined < s.NeighborsFound {
		t.Error("candidates < found")
	}
	gs := ix.Stats()
	if gs.Cells <= 0 || gs.NonEmpty <= 0 || gs.MaxPerCell <= 0 {
		t.Errorf("stats = %+v", gs)
	}
	if gs.Cols*gs.Rows != gs.Cells {
		t.Errorf("cell count mismatch: %+v", gs)
	}
}

func TestSinglePointAndDuplicates(t *testing.T) {
	ix, _ := Build([]geom.Point{{X: 5, Y: 5}}, 1)
	res, err := Run(ix, dbscan.Params{Eps: 1, MinPts: 1}, nil)
	if err != nil || res.NumClusters != 1 {
		t.Fatalf("single: %v %v", res, err)
	}
	dup := make([]geom.Point, 30)
	for i := range dup {
		dup[i] = geom.Point{X: 2, Y: 2}
	}
	ix, _ = Build(dup, 0.5)
	res, _ = Run(ix, dbscan.Params{Eps: 0.5, MinPts: 4}, nil)
	if res.NumClusters != 1 || res.NumClustered() != 30 {
		t.Fatalf("duplicates: %v", res)
	}
}
