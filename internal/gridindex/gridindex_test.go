package gridindex_test

import (
	"math"
	"math/rand"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/gridindex"
	"vdbscan/internal/metrics"
)

func blobs(k, m, noise int, extent, sigma float64, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, k*m+noise)
	for c := 0; c < k; c++ {
		cx, cy := rnd.Float64()*extent, rnd.Float64()*extent
		for i := 0; i < m; i++ {
			pts = append(pts, geom.Point{
				X: cx + rnd.NormFloat64()*sigma,
				Y: cy + rnd.NormFloat64()*sigma,
			})
		}
	}
	for i := 0; i < noise; i++ {
		pts = append(pts, geom.Point{X: rnd.Float64() * extent, Y: rnd.Float64() * extent})
	}
	return pts
}

func coords(pts []geom.Point) (xs, ys []float64) {
	xs = make([]float64, len(pts))
	ys = make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	return xs, ys
}

func TestBuildValidation(t *testing.T) {
	if _, err := gridindex.Build(nil, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	ix, err := gridindex.Build(nil, 1)
	if err != nil || ix.Len() != 0 {
		t.Fatalf("empty build: %v %v", ix, err)
	}
	got, err := ix.NeighborSearch(geom.Point{X: 0, Y: 0}, 1, nil, nil)
	if err != nil || len(got) != 0 {
		t.Errorf("empty search: %v %v", got, err)
	}
}

func TestBuildCapsCellCount(t *testing.T) {
	// Tiny ε over a wide extent: the uncapped build would want ~10¹⁸
	// cells. The capped build must coarsen the side instead and still
	// answer searches exactly.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0.25}, {X: 1e6, Y: 1e6}, {X: 1e6 + 0.3, Y: 1e6}}
	const eps = 1e-3
	ix, err := gridindex.Build(pts, eps)
	if err != nil {
		t.Fatal(err)
	}
	if s := ix.Stats(); s.Cells > gridindex.MaxCells {
		t.Fatalf("cells = %d exceeds cap %d", s.Cells, gridindex.MaxCells)
	}
	if ix.Side() < eps {
		t.Fatalf("side %g shrank below requested eps %g", ix.Side(), eps)
	}
	got, err := ix.NeighborSearch(geom.Point{X: 0, Y: 0}, eps, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("capped-grid search = %v, want [0]", got)
	}
}

func TestBuildRejectsNonFinite(t *testing.T) {
	for _, bad := range [][]geom.Point{
		{{X: math.NaN(), Y: 0}, {X: 1, Y: 1}},
		{{X: math.Inf(1), Y: 0}, {X: -1e308, Y: 1}},
	} {
		if _, err := gridindex.Build(bad, 1); err == nil {
			t.Errorf("non-finite points accepted: %v", bad)
		}
	}
}

func TestNeighborSearchMatchesLinear(t *testing.T) {
	pts := blobs(3, 300, 100, 30, 0.8, 1)
	const eps = 1.2
	ix, err := gridindex.Build(pts, eps)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		q := geom.Point{X: rnd.Float64() * 30, Y: rnd.Float64() * 30}
		searchEps := eps
		if trial%2 == 0 {
			searchEps = eps * rnd.Float64() // smaller eps is allowed
		}
		if searchEps == 0 {
			continue
		}
		got, err := ix.NeighborSearch(q, searchEps, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, p := range pts {
			if q.DistSq(p) <= searchEps*searchEps {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("search(%v, %g) = %d, want %d", q, searchEps, len(got), want)
		}
	}
}

func TestNeighborSearchRejectsLargerEps(t *testing.T) {
	ix, _ := gridindex.Build([]geom.Point{{X: 0, Y: 0}}, 1)
	if _, err := ix.NeighborSearch(geom.Point{X: 0, Y: 0}, 2, nil, nil); err == nil {
		t.Error("eps > cell side accepted")
	}
}

func TestRunMatchesRTreeDBSCAN(t *testing.T) {
	pts := blobs(4, 200, 150, 30, 0.7, 3)
	p := dbscan.Params{Eps: 0.9, MinPts: 4}
	gix, err := gridindex.Build(pts, p.Eps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := gridindex.Run(gix, p.Eps, p.MinPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	rix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 16})
	wantSorted, err := dbscan.Run(rix, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := wantSorted.Remap(rix.Fwd)
	if got.NumClusters != want.NumClusters {
		t.Fatalf("clusters: grid %d vs rtree %d", got.NumClusters, want.NumClusters)
	}
	if got.NumNoise() != want.NumNoise() {
		t.Fatalf("noise: grid %d vs rtree %d", got.NumNoise(), want.NumNoise())
	}
	if d := cluster.DisagreementCount(got, want); d > len(pts)/200 {
		t.Fatalf("disagreements = %d", d)
	}
}

func TestRunValidation(t *testing.T) {
	ix, _ := gridindex.Build(blobs(1, 50, 0, 10, 0.5, 4), 1)
	if _, err := gridindex.Run(ix, 0, 3, nil); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := gridindex.Run(ix, 1, 0, nil); err == nil {
		t.Error("minpts=0 accepted")
	}
	if _, err := gridindex.Run(ix, 2, 3, nil); err == nil {
		t.Error("eps > cell side accepted")
	}
}

func TestMetricsAndStats(t *testing.T) {
	pts := blobs(2, 200, 50, 20, 0.5, 5)
	ix, _ := gridindex.Build(pts, 1)
	var m metrics.Counters
	if _, err := gridindex.Run(ix, 1, 4, &m); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.NeighborSearches != int64(len(pts)) {
		t.Errorf("searches = %d, want %d", s.NeighborSearches, len(pts))
	}
	if s.CandidatesExamined < s.NeighborsFound {
		t.Error("candidates < found")
	}
	gs := ix.Stats()
	if gs.Cells <= 0 || gs.NonEmpty <= 0 || gs.MaxPerCell <= 0 {
		t.Errorf("stats = %+v", gs)
	}
	if gs.Cols*gs.Rows != gs.Cells {
		t.Errorf("cell count mismatch: %+v", gs)
	}
}

func TestSinglePointAndDuplicates(t *testing.T) {
	ix, _ := gridindex.Build([]geom.Point{{X: 5, Y: 5}}, 1)
	res, err := gridindex.Run(ix, 1, 1, nil)
	if err != nil || res.NumClusters != 1 {
		t.Fatalf("single: %v %v", res, err)
	}
	dup := make([]geom.Point, 30)
	for i := range dup {
		dup[i] = geom.Point{X: 2, Y: 2}
	}
	ix, _ = gridindex.Build(dup, 0.5)
	res, _ = gridindex.Run(ix, 0.5, 4, nil)
	if res.NumClusters != 1 || res.NumClustered() != 30 {
		t.Fatalf("duplicates: %v", res)
	}
}

// --- Flat (production CSR layout) ---

func TestFreezeValidation(t *testing.T) {
	if _, err := gridindex.Freeze([]float64{1}, nil, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := gridindex.Freeze(nil, nil, 0); err == nil {
		t.Error("side=0 accepted")
	}
	if _, err := gridindex.Freeze([]float64{math.NaN()}, []float64{0}, 1); err == nil {
		t.Error("NaN coordinate accepted")
	}
	f, err := gridindex.Freeze(nil, nil, 1)
	if err != nil || f.Len() != 0 {
		t.Fatalf("empty freeze: %v %v", f, err)
	}
	out, c, n := f.EpsSearch(geom.Point{X: 0, Y: 0}, 1, nil)
	if len(out) != 0 || c != 0 || n != 0 {
		t.Errorf("empty search: %v %d %d", out, c, n)
	}
}

func TestFlatEpsSearchMatchesLinear(t *testing.T) {
	pts := blobs(3, 400, 200, 40, 0.9, 11)
	xs, ys := coords(pts)
	const side = 1.5
	f, err := gridindex.Freeze(xs, ys, side)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(12))
	var dst []int32
	seen := make(map[int32]bool)
	for trial := 0; trial < 200; trial++ {
		q := geom.Point{X: rnd.Float64()*50 - 5, Y: rnd.Float64()*50 - 5}
		// Sweep eps through the 3×3 regime and beyond the side (widened
		// block), including eps = side exactly.
		eps := side * (0.2 + 2.3*rnd.Float64())
		if trial%10 == 0 {
			eps = side
		}
		dst, _, _ = f.EpsSearch(q, eps, dst[:0])
		for k := range seen {
			delete(seen, k)
		}
		for _, i := range dst {
			if seen[i] {
				t.Fatalf("duplicate index %d in result", i)
			}
			seen[i] = true
		}
		want := 0
		for _, p := range pts {
			if q.DistSq(p) <= eps*eps {
				want++
			}
		}
		if len(dst) != want {
			t.Fatalf("trial %d: EpsSearch(%v, %g) = %d hits, want %d", trial, q, eps, len(dst), want)
		}
		for _, i := range dst {
			if q.DistSq(pts[i]) > eps*eps {
				t.Fatalf("trial %d: index %d outside eps", trial, i)
			}
		}
	}
}

func TestFlatMatchesPointerGrid(t *testing.T) {
	pts := blobs(2, 500, 100, 25, 0.6, 21)
	xs, ys := coords(pts)
	const eps = 1.1
	f, err := gridindex.Freeze(xs, ys, eps)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := gridindex.Build(pts, eps)
	if err != nil {
		t.Fatal(err)
	}
	var fDst, pDst []int32
	for i, q := range pts {
		fDst, _, _ = f.EpsSearch(q, eps, fDst[:0])
		var perr error
		pDst, perr = ix.NeighborSearch(q, eps, nil, pDst[:0])
		if perr != nil {
			t.Fatal(perr)
		}
		if len(fDst) != len(pDst) {
			t.Fatalf("query %d: flat %d hits vs pointer %d", i, len(fDst), len(pDst))
		}
	}
}

func TestFreezeCapsCellCount(t *testing.T) {
	xs := []float64{0, 0.5, 1e7}
	ys := []float64{0, 0.25, 1e7}
	f, err := gridindex.Freeze(xs, ys, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if s := f.Stats(); s.Cells > gridindex.MaxCells {
		t.Fatalf("cells = %d exceeds cap %d", s.Cells, gridindex.MaxCells)
	}
	out, _, _ := f.EpsSearch(geom.Point{X: 0, Y: 0}, 1e-4, nil)
	if len(out) != 1 || out[0] != 0 {
		t.Fatalf("capped search = %v, want [0]", out)
	}
}

// TestFlatEpsSearchZeroAlloc mirrors rtree's TestEpsSearchZeroAlloc: once
// the destination buffer has warmed, grid searches never touch the heap.
func TestFlatEpsSearchZeroAlloc(t *testing.T) {
	pts := blobs(3, 500, 100, 30, 0.8, 31)
	xs, ys := coords(pts)
	f, err := gridindex.Freeze(xs, ys, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int32, 0, len(pts))
	queries := pts[:64]
	allocs := testing.AllocsPerRun(50, func() {
		for _, q := range queries {
			dst, _, _ = f.EpsSearch(q, 1.0, dst[:0])
		}
	})
	if allocs != 0 {
		t.Fatalf("EpsSearch allocated %.1f times per run, want 0", allocs)
	}
}

// FuzzGridSearch mirrors rtree's FuzzSearch: random point sets and
// queries, grid Flat checked against the linear oracle and the pointer
// grid against both.
func FuzzGridSearch(f *testing.F) {
	f.Add(int64(1), uint8(50), 1.0, 0.5, 0.5)
	f.Add(int64(7), uint8(200), 0.3, 10.0, -3.0)
	f.Add(int64(42), uint8(13), 2.5, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, seed int64, n uint8, eps, qx, qy float64) {
		if !(eps > 0) || eps > 1e6 || math.Abs(qx) > 1e6 || math.Abs(qy) > 1e6 {
			t.Skip()
		}
		rnd := rand.New(rand.NewSource(seed))
		pts := make([]geom.Point, int(n))
		for i := range pts {
			pts[i] = geom.Point{X: rnd.Float64()*20 - 10, Y: rnd.Float64()*20 - 10}
		}
		xs, ys := coords(pts)
		// Freeze with a side smaller than eps half the time to exercise
		// the widened block.
		side := eps
		if seed%2 == 0 {
			side = eps/3 + 1e-9
		}
		fg, err := gridindex.Freeze(xs, ys, side)
		if err != nil {
			t.Fatal(err)
		}
		q := geom.Point{X: qx, Y: qy}
		got, _, _ := fg.EpsSearch(q, eps, nil)
		want := 0
		for _, p := range pts {
			if q.DistSq(p) <= eps*eps {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("flat grid: %d hits, oracle %d (n=%d eps=%g side=%g)", len(got), want, n, eps, side)
		}
		for _, i := range got {
			if q.DistSq(pts[i]) > eps*eps {
				t.Fatalf("index %d outside eps", i)
			}
		}
	})
}

// BenchmarkGridEpsSearch measures the CSR grid search against the
// pointer-chasing bucket grid on a TEC-like clustered workload.
func BenchmarkGridEpsSearch(b *testing.B) {
	pts := blobs(20, 5000, 10000, 300, 2.0, 99)
	xs, ys := coords(pts)
	const eps = 4.0
	f, err := gridindex.Freeze(xs, ys, eps)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := gridindex.Build(pts, eps)
	if err != nil {
		b.Fatal(err)
	}
	queries := pts[:1024]
	b.Run("flat", func(b *testing.B) {
		dst := make([]int32, 0, len(pts))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			dst, _, _ = f.EpsSearch(q, eps, dst[:0])
		}
	})
	b.Run("pointer", func(b *testing.B) {
		dst := make([]int32, 0, len(pts))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			dst, _ = ix.NeighborSearch(q, eps, nil, dst[:0])
		}
	})
}
