package gridindex

import (
	"fmt"
	"math"
)

// FlatParts is the exported skeleton of a flat grid: the CSR cell offsets,
// the grid-sorted coordinate/id arrays, and the cell geometry scalars.
// Parts exposes them for serialization; FlatFromParts rebuilds a servable
// Flat around arrays read (or mapped) back in. Slices are aliased in both
// directions, never copied.
type FlatParts struct {
	Side, OriginX, OriginY float64
	Cols, Rows             int32
	CellStart              []int32
	Xs, Ys                 []float64
	IDs                    []int32
}

// Parts exposes the Flat's arrays and scalars for serialization. The
// returned slices alias the Flat — treat them as read-only.
func (f *Flat) Parts() FlatParts {
	return FlatParts{
		Side: f.side, OriginX: f.originX, OriginY: f.originY,
		Cols: f.cols, Rows: f.rows,
		CellStart: f.cellStart, Xs: f.xs, Ys: f.ys, IDs: f.ids,
	}
}

// FlatFromParts reconstructs a servable Flat from previously exported
// parts, aliasing the input arrays. The parts may come from an untrusted
// file, so the CSR structure is fully validated first: the offsets must be
// a monotone partition of the point arrays, every id must land inside the
// caller's index space, and the geometry scalars must describe a real grid.
// Invalid parts return an error; FlatFromParts never panics.
func FlatFromParts(parts FlatParts) (*Flat, error) {
	bad := func(format string, args ...any) (*Flat, error) {
		return nil, fmt.Errorf("gridindex: invalid flat parts: "+format, args...)
	}
	n := len(parts.Xs)
	if len(parts.Ys) != n || len(parts.IDs) != n {
		return bad("point arrays disagree on length")
	}
	if parts.Cols < 0 || parts.Rows < 0 {
		return bad("negative grid shape %dx%d", parts.Cols, parts.Rows)
	}
	cells := int64(parts.Cols) * int64(parts.Rows)
	if cells > MaxCells {
		return bad("%d cells exceed MaxCells", cells)
	}
	if int64(len(parts.CellStart)) != cells+1 {
		return bad("cellStart has %d offsets for %d cells", len(parts.CellStart), cells)
	}
	if parts.CellStart[0] != 0 || int(parts.CellStart[cells]) != n {
		return bad("cellStart does not span the %d points", n)
	}
	for c := int64(0); c < cells; c++ {
		if parts.CellStart[c] > parts.CellStart[c+1] {
			return bad("cellStart not monotone at cell %d", c)
		}
	}
	for i, id := range parts.IDs {
		if id < 0 || int(id) >= n {
			return bad("slot %d id %d outside [0, %d)", i, id, n)
		}
	}
	if n > 0 {
		if cells == 0 {
			return bad("%d points with no cells", n)
		}
		if !(parts.Side > 0) || math.IsInf(parts.Side, 0) {
			return bad("cell side %g not positive and finite", parts.Side)
		}
		if math.IsNaN(parts.OriginX) || math.IsNaN(parts.OriginY) {
			return bad("NaN origin")
		}
	}
	return &Flat{
		side: parts.Side, originX: parts.OriginX, originY: parts.OriginY,
		cols: parts.Cols, rows: parts.Rows,
		cellStart: parts.CellStart, xs: parts.Xs, ys: parts.Ys, ids: parts.IDs,
	}, nil
}
