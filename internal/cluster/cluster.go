// Package cluster defines the clustering result model shared by DBSCAN,
// VariantDBSCAN, and the evaluation harness: a per-point label vector plus
// derived views (per-cluster point lists, cluster MBBs, density measures).
//
// Labels use the convention:
//
//	Unclassified (0)  — not yet processed (only during execution)
//	Noise       (-1)  — outlier
//	1..NumClusters    — cluster membership
package cluster

import (
	"fmt"
	"sort"

	"vdbscan/internal/geom"
)

// Label values. Cluster IDs are strictly positive.
const (
	Unclassified int32 = 0
	Noise        int32 = -1
)

// Result is the outcome of clustering n points.
type Result struct {
	// Labels[i] is the label of point i in the caller's index space.
	Labels []int32
	// NumClusters is the number of distinct positive labels; valid labels
	// are 1..NumClusters.
	NumClusters int

	clusters [][]int32 // lazy: clusters[id-1] = point indices
}

// NewResult returns a Result with n unclassified points.
func NewResult(n int) *Result {
	return &Result{Labels: make([]int32, n)}
}

// Len returns the number of points.
func (r *Result) Len() int { return len(r.Labels) }

// NumNoise counts points labeled Noise.
func (r *Result) NumNoise() int {
	n := 0
	for _, l := range r.Labels {
		if l == Noise {
			n++
		}
	}
	return n
}

// NumClustered counts points assigned to a cluster.
func (r *Result) NumClustered() int {
	n := 0
	for _, l := range r.Labels {
		if l > 0 {
			n++
		}
	}
	return n
}

// Clusters groups point indices per cluster; Clusters()[id-1] holds the
// points of cluster id, each list in ascending point order. The grouping is
// computed on first use and cached; callers must not mutate the Result's
// labels afterwards.
func (r *Result) Clusters() [][]int32 {
	if r.clusters != nil {
		return r.clusters
	}
	sizes := make([]int, r.NumClusters)
	for _, l := range r.Labels {
		if l > 0 {
			sizes[l-1]++
		}
	}
	r.clusters = make([][]int32, r.NumClusters)
	for id := range r.clusters {
		r.clusters[id] = make([]int32, 0, sizes[id])
	}
	for i, l := range r.Labels {
		if l > 0 {
			r.clusters[l-1] = append(r.clusters[l-1], int32(i))
		}
	}
	return r.clusters
}

// ClusterPoints returns the point indices of cluster id (1-based).
func (r *Result) ClusterPoints(id int32) []int32 {
	return r.Clusters()[id-1]
}

// ClusterMBB returns the MBB circumscribing cluster id over pts.
func (r *Result) ClusterMBB(id int32, pts []geom.Point) geom.MBB {
	b := geom.EmptyMBB()
	for _, i := range r.ClusterPoints(id) {
		b = b.ExtendPoint(pts[i])
	}
	return b
}

// Info summarizes one cluster for the reuse heuristics (paper §IV-C).
type Info struct {
	ID      int32
	Size    int
	MBB     geom.MBB
	Area    float64 // MBB area, floored at a small epsilon to avoid div-by-zero
	Density float64 // |C| / area          (CLUSDENSITY measure)
	PtsSq   float64 // |C|² / area         (CLUSPTSSQUARED measure)
}

// minArea floors degenerate cluster MBBs (single points, collinear points)
// so density measures stay finite. The value is far below any meaningful
// cluster extent in degree-scaled data.
const minArea = 1e-9

// Infos computes the per-cluster summaries in cluster-ID order.
func (r *Result) Infos(pts []geom.Point) []Info {
	clusters := r.Clusters()
	infos := make([]Info, len(clusters))
	for idx, members := range clusters {
		b := geom.EmptyMBB()
		for _, i := range members {
			b = b.ExtendPoint(pts[i])
		}
		area := b.Area()
		if area < minArea {
			area = minArea
		}
		size := len(members)
		infos[idx] = Info{
			ID:      int32(idx + 1),
			Size:    size,
			MBB:     b,
			Area:    area,
			Density: float64(size) / area,
			PtsSq:   float64(size) * float64(size) / area,
		}
	}
	return infos
}

// Renumber rewrites cluster IDs to 1..K in first-appearance order and drops
// empty IDs; it returns the number of clusters. VariantDBSCAN calls this
// after reuse passes that may destroy (empty out) clusters.
func (r *Result) Renumber() int {
	remap := make(map[int32]int32)
	var next int32
	for i, l := range r.Labels {
		if l <= 0 {
			continue
		}
		nl, ok := remap[l]
		if !ok {
			next++
			nl = next
			remap[l] = nl
		}
		r.Labels[i] = nl
	}
	r.NumClusters = int(next)
	r.clusters = nil
	return r.NumClusters
}

// Remap translates the Result into a different index space: out.Labels[mapping[i]] =
// r.Labels[i]. Used to convert results from grid-sorted index space back to
// the caller's original point order.
func (r *Result) Remap(mapping []int) *Result {
	if len(mapping) != len(r.Labels) {
		panic(fmt.Sprintf("cluster: mapping length %d != labels length %d", len(mapping), len(r.Labels)))
	}
	out := NewResult(len(r.Labels))
	out.NumClusters = r.NumClusters
	for i, l := range r.Labels {
		out.Labels[mapping[i]] = l
	}
	return out
}

// Sizes returns the size of every cluster, indexed by id-1.
func (r *Result) Sizes() []int {
	sizes := make([]int, r.NumClusters)
	for _, l := range r.Labels {
		if l > 0 {
			sizes[l-1]++
		}
	}
	return sizes
}

// String implements fmt.Stringer.
func (r *Result) String() string {
	return fmt.Sprintf("clustering{points=%d clusters=%d noise=%d}",
		r.Len(), r.NumClusters, r.NumNoise())
}

// EquivalentLabelings reports whether a and b induce the same partition:
// identical noise sets and a bijection between cluster IDs. DBSCAN results
// are only unique up to cluster renumbering (and border-point ties), so
// tests compare with this rather than label equality.
func EquivalentLabelings(a, b *Result) bool {
	if a.Len() != b.Len() {
		return false
	}
	fwd := make(map[int32]int32)
	rev := make(map[int32]int32)
	for i := range a.Labels {
		la, lb := a.Labels[i], b.Labels[i]
		if (la == Noise) != (lb == Noise) {
			return false
		}
		if la == Noise {
			continue
		}
		if m, ok := fwd[la]; ok && m != lb {
			return false
		}
		if m, ok := rev[lb]; ok && m != la {
			return false
		}
		fwd[la] = lb
		rev[lb] = la
	}
	return true
}

// DisagreementCount returns the number of points whose noise/cluster status
// differs between a and b under the best-effort greedy ID matching that
// EquivalentLabelings uses; useful for diagnostics on near-identical results.
func DisagreementCount(a, b *Result) int {
	if a.Len() != b.Len() {
		return -1
	}
	// Map each a-cluster to the b-cluster that shares the most points.
	overlap := make(map[[2]int32]int)
	for i := range a.Labels {
		la, lb := a.Labels[i], b.Labels[i]
		if la > 0 && lb > 0 {
			overlap[[2]int32{la, lb}]++
		}
	}
	bestFor := make(map[int32]int32)
	bestCount := make(map[int32]int)
	for k, c := range overlap {
		if c > bestCount[k[0]] {
			bestCount[k[0]] = c
			bestFor[k[0]] = k[1]
		}
	}
	disagree := 0
	for i := range a.Labels {
		la, lb := a.Labels[i], b.Labels[i]
		switch {
		case la == Noise && lb == Noise:
		case la == Noise || lb == Noise:
			disagree++
		case bestFor[la] != lb:
			disagree++
		}
	}
	return disagree
}

// TopClusterSizes returns the k largest cluster sizes in descending order
// (fewer if the result has fewer clusters). Used by example programs.
func (r *Result) TopClusterSizes(k int) []int {
	sizes := r.Sizes()
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if k > len(sizes) {
		k = len(sizes)
	}
	return sizes[:k]
}
