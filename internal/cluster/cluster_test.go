package cluster

import (
	"testing"

	"vdbscan/internal/geom"
)

func TestNewResult(t *testing.T) {
	r := NewResult(5)
	if r.Len() != 5 {
		t.Fatalf("Len = %d", r.Len())
	}
	for i, l := range r.Labels {
		if l != Unclassified {
			t.Errorf("label %d = %d, want Unclassified", i, l)
		}
	}
}

func mkResult(labels ...int32) *Result {
	r := &Result{Labels: labels}
	max := int32(0)
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	r.NumClusters = int(max)
	return r
}

func TestCounts(t *testing.T) {
	r := mkResult(1, 1, 2, Noise, Noise, 2, 1)
	if got := r.NumNoise(); got != 2 {
		t.Errorf("NumNoise = %d", got)
	}
	if got := r.NumClustered(); got != 5 {
		t.Errorf("NumClustered = %d", got)
	}
}

func TestClusters(t *testing.T) {
	r := mkResult(1, 2, 1, Noise, 2, 2)
	cs := r.Clusters()
	if len(cs) != 2 {
		t.Fatalf("clusters = %d", len(cs))
	}
	if len(cs[0]) != 2 || cs[0][0] != 0 || cs[0][1] != 2 {
		t.Errorf("cluster 1 = %v", cs[0])
	}
	if len(cs[1]) != 3 {
		t.Errorf("cluster 2 = %v", cs[1])
	}
	if got := r.ClusterPoints(2); len(got) != 3 {
		t.Errorf("ClusterPoints(2) = %v", got)
	}
}

func TestClusterMBBAndInfos(t *testing.T) {
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 2, Y: 2}, // cluster 1
		{X: 10, Y: 10}, // cluster 2 (single point)
		{X: 5, Y: 5},   // noise
	}
	r := mkResult(1, 1, 2, Noise)
	b := r.ClusterMBB(1, pts)
	if b != (geom.MBB{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}) {
		t.Errorf("ClusterMBB = %v", b)
	}
	infos := r.Infos(pts)
	if len(infos) != 2 {
		t.Fatalf("infos = %d", len(infos))
	}
	if infos[0].Size != 2 || infos[0].Area != 4 {
		t.Errorf("info[0] = %+v", infos[0])
	}
	if infos[0].Density != 0.5 || infos[0].PtsSq != 1 {
		t.Errorf("density measures: %+v", infos[0])
	}
	// Single-point cluster: area floored, density finite and huge.
	if infos[1].Size != 1 {
		t.Errorf("info[1] = %+v", infos[1])
	}
	if infos[1].Density <= 0 || infos[1].Density != infos[1].Density { // NaN check
		t.Errorf("degenerate density = %g", infos[1].Density)
	}
}

func TestRenumber(t *testing.T) {
	r := mkResult(5, 5, 9, Noise, 9, 3)
	r.NumClusters = 9
	n := r.Renumber()
	if n != 3 {
		t.Fatalf("Renumber = %d", n)
	}
	want := []int32{1, 1, 2, Noise, 2, 3}
	for i := range want {
		if r.Labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", r.Labels, want)
		}
	}
}

func TestRenumberDropsEmptied(t *testing.T) {
	// Simulates reuse destroying cluster 2: its points moved to cluster 1.
	r := mkResult(1, 1, 1, 3, Noise)
	r.NumClusters = 3
	if n := r.Renumber(); n != 2 {
		t.Fatalf("Renumber = %d, want 2", n)
	}
}

func TestRemap(t *testing.T) {
	// sorted -> original mapping
	r := mkResult(1, 2, Noise)
	mapping := []int{2, 0, 1} // sorted i was original mapping[i]
	out := r.Remap(mapping)
	want := []int32{2, Noise, 1}
	for i := range want {
		if out.Labels[i] != want[i] {
			t.Fatalf("remapped = %v, want %v", out.Labels, want)
		}
	}
	if out.NumClusters != 2 {
		t.Errorf("NumClusters = %d", out.NumClusters)
	}
}

func TestRemapPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mkResult(1, 2).Remap([]int{0})
}

func TestEquivalentLabelings(t *testing.T) {
	a := mkResult(1, 1, 2, Noise)
	b := mkResult(2, 2, 1, Noise) // renumbered
	if !EquivalentLabelings(a, b) {
		t.Error("renumbered labelings should be equivalent")
	}
	c := mkResult(1, 2, 2, Noise) // different partition
	if EquivalentLabelings(a, c) {
		t.Error("different partitions should not be equivalent")
	}
	d := mkResult(1, 1, 2, 2) // noise vs cluster
	if EquivalentLabelings(a, d) {
		t.Error("noise mismatch should not be equivalent")
	}
	if EquivalentLabelings(a, mkResult(1)) {
		t.Error("length mismatch should not be equivalent")
	}
	// One cluster split into two is NOT equivalent (injectivity check).
	e := mkResult(1, 3, 2, Noise)
	if EquivalentLabelings(a, e) {
		t.Error("split cluster should not be equivalent")
	}
}

func TestDisagreementCount(t *testing.T) {
	a := mkResult(1, 1, 2, Noise)
	if got := DisagreementCount(a, a); got != 0 {
		t.Errorf("self disagreement = %d", got)
	}
	b := mkResult(2, 2, 1, Noise)
	if got := DisagreementCount(a, b); got != 0 {
		t.Errorf("renumbered disagreement = %d", got)
	}
	c := mkResult(1, 1, 2, 2) // noise point became clustered
	if got := DisagreementCount(a, c); got != 1 {
		t.Errorf("one-point disagreement = %d", got)
	}
	if got := DisagreementCount(a, mkResult(1)); got != -1 {
		t.Errorf("length mismatch should return -1, got %d", got)
	}
}

func TestSizesAndTopClusterSizes(t *testing.T) {
	r := mkResult(1, 2, 2, 3, 3, 3, Noise)
	sizes := r.Sizes()
	if len(sizes) != 3 || sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 3 {
		t.Errorf("Sizes = %v", sizes)
	}
	top := r.TopClusterSizes(2)
	if len(top) != 2 || top[0] != 3 || top[1] != 2 {
		t.Errorf("TopClusterSizes = %v", top)
	}
	if got := r.TopClusterSizes(10); len(got) != 3 {
		t.Errorf("TopClusterSizes(10) = %v", got)
	}
}

func TestString(t *testing.T) {
	if s := mkResult(1, Noise).String(); s == "" {
		t.Error("String empty")
	}
}
