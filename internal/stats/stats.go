// Package stats provides the summary statistics the evaluation harness
// reports when averaging repeated trials (the paper averages response
// times over 3 trials, §V-B).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Median returns the sample median (0 for an empty sample).
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Summarize computes all summary statistics at once.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs), Median: Median(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g max=%.4g", s.N, s.Mean, s.StdDev, s.Min, s.Max)
}
