package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if got := Mean([]float64{-1, 1}); got != 0 {
		t.Errorf("Mean = %g", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev(nil) != 0 || StdDev([]float64{5}) != 0 {
		t.Error("degenerate StdDev should be 0")
	}
	// Known sample: {2, 4, 4, 4, 5, 5, 7, 9} has sample sd ~2.138.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("StdDev = %g", got)
	}
	if StdDev([]float64{3, 3, 3}) != 0 {
		t.Error("constant sample sd should be 0")
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("Median(nil)")
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %g", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %g", got)
	}
	// Median must not mutate the input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Error("Median mutated input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("empty summary = %+v", got)
	}
}

func TestQuickBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
