package dataio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV exercises the dataset CSV parser with arbitrary input: it
// must never panic, and anything it accepts must survive a write/read
// round trip with identical points.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("# name: x\n1.5,2.5\n")
	f.Add("")
	f.Add("a,b\n")
	f.Add("1,2,3\n")
	f.Add("# noise_frac: 0.3\n# seed: 9\nNaN,Inf\n")
	f.Add(strings.Repeat("0,0\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ds); err != nil {
			t.Fatalf("write of accepted dataset failed: %v", err)
		}
		ds2, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted dataset failed: %v", err)
		}
		if len(ds2.Points) != len(ds.Points) {
			t.Fatalf("round trip changed point count: %d -> %d", len(ds.Points), len(ds2.Points))
		}
		for i := range ds.Points {
			a, b := ds.Points[i], ds2.Points[i]
			// NaN != NaN; compare bit-tolerantly via string form already
			// guaranteed by FormatFloat round trip, so only check non-NaN.
			if a == a && b == b && a != b {
				t.Fatalf("point %d changed: %v -> %v", i, a, b)
			}
		}
	})
}

// FuzzReadLabelsCSV exercises the label parser: no panics, and accepted
// inputs round trip.
func FuzzReadLabelsCSV(f *testing.F) {
	f.Add("0,1\n1,-1\n")
	f.Add("# clusters: 2\n0,1\n1,2\n")
	f.Add("0,999999999999\n")
	f.Add("junk\n")
	f.Fuzz(func(t *testing.T, input string) {
		res, err := ReadLabelsCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteLabelsCSV(&buf, res); err != nil {
			t.Fatalf("write of accepted labels failed: %v", err)
		}
		res2, err := ReadLabelsCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(res2.Labels) != len(res.Labels) {
			t.Fatalf("label count changed")
		}
	})
}
