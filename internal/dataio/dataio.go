// Package dataio persists datasets and clustering results.
//
// Two formats are supported:
//
//   - CSV — one "x,y" row per point, with "# key: value" header comments
//     carrying dataset provenance; interoperable with external tools and
//     with the layout of the paper's published dbscandat archive.
//   - gob — a compact binary container for fast reload of large datasets by
//     the benchmark harness.
package dataio

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"vdbscan/internal/cluster"
	"vdbscan/internal/data"
	"vdbscan/internal/geom"
)

// WriteCSV writes ds as CSV with a provenance header.
func WriteCSV(w io.Writer, ds *data.Dataset) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# name: %s\n", ds.Name)
	fmt.Fprintf(bw, "# points: %d\n", ds.Len())
	fmt.Fprintf(bw, "# noise_frac: %g\n", ds.NoiseFrac)
	fmt.Fprintf(bw, "# synth_clusters: %d\n", ds.SynthClusters)
	fmt.Fprintf(bw, "# seed: %d\n", ds.Seed)
	for _, p := range ds.Points {
		if _, err := fmt.Fprintf(bw, "%s,%s\n",
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.Y, 'g', -1, 64)); err != nil {
			return fmt.Errorf("dataio: write csv: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV. Header comments are
// optional; bare "x,y" files load with default provenance.
func ReadCSV(r io.Reader) (*data.Dataset, error) {
	ds := &data.Dataset{Name: "unnamed", NoiseFrac: -1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			parseHeader(ds, text)
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("dataio: line %d: expected x,y got %q", line, text)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataio: line %d: bad x: %w", line, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataio: line %d: bad y: %w", line, err)
		}
		ds.Points = append(ds.Points, geom.Point{X: x, Y: y})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataio: read csv: %w", err)
	}
	return ds, nil
}

func parseHeader(ds *data.Dataset, text string) {
	body := strings.TrimSpace(strings.TrimPrefix(text, "#"))
	key, value, ok := strings.Cut(body, ":")
	if !ok {
		return
	}
	value = strings.TrimSpace(value)
	switch strings.TrimSpace(key) {
	case "name":
		ds.Name = value
	case "noise_frac":
		if f, err := strconv.ParseFloat(value, 64); err == nil {
			ds.NoiseFrac = f
		}
	case "synth_clusters":
		if n, err := strconv.Atoi(value); err == nil {
			ds.SynthClusters = n
		}
	case "seed":
		if n, err := strconv.ParseUint(value, 10, 64); err == nil {
			ds.Seed = n
		}
	}
}

// gobDataset is the stable on-disk schema, decoupled from data.Dataset so
// internal refactors do not silently break saved files.
type gobDataset struct {
	Name          string
	X, Y          []float64
	NoiseFrac     float64
	SynthClusters int
	Seed          uint64
}

// WriteGob writes ds in the binary format.
func WriteGob(w io.Writer, ds *data.Dataset) error {
	g := gobDataset{
		Name:          ds.Name,
		X:             make([]float64, ds.Len()),
		Y:             make([]float64, ds.Len()),
		NoiseFrac:     ds.NoiseFrac,
		SynthClusters: ds.SynthClusters,
		Seed:          ds.Seed,
	}
	for i, p := range ds.Points {
		g.X[i], g.Y[i] = p.X, p.Y
	}
	if err := gob.NewEncoder(w).Encode(&g); err != nil {
		return fmt.Errorf("dataio: write gob: %w", err)
	}
	return nil
}

// ReadGob reads a dataset written by WriteGob.
func ReadGob(r io.Reader) (*data.Dataset, error) {
	var g gobDataset
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("dataio: read gob: %w", err)
	}
	if len(g.X) != len(g.Y) {
		return nil, fmt.Errorf("dataio: corrupt gob: %d xs, %d ys", len(g.X), len(g.Y))
	}
	ds := &data.Dataset{
		Name:          g.Name,
		Points:        make([]geom.Point, len(g.X)),
		NoiseFrac:     g.NoiseFrac,
		SynthClusters: g.SynthClusters,
		Seed:          g.Seed,
	}
	for i := range g.X {
		ds.Points[i] = geom.Point{X: g.X[i], Y: g.Y[i]}
	}
	return ds, nil
}

// SaveDataset writes ds to path, choosing the format by extension:
// ".csv" for CSV, anything else for gob.
func SaveDataset(path string, ds *data.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		if err := WriteCSV(f, ds); err != nil {
			return err
		}
	} else if err := WriteGob(f, ds); err != nil {
		return err
	}
	return f.Close()
}

// LoadDataset reads a dataset from path, choosing the format by extension.
func LoadDataset(path string) (*data.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return ReadCSV(f)
	}
	return ReadGob(f)
}

// WriteLabelsCSV writes a clustering as "index,label" rows. Labels use the
// cluster package's convention (-1 noise, 1..K clusters).
func WriteLabelsCSV(w io.Writer, res *cluster.Result) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# clusters: %d\n", res.NumClusters)
	for i, l := range res.Labels {
		if _, err := fmt.Fprintf(bw, "%d,%d\n", i, l); err != nil {
			return fmt.Errorf("dataio: write labels: %w", err)
		}
	}
	return bw.Flush()
}

// ReadLabelsCSV parses a clustering written by WriteLabelsCSV.
func ReadLabelsCSV(r io.Reader) (*cluster.Result, error) {
	res := &cluster.Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			body := strings.TrimSpace(strings.TrimPrefix(text, "#"))
			if key, value, ok := strings.Cut(body, ":"); ok && strings.TrimSpace(key) == "clusters" {
				if n, err := strconv.Atoi(strings.TrimSpace(value)); err == nil {
					res.NumClusters = n
				}
			}
			continue
		}
		idxStr, labelStr, ok := strings.Cut(text, ",")
		if !ok {
			return nil, fmt.Errorf("dataio: line %d: expected index,label got %q", line, text)
		}
		idx, err := strconv.Atoi(strings.TrimSpace(idxStr))
		if err != nil {
			return nil, fmt.Errorf("dataio: line %d: bad index: %w", line, err)
		}
		label, err := strconv.ParseInt(strings.TrimSpace(labelStr), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dataio: line %d: bad label: %w", line, err)
		}
		if idx != len(res.Labels) {
			return nil, fmt.Errorf("dataio: line %d: non-sequential index %d", line, idx)
		}
		res.Labels = append(res.Labels, int32(label))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataio: read labels: %w", err)
	}
	return res, nil
}
