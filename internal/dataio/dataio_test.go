package dataio

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/data"
	"vdbscan/internal/geom"
)

func sample() *data.Dataset {
	return &data.Dataset{
		Name:          "cF_test_5N",
		Points:        []geom.Point{{X: 1.25, Y: -3.5}, {X: 0, Y: 0}, {X: 359.999, Y: 180}},
		NoiseFrac:     0.05,
		SynthClusters: 2,
		Seed:          42,
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if got.Name != want.Name || got.NoiseFrac != want.NoiseFrac ||
		got.SynthClusters != want.SynthClusters || got.Seed != want.Seed {
		t.Errorf("provenance lost: %+v", got)
	}
	if len(got.Points) != len(want.Points) {
		t.Fatalf("points = %d", len(got.Points))
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Errorf("point %d = %v, want %v", i, got.Points[i], want.Points[i])
		}
	}
}

func TestCSVExactFloatRoundTrip(t *testing.T) {
	ds := &data.Dataset{Name: "precision", NoiseFrac: -1,
		Points: []geom.Point{{X: math.Pi, Y: math.Sqrt2}, {X: 1e-17, Y: -1e17}}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Points {
		if got.Points[i] != ds.Points[i] {
			t.Errorf("float not exactly preserved: %v vs %v", got.Points[i], ds.Points[i])
		}
	}
}

func TestReadCSVBareFile(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("1,2\n3,4\n\n5,6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 3 || got.Name != "unnamed" || got.NoiseFrac != -1 {
		t.Errorf("bare csv: %+v", got)
	}
}

func TestReadCSVWhitespaceTolerant(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("  1.5 , 2.5 \n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Points[0] != (geom.Point{X: 1.5, Y: 2.5}) {
		t.Errorf("point = %v", got.Points[0])
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, bad := range []string{"1\n", "a,2\n", "1,b\n", "1,2,3\n"} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestGobRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGob(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if got.Name != want.Name || got.Seed != want.Seed || len(got.Points) != len(want.Points) {
		t.Fatalf("gob round trip lost data: %+v", got)
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Errorf("point %d differs", i)
		}
	}
}

func TestReadGobGarbage(t *testing.T) {
	if _, err := ReadGob(strings.NewReader("not gob data")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveLoadDatasetByExtension(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"d.csv", "d.gob"} {
		path := filepath.Join(dir, name)
		if err := SaveDataset(path, sample()); err != nil {
			t.Fatal(err)
		}
		got, err := LoadDataset(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != "cF_test_5N" || len(got.Points) != 3 {
			t.Errorf("%s: %+v", name, got)
		}
	}
	if _, err := LoadDataset(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSaveDatasetBadPath(t *testing.T) {
	if err := SaveDataset(string(filepath.Separator)+"no"+string(filepath.Separator)+"such"+string(filepath.Separator)+"dir"+string(filepath.Separator)+"x.csv", sample()); err == nil {
		t.Error("bad path accepted")
	}
	_ = os.Remove("x.csv")
}

func TestLabelsCSVRoundTrip(t *testing.T) {
	res := &cluster.Result{Labels: []int32{1, cluster.Noise, 2, 1}, NumClusters: 2}
	var buf bytes.Buffer
	if err := WriteLabelsCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLabelsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClusters != 2 || len(got.Labels) != 4 {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range res.Labels {
		if got.Labels[i] != res.Labels[i] {
			t.Errorf("label %d = %d, want %d", i, got.Labels[i], res.Labels[i])
		}
	}
}

func TestReadLabelsCSVErrors(t *testing.T) {
	for _, bad := range []string{"0\n", "x,1\n", "0,y\n", "5,1\n"} {
		if _, err := ReadLabelsCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestEmptyDatasetRoundTrips(t *testing.T) {
	empty := &data.Dataset{Name: "empty", NoiseFrac: -1}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, empty); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil || got.Len() != 0 {
		t.Errorf("empty csv: %v %v", got, err)
	}
	buf.Reset()
	if err := WriteGob(&buf, empty); err != nil {
		t.Fatal(err)
	}
	got, err = ReadGob(&buf)
	if err != nil || got.Len() != 0 {
		t.Errorf("empty gob: %v %v", got, err)
	}
}

func TestLargeDatasetGob(t *testing.T) {
	ds, err := data.Generate(data.SynthConfig{Class: data.ClassCF, N: 50000, NoiseFrac: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGob(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGob(&buf)
	if err != nil || got.Len() != 50000 {
		t.Fatalf("large gob: len=%d err=%v", got.Len(), err)
	}
}
