// Package approx implements ρ-approximate DBSCAN in the spirit of Gan &
// Tao (SIGMOD 2015, the paper's reference [9]) and the approximate
// clustering thread the paper cites via Pardicle [15].
//
// Exact DBSCAN spends most of its time distance-filtering candidate
// points. ρ-approximate DBSCAN skips the filter: points are bucketed into
// a grid of cell side ε·ρ/√2, and a query's neighborhood is every point in
// every cell whose nearest corner is within ε. A cell's diagonal is ε·ρ,
// so every accepted point lies within ε·(1+ρ) — giving the sandwich
// guarantee
//
//	DBSCAN(ε) ⊆ ApproxDBSCAN(ε, ρ) ⊆ DBSCAN(ε·(1+ρ))
//
// in the sense that every exact-ε density connection is preserved and no
// connection beyond ε·(1+ρ) is invented. Smaller ρ tightens the result and
// raises the cell count per query (≈ 2π/ρ² + O(1/ρ) cells).
package approx

import (
	"fmt"
	"math"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

// Params are the approximate DBSCAN inputs.
type Params struct {
	// Eps and MinPts are the DBSCAN parameters.
	Eps    float64
	MinPts int
	// Rho is the approximation slack: neighborhoods may include points up
	// to Eps·(1+Rho) away. Must be in (0, 1].
	Rho float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if err := (dbscan.Params{Eps: p.Eps, MinPts: p.MinPts}).Validate(); err != nil {
		return err
	}
	if p.Rho <= 0 || p.Rho > 1 {
		return fmt.Errorf("approx: rho must be in (0,1], got %g", p.Rho)
	}
	return nil
}

// Index is the ρ-grid over a point set.
type Index struct {
	pts     []geom.Point
	side    float64
	originX float64
	originY float64
	cols    int
	rows    int
	cells   map[int64][]int32
	reach   int // cells to scan in each direction
	eps     float64
}

// Build buckets pts for the given parameters.
func Build(pts []geom.Point, p Params) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	side := p.Eps * p.Rho / math.Sqrt2
	ix := &Index{
		pts:   pts,
		side:  side,
		cells: make(map[int64][]int32),
		reach: int(math.Ceil(p.Eps/side)) + 1,
		eps:   p.Eps,
	}
	if len(pts) == 0 {
		return ix, nil
	}
	b := geom.MBBOfPoints(pts)
	ix.originX, ix.originY = b.MinX, b.MinY
	ix.cols = int((b.MaxX-b.MinX)/side) + 1
	ix.rows = int((b.MaxY-b.MinY)/side) + 1
	for i, pt := range pts {
		ix.cells[ix.key(pt)] = append(ix.cells[ix.key(pt)], int32(i))
	}
	return ix, nil
}

func (ix *Index) key(p geom.Point) int64 {
	col := int64((p.X - ix.originX) / ix.side)
	row := int64((p.Y - ix.originY) / ix.side)
	return row<<32 | (col & 0xFFFFFFFF)
}

// neighborhood appends every point in cells whose nearest corner is within
// eps of q. No per-point distance filter — that is the approximation.
func (ix *Index) neighborhood(q geom.Point, m *metrics.Counters, dst []int32) []int32 {
	col := int((q.X - ix.originX) / ix.side)
	row := int((q.Y - ix.originY) / ix.side)
	epsSq := ix.eps * ix.eps
	cellsVisited := int64(0)
	for dr := -ix.reach; dr <= ix.reach; dr++ {
		for dc := -ix.reach; dc <= ix.reach; dc++ {
			c, r := col+dc, row+dr
			cellBox := geom.MBB{
				MinX: ix.originX + float64(c)*ix.side,
				MinY: ix.originY + float64(r)*ix.side,
				MaxX: ix.originX + float64(c+1)*ix.side,
				MaxY: ix.originY + float64(r+1)*ix.side,
			}
			if cellBox.MinDistSq(q) > epsSq {
				continue
			}
			cellsVisited++
			key := int64(r)<<32 | (int64(c) & 0xFFFFFFFF)
			dst = append(dst, ix.cells[key]...)
		}
	}
	m.AddNeighborSearches(1)
	m.AddCandidatesExamined(cellsVisited)
	m.AddNeighborsFound(int64(len(dst)))
	return dst
}

// Run executes ρ-approximate DBSCAN; labels are in the input point order.
// m may be nil.
func Run(pts []geom.Point, p Params, m *metrics.Counters) (*cluster.Result, error) {
	ix, err := Build(pts, p)
	if err != nil {
		return nil, err
	}
	n := len(pts)
	res := cluster.NewResult(n)
	visited := make([]bool, n)
	var cid int32
	queue := make([]int32, 0, 1024)
	var scratch []int32
	absorb := func(neighbors []int32, cid int32) {
		for _, k := range neighbors {
			if !visited[k] {
				visited[k] = true
				queue = append(queue, k)
			}
			if res.Labels[k] <= 0 {
				res.Labels[k] = cid
			}
		}
	}
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		scratch = ix.neighborhood(pts[i], m, scratch[:0])
		if len(scratch) < p.MinPts {
			res.Labels[i] = cluster.Noise
			continue
		}
		cid++
		res.Labels[i] = cid
		queue = queue[:0]
		absorb(scratch, cid)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			scratch = ix.neighborhood(pts[j], m, scratch[:0])
			if len(scratch) >= p.MinPts {
				absorb(scratch, cid)
			}
		}
	}
	res.NumClusters = int(cid)
	return res, nil
}
