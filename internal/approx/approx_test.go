package approx

import (
	"math/rand"
	"testing"

	"vdbscan/internal/cluster"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/geom"
	"vdbscan/internal/metrics"
)

func blobs(k, m, noise int, extent, sigma float64, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, k*m+noise)
	for c := 0; c < k; c++ {
		cx, cy := rnd.Float64()*extent, rnd.Float64()*extent
		for i := 0; i < m; i++ {
			pts = append(pts, geom.Point{
				X: cx + rnd.NormFloat64()*sigma,
				Y: cy + rnd.NormFloat64()*sigma,
			})
		}
	}
	for i := 0; i < noise; i++ {
		pts = append(pts, geom.Point{X: rnd.Float64() * extent, Y: rnd.Float64() * extent})
	}
	return pts
}

func TestParamsValidate(t *testing.T) {
	for _, bad := range []Params{
		{Eps: 0, MinPts: 4, Rho: 0.1},
		{Eps: 1, MinPts: 0, Rho: 0.1},
		{Eps: 1, MinPts: 4, Rho: 0},
		{Eps: 1, MinPts: 4, Rho: 1.5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v accepted", bad)
		}
	}
	if err := (Params{Eps: 1, MinPts: 4, Rho: 0.5}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestNeighborhoodSandwich(t *testing.T) {
	pts := blobs(2, 300, 100, 20, 0.6, 1)
	p := Params{Eps: 0.8, MinPts: 4, Rho: 0.25}
	ix, err := Build(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		q := pts[rnd.Intn(len(pts))]
		got := len(ix.neighborhood(q, nil, nil))
		lower, upper := 0, 0
		for _, r := range pts {
			d := q.DistSq(r)
			if d <= p.Eps*p.Eps {
				lower++
			}
			if d <= p.Eps*(1+p.Rho)*p.Eps*(1+p.Rho) {
				upper++
			}
		}
		if got < lower || got > upper {
			t.Fatalf("neighborhood %d outside sandwich [%d, %d]", got, lower, upper)
		}
	}
}

func TestRunSandwichGuarantee(t *testing.T) {
	pts := blobs(4, 200, 150, 30, 0.7, 3)
	p := Params{Eps: 0.7, MinPts: 4, Rho: 0.2}
	got, err := Run(pts, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := dbscan.RunBruteForce(pts, dbscan.Params{Eps: p.Eps, MinPts: p.MinPts}, nil)
	relaxed, _ := dbscan.RunBruteForce(pts, dbscan.Params{Eps: p.Eps * (1 + p.Rho), MinPts: p.MinPts}, nil)

	// Noise ordering: noise(eps(1+rho)) <= noise(approx) <= noise(eps).
	if !(relaxed.NumNoise() <= got.NumNoise() && got.NumNoise() <= exact.NumNoise()) {
		t.Errorf("noise sandwich violated: %d <= %d <= %d",
			relaxed.NumNoise(), got.NumNoise(), exact.NumNoise())
	}
	// Every exact-clustered point stays clustered.
	for i := range pts {
		if exact.Labels[i] > 0 && got.Labels[i] <= 0 {
			t.Fatalf("point %d clustered exactly but approx-noise", i)
		}
	}
	// Cluster count between the two exact runs.
	if !(relaxed.NumClusters <= got.NumClusters && got.NumClusters <= exact.NumClusters) {
		t.Errorf("cluster sandwich violated: %d <= %d <= %d",
			relaxed.NumClusters, got.NumClusters, exact.NumClusters)
	}
	// Approx must never split an exact cluster: points sharing an exact
	// cluster share an approx cluster.
	repr := map[int32]int32{}
	for i := range pts {
		e, a := exact.Labels[i], got.Labels[i]
		if e <= 0 {
			continue
		}
		if prev, ok := repr[e]; ok {
			if prev != a {
				t.Fatalf("exact cluster %d split across approx clusters %d and %d", e, prev, a)
			}
		} else {
			repr[e] = a
		}
	}
}

func TestSmallerRhoTightens(t *testing.T) {
	pts := blobs(3, 200, 100, 25, 0.6, 4)
	exact, _ := dbscan.RunBruteForce(pts, dbscan.Params{Eps: 0.7, MinPts: 4}, nil)
	prevDisagree := -1
	for _, rho := range []float64{0.5, 0.2, 0.05} {
		got, err := Run(pts, Params{Eps: 0.7, MinPts: 4, Rho: rho}, nil)
		if err != nil {
			t.Fatal(err)
		}
		d := cluster.DisagreementCount(exact, got)
		if prevDisagree >= 0 && d > prevDisagree+len(pts)/100 {
			t.Errorf("rho=%g disagreement %d much worse than looser rho (%d)", rho, d, prevDisagree)
		}
		prevDisagree = d
	}
	// At rho=0.05 the result should be nearly exact.
	got, _ := Run(pts, Params{Eps: 0.7, MinPts: 4, Rho: 0.05}, nil)
	if d := cluster.DisagreementCount(exact, got); d > len(pts)/50 {
		t.Errorf("rho=0.05 disagreements = %d", d)
	}
}

func TestRunEdgeCases(t *testing.T) {
	if _, err := Run(nil, Params{Eps: 1, MinPts: 3, Rho: 0.5}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := Run([]geom.Point{{X: 1, Y: 1}}, Params{Eps: 1, MinPts: 2, Rho: 0.5}, nil)
	if err != nil || res.NumNoise() != 1 {
		t.Fatalf("single: %v %v", res, err)
	}
	// Duplicates form one cluster.
	dup := make([]geom.Point, 20)
	for i := range dup {
		dup[i] = geom.Point{X: 3, Y: 3}
	}
	res, _ = Run(dup, Params{Eps: 0.5, MinPts: 4, Rho: 0.3}, nil)
	if res.NumClusters != 1 || res.NumClustered() != 20 {
		t.Fatalf("duplicates: %v", res)
	}
}

func TestMetricsCellsNotPoints(t *testing.T) {
	pts := blobs(2, 300, 50, 15, 0.5, 5)
	var m metrics.Counters
	if _, err := Run(pts, Params{Eps: 0.6, MinPts: 4, Rho: 0.3}, &m); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.NeighborSearches != int64(len(pts)) {
		t.Errorf("searches = %d", s.NeighborSearches)
	}
	// The whole point: per query, cells visited is bounded by the rho grid
	// (~(2*reach+1)^2), far below |D|.
	if s.CandidatesExamined > s.NeighborSearches*1000 {
		t.Errorf("cells per query too high: %d", s.CandidatesExamined/s.NeighborSearches)
	}
}
