package kernel

// The SSE2 kernels consume an even number of candidates; the odd tail is
// filtered here so the asm never needs a scalar epilogue.

//go:noescape
func filterEpsSSE2(buf *int32, w int, xs *float64, ys *float64, n int, base int32, px float64, py float64, epsSq float64) int

//go:noescape
func filterEpsIDsSSE2(buf *int32, w int, xs *float64, ys *float64, n int, ids *int32, px float64, py float64, epsSq float64) int

// filterEps appends passing indices of the run into buf starting at w and
// returns the advanced cursor. buf must have room for len(xs) more
// entries past w (FilterEps reserves it).
func filterEps(buf []int32, w int, xs, ys []float64, base int32, px, py, epsSq float64) int {
	n := len(xs)
	if even := n &^ 1; even > 0 {
		w = filterEpsSSE2(&buf[0], w, &xs[0], &ys[0], even, base, px, py, epsSq)
	}
	if n&1 == 1 {
		i := n - 1
		dx := px - xs[i]
		dy := py - ys[i]
		buf[w] = base + int32(i)
		if dx*dx+dy*dy <= epsSq {
			w++
		}
	}
	return w
}

func filterEpsIDs(buf []int32, w int, xs, ys []float64, ids []int32, px, py, epsSq float64) int {
	n := len(xs)
	if even := n &^ 1; even > 0 {
		w = filterEpsIDsSSE2(&buf[0], w, &xs[0], &ys[0], even, &ids[0], px, py, epsSq)
	}
	if n&1 == 1 {
		i := n - 1
		dx := px - xs[i]
		dy := py - ys[i]
		buf[w] = ids[i]
		if dx*dx+dy*dy <= epsSq {
			w++
		}
	}
	return w
}
