// SSE2 ε-filter kernels. SSE2 is architecturally guaranteed on amd64, so
// these need no feature detection. All arithmetic (SUBPD/MULPD/ADDPD) is
// the same IEEE-754 double operation the scalar Go path performs, and
// CMPPD with predicate 2 (LE) matches `<=` exactly — NaN compares false —
// so results are bit-identical to the fallback.
//
// Compaction is branch-free: each lane's index is stored unconditionally
// at the write cursor and the cursor advances by the lane's mask bit, so
// pass/fail patterns never touch the branch predictor.

#include "textflag.h"

// func filterEpsSSE2(buf *int32, w int, xs *float64, ys *float64, n int, base int32, px float64, py float64, epsSq float64) int
// Processes candidates [0, n) — n must be even — appending base+i for
// every passing i at buf[w...], returning the advanced cursor.
TEXT ·filterEpsSSE2(SB), NOSPLIT, $0-80
	MOVQ buf+0(FP), DI
	MOVQ w+8(FP), AX
	MOVQ xs+16(FP), SI
	MOVQ ys+24(FP), DX
	MOVQ n+32(FP), CX
	MOVL base+40(FP), R8
	MOVSD px+48(FP), X4
	MOVSD py+56(FP), X5
	MOVSD epsSq+64(FP), X6
	UNPCKLPD X4, X4
	UNPCKLPD X5, X5
	UNPCKLPD X6, X6
	XORQ R9, R9

loop:
	CMPQ R9, CX
	JGE  done
	MOVUPD (SI)(R9*8), X2
	MOVUPD (DX)(R9*8), X3
	MOVAPD X4, X0
	SUBPD  X2, X0
	MULPD  X0, X0
	MOVAPD X5, X1
	SUBPD  X3, X1
	MULPD  X1, X1
	ADDPD  X1, X0
	CMPPD  X6, X0, $2
	MOVMSKPD X0, R10
	LEAQ (R8)(R9*1), R11
	MOVL R11, (DI)(AX*4)
	MOVQ R10, R12
	ANDQ $1, R12
	ADDQ R12, AX
	INCQ R11
	MOVL R11, (DI)(AX*4)
	SHRQ $1, R10
	ADDQ R10, AX
	ADDQ $2, R9
	JMP  loop

done:
	MOVQ AX, ret+72(FP)
	RET

// func filterEpsIDsSSE2(buf *int32, w int, xs *float64, ys *float64, n int, ids *int32, px float64, py float64, epsSq float64) int
// As filterEpsSSE2 but emitting ids[i] instead of base+i.
TEXT ·filterEpsIDsSSE2(SB), NOSPLIT, $0-80
	MOVQ buf+0(FP), DI
	MOVQ w+8(FP), AX
	MOVQ xs+16(FP), SI
	MOVQ ys+24(FP), DX
	MOVQ n+32(FP), CX
	MOVQ ids+40(FP), R8
	MOVSD px+48(FP), X4
	MOVSD py+56(FP), X5
	MOVSD epsSq+64(FP), X6
	UNPCKLPD X4, X4
	UNPCKLPD X5, X5
	UNPCKLPD X6, X6
	XORQ R9, R9

idloop:
	CMPQ R9, CX
	JGE  iddone
	MOVUPD (SI)(R9*8), X2
	MOVUPD (DX)(R9*8), X3
	MOVAPD X4, X0
	SUBPD  X2, X0
	MULPD  X0, X0
	MOVAPD X5, X1
	SUBPD  X3, X1
	MULPD  X1, X1
	ADDPD  X1, X0
	CMPPD  X6, X0, $2
	MOVMSKPD X0, R10
	MOVL (R8)(R9*4), R11
	MOVL R11, (DI)(AX*4)
	MOVQ R10, R12
	ANDQ $1, R12
	ADDQ R12, AX
	MOVL 4(R8)(R9*4), R11
	MOVL R11, (DI)(AX*4)
	SHRQ $1, R10
	ADDQ R10, AX
	ADDQ $2, R9
	JMP  idloop

iddone:
	MOVQ AX, ret+72(FP)
	RET
