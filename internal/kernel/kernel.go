// Package kernel hosts the block ε-filter kernels shared by every
// ε-search hot path: the flat R-tree leaf scan (internal/rtree), the
// overlay-merged streaming search, and the cell-grid index
// (internal/gridindex).
//
// The paper's §IV argument treats ε-search as memory-bound and tunes the
// leaf occupancy r to trade distance computations for memory traffic. On
// vector hardware the compute side of that trade is nearly free — but
// only if something actually issues vector instructions, and gc does not
// auto-vectorize floating-point loops. So the contiguous-run kernels
// (FilterEps, FilterEpsIDs) have two implementations:
//
//   - amd64: hand-written SSE2 (kernel_amd64.s) — two candidates per
//     iteration through SUBPD/MULPD/ADDPD and a CMPPD(LE) mask, compacted
//     branch-free: each lane's index is stored unconditionally at the
//     write cursor, which advances by the lane's mask bit. SSE2 is
//     architecturally guaranteed on amd64, so there is no feature
//     detection and no dispatch overhead. The packed instructions perform
//     the identical IEEE-754 double operations as the scalar expression
//     dx*dx + dy*dy (no FMA contraction on either path), so results are
//     bit-identical to the fallback and to geom.Point.DistSq.
//
//   - everywhere else: a single-pass scalar loop with the same
//     unconditional-store/guarded-increment compaction, which the
//     compiler lowers to a conditional move instead of a data-dependent
//     branch.
//
// All kernels append to a caller-owned destination slice and allocate only
// when it must grow, so warmed-up searches stay off the heap entirely
// (asserted by AllocsPerRun tests here and in every caller).
package kernel

import "vdbscan/internal/geom"

// Block is the nominal batch width callers may size buffers around. The
// amd64 kernel consumes candidates two at a time (SSE2 lanes); Block
// stays 8 so a future AVX widening needs no caller changes.
const Block = 8

// ensure reserves capacity for n more elements, growing geometrically so
// repeated small reservations amortize to O(1) per element.
func ensure(dst []int32, n int) []int32 {
	if cap(dst)-len(dst) >= n {
		return dst
	}
	newCap := 2 * cap(dst)
	if newCap < len(dst)+n {
		newCap = len(dst) + n
	}
	if newCap < 64 {
		newCap = 64
	}
	grown := make([]int32, len(dst), newCap)
	copy(grown, dst)
	return grown
}

// FilterEps appends base+i to dst for every position i in the contiguous
// coordinate run (xs[i], ys[i]) with (px-xs[i])² + (py-ys[i])² ≤ epsSq,
// preserving ascending order. xs and ys must have equal length. This is
// the leaf-run filter of the flat R-tree ε-search and the per-row filter
// of the grid index.
func FilterEps(dst []int32, xs, ys []float64, base int32, px, py, epsSq float64) []int32 {
	n := len(xs)
	if n == 0 {
		return dst
	}
	dst = ensure(dst, n)
	// buf is the full-capacity window: the compaction stores every
	// candidate unconditionally (always in bounds — we reserved n slots)
	// and only advances w on a pass, so the store never branches.
	buf := dst[:cap(dst)]
	w := filterEps(buf, len(dst), xs, ys, base, px, py, epsSq)
	return dst[:w]
}

// FilterEpsIDs is FilterEps emitting ids[i] instead of base+i: the grid
// index stores coordinates grid-sorted with a parallel id array mapping
// each slot back to the caller's index space, so the kernel translates
// while it compacts (ids loads are sequential, not gathers).
func FilterEpsIDs(dst []int32, xs, ys []float64, ids []int32, px, py, epsSq float64) []int32 {
	n := len(xs)
	if n == 0 {
		return dst
	}
	dst = ensure(dst, n)
	buf := dst[:cap(dst)]
	w := filterEpsIDs(buf, len(dst), xs, ys, ids, px, py, epsSq)
	return dst[:w]
}

// FilterEpsPoints appends idx[i] to dst for every listed index whose
// point pts[idx[i]] lies within ε of (px, py). The gather variant serves
// scattered candidate lists over the live array-of-structs point array —
// the overlay's staged-insert buffer — which SSE2 cannot load as a unit;
// the guarded-increment compaction still keeps it branch-free.
func FilterEpsPoints(dst []int32, pts []geom.Point, idx []int32, px, py, epsSq float64) []int32 {
	n := len(idx)
	if n == 0 {
		return dst
	}
	dst = ensure(dst, n)
	buf := dst[:cap(dst)]
	w := len(dst)
	for i := 0; i < n; i++ {
		q := pts[idx[i]]
		dx := px - q.X
		dy := py - q.Y
		buf[w] = idx[i]
		if dx*dx+dy*dy <= epsSq {
			w++
		}
	}
	return dst[:w]
}
