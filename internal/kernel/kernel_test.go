package kernel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"vdbscan/internal/geom"
)

// oracle is the straightforward scalar filter every kernel must match
// exactly (same indices, same order).
func oracle(dst []int32, xs, ys []float64, base int32, px, py, epsSq float64) []int32 {
	for i := range xs {
		dx := px - xs[i]
		dy := py - ys[i]
		if dx*dx+dy*dy <= epsSq {
			dst = append(dst, base+int32(i))
		}
	}
	return dst
}

func randRun(rng *rand.Rand, n int) (xs, ys []float64) {
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 10
		ys[i] = rng.Float64() * 10
	}
	return xs, ys
}

func TestFilterEpsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(0xB10C))
	// Sweep run lengths across block boundaries (0..3·Block+1) and larger
	// runs, with ε chosen so pass rates span sparse to dense.
	lengths := []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 23, 24, 25, 100, 1000}
	for _, n := range lengths {
		xs, ys := randRun(rng, n)
		for _, eps := range []float64{0.1, 1, 3, 20} {
			px, py := rng.Float64()*10, rng.Float64()*10
			epsSq := eps * eps
			want := oracle(nil, xs, ys, 5, px, py, epsSq)
			got := FilterEps(nil, xs, ys, 5, px, py, epsSq)
			if len(got) != len(want) {
				t.Fatalf("n=%d eps=%g: %d hits, want %d", n, eps, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d eps=%g: hit[%d]=%d, want %d", n, eps, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFilterEpsAppendsAfterExisting(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	ys := make([]float64, len(xs))
	dst := []int32{-7, -8}
	out := FilterEps(dst, xs, ys, 100, 0, 0, 4.1)
	want := []int32{-7, -8, 100, 101, 102}
	if len(out) != len(want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestFilterEpsNaNNeverPasses(t *testing.T) {
	nan := math.NaN()
	xs := []float64{0, nan, 0, nan, 0, nan, 0, nan, 0}
	ys := []float64{0, 0, nan, nan, 0, 0, nan, nan, 0}
	out := FilterEps(nil, xs, ys, 0, 0, 0, 1)
	if len(out) != 3 || out[0] != 0 || out[1] != 4 || out[2] != 8 {
		t.Fatalf("NaN handling: got %v", out)
	}
}

func TestFilterEpsIDsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1D5))
	for _, n := range []int{0, 1, 8, 13, 64, 257} {
		xs, ys := randRun(rng, n)
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(rng.Intn(1 << 20))
		}
		px, py, epsSq := rng.Float64()*10, rng.Float64()*10, 2.5
		want := []int32{}
		for i := range xs {
			dx, dy := px-xs[i], py-ys[i]
			if dx*dx+dy*dy <= epsSq {
				want = append(want, ids[i])
			}
		}
		got := FilterEpsIDs(nil, xs, ys, ids, px, py, epsSq)
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d hits, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: hit[%d]=%d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestFilterEpsPointsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(0xA05))
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	for _, n := range []int{0, 1, 7, 8, 9, 31, 200} {
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(rng.Intn(len(pts)))
		}
		px, py, epsSq := rng.Float64()*10, rng.Float64()*10, 3.0
		want := []int32{}
		for _, k := range idx {
			dx, dy := px-pts[k].X, py-pts[k].Y
			if dx*dx+dy*dy <= epsSq {
				want = append(want, k)
			}
		}
		got := FilterEpsPoints(nil, pts, idx, px, py, epsSq)
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d hits, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: hit[%d]=%d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

// TestFilterEpsZeroAlloc asserts the kernels never touch the heap once the
// destination buffer has warmed to its high-water mark — the property the
// whole ε-search stack's zero-allocation guarantee rests on.
func TestFilterEpsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs, ys := randRun(rng, 4096)
	ids := make([]int32, len(xs))
	for i := range ids {
		ids[i] = int32(i)
	}
	dst := make([]int32, 0, len(xs))
	allocs := testing.AllocsPerRun(100, func() {
		dst = FilterEps(dst[:0], xs, ys, 0, 5, 5, 4)
		dst = FilterEpsIDs(dst[:0], xs, ys, ids, 5, 5, 4)
	})
	if allocs != 0 {
		t.Fatalf("kernels allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkFilterEps compares the block kernel against the scalar
// per-point loop it replaced, across run lengths bracketing the r-per-MBB
// sweep (r = 16..256 points per leaf) and pass rates from sparse to dense.
func BenchmarkFilterEps(b *testing.B) {
	rng := rand.New(rand.NewSource(0xBE7C))
	for _, n := range []int{16, 70, 110, 256, 1024} {
		xs, ys := randRun(rng, n)
		for _, eps := range []float64{0.5, 2, 5} {
			epsSq := eps * eps
			b.Run(fmt.Sprintf("block/n=%d/eps=%g", n, eps), func(b *testing.B) {
				dst := make([]int32, 0, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dst = FilterEps(dst[:0], xs, ys, 0, 5, 5, epsSq)
				}
			})
			b.Run(fmt.Sprintf("scalar/n=%d/eps=%g", n, eps), func(b *testing.B) {
				dst := make([]int32, 0, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dst = dst[:0]
					for j := range xs {
						dx := 5 - xs[j]
						dy := 5 - ys[j]
						if dx*dx+dy*dy <= epsSq {
							dst = append(dst, int32(j))
						}
					}
				}
			})
		}
	}
}
