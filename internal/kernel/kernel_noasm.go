//go:build !amd64

package kernel

// Portable fallbacks: single-pass scalar loops with the same
// unconditional-store/guarded-increment compaction as the SSE2 kernels,
// which gc lowers to a conditional move rather than a data-dependent
// branch.

func filterEps(buf []int32, w int, xs, ys []float64, base int32, px, py, epsSq float64) int {
	for i := 0; i < len(xs); i++ {
		dx := px - xs[i]
		dy := py - ys[i]
		buf[w] = base + int32(i)
		if dx*dx+dy*dy <= epsSq {
			w++
		}
	}
	return w
}

func filterEpsIDs(buf []int32, w int, xs, ys []float64, ids []int32, px, py, epsSq float64) int {
	for i := 0; i < len(xs); i++ {
		dx := px - xs[i]
		dy := py - ys[i]
		buf[w] = ids[i]
		if dx*dx+dy*dy <= epsSq {
			w++
		}
	}
	return w
}
