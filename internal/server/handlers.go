package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"vdbscan"
	"vdbscan/internal/cliutil"
	"vdbscan/internal/dataio"
)

// ---- wire documents ----------------------------------------------------

// datasetDoc is the JSON shape of a dataset resource.
type datasetDoc struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Points     int    `json:"points"`  // covered by the installed index
	Staged     int    `json:"staged"`  // appended, awaiting re-freeze
	Version    int    `json:"version"` // index install version
	Index      string `json:"index"`   // eps-search substrate: rtree or grid
	Refreezing bool   `json:"refreezing"`
	Created    string `json:"created"`
}

// variantSpec is one (ε, minpts) pair in a job submission.
type variantSpec struct {
	Eps    float64 `json:"eps"`
	MinPts int     `json:"minpts"`
}

// jobRequest is the POST /v1/datasets/{id}/jobs body.
type jobRequest struct {
	Variants []variantSpec `json:"variants"`
	// TimeoutMS overrides the server's default job deadline (milliseconds).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Tiles overrides the server's tile-level parallelism for this job's
	// run (0 = server default/auto, 1 = untiled, >= 2 = tile target).
	// Labels are identical at any tile count; when coalescing merges jobs
	// the batch runs with the largest requested value.
	Tiles int `json:"tiles,omitempty"`
}

// variantDoc is one per-variant result inside a job document.
type variantDoc struct {
	Eps            float64 `json:"eps"`
	MinPts         int     `json:"minpts"`
	Clusters       int     `json:"clusters"`
	Noise          int     `json:"noise"`
	FractionReused float64 `json:"fraction_reused"`
	FromScratch    bool    `json:"from_scratch"`
	DurationMS     float64 `json:"duration_ms"`
}

// jobDoc is the JSON shape of a job resource. BatchJobs and BatchVariants
// expose the coalescing outcome: a job that shared its run reports
// batch_jobs > 1 and a union variant count covering every member.
type jobDoc struct {
	ID            string       `json:"id"`
	Dataset       string       `json:"dataset"`
	State         string       `json:"state"`
	Error         string       `json:"error,omitempty"`
	Batch         string       `json:"batch"`
	BatchJobs     int          `json:"batch_jobs"`
	BatchVariants int          `json:"batch_variants"`
	Created       string       `json:"created"`
	Started       string       `json:"started,omitempty"`
	Finished      string       `json:"finished,omitempty"`
	Results       []variantDoc `json:"results,omitempty"`
}

type errorDoc struct {
	Error string `json:"error"`
}

// ---- helpers -----------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorDoc{Error: fmt.Sprintf(format, args...)})
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func (s *Server) datasetDoc(d *dataset) datasetDoc {
	d.mu.Lock()
	defer d.mu.Unlock()
	return datasetDoc{
		ID:         d.id,
		Name:       d.name,
		Points:     len(d.points),
		Staged:     len(d.staged),
		Version:    d.version,
		Index:      d.kind.String(),
		Refreezing: d.refreezing,
		Created:    stamp(d.created),
	}
}

func (s *Server) jobDoc(j *job) jobDoc {
	state, errMsg, started, finished, results := j.view()
	members, union := j.batch.members()
	doc := jobDoc{
		ID:            j.id,
		Dataset:       j.datasetID,
		State:         state,
		Error:         errMsg,
		Batch:         j.batch.id,
		BatchJobs:     len(members),
		BatchVariants: len(union),
		Created:       stamp(j.created),
		Started:       stamp(started),
		Finished:      stamp(finished),
	}
	for _, o := range results {
		doc.Results = append(doc.Results, variantDoc{
			Eps:            o.Params.Eps,
			MinPts:         o.Params.MinPts,
			Clusters:       o.Clusters,
			Noise:          o.Noise,
			FractionReused: o.FractionReused,
			FromScratch:    o.FromScratch,
			DurationMS:     float64(o.Duration) / float64(time.Millisecond),
		})
	}
	return doc
}

// retryAfterSeconds is the backpressure hint on 429 and 503 responses:
// roughly one batching window (the soonest the backlog can shrink),
// rounded up — truncating 1.5s to 1 invites clients back before the
// window has closed — and never less than a second, since Retry-After: 0
// tells well-behaved clients to hammer the server in a tight loop.
func (s *Server) retryAfterSeconds() int {
	secs := int((s.cfg.BatchWindow + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeDraining rejects a request during graceful drain: 503 with a
// Retry-After hint, so load balancers and retrying clients back off to
// another replica instead of treating the drain as a hard failure.
func (s *Server) writeDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeErr(w, http.StatusServiceUnavailable, "server is draining")
}

// readPointsCSV parses a CSV request body ("x,y" rows, optional "# key:
// value" header) into points, enforcing MaxBodyBytes.
func (s *Server) readPointsCSV(w http.ResponseWriter, r *http.Request) ([]vdbscan.Point, string, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ds, err := dataio.ReadCSV(body)
	if err != nil {
		return nil, "", err
	}
	return ds.Points, ds.Name, nil
}

// ---- dataset handlers --------------------------------------------------

func (s *Server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeDraining(w)
		return
	}
	points, csvName, err := s.readPointsCSV(w, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "parse dataset: %v", err)
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" && csvName != "unnamed" {
		name = csvName
	}
	leafR := 0
	if v := r.URL.Query().Get("r"); v != "" {
		leafR, err = strconv.Atoi(v)
		if err != nil || leafR < 0 {
			writeErr(w, http.StatusBadRequest, "bad r parameter %q", v)
			return
		}
	}
	kind := s.cfg.IndexKind
	if v := r.URL.Query().Get("index"); v != "" {
		kind, err = cliutil.ParseIndexKind(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad index parameter %q (want rtree or grid)", v)
			return
		}
	}
	d, err := s.registry.create(name, points, leafR, kind)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.ctrs.datasets.Add(1)
	s.log.Info("dataset created",
		"req", requestID(r.Context()), "dataset", d.id, "name", d.name,
		"points", len(points), "index", d.kind.String())
	writeJSON(w, http.StatusCreated, s.datasetDoc(d))
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	docs := []datasetDoc{}
	for _, d := range s.registry.list() {
		docs = append(docs, s.datasetDoc(d))
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": docs})
}

func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	d, ok := s.registry.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no dataset %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.datasetDoc(d))
}

func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.registry.delete(id) {
		writeErr(w, http.StatusNotFound, "no dataset %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDatasetAppend(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeDraining(w)
		return
	}
	d, ok := s.registry.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no dataset %q", r.PathValue("id"))
		return
	}
	points, _, err := s.readPointsCSV(w, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "parse points: %v", err)
		return
	}
	if len(points) == 0 {
		writeErr(w, http.StatusBadRequest, "no points in body")
		return
	}
	staged, refreezing := s.registry.append(d, points, &s.ctrs)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"dataset":    d.id,
		"staged":     staged,
		"refreezing": refreezing,
	})
}

// ---- job handlers ------------------------------------------------------

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	d, ok := s.registry.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no dataset %q", r.PathValue("id"))
		return
	}
	var req jobRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "parse job request: %v", err)
		return
	}
	if len(req.Variants) == 0 {
		writeErr(w, http.StatusBadRequest, "job has no variants")
		return
	}
	params := make([]vdbscan.Params, len(req.Variants))
	for i, v := range req.Variants {
		if v.Eps <= 0 || v.MinPts <= 0 {
			writeErr(w, http.StatusBadRequest,
				"variant %d: eps and minpts must be positive (got eps=%g minpts=%d)",
				i, v.Eps, v.MinPts)
			return
		}
		params[i] = vdbscan.Params{Eps: v.Eps, MinPts: v.MinPts}
	}
	timeout := s.cfg.JobTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if req.Tiles < 0 {
		writeErr(w, http.StatusBadRequest, "tiles must be >= 0 (got %d)", req.Tiles)
		return
	}

	j := s.jobs.new(d.id, params, timeout)
	j.tiles = req.Tiles
	j.events.mx = s.mx // safe: no frame published before admit
	if err := s.admit(j); err != nil {
		switch err {
		case errQueueFull:
			s.log.Warn("job rejected: queue full",
				"req", requestID(r.Context()), "dataset", d.id, "queued", s.queueDepth())
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			writeErr(w, http.StatusTooManyRequests,
				"job queue is full (%d queued)", s.queueDepth())
		case errDraining:
			s.writeDraining(w)
		default:
			writeErr(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	s.jobs.put(j)
	s.armWatchdog(j)
	s.log.Info("job accepted",
		"req", requestID(r.Context()), "job", j.id, "dataset", d.id,
		"batch", j.batch.id, "variants", len(params), "timeout", timeout)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, s.jobDoc(j))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	docs := []jobDoc{}
	for _, j := range s.jobs.list() {
		docs = append(docs, s.jobDoc(j))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": docs})
}

// handleJobGet returns the job document; with ?wait=<duration> it long-polls
// until the job turns terminal or the wait (capped at DefaultMaxLongPollWait)
// elapses, whichever is first.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad wait %q: %v", waitStr, err)
			return
		}
		if wait > DefaultMaxLongPollWait {
			wait = DefaultMaxLongPollWait
		}
		if wait > 0 {
			t := time.NewTimer(wait)
			defer t.Stop()
			select {
			case <-j.done:
			case <-t.C:
			case <-r.Context().Done():
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, s.jobDoc(j))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	s.abandon(j, stateCanceled, "canceled by client")
	writeJSON(w, http.StatusOK, s.jobDoc(j))
}

// handleJobLabels streams one variant's labels as "index,label" CSV (the
// dataio.WriteLabelsCSV format, diffable against the CLI's output).
func (s *Server) handleJobLabels(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	variant := 0
	if v := r.URL.Query().Get("variant"); v != "" {
		var err error
		variant, err = strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad variant %q", v)
			return
		}
	}
	o, ok := j.outcome(variant)
	if !ok {
		state, errMsg, _, _, _ := j.view()
		if state != stateDone {
			writeErr(w, http.StatusConflict,
				"job %s is %s (%s); labels require state done", j.id, state, errMsg)
		} else {
			writeErr(w, http.StatusNotFound, "job %s has no variant %d", j.id, variant)
		}
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	dataio.WriteLabelsCSV(w, o.clustering) //nolint:errcheck // client gone
}

// handleJobTrace serves the execution trace of the batch run that carried
// the job: Chrome trace-event JSON by default, the plain-text timeline with
// ?format=text. One batch means one trace — coalesced jobs share it.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	chrome, text, ok := j.batch.trace()
	if !ok {
		writeErr(w, http.StatusConflict, "job %s has not run yet; no trace", j.id)
		return
	}
	switch f := r.URL.Query().Get("format"); f {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Write(chrome) //nolint:errcheck // client gone
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(text) //nolint:errcheck // client gone
	default:
		writeErr(w, http.StatusBadRequest, "unknown trace format %q", f)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"uptime":   time.Since(s.start).Round(time.Millisecond).String(),
		"queued":   s.queueDepth(),
		"datasets": s.registry.len(),
	})
}
